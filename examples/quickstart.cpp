// Quickstart: the whole pipeline on a small synthetic tabular problem.
//
//  1. Generate a Covertype-shaped dataset and split it 42/25/33.
//  2. Sample a random architecture from the paper's search space, print its
//     DAG (cf. Fig 1), and train it with autotuned-style data-parallel
//     settings.
//  3. Run a short AgEBO search against the live thread-pool executor with
//     real training, and report the best model found.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/analysis.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/training_eval.hpp"
#include "exec/live_executor.hpp"
#include "nas/search_space.hpp"
#include "nn/trainer.hpp"

int main() {
  using namespace agebo;

  // --- 1. Data ------------------------------------------------------------
  auto spec = data::covertype_spec(/*scale=*/0.004, /*seed=*/42);
  const auto dataset = data::make_classification(spec);
  Rng split_rng(7);
  auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
  data::standardize(splits);
  std::printf("dataset %s: %zu rows, %zu features, %zu classes\n",
              dataset.name.c_str(), dataset.n_rows, dataset.n_features,
              dataset.n_classes);
  std::printf("splits: train=%zu valid=%zu test=%zu\n\n", splits.train.n_rows,
              splits.valid.n_rows, splits.test.n_rows);

  // --- 2. One architecture, trained directly -------------------------------
  nas::SearchSpace space;
  std::printf("search space: %zu decisions, ~10^%.1f architectures\n\n",
              space.n_decisions(), space.log10_size());

  Rng rng(123);
  const auto genome = space.random(rng);
  const auto gspec =
      space.to_graph_spec(genome, dataset.n_features, dataset.n_classes);
  Rng net_rng(1);
  nn::GraphNet net(gspec, net_rng);
  std::printf("random architecture:\n%s\n", net.describe().c_str());

  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 128;
  tc.lr = 0.005;
  const auto train_result = nn::train(net, splits.train, splits.valid, tc);
  std::printf("direct training: best valid acc %.4f\n\n",
              train_result.best_valid_accuracy);

  // --- 3. A short live AgEBO search ----------------------------------------
  eval::TrainingEvalConfig ec;
  ec.epochs = 5;
  eval::TrainingEvaluator evaluator(splits.train, splits.valid, ec);
  exec::LiveExecutor executor(/*n_workers=*/4);

  core::SearchConfig cfg = core::agebo_config(/*seed=*/3);
  cfg.population_size = 8;
  cfg.sample_size = 3;
  cfg.wall_time_seconds = 20.0;  // real seconds of search
  // Keep n modest for the live demo: {1, 2} processes.
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {64, 128, 256})
                     .add_real("learning_rate", 0.001, 0.1, true)
                     .add_categorical("n_processes", {1, 2});

  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();

  std::printf("AgEBO (live): %zu evaluations in %.1fs, best valid acc %.4f\n",
              result.history.size(), executor.now(), result.best_objective);
  if (!result.history.empty()) {
    const auto& best = result.best();
    std::printf("best hyperparameters: bs1=%g lr1=%.5f n=%g\n",
                best.config.hparams[0], best.config.hparams[1],
                best.config.hparams[2]);
    std::printf("best architecture:\n%s\n",
                space.describe(best.config.genome).c_str());
  }
  std::printf("worker utilization: %.0f%%\n",
              100.0 * result.utilization.fraction());
  return 0;
}
