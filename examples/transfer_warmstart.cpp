// Transfer / warm-started search (the paper's future-work item 3): run a
// first AgEBO campaign, persist its evaluation history, then start a second
// campaign seeded with that history — its population begins from the best
// discovered architectures and its BO surrogate from all prior
// (hyperparameter, accuracy) observations.
//
// Prints the cold-vs-warm comparison for a short second-campaign budget.
#include <cstdio>
#include <sstream>

#include "core/analysis.hpp"
#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  const auto profile = eval::dionis_profile();

  auto run = [&](double minutes, std::vector<core::EvalRecord> warm,
                 std::uint64_t seed) {
    eval::SurrogateEvaluator evaluator(space, profile);
    exec::SimulatedExecutor executor(64, 90.0);
    auto cfg = core::agebo_config(seed);
    cfg.wall_time_seconds = minutes * 60.0;
    cfg.warm_start = std::move(warm);
    core::AgeboSearch search(space, evaluator, executor, cfg);
    return search.run();
  };

  // First campaign: 120 virtual minutes on Dionis.
  std::printf("first campaign: AgEBO on dionis, 120 virtual minutes...\n");
  const auto first = run(120.0, {}, 11);
  std::printf("  %zu evaluations, best %.4f\n", first.history.size(),
              first.best_objective);

  // Persist + reload the history (the CSV is what a real deployment would
  // keep between runs; tools/agebo_campaign does the same via --out).
  std::stringstream storage;
  core::save_history(first, storage);
  const auto prior = core::load_history(storage, space);
  std::printf("  history saved and reloaded: %zu records\n\n", prior.size());

  // Second campaign, short budget: cold vs warm.
  std::printf("second campaign (30 virtual minutes), cold vs warm start:\n");
  const auto cold = run(30.0, {}, 12);
  const auto warm = run(30.0, prior, 12);

  auto early_mean = [](const core::SearchResult& r) {
    const std::size_t k = std::min<std::size_t>(20, r.history.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += r.history[i].objective;
    return k > 0 ? sum / static_cast<double>(k) : 0.0;
  };
  std::printf("  cold: %4zu evaluations, first-20 mean %.4f, best %.4f\n",
              cold.history.size(), early_mean(cold), cold.best_objective);
  std::printf("  warm: %4zu evaluations, first-20 mean %.4f, best %.4f\n",
              warm.history.size(), early_mean(warm), warm.best_objective);
  std::printf("\nwarm start mutates an already-good population and reuses "
              "all prior BO observations.\n");
  return 0;
}
