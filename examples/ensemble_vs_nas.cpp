// Table II in miniature: on one tabular problem, compare
//   (a) a single NAS-discovered neural network (short live AgEBO search +
//       final training), against
//   (b) the AutoGluon-like stacking ensemble, and
//   (c) the Auto-PyTorch-like successive-halving MLP baseline,
// on test accuracy and measured inference time.
#include <chrono>
#include <cstdio>

#include "baselines/auto_ensemble.hpp"
#include "baselines/auto_pytorch_like.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/training_eval.hpp"
#include "exec/live_executor.hpp"
#include "nas/search_space.hpp"
#include "nn/trainer.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace agebo;

  auto spec = data::albert_spec(/*scale=*/0.01, /*seed=*/2024);
  const auto dataset = data::make_classification(spec);
  Rng split_rng(5);
  auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
  data::standardize(splits);
  std::printf("dataset %s: %zu rows, %zu features, %zu classes\n\n",
              dataset.name.c_str(), dataset.n_rows, dataset.n_features,
              dataset.n_classes);

  // --- (a) NAS-discovered single network. ---
  nas::SearchSpace space;
  eval::TrainingEvalConfig ec;
  ec.epochs = 4;
  eval::TrainingEvaluator evaluator(splits.train, splits.valid, ec);
  exec::LiveExecutor executor(4);
  core::SearchConfig cfg = core::agebo_config(77);
  cfg.population_size = 8;
  cfg.sample_size = 3;
  cfg.wall_time_seconds = 20.0;
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {64, 128, 256})
                     .add_real("learning_rate", 0.001, 0.1, true)
                     .add_categorical("n_processes", {1, 2});
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  std::printf("AgEBO search: %zu architectures in %.0fs, best valid %.4f\n",
              result.history.size(), executor.now(), result.best_objective);

  eval::TrainingEvalConfig final_ec;
  final_ec.epochs = 12;
  eval::TrainingEvaluator final_eval(splits.train, splits.valid, final_ec);
  auto net = final_eval.train_model(result.best().config);

  auto t0 = std::chrono::steady_clock::now();
  const double nn_acc = nn::evaluate_accuracy(*net, splits.test);
  const double nn_inference = seconds_since(t0);

  // --- (b) AutoGluon-like stacking ensemble. ---
  baselines::AutoEnsembleConfig ac;
  ac.forest_trees = 40;
  ac.boosting_rounds = 25;
  baselines::AutoEnsemble ensemble(ac);
  const auto report = ensemble.fit(splits.train, splits.valid);
  const double ens_acc = ensemble.accuracy(splits.test);
  const double ens_inference = ensemble.inference_seconds(splits.test);
  std::printf("AutoEnsemble: %zu fold-models fitted in %.1fs\n",
              report.total_models, report.fit_seconds);

  // --- (c) Auto-PyTorch-like successive halving. ---
  baselines::ShaConfig sha_cfg;
  sha_cfg.n_configs = 9;
  sha_cfg.min_epochs = 2;
  sha_cfg.rungs = 2;
  baselines::SuccessiveHalvingMlp sha(sha_cfg);
  const auto sha_report = sha.fit(splits.train, splits.valid);
  t0 = std::chrono::steady_clock::now();
  const double sha_acc = nn::evaluate_accuracy(sha.best_model(), splits.test);
  const double sha_inference = seconds_since(t0);

  std::printf("\n%-22s %-10s %-14s\n", "method", "test acc", "inference (s)");
  std::printf("%-22s %-10.4f %-14.4f\n", "AgEBO single network", nn_acc,
              nn_inference);
  std::printf("%-22s %-10.4f %-14.4f\n", "stacking ensemble", ens_acc,
              ens_inference);
  std::printf("%-22s %-10.4f %-14.4f\n", "successive-halving MLP", sha_acc,
              sha_inference);
  std::printf("\ninference speedup of single network vs ensemble: %.0fx\n",
              ens_inference / std::max(nn_inference, 1e-9));
  return 0;
}
