// Data-parallel training walkthrough (Sec III-B): train one architecture
// with n = 1, 2, 4 processes under the linear scaling rule and compare
// accuracy and wall time, then let BO tune (bs1, lr1, n) for this fixed
// architecture — the "autotuned data-parallel training" idea in isolation.
#include <cstdio>

#include "bo/optimizer.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "eval/evaluation.hpp"
#include "nas/search_space.hpp"

int main() {
  using namespace agebo;

  // A Covertype-shaped problem small enough to train repeatedly.
  auto spec = data::covertype_spec(/*scale=*/0.006, /*seed=*/77);
  const auto dataset = data::make_classification(spec);
  Rng split_rng(3);
  auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
  data::standardize(splits);
  std::printf("dataset: %zu rows, %zu features, %zu classes\n\n",
              dataset.n_rows, dataset.n_features, dataset.n_classes);

  // A fixed architecture from the search space.
  nas::SearchSpace space;
  Rng arch_rng(9);
  const auto genome = space.random(arch_rng);
  const auto gspec =
      space.to_graph_spec(genome, dataset.n_features, dataset.n_classes);

  // --- Static scaling sweep (the Table I setup, for real). ---
  std::printf("linear scaling rule (lr1=0.01, bs1=64), 8 epochs:\n");
  std::printf("%-4s %-10s %-10s %-12s %-10s\n", "n", "lr_n", "bs_n",
              "valid acc", "seconds");
  for (std::size_t n : {1u, 2u, 4u}) {
    dp::DataParallelConfig cfg;
    cfg.n_procs = n;
    cfg.lr1 = 0.01;
    cfg.bs1 = 64;
    cfg.epochs = 8;
    const auto scaled = dp::linear_scaling(cfg);
    dp::DataParallelTrainer trainer(gspec, cfg);
    const auto result = trainer.fit(splits.train, splits.valid);
    std::printf("%-4zu %-10.3f %-10zu %-12.4f %-10.2f\n", n, scaled.lr_n,
                scaled.bs_n, result.best_valid_accuracy, result.wall_seconds);
  }

  // --- BO autotuning of (bs1, lr1, n) for this architecture. ---
  std::printf("\nBO autotuning of (bs1, lr1, n), 6 iterations x 4 configs:\n");
  auto hp_space = bo::ParamSpace{}
                      .add_categorical("batch_size", {32, 64, 128, 256})
                      .add_real("learning_rate", 0.001, 0.1, true)
                      .add_categorical("n_processes", {1, 2, 4});
  bo::BoConfig bo_cfg;
  bo_cfg.n_initial_random = 4;
  bo::AskTellOptimizer optimizer(hp_space, bo_cfg);

  double best_acc = 0.0;
  bo::Point best_hp;
  for (int iter = 0; iter < 6; ++iter) {
    const auto batch = optimizer.ask(4);
    std::vector<double> objectives;
    for (const auto& hp : batch) {
      auto cfg = eval::to_dp_config(hp, /*epochs=*/6);
      dp::DataParallelTrainer trainer(gspec, cfg);
      const auto result = trainer.fit(splits.train, splits.valid);
      objectives.push_back(result.best_valid_accuracy);
      if (result.best_valid_accuracy > best_acc) {
        best_acc = result.best_valid_accuracy;
        best_hp = hp;
      }
    }
    optimizer.tell(batch, objectives);
    std::printf("  iteration %d: best so far %.4f\n", iter + 1, best_acc);
  }
  std::printf("\nbest configuration: bs1=%.0f lr1=%.5f n=%.0f -> %.4f\n",
              best_hp[0], best_hp[1], best_hp[2], best_acc);
  return 0;
}
