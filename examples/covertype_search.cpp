// Covertype campaign: reproduce the paper's flagship experiment — AgE-n
// variants versus AgEBO on the Covertype benchmark — using the calibrated
// surrogate and the event-driven cluster simulator (128 workers, 3 virtual
// hours, completed in seconds of real time).
//
// This is the programmatic version of what bench_table1/bench_fig3/
// bench_fig4 print; use it as a template for driving your own campaigns.
//
// Usage: covertype_search [minutes] [workers]
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"

int main(int argc, char** argv) {
  using namespace agebo;

  const double minutes = argc > 1 ? std::atof(argv[1]) : 180.0;
  const std::size_t workers = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 128;

  nas::SearchSpace space;
  std::printf("Covertype campaign: %zu workers, %.0f virtual minutes\n",
              workers, minutes);
  std::printf("search space: ~10^%.1f architectures\n\n", space.log10_size());

  auto run = [&](core::SearchConfig cfg, const char* label) {
    eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
    exec::SimulatedExecutor executor(workers, 90.0);
    cfg.wall_time_seconds = minutes * 60.0;
    core::AgeboSearch search(space, evaluator, executor, cfg);
    const auto result = search.run();
    const auto stats = core::run_stats(result);
    std::printf("%-8s  %5zu evals  mean train %6.2f min  best acc %.4f  "
                "util %3.0f%%\n",
                label, stats.n_evaluations, stats.mean_train_minutes,
                stats.best_accuracy, 100.0 * result.utilization.fraction());
    return result;
  };

  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    char label[16];
    std::snprintf(label, sizeof(label), "AgE-%zu", n);
    run(core::age_config(n, 40 + n), label);
  }
  const auto agebo = run(core::agebo_config(50), "AgEBO");

  // Show where AgEBO converged.
  std::printf("\nAgEBO top-5 hyperparameter configurations:\n");
  std::printf("%-10s %-12s %-6s %s\n", "batch", "lr", "n", "valid acc");
  for (std::size_t idx : core::top_k(agebo, 5)) {
    const auto& rec = agebo.history[idx];
    std::printf("%-10.0f %-12.6f %-6.0f %.4f\n", rec.config.hparams[0],
                rec.config.hparams[1], rec.config.hparams[2], rec.objective);
  }

  std::printf("\nAgEBO best-so-far trajectory (minutes, accuracy):\n");
  const auto series = core::best_so_far(agebo);
  const std::size_t stride = series.size() > 12 ? series.size() / 12 : 1;
  for (std::size_t i = 0; i < series.size(); i += stride) {
    std::printf("  %7.1f  %.4f\n", series[i].time_seconds / 60.0,
                series[i].value);
  }
  return 0;
}
