// Unit tests for src/bo: the mixed parameter space and the asynchronous
// ask/tell optimizer (RF surrogate + UCB + constant liar).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bo/optimizer.hpp"
#include "bo/param_space.hpp"

namespace agebo::bo {
namespace {

TEST(ParamSpace, PaperSpaceMatchesSectionFour) {
  const auto space = ParamSpace::paper_space();
  ASSERT_EQ(space.size(), 3u);
  EXPECT_EQ(space.name(0), "batch_size");
  EXPECT_EQ(space.name(1), "learning_rate");
  EXPECT_EQ(space.name(2), "n_processes");
}

TEST(ParamSpace, SamplesAreValid) {
  const auto space = ParamSpace::paper_space();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto p = space.sample(rng);
    EXPECT_NO_THROW(space.validate(p));
    EXPECT_TRUE(p[0] == 32 || p[0] == 64 || p[0] == 128 || p[0] == 256 ||
                p[0] == 512 || p[0] == 1024);
    EXPECT_GE(p[1], 0.001);
    EXPECT_LE(p[1], 0.1);
    EXPECT_TRUE(p[2] == 1 || p[2] == 2 || p[2] == 4 || p[2] == 8);
  }
}

TEST(ParamSpace, LearningRateSampledLogUniformly) {
  const auto space = ParamSpace::paper_space();
  Rng rng(2);
  int low = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (space.sample(rng)[1] < 0.01) ++low;
  }
  // log-uniform: (log 0.01 - log 0.001) / (log 0.1 - log 0.001) = 1/2.
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.04);
}

TEST(ParamSpace, FeaturesNormalized) {
  const auto space = ParamSpace::paper_space();
  const Point lo = {32.0, 0.001, 1.0};
  const Point hi = {1024.0, 0.1, 8.0};
  const auto flo = space.to_features(lo);
  const auto fhi = space.to_features(hi);
  EXPECT_DOUBLE_EQ(flo[0], 0.0);  // categorical index 0
  EXPECT_DOUBLE_EQ(fhi[0], 5.0);  // categorical index 5
  EXPECT_NEAR(flo[1], 0.0, 1e-9);
  EXPECT_NEAR(fhi[1], 1.0, 1e-9);
}

TEST(ParamSpace, LogFeatureIsLinearInDecades) {
  const auto space = ParamSpace::paper_space();
  const auto mid = space.to_features({32.0, 0.01, 1.0});
  EXPECT_NEAR(mid[1], 0.5, 1e-9);  // 0.01 is halfway in log space
}

TEST(ParamSpace, ValidateCatchesViolations) {
  const auto space = ParamSpace::paper_space();
  EXPECT_THROW(space.validate({48.0, 0.01, 1.0}), std::invalid_argument);
  EXPECT_THROW(space.validate({64.0, 0.5, 1.0}), std::invalid_argument);
  EXPECT_THROW(space.validate({64.0, 0.01, 3.0}), std::invalid_argument);
  EXPECT_THROW(space.validate({64.0, 0.01}), std::invalid_argument);
}

TEST(ParamSpace, IntDimRoundTrip) {
  ParamSpace space;
  space.add_int("k", 2, 10);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto p = space.sample(rng);
    EXPECT_GE(p[0], 2.0);
    EXPECT_LE(p[0], 10.0);
    EXPECT_DOUBLE_EQ(p[0], std::floor(p[0]));
  }
  EXPECT_THROW(space.validate({2.5}), std::invalid_argument);
}

TEST(ParamSpace, BuilderRejectsBadDims) {
  ParamSpace space;
  EXPECT_THROW(space.add_real("x", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(space.add_real("x", -1.0, 1.0, true), std::invalid_argument);
  EXPECT_THROW(space.add_int("x", 5, 4), std::invalid_argument);
  EXPECT_THROW(space.add_categorical("x", {}), std::invalid_argument);
}

TEST(ParamSpace, KeyDistinguishesPoints) {
  const auto space = ParamSpace::paper_space();
  EXPECT_NE(space.key({64.0, 0.01, 1.0}), space.key({64.0, 0.01, 2.0}));
  EXPECT_EQ(space.key({64.0, 0.01, 1.0}), space.key({64.0, 0.01, 1.0}));
}

/// A simple separable objective with a unique optimum for BO tests.
double toy_objective(const Point& p) {
  const double bs_term = -0.05 * std::abs(std::log2(p[0] / 256.0));
  const double lr_term = -0.3 * std::pow(std::log10(p[1] / 0.004), 2.0);
  const double n_term = -0.04 * std::abs(std::log2(p[2] / 2.0));
  return 1.0 + bs_term + lr_term + n_term;
}

TEST(AskTell, InitialAsksAreRandom) {
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.n_initial_random = 5;
  AskTellOptimizer opt(space, cfg);
  const auto batch = opt.ask(8);
  EXPECT_EQ(batch.size(), 8u);
  for (const auto& p : batch) EXPECT_NO_THROW(space.validate(p));
}

TEST(AskTell, ConvergesToOptimumOfToyObjective) {
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.seed = 11;
  AskTellOptimizer opt(space, cfg);
  Rng noise(4);
  for (int iter = 0; iter < 30; ++iter) {
    auto batch = opt.ask(8);
    std::vector<double> ys;
    for (const auto& p : batch) {
      ys.push_back(toy_objective(p) + noise.normal(0.0, 0.003));
    }
    opt.tell(batch, ys);
  }
  // Final asks should cluster near (256, 0.004, 2).
  const auto final_batch = opt.ask(8);
  int near = 0;
  for (const auto& p : final_batch) {
    if (std::abs(std::log10(p[1] / 0.004)) < 0.45 && p[0] >= 128 &&
        p[0] <= 512 && p[2] <= 4) {
      ++near;
    }
  }
  EXPECT_GE(near, 6);
}

TEST(AskTell, ExploitationStaysNearIncumbentWithTinyKappa) {
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.kappa = 0.0;
  cfg.seed = 5;
  AskTellOptimizer opt(space, cfg);
  Rng rng(6);
  std::vector<Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    auto p = space.sample(rng);
    ys.push_back(toy_objective(p));
    pts.push_back(std::move(p));
  }
  opt.tell(pts, ys);
  const auto batch = opt.ask(12);
  double mean_obj = 0.0;
  for (const auto& p : batch) mean_obj += toy_objective(p);
  mean_obj /= 12.0;
  // Exploitation should propose points much better than random (~0.55).
  EXPECT_GT(mean_obj, 0.8);
}

TEST(AskTell, LargeKappaExplores) {
  auto space = ParamSpace::paper_space();
  BoConfig exploit_cfg;
  exploit_cfg.kappa = 0.0;
  exploit_cfg.seed = 7;
  BoConfig explore_cfg;
  explore_cfg.kappa = 50.0;
  explore_cfg.seed = 7;
  AskTellOptimizer exploit(space, exploit_cfg);
  AskTellOptimizer explore(space, explore_cfg);
  Rng rng(8);
  std::vector<Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 80; ++i) {
    auto p = space.sample(rng);
    ys.push_back(toy_objective(p));
    pts.push_back(std::move(p));
  }
  exploit.tell(pts, ys);
  explore.tell(pts, ys);

  auto spread = [&](AskTellOptimizer& opt) {
    const auto batch = opt.ask(16);
    std::set<double> n_values;
    double lr_spread = 0.0;
    double lr_mean = 0.0;
    for (const auto& p : batch) {
      n_values.insert(p[2]);
      lr_mean += std::log10(p[1]);
    }
    lr_mean /= 16.0;
    for (const auto& p : batch) {
      lr_spread += std::abs(std::log10(p[1]) - lr_mean);
    }
    return lr_spread / 16.0;
  };
  EXPECT_GT(spread(explore), spread(exploit));
}

TEST(AskTell, ConstantLiarDiversifiesBatch) {
  // With the mean liar, a batch should not be 16 copies of one point.
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.kappa = 0.0;
  cfg.seed = 9;
  AskTellOptimizer opt(space, cfg);
  Rng rng(10);
  std::vector<Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    auto p = space.sample(rng);
    ys.push_back(toy_objective(p));
    pts.push_back(std::move(p));
  }
  opt.tell(pts, ys);
  const auto batch = opt.ask(16);
  std::set<std::string> keys;
  for (const auto& p : batch) keys.insert(space.key(p));
  EXPECT_GT(keys.size(), 4u);
}

TEST(AskTell, LiarStrategiesProduceDistinctBatches) {
  auto space = ParamSpace::paper_space();
  Rng rng(12);
  std::vector<Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    auto p = space.sample(rng);
    ys.push_back(toy_objective(p));
    pts.push_back(std::move(p));
  }
  auto run = [&](LiarStrategy liar) {
    BoConfig cfg;
    cfg.seed = 13;
    cfg.liar = liar;
    AskTellOptimizer opt(space, cfg);
    opt.tell(pts, ys);
    std::string concat;
    for (const auto& p : opt.ask(12)) concat += space.key(p) + ";";
    return concat;
  };
  const auto mean_batch = run(LiarStrategy::kMean);
  const auto min_batch = run(LiarStrategy::kMin);
  const auto max_batch = run(LiarStrategy::kMax);
  // CL-min (pessimistic lie) repels later picks more than CL-max attracts;
  // batches should not all coincide.
  EXPECT_TRUE(mean_batch != min_batch || mean_batch != max_batch);
}

TEST(AskTell, DoesNotProposeEvaluatedPoints) {
  // All-categorical space small enough to exhaust.
  ParamSpace space;
  space.add_categorical("a", {0, 1, 2});
  space.add_categorical("b", {0, 1});
  BoConfig cfg;
  cfg.n_initial_random = 1;
  cfg.n_candidates = 256;
  AskTellOptimizer opt(space, cfg);
  std::vector<Point> seen = {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}};
  std::vector<double> ys = {0.1, 0.2, 0.3, 0.9, 0.5};
  opt.tell(seen, ys);
  // Only (2, 1) is unevaluated; exploitation would otherwise pick (1, 1).
  const auto batch = opt.ask(1);
  EXPECT_EQ(batch[0], (Point{2, 1}));
}

TEST(AskTell, TellValidatesInput) {
  auto space = ParamSpace::paper_space();
  AskTellOptimizer opt(space, BoConfig{});
  EXPECT_THROW(opt.tell({{64.0, 0.01, 1.0}}, {0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(opt.tell({{64.0, 0.01, 3.0}}, {0.5}), std::invalid_argument);
  EXPECT_EQ(opt.n_observed(), 0u);
}

TEST(AskTell, RejectsBadConfig) {
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.kappa = -1.0;
  EXPECT_THROW(AskTellOptimizer(space, cfg), std::invalid_argument);
  cfg = BoConfig{};
  cfg.n_candidates = 0;
  EXPECT_THROW(AskTellOptimizer(space, cfg), std::invalid_argument);
}

TEST(AskTell, SubsampledFitStillConverges) {
  auto space = ParamSpace::paper_space();
  BoConfig cfg;
  cfg.max_fit_points = 64;  // force subsampling
  cfg.seed = 14;
  AskTellOptimizer opt(space, cfg);
  Rng noise(15);
  for (int iter = 0; iter < 25; ++iter) {
    auto batch = opt.ask(16);
    std::vector<double> ys;
    for (const auto& p : batch) ys.push_back(toy_objective(p));
    opt.tell(batch, ys);
  }
  const auto batch = opt.ask(4);
  double mean_obj = 0.0;
  for (const auto& p : batch) mean_obj += toy_objective(p);
  EXPECT_GT(mean_obj / 4.0, 0.75);
}

}  // namespace
}  // namespace agebo::bo
