// Unit tests for src/baselines: the AutoGluon-like stacking AutoML and the
// Auto-PyTorch-like restricted searcher (both surrogate-reference and real
// successive-halving modes).
#include <gtest/gtest.h>

#include "baselines/auto_ensemble.hpp"
#include "baselines/auto_pytorch_like.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/surrogate.hpp"
#include "nn/trainer.hpp"

namespace agebo::baselines {
namespace {

data::TrainValidTest small_problem(std::uint64_t seed = 3) {
  data::SyntheticSpec spec;
  spec.n_rows = 900;
  spec.n_features = 10;
  spec.n_classes = 3;
  spec.n_informative = 6;
  spec.class_sep = 2.0;
  spec.label_noise = 0.05;
  spec.seed = seed;
  const auto ds = data::make_classification(spec);
  Rng split_rng(seed + 1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);
  data::standardize(splits);
  return splits;
}

TEST(AutoEnsemble, FitsTunesAndPredicts) {
  auto splits = small_problem();
  AutoEnsembleConfig cfg;
  cfg.forest_trees = 16;
  cfg.boosting_rounds = 10;
  cfg.tuning_trials = 2;
  cfg.n_folds = 3;
  AutoEnsemble ensemble(cfg);
  const auto report = ensemble.fit(splits.train, splits.valid);

  EXPECT_EQ(report.base_models.size(), 4u);  // rf, et, gbm, knn
  EXPECT_EQ(report.total_models, 4u * 3u);   // each 3-fold bagged
  EXPECT_GT(report.valid_accuracy, 0.7);
  EXPECT_GT(report.fit_seconds, 0.0);
  EXPECT_GT(ensemble.accuracy(splits.test), 0.7);
}

TEST(AutoEnsemble, InferenceTimeMeasurable) {
  auto splits = small_problem(9);
  AutoEnsembleConfig cfg;
  cfg.forest_trees = 8;
  cfg.boosting_rounds = 6;
  cfg.tuning_trials = 1;
  cfg.n_folds = 2;
  AutoEnsemble ensemble(cfg);
  ensemble.fit(splits.train, splits.valid);
  const double t = ensemble.inference_seconds(splits.test);
  EXPECT_GT(t, 0.0);
}

TEST(AutoEnsemble, MethodsBeforeFitThrow) {
  AutoEnsemble ensemble;
  data::Dataset empty;
  EXPECT_THROW(ensemble.predict(empty), std::logic_error);
  EXPECT_THROW(ensemble.accuracy(empty), std::logic_error);
  EXPECT_THROW(ensemble.inference_seconds(empty), std::logic_error);
  EXPECT_THROW(ensemble.ensemble(), std::logic_error);
}

TEST(RestrictedGenome, HasNoSkipsAndCappedOps) {
  nas::SearchSpace space;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto g = sample_restricted_genome(space, rng);
    EXPECT_NO_THROW(space.validate(g));
    for (std::size_t d = 0; d < g.size(); ++d) {
      if (space.arity(d) == 2) {
        EXPECT_EQ(g[d], 0);  // no skip connections
      } else {
        EXPECT_LE(g[d], 20);  // widths capped at 64 units
      }
    }
  }
}

TEST(SurrogateReference, BelowFullSpaceCeilingButReasonable) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  const double ref = surrogate_reference(space, evaluator, 1500, 42);
  const auto& p = evaluator.profile();
  // Far better than a random architecture (the hill-climb works); the small
  // extra margin accounts for the default (untuned) hyperparameter gap.
  EXPECT_GT(ref, p.max_acc - p.arch_gap_cap - 0.01);
  EXPECT_LT(ref, p.max_acc);  // restricted space: can't reach the top
}

TEST(SurrogateReference, MoreBudgetNeverWorse) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::dionis_profile());
  const double small = surrogate_reference(space, evaluator, 200, 7);
  const double large = surrogate_reference(space, evaluator, 2000, 7);
  EXPECT_GE(large, small);
}

TEST(SuccessiveHalving, FindsWorkingMlp) {
  auto splits = small_problem(17);
  ShaConfig cfg;
  cfg.n_configs = 9;
  cfg.eta = 3;
  cfg.min_epochs = 1;
  cfg.rungs = 2;
  cfg.seed = 5;
  SuccessiveHalvingMlp sha(cfg);
  const auto report = sha.fit(splits.train, splits.valid);

  EXPECT_GT(report.best_valid_accuracy, 0.6);
  // Rung 0 trains 9 configs, rung 1 trains 3.
  EXPECT_EQ(report.total_trainings, 9u + 3u);
  EXPECT_EQ(report.total_epochs, 9u * 1u + 3u * 3u);

  const double acc = nn::evaluate_accuracy(sha.best_model(), splits.valid);
  EXPECT_GT(acc, 0.5);
}

TEST(SuccessiveHalving, RejectsBadConfig) {
  ShaConfig cfg;
  cfg.eta = 1;
  EXPECT_THROW(SuccessiveHalvingMlp{cfg}, std::invalid_argument);
  cfg = ShaConfig{};
  cfg.rungs = 0;
  EXPECT_THROW(SuccessiveHalvingMlp{cfg}, std::invalid_argument);
}

TEST(SuccessiveHalving, BestModelBeforeFitThrows) {
  SuccessiveHalvingMlp sha;
  EXPECT_THROW(sha.best_model(), std::logic_error);
}

}  // namespace
}  // namespace agebo::baselines
