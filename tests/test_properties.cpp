// Property-based tests: invariants that must hold across randomized inputs,
// swept with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bo/param_space.hpp"
#include "common/pca.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "dp/allreduce.hpp"
#include "eval/surrogate.hpp"
#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"

namespace agebo {
namespace {

// ---------------------------------------------------------------------------
// Property: any random genome decodes to a network whose forward pass is
// finite and whose backward pass produces finite gradients.
class GenomeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GenomeProperty, DecodeTrainStepIsFinite) {
  nas::SearchSpace space;
  Rng rng(GetParam());
  const auto g = space.random(rng);
  const auto spec = space.to_graph_spec(g, 20, 5);
  Rng net_rng(GetParam() + 1);
  nn::GraphNet net(spec, net_rng);

  nn::Tensor x(8, 20);
  std::vector<int> y(8);
  for (auto& v : x.v) v = static_cast<float>(rng.normal());
  for (auto& label : y) label = static_cast<int>(rng.index(5));

  const nn::Tensor& logits = net.forward(x);
  for (float v : logits.v) ASSERT_TRUE(std::isfinite(v));

  net.zero_grad();
  nn::Tensor dl;
  const double loss = nn::softmax_cross_entropy(logits, y, dl);
  ASSERT_TRUE(std::isfinite(loss));
  net.backward(dl);
  for (auto& block : net.params()) {
    for (float gr : *block.grads) ASSERT_TRUE(std::isfinite(gr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenomeProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Property: mutation chains always stay inside the space, and the op table
// decode/encode layout never drifts.
class MutationChainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationChainProperty, StaysValidForLongChains) {
  nas::SearchSpace space;
  Rng rng(GetParam());
  auto g = space.random(rng);
  for (int step = 0; step < 200; ++step) {
    g = space.mutate(g, rng);
  }
  EXPECT_NO_THROW(space.validate(g));
  EXPECT_NO_THROW(space.to_graph_spec(g, 54, 7).validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationChainProperty,
                         ::testing::Values(3, 17, 91, 123, 999));

// ---------------------------------------------------------------------------
// Property: allreduce over any replica count preserves the buffer mean.
class AllreduceProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, dp::AllreduceStrategy>> {};

TEST_P(AllreduceProperty, PreservesGlobalMean) {
  const auto [n, strategy] = GetParam();
  Rng rng(n * 31 + 7);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(101));
  double total = 0.0;
  for (auto& b : bufs) {
    for (auto& v : b) {
      v = static_cast<float>(rng.normal(0.0, 10.0));
      total += v;
    }
  }
  std::vector<std::vector<float>*> ptrs;
  for (auto& b : bufs) ptrs.push_back(&b);
  dp::allreduce_average(ptrs, strategy);

  double after = 0.0;
  for (const auto& b : bufs) {
    for (float v : b) after += v;
  }
  EXPECT_NEAR(after, total, 1e-2 * std::abs(total) + 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStrategies, AllreduceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 8, 16),
                       ::testing::Values(dp::AllreduceStrategy::kFlat,
                                         dp::AllreduceStrategy::kTree)));

// ---------------------------------------------------------------------------
// Property: the surrogate's accuracy response is bounded and its time
// response is positive for arbitrary valid configs, on every dataset.
class SurrogateProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SurrogateProperty, ResponsesBoundedForRandomConfigs) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space,
                                     eval::profile_by_name(GetParam()));
  auto hp_space = bo::ParamSpace::paper_space();
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    eval::ModelConfig cfg{space.random(rng), hp_space.sample(rng)};
    const auto out = evaluator.evaluate(cfg);
    EXPECT_GE(out.objective, 0.0);
    EXPECT_LE(out.objective, 1.0);
    EXPECT_GT(out.train_seconds, 0.0);
    EXPECT_LT(out.train_seconds, 3600.0 * 10);
    EXPECT_LE(evaluator.mean_accuracy(cfg), evaluator.profile().max_acc + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SurrogateProperty,
                         ::testing::Values("covertype", "airlines", "albert",
                                           "dionis"));

// ---------------------------------------------------------------------------
// Property: quantile() is monotone in q and bounded by min/max.
class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> sample(50);
  for (auto& v : sample) v = rng.normal(0.0, 5.0);
  double prev = -1e300;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double val = quantile(sample, q);
    EXPECT_GE(val, prev);
    prev = val;
  }
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0),
                   *std::min_element(sample.begin(), sample.end()));
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0),
                   *std::max_element(sample.begin(), sample.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Property: PCA explained-variance ratios are non-negative, descending, and
// sum to <= 1 for random data of any shape.
class PcaProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PcaProperty, VarianceRatiosWellFormed) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  Matrix data(rows, cols);
  for (auto& v : data.data()) v = rng.normal();
  const auto result = pca(data, 2);
  double prev = 1e300;
  double sum = 0.0;
  for (double r : result.explained_variance_ratio) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, prev);
    prev = r;
    sum += r;
  }
  EXPECT_LE(sum, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PcaProperty,
                         ::testing::Combine(::testing::Values(10, 40, 100),
                                            ::testing::Values(2, 5, 12)));

// ---------------------------------------------------------------------------
// Property: softmax cross-entropy gradient matches finite differences for
// random logits (multiple class counts).
class LossProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LossProperty, GradientMatchesFiniteDifference) {
  const std::size_t classes = GetParam();
  Rng rng(classes * 7 + 1);
  nn::Tensor logits(4, classes);
  for (auto& v : logits.v) v = static_cast<float>(rng.normal());
  std::vector<int> y(4);
  for (auto& label : y) label = static_cast<int>(rng.index(classes));

  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, y, dl);

  const float eps = 1e-3f;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t i = rng.index(logits.v.size());
    nn::Tensor up = logits;
    nn::Tensor down = logits;
    up.v[i] += eps;
    down.v[i] -= eps;
    nn::Tensor scratch;
    const double lu = nn::softmax_cross_entropy(up, y, scratch);
    const double ld = nn::softmax_cross_entropy(down, y, scratch);
    EXPECT_NEAR(dl.v[i], (lu - ld) / (2.0 * eps), 5e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, LossProperty,
                         ::testing::Values(2, 3, 7, 20));

// ---------------------------------------------------------------------------
// Property: the synthetic generator is shape-correct and deterministic for
// arbitrary class/feature combinations.
class SyntheticProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SyntheticProperty, ShapeAndDeterminism) {
  const auto [classes, features] = GetParam();
  data::SyntheticSpec spec;
  spec.n_rows = 200;
  spec.n_classes = classes;
  spec.n_features = features;
  spec.n_informative = std::min<std::size_t>(features, 4);
  spec.seed = classes * 17 + features;
  const auto a = data::make_classification(spec);
  const auto b = data::make_classification(spec);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.n_features, features);
  // All labels in range, and at least two classes present for k >= 2.
  std::set<int> seen(a.y.begin(), a.y.end());
  EXPECT_GE(seen.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyntheticProperty,
                         ::testing::Combine(::testing::Values(2, 5, 11),
                                            ::testing::Values(4, 16, 40)));

// ---------------------------------------------------------------------------
// Property: ParamSpace::sample -> to_features -> bounds hold for random
// mixed spaces.
class ParamSpaceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParamSpaceProperty, FeaturesFiniteAndValid) {
  Rng rng(GetParam());
  bo::ParamSpace space;
  space.add_real("r", 0.5, 2.0);
  space.add_real("lr", 1e-4, 1e-1, true);
  space.add_int("k", -3, 12);
  space.add_categorical("c", {1, 2, 4, 8, 16});
  for (int i = 0; i < 200; ++i) {
    const auto p = space.sample(rng);
    EXPECT_NO_THROW(space.validate(p));
    for (double f : space.to_features(p)) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParamSpaceProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace agebo
