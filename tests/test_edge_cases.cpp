// Edge-case coverage across modules: degenerate shapes, boundary
// configurations, and less-traveled code paths.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bo/optimizer.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/arff.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"

namespace agebo {
namespace {

/// JobSpec with just the gang width set (avoids designated initializers,
/// which -Wextra flags for the defaulted trailing members).
agebo::exec::JobSpec gang(std::size_t width) {
  agebo::exec::JobSpec spec;
  spec.width = width;
  return spec;
}

// --------------------------------------------------------------------------
// GraphNet structural edge cases.

TEST(GraphNetEdge, AllIdentityChainWithSkips) {
  // Identity nodes preserve width, so the skips need no projections; the
  // network degenerates to input -> relu-combined sums -> readout.
  nn::GraphSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 2;
  for (int i = 0; i < 4; ++i) {
    nn::NodeSpec node;
    node.is_identity = true;
    spec.nodes.push_back(node);
  }
  spec.nodes[2].skips = {0};
  spec.nodes[3].skips = {0, 1};
  spec.output_skips = {1, 2};
  Rng rng(1);
  nn::GraphNet net(spec, rng);
  // Only the readout has parameters: identity skips are width-preserving.
  EXPECT_EQ(net.num_params(), 6u * 2u + 2u);

  nn::Tensor x(3, 6, 0.5f);
  const auto& logits = net.forward(x);
  EXPECT_EQ(logits.cols, 2u);

  net.zero_grad();
  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, {0, 1, 0}, dl);
  EXPECT_NO_THROW(net.backward(dl));
}

TEST(GraphNetEdge, SingleRowBatch) {
  nn::GraphSpec spec;
  spec.input_dim = 3;
  spec.output_dim = 2;
  nn::NodeSpec node;
  node.units = 4;
  spec.nodes = {node};
  Rng rng(2);
  nn::GraphNet net(spec, rng);
  nn::Tensor x(1, 3, 1.0f);
  const auto& logits = net.forward(x);
  EXPECT_EQ(logits.rows, 1u);
  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, {1}, dl);
  EXPECT_NO_THROW(net.backward(dl));
}

TEST(GraphNetEdge, WrongInputWidthThrows) {
  nn::GraphSpec spec;
  spec.input_dim = 3;
  spec.output_dim = 2;
  Rng rng(3);
  nn::GraphNet net(spec, rng);
  nn::Tensor x(2, 4, 0.0f);
  EXPECT_THROW(net.forward(x), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Search-space boundaries.

TEST(SearchSpaceEdge, MaximalGenomeDecodes) {
  nas::SearchSpace space;
  nas::Genome g(space.n_decisions());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<int>(space.arity(i)) - 1;
  }
  const auto spec = space.to_graph_spec(g, 54, 7);
  EXPECT_NO_THROW(spec.validate());
  // Every node is Dense(96, sigmoid) with all skips active.
  for (const auto& node : spec.nodes) {
    EXPECT_FALSE(node.is_identity);
    EXPECT_EQ(node.units, 96u);
  }
  EXPECT_EQ(spec.output_skips.size(), 3u);
  Rng rng(4);
  nn::GraphNet net(spec, rng);
  EXPECT_GT(net.num_params(), 40000u);
}

TEST(SearchSpaceEdge, SingleNodeSpace) {
  nas::SpaceConfig cfg;
  cfg.n_variable_nodes = 1;
  nas::SearchSpace space(cfg);
  // One op decision; no skip slots anywhere except output min(3,1)=1.
  EXPECT_EQ(space.n_decisions(), 2u);
  Rng rng(5);
  const auto g = space.random(rng);
  EXPECT_NO_THROW(space.to_graph_spec(g, 5, 2).validate());
}

// --------------------------------------------------------------------------
// BO boundaries.

TEST(BoEdge, AskZeroReturnsEmpty) {
  auto space = bo::ParamSpace::paper_space();
  bo::AskTellOptimizer opt(space, bo::BoConfig{});
  EXPECT_TRUE(opt.ask(0).empty());
  // Also after the surrogate takes over.
  Rng rng(6);
  std::vector<bo::Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(space.sample(rng));
    ys.push_back(0.5);
  }
  opt.tell(pts, ys);
  EXPECT_TRUE(opt.ask(0).empty());
}

TEST(BoEdge, ExhaustedCategoricalSpaceStillAsks) {
  bo::ParamSpace space;
  space.add_categorical("only", {1, 2});
  bo::BoConfig cfg;
  cfg.n_initial_random = 1;
  bo::AskTellOptimizer opt(space, cfg);
  opt.tell({{1}, {2}}, {0.1, 0.2});
  // Everything evaluated: acquire falls back to a random sample.
  const auto batch = opt.ask(2);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BoEdge, ConstantObjectiveDoesNotBreakSurrogate) {
  auto space = bo::ParamSpace::paper_space();
  bo::AskTellOptimizer opt(space, bo::BoConfig{});
  Rng rng(7);
  std::vector<bo::Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    pts.push_back(space.sample(rng));
    ys.push_back(0.777);  // zero variance
  }
  opt.tell(pts, ys);
  EXPECT_EQ(opt.ask(4).size(), 4u);
}

// --------------------------------------------------------------------------
// Executor boundaries.

TEST(SimExecutorEdge, ManyMoreJobsThanWorkersAllComplete) {
  exec::SimulatedExecutor sim(3);
  for (int i = 0; i < 50; ++i) {
    sim.submit([] { return exec::EvalOutput{0.5, 1.0, false}; },
               exec::JobSpec{});
  }
  std::size_t total = 0;
  double last_finish = 0.0;
  while (true) {
    const auto batch = sim.get_finished(true);
    if (batch.empty()) break;
    total += batch.size();
    for (const auto& f : batch) {
      EXPECT_GE(f.finish_time, last_finish);
    }
    last_finish = batch.back().finish_time;
  }
  EXPECT_EQ(total, 50u);
  // 50 jobs of 1s on 3 workers: makespan ceil(50/3) = 17s.
  EXPECT_NEAR(sim.now(), 17.0, 1e-9);
}

TEST(SimExecutorEdge, GangWiderThanFreeWorkersWaitsForAll) {
  exec::SimulatedExecutor sim(3);
  sim.submit([] { return exec::EvalOutput{0.5, 10.0, false}; },
             exec::JobSpec{});  // 1 worker
  sim.submit([] { return exec::EvalOutput{0.5, 4.0, false}; },
             gang(3));  // all 3
  // The wide job cannot start until the 10s job frees its worker.
  std::vector<exec::Finished> all;
  while (true) {
    auto b = sim.get_finished(true);
    if (b.empty()) break;
    all.insert(all.end(), b.begin(), b.end());
  }
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].finish_time, 10.0);
  EXPECT_DOUBLE_EQ(all[1].finish_time, 14.0);
}

// --------------------------------------------------------------------------
// Search boundaries.

class TrivialEvaluator final : public eval::Evaluator {
 public:
  exec::EvalOutput evaluate(const eval::EvalRequest&) override {
    return exec::EvalOutput{0.5, 2.0, false};
  }
};

TEST(SearchEdge, ZeroBudgetProducesEmptyHistory) {
  nas::SearchSpace space;
  TrivialEvaluator evaluator;
  exec::SimulatedExecutor executor(4);
  auto cfg = core::age_config(1, 9);
  cfg.wall_time_seconds = 0.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  EXPECT_TRUE(result.history.empty());
  EXPECT_DOUBLE_EQ(result.best_objective, 0.0);
}

TEST(SearchEdge, ExplicitInitialSubmissionsRespected) {
  nas::SearchSpace space;
  TrivialEvaluator evaluator;
  exec::SimulatedExecutor executor(16);
  auto cfg = core::age_config(1, 10);
  cfg.initial_submissions = 3;
  cfg.wall_time_seconds = 3.0;  // one 2s wave only
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  EXPECT_EQ(result.history.size(), 3u);
}

TEST(SearchEdge, FailingEvaluatorYieldsZeroObjectives) {
  class Failing final : public eval::Evaluator {
   public:
    exec::EvalOutput evaluate(const eval::EvalRequest&) override {
      throw std::runtime_error("training diverged");
    }
  };
  nas::SearchSpace space;
  Failing evaluator;
  exec::SimulatedExecutor executor(2);
  auto cfg = core::age_config(1, 11);
  cfg.wall_time_seconds = 10.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  EXPECT_GT(result.history.size(), 0u);
  for (const auto& rec : result.history) {
    EXPECT_DOUBLE_EQ(rec.objective, 0.0);
  }
}

// --------------------------------------------------------------------------
// Data boundaries.

TEST(DataEdge, ArffNominalFeaturesOnly) {
  const char* arff =
      "@relation r\n"
      "@attribute color {red, green, blue}\n"
      "@attribute size {s, m}\n"
      "@attribute class {a, b}\n"
      "@data\n"
      "red, m, a\n"
      "blue, s, b\n";
  std::stringstream ss(arff);
  const auto ds = data::read_arff(ss);
  EXPECT_EQ(ds.n_features, 2u);
  EXPECT_FLOAT_EQ(ds.row(0)[0], 0.0f);  // red
  EXPECT_FLOAT_EQ(ds.row(1)[0], 2.0f);  // blue
  EXPECT_FLOAT_EQ(ds.row(0)[1], 1.0f);  // m
}

TEST(DataEdge, CsvRejectsNegativeLabel) {
  std::stringstream ss("f0,label\n1.0,-1\n");
  EXPECT_THROW(data::read_csv(ss), std::runtime_error);
}

TEST(DataEdge, MinimumRowFloorInScaledSpecs) {
  // Even a microscopic scale keeps at least 256 rows.
  const auto spec = data::airlines_spec(1e-9);
  EXPECT_GE(spec.n_rows, 256u);
}

// --------------------------------------------------------------------------
// Surrogate determinism across instances.

TEST(SurrogateEdge, TwoInstancesSameProfileAgree) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator a(space, eval::albert_profile());
  eval::SurrogateEvaluator b(space, eval::albert_profile());
  Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    eval::ModelConfig config{space.random(rng),
                             bo::ParamSpace::paper_space().sample(rng)};
    EXPECT_DOUBLE_EQ(a.evaluate(config).objective,
                     b.evaluate(config).objective);
    EXPECT_DOUBLE_EQ(a.score_z(config.genome), b.score_z(config.genome));
  }
}

TEST(SurrogateEdge, DifferentDatasetsDisagree) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator cov(space, eval::covertype_profile());
  eval::SurrogateEvaluator dio(space, eval::dionis_profile());
  Rng rng(13);
  const auto g = space.random(rng);
  // Different seeds -> different landscapes: the same genome scores
  // differently (Fig 7's "each data set requires different values").
  EXPECT_NE(cov.score_z(g), dio.score_z(g));
}

}  // namespace
}  // namespace agebo
