// Differential and determinism tests for the blocked SIMD kernel layer
// (src/nn/kernels): blocked vs naive GEMM across edge shapes, fused
// epilogues vs the unfused reference pipeline, workspace reuse, and
// bit-identical training under kernel threading. Run via `ctest -L
// kernels`.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/graph_net.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/pool.hpp"
#include "nn/kernels/workspace.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace agebo;
using namespace agebo::nn;

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (auto& v : t.v) v = static_cast<float>(rng.normal());
  return t;
}

void expect_close(const Tensor& got, const Tensor& want, double rel = 1e-4) {
  ASSERT_TRUE(got.same_shape(want))
      << got.rows << "x" << got.cols << " vs " << want.rows << "x" << want.cols;
  for (std::size_t i = 0; i < want.v.size(); ++i) {
    const double tol = rel * std::max(1.0, std::abs(double(want.v[i])));
    ASSERT_NEAR(got.v[i], want.v[i], tol) << "at flat index " << i;
  }
}

struct Shape {
  std::size_t m, k, n;
};

// 1x1, tall-skinny, wide, non-multiple-of-tile dims, zero rows, a K large
// enough to span multiple KC blocks, plus the microkernel tail cases:
// k=1 (single rank-1 update), n smaller than any NR strip, and m not a
// multiple of the MR row strip.
const Shape kEdgeShapes[] = {
    {1, 1, 1},     {257, 3, 130}, {3, 300, 2},  {129, 65, 33},
    {0, 5, 7},     {5, 0, 7},     {64, 64, 64}, {33, 600, 47},
    {6, 8, 256},   {130, 129, 1}, {1, 513, 16},
    {5, 1, 9},     {64, 32, 3},   {61, 40, 5},  {9, 1, 64},
    {2, 7, 1},
};

TEST(Kernels, BlockedMatmulMatchesNaive) {
  Rng rng(11);
  for (const auto& s : kEdgeShapes) {
    Tensor a = random_tensor(s.m, s.k, rng);
    Tensor b = random_tensor(s.k, s.n, rng);
    Tensor ref, out;
    matmul_naive(a, b, ref);
    matmul(a, b, out);
    expect_close(out, ref);
  }
}

TEST(Kernels, BlockedMatmulBtMatchesNaive) {
  Rng rng(12);
  for (const auto& s : kEdgeShapes) {
    Tensor a = random_tensor(s.m, s.k, rng);
    Tensor b = random_tensor(s.n, s.k, rng);  // out = a b^T: b is n x k
    Tensor ref, out;
    matmul_bt_naive(a, b, ref);
    matmul_bt(a, b, out);
    expect_close(out, ref);
  }
}

TEST(Kernels, BlockedMatmulAtMatchesNaive) {
  Rng rng(13);
  for (const auto& s : kEdgeShapes) {
    Tensor a = random_tensor(s.k, s.m, rng);  // out = a^T b: a is k x m
    Tensor b = random_tensor(s.k, s.n, rng);
    Tensor ref, out;
    matmul_at_naive(a, b, ref);
    matmul_at(a, b, out);
    expect_close(out, ref);
  }
}

TEST(Kernels, ZeroRowsInsideOperandsAgree) {
  // The naive kernel's sparsity skip must not change blocked results.
  Rng rng(14);
  Tensor a = random_tensor(70, 40, rng);
  for (std::size_t j = 0; j < a.cols; ++j) {
    a.at(3, j) = 0.0f;   // whole zero row
    a.at(69, j) = 0.0f;
  }
  for (std::size_t i = 0; i < a.rows; ++i) a.at(i, 7) = 0.0f;  // zero column
  Tensor b = random_tensor(40, 23, rng);
  Tensor ref, out;
  matmul_naive(a, b, ref);
  matmul(a, b, out);
  expect_close(out, ref);
}

TEST(Kernels, OutputBufferReusedWithoutReallocation) {
  Rng rng(15);
  Tensor a = random_tensor(50, 30, rng);
  Tensor b = random_tensor(30, 20, rng);
  Tensor out;
  matmul(a, b, out);
  const float* data = out.v.data();
  const std::size_t cap = out.v.capacity();
  for (int i = 0; i < 5; ++i) matmul(a, b, out);
  EXPECT_EQ(out.v.data(), data);  // resize-without-memset fast path
  EXPECT_EQ(out.v.capacity(), cap);
}

TEST(Kernels, AccumulatingGemmAddsIntoOutput) {
  Rng rng(16);
  Tensor a = random_tensor(37, 19, rng);
  Tensor b = random_tensor(19, 41, rng);
  Tensor base = random_tensor(37, 41, rng);

  Tensor want;
  matmul_naive(a, b, want);
  add_inplace(want, base);

  Tensor got = base;
  kernels::gemm(a.rows, b.cols, a.cols, a.v.data(), a.cols, b.v.data(), b.cols,
                got.v.data(), got.cols, /*accumulate=*/true);
  expect_close(got, want);
}

TEST(Kernels, FusedBiasActivationEpilogueMatchesUnfusedPipeline) {
  Rng rng(17);
  for (int ai = 0; ai < kNumActivations; ++ai) {
    const Activation act = activation_from_index(ai);
    Rng init_rng(21);
    DenseLayer layer(33, 29, /*use_bias=*/true, init_rng);
    Tensor x = random_tensor(65, 33, rng);

    // Reference: unfused naive pipeline.
    Tensor z_ref;
    matmul_naive(x, layer.weights(), z_ref);
    add_bias(z_ref, layer.bias());
    Tensor out_ref;
    apply_activation(act, z_ref, out_ref);

    Tensor z_pre, out;
    layer.forward_act(x, act, z_pre, out);
    expect_close(z_pre, z_ref);
    expect_close(out, out_ref);
  }
}

TEST(Kernels, ForwardAddAccumulatesProjection) {
  Rng rng(18);
  Rng init_rng(22);
  DenseLayer proj(24, 40, /*use_bias=*/false, init_rng);
  Tensor x = random_tensor(31, 24, rng);
  Tensor sum = random_tensor(31, 40, rng);

  Tensor prod, want = sum;
  matmul_naive(x, proj.weights(), prod);
  add_inplace(want, prod);

  Tensor got = sum;
  proj.forward_add(x, got);
  expect_close(got, want);
}

TEST(Kernels, FusedActGradMatchesUnfused) {
  Rng rng(19);
  for (int ai = 0; ai < kNumActivations; ++ai) {
    const Activation act = activation_from_index(ai);
    Tensor z = random_tensor(43, 21, rng);
    Tensor g = random_tensor(43, 21, rng);

    Tensor want = g;
    apply_activation_grad(act, z, want);

    Tensor got(43, 21);
    kernels::act_grad_mul(act, z.v.data(), g.v.data(), got.v.data(),
                          got.v.size());
    expect_close(got, want, 1e-6);
  }
}

TEST(Kernels, BackwardGradientsMatchNaivePipeline) {
  Rng rng(20);
  Rng init_a(31), init_b(31);
  DenseLayer fused(26, 17, /*use_bias=*/true, init_a);
  DenseLayer check(26, 17, /*use_bias=*/true, init_b);
  Tensor x = random_tensor(39, 26, rng);
  Tensor dz = random_tensor(39, 17, rng);

  Tensor z, dx;
  fused.forward(x, z);
  fused.backward(dz, dx);

  // Reference gradients from the naive kernels.
  Tensor gw_ref;
  matmul_at_naive(x, dz, gw_ref);
  Tensor dx_ref;
  matmul_bt_naive(dz, check.weights(), dx_ref);

  auto params = fused.params();
  const auto& gw = *params[0].grads;
  ASSERT_EQ(gw.size(), gw_ref.v.size());
  for (std::size_t i = 0; i < gw.size(); ++i) {
    ASSERT_NEAR(gw[i], gw_ref.v[i],
                1e-4 * std::max(1.0, std::abs(double(gw_ref.v[i]))));
  }
  expect_close(dx, dx_ref);
}

TEST(Kernels, WorkspaceReusesBlocksAcrossScopes) {
  auto& ws = kernels::Workspace::tls();
  ws.clear();
  float* first = nullptr;
  {
    kernels::Workspace::Scope scope(ws);
    first = scope.alloc(1000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first) % 64, 0u);
    float* second = scope.alloc(500);
    EXPECT_NE(first, second);
  }
  const std::size_t cap = ws.capacity();
  {
    kernels::Workspace::Scope scope(ws);
    // Same request after release: same memory, no growth.
    EXPECT_EQ(scope.alloc(1000), first);
  }
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(Kernels, ParallelForCoversAllChunksOnce) {
  kernels::set_max_threads(4);
  std::vector<int> hits(97, 0);
  kernels::parallel_for(hits.size(),
                        [&](std::size_t c) { hits[c] += 1; });
  kernels::set_max_threads(0);
  for (std::size_t c = 0; c < hits.size(); ++c) EXPECT_EQ(hits[c], 1);
}

TEST(Kernels, ScopedThreadLimitForcesInline) {
  kernels::ScopedThreadLimit one(1);
  EXPECT_EQ(kernels::max_threads(), 1u);
  std::vector<int> hits(8, 0);
  kernels::parallel_for(hits.size(), [&](std::size_t c) { hits[c] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Kernels, ThreadedGemmBitIdenticalToSerial) {
  // Shapes big enough to clear the parallelization threshold.
  Rng rng(23);
  Tensor a = random_tensor(512, 300, rng);
  Tensor b = random_tensor(300, 256, rng);

  Tensor serial_out;
  {
    kernels::ScopedThreadLimit one(1);
    matmul(a, b, serial_out);
  }
  Tensor threaded_out;
  {
    kernels::ScopedThreadLimit many(8);
    matmul(a, b, threaded_out);
  }
  ASSERT_TRUE(serial_out.same_shape(threaded_out));
  EXPECT_EQ(serial_out.v, threaded_out.v);  // bitwise
}

TEST(Kernels, TrainingDeterministicWithKernelThreadingEnabled) {
  // Two runs with the same seed must produce bit-identical training losses
  // even with the kernel pool engaged (disjoint-row partitioning).
  data::SyntheticSpec spec;
  spec.n_rows = 640;
  spec.n_features = 192;
  spec.n_classes = 5;
  auto ds = data::make_classification(spec);
  Rng split_rng(5);
  auto splits = data::split(ds, {}, split_rng);

  GraphSpec gspec;
  gspec.input_dim = ds.n_features;
  gspec.output_dim = ds.n_classes;
  NodeSpec wide;
  wide.units = 256;
  wide.act = Activation::kRelu;
  gspec.nodes = {wide, wide};

  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 256;
  cfg.seed = 99;

  kernels::set_max_threads(8);
  auto run = [&] {
    Rng net_rng(3);
    GraphNet net(gspec, net_rng);
    return nn::train(net, splits.train, splits.valid, cfg);
  };
  const auto r1 = run();
  const auto r2 = run();
  kernels::set_max_threads(0);

  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_EQ(r1.epochs[e].train_loss, r2.epochs[e].train_loss) << "epoch " << e;
    EXPECT_EQ(r1.epochs[e].valid_accuracy, r2.epochs[e].valid_accuracy);
  }
}

TEST(Kernels, GraphNetLossMatchesPreKernelReference) {
  // End-to-end spot check: fused forward == unfused math on a skip-heavy
  // net (projections, identity nodes, output skips).
  GraphSpec gspec;
  gspec.input_dim = 20;
  gspec.output_dim = 4;
  NodeSpec n1;
  n1.units = 48;
  n1.act = Activation::kSwish;
  NodeSpec n2;
  n2.is_identity = true;
  n2.skips = {0};
  NodeSpec n3;
  n3.units = 16;
  n3.act = Activation::kTanh;
  n3.skips = {0, 1};
  gspec.nodes = {n1, n2, n3};
  gspec.output_skips = {0, 2};

  Rng net_rng(8);
  GraphNet net(gspec, net_rng);
  Rng data_rng(9);
  Tensor x = random_tensor(32, 20, data_rng);

  const Tensor& logits = net.forward(x);
  ASSERT_EQ(logits.rows, 32u);
  ASSERT_EQ(logits.cols, 4u);

  // Forward twice: caches must be reused, result identical.
  Tensor first = logits;
  const Tensor& again = net.forward(x);
  EXPECT_EQ(first.v, again.v);
}

}  // namespace
