// Unit tests for src/exec: thread pool, live executor, and the event-driven
// cluster simulator (queueing semantics, virtual clock, utilization).
// Fault-path coverage (timeouts, retries, stragglers, injection) lives in
// test_faults.cpp (ctest label: faults).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exec/live_executor.hpp"
#include "exec/sim_executor.hpp"
#include "exec/thread_pool.hpp"

namespace agebo::exec {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.enqueue([&counter] { counter++; });
  }
  // Destructor drains the queue.
  while (counter.load() < 100) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SurvivesThrowingTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.enqueue([] { throw std::runtime_error("task boom"); });
  pool.enqueue([&counter] { counter++; });
  while (counter.load() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(counter.load(), 1);
}

TEST(LiveExecutor, RunsJobsAndCollectsResults) {
  LiveExecutor executor(2);
  const auto id1 = executor.submit(
      [] {
        EvalOutput out;
        out.objective = 0.5;
        return out;
      },
      JobSpec{});
  const auto id2 = executor.submit(
      [] {
        EvalOutput out;
        out.objective = 0.7;
        return out;
      },
      JobSpec{});
  std::vector<Finished> all;
  while (all.size() < 2) {
    auto batch = executor.get_finished(true);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(all.size(), 2u);
  double sum = 0.0;
  for (const auto& f : all) {
    EXPECT_TRUE(f.id == id1 || f.id == id2);
    EXPECT_EQ(f.attempts, 1u);
    sum += f.output.objective;
  }
  EXPECT_NEAR(sum, 1.2, 1e-12);
}

TEST(LiveExecutor, ExceptionBecomesFailedResult) {
  LiveExecutor executor(1);
  executor.submit([]() -> EvalOutput { throw std::runtime_error("boom"); },
                  JobSpec{});
  auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_DOUBLE_EQ(finished[0].output.objective, 0.0);
}

TEST(LiveExecutor, GetFinishedEmptyWhenIdle) {
  LiveExecutor executor(1);
  EXPECT_TRUE(executor.get_finished(true).empty());
  EXPECT_EQ(executor.num_in_flight(), 0u);
}

TEST(LiveExecutor, MeasuresTrainSecondsWhenUnset) {
  LiveExecutor executor(1);
  executor.submit(
      [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return EvalOutput{0.9, 0.0, false};
      },
      JobSpec{});
  auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_GE(finished[0].output.train_seconds, 0.02);
}

TEST(LiveExecutor, TagEchoedBack) {
  LiveExecutor executor(1);
  JobSpec spec;
  spec.tag = "probe";
  executor.submit([] { return EvalOutput{0.5, 0.0, false}; }, spec);
  auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].tag, "probe");
}

TEST(SimExecutor, SingleJobAdvancesClockToDuration) {
  SimulatedExecutor sim(4);
  sim.submit([] { return EvalOutput{0.8, 100.0, false}; }, JobSpec{});
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimExecutor, ParallelJobsShareWorkers) {
  // 2 workers, 3 jobs of 10s: third queues behind the first free worker.
  SimulatedExecutor sim(2);
  for (int i = 0; i < 3; ++i) {
    sim.submit([] { return EvalOutput{0.5, 10.0, false}; }, JobSpec{});
  }
  auto first = sim.get_finished(true);
  EXPECT_EQ(first.size(), 2u);  // both 10s jobs finish together
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  auto second = sim.get_finished(true);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second[0].finish_time, 20.0);
}

TEST(SimExecutor, JobsSubmittedLaterStartAtCurrentClock) {
  SimulatedExecutor sim(1);
  sim.submit([] { return EvalOutput{0.5, 5.0, false}; }, JobSpec{});
  sim.get_finished(true);  // clock -> 5
  sim.submit([] { return EvalOutput{0.5, 7.0, false}; }, JobSpec{});
  auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 12.0);
}

TEST(SimExecutor, NonBlockingReturnsEmptyBeforeCompletion) {
  SimulatedExecutor sim(1);
  sim.submit([] { return EvalOutput{0.5, 50.0, false}; }, JobSpec{});
  EXPECT_TRUE(sim.get_finished(false).empty());
  EXPECT_EQ(sim.num_in_flight(), 1u);
}

TEST(SimExecutor, DeterministicTieBreakById) {
  SimulatedExecutor sim(4);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(
        sim.submit([] { return EvalOutput{0.5, 10.0, false}; }, JobSpec{}));
  }
  auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(finished[i].id, ids[i]);
}

TEST(SimExecutor, FailedEvalReported) {
  SimulatedExecutor sim(1);
  sim.submit([]() -> EvalOutput { throw std::runtime_error("x"); }, JobSpec{});
  auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
}

TEST(SimExecutor, UtilizationFullWhenSaturated) {
  SimulatedExecutor sim(2);
  for (int i = 0; i < 4; ++i) {
    sim.submit([] { return EvalOutput{0.5, 10.0, false}; }, JobSpec{});
  }
  while (!sim.get_finished(true).empty()) {
  }
  const auto u = sim.utilization();
  EXPECT_EQ(u.workers, 2u);
  EXPECT_NEAR(u.fraction(), 1.0, 1e-9);
}

TEST(SimExecutor, OverheadLowersUtilization) {
  // 10s jobs with 2.5s launch overhead: utilization 10 / 12.5 = 80%.
  SimulatedExecutor sim(1, 2.5);
  for (int i = 0; i < 4; ++i) {
    sim.submit([] { return EvalOutput{0.5, 10.0, false}; }, JobSpec{});
  }
  while (!sim.get_finished(true).empty()) {
  }
  EXPECT_NEAR(sim.utilization().fraction(), 0.8, 1e-9);
}

TEST(SimExecutor, ZeroDurationClampedToEpsilon) {
  SimulatedExecutor sim(1);
  sim.submit([] { return EvalOutput{0.5, 0.0, false}; }, JobSpec{});
  auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_GT(finished[0].finish_time, 0.0);
}

TEST(SimExecutor, RejectsBadConstruction) {
  EXPECT_THROW(SimulatedExecutor(0), std::invalid_argument);
  EXPECT_THROW(SimulatedExecutor(1, -1.0), std::invalid_argument);
}

TEST(Utilization, FractionHandlesZeroElapsed) {
  Utilization u;
  EXPECT_DOUBLE_EQ(u.fraction(), 0.0);
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 2.0;
  policy.backoff_max_seconds = 10.0;
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 1), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 2), 4.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 3), 8.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 4), 10.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 9), 10.0);
}

}  // namespace
}  // namespace agebo::exec
