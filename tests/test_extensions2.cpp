// Tests for the second extension wave: ARFF reading, the expected-
// improvement acquisition option, and hyperparameter marginal analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bo/optimizer.hpp"
#include "core/hp_analysis.hpp"
#include "data/arff.hpp"

namespace agebo {
namespace {

// --------------------------------------------------------------------------
// ARFF reader.

constexpr const char* kArff = R"(% An example in the OpenML style
@RELATION toy

@ATTRIBUTE elevation NUMERIC
@ATTRIBUTE slope REAL
@ATTRIBUTE soil {clay, sand, loam}
@ATTRIBUTE class {no, yes}

@DATA
100.5, 3.2, clay, no
200.0, 1.1, sand, yes
150.0, ?, loam, yes
)";

TEST(Arff, ParsesNumericNominalAndMissing) {
  std::stringstream ss(kArff);
  const auto ds = data::read_arff(ss);
  EXPECT_EQ(ds.n_rows, 3u);
  EXPECT_EQ(ds.n_features, 3u);  // elevation, slope, soil (label-encoded)
  EXPECT_EQ(ds.n_classes, 2u);
  EXPECT_FLOAT_EQ(ds.row(0)[0], 100.5f);
  EXPECT_FLOAT_EQ(ds.row(0)[2], 0.0f);  // clay -> 0
  EXPECT_FLOAT_EQ(ds.row(1)[2], 1.0f);  // sand -> 1
  EXPECT_FLOAT_EQ(ds.row(2)[1], 0.0f);  // '?' -> 0
  EXPECT_EQ(ds.y, (std::vector<int>{0, 1, 1}));
}

TEST(Arff, ExplicitClassAttribute) {
  const char* arff =
      "@relation r\n"
      "@attribute target {a, b}\n"
      "@attribute x numeric\n"
      "@data\n"
      "b, 1.5\n"
      "a, 2.5\n";
  std::stringstream ss(arff);
  data::ArffOptions options;
  options.class_attribute = "target";
  const auto ds = data::read_arff(ss, options);
  EXPECT_EQ(ds.n_features, 1u);
  EXPECT_EQ(ds.y, (std::vector<int>{1, 0}));
  EXPECT_FLOAT_EQ(ds.row(0)[0], 1.5f);
}

TEST(Arff, QuotedNamesAndComments) {
  const char* arff =
      "% comment line\n"
      "@relation 'my relation'\n"
      "@attribute 'feature one' numeric\n"
      "@attribute class {x, y}\n"
      "@data\n"
      "% another comment\n"
      "1.0, y\n";
  std::stringstream ss(arff);
  const auto ds = data::read_arff(ss);
  EXPECT_EQ(ds.n_rows, 1u);
  EXPECT_EQ(ds.y[0], 1);
}

TEST(Arff, RejectsMalformedInput) {
  {
    std::stringstream ss("@relation r\n@data\n1,2\n");
    EXPECT_THROW(data::read_arff(ss), std::runtime_error);  // no attributes
  }
  {
    std::stringstream ss(
        "@relation r\n@attribute x numeric\n@attribute c {a,b}\n@data\n"
        "1.0, z\n");
    EXPECT_THROW(data::read_arff(ss), std::runtime_error);  // unknown class
  }
  {
    std::stringstream ss(
        "@relation r\n@attribute x numeric\n@attribute c numeric\n@data\n");
    EXPECT_THROW(data::read_arff(ss), std::runtime_error);  // numeric class
  }
  {
    std::stringstream ss("@relation r\n@attribute x numeric\n");
    EXPECT_THROW(data::read_arff(ss), std::runtime_error);  // no @data
  }
  {
    std::stringstream ss(
        "@relation r\n@attribute x numeric\n@attribute c {a,b}\n@data\n"
        "1.0\n");
    EXPECT_THROW(data::read_arff(ss), std::runtime_error);  // short row
  }
}

TEST(Arff, RejectsClassAttributeNotFound) {
  std::stringstream ss(kArff);
  data::ArffOptions options;
  options.class_attribute = "nope";
  EXPECT_THROW(data::read_arff(ss, options), std::runtime_error);
}

// --------------------------------------------------------------------------
// Expected-improvement acquisition.

double toy_objective(const bo::Point& p) {
  return 1.0 - 0.3 * std::pow(std::log10(p[1] / 0.004), 2.0) -
         0.05 * std::abs(std::log2(p[0] / 256.0)) -
         0.04 * std::abs(std::log2(p[2] / 2.0));
}

TEST(ExpectedImprovement, ConvergesLikeUcb) {
  auto space = bo::ParamSpace::paper_space();
  bo::BoConfig cfg;
  cfg.acquisition = bo::Acquisition::kExpectedImprovement;
  cfg.seed = 31;
  bo::AskTellOptimizer opt(space, cfg);
  for (int iter = 0; iter < 25; ++iter) {
    auto batch = opt.ask(8);
    std::vector<double> ys;
    for (const auto& p : batch) ys.push_back(toy_objective(p));
    opt.tell(batch, ys);
  }
  const auto batch = opt.ask(8);
  int near = 0;
  for (const auto& p : batch) {
    if (std::abs(std::log10(p[1] / 0.004)) < 0.5) ++near;
  }
  EXPECT_GE(near, 5);
}

TEST(ExpectedImprovement, DiffersFromUcbProposals) {
  auto space = bo::ParamSpace::paper_space();
  Rng rng(33);
  std::vector<bo::Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    auto p = space.sample(rng);
    ys.push_back(toy_objective(p));
    pts.push_back(std::move(p));
  }
  auto propose = [&](bo::Acquisition acq) {
    bo::BoConfig cfg;
    cfg.acquisition = acq;
    cfg.seed = 34;
    bo::AskTellOptimizer opt(space, cfg);
    opt.tell(pts, ys);
    std::string keys;
    for (const auto& p : opt.ask(8)) keys += space.key(p) + ";";
    return keys;
  };
  // Not required to be different on every seed, but with kappa=0.001 vs EI
  // the ranking criterion differs; on this seed the proposals diverge.
  EXPECT_NE(propose(bo::Acquisition::kUcb),
            propose(bo::Acquisition::kExpectedImprovement));
}

// --------------------------------------------------------------------------
// Hyperparameter marginal analysis.

core::SearchResult fake_history() {
  core::SearchResult r;
  auto add = [&r](double bs, double lr, double n, double obj) {
    core::EvalRecord rec;
    rec.index = r.history.size();
    rec.finish_time = static_cast<double>(r.history.size());
    rec.objective = obj;
    rec.config.genome = nas::Genome(5, 0);
    rec.config.hparams = {bs, lr, n};
    r.history.push_back(rec);
  };
  add(256, 0.001, 1, 0.90);
  add(256, 0.0011, 1, 0.92);
  add(256, 0.0012, 1, 0.91);
  add(64, 0.01, 2, 0.80);
  add(64, 0.011, 2, 0.81);
  add(512, 0.1, 8, 0.60);
  r.best_index = 1;
  r.best_objective = 0.92;
  return r;
}

TEST(HpAnalysis, MarginalGroupsByValue) {
  const auto r = fake_history();
  const auto bs = core::hp_marginal(r, 0);
  ASSERT_EQ(bs.size(), 3u);  // 64, 256, 512
  EXPECT_DOUBLE_EQ(bs[0].value, 64.0);
  EXPECT_EQ(bs[0].count, 2u);
  EXPECT_NEAR(bs[0].mean_objective, 0.805, 1e-9);
  EXPECT_DOUBLE_EQ(bs[1].value, 256.0);
  EXPECT_DOUBLE_EQ(bs[1].best_objective, 0.92);
}

TEST(HpAnalysis, LearningRateBucketsByDecadeThirds) {
  const auto r = fake_history();
  const auto lr = core::hp_marginal(r, 1);
  // 0.001/0.0011/0.0012 share one bucket; 0.01/0.011 another; 0.1 a third.
  ASSERT_EQ(lr.size(), 3u);
  EXPECT_EQ(lr[0].count, 3u);
  EXPECT_EQ(lr[1].count, 2u);
  EXPECT_EQ(lr[2].count, 1u);
}

TEST(HpAnalysis, MarginalRejectsBadDimension) {
  const auto r = fake_history();
  EXPECT_THROW(core::hp_marginal(r, 3), std::invalid_argument);
}

TEST(HpAnalysis, TopKSummaryFindsTableThreeCluster) {
  const auto r = fake_history();
  const auto summary = core::summarize_top_k(r, 3);
  EXPECT_EQ(summary.k, 3u);
  EXPECT_DOUBLE_EQ(summary.modal_values[0], 256.0);  // bs cluster
  EXPECT_DOUBLE_EQ(summary.modal_values[2], 1.0);    // n cluster
  EXPECT_NEAR(summary.lr_geo_mean, 0.0011, 2e-4);
}

TEST(HpAnalysis, TopKRejectsEmpty) {
  core::SearchResult empty;
  EXPECT_THROW(core::summarize_top_k(empty, 5), std::invalid_argument);
}

}  // namespace
}  // namespace agebo
