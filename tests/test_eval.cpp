// Unit tests for src/eval: config decoding, the calibrated surrogate
// performance model (response-surface invariants), and the real-training
// evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/surrogate.hpp"
#include "eval/training_eval.hpp"
#include "nn/trainer.hpp"

namespace agebo::eval {
namespace {

TEST(Evaluation, ToDpConfigDecodesPaperOrder) {
  const auto cfg = to_dp_config({128.0, 0.02, 4.0}, 20, 9);
  EXPECT_EQ(cfg.bs1, 128u);
  EXPECT_DOUBLE_EQ(cfg.lr1, 0.02);
  EXPECT_EQ(cfg.n_procs, 4u);
  EXPECT_EQ(cfg.epochs, 20u);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Evaluation, ToDpConfigRejectsBadInput) {
  EXPECT_THROW(to_dp_config({128.0, 0.02}), std::invalid_argument);
  EXPECT_THROW(to_dp_config({0.0, 0.02, 1.0}), std::invalid_argument);
  EXPECT_THROW(to_dp_config({128.0, -0.1, 1.0}), std::invalid_argument);
  EXPECT_THROW(to_dp_config({128.0, 0.02, 0.0}), std::invalid_argument);
}

TEST(Evaluation, DefaultHparamsMatchPaper) {
  const auto hp = default_hparams(8);
  EXPECT_EQ(hp, (bo::Point{256.0, 0.01, 8.0}));
}

TEST(DpSpeedup, MatchesTableOneAnchors) {
  // Calibrated to Table I: time ratios 26.54/8.97/5.38/3.19.
  EXPECT_NEAR(dp_speedup(1), 1.0, 1e-9);
  EXPECT_NEAR(dp_speedup(2), 26.54 / 8.97, 0.02);
  EXPECT_NEAR(dp_speedup(4), 26.54 / 5.38, 0.05);
  EXPECT_NEAR(dp_speedup(8), 26.54 / 3.19, 0.06);
  EXPECT_THROW(dp_speedup(0.5), std::invalid_argument);
}

TEST(DpSpeedup, MonotoneIncreasing) {
  double prev = 0.0;
  for (double n : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0}) {
    const double s = dp_speedup(n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Profiles, FourPaperProfilesExist) {
  const auto profiles = paper_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "covertype");
  EXPECT_EQ(profiles[3].name, "dionis");
  EXPECT_EQ(profile_by_name("albert").name, "albert");
  EXPECT_THROW(profile_by_name("mnist"), std::invalid_argument);
}

TEST(Profiles, TableThreeOptimaEncoded) {
  // Per-dataset scaling limits: Covertype 1, Airlines/Albert 2, Dionis 4.
  EXPECT_EQ(covertype_profile().scaling_limit, 1u);
  EXPECT_EQ(airlines_profile().scaling_limit, 2u);
  EXPECT_EQ(albert_profile().scaling_limit, 2u);
  EXPECT_EQ(dionis_profile().scaling_limit, 4u);
}

class SurrogateTest : public ::testing::Test {
 protected:
  nas::SearchSpace space_;
  SurrogateEvaluator evaluator_{space_, covertype_profile()};

  ModelConfig config(std::uint64_t seed, bo::Point hp) {
    Rng rng(seed);
    return ModelConfig{space_.random(rng), std::move(hp)};
  }
};

TEST_F(SurrogateTest, DeterministicPerConfig) {
  const auto cfg = config(1, default_hparams(2));
  const auto a = evaluator_.evaluate(cfg);
  const auto b = evaluator_.evaluate(cfg);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_DOUBLE_EQ(a.train_seconds, b.train_seconds);
}

TEST_F(SurrogateTest, QualityMonotoneInScore) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto g = space_.random(rng);
    const double z = evaluator_.score_z(g);
    const double q = evaluator_.quality(g);
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 1.0);
    // quality = logistic(1.2 z).
    EXPECT_NEAR(q, 1.0 / (1.0 + std::exp(-1.2 * z)), 1e-12);
  }
}

TEST_F(SurrogateTest, BetterArchitectureHigherMeanAccuracy) {
  Rng rng(3);
  const auto hp = default_hparams(1);
  // Find two genomes with clearly different z.
  auto g_low = space_.random(rng);
  auto g_high = g_low;
  for (int i = 0; i < 200; ++i) {
    auto g = space_.random(rng);
    if (evaluator_.score_z(g) < evaluator_.score_z(g_low)) g_low = g;
    if (evaluator_.score_z(g) > evaluator_.score_z(g_high)) g_high = g;
  }
  EXPECT_GT(evaluator_.mean_accuracy({g_high, hp}),
            evaluator_.mean_accuracy({g_low, hp}));
}

TEST_F(SurrogateTest, ArchGapCapBoundsWorstCase) {
  Rng rng(4);
  const auto& p = evaluator_.profile();
  const auto hp = bo::Point{256.0, p.opt_lr_eff, 1.0};  // tuned hp
  for (int i = 0; i < 50; ++i) {
    const auto g = space_.random(rng);
    EXPECT_GE(evaluator_.mean_accuracy({g, hp}),
              p.max_acc - p.arch_gap_cap - 1e-9);
  }
}

TEST_F(SurrogateTest, OptimalHparamsMaximizeMeanAccuracy) {
  Rng rng(5);
  const auto g = space_.random(rng);
  const auto& p = evaluator_.profile();
  // Covertype optimum: bs_eff 256, lr_eff 0.0014, n = 1.
  const double best = evaluator_.mean_accuracy({g, {256.0, p.opt_lr_eff, 1.0}});
  EXPECT_GT(best, evaluator_.mean_accuracy({g, {256.0, 0.08, 1.0}}));
  EXPECT_GT(best, evaluator_.mean_accuracy({g, {1024.0, p.opt_lr_eff, 1.0}}));
  EXPECT_GT(best, evaluator_.mean_accuracy({g, {256.0, p.opt_lr_eff / 8.0, 8.0}}));
}

TEST_F(SurrogateTest, LinearScalingRulePenalizesPastLimit) {
  // AgE-n defaults: accuracy ceiling drops sharply from n=4 to n=8 on
  // Covertype (Table I's signature).
  Rng rng(6);
  const auto g = space_.random(rng);
  const double a4 = evaluator_.mean_accuracy({g, default_hparams(4)});
  const double a8 = evaluator_.mean_accuracy({g, default_hparams(8)});
  EXPECT_GT(a4 - a8, 0.01);
}

TEST_F(SurrogateTest, TrainingTimeDecreasesWithProcs) {
  Rng rng(7);
  const auto g = space_.random(rng);
  double prev = 1e18;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const double t = evaluator_.mean_train_seconds({g, default_hparams(n)});
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST_F(SurrogateTest, TableOneTimeAnchors) {
  // Mean training time for an average-cost architecture at n=1 is
  // base_minutes; the n=2/4/8 ratios follow the calibrated speedup.
  Rng rng(8);
  RunningStats times;
  for (int i = 0; i < 300; ++i) {
    const auto g = space_.random(rng);
    times.add(evaluator_.mean_train_seconds({g, default_hparams(1)}) / 60.0);
  }
  EXPECT_NEAR(times.mean(), covertype_profile().base_minutes, 2.5);
}

TEST_F(SurrogateTest, BiggerNetworksCostMore) {
  nas::Genome small(space_.n_decisions(), 0);  // all identity
  nas::Genome big(space_.n_decisions(), 0);
  for (std::size_t j = 0; j < space_.n_decisions(); ++j) {
    if (space_.arity(j) > 2) big[j] = 26;  // Dense(96, swish)
  }
  EXPECT_GT(evaluator_.mean_train_seconds({big, default_hparams(1)}),
            evaluator_.mean_train_seconds({small, default_hparams(1)}));
}

TEST_F(SurrogateTest, StabilityMixtureCreatesShortfalls) {
  // With default (untuned) hyperparameters many evaluations land well
  // below their potential; the best stay close to it.
  Rng rng(9);
  const auto g = space_.random(rng);
  const double potential = evaluator_.mean_accuracy({g, default_hparams(4)});
  RunningStats observed;
  // Vary lr slightly to decorrelate the noise hash.
  for (int i = 0; i < 400; ++i) {
    bo::Point hp = default_hparams(4);
    hp[1] *= 1.0 + 1e-6 * i;
    observed.add(evaluator_.evaluate(ModelConfig{g, hp}).objective);
  }
  EXPECT_LT(observed.mean(), potential - 0.01);  // typical run falls short
  EXPECT_GT(observed.max(), potential - 0.01);   // lucky runs get close
}

TEST_F(SurrogateTest, TunedHparamsTrainMoreStably) {
  Rng rng(10);
  const auto g = space_.random(rng);
  const auto& p = evaluator_.profile();
  auto shortfall_rate = [&](bo::Point hp) {
    const double potential = evaluator_.mean_accuracy({g, hp});
    int stable = 0;
    for (int i = 0; i < 300; ++i) {
      bo::Point jitter = hp;
      jitter[1] *= 1.0 + 1e-6 * i;
      if (evaluator_.evaluate(ModelConfig{g, jitter}).objective >
          potential - 0.01) {
        ++stable;
      }
    }
    return stable / 300.0;
  };
  const double tuned = shortfall_rate({256.0, p.opt_lr_eff, 1.0});
  const double untuned = shortfall_rate(default_hparams(8));
  EXPECT_GT(tuned, untuned + 0.1);
}

TEST_F(SurrogateTest, RejectsMalformedHparams) {
  Rng rng(11);
  const auto g = space_.random(rng);
  EXPECT_THROW(evaluator_.mean_accuracy({g, {256.0, 0.01}}), std::invalid_argument);
}

TEST(TrainingEvaluator, TrainsAndScoresRealNetwork) {
  auto spec = data::covertype_spec(0.002, 5);
  const auto ds = data::make_classification(spec);
  Rng split_rng(1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);
  data::standardize(splits);

  TrainingEvalConfig cfg;
  cfg.epochs = 3;
  TrainingEvaluator evaluator(splits.train, splits.valid, cfg);

  Rng rng(2);
  ModelConfig mc;
  mc.genome = evaluator.space().random(rng);
  mc.hparams = {128.0, 0.01, 2.0};
  const auto out = evaluator.evaluate(mc);
  EXPECT_FALSE(out.failed);
  EXPECT_GT(out.objective, 0.3);  // 7 classes, must beat chance comfortably
  EXPECT_GT(out.train_seconds, 0.0);
}

TEST(TrainingEvaluator, TrainModelReturnsUsableNetwork) {
  auto spec = data::covertype_spec(0.002, 6);
  const auto ds = data::make_classification(spec);
  Rng split_rng(3);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);
  data::standardize(splits);

  TrainingEvalConfig cfg;
  cfg.epochs = 3;
  TrainingEvaluator evaluator(splits.train, splits.valid, cfg);
  Rng rng(4);
  ModelConfig mc;
  mc.genome = evaluator.space().random(rng);
  mc.hparams = {128.0, 0.01, 1.0};
  exec::EvalOutput out;
  auto net = evaluator.train_model(mc, &out);
  ASSERT_NE(net, nullptr);
  const double acc = nn::evaluate_accuracy(*net, splits.valid);
  // The returned network reproduces the training-run quality band.
  EXPECT_NEAR(acc, out.objective, 0.12);
}

TEST(TrainingEvaluator, RejectsMismatchedSplits) {
  auto spec = data::covertype_spec(0.002, 7);
  const auto ds = data::make_classification(spec);
  Rng split_rng(5);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);
  auto bad = splits.valid;
  bad.n_features = 3;
  bad.x.resize(bad.n_rows * 3);
  EXPECT_THROW(TrainingEvaluator(splits.train, bad), std::invalid_argument);
}

}  // namespace
}  // namespace agebo::eval
