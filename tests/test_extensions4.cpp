// Tests for the fourth extension wave: greedy ensemble selection (alone and
// as the stacking combiner), architecture/population metrics, one-hot /
// min-max encoders, and the data-parallel performance model.
#include <gtest/gtest.h>

#include <cmath>

#include "data/encoding.hpp"
#include "data/synthetic.hpp"
#include "dp/perf_model.hpp"
#include "ml/ensemble_selection.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/stacking.hpp"
#include "nas/arch_metrics.hpp"

namespace agebo {
namespace {

// --------------------------------------------------------------------------
// Ensemble selection.

ml::CandidatePredictions constant_predictor(std::size_t rows,
                                            std::size_t classes,
                                            std::size_t predicted) {
  ml::CandidatePredictions c;
  c.n_rows = rows;
  c.n_classes = classes;
  c.proba.assign(rows * classes, 0.0);
  for (std::size_t r = 0; r < rows; ++r) c.proba[r * classes + predicted] = 1.0;
  return c;
}

TEST(EnsembleSelection, PicksTheAccurateCandidate) {
  // Labels alternate 0/1; candidate 0 always says 0 (50%), candidate 1
  // matches the labels exactly (100%).
  const std::size_t rows = 20;
  std::vector<int> labels(rows);
  ml::CandidatePredictions oracle;
  oracle.n_rows = rows;
  oracle.n_classes = 2;
  oracle.proba.assign(rows * 2, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    labels[r] = static_cast<int>(r % 2);
    oracle.proba[r * 2 + labels[r]] = 1.0;
  }
  const auto result = ml::select_ensemble(
      {constant_predictor(rows, 2, 0), oracle}, labels);
  EXPECT_DOUBLE_EQ(result.validation_accuracy, 1.0);
  EXPECT_GT(result.weights[1], result.weights[0]);
  EXPECT_DOUBLE_EQ(result.weights[0] + result.weights[1], 1.0);
}

TEST(EnsembleSelection, BlendBeatsBothWhenComplementary) {
  // Candidate A perfect on even rows, candidate B perfect on odd rows, both
  // mildly confident elsewhere: the 50/50 blend is perfect.
  const std::size_t rows = 12;
  std::vector<int> labels(rows);
  ml::CandidatePredictions a;
  ml::CandidatePredictions b;
  for (auto* c : {&a, &b}) {
    c->n_rows = rows;
    c->n_classes = 2;
    c->proba.assign(rows * 2, 0.5);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    labels[r] = static_cast<int>(r % 2);
    if (r % 2 == 0) {
      a.proba[r * 2 + 0] = 0.9;
      a.proba[r * 2 + 1] = 0.1;
      b.proba[r * 2 + 0] = 0.45;
      b.proba[r * 2 + 1] = 0.55;  // wrong, low margin
    } else {
      b.proba[r * 2 + 1] = 0.9;
      b.proba[r * 2 + 0] = 0.1;
      a.proba[r * 2 + 1] = 0.45;
      a.proba[r * 2 + 0] = 0.55;  // wrong, low margin
    }
  }
  const auto result = ml::select_ensemble({a, b}, labels);
  EXPECT_DOUBLE_EQ(result.validation_accuracy, 1.0);
  EXPECT_GT(result.weights[0], 0.0);
  EXPECT_GT(result.weights[1], 0.0);
}

TEST(EnsembleSelection, RejectsBadShapes) {
  std::vector<int> labels = {0, 1};
  EXPECT_THROW(ml::select_ensemble({}, labels), std::invalid_argument);
  auto c = constant_predictor(3, 2, 0);  // 3 rows vs 2 labels
  EXPECT_THROW(ml::select_ensemble({c}, labels), std::invalid_argument);
}

TEST(EnsembleSelection, BlendRowWeightsApplied) {
  auto a = constant_predictor(1, 2, 0);
  auto b = constant_predictor(1, 2, 1);
  const auto blend = ml::blend_row({a, b}, {0.25, 0.75}, 0);
  EXPECT_DOUBLE_EQ(blend[0], 0.25);
  EXPECT_DOUBLE_EQ(blend[1], 0.75);
}

TEST(StackingGreedy, GreedyCombinerWorksEndToEnd) {
  data::SyntheticSpec spec;
  spec.n_rows = 600;
  spec.n_features = 8;
  spec.n_classes = 3;
  spec.n_informative = 5;
  spec.class_sep = 2.0;
  spec.seed = 51;
  const auto ds = data::make_classification(spec);

  std::vector<ml::ClassifierFactory> factories;
  factories.push_back([] {
    return std::make_unique<ml::ClassifierAdapter<ml::RandomForestClassifier>>(
        ml::RandomForestClassifier(ml::random_forest_defaults(10)), "rf");
  });
  factories.push_back([] {
    ml::KnnConfig kc;
    kc.k = 7;
    return std::make_unique<ml::ClassifierAdapter<ml::KnnClassifier>>(
        ml::KnnClassifier(kc), "knn");
  });
  ml::StackingConfig cfg;
  cfg.n_folds = 3;
  cfg.meta_learner = ml::MetaLearner::kGreedyWeights;
  ml::StackingEnsemble stack(std::move(factories), cfg);
  stack.fit(ds);

  ASSERT_EQ(stack.base_weights().size(), 2u);
  double weight_sum = 0.0;
  for (double w : stack.base_weights()) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_GT(stack.accuracy(ds), 0.8);
}

// --------------------------------------------------------------------------
// Architecture metrics.

TEST(ArchMetrics, CountsStructure) {
  nas::SearchSpace space;
  nas::Genome g(space.n_decisions(), 0);
  g[0] = 6;   // N1: Dense(32, identity-act)
  g[1] = 1;   // N2: Dense(16, identity-act)
  g[2] = 1;   // N2 skip from input
  const auto stats = nas::arch_stats(space, g, 10, 3);
  EXPECT_EQ(stats.n_dense_nodes, 2u);
  EXPECT_EQ(stats.n_identity_nodes, 8u);
  EXPECT_EQ(stats.n_skips, 1u);
  EXPECT_EQ(stats.total_units, 48u);
  EXPECT_EQ(stats.max_width, 32u);
  EXPECT_GT(stats.n_params, 0u);
}

TEST(ArchMetrics, HammingDistance) {
  EXPECT_EQ(nas::hamming({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(nas::hamming({1, 2, 3}, {0, 2, 4}), 2u);
  EXPECT_THROW(nas::hamming({1}, {1, 2}), std::invalid_argument);
}

TEST(ArchMetrics, DiversityOfIdenticalPopulationIsZero) {
  nas::SearchSpace space;
  Rng rng(3);
  const auto g = space.random(rng);
  const auto div = nas::population_diversity({g, g, g});
  EXPECT_EQ(div.n_unique, 1u);
  EXPECT_DOUBLE_EQ(div.mean_hamming, 0.0);
  EXPECT_DOUBLE_EQ(div.fixed_fraction, 1.0);
}

TEST(ArchMetrics, RandomPopulationIsDiverse) {
  nas::SearchSpace space;
  Rng rng(4);
  std::vector<nas::Genome> genomes;
  for (int i = 0; i < 12; ++i) genomes.push_back(space.random(rng));
  const auto div = nas::population_diversity(genomes);
  EXPECT_EQ(div.n_unique, 12u);
  EXPECT_GT(div.mean_hamming, 15.0);  // 37 decisions, mostly differing
  EXPECT_LT(div.fixed_fraction, 0.2);
}

// --------------------------------------------------------------------------
// Encoders.

TEST(OneHot, ExpandsCategoricalColumns) {
  data::Dataset ds;
  ds.n_rows = 3;
  ds.n_features = 3;
  ds.n_classes = 2;
  // col 1 is categorical with values {0,1,2}; cols 0 and 2 numeric.
  ds.x = {0.5f, 0.0f, 7.0f, 1.5f, 2.0f, 8.0f, 2.5f, 1.0f, 9.0f};
  ds.y = {0, 1, 0};

  data::OneHotEncoder encoder;
  encoder.fit(ds, {1});
  EXPECT_EQ(encoder.output_features(), 2u + 3u);
  const auto out = encoder.transform(ds);
  EXPECT_EQ(out.n_features, 5u);
  // Row 0: passthrough 0.5, 7.0; one-hot for category 0.
  EXPECT_FLOAT_EQ(out.row(0)[0], 0.5f);
  EXPECT_FLOAT_EQ(out.row(0)[1], 7.0f);
  EXPECT_FLOAT_EQ(out.row(0)[2], 1.0f);
  EXPECT_FLOAT_EQ(out.row(0)[3], 0.0f);
  // Row 1: category 2 -> last slot.
  EXPECT_FLOAT_EQ(out.row(1)[4], 1.0f);
}

TEST(OneHot, UnseenCategoryMapsToZeros) {
  data::Dataset train;
  train.n_rows = 2;
  train.n_features = 1;
  train.n_classes = 2;
  train.x = {0.0f, 1.0f};
  train.y = {0, 1};
  data::OneHotEncoder encoder;
  encoder.fit(train, {0});

  data::Dataset test = train;
  test.x = {2.0f, 0.0f};  // category 2 unseen
  const auto out = encoder.transform(test);
  EXPECT_FLOAT_EQ(out.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(out.row(0)[1], 0.0f);
  EXPECT_FLOAT_EQ(out.row(1)[0], 1.0f);
}

TEST(OneHot, RejectsNonCategoricalValues) {
  data::Dataset ds;
  ds.n_rows = 1;
  ds.n_features = 1;
  ds.n_classes = 2;
  ds.x = {0.5f};
  ds.y = {0};
  data::OneHotEncoder encoder;
  EXPECT_THROW(encoder.fit(ds, {0}), std::invalid_argument);
  EXPECT_THROW(encoder.fit(ds, {3}), std::invalid_argument);
}

TEST(MinMax, ScalesToUnitInterval) {
  data::Dataset ds;
  ds.n_rows = 3;
  ds.n_features = 2;
  ds.n_classes = 2;
  ds.x = {0.0f, 5.0f, 10.0f, 5.0f, 20.0f, 5.0f};  // col 1 constant
  ds.y = {0, 1, 0};
  data::MinMaxScaler scaler;
  scaler.fit(ds);
  scaler.transform(ds);
  EXPECT_FLOAT_EQ(ds.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.row(1)[0], 0.5f);
  EXPECT_FLOAT_EQ(ds.row(2)[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.row(0)[1], 0.0f);  // constant feature -> 0
}

TEST(MinMax, TransformBeforeFitThrows) {
  data::Dataset ds;
  data::MinMaxScaler scaler;
  EXPECT_THROW(scaler.transform(ds), std::logic_error);
}

// --------------------------------------------------------------------------
// Performance model.

TEST(PerfModel, ComputeDominatedRegimeScalesLinearly) {
  dp::PerfModelParams model;
  model.allreduce_alpha = 0.0;
  model.allreduce_beta = 1e18;  // free communication
  model.step_overhead = 0.0;
  // With free allreduce and fixed local batch, per-step time is constant in
  // n, so epoch time (shard/bs steps) drops linearly -> speedup == n.
  EXPECT_NEAR(dp::predict_speedup(model, 4, 64, 10000, 64 * 64), 4.0, 1e-9);
}

TEST(PerfModel, CommunicationBoundsSpeedup) {
  dp::PerfModelParams model;
  model.compute_per_sample_param = 1e-12;  // nearly free compute
  model.allreduce_alpha = 1e-3;            // expensive latency
  const double s8 = dp::predict_speedup(model, 8, 64, 100000, 64 * 64);
  EXPECT_LT(s8, 4.0);  // communication overhead eats the parallelism
}

TEST(PerfModel, StepTimeMonotoneInBatchAndParams) {
  dp::PerfModelParams model;
  const double small = dp::predict_step_seconds(model, 2, 64, 10000);
  const double big_batch = dp::predict_step_seconds(model, 2, 256, 10000);
  const double big_net = dp::predict_step_seconds(model, 2, 64, 100000);
  EXPECT_LT(small, big_batch);
  EXPECT_LT(small, big_net);
}

TEST(PerfModel, FitComputeRateRecoversMeasurement) {
  dp::PerfModelParams model;
  const auto fitted = dp::fit_compute_rate(model, 0.01, 128, 50000);
  const double predicted = dp::predict_step_seconds(fitted, 1, 128, 50000);
  EXPECT_NEAR(predicted, 0.01, 1e-9);
}

TEST(PerfModel, RejectsBadInput) {
  dp::PerfModelParams model;
  EXPECT_THROW(dp::predict_step_seconds(model, 0, 64, 100), std::invalid_argument);
  EXPECT_THROW(dp::predict_training_seconds(model, 1, 64, 100, 0, 5),
               std::invalid_argument);
  EXPECT_THROW(dp::fit_compute_rate(model, 1e-9, 64, 100), std::invalid_argument);
}

}  // namespace
}  // namespace agebo
