// Serving-path tests (DESIGN.md §12): export/load round trip is bitwise
// identical to the in-memory network across sampled search-space
// architectures, corrupted or truncated artifacts fail load with a clear
// error, and the micro-batcher preserves results while honoring its
// latency budget and coalescing contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"
#include "obs/obs.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"

namespace agebo {
namespace {

std::vector<float> random_rows(std::size_t n, std::size_t d, Rng& rng) {
  std::vector<float> rows(n * d);
  for (auto& v : rows) v = static_cast<float>(rng.normal());
  return rows;
}

std::string temp_path(const char* stem) {
  return std::string(::testing::TempDir()) + stem;
}

// The tentpole contract: freeze -> save -> load -> engine produces logits
// bitwise identical to GraphNet::forward, across randomly sampled
// search-space architectures (identity nodes, skips, projections and all).
TEST(ServeRoundTrip, BitwiseIdenticalAcrossSearchSpace) {
  nas::SearchSpace space;
  Rng rng(17);
  const std::size_t d = 54, c = 7, n = 33;
  for (int trial = 0; trial < 8; ++trial) {
    const auto genome = space.random(rng);
    const auto spec = space.to_graph_spec(genome, d, c);
    nn::GraphNet net(spec, rng);

    const std::string path =
        temp_path(("serve_rt_" + std::to_string(trial) + ".txt").c_str());
    nn::save_artifact_file(nn::freeze_graphnet(net), path);
    serve::InferenceEngine engine = serve::load_engine(path);
    ASSERT_EQ(engine.input_dim(), d);
    ASSERT_EQ(engine.output_dim(), c);
    ASSERT_EQ(engine.num_params(), net.num_params());

    const auto rows = random_rows(n, d, rng);
    nn::Tensor x(n, d);
    std::memcpy(x.v.data(), rows.data(), rows.size() * sizeof(float));
    const nn::Tensor& want = net.forward(x);

    std::vector<float> got(n * c);
    engine.predict_logits(rows.data(), n, got.data());
    ASSERT_EQ(0, std::memcmp(want.v.data(), got.data(),
                             got.size() * sizeof(float)))
        << "engine logits differ from GraphNet::forward for genome "
        << nas::SearchSpace::key(genome);
    std::remove(path.c_str());
  }
}

TEST(ServeRoundTrip, ProbabilitiesMatchSoftmaxOfLogits) {
  Rng rng(3);
  nn::GraphSpec spec;
  spec.input_dim = 10;
  spec.output_dim = 4;
  nn::NodeSpec node;
  node.units = 16;
  spec.nodes = {node, node};
  nn::GraphNet net(spec, rng);
  serve::InferenceEngine engine(nn::freeze_graphnet(net));

  const std::size_t n = 9;
  const auto rows = random_rows(n, spec.input_dim, rng);
  std::vector<float> logits(n * spec.output_dim);
  std::vector<float> probs(n * spec.output_dim);
  engine.predict_logits(rows.data(), n, logits.data());
  engine.predict_batch(rows.data(), n, probs.data());

  nn::Tensor lt(n, spec.output_dim), pt;
  std::memcpy(lt.v.data(), logits.data(), logits.size() * sizeof(float));
  nn::softmax(lt, pt);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_FLOAT_EQ(pt.v[i], probs[i]);
  }
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t j = 0; j < spec.output_dim; ++j) {
      sum += probs[r * spec.output_dim + j];
    }
    EXPECT_NEAR(1.0, sum, 1e-5);
  }
}

TEST(ServeRoundTrip, MetadataSurvivesSaveLoad) {
  Rng rng(5);
  nn::GraphSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  nn::NodeSpec node;
  node.units = 8;
  spec.nodes = {node};
  nn::GraphNet net(spec, rng);

  auto artifact =
      nn::freeze_graphnet(net, {{"dataset", "covertype"}, {"epochs", "7"}});
  const std::string path = temp_path("serve_meta.txt");
  nn::save_artifact_file(artifact, path);
  serve::InferenceEngine engine = serve::load_engine(path);
  EXPECT_EQ("covertype", engine.artifact().meta("dataset"));
  EXPECT_EQ("7", engine.artifact().meta("epochs"));
  std::remove(path.c_str());
}

class ServeArtifactErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    nn::GraphSpec spec;
    spec.input_dim = 8;
    spec.output_dim = 3;
    nn::NodeSpec node;
    node.units = 12;
    spec.nodes = {node, node};
    nn::GraphNet net(spec, rng);
    path_ = temp_path("serve_bad.txt");
    nn::save_artifact_file(nn::freeze_graphnet(net), path_);
    std::ifstream is(path_);
    std::ostringstream buf;
    buf << is.rdbuf();
    good_ = buf.str();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write(const std::string& contents) {
    std::ofstream os(path_, std::ios::trunc);
    os << contents;
  }

  std::string path_;
  std::string good_;
};

TEST_F(ServeArtifactErrors, TruncatedArtifactFailsWithClearError) {
  write(good_.substr(0, good_.size() / 2));
  try {
    (void)serve::load_engine(path_);
    FAIL() << "truncated artifact loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << "unhelpful error: " << e.what();
  }
}

TEST_F(ServeArtifactErrors, CorruptedPayloadFailsChecksum) {
  // Flip one digit inside a parameter value; the checksum must catch it.
  std::string bad = good_;
  const auto pos = bad.find("params");
  ASSERT_NE(pos, std::string::npos);
  for (std::size_t i = pos; i < bad.size(); ++i) {
    if (bad[i] >= '1' && bad[i] <= '8') {
      bad[i] = static_cast<char>(bad[i] == '1' ? '2' : bad[i] - 1);
      break;
    }
  }
  write(bad);
  try {
    (void)serve::load_engine(path_);
    FAIL() << "corrupted artifact loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << "unhelpful error: " << e.what();
  }
}

TEST_F(ServeArtifactErrors, WrongHeaderRejected) {
  write("agebo-graphnet v9\nnonsense\n");
  EXPECT_THROW((void)serve::load_engine(path_), std::runtime_error);
}

TEST_F(ServeArtifactErrors, MissingFileRejected) {
  EXPECT_THROW((void)serve::load_engine(temp_path("serve_nonexistent.txt")),
               std::runtime_error);
}

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    nn::GraphSpec spec;
    spec.input_dim = 12;
    spec.output_dim = 5;
    nn::NodeSpec node;
    node.units = 24;
    spec.nodes = {node, node};
    nn::GraphNet net(spec, rng);
    engine_ = std::make_unique<serve::InferenceEngine>(nn::freeze_graphnet(net));
    rows_ = random_rows(kRows, spec.input_dim, rng);
    direct_.resize(kRows * spec.output_dim);
    engine_->predict_batch(rows_.data(), kRows, direct_.data());
  }

  static constexpr std::size_t kRows = 96;
  std::unique_ptr<serve::InferenceEngine> engine_;
  std::vector<float> rows_;
  std::vector<float> direct_;  // ground truth from the batched path
};

// Results through the batcher must be bitwise what the engine returns
// directly, regardless of how requests were coalesced.
TEST_F(MicroBatcherTest, ResultsMatchDirectBatchedPath) {
  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 16;
  cfg.max_delay_ms = 0.5;
  serve::MicroBatcher batcher(*engine_, cfg);

  const std::size_t c = engine_->output_dim();
  std::vector<float> out(kRows * c);
  std::vector<std::thread> clients;
  std::atomic<std::size_t> next{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < kRows;
           i = next.fetch_add(1)) {
        batcher.predict_row(rows_.data() + i * engine_->input_dim(),
                            out.data() + i * c);
      }
    });
  }
  for (auto& cl : clients) cl.join();
  EXPECT_EQ(0, std::memcmp(direct_.data(), out.data(),
                           out.size() * sizeof(float)));
}

// A lone request must not wait (much) longer than the configured budget:
// the worker flushes a partial batch when the deadline expires.
TEST_F(MicroBatcherTest, LatencyBudgetFlushesPartialBatch) {
  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 64;  // never filled by a single request
  cfg.max_delay_ms = 5.0;
  serve::MicroBatcher batcher(*engine_, cfg);

  std::vector<float> out(engine_->output_dim());
  const auto t0 = std::chrono::steady_clock::now();
  batcher.predict_row(rows_.data(), out.data());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // Generous ceiling: budget + scheduling slack. The point is that the
  // request is not stuck waiting for 63 peers that never arrive.
  EXPECT_LT(ms, 250.0);
  EXPECT_EQ(0, std::memcmp(direct_.data(), out.data(),
                           out.size() * sizeof(float)));
}

// Seeded bursty arrivals: clients released together must coalesce into
// shared batches rather than being served one by one.
TEST_F(MicroBatcherTest, BurstyArrivalsCoalesce) {
  auto& reg = obs::Registry::global();
  const auto batches0 = reg.counter("serve.batches").total();
  const auto requests0 = reg.counter("serve.requests").total();

  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 32;
  cfg.max_delay_ms = 20.0;  // wide window so a burst lands in one batch
  serve::MicroBatcher batcher(*engine_, cfg);

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kWaves = 4;
  const std::size_t c = engine_->output_dim();
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t, wave] {
        const std::size_t i = (wave * kClients + t) % kRows;
        std::vector<float> out(c);
        batcher.predict_row(rows_.data() + i * engine_->input_dim(),
                            out.data());
        EXPECT_EQ(0, std::memcmp(direct_.data() + i * c, out.data(),
                                 c * sizeof(float)));
      });
    }
    for (auto& cl : clients) cl.join();
  }
  batcher.stop();

  const auto requests = reg.counter("serve.requests").total() - requests0;
  const auto batches = reg.counter("serve.batches").total() - batches0;
  EXPECT_EQ(requests, kClients * kWaves);
  // Perfect coalescing would be kWaves batches; anything at or under half
  // the request count proves multi-request batches formed.
  EXPECT_LE(batches * 2, requests);
}

TEST_F(MicroBatcherTest, PredictAfterStopThrows) {
  serve::MicroBatcher batcher(*engine_);
  std::vector<float> out(engine_->output_dim());
  batcher.predict_row(rows_.data(), out.data());
  batcher.stop();
  EXPECT_THROW(batcher.predict_row(rows_.data(), out.data()),
               std::runtime_error);
}

TEST_F(MicroBatcherTest, StopIsIdempotent) {
  serve::MicroBatcher batcher(*engine_);
  batcher.stop();
  batcher.stop();
}

}  // namespace
}  // namespace agebo
