// Unit tests for src/data: dataset container, splits, sharding, synthetic
// generators, CSV round trip, and standardization.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <sstream>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"

namespace agebo::data {
namespace {

Dataset tiny_dataset() {
  SyntheticSpec spec;
  spec.n_rows = 300;
  spec.n_features = 6;
  spec.n_classes = 3;
  spec.n_informative = 4;
  spec.class_sep = 2.0;
  spec.seed = 5;
  return make_classification(spec);
}

TEST(Dataset, ValidateAcceptsConsistent) {
  const auto ds = tiny_dataset();
  EXPECT_NO_THROW(ds.validate());
  EXPECT_EQ(ds.n_rows, 300u);
  EXPECT_EQ(ds.x.size(), 300u * 6u);
}

TEST(Dataset, ValidateRejectsBadLabel) {
  auto ds = tiny_dataset();
  ds.y[0] = 99;
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsSizeMismatch) {
  auto ds = tiny_dataset();
  ds.x.pop_back();
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRowsInOrder) {
  const auto ds = tiny_dataset();
  const auto sub = ds.subset({5, 2, 7});
  EXPECT_EQ(sub.n_rows, 3u);
  EXPECT_EQ(sub.y[0], ds.y[5]);
  EXPECT_EQ(sub.y[1], ds.y[2]);
  for (std::size_t f = 0; f < ds.n_features; ++f) {
    EXPECT_FLOAT_EQ(sub.row(2)[f], ds.row(7)[f]);
  }
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  const auto ds = tiny_dataset();
  EXPECT_THROW(ds.subset({ds.n_rows}), std::out_of_range);
}

TEST(Split, PaperFractionsPartitionAllRows) {
  const auto ds = tiny_dataset();
  Rng rng(1);
  const auto splits = split(ds, SplitFractions{}, rng);
  EXPECT_EQ(splits.train.n_rows + splits.valid.n_rows + splits.test.n_rows,
            ds.n_rows);
  // 42 / 25 / 33 within rounding.
  EXPECT_NEAR(static_cast<double>(splits.train.n_rows) / ds.n_rows, 0.42, 0.01);
  EXPECT_NEAR(static_cast<double>(splits.valid.n_rows) / ds.n_rows, 0.25, 0.01);
}

TEST(Split, DeterministicGivenSeed) {
  const auto ds = tiny_dataset();
  Rng rng1(9);
  Rng rng2(9);
  const auto a = split(ds, SplitFractions{}, rng1);
  const auto b = split(ds, SplitFractions{}, rng2);
  EXPECT_EQ(a.train.y, b.train.y);
  EXPECT_EQ(a.test.y, b.test.y);
}

TEST(Shard, MutuallyExclusiveAndExhaustive) {
  const auto ds = tiny_dataset();
  Rng rng(2);
  const auto shards = shard(ds, 4, rng);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total = 0;
  for (const auto& s : shards) total += s.n_rows;
  EXPECT_EQ(total, ds.n_rows);
  // Near-equal shard sizes.
  for (const auto& s : shards) {
    EXPECT_NEAR(static_cast<double>(s.n_rows), ds.n_rows / 4.0, 1.0);
  }
}

TEST(Shard, SingleShardIsWholeDatasetPermutation) {
  const auto ds = tiny_dataset();
  Rng rng(3);
  const auto shards = shard(ds, 1, rng);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].n_rows, ds.n_rows);
  auto a = shards[0].y;
  auto b = ds.y;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Shard, RejectsBadCounts) {
  const auto ds = tiny_dataset();
  Rng rng(4);
  EXPECT_THROW(shard(ds, 0, rng), std::invalid_argument);
  EXPECT_THROW(shard(ds, ds.n_rows + 1, rng), std::invalid_argument);
}

TEST(ClassCounts, SumsToRows) {
  const auto ds = tiny_dataset();
  const auto counts = class_counts(ds);
  EXPECT_EQ(counts.size(), ds.n_classes);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            ds.n_rows);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.n_rows = 100;
  spec.seed = 77;
  const auto a = make_classification(spec);
  const auto b = make_classification(spec);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.n_rows = 100;
  spec.seed = 1;
  const auto a = make_classification(spec);
  spec.seed = 2;
  const auto b = make_classification(spec);
  EXPECT_NE(a.x, b.x);
}

TEST(Synthetic, ImbalanceSkewsClassPriors) {
  SyntheticSpec spec;
  spec.n_rows = 4000;
  spec.n_classes = 4;
  spec.imbalance = 2.0;
  spec.seed = 3;
  const auto ds = make_classification(spec);
  const auto counts = class_counts(ds);
  EXPECT_GT(counts[0], counts[3] * 2);
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.n_classes = 1;
  EXPECT_THROW(make_classification(spec), std::invalid_argument);
  spec = SyntheticSpec{};
  spec.n_informative = spec.n_features + 1;
  EXPECT_THROW(make_classification(spec), std::invalid_argument);
  spec = SyntheticSpec{};
  spec.label_noise = 1.0;
  EXPECT_THROW(make_classification(spec), std::invalid_argument);
}

TEST(Synthetic, PaperSpecsMatchDatasetShapes) {
  const auto specs = paper_dataset_specs(0.01);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "covertype");
  EXPECT_EQ(specs[0].n_features, 54u);
  EXPECT_EQ(specs[0].n_classes, 7u);
  EXPECT_EQ(specs[1].name, "airlines");
  EXPECT_EQ(specs[1].n_features, 8u);
  EXPECT_EQ(specs[1].n_classes, 2u);
  EXPECT_EQ(specs[2].name, "albert");
  EXPECT_EQ(specs[2].n_features, 79u);
  EXPECT_EQ(specs[3].name, "dionis");
  EXPECT_EQ(specs[3].n_classes, 355u);
}

TEST(Synthetic, ScaleShrinksRowCount) {
  const auto full = covertype_spec(1.0);
  const auto small = covertype_spec(0.01);
  EXPECT_EQ(full.n_rows, 581012u);
  EXPECT_NEAR(static_cast<double>(small.n_rows), 5810.0, 2.0);
  EXPECT_THROW(covertype_spec(0.0), std::invalid_argument);
  EXPECT_THROW(covertype_spec(1.5), std::invalid_argument);
}

TEST(Csv, RoundTripPreservesData) {
  const auto ds = tiny_dataset();
  std::stringstream ss;
  write_csv(ds, ss);
  const auto back = read_csv(ss);
  EXPECT_EQ(back.n_rows, ds.n_rows);
  EXPECT_EQ(back.n_features, ds.n_features);
  EXPECT_EQ(back.y, ds.y);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    EXPECT_NEAR(back.x[i], ds.x[i], 1e-4);
  }
}

TEST(Csv, ClassCountHintRaisesClasses) {
  const auto ds = tiny_dataset();
  std::stringstream ss;
  write_csv(ds, ss);
  const auto back = read_csv(ss, 10);
  EXPECT_EQ(back.n_classes, 10u);
}

TEST(Csv, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Scaler, ProducesZeroMeanUnitVariance) {
  auto ds = tiny_dataset();
  StandardScaler scaler;
  scaler.fit(ds);
  scaler.transform(ds);
  for (std::size_t f = 0; f < ds.n_features; ++f) {
    double mean = 0.0;
    for (std::size_t i = 0; i < ds.n_rows; ++i) mean += ds.row(i)[f];
    mean /= static_cast<double>(ds.n_rows);
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
}

TEST(Scaler, TransformBeforeFitThrows) {
  auto ds = tiny_dataset();
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(ds), std::logic_error);
}

TEST(Scaler, FeatureMismatchThrows) {
  auto ds = tiny_dataset();
  StandardScaler scaler;
  scaler.fit(ds);
  auto other = ds;
  other.n_features = 3;
  other.x.resize(other.n_rows * 3);
  EXPECT_THROW(scaler.transform(other), std::invalid_argument);
}

TEST(Scaler, StandardizeAppliesTrainStatsToAllSplits) {
  const auto ds = tiny_dataset();
  Rng rng(6);
  auto splits = split(ds, SplitFractions{}, rng);
  const float before = splits.test.row(0)[0];
  standardize(splits);
  EXPECT_NE(splits.test.row(0)[0], before);
}

}  // namespace
}  // namespace agebo::data
