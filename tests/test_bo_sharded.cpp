// Decentralized-BO tests (DESIGN.md §15): lock-free MPSC queue semantics
// and cross-thread stress (race-checked under TSan in CI), shard
// determinism, the shards=1 ≡ centralized byte-for-byte guarantee, gossip
// merge bookkeeping, the refit cache's bit-exactness, and sharded-optimizer
// checkpointing — standalone and through the svc checkpoint path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bo/mpsc_queue.hpp"
#include "bo/optimizer.hpp"
#include "bo/sharded_optimizer.hpp"
#include "common/rng.hpp"
#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "svc/registry.hpp"

namespace {

using namespace agebo;

double toy_objective(const bo::Point& p) {
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) s += p[i] * 1e-3;
  return 0.5 + 0.25 * (s - static_cast<long>(s));
}

// --- MpscQueue ------------------------------------------------------------

TEST(MpscQueue, DrainReturnsFifoOrder) {
  bo::MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_EQ(q.approx_size(), 100u);
  const std::vector<int> out = q.drain();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.approx_size(), 0u);
  EXPECT_TRUE(q.drain().empty());
}

TEST(MpscQueue, DrainInterleavesWithPushes) {
  bo::MpscQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.drain(), (std::vector<int>{1, 2}));
  q.push(3);
  EXPECT_EQ(q.drain(), (std::vector<int>{3}));
}

TEST(MpscQueue, DiscardReleasesUndrainedNodes) {
  // Shutdown path: the destructor asserts the queue is empty (lost tells are
  // a bug, not cleanup), so an aborting owner must discard() first. Also
  // exercised for leak checkers (ASan in CI): discard frees every node.
  bo::MpscQueue<std::string> q;
  q.push("left");
  q.push("behind");
  EXPECT_EQ(q.discard(), 2u);
  EXPECT_EQ(q.approx_size(), 0u);
  EXPECT_TRUE(q.drain().empty());
}

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AGEBO_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define AGEBO_TSAN 1
#endif

// Death tests fork, which TSan's runtime does not tolerate; the assert
// itself only fires in !NDEBUG builds.
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG) && !defined(AGEBO_TSAN)
TEST(MpscQueueDeathTest, DestructionWithBacklogAsserts) {
  EXPECT_DEATH(
      {
        bo::MpscQueue<int> q;
        q.push(7);
      },
      "undrained");
}
#endif

// Cross-thread contract: push from many threads, drain from one. The
// assertions prove no item is lost or duplicated and that each producer's
// own items stay in order; TSan (CI's -DAGEBO_SANITIZE=thread job) proves
// the CAS publication is race-free.
TEST(MpscQueue, ConcurrentProducersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  bo::MpscQueue<std::size_t> q;
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &go, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::vector<std::size_t> next_expected(kProducers, 0);
  std::size_t received = 0;
  while (received < kProducers * kPerProducer) {
    for (const std::size_t item : q.drain()) {
      const std::size_t p = item / kPerProducer;
      const std::size_t i = item % kPerProducer;
      ASSERT_LT(p, kProducers);
      // FIFO per producer: items from one thread arrive in push order.
      ASSERT_EQ(i, next_expected[p]) << "producer " << p;
      ++next_expected[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.drain().empty());
}

// --- Refit cache (satellite: skip redundant per-ask refits) ---------------

TEST(RefitCache, CachedAsksAreBitIdentical) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::BoConfig with = {};
  with.n_initial_random = 4;
  with.n_candidates = 32;
  with.n_trees = 6;
  with.seed = 5;
  with.refit_cache = true;
  bo::BoConfig without = with;
  without.refit_cache = false;

  bo::AskTellOptimizer a(space, with);
  bo::AskTellOptimizer b(space, without);
  Rng rng(77);
  for (std::size_t round = 0; round < 8; ++round) {
    // Batched asks exercise both the leading (cacheable) fit and the liar
    // refits that must invalidate the cache.
    const auto pa = a.ask(2);
    const auto pb = b.ask(2);
    ASSERT_EQ(pa, pb) << "round " << round;
    std::vector<double> ys;
    for (const auto& p : pa) ys.push_back(toy_objective(p));
    a.tell(pa, ys);
    b.tell(pb, ys);
    // A second ask with an unchanged tell log hits the cache in `a` and
    // refits from scratch in `b`; the points must still match exactly.
    const auto qa = a.ask(1);
    const auto qb = b.ask(1);
    ASSERT_EQ(qa, qb) << "round " << round;
    a.tell(qa, {toy_objective(qa[0])});
    b.tell(qb, {toy_objective(qb[0])});
  }
}

// --- Shard determinism and gossip -----------------------------------------

bo::ShardedBoConfig small_sharded_config(std::size_t shards,
                                         std::size_t gossip_every) {
  bo::ShardedBoConfig cfg;
  cfg.shards = shards;
  cfg.gossip_every = gossip_every;
  cfg.gossip_fanout = 2;
  cfg.bo.n_initial_random = 4;
  cfg.bo.n_candidates = 32;
  cfg.bo.n_trees = 6;
  cfg.bo.seed = 11;
  cfg.bo.refit = bo::RefitMode::kIncremental;
  cfg.bo.batch = bo::BatchMode::kQUcb;
  return cfg;
}

/// Drive `rounds` enqueue+ask round trips over all shards, returning every
/// asked point in order.
std::vector<bo::Point> drive(bo::ShardedBo& sharded, std::size_t rounds) {
  const std::size_t S = sharded.shards();
  std::vector<bo::Point> asked;
  std::vector<bo::Point> pending(S);
  for (std::size_t s = 0; s < S; ++s) pending[s] = sharded.ask(s, 1).at(0);
  for (std::size_t e = 0; e < rounds; ++e) {
    const std::size_t s = e % S;
    sharded.enqueue_tell(s, pending[s], toy_objective(pending[s]));
    pending[s] = sharded.ask(s, 1).at(0);
    asked.push_back(pending[s]);
  }
  return asked;
}

TEST(ShardedBo, SameSeedSameScheduleIsDeterministic) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBo a(space, small_sharded_config(4, 3));
  bo::ShardedBo b(space, small_sharded_config(4, 3));
  EXPECT_EQ(drive(a, 60), drive(b, 60));
  for (std::size_t s = 0; s < a.shards(); ++s) {
    EXPECT_EQ(a.n_observed(s), b.n_observed(s)) << "shard " << s;
    EXPECT_EQ(a.n_local(s), b.n_local(s)) << "shard " << s;
  }
}

TEST(ShardedBo, ShardsDivergeFromEachOther) {
  // Different shards carry different derived seeds: their very first
  // (random-phase) asks must already differ, or "decentralized" would just
  // be N copies of one trajectory.
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBo sharded(space, small_sharded_config(2, 0));
  EXPECT_NE(sharded.ask(0, 1), sharded.ask(1, 1));
}

TEST(ShardedBo, GossipMergesPeerDeltasOnce) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBoConfig cfg = small_sharded_config(2, 2);
  cfg.gossip_fanout = 1;
  bo::ShardedBo sharded(space, cfg);
  Rng rng(3);

  // Shard 0 learns 4 results of its own; its only peer has nothing yet.
  for (int i = 0; i < 4; ++i) {
    sharded.enqueue_tell(0, space.sample(rng), 0.5);
  }
  sharded.drain(0);
  EXPECT_EQ(sharded.n_local(0), 4u);
  EXPECT_EQ(sharded.n_observed(0), 4u);  // nothing to merge from shard 1

  // Shard 1 crosses the gossip threshold with 2 local tells and pulls the
  // peer's 4-tell delta.
  for (int i = 0; i < 2; ++i) {
    sharded.enqueue_tell(1, space.sample(rng), 0.5);
  }
  sharded.drain(1);
  EXPECT_EQ(sharded.n_local(1), 2u);
  EXPECT_EQ(sharded.n_observed(1), 6u);

  // The next gossip round merges only the delta (nothing new at shard 0),
  // not the whole log again.
  for (int i = 0; i < 2; ++i) {
    sharded.enqueue_tell(1, space.sample(rng), 0.5);
  }
  sharded.drain(1);
  EXPECT_EQ(sharded.n_observed(1), 8u);
}

TEST(ShardedBo, GossipZeroKeepsShardsIsolated) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBo sharded(space, small_sharded_config(2, 0));
  Rng rng(3);
  for (int i = 0; i < 8; ++i) sharded.enqueue_tell(0, space.sample(rng), 0.5);
  sharded.drain(0);
  sharded.enqueue_tell(1, space.sample(rng), 0.5);
  sharded.drain(1);
  EXPECT_EQ(sharded.n_observed(0), 8u);
  EXPECT_EQ(sharded.n_observed(1), 1u);
}

// --- shards=1 ≡ centralized (the acceptance gate) -------------------------

core::SearchResult run_small_campaign(std::size_t bo_shards,
                                      std::uint64_t seed) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(16, 90.0, {}, {});
  core::SearchConfig cfg = core::agebo_config(seed);
  cfg.bo_shards = bo_shards;
  cfg.wall_time_seconds = 40.0 * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  return search.run();
}

TEST(ShardedSearch, OneShardReproducesCentralizedByteForByte) {
  const core::SearchResult central = run_small_campaign(0, 21);
  const core::SearchResult sharded1 = run_small_campaign(1, 21);
  std::ostringstream a;
  std::ostringstream b;
  core::save_history(central, a);
  core::save_history(sharded1, b);
  EXPECT_EQ(a.str(), b.str());  // the full campaign history, byte-for-byte
  EXPECT_EQ(central.best_objective, sharded1.best_objective);
}

TEST(ShardedSearch, ShardedCampaignIsRepeatable) {
  const core::SearchResult a = run_small_campaign(4, 33);
  const core::SearchResult b = run_small_campaign(4, 33);
  std::ostringstream sa;
  std::ostringstream sb;
  core::save_history(a, sa);
  core::save_history(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(a.history.empty());
}

// --- Checkpointing --------------------------------------------------------

TEST(ShardedBo, SaveStateRequiresDrainedQueues) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBo sharded(space, small_sharded_config(2, 2));
  Rng rng(9);
  sharded.enqueue_tell(0, space.sample(rng), 0.5);
  std::ostringstream os;
  EXPECT_THROW(sharded.save_state(os), std::logic_error);
  sharded.drain(0);
  EXPECT_NO_THROW(sharded.save_state(os));
}

TEST(ShardedBo, RestoredOptimizerContinuesIdentically) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  const bo::ShardedBoConfig cfg = small_sharded_config(3, 2);
  bo::ShardedBo uninterrupted(space, cfg);
  bo::ShardedBo original(space, cfg);

  // Advance both through the same prefix, snapshot one, and restore into a
  // fresh instance; the suffix must then be identical on both sides —
  // including the incremental-surrogate and gossip state the snapshot has
  // to carry.
  EXPECT_EQ(drive(uninterrupted, 30), drive(original, 30));
  std::ostringstream snap;
  original.save_state(snap);
  bo::ShardedBo restored(space, cfg);
  {
    std::istringstream is(snap.str());
    restored.load_state(is);
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ASSERT_EQ(restored.n_observed(s), uninterrupted.n_observed(s));
  }
  EXPECT_EQ(drive(uninterrupted, 30), drive(restored, 30));

  // And a snapshot of the restored instance is byte-identical to a fresh
  // snapshot of the uninterrupted one.
  std::ostringstream a;
  std::ostringstream b;
  uninterrupted.save_state(a);
  restored.save_state(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ShardedBo, LoadStateRejectsConfigMismatch) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBo two(space, small_sharded_config(2, 2));
  std::ostringstream os;
  two.save_state(os);
  bo::ShardedBo three(space, small_sharded_config(3, 2));
  std::istringstream is(os.str());
  EXPECT_THROW(three.load_state(is), std::runtime_error);
}

// The svc acceptance path: a sharded campaign checkpointed mid-flight and
// resumed in a fresh service must reproduce the uninterrupted run exactly
// (the sharded "shards" checkpoint section rides inside the campaign blob).
TEST(ShardedSvc, KilledShardedCampaignResumesExactly) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 16;
  cfg.job_overhead_seconds = 90.0;

  auto sharded_spec = [] {
    svc::CampaignSpec spec;
    spec.name = "decentral";
    spec.tenant = "default";
    spec.kind = svc::CampaignKind::kAgebo;
    spec.dataset = "covertype";
    spec.variant = "agebo-d2";
    spec.wall_time_seconds = 40.0 * 60.0;
    spec.seed = 19;
    return spec;
  };

  svc::CampaignRegistry uninterrupted(cfg, space);
  uninterrupted.add_campaign(sharded_spec());
  EXPECT_TRUE(uninterrupted.run());
  ASSERT_FALSE(uninterrupted.campaign(0).history().empty());

  const std::string ckpt =
      std::string(::testing::TempDir()) + "bo_sharded_resume.ckpt";
  svc::SvcConfig kill_cfg = cfg;
  kill_cfg.checkpoint_path = ckpt;
  svc::CampaignRegistry killed(kill_cfg, space);
  killed.add_campaign(sharded_spec());
  EXPECT_FALSE(killed.run(/*stop_after_seconds=*/900.0));

  svc::CampaignRegistry resumed(kill_cfg, space);
  resumed.load_checkpoint(ckpt);
  EXPECT_TRUE(resumed.run());

  const auto& a = uninterrupted.campaign(0).history();
  const auto& b = resumed.campaign(0).history();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objective, b[i].objective) << "record " << i;
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << "record " << i;
    EXPECT_EQ(a[i].config.genome, b[i].config.genome) << "record " << i;
    EXPECT_EQ(a[i].config.hparams, b[i].config.hparams) << "record " << i;
  }
  std::remove(ckpt.c_str());
}

}  // namespace
