// Fault-tolerance layer tests (ctest label: faults): seeded fault
// injection, per-job timeouts, bounded retry with exponential backoff,
// straggler kill-and-resubmit, and graceful degradation of the search —
// exercised against BOTH the simulator and the live thread-pool executor.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/fault_injector.hpp"
#include "exec/live_executor.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"

namespace agebo {
namespace {

using exec::EvalOutput;
using exec::FaultConfig;
using exec::FaultInjector;
using exec::FaultKind;
using exec::JobSpec;
using exec::RetryPolicy;

// Fast-backoff policy so live tests don't wait on cluster-scale delays.
RetryPolicy quick_backoff() {
  RetryPolicy policy;
  policy.backoff_base_seconds = 0.005;
  policy.backoff_max_seconds = 0.02;
  return policy;
}

/// Smallest seed whose injector draws `first` for (job 1, attempt 1) and
/// kNone for (job 1, attempt 2) — lets tests script "fails once, then
/// succeeds" schedules against the stateless hash.
std::uint64_t seed_for_retry_success(const FaultConfig& base, FaultKind first) {
  for (std::uint64_t seed = 1; seed < 10000; ++seed) {
    FaultConfig cfg = base;
    cfg.seed = seed;
    const FaultInjector injector(cfg);
    if (injector.draw(1, 1) == first && injector.draw(1, 2) == FaultKind::kNone) {
      return seed;
    }
  }
  ADD_FAILURE() << "no seed found";
  return 0;
}

// --------------------------------------------------------------------------
// FaultInjector: deterministic, seed-dependent, frequency-correct.

TEST(FaultInjector, SameSeedReplaysIdenticalSchedule) {
  FaultConfig cfg;
  cfg.crash_prob = 0.2;
  cfg.hang_prob = 0.1;
  cfg.slow_prob = 0.15;
  cfg.seed = 42;
  const FaultInjector a(cfg);
  const FaultInjector b(cfg);
  for (std::uint64_t job = 1; job <= 50; ++job) {
    for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(a.draw(job, attempt), b.draw(job, attempt));
    }
  }
  // Order independence: re-querying in reverse replays the same schedule.
  for (std::uint64_t job = 50; job >= 1; --job) {
    EXPECT_EQ(a.draw(job, 1), b.draw(job, 1));
  }
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules) {
  FaultConfig cfg;
  cfg.crash_prob = 0.5;
  cfg.seed = 1;
  const FaultInjector a(cfg);
  cfg.seed = 2;
  const FaultInjector b(cfg);
  std::size_t differing = 0;
  for (std::uint64_t job = 1; job <= 200; ++job) {
    if (a.draw(job, 1) != b.draw(job, 1)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, FrequenciesMatchProbabilities) {
  FaultConfig cfg;
  cfg.crash_prob = 0.2;
  cfg.hang_prob = 0.1;
  cfg.slow_prob = 0.1;
  cfg.seed = 7;
  const FaultInjector injector(cfg);
  const std::size_t n = 20000;
  std::size_t crash = 0, hang = 0, slow = 0;
  for (std::uint64_t job = 1; job <= n; ++job) {
    switch (injector.draw(job, 1)) {
      case FaultKind::kCrash: ++crash; break;
      case FaultKind::kHang: ++hang; break;
      case FaultKind::kSlow: ++slow; break;
      case FaultKind::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(crash) / n, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(hang) / n, 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(slow) / n, 0.1, 0.03);
}

TEST(FaultInjector, DisabledNeverInjects) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (std::uint64_t job = 1; job <= 100; ++job) {
    EXPECT_EQ(injector.draw(job, 1), FaultKind::kNone);
  }
}

TEST(FaultInjector, RejectsBadConfig) {
  FaultConfig cfg;
  cfg.crash_prob = -0.1;
  EXPECT_THROW(FaultInjector{cfg}, std::invalid_argument);
  cfg.crash_prob = 0.6;
  cfg.hang_prob = 0.6;
  EXPECT_THROW(FaultInjector{cfg}, std::invalid_argument);
  cfg = FaultConfig{};
  cfg.slow_prob = 0.1;
  cfg.slow_factor = 0.5;
  EXPECT_THROW(FaultInjector{cfg}, std::invalid_argument);
}

// --------------------------------------------------------------------------
// SimulatedExecutor fault paths (virtual clock: everything is exact).

TEST(SimFaults, TimeoutKillsLongJob) {
  exec::SimulatedExecutor sim(1);
  JobSpec spec;
  spec.timeout_seconds = 50.0;
  sim.submit([] { return EvalOutput{0.9, 100.0, false}; }, spec);
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
  EXPECT_EQ(finished[0].attempts, 1u);
  EXPECT_DOUBLE_EQ(finished[0].output.train_seconds, 50.0);
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 50.0);  // killed at the deadline
}

TEST(SimFaults, RetryExhaustionBoundsAttemptsAndBacksOff) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 1.0;
  policy.backoff_max_seconds = 60.0;
  exec::SimulatedExecutor sim(1, 0.0, policy);
  JobSpec spec;
  spec.max_retries = 2;
  sim.submit([]() -> EvalOutput { throw std::runtime_error("diverged"); },
             spec);
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_FALSE(finished[0].output.timed_out);  // crash, not a kill
  EXPECT_EQ(finished[0].attempts, 3u);  // 1 try + 2 retries, then give up
  // Attempts of 1s each with backoffs 1s then 2s: 1 +1+ 1 +2+ 1 = 6.
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 6.0);
}

// --- Backoff jitter (satellite: decorrelate retry storms, stay replayable)

TEST(RetryJitter, ZeroJitterMatchesLegacyBackoffExactly) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 1.0;
  policy.backoff_max_seconds = 60.0;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_DOUBLE_EQ(exec::backoff_delay_jittered(policy, attempt, 7),
                     exec::backoff_delay(policy, attempt));
  }
}

TEST(RetryJitter, StatelessBoundedAndJobDependent) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 2.0;
  policy.backoff_max_seconds = 64.0;
  policy.backoff_jitter = 0.5;
  policy.jitter_seed = 123;
  bool saw_distinct = false;
  for (std::uint64_t job = 1; job <= 16; ++job) {
    for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
      const double base = exec::backoff_delay(policy, attempt);
      const double d = exec::backoff_delay_jittered(policy, attempt, job);
      // Pure function of (seed, job, attempt): recomputing is bit-identical.
      EXPECT_EQ(d, exec::backoff_delay_jittered(policy, attempt, job));
      EXPECT_GE(d, base * 0.5);
      EXPECT_LE(d, base * 1.5);
      if (d != exec::backoff_delay_jittered(policy, attempt, job + 1)) {
        saw_distinct = true;
      }
    }
  }
  // Jitter that never decorrelates jobs would defeat its purpose.
  EXPECT_TRUE(saw_distinct);
}

TEST(RetryJitter, JitteredCampaignReplaysByteIdentically) {
  const auto run = [] {
    RetryPolicy policy;
    policy.backoff_base_seconds = 1.0;
    policy.backoff_max_seconds = 60.0;
    policy.backoff_jitter = 0.4;
    policy.jitter_seed = 77;
    exec::SimulatedExecutor sim(2, 0.0, policy);
    std::vector<double> finish;
    for (int j = 0; j < 4; ++j) {
      JobSpec spec;
      spec.max_retries = 2;
      sim.submit([]() -> EvalOutput { throw std::runtime_error("diverged"); },
                 spec);
    }
    while (true) {
      const auto finished = sim.get_finished(true);
      if (finished.empty()) break;
      for (const auto& f : finished) finish.push_back(f.finish_time);
    }
    return finish;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);  // bitwise: jitter is hashed, never drawn from shared RNG
  // And the delays genuinely differ from the unjittered schedule (6.0 with
  // this policy — see RetryExhaustionBoundsAttemptsAndBacksOff).
  bool any_moved = false;
  for (const double t : a) any_moved = any_moved || t != 6.0;
  EXPECT_TRUE(any_moved);
}

// --- Replica-scoped draws (elastic training's fault source) ---------------

TEST(ReplicaFaults, DrawsAreStatelessAndDomainSeparated) {
  FaultConfig cfg;
  cfg.crash_prob = 0.1;
  cfg.hang_prob = 0.1;
  cfg.slow_prob = 0.1;
  cfg.seed = 42;
  const exec::FaultInjector injector(cfg);
  for (std::uint64_t job = 1; job <= 3; ++job) {
    for (std::size_t replica = 0; replica < 4; ++replica) {
      for (std::uint64_t step = 0; step < 32; ++step) {
        EXPECT_EQ(injector.draw_replica(job, replica, step),
                  injector.draw_replica(job, replica, step));
      }
    }
  }
  // Distinct hash domain: the replica stream must not mirror the job-level
  // attempt stream (that would correlate node death with attempt faults).
  std::size_t diverged = 0;
  for (std::uint64_t step = 1; step <= 64; ++step) {
    if (injector.draw_replica(1, 0, step) != injector.draw(1, step)) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0u);
}

TEST(SimFaults, CrashedAttemptRetriesToSuccess) {
  FaultConfig faults;
  faults.crash_prob = 0.5;
  faults.seed = seed_for_retry_success(faults, FaultKind::kCrash);
  RetryPolicy policy;
  policy.backoff_base_seconds = 4.0;
  exec::SimulatedExecutor sim(1, 0.0, policy, faults);
  JobSpec spec;
  spec.max_retries = 3;
  const auto id = sim.submit([] { return EvalOutput{0.8, 10.0, false}; }, spec);
  EXPECT_EQ(id, 1u);  // seed search assumed the first job id
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].output.failed);
  EXPECT_EQ(finished[0].attempts, 2u);
  EXPECT_DOUBLE_EQ(finished[0].output.objective, 0.8);
  // Crash consumes half the duration (5s), backoff 4s, then the full 10s.
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 19.0);
}

TEST(SimFaults, StragglerKilledPastMedianFactor) {
  RetryPolicy policy;
  policy.straggler_factor = 2.0;
  policy.straggler_min_samples = 3;
  policy.backoff_base_seconds = 1.0;
  exec::SimulatedExecutor sim(4, 0.0, policy);
  for (int i = 0; i < 3; ++i) {
    sim.submit([] { return EvalOutput{0.7, 10.0, false}; }, JobSpec{});
  }
  while (!sim.get_finished(true).empty()) {
  }
  // Median of successes is 10s, so the straggler limit is 20s.
  JobSpec spec;
  spec.max_retries = 1;
  sim.submit([] { return EvalOutput{0.9, 50.0, false}; }, spec);
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
  EXPECT_EQ(finished[0].attempts, 2u);  // resubmitted once, killed again
  EXPECT_DOUBLE_EQ(finished[0].output.train_seconds, 20.0);
}

TEST(SimFaults, NoStragglerKillBeforeMinSamples) {
  RetryPolicy policy;
  policy.straggler_factor = 2.0;
  policy.straggler_min_samples = 3;
  exec::SimulatedExecutor sim(1, 0.0, policy);
  // No completed jobs yet: no median, so even a huge job must run to term.
  sim.submit([] { return EvalOutput{0.9, 500.0, false}; }, JobSpec{});
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].output.failed);
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 500.0);
}

TEST(SimFaults, HangReclaimedOnlyByTimeout) {
  FaultConfig faults;
  faults.hang_prob = 1.0;
  faults.seed = 3;
  RetryPolicy policy;
  policy.backoff_base_seconds = 1.0;
  exec::SimulatedExecutor sim(1, 0.0, policy, faults);
  JobSpec spec;
  spec.timeout_seconds = 10.0;
  spec.max_retries = 1;
  sim.submit([] { return EvalOutput{0.9, 2.0, false}; }, spec);
  const auto finished = sim.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
  EXPECT_EQ(finished[0].attempts, 2u);
  // Both attempts hang and die at the 10s deadline, 1s backoff between.
  EXPECT_DOUBLE_EQ(finished[0].finish_time, 21.0);
}

TEST(SimFaults, DeterministicReplayOfFaultyCampaign) {
  const auto run = [] {
    FaultConfig faults;
    faults.crash_prob = 0.2;
    faults.hang_prob = 0.05;
    faults.slow_prob = 0.1;
    faults.seed = 99;
    RetryPolicy policy;
    policy.straggler_factor = 3.0;
    policy.straggler_min_samples = 3;
    exec::SimulatedExecutor sim(4, 1.0, policy, faults);
    JobSpec spec;
    spec.timeout_seconds = 30.0;
    spec.max_retries = 2;
    for (int i = 0; i < 40; ++i) {
      const double train = 5.0 + static_cast<double>(i % 7);
      sim.submit([train] { return EvalOutput{0.5, train, false}; }, spec);
    }
    std::vector<std::tuple<std::uint64_t, double, bool, std::size_t>> events;
    while (true) {
      const auto batch = sim.get_finished(true);
      if (batch.empty()) break;
      for (const auto& f : batch) {
        events.emplace_back(f.id, f.finish_time, f.output.failed, f.attempts);
      }
    }
    return events;
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------------------
// LiveExecutor fault paths (wall clock: assertions use generous margins).

TEST(LiveFaults, RetryExhaustionBoundsAttempts) {
  exec::LiveExecutor executor(2, quick_backoff());
  JobSpec spec;
  spec.max_retries = 2;
  executor.submit([]() -> EvalOutput { throw std::runtime_error("boom"); },
                  spec);
  const auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_EQ(finished[0].attempts, 3u);
  EXPECT_EQ(executor.num_in_flight(), 0u);
}

TEST(LiveFaults, TimeoutReapsSleepingJob) {
  exec::LiveExecutor executor(2, quick_backoff());
  JobSpec spec;
  spec.timeout_seconds = 0.05;
  executor.submit(
      [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        return EvalOutput{0.9, 0.0, false};
      },
      spec);
  const auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
  // The manager reaped the attempt at its deadline instead of waiting the
  // full 300ms for the closure to return.
  EXPECT_LT(executor.now(), 0.25);
}

TEST(LiveFaults, CrashedAttemptRetriesToSuccess) {
  FaultConfig faults;
  faults.crash_prob = 0.5;
  faults.seed = seed_for_retry_success(faults, FaultKind::kCrash);
  exec::LiveExecutor executor(1, quick_backoff(), faults);
  JobSpec spec;
  spec.max_retries = 3;
  const auto id = executor.submit([] { return EvalOutput{0.8, 0.0, false}; },
                                  spec);
  EXPECT_EQ(id, 1u);
  const auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].output.failed);
  EXPECT_EQ(finished[0].attempts, 2u);
  EXPECT_DOUBLE_EQ(finished[0].output.objective, 0.8);
}

TEST(LiveFaults, InjectedHangKilledAtDeadline) {
  FaultConfig faults;
  faults.hang_prob = 1.0;
  faults.seed = 5;
  exec::LiveExecutor executor(1, quick_backoff(), faults);
  JobSpec spec;
  spec.timeout_seconds = 0.05;
  executor.submit([] { return EvalOutput{0.9, 0.0, false}; }, spec);
  const auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
  EXPECT_LT(executor.now(), 1.0);  // the hang did not stall the manager
}

TEST(LiveFaults, StragglerKilledPastMedianFactor) {
  RetryPolicy policy = quick_backoff();
  policy.straggler_factor = 4.0;
  policy.straggler_min_samples = 3;
  exec::LiveExecutor executor(2, policy);
  for (int i = 0; i < 3; ++i) {
    executor.submit(
        [] {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return EvalOutput{0.7, 0.0, false};
        },
        JobSpec{});
  }
  std::size_t got = 0;
  while (got < 3) got += executor.get_finished(true).size();
  // Median ~20ms, limit ~80ms; a 600ms job is a straggler.
  executor.submit(
      [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
        return EvalOutput{0.9, 0.0, false};
      },
      JobSpec{});
  const auto finished = executor.get_finished(true);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].output.failed);
  EXPECT_TRUE(finished[0].output.timed_out);
}

// --------------------------------------------------------------------------
// Graceful degradation of AgeboSearch under faults.

TEST(SearchFaults, AllCrashingCampaignTerminatesWithFailedHistory) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  FaultConfig faults;
  faults.crash_prob = 1.0;
  faults.seed = 11;
  exec::SimulatedExecutor executor(8, 0.0, RetryPolicy{}, faults);
  auto cfg = core::age_config(8, 5);
  cfg.wall_time_seconds = 60.0 * 60.0;
  cfg.eval_max_retries = 1;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  ASSERT_FALSE(result.history.empty());
  for (const auto& rec : result.history) {
    EXPECT_TRUE(rec.failed);
    EXPECT_DOUBLE_EQ(rec.objective, 0.0);
    EXPECT_EQ(rec.attempts, 2u);  // one retry each, then reported failed
  }
  EXPECT_DOUBLE_EQ(result.best_objective, 0.0);
}

// The ISSUE acceptance scenario: 10% crashes + 5% stragglers must not cost
// the campaign more than 5% of its failure-free best objective.
TEST(SearchFaults, FaultyCampaignWithinFivePercentOfCleanBest) {
  nas::SearchSpace space;
  const auto run = [&space](FaultConfig faults, RetryPolicy policy,
                            std::size_t max_retries) {
    eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
    exec::SimulatedExecutor executor(32, 30.0, policy, faults);
    auto cfg = core::agebo_config(1);
    cfg.wall_time_seconds = 120.0 * 60.0;
    cfg.eval_timeout_seconds = 90.0 * 60.0;
    cfg.eval_max_retries = max_retries;
    core::AgeboSearch search(space, evaluator, executor, cfg);
    return search.run();
  };

  const auto clean = run(FaultConfig{}, RetryPolicy{}, 0);

  FaultConfig faults;
  faults.crash_prob = 0.10;
  faults.slow_prob = 0.05;  // stragglers, reclaimed by the median rule
  faults.seed = 17;
  RetryPolicy policy;
  policy.backoff_base_seconds = 30.0;
  policy.backoff_max_seconds = 300.0;
  policy.straggler_factor = 3.0;
  policy.straggler_min_samples = 5;
  const auto faulty = run(faults, policy, 2);

  ASSERT_FALSE(clean.history.empty());
  ASSERT_FALSE(faulty.history.empty());

  // Retries stay bounded by max_retries, and failures degraded gracefully:
  // recorded, zero-scored, never aged into the population (the search keeps
  // running to the full budget either way).
  std::size_t n_failed = 0, n_retried = 0;
  for (const auto& rec : faulty.history) {
    EXPECT_LE(rec.attempts, 3u);  // 1 + max_retries
    if (rec.failed) {
      ++n_failed;
      EXPECT_DOUBLE_EQ(rec.objective, 0.0);
    }
    if (rec.attempts > 1) ++n_retried;
  }
  EXPECT_GT(n_retried, 0u);  // faults actually fired
  EXPECT_GE(faulty.best_objective, 0.95 * clean.best_objective);
}

// --------------------------------------------------------------------------
// EvalRequest deadline plumbed through the surrogate evaluator.

TEST(EvalRequestDeadline, OverlongTrainingReportedAsTimeout) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  Rng rng(8);
  eval::ModelConfig config{space.random(rng), eval::default_hparams(2)};
  const auto unconstrained = evaluator.evaluate(config);
  ASSERT_GT(unconstrained.train_seconds, 0.0);
  const auto clipped =
      evaluator.evaluate({config, 1.0, unconstrained.train_seconds * 0.5});
  EXPECT_TRUE(clipped.failed);
  EXPECT_TRUE(clipped.timed_out);
  EXPECT_DOUBLE_EQ(clipped.objective, 0.0);
  EXPECT_DOUBLE_EQ(clipped.train_seconds, unconstrained.train_seconds * 0.5);
}

// --------------------------------------------------------------------------
// History CSV round-trips the failed/attempts columns; legacy files load.

TEST(HistoryFaults, FailedAndAttemptsRoundTrip) {
  nas::SearchSpace space;
  Rng rng(14);
  core::SearchResult result;
  core::EvalRecord rec;
  rec.index = 0;
  rec.finish_time = 12.5;
  rec.objective = 0.0;
  rec.train_seconds = 30.0;
  rec.failed = true;
  rec.attempts = 3;
  rec.config.genome = space.random(rng);
  rec.config.hparams = {256.0, 0.01, 2.0};
  result.history.push_back(rec);

  std::stringstream ss;
  core::save_history(result, ss);
  const auto loaded = core::load_history(ss, space);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].failed);
  EXPECT_EQ(loaded[0].attempts, 3u);
}

TEST(HistoryFaults, LegacyHeaderStillLoads) {
  nas::SearchSpace space;
  Rng rng(15);
  const auto genome = space.random(rng);
  std::ostringstream row;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (i) row << '-';
    row << genome[i];
  }
  std::stringstream ss;
  ss << "index,finish_time,objective,train_seconds,bs1,lr1,n,genome\n"
     << "0,10,0.8,600,256,0.01,2," << row.str() << "\n";
  const auto loaded = core::load_history(ss, space);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded[0].failed);
  EXPECT_EQ(loaded[0].attempts, 1u);
  EXPECT_DOUBLE_EQ(loaded[0].objective, 0.8);
}

// --------------------------------------------------------------------------
// Elastic columns: round-trip, loading the two older generations, and
// per-row format detection (the seam the checkpoint loaders rely on).

TEST(HistoryElastic, DegradedAndFinalWorldRoundTrip) {
  nas::SearchSpace space;
  Rng rng(16);
  core::SearchResult result;
  core::EvalRecord rec;
  rec.index = 4;
  rec.finish_time = 90.0;
  rec.objective = 0.71;
  rec.train_seconds = 42.0;
  rec.attempts = 1;
  rec.degraded = true;
  rec.final_world = 3;
  rec.config.genome = space.random(rng);
  rec.config.hparams = {128.0, 0.004, 4.0};
  result.history.push_back(rec);

  std::stringstream ss;
  core::save_history(result, ss);
  const auto loaded = core::load_history(ss, space);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].degraded);
  EXPECT_EQ(loaded[0].final_world, 3u);
  EXPECT_FALSE(loaded[0].failed);
}

TEST(HistoryElastic, FaultEraHeaderStillLoads) {
  nas::SearchSpace space;
  Rng rng(17);
  const auto genome = space.random(rng);
  std::ostringstream row;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (i) row << '-';
    row << genome[i];
  }
  // The pre-elastic generation: failed/attempts but no degraded/final_world.
  std::stringstream ss;
  ss << "index,finish_time,objective,train_seconds,failed,attempts,bs1,lr1,n,"
        "genome\n"
     << "0,10,0.8,600,1,2,256,0.01,2," << row.str() << "\n";
  const auto loaded = core::load_history(ss, space);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].failed);
  EXPECT_EQ(loaded[0].attempts, 2u);
  EXPECT_FALSE(loaded[0].degraded);
  EXPECT_EQ(loaded[0].final_world, 0u);
}

TEST(HistoryElastic, RowFormatDetectedByCellCount) {
  const std::string genome = "1-2-3";
  const std::string legacy = "0,10,0.8,600,256,0.01,2," + genome;
  const std::string fault_v2 = "0,10,0.8,600,0,1,256,0.01,2," + genome;
  const std::string current = "0,10,0.8,600,0,1,1,3,256,0.01,2," + genome;
  EXPECT_EQ(core::history_row_format(legacy, "t"),
            core::HistoryFormat::kLegacy);
  EXPECT_EQ(core::history_row_format(fault_v2, "t"),
            core::HistoryFormat::kFaultV2);
  EXPECT_EQ(core::history_row_format(current, "t"),
            core::HistoryFormat::kCurrent);
  EXPECT_THROW(core::history_row_format("0,1,2", "t"), std::runtime_error);
  EXPECT_THROW(core::history_row_format(current + ",extra", "t"),
               std::runtime_error);
}

}  // namespace
}  // namespace agebo
