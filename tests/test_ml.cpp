// Unit tests for src/ml: decision trees (classification + regression),
// random forest / extra-trees, gradient boosting, kNN, logistic regression,
// and the stacking ensemble.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "ml/boosting.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/stacking.hpp"
#include "ml/tree.hpp"

namespace agebo::ml {
namespace {

data::Dataset easy_dataset(std::size_t rows = 600, std::uint64_t seed = 17) {
  data::SyntheticSpec spec;
  spec.n_rows = rows;
  spec.n_features = 8;
  spec.n_classes = 3;
  spec.n_informative = 5;
  spec.class_sep = 2.5;
  spec.label_noise = 0.02;
  spec.seed = seed;
  return data::make_classification(spec);
}

TEST(DecisionTree, ClassifiesAxisAlignedSplit) {
  // y = x0 > 0.
  std::vector<float> x;
  std::vector<int> y;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.push_back(v);
    y.push_back(v > 0.0f ? 1 : 0);
  }
  DecisionTree tree;
  TreeConfig cfg;
  Rng tree_rng(2);
  tree.fit_classification(x.data(), 200, 1, y, 2, cfg, tree_rng);
  float probe_lo = -0.5f;
  float probe_hi = 0.5f;
  EXPECT_GT(tree.predict_distribution(&probe_lo)[0], 0.9);
  EXPECT_GT(tree.predict_distribution(&probe_hi)[1], 0.9);
}

TEST(DecisionTree, RegressionFitsStepFunction) {
  std::vector<float> x;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const float v = static_cast<float>(rng.uniform(0.0, 1.0));
    x.push_back(v);
    y.push_back(v > 0.5f ? 10.0 : -10.0);
  }
  DecisionTree tree;
  TreeConfig cfg;
  Rng tree_rng(4);
  tree.fit_regression(x.data(), 300, 1, y, cfg, tree_rng);
  float lo = 0.2f;
  float hi = 0.8f;
  EXPECT_NEAR(tree.predict_value(&lo), -10.0, 0.5);
  EXPECT_NEAR(tree.predict_value(&hi), 10.0, 0.5);
}

TEST(DecisionTree, MaxDepthBoundsDepth) {
  const auto ds = easy_dataset();
  DecisionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 3;
  Rng rng(5);
  tree.fit_classification(ds.x.data(), ds.n_rows, ds.n_features, ds.y,
                          ds.n_classes, cfg, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  std::vector<int> y = {1, 1, 1};
  DecisionTree tree;
  TreeConfig cfg;
  Rng rng(6);
  tree.fit_classification(x.data(), 3, 1, y, 2, cfg, rng);
  EXPECT_EQ(tree.n_nodes(), 1u);
}

TEST(DecisionTree, RowSubsetRestrictsTraining) {
  std::vector<float> x = {0.0f, 1.0f, 2.0f, 3.0f};
  std::vector<double> y = {5.0, 5.0, -7.0, -7.0};
  std::vector<std::size_t> subset = {0, 1};  // only the 5.0 targets
  DecisionTree tree;
  TreeConfig cfg;
  Rng rng(7);
  tree.fit_regression(x.data(), 4, 1, y, cfg, rng, &subset);
  float probe = 3.0f;
  EXPECT_NEAR(tree.predict_value(&probe), 5.0, 1e-9);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  float probe = 0.0f;
  EXPECT_THROW(tree.predict_value(&probe), std::logic_error);
}

TEST(DecisionTree, DistributionOnRegressionTreeThrows) {
  std::vector<float> x = {0.0f, 1.0f};
  std::vector<double> y = {0.0, 1.0};
  DecisionTree tree;
  TreeConfig cfg;
  Rng rng(8);
  tree.fit_regression(x.data(), 2, 1, y, cfg, rng);
  float probe = 0.5f;
  EXPECT_THROW(tree.predict_distribution(&probe), std::logic_error);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  auto ds = easy_dataset(800, 23);
  Rng split_rng(9);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  RandomForestClassifier forest(random_forest_defaults(40));
  forest.fit(splits.train);
  const double forest_acc = forest.accuracy(splits.test);
  EXPECT_GT(forest_acc, 0.8);

  DecisionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 4;
  Rng rng(10);
  tree.fit_classification(splits.train.x.data(), splits.train.n_rows,
                          splits.train.n_features, splits.train.y,
                          splits.train.n_classes, cfg, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < splits.test.n_rows; ++i) {
    const auto& dist = tree.predict_distribution(splits.test.row(i));
    const auto pred = std::distance(
        dist.begin(), std::max_element(dist.begin(), dist.end()));
    if (pred == splits.test.y[i]) ++correct;
  }
  const double tree_acc =
      static_cast<double>(correct) / static_cast<double>(splits.test.n_rows);
  EXPECT_GE(forest_acc, tree_acc - 0.02);
}

TEST(RandomForest, ProbabilitiesSumToOne) {
  const auto ds = easy_dataset(300);
  RandomForestClassifier forest(random_forest_defaults(10));
  forest.fit(ds);
  const auto proba = forest.predict_proba_row(ds.row(0));
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForestRegressor, UncertaintyShrinksWithAgreement) {
  // Constant target -> every tree predicts the same -> zero stddev.
  std::vector<float> x(100);
  std::vector<double> y(100, 4.2);
  Rng rng(11);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  RandomForestRegressor reg(random_forest_defaults(20));
  reg.fit(x, 100, 1, y);
  double mean = 0.0;
  double sd = 1.0;
  float probe = 0.5f;
  reg.predict_with_uncertainty(&probe, mean, sd);
  EXPECT_NEAR(mean, 4.2, 1e-6);
  EXPECT_NEAR(sd, 0.0, 1e-6);
}

TEST(RandomForestRegressor, LearnsLinearTrend) {
  std::vector<float> x;
  std::vector<double> y;
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x.push_back(static_cast<float>(v));
    y.push_back(3.0 * v);
  }
  RandomForestRegressor reg(random_forest_defaults(30));
  reg.fit(x, 500, 1, y);
  float lo = 0.1f;
  float hi = 0.9f;
  EXPECT_LT(reg.predict_row(&lo), reg.predict_row(&hi));
  EXPECT_NEAR(reg.predict_row(&hi), 2.7, 0.4);
}

TEST(ExtraTrees, FitsAndPredicts) {
  const auto ds = easy_dataset(500, 29);
  RandomForestClassifier et(extra_trees_defaults(20));
  et.fit(ds);
  EXPECT_GT(et.accuracy(ds), 0.8);  // training accuracy
}

TEST(Boosting, ImprovesOverRounds) {
  auto ds = easy_dataset(700, 31);
  Rng split_rng(13);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  BoostingConfig few;
  few.n_rounds = 2;
  GradientBoostingClassifier weak(few);
  weak.fit(splits.train);

  BoostingConfig many;
  many.n_rounds = 30;
  GradientBoostingClassifier strong(many);
  strong.fit(splits.train);

  EXPECT_GT(strong.accuracy(splits.valid), weak.accuracy(splits.valid) - 0.01);
  EXPECT_GT(strong.accuracy(splits.valid), 0.75);
}

TEST(Boosting, ProbabilitiesNormalized) {
  const auto ds = easy_dataset(200);
  BoostingConfig cfg;
  cfg.n_rounds = 5;
  GradientBoostingClassifier model(cfg);
  model.fit(ds);
  const auto proba = model.predict_proba_row(ds.row(3));
  double sum = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Knn, NearestNeighborWinsOnSeparatedClusters) {
  data::Dataset ds;
  ds.n_rows = 4;
  ds.n_features = 1;
  ds.n_classes = 2;
  ds.x = {0.0f, 0.1f, 10.0f, 10.1f};
  ds.y = {0, 0, 1, 1};
  KnnConfig cfg;
  cfg.k = 2;
  KnnClassifier knn(cfg);
  knn.fit(ds);
  float near0 = 0.05f;
  float near1 = 10.05f;
  EXPECT_GT(knn.predict_proba_row(&near0)[0], 0.9);
  EXPECT_GT(knn.predict_proba_row(&near1)[1], 0.9);
}

TEST(Knn, ReferenceSubsamplingCapsMemory) {
  const auto ds = easy_dataset(500);
  KnnConfig cfg;
  cfg.max_reference_rows = 100;
  KnnClassifier knn(cfg);
  knn.fit(ds);
  EXPECT_EQ(knn.n_reference_rows(), 100u);
}

TEST(Knn, AccuracyReasonableOnEasyData) {
  auto ds = easy_dataset(800, 37);
  Rng split_rng(14);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);
  KnnClassifier knn;
  knn.fit(splits.train);
  EXPECT_GT(knn.accuracy(splits.test), 0.7);
}

TEST(Knn, RejectsZeroK) {
  KnnConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(KnnClassifier{cfg}, std::invalid_argument);
}

TEST(Logistic, SeparatesLinearProblem) {
  data::SyntheticSpec spec;
  spec.n_rows = 500;
  spec.n_features = 6;
  spec.n_classes = 2;
  spec.n_informative = 4;
  spec.class_sep = 2.0;
  spec.nonlinear = false;
  spec.seed = 41;
  const auto ds = data::make_classification(spec);
  LogisticRegression model;
  model.fit(ds);
  EXPECT_GT(model.accuracy(ds), 0.85);
}

TEST(Logistic, PredictBeforeFitThrows) {
  LogisticRegression model;
  float probe = 0.0f;
  EXPECT_THROW(model.predict_proba_row(&probe), std::logic_error);
}

TEST(Stacking, BeatsOrMatchesWorstBaseModel) {
  auto ds = easy_dataset(900, 43);
  Rng split_rng(15);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  std::vector<ClassifierFactory> factories;
  factories.push_back([] {
    return std::make_unique<ClassifierAdapter<RandomForestClassifier>>(
        RandomForestClassifier(random_forest_defaults(20)), "rf");
  });
  factories.push_back([] {
    KnnConfig kc;
    kc.k = 9;
    return std::make_unique<ClassifierAdapter<KnnClassifier>>(
        KnnClassifier(kc), "knn");
  });
  StackingConfig cfg;
  cfg.n_folds = 3;
  StackingEnsemble stack(std::move(factories), cfg);
  stack.fit(splits.train);

  RandomForestClassifier rf_alone(random_forest_defaults(20));
  rf_alone.fit(splits.train);
  KnnConfig kc;
  kc.k = 9;
  KnnClassifier knn_alone(kc);
  knn_alone.fit(splits.train);
  const double worst = std::min(rf_alone.accuracy(splits.test),
                                knn_alone.accuracy(splits.test));
  EXPECT_GE(stack.accuracy(splits.test), worst - 0.03);
}

TEST(Stacking, KeepsAllFoldModels) {
  const auto ds = easy_dataset(300);
  std::vector<ClassifierFactory> factories;
  factories.push_back([] {
    return std::make_unique<ClassifierAdapter<RandomForestClassifier>>(
        RandomForestClassifier(random_forest_defaults(5)), "rf");
  });
  StackingConfig cfg;
  cfg.n_folds = 4;
  StackingEnsemble stack(std::move(factories), cfg);
  stack.fit(ds);
  EXPECT_EQ(stack.n_models(), 4u);  // 1 base x 4 folds
  EXPECT_EQ(stack.base_names(), std::vector<std::string>{"rf"});
}

TEST(Stacking, RejectsDegenerateConfigs) {
  std::vector<ClassifierFactory> empty;
  StackingConfig cfg;
  EXPECT_THROW(StackingEnsemble(std::move(empty), cfg), std::invalid_argument);

  std::vector<ClassifierFactory> one;
  one.push_back([] {
    return std::make_unique<ClassifierAdapter<LogisticRegression>>(
        LogisticRegression{}, "lr");
  });
  cfg.n_folds = 1;
  EXPECT_THROW(StackingEnsemble(std::move(one), cfg), std::invalid_argument);
}

TEST(Stacking, PredictBeforeFitThrows) {
  std::vector<ClassifierFactory> one;
  one.push_back([] {
    return std::make_unique<ClassifierAdapter<LogisticRegression>>(
        LogisticRegression{}, "lr");
  });
  StackingEnsemble stack(std::move(one), StackingConfig{});
  float probe = 0.0f;
  EXPECT_THROW(stack.predict_proba_row(&probe), std::logic_error);
}

}  // namespace
}  // namespace agebo::ml
