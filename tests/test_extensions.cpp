// Tests for the extension features: model serialization, history CSV
// round trip, warm-started search, random-search baseline, gang-width
// scheduling, and the repetition harness.
#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.hpp"
#include "core/history_io.hpp"
#include "core/repeat.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"

namespace agebo {
namespace {

/// JobSpec with just the gang width set (avoids designated initializers,
/// which -Wextra flags for the defaulted trailing members).
agebo::exec::JobSpec gang(std::size_t width) {
  agebo::exec::JobSpec spec;
  spec.width = width;
  return spec;
}

// --------------------------------------------------------------------------
// GraphNet serialization.

nn::GraphSpec serialize_spec() {
  nn::GraphSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  nn::NodeSpec n1;
  n1.units = 8;
  n1.act = nn::Activation::kSwish;
  nn::NodeSpec n2;
  n2.is_identity = true;
  nn::NodeSpec n3;
  n3.units = 5;
  n3.act = nn::Activation::kTanh;
  n3.skips = {0, 1};
  spec.nodes = {n1, n2, n3};
  spec.output_skips = {2};
  return spec;
}

TEST(Serialize, RoundTripPreservesOutputs) {
  Rng rng(3);
  nn::GraphNet original(serialize_spec(), rng);

  std::stringstream ss;
  nn::save_graphnet(original, ss);
  auto restored = nn::load_graphnet(ss);

  nn::Tensor x(5, 6);
  Rng data_rng(4);
  for (auto& v : x.v) v = static_cast<float>(data_rng.normal());
  const nn::Tensor a = original.forward(x);
  const nn::Tensor& b = restored->forward(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.v.size(); ++i) {
    EXPECT_FLOAT_EQ(a.v[i], b.v[i]);
  }
}

TEST(Serialize, RoundTripPreservesSpec) {
  Rng rng(5);
  nn::GraphNet original(serialize_spec(), rng);
  std::stringstream ss;
  nn::save_graphnet(original, ss);
  auto restored = nn::load_graphnet(ss);
  const auto& spec = restored->spec();
  EXPECT_EQ(spec.nodes.size(), 3u);
  EXPECT_TRUE(spec.nodes[1].is_identity);
  EXPECT_EQ(spec.nodes[2].skips, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(spec.output_skips, (std::vector<std::size_t>{2}));
  EXPECT_EQ(restored->num_params(), original.num_params());
}

TEST(Serialize, RejectsCorruptedInput) {
  std::stringstream bad("not-a-model v1\n");
  EXPECT_THROW(nn::load_graphnet(bad), std::runtime_error);

  Rng rng(6);
  nn::GraphNet original(serialize_spec(), rng);
  std::stringstream ss;
  nn::save_graphnet(original, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // truncate
  std::stringstream truncated(text);
  EXPECT_THROW(nn::load_graphnet(truncated), std::runtime_error);
}

// --------------------------------------------------------------------------
// History CSV round trip + warm start.

core::SearchResult tiny_campaign(std::uint64_t seed, double minutes = 30.0,
                                 std::vector<core::EvalRecord> warm = {}) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(16);
  auto cfg = core::agebo_config(seed);
  cfg.population_size = 20;
  cfg.sample_size = 5;
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.warm_start = std::move(warm);
  core::AgeboSearch search(space, evaluator, executor, cfg);
  return search.run();
}

TEST(HistoryIo, CsvRoundTrip) {
  nas::SearchSpace space;
  const auto result = tiny_campaign(9);
  ASSERT_GT(result.history.size(), 5u);

  std::stringstream ss;
  core::save_history(result, ss);
  const auto loaded = core::load_history(ss, space);
  ASSERT_EQ(loaded.size(), result.history.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].config.genome, result.history[i].config.genome);
    EXPECT_NEAR(loaded[i].objective, result.history[i].objective, 1e-9);
    EXPECT_NEAR(loaded[i].finish_time, result.history[i].finish_time, 1e-6);
    EXPECT_EQ(loaded[i].config.hparams, result.history[i].config.hparams);
  }
}

TEST(HistoryIo, RejectsBadHeader) {
  nas::SearchSpace space;
  std::stringstream ss("wrong,header\n1,2\n");
  EXPECT_THROW(core::load_history(ss, space), std::runtime_error);
}

TEST(WarmStart, SeedsPopulationAndImprovesEarlyPhase) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());

  // A first campaign produces prior knowledge.
  const auto first = tiny_campaign(10, 45.0);
  std::stringstream ss;
  core::save_history(first, ss);
  const auto prior = core::load_history(ss, space);

  // Cold vs warm second campaign. What warm start guarantees is the
  // *quality of the earliest evaluations*: they mutate an already-good
  // population with BO-exploited hyperparameters, instead of sampling
  // random genomes with random hyperparameters. (Final best over a short
  // horizon can still favor cold runs, which accidentally explore fast
  // high-throughput configurations — the same effect the paper notes for
  // AgEBO's first 30 minutes in Fig 4.)
  const auto cold = tiny_campaign(11, 60.0);
  const auto warm = tiny_campaign(11, 60.0, prior);
  auto early_mean = [](const core::SearchResult& r, std::size_t k) {
    double sum = 0.0;
    k = std::min(k, r.history.size());
    for (std::size_t i = 0; i < k; ++i) sum += r.history[i].objective;
    return sum / static_cast<double>(k);
  };
  EXPECT_GT(early_mean(warm, 10), early_mean(cold, 10) + 0.01);
}

TEST(WarmStart, RecordsOutsideFrozenSpaceOnlySeedPopulation) {
  // Warm records with n=4 hyperparameters fed into an AgEBO-8-LR search
  // (n frozen to 8) must not crash; genomes still seed the population.
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(8);

  core::EvalRecord rec;
  Rng rng(12);
  rec.config.genome = space.random(rng);
  rec.config.hparams = {256.0, 0.01, 4.0};
  rec.objective = 0.9;

  auto cfg = core::agebo_8_lr_config(13);
  cfg.population_size = 5;
  cfg.sample_size = 2;
  cfg.wall_time_seconds = 600.0;
  cfg.warm_start = {rec};
  core::AgeboSearch search(space, evaluator, executor, cfg);
  EXPECT_NO_THROW(search.run());
}

// --------------------------------------------------------------------------
// Random-search baseline.

TEST(RandomSearch, NeverMutatesAndUnderperformsAgE) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());

  auto run = [&](core::SearchConfig cfg) {
    exec::SimulatedExecutor executor(32);
    cfg.wall_time_seconds = 120.0 * 60.0;
    core::AgeboSearch search(space, evaluator, executor, cfg);
    return search.run();
  };
  const auto rs = run(core::random_search_config(4, 21));
  const auto age = run(core::age_config(4, 21));
  EXPECT_EQ(core::variant_name(core::random_search_config(4, 21)), "RS-4");
  // Evolution should beat pure random sampling given the same budget.
  EXPECT_GT(age.best_objective, rs.best_objective);
}

// --------------------------------------------------------------------------
// Gang-width scheduling.

TEST(GangScheduling, WideJobOccupiesMultipleWorkers) {
  exec::SimulatedExecutor sim(4);
  // A width-4 job and then a width-1 job: the narrow one must wait.
  sim.submit([] { return exec::EvalOutput{0.5, 10.0, false}; },
             gang(4));
  sim.submit([] { return exec::EvalOutput{0.5, 5.0, false}; },
             gang(1));
  auto first = sim.get_finished(true);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0].finish_time, 10.0);  // the wide job
  auto second = sim.get_finished(true);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second[0].finish_time, 15.0);  // waited for the gang
}

TEST(GangScheduling, WidthOneMatchesPlainSubmit) {
  exec::SimulatedExecutor a(3);
  exec::SimulatedExecutor b(3);
  for (int i = 0; i < 5; ++i) {
    a.submit([] { return exec::EvalOutput{0.5, 7.0, false}; },
             exec::JobSpec{});
    b.submit([] { return exec::EvalOutput{0.5, 7.0, false}; },
             gang(1));
  }
  while (true) {
    auto fa = a.get_finished(true);
    auto fb = b.get_finished(true);
    ASSERT_EQ(fa.size(), fb.size());
    if (fa.empty()) break;
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_DOUBLE_EQ(fa[i].finish_time, fb[i].finish_time);
    }
  }
}

TEST(GangScheduling, RejectsBadWidth) {
  exec::SimulatedExecutor sim(2);
  auto job = [] { return exec::EvalOutput{0.5, 1.0, false}; };
  EXPECT_THROW(sim.submit(job, gang(0)),
               std::invalid_argument);
  EXPECT_THROW(sim.submit(job, gang(3)),
               std::invalid_argument);
}

TEST(GangScheduling, MultinodeConfigWidthFn) {
  const auto cfg = core::agebo_multinode_config(1, 8);
  ASSERT_TRUE(static_cast<bool>(cfg.width_fn));
  eval::ModelConfig mc;
  mc.hparams = {256.0, 0.01, 8.0};
  EXPECT_EQ(cfg.width_fn(mc), 1u);
  mc.hparams[2] = 16.0;
  EXPECT_EQ(cfg.width_fn(mc), 2u);
  mc.hparams[2] = 64.0;
  EXPECT_EQ(cfg.width_fn(mc), 8u);
}

// --------------------------------------------------------------------------
// Repetition harness.

TEST(Repeat, AggregatesAcrossSeeds) {
  nas::SearchSpace space;
  const auto outcome = core::run_repeated(
      [&](std::uint64_t seed) { return tiny_campaign(seed, 20.0); },
      {1, 2, 3}, /*target_accuracy=*/0.5);
  EXPECT_EQ(outcome.runs.size(), 3u);
  EXPECT_EQ(outcome.best_accuracy.count(), 3u);
  EXPECT_GT(outcome.best_accuracy.mean(), 0.7);
  EXPECT_EQ(outcome.reached_count, 3u);  // 0.5 is easy to reach
  EXPECT_GT(outcome.time_to_target.mean(), 0.0);
}

TEST(Repeat, RejectsEmptySeedList) {
  EXPECT_THROW(core::run_repeated([](std::uint64_t) { return core::SearchResult{}; },
                                  {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace agebo
