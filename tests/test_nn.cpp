// Unit tests for src/nn: tensor kernels, activations, dense layer,
// graph network forward/backward (with numerical gradient checks), loss,
// Adam, schedules, and the trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"
#include "nn/schedule.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"

namespace agebo::nn {
namespace {

TEST(Tensor, MatmulKnownValues) {
  Tensor a(2, 3);
  Tensor b(3, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    a.v[i] = static_cast<float>(i + 1);
    b.v[i] = static_cast<float>(i + 1);
  }
  Tensor out;
  matmul(a, b, out);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_FLOAT_EQ(out.at(0, 0), 22.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 28.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 49.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 64.0f);
}

TEST(Tensor, MatmulTransposeVariantsAgree) {
  Rng rng(1);
  Tensor a(4, 5);
  Tensor b(5, 3);
  for (auto& v : a.v) v = static_cast<float>(rng.normal());
  for (auto& v : b.v) v = static_cast<float>(rng.normal());

  Tensor ref;
  matmul(a, b, ref);

  // a * b == a * (b^T)^T via matmul_bt with bt = b^T.
  Tensor bt(3, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  Tensor out_bt;
  matmul_bt(a, bt, out_bt);
  ASSERT_TRUE(ref.same_shape(out_bt));
  for (std::size_t i = 0; i < ref.v.size(); ++i) {
    EXPECT_NEAR(ref.v[i], out_bt.v[i], 1e-5);
  }

  // a * b == (a^T)^T * b via matmul_at with at = a^T.
  Tensor at(5, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) at.at(c, r) = a.at(r, c);
  }
  Tensor out_at;
  matmul_at(at, b, out_at);
  ASSERT_TRUE(ref.same_shape(out_at));
  for (std::size_t i = 0; i < ref.v.size(); ++i) {
    EXPECT_NEAR(ref.v[i], out_at.v[i], 1e-5);
  }
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(2, 3);
  Tensor b(2, 3);
  Tensor out;
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
  EXPECT_THROW(add_inplace(a, Tensor(3, 2)), std::invalid_argument);
}

TEST(Tensor, AddBiasBroadcasts) {
  Tensor t(2, 3, 1.0f);
  add_bias(t, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(t.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 4.0f);
}

class ActivationTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationTest, DerivativeMatchesFiniteDifference) {
  const Activation act = GetParam();
  const float eps = 1e-3f;
  for (float z : {-2.0f, -0.5f, 0.1f, 0.7f, 2.5f}) {
    const float analytic = activate_grad_scalar(act, z);
    const float numeric =
        (activate_scalar(act, z + eps) - activate_scalar(act, z - eps)) /
        (2.0f * eps);
    EXPECT_NEAR(analytic, numeric, 2e-3) << to_string(act) << " at z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationTest,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSwish,
                                           Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid),
                         [](const auto& info) { return to_string(info.param); });

TEST(Activation, ReluClampsNegative) {
  EXPECT_FLOAT_EQ(activate_scalar(Activation::kRelu, -3.0f), 0.0f);
  EXPECT_FLOAT_EQ(activate_scalar(Activation::kRelu, 3.0f), 3.0f);
}

TEST(Activation, IndexRoundTrip) {
  for (int i = 0; i < kNumActivations; ++i) {
    EXPECT_EQ(static_cast<int>(activation_from_index(i)), i);
  }
  EXPECT_THROW(activation_from_index(kNumActivations), std::out_of_range);
}

TEST(Dense, ForwardComputesAffine) {
  Rng rng(2);
  DenseLayer layer(2, 2, true, rng);
  // Overwrite weights for a known result.
  layer.weights().at(0, 0) = 1.0f;
  layer.weights().at(0, 1) = 2.0f;
  layer.weights().at(1, 0) = 3.0f;
  layer.weights().at(1, 1) = 4.0f;
  Tensor x(1, 2);
  x.v = {1.0f, 2.0f};
  Tensor z;
  layer.forward(x, z);
  EXPECT_FLOAT_EQ(z.at(0, 0), 7.0f);   // 1*1 + 2*3
  EXPECT_FLOAT_EQ(z.at(0, 1), 10.0f);  // 1*2 + 2*4
}

TEST(Dense, BackwardGradCheck) {
  Rng rng(3);
  DenseLayer layer(3, 2, true, rng);
  Tensor x(4, 3);
  for (auto& v : x.v) v = static_cast<float>(rng.normal());

  // Loss = sum(z); dL/dz = ones.
  Tensor z;
  layer.forward(x, z);
  layer.zero_grad();
  Tensor dz(4, 2, 1.0f);
  Tensor dx;
  layer.backward(dz, dx);

  // Numerical check on one weight entry.
  auto params = layer.params();
  const float eps = 1e-3f;
  auto loss_at = [&]() {
    Tensor zz;
    layer.forward(x, zz);
    float s = 0.0f;
    for (float v : zz.v) s += v;
    return s;
  };
  for (std::size_t trial = 0; trial < 4; ++trial) {
    auto& w = (*params[0].values)[trial];
    const float orig = w;
    w = orig + eps;
    const float up = loss_at();
    w = orig - eps;
    const float down = loss_at();
    w = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR((*params[0].grads)[trial], numeric, 2e-2);
  }
}

GraphSpec small_spec(bool with_skips) {
  GraphSpec spec;
  spec.input_dim = 5;
  spec.output_dim = 3;
  NodeSpec n1;
  n1.units = 8;
  n1.act = Activation::kTanh;
  NodeSpec n2;
  n2.units = 6;
  n2.act = Activation::kSwish;
  NodeSpec n3;
  n3.units = 4;
  n3.act = Activation::kRelu;
  if (with_skips) {
    n3.skips = {0, 1};        // input and N1 into N3's combine
  }
  spec.nodes = {n1, n2, n3};
  if (with_skips) spec.output_skips = {1, 2};
  return spec;
}

TEST(GraphSpec, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(small_spec(true).validate());
}

TEST(GraphSpec, ValidateRejectsForwardSkip) {
  auto spec = small_spec(false);
  spec.nodes[0].skips = {0};  // node 1's base is node 0; no earlier node
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(GraphSpec, ValidateRejectsOutOfRangeOutputSkip) {
  auto spec = small_spec(false);
  spec.output_skips = {3};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(GraphNet, ForwardShapeAndDeterminism) {
  Rng rng1(4);
  Rng rng2(4);
  GraphNet a(small_spec(true), rng1);
  GraphNet b(small_spec(true), rng2);
  Tensor x(7, 5);
  Rng data_rng(5);
  for (auto& v : x.v) v = static_cast<float>(data_rng.normal());
  const Tensor& la = a.forward(x);
  const Tensor& lb = b.forward(x);
  EXPECT_EQ(la.rows, 7u);
  EXPECT_EQ(la.cols, 3u);
  EXPECT_EQ(la.v, lb.v);  // same seed -> identical nets
}

TEST(GraphNet, IdentityNodePassesThrough) {
  GraphSpec spec;
  spec.input_dim = 4;
  spec.output_dim = 2;
  NodeSpec id_node;
  id_node.is_identity = true;
  spec.nodes = {id_node};
  Rng rng(6);
  GraphNet net(spec, rng);
  // Only parameters should be the output dense (4 -> 2 plus bias).
  EXPECT_EQ(net.num_params(), 4u * 2u + 2u);
}

TEST(GraphNet, SkipProjectionOnlyWhenWidthsDiffer) {
  // N1 width 8, input width 5: skip from input to N2 needs a projection
  // into width-8 base. Same-width skips add no parameters.
  GraphSpec spec;
  spec.input_dim = 5;
  spec.output_dim = 2;
  NodeSpec n1;
  n1.units = 8;
  NodeSpec n2;
  n2.units = 8;
  n2.skips = {0};  // input (5) into base width 8 -> projection 5x8
  spec.nodes = {n1, n2};
  Rng rng(7);
  GraphNet net(spec, rng);
  const std::size_t expected = (5 * 8 + 8)      // N1 dense
                               + 5 * 8          // projection (no bias)
                               + (8 * 8 + 8)    // N2 dense
                               + (8 * 2 + 2);   // output dense
  EXPECT_EQ(net.num_params(), expected);
}

/// Full-network gradient check through skips, projections, and softmax CE.
TEST(GraphNet, EndToEndGradCheck) {
  Rng rng(8);
  GraphNet net(small_spec(true), rng);
  Rng data_rng(9);
  Tensor x(6, 5);
  for (auto& v : x.v) v = static_cast<float>(data_rng.normal());
  std::vector<int> y = {0, 1, 2, 0, 1, 2};

  auto loss_fn = [&]() {
    const Tensor& logits = net.forward(x);
    Tensor dl;
    return softmax_cross_entropy(logits, y, dl);
  };

  const Tensor& logits = net.forward(x);
  net.zero_grad();
  Tensor dlogits;
  softmax_cross_entropy(logits, y, dlogits);
  net.backward(dlogits);

  auto params = net.params();
  const float eps = 1e-2f;
  std::size_t checked = 0;
  Rng pick(10);
  for (auto& block : params) {
    // Check two random entries per block.
    for (int t = 0; t < 2 && !block.values->empty(); ++t) {
      const std::size_t i = pick.index(block.values->size());
      float& w = (*block.values)[i];
      const float orig = w;
      w = orig + eps;
      const double up = loss_fn();
      w = orig - eps;
      const double down = loss_fn();
      w = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR((*block.grads)[i], numeric, 5e-3)
          << "param block entry " << i;
      ++checked;
    }
  }
  EXPECT_GE(checked, 10u);
}

TEST(GraphNet, DescribeMentionsStructure) {
  Rng rng(11);
  GraphNet net(small_spec(true), rng);
  const auto desc = net.describe();
  EXPECT_NE(desc.find("Dense(8, tanh)"), std::string::npos);
  EXPECT_NE(desc.find("skips"), std::string::npos);
  EXPECT_NE(desc.find("softmax"), std::string::npos);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Tensor logits(3, 4);
  Rng rng(12);
  for (auto& v : logits.v) v = static_cast<float>(rng.normal(0.0, 3.0));
  Tensor probs;
  softmax(logits, probs);
  for (std::size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 4; ++c) sum += probs.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Loss, CrossEntropyOfPerfectPredictionIsSmall) {
  Tensor logits(2, 3, 0.0f);
  logits.at(0, 1) = 20.0f;
  logits.at(1, 2) = 20.0f;
  Tensor dl;
  const double loss = softmax_cross_entropy(logits, {1, 2}, dl);
  EXPECT_LT(loss, 1e-6);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  // Softmax CE gradient rows sum to zero (probs sum 1, one-hot sums 1).
  Tensor logits(4, 5);
  Rng rng(13);
  for (auto& v : logits.v) v = static_cast<float>(rng.normal());
  Tensor dl;
  softmax_cross_entropy(logits, {0, 1, 2, 3}, dl);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += dl.at(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits(3, 2, 0.0f);
  logits.at(0, 0) = 1.0f;  // pred 0
  logits.at(1, 1) = 1.0f;  // pred 1
  logits.at(2, 0) = 1.0f;  // pred 0
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
  EXPECT_EQ(predict_classes(logits), (std::vector<int>{0, 1, 0}));
}

TEST(Loss, RejectsLabelOutOfRange) {
  Tensor logits(1, 2, 0.0f);
  Tensor dl;
  EXPECT_THROW(softmax_cross_entropy(logits, {5}, dl), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
  std::vector<float> w = {0.0f};
  std::vector<float> g = {0.0f};
  Adam opt({ParamRef{&w, &g}}, AdamConfig{0.1, 0.9, 0.999, 1e-8});
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0f * (w[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w[0], 3.0f, 1e-2);
}

TEST(Adam, LearningRateMutable) {
  std::vector<float> w = {0.0f};
  std::vector<float> g = {1.0f};
  Adam opt({ParamRef{&w, &g}}, AdamConfig{});
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  opt.step();
  EXPECT_LT(w[0], 0.0f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(Warmup, RampsLinearlyToTarget) {
  GradualWarmup warmup(0.01, 0.08, 5);
  EXPECT_DOUBLE_EQ(warmup.lr_for_epoch(0), 0.01);
  EXPECT_NEAR(warmup.lr_for_epoch(1), 0.01 + 0.2 * 0.07, 1e-12);
  EXPECT_DOUBLE_EQ(warmup.lr_for_epoch(5), 0.08);
  EXPECT_DOUBLE_EQ(warmup.lr_for_epoch(100), 0.08);
}

TEST(Warmup, ZeroEpochsHoldsTarget) {
  GradualWarmup warmup(0.01, 0.08, 0);
  EXPECT_DOUBLE_EQ(warmup.lr_for_epoch(0), 0.08);
}

TEST(Plateau, ReducesAfterPatienceStagnantEpochs) {
  ReduceLROnPlateau plateau(3, 0.5);
  double lr = 0.1;
  lr = plateau.update(0.80, lr);  // new best
  EXPECT_DOUBLE_EQ(lr, 0.1);
  lr = plateau.update(0.80, lr);  // stagnant 1
  lr = plateau.update(0.79, lr);  // stagnant 2
  lr = plateau.update(0.80, lr);  // stagnant 3 -> reduce
  EXPECT_DOUBLE_EQ(lr, 0.05);
  EXPECT_EQ(plateau.num_reductions(), 1u);
}

TEST(Plateau, ImprovementResetsCounter) {
  ReduceLROnPlateau plateau(2, 0.5);
  double lr = 0.1;
  lr = plateau.update(0.5, lr);
  lr = plateau.update(0.4, lr);   // stagnant 1
  lr = plateau.update(0.6, lr);   // improvement resets
  lr = plateau.update(0.55, lr);  // stagnant 1
  EXPECT_DOUBLE_EQ(lr, 0.1);
}

TEST(Plateau, RespectsMinLr) {
  ReduceLROnPlateau plateau(1, 0.5, 1e-4, 0.01);
  double lr = 0.02;
  lr = plateau.update(0.5, lr);
  lr = plateau.update(0.4, lr);
  lr = plateau.update(0.4, lr);
  lr = plateau.update(0.4, lr);
  EXPECT_GE(lr, 0.01);
}

TEST(Trainer, LearnsSeparableProblem) {
  data::SyntheticSpec spec;
  spec.n_rows = 600;
  spec.n_features = 8;
  spec.n_classes = 3;
  spec.n_informative = 6;
  spec.class_sep = 3.0;
  spec.label_noise = 0.0;
  spec.seed = 99;
  const auto ds = data::make_classification(spec);
  Rng split_rng(1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  GraphSpec gspec;
  gspec.input_dim = 8;
  gspec.output_dim = 3;
  NodeSpec n1;
  n1.units = 16;
  n1.act = Activation::kRelu;
  gspec.nodes = {n1};
  Rng net_rng(2);
  GraphNet net(gspec, net_rng);

  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.batch_size = 32;
  cfg.lr = 0.01;
  const auto result = train(net, splits.train, splits.valid, cfg);
  EXPECT_GT(result.best_valid_accuracy, 0.85);
  EXPECT_EQ(result.epochs.size(), 15u);
  // Loss should drop substantially from first to last epoch.
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss * 0.8);
}

TEST(Trainer, WarmupAffectsEarlyEpochLr) {
  data::SyntheticSpec spec;
  spec.n_rows = 200;
  spec.seed = 4;
  const auto ds = data::make_classification(spec);
  Rng split_rng(5);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  GraphSpec gspec;
  gspec.input_dim = ds.n_features;
  gspec.output_dim = ds.n_classes;
  NodeSpec n1;
  n1.units = 8;
  gspec.nodes = {n1};
  Rng net_rng(6);
  GraphNet net(gspec, net_rng);

  TrainConfig cfg;
  cfg.epochs = 7;
  cfg.lr = 0.08;
  cfg.warmup_div = 8.0;
  cfg.warmup_epochs = 5;
  cfg.batch_size = 32;
  const auto result = train(net, splits.train, splits.valid, cfg);
  EXPECT_NEAR(result.epochs[0].learning_rate, 0.01, 1e-9);
  EXPECT_NEAR(result.epochs[5].learning_rate, 0.08, 1e-9);
}

TEST(Trainer, RejectsBadConfig) {
  data::Dataset ds;
  ds.n_rows = 0;
  GraphSpec gspec;
  gspec.input_dim = 2;
  gspec.output_dim = 2;
  Rng rng(1);
  GraphNet net(gspec, rng);
  TrainConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(train(net, ds, ds, cfg), std::invalid_argument);
}

TEST(Trainer, BatchFromExtractsRows) {
  data::Dataset ds;
  ds.n_rows = 3;
  ds.n_features = 2;
  ds.n_classes = 2;
  ds.x = {1, 2, 3, 4, 5, 6};
  ds.y = {0, 1, 0};
  Tensor x;
  std::vector<int> y;
  batch_from(ds, {2, 0, 1}, 0, 2, x, y);
  EXPECT_EQ(x.rows, 2u);
  EXPECT_FLOAT_EQ(x.at(0, 0), 5.0f);  // row 2 first
  EXPECT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(x.at(1, 1), 2.0f);  // row 0 second
}

}  // namespace
}  // namespace agebo::nn
