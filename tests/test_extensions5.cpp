// Tests for the fifth extension wave: progress callbacks, file-based
// persistence round trips, live-executor utilization, and trainer
// regularization knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "eval/surrogate.hpp"
#include "exec/live_executor.hpp"
#include "exec/sim_executor.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace agebo {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("agebo_test_") + name))
      .string();
}

TEST(Callback, OnResultSeesEveryRecordInOrder) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(8);
  auto cfg = core::age_config(4, 3);
  cfg.wall_time_seconds = 40.0 * 60.0;

  std::size_t calls = 0;
  std::size_t last_index = 0;
  bool ordered = true;
  cfg.on_result = [&](const core::EvalRecord& rec) {
    if (calls > 0 && rec.index != last_index + 1) ordered = false;
    last_index = rec.index;
    ++calls;
  };
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  EXPECT_EQ(calls, result.history.size());
  EXPECT_TRUE(ordered);
}

TEST(FilePersistence, GraphNetFileRoundTrip) {
  nn::GraphSpec spec;
  spec.input_dim = 4;
  spec.output_dim = 2;
  nn::NodeSpec node;
  node.units = 6;
  spec.nodes = {node};
  Rng rng(1);
  nn::GraphNet net(spec, rng);

  const auto path = temp_path("model.txt");
  nn::save_graphnet_file(net, path);
  auto restored = nn::load_graphnet_file(path);
  EXPECT_EQ(restored->num_params(), net.num_params());
  std::remove(path.c_str());

  EXPECT_THROW(nn::load_graphnet_file("/nonexistent/model.txt"),
               std::runtime_error);
}

TEST(FilePersistence, HistoryFileRoundTrip) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(8);
  auto cfg = core::age_config(8, 5);
  cfg.wall_time_seconds = 20.0 * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();

  const auto path = temp_path("history.csv");
  core::save_history_file(result, path);
  const auto loaded = core::load_history_file(path, space);
  EXPECT_EQ(loaded.size(), result.history.size());
  std::remove(path.c_str());

  EXPECT_THROW(core::load_history_file("/nonexistent/history.csv", space),
               std::runtime_error);
}

TEST(FilePersistence, CsvDatasetFileRoundTrip) {
  data::SyntheticSpec spec;
  spec.n_rows = 50;
  spec.seed = 9;
  const auto ds = data::make_classification(spec);
  const auto path = temp_path("data.csv");
  data::write_csv_file(ds, path);
  const auto back = data::read_csv_file(path);
  EXPECT_EQ(back.n_rows, ds.n_rows);
  EXPECT_EQ(back.y, ds.y);
  std::remove(path.c_str());
}

TEST(LiveExecutorStats, UtilizationTracksBusyTime) {
  exec::LiveExecutor executor(2);
  for (int i = 0; i < 4; ++i) {
    executor.submit(
        [] {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return exec::EvalOutput{0.5, 0.0, false};
        },
        exec::JobSpec{});
  }
  std::size_t got = 0;
  while (got < 4) got += executor.get_finished(true).size();
  const auto u = executor.utilization();
  EXPECT_EQ(u.workers, 2u);
  EXPECT_GT(u.busy_worker_seconds, 0.07);  // ~4 x 20 ms
  EXPECT_GT(u.fraction(), 0.3);
  EXPECT_LE(u.fraction(), 1.05);
}

TEST(TrainerRegularization, WeightDecayShrinksWeightNorm) {
  data::SyntheticSpec spec;
  spec.n_rows = 300;
  spec.seed = 21;
  const auto ds = data::make_classification(spec);
  Rng split_rng(2);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  auto weight_norm_after = [&](double weight_decay) {
    nn::GraphSpec gspec;
    gspec.input_dim = ds.n_features;
    gspec.output_dim = ds.n_classes;
    nn::NodeSpec node;
    node.units = 16;
    gspec.nodes = {node};
    Rng net_rng(3);
    nn::GraphNet net(gspec, net_rng);
    nn::TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batch_size = 32;
    cfg.lr = 0.01;
    cfg.weight_decay = weight_decay;
    nn::train(net, splits.train, splits.valid, cfg);
    double norm = 0.0;
    for (auto& block : net.params()) {
      for (float v : *block.values) norm += static_cast<double>(v) * v;
    }
    return norm;
  };
  EXPECT_LT(weight_norm_after(0.05), weight_norm_after(0.0));
}

TEST(TrainerRegularization, GradClipKeepsTrainingStable) {
  data::SyntheticSpec spec;
  spec.n_rows = 300;
  spec.seed = 22;
  const auto ds = data::make_classification(spec);
  Rng split_rng(4);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  nn::GraphSpec gspec;
  gspec.input_dim = ds.n_features;
  gspec.output_dim = ds.n_classes;
  nn::NodeSpec node;
  node.units = 16;
  gspec.nodes = {node};
  Rng net_rng(5);
  nn::GraphNet net(gspec, net_rng);
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.05;  // aggressive
  cfg.grad_clip_norm = 1.0;
  const auto result = nn::train(net, splits.train, splits.valid, cfg);
  EXPECT_GT(result.best_valid_accuracy, 0.5);
  for (const auto& epoch : result.epochs) {
    EXPECT_TRUE(std::isfinite(epoch.train_loss));
  }
}

}  // namespace
}  // namespace agebo
