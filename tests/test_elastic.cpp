// Elastic data-parallel training (DESIGN.md §16): membership / failure
// detector / abortable barrier units, the bit-exact fresh-run-equivalence
// contract after a reconfiguration, hang/slow fault semantics, and the
// campaign-level gates — degraded-but-successful evaluations and exact
// kill+resume of a degraded campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "dp/membership.hpp"
#include "dp/thread_team.hpp"
#include "eval/surrogate.hpp"
#include "exec/fault_injector.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "obs/registry.hpp"
#include "svc/registry.hpp"

namespace {

using namespace agebo;

// --- MembershipView -------------------------------------------------------

TEST(MembershipView, ResetRemoveSlotEpoch) {
  dp::MembershipView view;
  view.reset(4);
  EXPECT_EQ(view.world(), 4u);
  EXPECT_EQ(view.alive_count(), 4u);
  EXPECT_EQ(view.epoch(), 0u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(view.alive(r));
    EXPECT_EQ(view.slot(r), r);
  }

  view.remove({1});
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_EQ(view.alive_count(), 3u);
  EXPECT_FALSE(view.alive(1));
  // Dense renumbering: survivors get slots 0..alive_count-1 in rank order.
  EXPECT_EQ(view.slot(0), 0u);
  EXPECT_EQ(view.slot(2), 1u);
  EXPECT_EQ(view.slot(3), 2u);
  EXPECT_EQ(view.survivors(), (std::vector<std::size_t>{0, 2, 3}));

  // Removing an already-dead rank is a no-op but still bumps the epoch.
  view.remove({1, 3});
  EXPECT_EQ(view.alive_count(), 2u);
  EXPECT_EQ(view.epoch(), 2u);
  EXPECT_EQ(view.survivors(), (std::vector<std::size_t>{0, 2}));
}

// --- ElasticBarrier -------------------------------------------------------

TEST(ElasticBarrier, ReleasesWhenAllArrive) {
  dp::ElasticBarrier barrier;
  constexpr std::size_t kRanks = 4;
  barrier.reset(kRanks);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&] {
      if (barrier.arrive_and_wait([] { return false; })) ++released;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), kRanks);
}

TEST(ElasticBarrier, AbortReleasesWaiters) {
  dp::ElasticBarrier barrier;
  barrier.reset(2);  // second arrival never comes
  std::atomic<bool> abort{false};
  std::thread trigger([&] { abort.store(true); });
  const bool ok = barrier.arrive_and_wait([&] { return abort.load(); });
  trigger.join();
  EXPECT_FALSE(ok);
}

// --- FailureDetector ------------------------------------------------------

TEST(FailureDetector, VirtualClockDeadlineLatches) {
  double now = 0.0;
  dp::MembershipView view;
  view.reset(3);
  dp::FailureDetector det;
  det.configure(3, /*heartbeat_seconds=*/1.0, [&now] { return now; });
  det.arm(view);

  now = 0.5;
  EXPECT_FALSE(det.poll(view));  // everyone within deadline
  det.beat(1);
  det.beat(2);
  now = 1.2;  // rank 0 never beat after arm: 1.2 > 1.0 deadline
  EXPECT_TRUE(det.poll(view));
  EXPECT_TRUE(det.abort_requested());

  const auto lost = det.take_suspects(view);
  EXPECT_EQ(lost, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(det.abort_requested());  // settle clears the latch + abort
}

TEST(FailureDetector, MarkDeadRaisesAbortImmediately) {
  dp::MembershipView view;
  view.reset(2);
  dp::FailureDetector det;
  det.configure(2, 1000.0);  // deadline can never expire on its own
  det.arm(view);
  EXPECT_FALSE(det.abort_requested());
  det.mark_dead(1);
  EXPECT_TRUE(det.abort_requested());
  EXPECT_TRUE(det.poll(view));
  EXPECT_EQ(det.take_suspects(view), (std::vector<std::size_t>{1}));
}

TEST(FailureDetector, TakeSuspectsFiltersDeadRanks) {
  dp::MembershipView view;
  view.reset(3);
  dp::FailureDetector det;
  det.configure(3, 1000.0);
  det.arm(view);
  det.mark_dead(2);
  view.remove({2});
  // Rank 2 is already out of the view; a stale latch must not resurface.
  EXPECT_TRUE(det.take_suspects(view).empty());
}

// --- Trainer: fault semantics and the fresh-run equivalence gate ----------

data::Dataset elastic_dataset(std::size_t rows = 700) {
  data::SyntheticSpec spec;
  spec.n_rows = rows;
  spec.n_features = 8;
  spec.n_classes = 3;
  spec.n_informative = 5;
  spec.class_sep = 2.0;
  spec.seed = 77;
  return data::make_classification(spec);
}

nn::GraphSpec elastic_net_spec() {
  nn::GraphSpec spec;
  spec.input_dim = 8;
  spec.output_dim = 3;
  nn::NodeSpec n1;
  n1.units = 10;
  n1.act = nn::Activation::kRelu;
  nn::NodeSpec n2;
  n2.units = 6;
  n2.act = nn::Activation::kTanh;
  n2.skips = {0};
  spec.nodes = {n1, n2};
  return spec;
}

std::vector<std::vector<float>> snapshot_weights(dp::DataParallelTrainer& t) {
  std::vector<std::vector<float>> out;
  for (const auto& block : t.model().params()) out.push_back(*block.values);
  return out;
}

/// Searches fault seeds for one whose replica-draw stream injects exactly
/// one fault of `kind` — at a step attempt in [min_step, max_step), for one
/// of `world` replicas — and nothing else over the whole horizon. Returns
/// the seed; the attempt index and victim are reported through the out
/// params.
std::uint64_t find_single_fault_seed(exec::FaultKind kind, double prob,
                                     std::size_t world, std::uint64_t min_step,
                                     std::uint64_t max_step,
                                     std::uint64_t horizon,
                                     std::uint64_t* fault_step,
                                     std::size_t* victim) {
  for (std::uint64_t seed = 1; seed < 4000; ++seed) {
    exec::FaultConfig fc;
    if (kind == exec::FaultKind::kCrash) fc.crash_prob = prob;
    if (kind == exec::FaultKind::kHang) fc.hang_prob = prob;
    fc.seed = seed;
    const exec::FaultInjector injector(fc);
    std::size_t count = 0;
    std::uint64_t at = 0;
    std::size_t who = 0;
    for (std::uint64_t t = 0; t < horizon && count < 2; ++t) {
      for (std::size_t r = 0; r < world; ++r) {
        if (injector.draw_replica(0, r, t) != exec::FaultKind::kNone) {
          ++count;
          at = t;
          who = r;
        }
      }
    }
    if (count == 1 && at >= min_step && at < max_step) {
      *fault_step = at;
      *victim = who;
      return seed;
    }
  }
  ADD_FAILURE() << "no single-fault seed found";
  return 0;
}

class ElasticEquivalence
    : public ::testing::TestWithParam<std::tuple<dp::AllreduceStrategy, bool>> {
};

// THE acceptance gate: after a crash-induced reconfiguration the survivors
// must continue bit-identically to a fresh (n-1)-replica run started at the
// reconfiguration (epoch, step) from the same weights.
TEST_P(ElasticEquivalence, PostReconfigMatchesFreshShrunkenRun) {
  const auto [strategy, overlap] = GetParam();
  const auto ds = elastic_dataset();
  Rng split_rng(1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  dp::DataParallelConfig base;
  base.n_procs = 3;
  base.lr1 = 0.004;
  base.bs1 = 16;
  base.epochs = 3;
  base.allreduce = strategy;
  base.overlap_comm = overlap;
  base.seed = 5;
  base.elastic.enabled = true;

  std::uint64_t fault_step = 0;
  std::size_t victim = 0;
  const std::uint64_t seed = find_single_fault_seed(
      exec::FaultKind::kCrash, 0.004, base.n_procs, /*min_step=*/2,
      /*max_step=*/20, /*horizon=*/400, &fault_step, &victim);
  ASSERT_NE(seed, 0u);

  // Elastic run: loses `victim` at attempt fault_step, reconfigures, and
  // finishes at world size 2.
  dp::DataParallelConfig faulty = base;
  faulty.elastic.faults.crash_prob = 0.004;
  faulty.elastic.faults.seed = seed;
  dp::DataParallelTrainer elastic(elastic_net_spec(), faulty);
  const auto elastic_result = elastic.fit(splits.train, splits.valid);
  ASSERT_EQ(elastic_result.elastic_events.size(), 1u);
  const dp::ElasticEvent& ev = elastic_result.elastic_events[0];
  EXPECT_EQ(ev.lost, std::vector<std::size_t>{victim});
  EXPECT_EQ(ev.global_step, fault_step);
  EXPECT_EQ(ev.old_world, 3u);
  EXPECT_EQ(ev.new_world, 2u);
  EXPECT_EQ(ev.membership_epoch, 1u);
  EXPECT_EQ(elastic_result.final_world, 2u);
  EXPECT_EQ(elastic.max_replica_divergence(), 0.0f);

  // Reference A: fault-free elastic run stopped right where the aborted
  // step would have run — its weights are the snapshot the survivors
  // carried into the reconfiguration.
  dp::DataParallelConfig upto = base;
  upto.stop_after_steps = ev.global_step;
  dp::DataParallelTrainer prefix(elastic_net_spec(), upto);
  prefix.fit(splits.train, splits.valid);
  const auto carried = snapshot_weights(prefix);

  // Reference B: FRESH 2-replica run started at the reconfiguration cursor
  // from the carried weights. Must finish bit-identical to the elastic run.
  dp::DataParallelConfig fresh = base;
  fresh.n_procs = 2;
  fresh.elastic.enabled = false;
  fresh.start_epoch = ev.epoch;
  fresh.start_step = ev.step;
  fresh.initial_weights = carried;
  dp::DataParallelTrainer shrunken(elastic_net_spec(), fresh);
  const auto fresh_result = shrunken.fit(splits.train, splits.valid);

  const auto got = snapshot_weights(elastic);
  const auto want = snapshot_weights(shrunken);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].size(), want[b].size()) << "block " << b;
    for (std::size_t i = 0; i < got[b].size(); ++i) {
      ASSERT_EQ(got[b][i], want[b][i]) << "block " << b << " elem " << i;
    }
  }
  // Post-reconfig epoch stats line up with the fresh run's too.
  ASSERT_EQ(elastic_result.epochs.size(), base.epochs);
  const auto& fresh_epochs = fresh_result.epochs;
  ASSERT_FALSE(fresh_epochs.empty());
  EXPECT_EQ(elastic_result.epochs.back().valid_accuracy,
            fresh_epochs.back().valid_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndOverlap, ElasticEquivalence,
    ::testing::Combine(::testing::Values(dp::AllreduceStrategy::kFlat,
                                         dp::AllreduceStrategy::kTree,
                                         dp::AllreduceStrategy::kRing),
                       ::testing::Bool()));

TEST(ElasticTrainer, HangVictimReclaimedByHeartbeatDeadline) {
  const auto ds = elastic_dataset(500);
  Rng split_rng(2);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  std::uint64_t fault_step = 0;
  std::size_t victim = 0;
  const std::uint64_t seed = find_single_fault_seed(
      exec::FaultKind::kHang, 0.003, 2, /*min_step=*/1, /*max_step=*/10,
      /*horizon=*/400, &fault_step, &victim);
  ASSERT_NE(seed, 0u);

  dp::DataParallelConfig cfg;
  cfg.n_procs = 2;
  cfg.lr1 = 0.004;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.seed = 9;
  cfg.elastic.enabled = true;
  cfg.elastic.heartbeat_seconds = 0.05;  // keep the real-clock wait short
  cfg.elastic.faults.hang_prob = 0.003;
  cfg.elastic.faults.seed = seed;
  dp::DataParallelTrainer trainer(elastic_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);

  ASSERT_EQ(result.elastic_events.size(), 1u);
  EXPECT_EQ(result.elastic_events[0].lost, std::vector<std::size_t>{victim});
  EXPECT_EQ(result.final_world, 1u);
  // The sole survivor kept training to the end of the epoch budget.
  EXPECT_EQ(result.epochs.size(), cfg.epochs);
}

TEST(ElasticTrainer, SlowFaultNeverChangesMembership) {
  const auto ds = elastic_dataset(400);
  Rng split_rng(3);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  dp::DataParallelConfig cfg;
  cfg.n_procs = 2;
  cfg.lr1 = 0.004;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.seed = 4;
  cfg.elastic.enabled = true;
  cfg.elastic.heartbeat_seconds = 0.05;

  dp::DataParallelTrainer clean(elastic_net_spec(), cfg);
  clean.fit(splits.train, splits.valid);
  const auto clean_weights = snapshot_weights(clean);

  cfg.elastic.faults.slow_prob = 0.05;  // frequent interference
  cfg.elastic.faults.seed = 123;
  dp::DataParallelTrainer slowed(elastic_net_spec(), cfg);
  const auto result = slowed.fit(splits.train, splits.valid);

  EXPECT_TRUE(result.elastic_events.empty());
  EXPECT_EQ(result.final_world, 2u);
  // Interference costs time, never bits.
  const auto slow_weights = snapshot_weights(slowed);
  ASSERT_EQ(slow_weights.size(), clean_weights.size());
  for (std::size_t b = 0; b < slow_weights.size(); ++b) {
    for (std::size_t i = 0; i < slow_weights[b].size(); ++i) {
      ASSERT_EQ(slow_weights[b][i], clean_weights[b][i]);
    }
  }
}

TEST(ElasticTrainer, WorldBelowMinReplicasThrows) {
  const auto ds = elastic_dataset(400);
  Rng split_rng(5);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  std::uint64_t fault_step = 0;
  std::size_t victim = 0;
  const std::uint64_t seed = find_single_fault_seed(
      exec::FaultKind::kCrash, 0.004, 2, /*min_step=*/0, /*max_step=*/10,
      /*horizon=*/200, &fault_step, &victim);
  ASSERT_NE(seed, 0u);

  dp::DataParallelConfig cfg;
  cfg.n_procs = 2;
  cfg.lr1 = 0.004;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.seed = 6;
  cfg.elastic.enabled = true;
  cfg.elastic.min_replicas = 2;  // losing anyone collapses the fit
  cfg.elastic.faults.crash_prob = 0.004;
  cfg.elastic.faults.seed = seed;
  dp::DataParallelTrainer trainer(elastic_net_spec(), cfg);
  EXPECT_THROW(trainer.fit(splits.train, splits.valid), std::runtime_error);
}

TEST(ElasticTrainer, ReconfigurationMetricsAreRecorded) {
  const auto ds = elastic_dataset(400);
  Rng split_rng(6);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  const auto& reg = obs::Registry::global();
  const auto before = reg.snapshot();
  const auto* prior = before.find("dp.elastic.reconfigurations");
  const double prior_reconf = prior != nullptr ? prior->value : 0.0;

  std::uint64_t fault_step = 0;
  std::size_t victim = 0;
  const std::uint64_t seed = find_single_fault_seed(
      exec::FaultKind::kCrash, 0.004, 3, /*min_step=*/1, /*max_step=*/5,
      /*horizon=*/300, &fault_step, &victim);
  ASSERT_NE(seed, 0u);

  dp::DataParallelConfig cfg;
  cfg.n_procs = 3;
  cfg.lr1 = 0.004;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.seed = 8;
  cfg.elastic.enabled = true;
  cfg.elastic.faults.crash_prob = 0.004;
  cfg.elastic.faults.seed = seed;
  dp::DataParallelTrainer trainer(elastic_net_spec(), cfg);
  trainer.fit(splits.train, splits.valid);

  const auto after = reg.snapshot();
  const auto* reconf = after.find("dp.elastic.reconfigurations");
  ASSERT_NE(reconf, nullptr);
  EXPECT_EQ(reconf->value, prior_reconf + 1.0);
  const auto* world = after.find("dp.elastic.world");
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(world->value, 2.0);
}

// --- Campaign gates: degraded evaluations + exact degraded resume ---------

// Gate (b): a campaign with injected replica crashes completes with ZERO
// failed evaluations — faults degrade the training world, they don't kill
// jobs — and the history records the degraded final world sizes.
TEST(ElasticCampaign, ReplicaCrashesDegradeButNeverFailEvaluations) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  eval::ElasticSimConfig elastic;
  elastic.enabled = true;
  elastic.crash_prob = 0.02;
  elastic.seed = 99;
  evaluator.set_elastic(elastic);

  exec::SimulatedExecutor executor(16, 90.0, {}, {});
  core::SearchConfig cfg = core::config_by_name("agebo", 13, 0.001);
  cfg.wall_time_seconds = 30.0 * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();

  ASSERT_FALSE(result.history.empty());
  std::size_t degraded = 0;
  for (const auto& rec : result.history) {
    EXPECT_FALSE(rec.failed);
    if (rec.degraded) {
      ++degraded;
      const auto n = static_cast<std::size_t>(rec.config.hparams[2]);
      EXPECT_LT(rec.final_world, n);
      EXPECT_GE(rec.final_world, 1u);
    }
  }
  // The paper-space n goes up to 8 with per-epoch crash draws: a 30-minute
  // campaign reliably sees degraded-but-successful evaluations.
  EXPECT_GT(degraded, 0u);

  // The degraded/final_world columns survive a history CSV round trip.
  std::ostringstream os;
  core::save_history(result, os);
  std::istringstream is(os.str());
  const auto loaded = core::load_history(is, space);
  ASSERT_EQ(loaded.size(), result.history.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].degraded, result.history[i].degraded);
    EXPECT_EQ(loaded[i].final_world, result.history[i].final_world);
  }
}

// Gate (c): kill+resume of a DEGRADED campaign reproduces the
// uninterrupted run exactly — elastic config and stateless crash draws ride
// the checkpoint.
TEST(ElasticCampaign, KilledDegradedCampaignResumesExactly) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 16;
  cfg.job_overhead_seconds = 90.0;

  auto add_campaign = [](svc::CampaignRegistry& r) {
    svc::CampaignSpec spec;
    spec.name = "degraded";
    spec.tenant = "default";
    spec.kind = svc::CampaignKind::kAgebo;
    spec.dataset = "covertype";
    spec.variant = "agebo";
    spec.wall_time_seconds = 40.0 * 60.0;
    spec.seed = 21;
    spec.elastic_crash = 0.02;
    spec.elastic_seed = 555;
    r.add_campaign(spec);
  };

  svc::CampaignRegistry uninterrupted(cfg, space);
  add_campaign(uninterrupted);
  EXPECT_TRUE(uninterrupted.run());

  const std::string ckpt =
      std::string(::testing::TempDir()) + "elastic_resume.ckpt";
  svc::SvcConfig kill_cfg = cfg;
  kill_cfg.checkpoint_path = ckpt;
  svc::CampaignRegistry killed(kill_cfg, space);
  add_campaign(killed);
  EXPECT_FALSE(killed.run(/*stop_after_seconds=*/900.0));

  svc::CampaignRegistry resumed(kill_cfg, space);
  resumed.load_checkpoint(ckpt);
  EXPECT_TRUE(resumed.run());

  const auto& a = uninterrupted.campaign(0).history();
  const auto& b = resumed.campaign(0).history();
  ASSERT_EQ(a.size(), b.size());
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objective, b[i].objective) << "record " << i;
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << "record " << i;
    EXPECT_EQ(a[i].train_seconds, b[i].train_seconds) << "record " << i;
    EXPECT_EQ(a[i].degraded, b[i].degraded) << "record " << i;
    EXPECT_EQ(a[i].final_world, b[i].final_world) << "record " << i;
    EXPECT_FALSE(a[i].failed);
    if (a[i].degraded) ++degraded;
  }
  EXPECT_GT(degraded, 0u);
  std::remove(ckpt.c_str());
}

}  // namespace
