// Unit tests for src/common: RNG, statistics, matrix, PCA, table rendering,
// CLI argument parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/args.hpp"
#include "common/matrix.hpp"
#include "common/pca.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace agebo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(3));
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, LogUniformStaysInRangeAndSpansDecades) {
  Rng rng(6);
  int low_decade = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.log_uniform(0.001, 0.1);
    EXPECT_GE(v, 0.001);
    EXPECT_LT(v, 0.1);
    if (v < 0.01) ++low_decade;
  }
  // Log-uniform: each decade should receive about half the mass.
  EXPECT_GT(low_decade, 800);
  EXPECT_LT(low_decade, 1200);
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(6);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.log_uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(9);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(10);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(11);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Quantile, EndpointsAndMedian) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(ArgHelpers, ArgmaxArgminArgsort) {
  std::vector<double> v{1.0, 9.0, 3.0, 9.0};
  EXPECT_EQ(argmax(v), 1u);  // first max wins
  EXPECT_EQ(argmin(v), 0u);
  const auto order = argsort_desc(v);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order.back(), 0u);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  int k = 1;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = k++;
  }
  const Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), a(1, 2));

  const Matrix prod = a.multiply(at);  // 2x2
  EXPECT_DOUBLE_EQ(prod(0, 0), 1 + 4 + 9);
  EXPECT_DOUBLE_EQ(prod(0, 1), 4 + 10 + 18);
}

TEST(Matrix, CenterColumnsRemovesMeans) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 10;
  m(1, 1) = 20;
  m(2, 1) = 30;
  const auto means = m.center_columns();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  const auto after = m.col_means();
  EXPECT_NEAR(after[0], 0.0, 1e-12);
  EXPECT_NEAR(after[1], 0.0, 1e-12);
}

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  const auto eig = jacobi_eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-9);
}

TEST(Pca, RecoversDominantDirection) {
  // Points along the (1, 1) direction with small orthogonal noise.
  Rng rng(12);
  Matrix data(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    const double t = rng.normal(0.0, 3.0);
    const double noise = rng.normal(0.0, 0.1);
    data(i, 0) = t + noise;
    data(i, 1) = t - noise;
  }
  const auto result = pca(data, 2);
  EXPECT_GT(result.explained_variance_ratio[0], 0.95);
  EXPECT_NEAR(result.conserved_variance(), 1.0, 1e-9);
  // First component aligns with (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(result.components(0, 0)), std::sqrt(0.5), 0.05);
}

TEST(Pca, ProjectionPreservesSampleCount) {
  Rng rng(13);
  Matrix data(50, 5);
  for (auto& v : data.data()) v = rng.normal();
  const auto result = pca(data, 2);
  EXPECT_EQ(result.projected.rows(), 50u);
  EXPECT_EQ(result.projected.cols(), 2u);
  EXPECT_EQ(result.components.rows(), 2u);
  EXPECT_EQ(result.components.cols(), 5u);
}

TEST(Pca, RejectsTooFewSamples) {
  Matrix data(1, 3);
  EXPECT_THROW(pca(data, 2), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  const auto s = table.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
}

TEST(TextTable, RejectsWrongColumnCount) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, FormatsDoubles) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

namespace {
// argv helper: parse the given tokens (argv[0] is synthesized).
bool parse_args(common::ArgParser& args, std::vector<std::string> tokens) {
  std::vector<char*> argv;
  static std::string prog = "test";
  argv.push_back(prog.data());
  for (auto& t : tokens) argv.push_back(t.data());
  return args.parse(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(ArgParser, SeparateValueForm) {
  common::ArgParser args("usage\n");
  args.add_option("epochs");
  ASSERT_TRUE(parse_args(args, {"--epochs", "12"}));
  EXPECT_EQ(args.get_size("epochs", 0), 12u);
}

TEST(ArgParser, EqualsValueForm) {
  common::ArgParser args("usage\n");
  args.add_option("epochs");
  args.add_option("name");
  ASSERT_TRUE(parse_args(args, {"--epochs=34", "--name=skips-4x160"}));
  EXPECT_EQ(args.get_size("epochs", 0), 34u);
  EXPECT_EQ(args.get("name", ""), "skips-4x160");
}

TEST(ArgParser, EqualsValueMayContainEquals) {
  common::ArgParser args("usage\n");
  args.add_option("expr");
  ASSERT_TRUE(parse_args(args, {"--expr=a=b"}));
  EXPECT_EQ(args.get("expr", ""), "a=b");
}

TEST(ArgParser, EqualsValueMayBeEmpty) {
  common::ArgParser args("usage\n");
  args.add_option("tag");
  ASSERT_TRUE(parse_args(args, {"--tag="}));
  EXPECT_TRUE(args.has("tag"));
  EXPECT_EQ(args.get("tag", "fallback"), "");
}

TEST(ArgParser, BooleanFlagRejectsEqualsValue) {
  common::ArgParser args("usage\n");
  args.add_flag("int8");
  EXPECT_FALSE(parse_args(args, {"--int8=true"}));
  // Plain spelling still works on a fresh parser.
  common::ArgParser ok("usage\n");
  ok.add_flag("int8");
  ASSERT_TRUE(parse_args(ok, {"--int8"}));
  EXPECT_TRUE(ok.flag("int8"));
}

TEST(ArgParser, UnknownNameInEqualsFormIsError) {
  common::ArgParser args("usage\n");
  args.add_option("epochs");
  EXPECT_FALSE(parse_args(args, {"--epoch=3"}));
}

TEST(ArgParser, LastValueWinsAcrossBothSpellings) {
  common::ArgParser args("usage\n");
  args.add_option("batch");
  ASSERT_TRUE(parse_args(args, {"--batch", "8", "--batch=64"}));
  EXPECT_EQ(args.get_size("batch", 0), 64u);
}

}  // namespace
}  // namespace agebo
