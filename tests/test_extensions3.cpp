// Tests for the third extension wave: classification metrics, AdamW weight
// decay + gradient clipping, multi-fidelity surrogate evaluation, the
// BOHB-style successive-halving searcher, and the simulator trace export.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/sha_search.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "ml/metrics.hpp"
#include "nn/adam.hpp"

namespace agebo {
namespace {

/// JobSpec with just the gang width set (avoids designated initializers,
/// which -Wextra flags for the defaulted trailing members).
agebo::exec::JobSpec gang(std::size_t width) {
  agebo::exec::JobSpec spec;
  spec.width = width;
  return spec;
}

// --------------------------------------------------------------------------
// Metrics.

TEST(Metrics, ConfusionMatrixCountsAndAccuracy) {
  ml::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(Metrics, BalancedAccuracyIgnoresImbalance) {
  // Class 0: 90 correct of 100; class 1: 1 correct of 2.
  ml::ConfusionMatrix cm(2);
  for (int i = 0; i < 90; ++i) cm.add(0, 0);
  for (int i = 0; i < 10; ++i) cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_NEAR(cm.accuracy(), 91.0 / 102.0, 1e-12);
  EXPECT_NEAR(cm.balanced_accuracy(), 0.5 * (0.9 + 0.5), 1e-12);
}

TEST(Metrics, MacroF1KnownValue) {
  // Perfect on class 0 (2 samples), total miss on class 1 (1 sample -> 0).
  ml::ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  // class 0: precision 2/3, recall 1 -> F1 = 0.8; class 1: F1 = 0.
  EXPECT_NEAR(cm.macro_f1(), 0.4, 1e-12);
}

TEST(Metrics, UnsupportedClassSkipped) {
  ml::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  // Class 2 never appears (neither truth nor prediction): excluded.
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(Metrics, ConfusionMatrixRejectsBadInput) {
  EXPECT_THROW(ml::ConfusionMatrix(1), std::invalid_argument);
  ml::ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
  EXPECT_THROW(ml::confusion_matrix({0}, {0, 1}, 2), std::invalid_argument);
}

TEST(Metrics, LogLossPerfectAndUniform) {
  // Perfect prediction -> ~0; uniform over 4 classes -> ln(4).
  const std::vector<int> y = {1, 0};
  const std::vector<double> perfect = {0.0, 1.0, 1.0, 0.0};
  EXPECT_NEAR(ml::log_loss(y, perfect, 2), 0.0, 1e-9);
  const std::vector<int> y4 = {2};
  const std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(ml::log_loss(y4, uniform, 4), std::log(4.0), 1e-12);
  EXPECT_THROW(ml::log_loss(y, perfect, 3), std::invalid_argument);
}

// --------------------------------------------------------------------------
// AdamW / clipping.

TEST(AdamW, WeightDecayShrinksWeightsWithZeroGrad) {
  std::vector<float> w = {10.0f};
  std::vector<float> g = {0.0f};
  nn::AdamConfig cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.5;
  nn::Adam opt({nn::ParamRef{&w, &g}}, cfg);
  opt.step();
  // Decoupled decay: w -= lr * wd * w = 10 - 0.1*0.5*10 = 9.5.
  EXPECT_NEAR(w[0], 9.5f, 1e-5);
}

TEST(ClipGradients, ScalesDownLargeNorm) {
  std::vector<float> w = {0.0f, 0.0f};
  std::vector<float> g = {3.0f, 4.0f};  // norm 5
  std::vector<nn::ParamRef> params = {nn::ParamRef{&w, &g}};
  const double norm = nn::clip_gradients(params, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(g[0], 0.6f, 1e-5);
  EXPECT_NEAR(g[1], 0.8f, 1e-5);
}

TEST(ClipGradients, NoOpWhenWithinBound) {
  std::vector<float> w = {0.0f};
  std::vector<float> g = {0.5f};
  std::vector<nn::ParamRef> params = {nn::ParamRef{&w, &g}};
  nn::clip_gradients(params, 1.0);
  EXPECT_FLOAT_EQ(g[0], 0.5f);
  nn::clip_gradients(params, 0.0);  // disabled
  EXPECT_FLOAT_EQ(g[0], 0.5f);
}

// --------------------------------------------------------------------------
// Multi-fidelity surrogate.

TEST(Fidelity, LowerFidelityLowerAccuracyAndTime) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  Rng rng(3);
  eval::ModelConfig config{space.random(rng), eval::default_hparams(2)};

  const auto full = evaluator.evaluate({config, 1.0});
  const auto third = evaluator.evaluate({config, 1.0 / 3.0});
  EXPECT_DOUBLE_EQ(full.objective, evaluator.evaluate(config).objective);
  EXPECT_LT(third.objective, full.objective);
  EXPECT_NEAR(third.train_seconds, full.train_seconds / 3.0,
              full.train_seconds * 0.01);
}

TEST(Fidelity, DeterministicPerConfigAndFidelity) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::dionis_profile());
  Rng rng(4);
  eval::ModelConfig config{space.random(rng), eval::default_hparams(4)};
  const auto a = evaluator.evaluate({config, 0.5});
  const auto b = evaluator.evaluate({config, 0.5});
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Fidelity, RejectsOutOfRange) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  Rng rng(5);
  eval::ModelConfig config{space.random(rng), eval::default_hparams(1)};
  EXPECT_THROW(evaluator.evaluate({config, 0.0}), std::invalid_argument);
  EXPECT_THROW(evaluator.evaluate({config, 1.5}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// SHA joint search.

TEST(ShaJoint, RunsBracketsAndReportsFullFidelityIncumbents) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(32);
  core::ShaJointConfig cfg;
  cfg.bracket_size = 27;
  cfg.eta = 3;
  cfg.rungs = 3;
  cfg.wall_time_seconds = 120.0 * 60.0;
  cfg.seed = 6;
  core::ShaJointSearch sha(space, evaluator, executor, cfg);
  const auto result = sha.run();

  // Full-fidelity evaluations per bracket = 27 / 3 / 3 = 3.
  EXPECT_GT(result.history.size(), 3u);
  EXPECT_EQ(result.history.size() % 3, 0u);
  EXPECT_GT(result.best_objective, 0.7);
  for (const auto& rec : result.history) {
    EXPECT_LE(rec.finish_time, cfg.wall_time_seconds);
  }
}

TEST(ShaJoint, UtilizationBelowAsyncSearch) {
  // The rung barrier idles most of a wide machine.
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(64);
  core::ShaJointConfig cfg;
  cfg.bracket_size = 64;
  cfg.wall_time_seconds = 120.0 * 60.0;
  cfg.seed = 7;
  core::ShaJointSearch sha(space, evaluator, executor, cfg);
  const auto result = sha.run();
  EXPECT_LT(result.utilization.fraction(), 0.6);
}

TEST(ShaJoint, RejectsBadConfig) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(4);
  core::ShaJointConfig cfg;
  cfg.eta = 1;
  EXPECT_THROW(core::ShaJointSearch(space, evaluator, executor, cfg),
               std::invalid_argument);
  cfg = core::ShaJointConfig{};
  cfg.bracket_size = 0;
  EXPECT_THROW(core::ShaJointSearch(space, evaluator, executor, cfg),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Simulator trace export.

TEST(Trace, CsvContainsAllJobIntervals) {
  exec::SimulatedExecutor sim(2);
  sim.submit([] { return exec::EvalOutput{0.5, 10.0, false}; },
             exec::JobSpec{});
  sim.submit([] { return exec::EvalOutput{0.6, 20.0, false}; },
             gang(2));  // waits
  while (!sim.get_finished(true).empty()) {
  }
  std::stringstream ss;
  sim.write_trace_csv(ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "job_id,worker,start,finish");
  std::size_t rows = 0;
  while (std::getline(ss, line)) ++rows;
  // Job 1: one interval; job 2 (width 2): two intervals.
  EXPECT_EQ(rows, 3u);
}

}  // namespace
}  // namespace agebo
