// Int8 quantized serving tests (DESIGN.md §13).
//
// Covers the whole quantized stack bottom-up:
//   - quant math unit tests (act_quant_from_range, per-column weight
//     quantization, zero-point compensation, dequant scales),
//   - gemm_u8s8 naive-vs-SIMD differential, asserted *bitwise* per forced
//     ISA tier (the 7-bit activation grid makes every tier compute the
//     same integers — see kernels/gemm_s8.hpp), including accumulate mode
//     and prepacked weights,
//   - v3 artifact round trip: identical int8 logits after save/load,
//     v1/v2 artifacts still load and serve fp32,
//   - engine-level properties: run-to-run determinism, and int8 top-1
//     accuracy within 0.5 pt of fp32 on trained synthetic datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "nn/graph_net.hpp"
#include "nn/kernels/gemm_s8.hpp"
#include "nn/quant.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"
#include "serve/engine.hpp"

namespace agebo {
namespace {

using nn::kernels::Int8Isa;

std::vector<float> random_rows(std::size_t n, std::size_t d, Rng& rng,
                               float scale = 1.0f) {
  std::vector<float> rows(n * d);
  for (auto& v : rows) v = scale * static_cast<float>(rng.normal());
  return rows;
}

std::string temp_path(const char* stem) {
  return std::string(::testing::TempDir()) + stem;
}

// ---------------------------------------------------------------------------
// Quantization math.

TEST(QuantMath, ActQuantRangeWidensToIncludeZero) {
  // A strictly positive range must still map real 0.0 onto the grid.
  const auto q = nn::act_quant_from_range(0.5f, 4.0f);
  ASSERT_GT(q.scale, 0.0f);
  EXPECT_EQ(q.zero_point, 0);  // lo widened to 0 -> zp = 0
  // hi must be representable: (127 - zp) * scale >= hi.
  EXPECT_GE((127 - q.zero_point) * q.scale, 4.0f - 1e-4f);
}

TEST(QuantMath, ActQuantNegativeRangeHasInteriorZeroPoint) {
  const auto q = nn::act_quant_from_range(-2.0f, 2.0f);
  ASSERT_GT(q.scale, 0.0f);
  EXPECT_GT(q.zero_point, 0);
  EXPECT_LT(q.zero_point, 127);
  // Real 0.0 quantizes exactly to the zero point.
  EXPECT_EQ(nn::kernels::quantize_act(0.0f, 1.0f / q.scale, q.zero_point),
            static_cast<std::uint8_t>(q.zero_point));
}

TEST(QuantMath, ActQuantDegenerateRange) {
  const auto q = nn::act_quant_from_range(0.0f, 0.0f);
  ASSERT_GT(q.scale, 0.0f);  // never a zero divide downstream
  EXPECT_EQ(nn::kernels::quantize_act(0.0f, 1.0f / q.scale, q.zero_point),
            static_cast<std::uint8_t>(q.zero_point));
}

TEST(QuantMath, WeightQuantPerColumnRoundTrip) {
  Rng rng(21);
  const std::size_t rows = 13, cols = 5;
  std::vector<float> w(rows * cols);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  // Make column magnitudes wildly uneven: per-column scales must adapt.
  for (std::size_t i = 0; i < rows; ++i) w[i * cols + 2] *= 100.0f;

  nn::QuantLayer ql;
  nn::quantize_weights_per_col(w.data(), rows, cols, ql);
  ASSERT_EQ(ql.rows, rows);
  ASSERT_EQ(ql.cols, cols);
  ASSERT_EQ(ql.w_scales.size(), cols);
  ASSERT_EQ(ql.wq.size(), rows * cols);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) {
      const float orig = w[i * cols + j];
      const float deq = ql.wq[i * cols + j] * ql.w_scales[j];
      EXPECT_GE(ql.wq[i * cols + j], -127);
      EXPECT_LE(ql.wq[i * cols + j], 127);
      // Half-ULP of the per-column grid.
      EXPECT_NEAR(deq, orig, 0.5f * ql.w_scales[j] + 1e-7f)
          << "col " << j << " row " << i;
    }
  }
}

TEST(QuantMath, ZeroPointCompensationMatchesColumnSums) {
  nn::QuantLayer ql;
  ql.rows = 3;
  ql.cols = 2;
  ql.input.zero_point = 5;
  ql.input.scale = 0.25f;
  ql.w_scales = {0.5f, 2.0f};
  ql.wq = {1, -2, 3, 4, -5, 6};  // cols sums: {-1, 8}
  const auto comp = nn::zero_point_compensation(ql);
  ASSERT_EQ(comp.size(), 2u);
  EXPECT_EQ(comp[0], 5 * -1);
  EXPECT_EQ(comp[1], 5 * 8);
  const auto dq = nn::dequant_scales(ql);
  ASSERT_EQ(dq.size(), 2u);
  EXPECT_FLOAT_EQ(dq[0], 0.25f * 0.5f);
  EXPECT_FLOAT_EQ(dq[1], 0.25f * 2.0f);
}

// ---------------------------------------------------------------------------
// gemm_u8s8: naive-vs-SIMD differential, per dispatched ISA tier, bitwise.

struct QShape {
  std::size_t m, k, n;
};

// Tile-aligned and tail shapes, plus k > KC (1024) to cross the multi-
// K-block path (which stages into a s32 accumulator).
const QShape kQuantShapes[] = {
    {1, 1, 1},   {7, 33, 17},  {64, 96, 32},  {13, 160, 96},
    {5, 1, 9},   {2, 7, 1},    {61, 40, 5},   {96, 1100, 48},
    {33, 64, 33},
};

struct QProblem {
  std::size_t m, k, n;
  std::vector<float> a;
  std::vector<std::int8_t> wq;
  std::vector<float> dq, bias;
  std::vector<std::int32_t> comp;
  float inv_scale;
  std::int32_t zp;
};

QProblem make_problem(const QShape& s, Rng& rng) {
  QProblem p;
  p.m = s.m;
  p.k = s.k;
  p.n = s.n;
  p.a = random_rows(s.m, s.k, rng);
  p.wq.resize(s.k * s.n);
  for (auto& v : p.wq) {
    v = static_cast<std::int8_t>(static_cast<long>(rng() % 255) - 127);
  }
  p.dq.resize(s.n);
  p.bias.resize(s.n);
  for (std::size_t j = 0; j < s.n; ++j) {
    p.dq[j] = 0.001f + 0.01f * static_cast<float>(rng.uniform());
    p.bias[j] = static_cast<float>(rng.normal());
  }
  const auto aq = nn::act_quant_from_range(-3.0f, 3.0f);
  p.inv_scale = 1.0f / aq.scale;
  p.zp = aq.zero_point;
  // Honest compensation for the synthetic weights.
  p.comp.assign(s.n, 0);
  for (std::size_t kk = 0; kk < s.k; ++kk) {
    for (std::size_t j = 0; j < s.n; ++j) {
      p.comp[j] += p.zp * p.wq[kk * s.n + j];
    }
  }
  return p;
}

void run_differential(Int8Isa request) {
  nn::kernels::set_int8_isa(request);
  if (nn::kernels::active_int8_isa() != request) {
    nn::kernels::set_int8_isa(Int8Isa::kAuto);
    GTEST_SKIP() << "CPU cannot run tier "
                 << nn::kernels::to_string(request);
  }
  Rng rng(31);
  for (const auto& s : kQuantShapes) {
    for (const auto act :
         {nn::Activation::kIdentity, nn::Activation::kRelu}) {
      for (const bool with_bias : {true, false}) {
        QProblem p = make_problem(s, rng);
        nn::kernels::QuantEpilogue ep;
        ep.dq_scale = p.dq.data();
        ep.comp = p.comp.data();
        ep.bias = with_bias ? p.bias.data() : nullptr;
        ep.act = act;
        std::vector<float> want(p.m * p.n, -7.0f), got(p.m * p.n, 9.0f);
        nn::kernels::gemm_u8s8_naive(p.m, p.n, p.k, p.a.data(), p.k,
                                     p.inv_scale, p.zp, p.wq.data(), p.n,
                                     want.data(), p.n, ep);
        nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale,
                               p.zp, p.wq.data(), p.n, got.data(), p.n, ep);
        ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                 want.size() * sizeof(float)))
            << "tier " << nn::kernels::to_string(request) << " shape m="
            << s.m << " k=" << s.k << " n=" << s.n << " act "
            << static_cast<int>(act) << " bias " << with_bias;
      }
    }
  }
  nn::kernels::set_int8_isa(Int8Isa::kAuto);
}

TEST(QuantGemm, NaiveVsScalarBitwise) { run_differential(Int8Isa::kScalar); }
TEST(QuantGemm, NaiveVsAvx2Bitwise) { run_differential(Int8Isa::kAvx2); }
TEST(QuantGemm, NaiveVsVnniBitwise) { run_differential(Int8Isa::kVnni); }

TEST(QuantGemm, TiersAgreeBitwiseWithEachOther) {
  // Transitive check: whatever tiers this CPU has, they all produce the
  // same bytes on the same problem.
  Rng rng(37);
  QProblem p = make_problem({29, 200, 45}, rng);
  nn::kernels::QuantEpilogue ep;
  ep.dq_scale = p.dq.data();
  ep.comp = p.comp.data();
  ep.bias = p.bias.data();
  ep.act = nn::Activation::kRelu;
  std::vector<std::vector<float>> outs;
  for (const auto isa : {Int8Isa::kScalar, Int8Isa::kAvx2, Int8Isa::kVnni}) {
    nn::kernels::set_int8_isa(isa);
    if (nn::kernels::active_int8_isa() != isa) continue;
    std::vector<float> c(p.m * p.n);
    nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale, p.zp,
                           p.wq.data(), p.n, c.data(), p.n, ep);
    outs.push_back(std::move(c));
  }
  nn::kernels::set_int8_isa(Int8Isa::kAuto);
  ASSERT_GE(outs.size(), 1u);
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(outs[0].data(), outs[i].data(),
                             outs[0].size() * sizeof(float)));
  }
}

TEST(QuantGemm, AccumulateModeAddsOntoC) {
  Rng rng(41);
  QProblem p = make_problem({9, 48, 21}, rng);
  nn::kernels::QuantEpilogue ep;
  ep.dq_scale = p.dq.data();
  ep.comp = p.comp.data();
  ep.act = nn::Activation::kIdentity;

  std::vector<float> base(p.m * p.n);
  for (auto& v : base) v = static_cast<float>(rng.normal());

  std::vector<float> overwrite(p.m * p.n, 0.0f);
  nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale, p.zp,
                         p.wq.data(), p.n, overwrite.data(), p.n, ep);

  ep.accumulate = true;
  std::vector<float> acc = base;
  nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale, p.zp,
                         p.wq.data(), p.n, acc.data(), p.n, ep);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    // Same adds in the same order as base[i] + overwrite[i]: bitwise.
    const float want = base[i] + overwrite[i];
    ASSERT_EQ(0, std::memcmp(&want, &acc[i], sizeof(float))) << "at " << i;
  }

  // Accumulate differential vs naive too.
  std::vector<float> acc_naive = base;
  nn::kernels::gemm_u8s8_naive(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale,
                               p.zp, p.wq.data(), p.n, acc_naive.data(), p.n,
                               ep);
  ASSERT_EQ(0, std::memcmp(acc.data(), acc_naive.data(),
                           acc.size() * sizeof(float)));
}

TEST(QuantGemm, PrepackedWeightsMatchOnTheFlyPacking) {
  Rng rng(43);
  for (const auto& s : {QShape{17, 96, 40}, QShape{64, 1100, 33}}) {
    QProblem p = make_problem(s, rng);
    nn::kernels::QuantEpilogue ep;
    ep.dq_scale = p.dq.data();
    ep.comp = p.comp.data();
    ep.bias = p.bias.data();
    ep.act = nn::Activation::kRelu;
    std::vector<float> plain(p.m * p.n), packed_out(p.m * p.n);
    nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale, p.zp,
                           p.wq.data(), p.n, plain.data(), p.n, ep);
    const auto packed =
        nn::kernels::pack_weights_s8(p.wq.data(), p.n, p.k, p.n);
    EXPECT_FALSE(packed.empty());
    nn::kernels::gemm_u8s8(p.m, p.n, p.k, p.a.data(), p.k, p.inv_scale, p.zp,
                           p.wq.data(), p.n, packed_out.data(), p.n, ep,
                           &packed);
    ASSERT_EQ(0, std::memcmp(plain.data(), packed_out.data(),
                             plain.size() * sizeof(float)));
  }
}

// ---------------------------------------------------------------------------
// Artifact + engine.

nn::ModelArtifact trained_artifact(Rng& rng, bool with_skips) {
  nn::GraphSpec spec;
  spec.input_dim = 12;
  spec.output_dim = 4;
  nn::NodeSpec a, b, c;
  a.units = 24;
  b.units = 16;
  c.units = 24;
  if (with_skips) {
    b.skips = {0};       // projection from the input
    c.skips = {1};       // projection from node 1 (24 -> 24 widths differ? no:
                         // node1 is 24 wide, c is 24 -> identity edge)
    spec.output_skips = {2};
  }
  spec.nodes = {a, b, c};
  nn::GraphNet net(spec, rng);
  return nn::freeze_graphnet(net);
}

TEST(QuantArtifact, V3RoundTripGivesIdenticalInt8Logits) {
  Rng rng(51);
  for (const bool with_skips : {false, true}) {
    auto artifact = trained_artifact(rng, with_skips);
    const std::size_t n = 40, d = artifact.spec.input_dim;
    const auto calib = random_rows(n, d, rng);
    auto qart = serve::quantize_artifact(artifact, calib.data(), n);
    ASSERT_TRUE(qart.has_quant());

    std::ostringstream saved;
    nn::save_artifact(qart, saved);
    EXPECT_NE(saved.str().find("agebo-graphnet v3"), std::string::npos);
    std::istringstream is(saved.str());
    auto reloaded = nn::load_artifact(is);
    ASSERT_TRUE(reloaded.has_quant());
    ASSERT_EQ(reloaded.quant.size(), qart.quant.size());

    serve::InferenceEngine e1(qart, serve::EngineMode::kInt8);
    serve::InferenceEngine e2(std::move(reloaded), serve::EngineMode::kInt8);
    const std::size_t rows_n = 23;
    const auto rows = random_rows(rows_n, d, rng);
    std::vector<float> l1(rows_n * artifact.spec.output_dim);
    std::vector<float> l2(l1.size());
    e1.predict_logits(rows.data(), rows_n, l1.data());
    e2.predict_logits(rows.data(), rows_n, l2.data());
    ASSERT_EQ(0, std::memcmp(l1.data(), l2.data(), l1.size() * sizeof(float)))
        << "with_skips=" << with_skips;
  }
}

TEST(QuantArtifact, Fp32OnlyArtifactStaysV2) {
  Rng rng(52);
  auto artifact = trained_artifact(rng, false);
  std::ostringstream saved;
  nn::save_artifact(artifact, saved);
  EXPECT_NE(saved.str().find("agebo-graphnet v2"), std::string::npos);
  EXPECT_EQ(saved.str().find("quant"), std::string::npos);
  std::istringstream is(saved.str());
  auto reloaded = nn::load_artifact(is);
  EXPECT_FALSE(reloaded.has_quant());
  // Loads and serves fp32.
  serve::InferenceEngine engine(std::move(reloaded));
  const auto rows = random_rows(3, artifact.spec.input_dim, rng);
  std::vector<float> out(3 * artifact.spec.output_dim);
  engine.predict_batch(rows.data(), 3, out.data());
}

TEST(QuantArtifact, V1ArtifactStillLoadsAndServesFp32) {
  Rng rng(53);
  auto artifact = trained_artifact(rng, true);
  std::ostringstream saved;
  nn::save_artifact(artifact, saved);
  // Rewrite the v2 text as its v1 ancestor: v1 header, no meta section,
  // no trailing checksum line.
  std::istringstream in(saved.str());
  std::ostringstream v1;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      v1 << "agebo-graphnet v1\n";
      first = false;
      continue;
    }
    if (line.rfind("meta ", 0) == 0 || line.rfind("kv ", 0) == 0 ||
        line.rfind("checksum ", 0) == 0) {
      continue;
    }
    v1 << line << '\n';
  }
  std::istringstream is(v1.str());
  auto reloaded = nn::load_artifact(is);
  EXPECT_FALSE(reloaded.has_quant());
  serve::InferenceEngine engine(std::move(reloaded));

  // Same weights, same fp32 logits as an engine over the original.
  serve::InferenceEngine orig(artifact);
  const std::size_t n = 11;
  const auto rows = random_rows(n, artifact.spec.input_dim, rng);
  std::vector<float> l1(n * artifact.spec.output_dim), l2(l1.size());
  orig.predict_logits(rows.data(), n, l1.data());
  engine.predict_logits(rows.data(), n, l2.data());
  ASSERT_EQ(0, std::memcmp(l1.data(), l2.data(), l1.size() * sizeof(float)));
}

TEST(QuantEngine, Int8ModeRequiresQuantSection) {
  Rng rng(54);
  auto artifact = trained_artifact(rng, false);
  EXPECT_THROW(serve::InferenceEngine(artifact, serve::EngineMode::kInt8),
               std::runtime_error);
}

TEST(QuantEngine, Int8IsRunToRunDeterministic) {
  Rng rng(55);
  auto artifact = trained_artifact(rng, true);
  const std::size_t d = artifact.spec.input_dim;
  const auto calib = random_rows(64, d, rng);
  serve::InferenceEngine engine(
      serve::quantize_artifact(artifact, calib.data(), 64),
      serve::EngineMode::kInt8);
  EXPECT_EQ(engine.mode(), serve::EngineMode::kInt8);

  const std::size_t n = 130;  // crosses the M-split threading path
  const auto rows = random_rows(n, d, rng);
  std::vector<float> l1(n * artifact.spec.output_dim), l2(l1.size());
  engine.predict_logits(rows.data(), n, l1.data());
  engine.predict_logits(rows.data(), n, l2.data());
  ASSERT_EQ(0, std::memcmp(l1.data(), l2.data(), l1.size() * sizeof(float)));
}

TEST(QuantEngine, Int8TracksFp32Closely) {
  // Int8 logits are an approximation; on in-calibration inputs they must
  // stay close to fp32 in absolute terms.
  Rng rng(56);
  auto artifact = trained_artifact(rng, true);
  const std::size_t d = artifact.spec.input_dim;
  const auto calib = random_rows(128, d, rng);
  auto qart = serve::quantize_artifact(artifact, calib.data(), 128);
  serve::InferenceEngine fp32(qart);
  serve::InferenceEngine int8(qart, serve::EngineMode::kInt8);

  const std::size_t n = 50;
  const auto rows = random_rows(n, d, rng);
  std::vector<float> lf(n * artifact.spec.output_dim), lq(lf.size());
  fp32.predict_logits(rows.data(), n, lf.data());
  int8.predict_logits(rows.data(), n, lq.data());
  double max_abs = 0.0, max_val = 0.0;
  for (std::size_t i = 0; i < lf.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(double(lf[i]) - double(lq[i])));
    max_val = std::max(max_val, std::abs(double(lf[i])));
  }
  EXPECT_LT(max_abs, 0.05 * std::max(1.0, max_val))
      << "max |fp32 - int8| = " << max_abs << ", max |fp32| = " << max_val;
}

// ---------------------------------------------------------------------------
// End-to-end accuracy: int8 top-1 within 0.5 pt of fp32 on trained models.

double top1_accuracy(const serve::InferenceEngine& engine,
                     const data::Dataset& ds) {
  const std::size_t c = ds.n_classes;
  std::vector<float> logits(ds.n_rows * c);
  engine.predict_logits(ds.x.data(), ds.n_rows, logits.data());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const float* row = logits.data() + i * c;
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == ds.y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ds.n_rows);
}

void check_accuracy_delta(const data::SyntheticSpec& sspec,
                          bool with_skips) {
  const auto ds = data::make_classification(sspec);
  Rng split_rng(7);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  nn::GraphSpec gspec;
  gspec.input_dim = ds.n_features;
  gspec.output_dim = ds.n_classes;
  nn::NodeSpec n1, n2;
  n1.units = 32;
  n2.units = 24;
  if (with_skips) {
    n2.skips = {0};
    gspec.output_skips = {1};
  }
  gspec.nodes = {n1, n2};
  Rng net_rng(9);
  nn::GraphNet net(gspec, net_rng);
  nn::TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 64;
  cfg.lr = 0.01;
  nn::train(net, splits.train, splits.valid, cfg);

  auto artifact = nn::freeze_graphnet(net);
  const std::size_t calib = std::min<std::size_t>(256, splits.train.n_rows);
  auto qart =
      serve::quantize_artifact(artifact, splits.train.x.data(), calib);
  serve::InferenceEngine fp32(qart);
  serve::InferenceEngine int8(qart, serve::EngineMode::kInt8);

  const double acc_fp32 = top1_accuracy(fp32, splits.test);
  const double acc_int8 = top1_accuracy(int8, splits.test);
  EXPECT_LE((acc_fp32 - acc_int8) * 100.0, 0.5)
      << sspec.name << ": fp32 " << acc_fp32 << " vs int8 " << acc_int8;
  // Sanity: the model actually learned something worth preserving.
  EXPECT_GT(acc_fp32, 1.2 / ds.n_classes) << sspec.name;
}

TEST(QuantAccuracy, WithinHalfPointOfFp32OnEasyBlobs) {
  data::SyntheticSpec spec;
  spec.name = "easy-blobs";
  spec.n_rows = 1200;
  spec.n_features = 10;
  spec.n_classes = 3;
  spec.n_informative = 6;
  spec.class_sep = 2.0;
  spec.seed = 71;
  check_accuracy_delta(spec, /*with_skips=*/false);
}

TEST(QuantAccuracy, WithinHalfPointOfFp32OnHarderMix) {
  data::SyntheticSpec spec;
  spec.name = "harder-mix";
  spec.n_rows = 1500;
  spec.n_features = 16;
  spec.n_classes = 4;
  spec.n_informative = 8;
  spec.class_sep = 1.2;
  spec.label_noise = 0.02;
  spec.seed = 72;
  check_accuracy_delta(spec, /*with_skips=*/true);
}

}  // namespace
}  // namespace agebo
