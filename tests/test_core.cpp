// Unit tests for src/core: Algorithm 1 mechanics (population aging, parent
// selection, BO coupling), the paper's named variants, and the trajectory
// analysis helpers.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis.hpp"
#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"

namespace agebo::core {
namespace {

/// Evaluator with a transparent objective: accuracy = fraction of decisions
/// set to their max value; fixed 10-second duration. Lets tests verify the
/// evolutionary mechanics exactly.
class CountingEvaluator final : public eval::Evaluator {
 public:
  explicit CountingEvaluator(const nas::SearchSpace& space) : space_(&space) {}

  exec::EvalOutput evaluate(const eval::EvalRequest& request) override {
    const auto& genome = request.config.genome;
    double score = 0.0;
    for (std::size_t i = 0; i < genome.size(); ++i) {
      score += static_cast<double>(genome[i]) /
               static_cast<double>(space_->arity(i) - 1);
    }
    exec::EvalOutput out;
    out.objective = score / static_cast<double>(genome.size());
    out.train_seconds = 10.0;
    ++n_calls_;
    return out;
  }

  int n_calls() const { return n_calls_; }

 private:
  const nas::SearchSpace* space_;
  int n_calls_ = 0;
};

nas::SpaceConfig tiny_space_config() {
  nas::SpaceConfig cfg;
  cfg.n_variable_nodes = 4;
  cfg.max_skips = 2;
  return cfg;
}

SearchConfig tiny_age_config(std::uint64_t seed = 1) {
  SearchConfig cfg = age_config(1, seed);
  cfg.population_size = 10;
  cfg.sample_size = 3;
  cfg.wall_time_seconds = 600.0;  // 60 rounds of 10s evals
  return cfg;
}

TEST(AgeboSearch, RunsToWallTimeAndRecordsHistory) {
  nas::SearchSpace space(tiny_space_config());
  CountingEvaluator evaluator(space);
  exec::SimulatedExecutor executor(8);
  AgeboSearch search(space, evaluator, executor, tiny_age_config());
  const auto result = search.run();

  // 8 workers, 10s evals, 600s budget -> a few hundred evaluations.
  EXPECT_GT(result.history.size(), 100u);
  EXPECT_EQ(static_cast<int>(result.history.size() + executor.num_in_flight()),
            evaluator.n_calls());
  for (const auto& rec : result.history) {
    EXPECT_LE(rec.finish_time, 600.0);
    EXPECT_GE(rec.objective, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.best_objective, result.best().objective);
}

TEST(AgeboSearch, EvolutionImprovesOverRandom) {
  nas::SearchSpace space(tiny_space_config());
  CountingEvaluator evaluator(space);
  exec::SimulatedExecutor executor(8);
  AgeboSearch search(space, evaluator, executor, tiny_age_config(7));
  const auto result = search.run();

  // Mean objective of the last 30 evaluations must beat the first 30
  // (random phase) on this fully separable landscape.
  const auto& h = result.history;
  ASSERT_GT(h.size(), 80u);
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    early += h[i].objective;
    late += h[h.size() - 1 - i].objective;
  }
  EXPECT_GT(late, early + 1.0);  // sum over 30: clear improvement
}

TEST(AgeboSearch, FixedModeUsesGivenHparams) {
  nas::SearchSpace space(tiny_space_config());
  CountingEvaluator evaluator(space);
  exec::SimulatedExecutor executor(4);
  auto cfg = tiny_age_config();
  cfg.fixed_hparams = {64.0, 0.05, 2.0};
  cfg.wall_time_seconds = 100.0;
  AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  for (const auto& rec : result.history) {
    EXPECT_EQ(rec.config.hparams, (bo::Point{64.0, 0.05, 2.0}));
  }
}

TEST(AgeboSearch, BoModeProducesValidHparams) {
  nas::SearchSpace space(tiny_space_config());
  CountingEvaluator evaluator(space);
  exec::SimulatedExecutor executor(4);
  auto cfg = agebo_config(3);
  cfg.population_size = 10;
  cfg.sample_size = 3;
  cfg.wall_time_seconds = 300.0;
  AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  const auto hp_space = bo::ParamSpace::paper_space();
  for (const auto& rec : result.history) {
    EXPECT_NO_THROW(hp_space.validate(rec.config.hparams));
  }
}

TEST(AgeboSearch, DeterministicGivenSeed) {
  nas::SearchSpace space(tiny_space_config());
  auto run_once = [&] {
    CountingEvaluator evaluator(space);
    exec::SimulatedExecutor executor(4);
    auto cfg = tiny_age_config(11);
    cfg.wall_time_seconds = 200.0;
    AgeboSearch search(space, evaluator, executor, cfg);
    return search.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.genome, b.history[i].config.genome);
    EXPECT_DOUBLE_EQ(a.history[i].objective, b.history[i].objective);
  }
}

TEST(AgeboSearch, RejectsInvalidConfigs) {
  nas::SearchSpace space(tiny_space_config());
  CountingEvaluator evaluator(space);
  exec::SimulatedExecutor executor(2);

  SearchConfig cfg;
  cfg.population_size = 0;
  cfg.fixed_hparams = eval::default_hparams(1);
  EXPECT_THROW(AgeboSearch(space, evaluator, executor, cfg), std::invalid_argument);

  cfg = SearchConfig{};
  cfg.sample_size = 200;
  cfg.fixed_hparams = eval::default_hparams(1);
  EXPECT_THROW(AgeboSearch(space, evaluator, executor, cfg), std::invalid_argument);

  cfg = SearchConfig{};
  cfg.use_bo = true;  // no hp_space
  EXPECT_THROW(AgeboSearch(space, evaluator, executor, cfg), std::invalid_argument);

  cfg = SearchConfig{};  // fixed mode without fixed_hparams
  EXPECT_THROW(AgeboSearch(space, evaluator, executor, cfg), std::invalid_argument);
}

TEST(Variants, PaperDefaultsMatchSectionFour) {
  const auto cfg = paper_defaults();
  EXPECT_EQ(cfg.population_size, 100u);
  EXPECT_EQ(cfg.sample_size, 10u);
  EXPECT_DOUBLE_EQ(cfg.wall_time_seconds, 180.0 * 60.0);
  EXPECT_DOUBLE_EQ(cfg.bo.kappa, 0.001);
}

TEST(Variants, AgeConfigFixesScaledDefaults) {
  const auto cfg = age_config(4);
  EXPECT_FALSE(cfg.use_bo);
  EXPECT_EQ(cfg.fixed_hparams, (bo::Point{256.0, 0.01, 4.0}));
  EXPECT_EQ(variant_name(cfg), "AgE-4");
}

TEST(Variants, PartialVariantsFreezeDimensions) {
  const auto lr_only = agebo_8_lr_config();
  EXPECT_TRUE(lr_only.use_bo);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto p = lr_only.hp_space.sample(rng);
    EXPECT_DOUBLE_EQ(p[0], 256.0);
    EXPECT_DOUBLE_EQ(p[2], 8.0);
  }
  const auto lr_bs = agebo_8_lr_bs_config();
  std::set<double> batch_sizes;
  for (int i = 0; i < 50; ++i) {
    batch_sizes.insert(lr_bs.hp_space.sample(rng)[0]);
  }
  EXPECT_GT(batch_sizes.size(), 2u);  // bs really varies
}

TEST(Variants, AgeboNameAndKappa) {
  const auto cfg = agebo_config(1, 19.6);
  EXPECT_EQ(variant_name(cfg), "AgEBO");
  EXPECT_DOUBLE_EQ(cfg.bo.kappa, 19.6);
}

SearchResult synthetic_result() {
  SearchResult r;
  const auto add = [&r](double t, double obj, int tag) {
    EvalRecord rec;
    rec.index = r.history.size();
    rec.finish_time = t;
    rec.objective = obj;
    rec.train_seconds = 5.0;
    rec.config.genome = nas::Genome(8, tag);
    r.history.push_back(rec);
  };
  add(10, 0.5, 0);
  add(20, 0.8, 1);
  add(30, 0.7, 2);
  add(40, 0.9, 3);
  add(50, 0.9, 3);  // duplicate genome
  add(60, 0.85, 4);
  r.best_index = 3;
  r.best_objective = 0.9;
  return r;
}

TEST(Analysis, BestSoFarIsMonotone) {
  const auto r = synthetic_result();
  const auto series = best_so_far(r);
  ASSERT_EQ(series.size(), 3u);  // 0.5 -> 0.8 -> 0.9
  EXPECT_DOUBLE_EQ(series[0].value, 0.5);
  EXPECT_DOUBLE_EQ(series[1].value, 0.8);
  EXPECT_DOUBLE_EQ(series[2].value, 0.9);
  EXPECT_DOUBLE_EQ(series[2].time_seconds, 40.0);
}

TEST(Analysis, BestAtTimeInterpolatesHistory) {
  const auto r = synthetic_result();
  EXPECT_DOUBLE_EQ(best_at_time(r, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(best_at_time(r, 25.0), 0.8);
  EXPECT_DOUBLE_EQ(best_at_time(r, 100.0), 0.9);
}

TEST(Analysis, TimeToAccuracy) {
  const auto r = synthetic_result();
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.8), 20.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.9), 40.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.99), -1.0);
}

TEST(Analysis, UniqueHighPerformersDeduplicates) {
  const auto r = synthetic_result();
  const auto series = unique_high_performers(r, 0.75);
  // Above 0.75: records at t=20 (0.8), 40 (0.9), 50 (dup genome), 60 (0.85).
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.back().value, 3.0);
  EXPECT_DOUBLE_EQ(series.back().time_seconds, 60.0);
}

TEST(Analysis, ThresholdIsMinOfQuantiles) {
  const auto a = synthetic_result();
  SearchResult b = synthetic_result();
  for (auto& rec : b.history) rec.objective -= 0.3;
  const double threshold = high_performer_threshold({&a, &b});
  // b's 0.99-quantile is lower, so it sets the threshold.
  EXPECT_LT(threshold, 0.61);
  EXPECT_GT(threshold, 0.3);
}

TEST(Analysis, TopKOrdersByObjective) {
  const auto r = synthetic_result();
  const auto top = top_k(r, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(r.history[top[0]].objective, 0.9);
  EXPECT_DOUBLE_EQ(r.history[2].objective, 0.7);
  EXPECT_DOUBLE_EQ(r.history[top[2]].objective, 0.85);
}

TEST(Analysis, RunStatsAggregates) {
  const auto r = synthetic_result();
  const auto stats = run_stats(r);
  EXPECT_EQ(stats.n_evaluations, 6u);
  EXPECT_NEAR(stats.mean_train_minutes, 5.0 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.best_accuracy, 0.9);
}

TEST(Replacement, WorstPolicyKeepsBestMembers) {
  // With remove-worst replacement and a separable landscape, the search
  // should do at least as well as aging on the same budget.
  nas::SearchSpace space(tiny_space_config());
  auto run_policy = [&](Replacement policy) {
    CountingEvaluator evaluator(space);
    exec::SimulatedExecutor executor(8);
    auto cfg = tiny_age_config(21);
    cfg.replacement = policy;
    AgeboSearch search(space, evaluator, executor, cfg);
    return search.run().best_objective;
  };
  const double aging = run_policy(Replacement::kAging);
  const double worst = run_policy(Replacement::kWorst);
  EXPECT_GT(aging, 0.6);
  EXPECT_GT(worst, 0.6);
}

// load_history must reject malformed and truncated rows with an explicit
// error naming the line — a silently skipped row would warm-start the next
// campaign from a corrupted prior.
constexpr const char* kHistHeader =
    "index,finish_time,objective,train_seconds,failed,attempts,bs1,lr1,n,"
    "genome";

TEST(HistoryIo, RejectsTruncatedRow) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) + "\n0,100,0.9,50\n");
  try {
    load_history(ss, space);
    FAIL() << "expected truncated-row error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(HistoryIo, RejectsNonNumericCell) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) +
                       "\n0,100,accuracy,50,0,1,256,0.01,128,0-0-0-0\n");
  EXPECT_THROW(load_history(ss, space), std::runtime_error);
}

TEST(HistoryIo, RejectsPartialHyperparameterColumns) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) +
                       "\n0,100,0.9,50,0,1,256,,128,0-0-0-0\n");
  EXPECT_THROW(load_history(ss, space), std::runtime_error);
}

TEST(HistoryIo, RejectsBadGenomeToken) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) +
                       "\n0,100,0.9,50,0,1,256,0.01,128,0-x-0\n");
  EXPECT_THROW(load_history(ss, space), std::runtime_error);
}

TEST(HistoryIo, RejectsTrailingCells) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) +
                       "\n0,100,0.9,50,0,1,256,0.01,128,0-0-0-0,extra\n");
  EXPECT_THROW(load_history(ss, space), std::runtime_error);
}

TEST(HistoryIo, RejectsOutOfRangeGenome) {
  nas::SearchSpace space;
  std::stringstream ss(std::string(kHistHeader) +
                       "\n0,100,0.9,50,0,1,256,0.01,128,999999\n");
  EXPECT_THROW(load_history(ss, space), std::runtime_error);
}

}  // namespace
}  // namespace agebo::core
