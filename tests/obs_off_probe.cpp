// Compiled with AGEBO_OBS_DISABLED=1 (see tests/CMakeLists.txt) while the
// rest of the test binary builds with observability on — a compile-and-link
// check that the OFF configuration still builds against the same headers,
// and a runtime check that OBS_SPAN's argument expressions are never
// evaluated and add_flops records nothing.
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"

#ifndef AGEBO_OBS_DISABLED
#error "obs_off_probe.cpp must be compiled with AGEBO_OBS_DISABLED"
#endif

namespace agebo::obs {

int off_probe_run() {
  int evaluated = 0;
  {
    // The macro must compile to nothing: the assignment inside the span
    // argument list would set `evaluated` if the expression ran.
    OBS_SPAN("off.probe",
             {{"key", (evaluated = 1, std::string("value"))}});
    add_flops(1ull << 40);  // inline no-op in this TU
  }
  return evaluated;
}

}  // namespace agebo::obs
