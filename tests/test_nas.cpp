// Unit tests for src/nas: search-space structure (the paper's 37-decision
// space), genome sampling/mutation, decoding to GraphSpec, and encodings.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"

namespace agebo::nas {
namespace {

TEST(SearchSpace, PaperDefaultsHave37Decisions) {
  SearchSpace space;
  EXPECT_EQ(space.n_decisions(), 37u);
  EXPECT_EQ(space.n_variable_nodes(), 10u);
  EXPECT_EQ(space.n_ops(), 31u);  // 6 units x 5 activations + identity
}

TEST(SearchSpace, ArityLayoutMatchesPaper) {
  // 10 op decisions of arity 31, 27 skip decisions of arity 2.
  SearchSpace space;
  std::size_t ops = 0;
  std::size_t skips = 0;
  for (std::size_t i = 0; i < space.n_decisions(); ++i) {
    if (space.arity(i) == 31) {
      ++ops;
    } else if (space.arity(i) == 2) {
      ++skips;
    } else {
      FAIL() << "unexpected arity " << space.arity(i);
    }
  }
  EXPECT_EQ(ops, 10u);
  EXPECT_EQ(skips, 27u);
}

TEST(SearchSpace, SizeMatchesPaperFormula) {
  // |H_a| = 31^10 * 2^27 ~ 1.1e23.
  SearchSpace space;
  EXPECT_NEAR(space.log10_size(), 10.0 * std::log10(31.0) + 27.0 * std::log10(2.0),
              1e-9);
  EXPECT_NEAR(space.log10_size(), 23.04, 0.05);
}

TEST(SearchSpace, RandomGenomesValidAndDiverse) {
  SearchSpace space;
  Rng rng(1);
  std::set<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    const auto g = space.random(rng);
    EXPECT_NO_THROW(space.validate(g));
    keys.insert(SearchSpace::key(g));
  }
  EXPECT_EQ(keys.size(), 50u);  // collisions in 1e23 space are a bug
}

TEST(SearchSpace, MutationChangesExactlyOneDecision) {
  SearchSpace space;
  Rng rng(2);
  const auto parent = space.random(rng);
  for (int trial = 0; trial < 50; ++trial) {
    const auto child = space.mutate(parent, rng);
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < parent.size(); ++i) {
      if (parent[i] != child[i]) {
        ++diffs;
        // The new value must differ (resampled excluding current).
        EXPECT_NE(child[i], parent[i]);
        EXPECT_LT(static_cast<std::size_t>(child[i]), space.arity(i));
      }
    }
    EXPECT_EQ(diffs, 1u);
  }
}

TEST(SearchSpace, MutationRejectsInvalidParent) {
  SearchSpace space;
  Rng rng(3);
  Genome bad(37, 99);
  EXPECT_THROW(space.mutate(bad, rng), std::invalid_argument);
  Genome short_genome(5, 0);
  EXPECT_THROW(space.mutate(short_genome, rng), std::invalid_argument);
}

TEST(SearchSpace, DecodeIdentityOp) {
  SearchSpace space;
  Genome g(37, 0);  // all identity ops, no skips
  const auto spec = space.to_graph_spec(g, 54, 7);
  EXPECT_EQ(spec.nodes.size(), 10u);
  for (const auto& node : spec.nodes) {
    EXPECT_TRUE(node.is_identity);
    EXPECT_TRUE(node.skips.empty());
  }
  EXPECT_TRUE(spec.output_skips.empty());
  EXPECT_EQ(spec.input_dim, 54u);
  EXPECT_EQ(spec.output_dim, 7u);
}

TEST(SearchSpace, DecodeOpTable) {
  // Op 1 = units[0]=16, act[0]=identity; op 2 = 16/swish; op 6 = 32/identity.
  SearchSpace space;
  Genome g(37, 0);
  g[0] = 1;
  auto spec = space.to_graph_spec(g, 10, 2);
  EXPECT_FALSE(spec.nodes[0].is_identity);
  EXPECT_EQ(spec.nodes[0].units, 16u);
  EXPECT_EQ(spec.nodes[0].act, nn::Activation::kIdentity);

  g[0] = 2;
  spec = space.to_graph_spec(g, 10, 2);
  EXPECT_EQ(spec.nodes[0].act, nn::Activation::kSwish);

  g[0] = 6;
  spec = space.to_graph_spec(g, 10, 2);
  EXPECT_EQ(spec.nodes[0].units, 32u);
  EXPECT_EQ(spec.nodes[0].act, nn::Activation::kIdentity);

  g[0] = 30;  // last op: units 96, sigmoid
  spec = space.to_graph_spec(g, 10, 2);
  EXPECT_EQ(spec.nodes[0].units, 96u);
  EXPECT_EQ(spec.nodes[0].act, nn::Activation::kSigmoid);
}

TEST(SearchSpace, SkipSlotsTargetNonConsecutivePredecessors) {
  // Variable node 2's only skip slot connects to node 0 (the input);
  // node 4's slots connect to nodes 2, 1, 0 (nearest first).
  SearchSpace space;
  Genome g(37, 0);
  // Decision layout: [op1][op2 sc][op3 sc sc][op4 sc sc sc]...
  g[2] = 1;  // node 2's single skip
  g[6] = 1;  // node 4's first skip slot (decision after op4 at index... )
  const auto spec = space.to_graph_spec(g, 10, 2);
  EXPECT_EQ(spec.nodes[1].skips, (std::vector<std::size_t>{0}));
  // Index math: op1=0, op2=1, sc=2, op3=3, sc=4, sc=5, op4=6 -> g[6] is
  // op4 itself, not a skip. Fix: set op4's first skip at index 7.
  Genome g2(37, 0);
  g2[7] = 1;
  const auto spec2 = space.to_graph_spec(g2, 10, 2);
  EXPECT_EQ(spec2.nodes[3].skips, (std::vector<std::size_t>{2}));
  Genome g3(37, 0);
  g3[9] = 1;  // op4's third slot -> node 0
  const auto spec3 = space.to_graph_spec(g3, 10, 2);
  EXPECT_EQ(spec3.nodes[3].skips, (std::vector<std::size_t>{0}));
}

TEST(SearchSpace, OutputSkipsDecoded) {
  SearchSpace space;
  Genome g(37, 0);
  g[34] = 1;  // first output skip -> N9
  g[36] = 1;  // third output skip -> N7
  const auto spec = space.to_graph_spec(g, 10, 2);
  EXPECT_EQ(spec.output_skips, (std::vector<std::size_t>{9, 7}));
}

TEST(SearchSpace, DecodedSpecsBuildValidNetworks) {
  SearchSpace space;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto g = space.random(rng);
    const auto spec = space.to_graph_spec(g, 54, 7);
    EXPECT_NO_THROW(spec.validate());
    Rng net_rng(5);
    nn::GraphNet net(spec, net_rng);
    nn::Tensor x(3, 54);
    for (auto& v : x.v) v = 0.1f;
    const auto& logits = net.forward(x);
    EXPECT_EQ(logits.cols, 7u);
    for (float v : logits.v) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SearchSpace, OneHotEncoding) {
  SearchSpace space;
  Rng rng(6);
  const auto g = space.random(rng);
  const auto oh = space.one_hot(g);
  EXPECT_EQ(oh.size(), space.one_hot_dim());
  EXPECT_EQ(oh.size(), 10u * 31u + 27u * 2u);
  double sum = 0.0;
  for (double v : oh) sum += v;
  EXPECT_DOUBLE_EQ(sum, 37.0);  // one hot bit per decision
}

TEST(SearchSpace, KeyIsStableAndDistinct) {
  SearchSpace space;
  Rng rng(7);
  const auto a = space.random(rng);
  const auto b = space.random(rng);
  EXPECT_EQ(SearchSpace::key(a), SearchSpace::key(a));
  EXPECT_NE(SearchSpace::key(a), SearchSpace::key(b));
}

TEST(SearchSpace, CustomConfigSmallerSpace) {
  SpaceConfig cfg;
  cfg.n_variable_nodes = 3;
  cfg.max_skips = 2;
  SearchSpace space(cfg);
  // ops: 3; skips: node2 -> 1, node3 -> 2, output -> min(2,3)=2. Total 8.
  EXPECT_EQ(space.n_decisions(), 3u + 1u + 2u + 2u);
}

TEST(SearchSpace, ZeroSkipConfig) {
  SpaceConfig cfg;
  cfg.n_variable_nodes = 4;
  cfg.max_skips = 0;
  SearchSpace space(cfg);
  EXPECT_EQ(space.n_decisions(), 4u);
}

TEST(SearchSpace, DescribeContainsNodes) {
  SearchSpace space;
  Rng rng(8);
  const auto g = space.random(rng);
  const auto desc = space.describe(g);
  EXPECT_NE(desc.find("N1:"), std::string::npos);
  EXPECT_NE(desc.find("N10:"), std::string::npos);
  EXPECT_NE(desc.find("Out:"), std::string::npos);
}

TEST(SearchSpace, RejectsDegenerateConfigs) {
  SpaceConfig cfg;
  cfg.n_variable_nodes = 0;
  EXPECT_THROW(SearchSpace{cfg}, std::invalid_argument);
  cfg = SpaceConfig{};
  cfg.units.clear();
  EXPECT_THROW(SearchSpace{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace agebo::nas
