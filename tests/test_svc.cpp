// Campaign-service tests (DESIGN.md §14): checkpoint framing, manifest
// parsing, pump/run equivalence, crash-mid-campaign exact resume, and the
// fair-share + quota admission properties.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/search.hpp"
#include "core/sha_search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "svc/checkpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/registry.hpp"

namespace {

using namespace agebo;

std::string tmp_path(const std::string& stem) {
  return std::string(::testing::TempDir()) + stem;
}

svc::CampaignSpec agebo_spec(const std::string& name, const std::string& tenant,
                             std::uint64_t seed, double minutes) {
  svc::CampaignSpec spec;
  spec.name = name;
  spec.tenant = tenant;
  spec.kind = svc::CampaignKind::kAgebo;
  spec.dataset = "covertype";
  spec.variant = "agebo";
  spec.wall_time_seconds = minutes * 60.0;
  spec.seed = seed;
  return spec;
}

void expect_same_history(const std::vector<core::EvalRecord>& a,
                         const std::vector<core::EvalRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "record " << i;
    EXPECT_EQ(a[i].objective, b[i].objective) << "record " << i;
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << "record " << i;
    EXPECT_EQ(a[i].train_seconds, b[i].train_seconds) << "record " << i;
    EXPECT_EQ(a[i].failed, b[i].failed) << "record " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "record " << i;
    EXPECT_EQ(a[i].degraded, b[i].degraded) << "record " << i;
    EXPECT_EQ(a[i].final_world, b[i].final_world) << "record " << i;
    EXPECT_EQ(a[i].config.genome, b[i].config.genome) << "record " << i;
    EXPECT_EQ(a[i].config.hparams, b[i].config.hparams) << "record " << i;
  }
}

// --- Checkpoint framing ---------------------------------------------------

TEST(SvcCheckpoint, ChecksumRoundTrip) {
  const std::string payload = "agebo-svc-ckpt v1\nworkers 4 live 0\n";
  const std::string framed = svc::with_checksum(payload);
  EXPECT_EQ(svc::verify_checksum(framed, "test"), payload);
}

TEST(SvcCheckpoint, DetectsCorruption) {
  std::string framed = svc::with_checksum("clock 123.5\nnext-id 7\n");
  framed[6] = '9';  // flip one payload byte
  EXPECT_THROW(svc::verify_checksum(framed, "test"), std::runtime_error);
}

TEST(SvcCheckpoint, DetectsTruncation) {
  const std::string framed = svc::with_checksum("clock 123.5\nnext-id 7\n");
  // A partially written file loses the trailing checksum line.
  const std::string truncated = framed.substr(0, framed.size() / 2);
  EXPECT_THROW(svc::verify_checksum(truncated, "test"), std::runtime_error);
}

TEST(SvcCheckpoint, AtomicWriteReadRoundTrip) {
  const std::string path = tmp_path("svc_ckpt_roundtrip.txt");
  svc::atomic_write_file(path, "hello checkpoint\n");
  EXPECT_EQ(svc::read_file(path), "hello checkpoint\n");
  std::remove(path.c_str());
}

// --- Manifest parsing -----------------------------------------------------

TEST(SvcManifest, ParsesTenantsAndCampaigns) {
  std::istringstream is(
      "# comment line\n"
      "tenant prod priority=3 max-in-flight=8 node-hours=2\n"
      "tenant lab\n"
      "\n"
      "campaign a tenant=prod kind=agebo dataset=covertype variant=agebo "
      "minutes=45 seed=7 kappa=0.01 timeout=1800 retries=2\n"
      "campaign b tenant=lab kind=sha bracket=16 eta=4 rungs=2 minutes=30\n");
  const svc::Manifest m = svc::parse_manifest(is, "inline");
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants[0].name, "prod");
  EXPECT_EQ(m.tenants[0].priority, 3.0);
  EXPECT_EQ(m.tenants[0].max_in_flight, 8u);
  EXPECT_EQ(m.tenants[0].node_seconds_budget, 2.0 * 3600.0);
  EXPECT_EQ(m.tenants[1].priority, 1.0);
  ASSERT_EQ(m.campaigns.size(), 2u);
  EXPECT_EQ(m.campaigns[0].name, "a");
  EXPECT_EQ(m.campaigns[0].variant, "agebo");
  EXPECT_EQ(m.campaigns[0].wall_time_seconds, 45.0 * 60.0);
  EXPECT_EQ(m.campaigns[0].seed, 7u);
  EXPECT_EQ(m.campaigns[0].kappa, 0.01);
  EXPECT_EQ(m.campaigns[0].timeout_seconds, 1800.0);
  EXPECT_EQ(m.campaigns[0].max_retries, 2u);
  EXPECT_EQ(m.campaigns[1].kind, svc::CampaignKind::kSha);
  EXPECT_EQ(m.campaigns[1].sha_bracket, 16u);
  EXPECT_EQ(m.campaigns[1].sha_eta, 4u);
  EXPECT_EQ(m.campaigns[1].sha_rungs, 2u);
}

TEST(SvcManifest, ParsesElasticKeys) {
  std::istringstream is(
      "tenant prod\n"
      "campaign a tenant=prod minutes=30 "
      "elastic-crash=0.05 elastic-seed=42 elastic-min-replicas=2\n");
  const svc::Manifest m = svc::parse_manifest(is, "inline");
  ASSERT_EQ(m.campaigns.size(), 1u);
  EXPECT_EQ(m.campaigns[0].elastic_crash, 0.05);
  EXPECT_EQ(m.campaigns[0].elastic_seed, 42u);
  EXPECT_EQ(m.campaigns[0].elastic_min_replicas, 2u);
}

TEST(SvcManifest, RejectsElasticCrashOutOfRange) {
  std::istringstream is(
      "tenant prod\n"
      "campaign a tenant=prod minutes=30 elastic-crash=1.0\n");
  EXPECT_THROW(svc::parse_manifest(is, "inline"), std::runtime_error);
}

TEST(SvcManifest, ErrorsNameTheLine) {
  std::istringstream is(
      "tenant prod\n"
      "campaign a tenant=prod minutes=nope\n");
  try {
    svc::parse_manifest(is, "bad.txt");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad.txt:2"), std::string::npos)
        << e.what();
  }
}

TEST(SvcManifest, RejectsMalformedInput) {
  const char* cases[] = {
      "frobnicate x\n",                               // unknown directive
      "tenant prod priority=0\n",                     // non-positive priority
      "tenant prod\ntenant prod\n",                   // duplicate tenant
      "tenant prod\ncampaign a tenant=prod kind=x\n", // bad kind
      "tenant prod\ncampaign a tenant=prod nope=1\n", // unknown key
      "tenant prod\ncampaign a minutes=5\n",          // missing tenant=
      "tenant prod\ncampaign a tenant=ghost\n",       // undeclared tenant
      "tenant prod\n",                                // no campaigns
      "tenant prod\ncampaign a tenant=prod\n"
      "campaign a tenant=prod\n",                     // duplicate campaign
  };
  for (const char* text : cases) {
    std::istringstream is(text);
    EXPECT_THROW(svc::parse_manifest(is, "case"), std::runtime_error) << text;
  }
}

// --- Pump / run equivalence ----------------------------------------------

TEST(SvcPump, AgeboRegistryMatchesOwningRun) {
  // Owning mode: the searcher drives its own executor.
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(16, 90.0, {}, {});
  core::SearchConfig cfg = core::config_by_name("agebo", 9, 0.001);
  cfg.wall_time_seconds = 30.0 * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto owning = search.run();

  // Service mode: the registry admits the same campaign's tickets onto a
  // shared executor with identical parameters.
  svc::SvcConfig svc_cfg;
  svc_cfg.workers = 16;
  svc_cfg.job_overhead_seconds = 90.0;
  svc::CampaignRegistry registry(svc_cfg, space);
  registry.add_campaign(agebo_spec("solo", "default", 9, 30.0));
  EXPECT_TRUE(registry.run());

  expect_same_history(owning.history, registry.campaign(0).history());
}

TEST(SvcPump, ShaRegistryMatchesOwningRun) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(8, 90.0, {}, {});
  core::ShaJointConfig cfg;
  cfg.bracket_size = 8;
  cfg.eta = 2;
  cfg.rungs = 2;
  cfg.wall_time_seconds = 30.0 * 60.0;
  cfg.seed = 3;
  core::ShaJointSearch search(space, evaluator, executor, cfg);
  const auto owning = search.run();

  svc::SvcConfig svc_cfg;
  svc_cfg.workers = 8;
  svc_cfg.job_overhead_seconds = 90.0;
  svc::CampaignRegistry registry(svc_cfg, space);
  svc::CampaignSpec spec;
  spec.name = "sha";
  spec.tenant = "default";
  spec.kind = svc::CampaignKind::kSha;
  spec.dataset = "covertype";
  spec.wall_time_seconds = 30.0 * 60.0;
  spec.seed = 3;
  spec.sha_bracket = 8;
  spec.sha_eta = 2;
  spec.sha_rungs = 2;
  registry.add_campaign(spec);
  EXPECT_TRUE(registry.run());

  expect_same_history(owning.history, registry.campaign(0).history());
}

// --- Crash + resume -------------------------------------------------------

// The acceptance gate: kill a faulty multi-campaign service mid-search,
// resume from its checkpoint, and the final per-campaign trajectories must
// be IDENTICAL to an uninterrupted run — not merely similar.
TEST(SvcResume, KilledServiceReproducesUninterruptedRun) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 16;
  cfg.job_overhead_seconds = 90.0;
  cfg.faults.crash_prob = 0.05;
  cfg.faults.seed = 4242;

  auto add_campaigns = [](svc::CampaignRegistry& r) {
    auto a = agebo_spec("alpha", "default", 5, 45.0);
    a.max_retries = 1;
    r.add_campaign(a);
    svc::CampaignSpec b;
    b.name = "beta";
    b.tenant = "default";
    b.kind = svc::CampaignKind::kSha;
    b.dataset = "covertype";
    b.wall_time_seconds = 45.0 * 60.0;
    b.seed = 11;
    b.sha_bracket = 8;
    b.sha_eta = 2;
    b.sha_rungs = 2;
    r.add_campaign(b);
  };

  // Uninterrupted reference.
  svc::CampaignRegistry uninterrupted(cfg, space);
  add_campaigns(uninterrupted);
  EXPECT_TRUE(uninterrupted.run());

  // Killed at t=1200s, mid-flight, then resumed in a fresh registry.
  const std::string ckpt = tmp_path("svc_resume_test.ckpt");
  svc::SvcConfig kill_cfg = cfg;
  kill_cfg.checkpoint_path = ckpt;
  svc::CampaignRegistry killed(kill_cfg, space);
  add_campaigns(killed);
  EXPECT_FALSE(killed.run(/*stop_after_seconds=*/1200.0));

  svc::CampaignRegistry resumed(kill_cfg, space);
  resumed.load_checkpoint(ckpt);
  EXPECT_TRUE(resumed.run());

  ASSERT_EQ(resumed.n_campaigns(), 2u);
  expect_same_history(uninterrupted.campaign(0).history(),
                      resumed.campaign(0).history());
  expect_same_history(uninterrupted.campaign(1).history(),
                      resumed.campaign(1).history());
  EXPECT_EQ(uninterrupted.campaign(0).result().best_objective,
            resumed.campaign(0).result().best_objective);
  std::remove(ckpt.c_str());
}

TEST(SvcResume, RejectsCorruptedCheckpoint) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  svc::CampaignRegistry registry(cfg, space);
  registry.add_campaign(agebo_spec("solo", "default", 2, 20.0));
  registry.run(/*stop_after_seconds=*/600.0);
  const std::string ckpt = tmp_path("svc_corrupt_test.ckpt");
  registry.save_checkpoint(ckpt);

  std::string bytes = svc::read_file(ckpt);
  bytes[bytes.size() / 3] ^= 0x20;
  svc::atomic_write_file(ckpt, bytes);

  svc::CampaignRegistry fresh(cfg, space);
  EXPECT_THROW(fresh.load_checkpoint(ckpt), std::runtime_error);
  std::remove(ckpt.c_str());
}

// Torn-write fuzz: whatever prefix of a checkpoint survives a crash mid
// write, load_checkpoint must reject it with a clean error — never load
// partial state, read past the buffer, or crash (ASan covers the latter in
// CI's svc job). Truncate at every 64-byte boundary, including byte 0.
TEST(SvcResume, TruncatedCheckpointAlwaysFailsCleanly) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  svc::CampaignRegistry registry(cfg, space);
  auto spec = agebo_spec("solo", "default", 2, 20.0);
  spec.elastic_crash = 0.02;  // exercise the optional elastic spec line too
  spec.elastic_seed = 5;
  registry.add_campaign(spec);
  registry.run(/*stop_after_seconds=*/600.0);
  const std::string ckpt = tmp_path("svc_torn_test.ckpt");
  registry.save_checkpoint(ckpt);
  const std::string bytes = svc::read_file(ckpt);
  ASSERT_GT(bytes.size(), 64u);

  for (std::size_t cut = 0; cut < bytes.size(); cut += 64) {
    svc::atomic_write_file(ckpt, bytes.substr(0, cut));
    svc::CampaignRegistry fresh(cfg, space);
    EXPECT_THROW(fresh.load_checkpoint(ckpt), std::runtime_error)
        << "checkpoint truncated at byte " << cut << " loaded successfully";
  }
  std::remove(ckpt.c_str());
}

TEST(SvcResume, RejectsWorkerCountMismatch) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  svc::CampaignRegistry registry(cfg, space);
  registry.add_campaign(agebo_spec("solo", "default", 2, 20.0));
  registry.run(/*stop_after_seconds=*/600.0);
  const std::string ckpt = tmp_path("svc_mismatch_test.ckpt");
  registry.save_checkpoint(ckpt);

  svc::SvcConfig other = cfg;
  other.workers = 16;
  svc::CampaignRegistry fresh(other, space);
  EXPECT_THROW(fresh.load_checkpoint(ckpt), std::runtime_error);
  std::remove(ckpt.c_str());
}

// --- Fair-share and quotas ------------------------------------------------

// Two always-backlogged tenants at 3:1 priority must split consumed
// node-seconds within 10% of 3:1 (ISSUE acceptance bound).
TEST(SvcFairness, PriorityRatioGovernsNodeTimeSplit) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  cfg.job_overhead_seconds = 90.0;
  // Oversubscribe: each campaign keeps 8 tickets alive on an 8-slot
  // cluster, so admission is always contended and stride order decides.
  cfg.initial_per_campaign = 8;
  svc::CampaignRegistry registry(cfg, space);
  svc::TenantSpec hi;
  hi.name = "hi";
  hi.priority = 3.0;
  registry.set_tenant(hi);
  svc::TenantSpec lo;
  lo.name = "lo";
  lo.priority = 1.0;
  registry.set_tenant(lo);
  registry.add_campaign(agebo_spec("hi-camp", "hi", 21, 600.0));
  registry.add_campaign(agebo_spec("lo-camp", "lo", 22, 600.0));

  EXPECT_FALSE(registry.run(/*stop_after_seconds=*/8.0 * 3600.0));

  const auto usage = registry.tenant_usage();
  ASSERT_EQ(usage.size(), 2u);
  ASSERT_GT(usage[1].consumed_node_seconds, 0.0);
  const double ratio =
      usage[0].consumed_node_seconds / usage[1].consumed_node_seconds;
  EXPECT_GE(ratio, 2.7) << "hi=" << usage[0].consumed_node_seconds
                        << " lo=" << usage[1].consumed_node_seconds;
  EXPECT_LE(ratio, 3.3) << "hi=" << usage[0].consumed_node_seconds
                        << " lo=" << usage[1].consumed_node_seconds;
}

TEST(SvcQuota, MaxInFlightIsNeverExceeded) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  cfg.initial_per_campaign = 8;
  svc::CampaignRegistry registry(cfg, space);
  svc::TenantSpec capped;
  capped.name = "capped";
  capped.max_in_flight = 2;
  registry.set_tenant(capped);
  registry.add_campaign(agebo_spec("capped-camp", "capped", 4, 30.0));

  while (registry.step()) {
    const auto usage = registry.tenant_usage();
    ASSERT_EQ(usage.size(), 1u);
    EXPECT_LE(usage[0].in_flight, 2u);
  }
  // The campaign still finishes its budget, just at bounded concurrency.
  EXPECT_TRUE(registry.campaign_done(0));
  EXPECT_GT(registry.campaign(0).history().size(), 4u);
}

// A tenant that exhausts its node-second budget stops being admitted and
// its campaign terminates cleanly — WITHOUT starving the other tenant.
TEST(SvcQuota, BudgetExhaustionDoesNotStarveOthers) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  cfg.initial_per_campaign = 4;
  svc::CampaignRegistry registry(cfg, space);
  svc::TenantSpec broke;
  broke.name = "broke";
  broke.node_seconds_budget = 3600.0;  // about two evaluations
  registry.set_tenant(broke);
  svc::TenantSpec rich;
  rich.name = "rich";
  registry.set_tenant(rich);
  registry.add_campaign(agebo_spec("broke-camp", "broke", 6, 120.0));
  registry.add_campaign(agebo_spec("rich-camp", "rich", 7, 60.0));

  EXPECT_TRUE(registry.run());
  EXPECT_TRUE(registry.campaign_done(0));
  EXPECT_TRUE(registry.campaign_done(1));
  // The budgeted tenant got a taste, the unlimited one ran its full hour.
  EXPECT_GT(registry.campaign(1).history().size(),
            registry.campaign(0).history().size());
  const auto usage = registry.tenant_usage();
  EXPECT_GE(usage[0].consumed_node_seconds, usage[0].node_seconds_budget);
}

TEST(SvcRegistry, RejectsDuplicateCampaignNames) {
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 4;
  svc::CampaignRegistry registry(cfg, space);
  registry.add_campaign(agebo_spec("same", "default", 1, 10.0));
  EXPECT_THROW(registry.add_campaign(agebo_spec("same", "default", 2, 10.0)),
               std::invalid_argument);
}

// --- Checkpoint-format stability ------------------------------------------

// Golden v1 checkpoints committed under tests/fixtures/, written by
//   agebo_campaign --variant agebo [--bo-shards 2] --workers 8 --minutes 30
//                  --seed 41 --checkpoint <fixture> --stop-after 600
// at the release that introduced each section. Current code must keep
// loading them: a change that breaks these tests breaks every checkpoint
// users have on disk and needs a versioned migration, not a silent format
// edit.
void expect_golden_loads(const std::string& fixture) {
  const std::string path = std::string(AGEBO_FIXTURE_DIR) + "/" + fixture;
  nas::SearchSpace space;
  svc::SvcConfig cfg;
  cfg.workers = 8;
  cfg.job_overhead_seconds = 90.0;
  svc::CampaignRegistry registry(cfg, space);
  registry.load_checkpoint(path);
  ASSERT_EQ(registry.n_campaigns(), 1u);
  EXPECT_GT(registry.now(), 0.0);
  // The resumed service must be able to finish the campaign it loaded.
  EXPECT_TRUE(registry.run());
  EXPECT_TRUE(registry.campaign_done(0));
  EXPECT_FALSE(registry.campaign(0).history().empty());
}

TEST(SvcGolden, LoadsCommittedV1Checkpoint) {
  expect_golden_loads("svc_golden_v1.ckpt");
}

TEST(SvcGolden, LoadsCommittedV1ShardedCheckpoint) {
  expect_golden_loads("svc_golden_v1_sharded.ckpt");
}

}  // namespace
