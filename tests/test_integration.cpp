// Integration tests spanning modules: full simulated campaigns against the
// calibrated surrogate (the paper's headline orderings), and a live
// end-to-end AgEBO search with real data-parallel training.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/surrogate.hpp"
#include "eval/training_eval.hpp"
#include "exec/live_executor.hpp"
#include "exec/sim_executor.hpp"

namespace agebo {
namespace {

core::SearchResult run_sim(const nas::SearchSpace& space,
                           core::SearchConfig cfg, const std::string& dataset,
                           double minutes = 180.0, std::size_t workers = 128) {
  eval::SurrogateEvaluator evaluator(space, eval::profile_by_name(dataset));
  exec::SimulatedExecutor executor(workers, 90.0);
  cfg.wall_time_seconds = minutes * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  return search.run();
}

TEST(SimCampaign, TableOneShape) {
  // The Table I orderings: evaluation counts increase with n, mean training
  // time decreases with n, and AgE-8 loses accuracy versus AgE-2/AgE-4.
  nas::SearchSpace space;
  std::vector<core::RunStats> stats;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    stats.push_back(core::run_stats(run_sim(space, core::age_config(n, 500 + n),
                                            "covertype")));
  }
  EXPECT_LT(stats[0].n_evaluations, stats[1].n_evaluations);
  EXPECT_LT(stats[1].n_evaluations, stats[2].n_evaluations);
  EXPECT_LT(stats[2].n_evaluations, stats[3].n_evaluations);

  EXPECT_GT(stats[0].mean_train_minutes, stats[1].mean_train_minutes);
  EXPECT_GT(stats[1].mean_train_minutes, stats[2].mean_train_minutes);
  EXPECT_GT(stats[2].mean_train_minutes, stats[3].mean_train_minutes);
  // Absolute anchors within a tolerant band of Table I.
  EXPECT_NEAR(stats[0].mean_train_minutes, 26.5, 4.0);
  EXPECT_NEAR(stats[3].mean_train_minutes, 3.2, 1.0);

  // AgE-8 pays the linear-scaling-limit penalty.
  EXPECT_LT(stats[3].best_accuracy, stats[1].best_accuracy - 0.01);
  EXPECT_LT(stats[3].best_accuracy, stats[2].best_accuracy - 0.01);
}

TEST(SimCampaign, AgeboBeatsAgeEightOnCovertype) {
  // Fig 4's headline: joint tuning beats static n=8 scaling.
  nas::SearchSpace space;
  const auto age8 = run_sim(space, core::age_config(8, 600), "covertype");
  const auto agebo = run_sim(space, core::agebo_config(601), "covertype");
  EXPECT_GT(agebo.best_objective, age8.best_objective + 0.01);
}

TEST(SimCampaign, AgeboBeatsAgeOneEverywhereFaster) {
  // Fig 6's headline on two datasets: AgEBO reaches AgE-1's final best in a
  // fraction of the wall time.
  nas::SearchSpace space;
  for (const std::string dataset : {"covertype", "dionis"}) {
    const auto age1 = run_sim(space, core::age_config(1, 700), dataset);
    const auto agebo = run_sim(space, core::agebo_config(701), dataset);
    EXPECT_GE(agebo.best_objective, age1.best_objective - 0.002) << dataset;
    // AgEBO reaches AgE-1's final level well before the end of the run
    // (the paper sees it in 11-36 min; seeds put ours within ~0.9 of the
    // budget at worst).
    const double t = core::time_to_accuracy(agebo, age1.best_objective - 0.002);
    ASSERT_GE(t, 0.0) << dataset;
    EXPECT_LT(t, 0.9 * 180.0 * 60.0) << dataset;
  }
}

TEST(SimCampaign, KappaExploitationWins) {
  // Fig 8's headline: kappa = 0.001 accumulates more high performers than
  // kappa = 19.6.
  nas::SearchSpace space;
  const auto exploit = run_sim(space, core::agebo_config(800, 0.001), "covertype", 90.0);
  const auto explore = run_sim(space, core::agebo_config(800, 19.6), "covertype", 90.0);
  const double threshold = core::high_performer_threshold({&exploit, &explore});
  const auto exploit_series = core::unique_high_performers(exploit, threshold);
  const auto explore_series = core::unique_high_performers(explore, threshold);
  EXPECT_GT(exploit_series.size(), 2 * explore_series.size());
}

TEST(SimCampaign, UtilizationInPaperBand) {
  nas::SearchSpace space;
  const auto result = run_sim(space, core::age_config(1, 900), "covertype");
  // Paper reports ~94%; the simulated launch overhead lands nearby.
  EXPECT_GT(result.utilization.fraction(), 0.85);
  EXPECT_LE(result.utilization.fraction(), 1.0);
}

TEST(SimCampaign, TableThreeCovertypeOptimum) {
  // AgEBO's top models on Covertype should use n = 1 and bs1 = 256
  // (Table III's cluster).
  nas::SearchSpace space;
  const auto result = run_sim(space, core::agebo_config(701), "covertype");
  const auto top = core::top_k(result, 5);
  int n_one = 0;
  for (std::size_t idx : top) {
    if (result.history[idx].config.hparams[2] == 1.0) ++n_one;
  }
  EXPECT_GE(n_one, 3);
}

TEST(LiveSearch, EndToEndAgeboOnRealTraining) {
  auto spec = data::covertype_spec(0.002, 31);
  const auto dataset = data::make_classification(spec);
  Rng split_rng(1);
  auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
  data::standardize(splits);

  eval::TrainingEvalConfig ec;
  ec.epochs = 3;
  eval::TrainingEvaluator evaluator(splits.train, splits.valid, ec);
  exec::LiveExecutor executor(4);

  nas::SearchSpace space;
  core::SearchConfig cfg = core::agebo_config(5);
  cfg.population_size = 6;
  cfg.sample_size = 2;
  cfg.wall_time_seconds = 8.0;
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {64, 128})
                     .add_real("learning_rate", 0.001, 0.1, true)
                     .add_categorical("n_processes", {1, 2});
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();

  EXPECT_GT(result.history.size(), 4u);
  EXPECT_GT(result.best_objective, 0.3);
  for (const auto& rec : result.history) {
    EXPECT_GT(rec.train_seconds, 0.0);
  }
}

TEST(LiveSearch, AgeOnLiveExecutorMatchesSimSemantics) {
  // The same search code runs against both executors (the Executor
  // interface contract); a tiny AgE run should complete and improve.
  auto spec = data::airlines_spec(0.002, 32);
  const auto dataset = data::make_classification(spec);
  Rng split_rng(2);
  auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
  data::standardize(splits);

  eval::TrainingEvalConfig ec;
  ec.epochs = 2;
  eval::TrainingEvaluator evaluator(splits.train, splits.valid, ec);
  exec::LiveExecutor executor(2);

  nas::SearchSpace space;
  auto cfg = core::age_config(1, 6);
  cfg.population_size = 4;
  cfg.sample_size = 2;
  cfg.fixed_hparams = {128.0, 0.01, 1.0};
  cfg.wall_time_seconds = 6.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  const auto result = search.run();
  EXPECT_GT(result.history.size(), 2u);
  EXPECT_GT(result.best_objective, 0.5);  // binary task
}

}  // namespace
}  // namespace agebo
