// Observability subsystem tests (DESIGN.md §10): registry aggregation
// across threads, histogram bucket boundaries, span recording/nesting,
// Chrome-trace export parse-back, and the AGEBO_OBS=OFF probe TU.
//
// Metrics are process-global and monotonic, so every assertion works in
// deltas (other suites in this binary may touch the same registry).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/sim_executor.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace agebo::obs {

int off_probe_run();  // obs_off_probe.cpp (compiled with AGEBO_OBS_DISABLED)

namespace {

TEST(Registry, CounterAggregatesAcrossThreads) {
  auto& reg = Registry::global();
  Counter c = reg.counter("test.obs.threads");
  DCounter d = reg.dcounter("test.obs.threads_d");
  const std::uint64_t c0 = c.total();
  const double d0 = d.total();

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        d.add(0.5);
      }
    });
  }
  // Scrape concurrently with the writers: snapshot must never tear or race
  // (the TSan job runs this suite).
  for (int i = 0; i < 5; ++i) {
    (void)reg.snapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.total() - c0, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(d.total() - d0, 0.5 * kThreads * kPerThread);
}

TEST(Registry, TotalsSurviveThreadExit) {
  Counter c = Registry::global().counter("test.obs.thread_exit");
  const std::uint64_t before = c.total();
  // Sequential threads exercise the shard free-list: each release must
  // preserve the counts already written.
  for (int t = 0; t < 4; ++t) {
    std::thread([&] { c.add(100); }).join();
  }
  EXPECT_EQ(c.total() - before, 400u);
}

TEST(Registry, KindMismatchThrows) {
  auto& reg = Registry::global();
  reg.counter("test.obs.kind");
  EXPECT_THROW(reg.gauge("test.obs.kind"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.obs.kind"), std::invalid_argument);
  // Same kind re-registers to the same metric.
  Counter again = reg.counter("test.obs.kind");
  again.inc();
  EXPECT_GE(reg.counter("test.obs.kind").total(), 1u);
}

TEST(Registry, GaugeLastWriteWins) {
  Gauge g = Registry::global().gauge("test.obs.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.get(), -3.25);
}

TEST(Registry, HistogramBucketBoundaries) {
  auto& reg = Registry::global();
  HistogramSpec spec;
  spec.min = 1.0;
  spec.growth = 2.0;
  spec.buckets = 4;  // upper bounds 1, 2, 4, 8
  Histogram h = reg.histogram("test.obs.hist", spec);

  h.observe(0.5);    // <= min: bucket 0
  h.observe(1.0);    // == bound(0): bucket 0
  h.observe(1.5);    // (1, 2]: bucket 1
  h.observe(2.0);    // == bound(1): bucket 1
  h.observe(3.0);    // (2, 4]: bucket 2
  h.observe(100.0);  // above the last bound: clamps into bucket 3

  const auto snap = reg.snapshot();
  const MetricSnapshot* m = snap.find("test.obs.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->hist.count, 6u);
  EXPECT_DOUBLE_EQ(m->hist.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 100.0);
  ASSERT_EQ(m->hist.upper_bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(m->hist.upper_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(m->hist.upper_bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(m->hist.upper_bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(m->hist.upper_bounds[3], 8.0);
  ASSERT_EQ(m->hist.bucket_counts.size(), 4u);
  EXPECT_EQ(m->hist.bucket_counts[0], 2u);
  EXPECT_EQ(m->hist.bucket_counts[1], 2u);
  EXPECT_EQ(m->hist.bucket_counts[2], 1u);
  EXPECT_EQ(m->hist.bucket_counts[3], 1u);
  EXPECT_NEAR(m->hist.mean(), m->hist.sum / 6.0, 1e-12);
  // The median observation (between 1.5 and 2.0) lives in bucket 1.
  const double p50 = m->hist.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(Registry, SnapshotCsvAndJson) {
  auto& reg = Registry::global();
  reg.counter("test.obs.csv").add(7);
  reg.gauge("test.obs.csv_gauge").set(2.5);

  const auto snap = reg.snapshot();
  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("test.obs.csv,counter,value,7"), std::string::npos);
  EXPECT_NE(csv.find("test.obs.csv_gauge,gauge,value,2.5"), std::string::npos);

  // JSON must parse back with our own parser and contain the metric.
  const auto root = json::parse(snap.to_json());
  ASSERT_EQ(root.type, json::Value::Type::kObject);
  const json::Value* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool found = false;
  for (const auto& m : metrics->array) {
    const json::Value* name = m.find("name");
    if (name != nullptr && name->str == "test.obs.csv") {
      found = true;
      EXPECT_DOUBLE_EQ(m.find("value")->number, 7.0);
    }
  }
  EXPECT_TRUE(found);
}

// OBS_SPAN only records in AGEBO_OBS=ON builds; in OFF builds this TU is
// compiled with the macro disabled too, so the scoped-span test is moot.
#ifndef AGEBO_OBS_DISABLED
TEST(Spans, NestedScopedSpansShareLaneAndNest) {
  trace_reset();
  set_thread_lane("test.span.lane");
  {
    OBS_SPAN("outer", {{"job", "42"}});
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      OBS_SPAN("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = collect_trace_events();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->lane, "test.span.lane");
  EXPECT_EQ(inner->lane, "test.span.lane");
  ASSERT_EQ(outer->args.size(), 1u);
  EXPECT_EQ(outer->args[0].key, "job");
  EXPECT_EQ(outer->args[0].value, "42");
  // Proper containment: the inner span starts no earlier and ends no later.
  const double slack_us = 1.0;
  EXPECT_GE(inner->start_us + slack_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us + slack_us);
  EXPECT_EQ(trace_dropped_count(), 0u);
}
#endif  // AGEBO_OBS_DISABLED

TEST(Spans, ExplicitVirtualTimeSpans) {
  trace_reset();
  record_span("virt", "sim.worker.007", 10.0, 2.5,
              {{"status", "ok"}});
  const auto events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].lane, "sim.worker.007");
  EXPECT_DOUBLE_EQ(events[0].start_us, 10.0 * 1e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 2.5 * 1e6);
}

TEST(Spans, RingOverwritesOldestAndCountsDrops) {
  trace_reset();
  const std::size_t extra = 10;
  const std::size_t total = 32768 + extra;
  for (std::size_t i = 0; i < total; ++i) {
    record_span("bulk", "test.ring", static_cast<double>(i), 0.5);
  }
  EXPECT_EQ(trace_event_count(), 32768u);
  EXPECT_EQ(trace_dropped_count(), extra);
  const auto events = collect_trace_events();
  // Oldest-first: the surviving window starts at event #extra.
  double min_start = 1e300;
  for (const auto& e : events) min_start = std::min(min_start, e.start_us);
  EXPECT_DOUBLE_EQ(min_start, static_cast<double>(extra) * 1e6);
  trace_reset();
}

TEST(Trace, ChromeExportParsesBack) {
  trace_reset();
  record_span("phase.a", "lane.one", 1.0, 2.0, {{"k", "v"}});
  record_span("phase.b", "lane.two", 2.0, 1.0);
  record_counter_sample("track.x", 0.5, 3.0);
  record_counter_sample("track.x", 1.5, 4.0);

  const auto root = json::parse(chrome_trace_json());
  ASSERT_EQ(root.type, json::Value::Type::kObject);
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, json::Value::Type::kArray);

  int n_meta = 0, n_spans = 0, n_counters = 0;
  bool lane_one_named = false;
  for (const auto& e : events->array) {
    const std::string ph = e.find("ph")->str;
    if (ph == "M") {
      if (e.find("name")->str == "thread_name" &&
          e.find("args")->find("name")->str == "lane.one") {
        lane_one_named = true;
      }
      ++n_meta;
    } else if (ph == "X") {
      ++n_spans;
      if (e.find("name")->str == "phase.a") {
        EXPECT_DOUBLE_EQ(e.find("ts")->number, 1.0 * 1e6);
        EXPECT_DOUBLE_EQ(e.find("dur")->number, 2.0 * 1e6);
        EXPECT_EQ(e.find("args")->find("k")->str, "v");
      }
    } else if (ph == "C") {
      ++n_counters;
      EXPECT_EQ(e.find("name")->str, "track.x");
    }
  }
  EXPECT_TRUE(lane_one_named);
  EXPECT_EQ(n_spans, 2);
  EXPECT_EQ(n_counters, 2);
  EXPECT_GE(n_meta, 4);  // thread_name + thread_sort_index per lane
  trace_reset();
}

TEST(Exec, SimulatorFeedsSharedCounters) {
  auto& reg = Registry::global();
  const auto submitted0 = reg.counter("exec.jobs_submitted").total();
  const auto succeeded0 = reg.counter("exec.jobs_succeeded").total();
  const double busy0 = reg.dcounter("exec.busy_seconds").total();

  exec::SimulatedExecutor sim(2);
  exec::JobSpec spec;
  sim.submit([] { return exec::EvalOutput{0.5, 10.0, false}; }, spec);
  sim.submit([] { return exec::EvalOutput{0.6, 20.0, false}; }, spec);
  while (!sim.get_finished(true).empty()) {
  }

  EXPECT_EQ(reg.counter("exec.jobs_submitted").total() - submitted0, 2u);
  EXPECT_EQ(reg.counter("exec.jobs_succeeded").total() - succeeded0, 2u);
  EXPECT_NEAR(reg.dcounter("exec.busy_seconds").total() - busy0, 30.0, 1e-9);
  EXPECT_NEAR(sim.utilization().busy_worker_seconds, 30.0, 1e-9);
}

TEST(OffMode, ProbeCompilesAndRecordsNothing) {
  auto& reg = Registry::global();
  const auto flops0 = reg.counter("kernels.flops").total();
  trace_reset();
  // The probe TU is compiled with AGEBO_OBS_DISABLED: OBS_SPAN argument
  // expressions must not run, and add_flops must be a no-op there.
  EXPECT_EQ(off_probe_run(), 0);
  EXPECT_EQ(reg.counter("kernels.flops").total(), flops0);
  EXPECT_EQ(trace_event_count(), 0u);
}

}  // namespace
}  // namespace agebo::obs
