// Unit tests for src/dp: allreduce correctness, thread team semantics, and
// the data-parallel trainer's core invariants (lockstep replicas, gradient
// averaging equivalence, linear scaling rule).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>

#include "data/synthetic.hpp"
#include "dp/allreduce.hpp"
#include "dp/data_parallel.hpp"
#include "dp/gradient_comm.hpp"
#include "dp/reduce_kernels.hpp"
#include "dp/thread_team.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace agebo::dp {
namespace {

TEST(Allreduce, FlatAveragesAllBuffers) {
  std::vector<std::vector<float>> bufs = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<std::vector<float>*> ptrs = {&bufs[0], &bufs[1], &bufs[2]};
  allreduce_average(ptrs, AllreduceStrategy::kFlat);
  for (const auto& b : bufs) {
    EXPECT_FLOAT_EQ(b[0], 3.0f);
    EXPECT_FLOAT_EQ(b[1], 4.0f);
  }
}

class AllreduceParam
    : public ::testing::TestWithParam<std::tuple<AllreduceStrategy, int>> {};

TEST_P(AllreduceParam, MatchesSequentialMean) {
  const auto [strategy, n] = GetParam();
  Rng rng(42 + n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(257));
  std::vector<double> expected(257, 0.0);
  for (auto& b : bufs) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<float>(rng.normal());
      expected[i] += b[i];
    }
  }
  for (auto& e : expected) e /= n;
  std::vector<std::vector<float>*> ptrs;
  for (auto& b : bufs) ptrs.push_back(&b);
  allreduce_average(ptrs, strategy);
  for (const auto& b : bufs) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(b[i], expected[i], 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSizes, AllreduceParam,
    ::testing::Combine(::testing::Values(AllreduceStrategy::kFlat,
                                         AllreduceStrategy::kTree),
                       ::testing::Values(1, 2, 3, 4, 5, 8)));

TEST(Allreduce, RejectsMismatchedSizes) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {1};
  std::vector<std::vector<float>*> ptrs = {&a, &b};
  EXPECT_THROW(allreduce_average(ptrs), std::invalid_argument);
}

TEST(Allreduce, RejectsEmptyAndNull) {
  std::vector<std::vector<float>*> none;
  EXPECT_THROW(allreduce_average(none), std::invalid_argument);
  std::vector<float> a = {1};
  std::vector<std::vector<float>*> with_null = {&a, nullptr};
  EXPECT_THROW(allreduce_average(with_null), std::invalid_argument);
}

TEST(ThreadTeam, RunsEveryRankExactlyOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(4);
  team.run([&](std::size_t rank) { hits[rank]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, CollectiveIsReusable) {
  ThreadTeam team(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    team.run([&](std::size_t) { counter++; });
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadTeam, PropagatesWorkerException) {
  ThreadTeam team(3);
  EXPECT_THROW(team.run([](std::size_t rank) {
                 if (rank == 2) throw std::runtime_error("rank 2 failed");
               }),
               std::runtime_error);
  // Team remains usable after an exception.
  std::atomic<int> counter{0};
  team.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadTeam, SingleRankRunsInline) {
  ThreadTeam team(1);
  int hits = 0;
  team.run([&](std::size_t rank) {
    EXPECT_EQ(rank, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadTeam, RejectsZeroSize) {
  EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
}

TEST(LinearScaling, FollowsEquationTwo) {
  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.01;
  cfg.bs1 = 256;
  const auto scaled = linear_scaling(cfg);
  EXPECT_DOUBLE_EQ(scaled.lr_n, 0.04);
  EXPECT_EQ(scaled.bs_n, 1024u);
}

data::Dataset dp_dataset(std::size_t rows = 800) {
  data::SyntheticSpec spec;
  spec.n_rows = rows;
  spec.n_features = 10;
  spec.n_classes = 3;
  spec.n_informative = 6;
  spec.class_sep = 2.5;
  spec.seed = 31;
  return data::make_classification(spec);
}

nn::GraphSpec dp_net_spec() {
  nn::GraphSpec spec;
  spec.input_dim = 10;
  spec.output_dim = 3;
  nn::NodeSpec n1;
  n1.units = 12;
  n1.act = nn::Activation::kRelu;
  nn::NodeSpec n2;
  n2.units = 8;
  n2.act = nn::Activation::kTanh;
  n2.skips = {0};
  spec.nodes = {n1, n2};
  return spec;
}

TEST(DataParallel, ReplicasStayInLockstep) {
  const auto ds = dp_dataset();
  Rng split_rng(1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 3;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.global_steps, 0u);
  // Identical averaged gradients + identical Adam state => bitwise lockstep.
  EXPECT_EQ(trainer.max_replica_divergence(), 0.0f);
}

TEST(DataParallel, LockstepHoldsForTreeAllreduce) {
  const auto ds = dp_dataset(400);
  Rng split_rng(2);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 3;  // non-power-of-two exercises the ragged tree
  cfg.lr1 = 0.005;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.allreduce = AllreduceStrategy::kTree;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  trainer.fit(splits.train, splits.valid);
  EXPECT_EQ(trainer.max_replica_divergence(), 0.0f);
}

TEST(DataParallel, LearnsWithMultipleProcs) {
  const auto ds = dp_dataset(1200);
  Rng split_rng(3);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 2;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 10;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.best_valid_accuracy, 0.80);
}

TEST(DataParallel, SingleProcMatchesAccuracyBand) {
  // n=1 should behave like plain training: same data, same recipe.
  const auto ds = dp_dataset(1200);
  Rng split_rng(4);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 1;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 10;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.best_valid_accuracy, 0.80);
  EXPECT_DOUBLE_EQ(result.epochs.front().learning_rate, 0.005);
}

TEST(DataParallel, WarmupRampsTowardScaledLr) {
  const auto ds = dp_dataset(600);
  Rng split_rng(5);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.002;
  cfg.bs1 = 16;
  cfg.epochs = 7;
  cfg.warmup_epochs = 5;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_NEAR(result.epochs[0].learning_rate, 0.002, 1e-12);
  // Epoch 5 reaches the scaled rate n * lr1 = 0.008.
  EXPECT_NEAR(result.epochs[5].learning_rate, 0.008, 1e-12);
}

TEST(DataParallel, GradAveragingMatchesSingleLargeBatch) {
  // One data-parallel step with n shards of local batch b must produce the
  // same gradient as one sequential step over the union batch of n*b rows
  // (identical weights, fp tolerance).
  const std::size_t n = 2;
  const auto ds = dp_dataset(64);

  // Build two identical nets.
  Rng rng_a(77);
  Rng rng_b(77);
  nn::GraphNet net_a(dp_net_spec(), rng_a);
  nn::GraphNet net_b(dp_net_spec(), rng_b);

  // Union batch: rows 0..31; shard 0 = 0..15, shard 1 = 16..31.
  std::vector<std::size_t> order(32);
  for (std::size_t i = 0; i < 32; ++i) order[i] = i;
  nn::Tensor x_union;
  std::vector<int> y_union;
  nn::batch_from(ds, order, 0, 32, x_union, y_union);

  // Sequential: full batch through net_a.
  const nn::Tensor& logits = net_a.forward(x_union);
  net_a.zero_grad();
  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, y_union, dl);
  net_a.backward(dl);

  // Data-parallel: per-shard grads through net_b, averaged.
  std::vector<std::vector<float>> shard_grads;
  for (std::size_t r = 0; r < n; ++r) {
    nn::Tensor x;
    std::vector<int> y;
    nn::batch_from(ds, order, r * 16, (r + 1) * 16, x, y);
    const nn::Tensor& lg = net_b.forward(x);
    net_b.zero_grad();
    nn::Tensor d;
    nn::softmax_cross_entropy(lg, y, d);
    net_b.backward(d);
    // Flatten this replica's grads.
    std::vector<float> flat;
    for (auto& block : net_b.params()) {
      flat.insert(flat.end(), block.grads->begin(), block.grads->end());
    }
    shard_grads.push_back(std::move(flat));
  }
  std::vector<float> averaged(shard_grads[0].size());
  for (std::size_t i = 0; i < averaged.size(); ++i) {
    averaged[i] = 0.5f * (shard_grads[0][i] + shard_grads[1][i]);
  }

  std::vector<float> sequential;
  for (auto& block : net_a.params()) {
    sequential.insert(sequential.end(), block.grads->begin(),
                      block.grads->end());
  }
  ASSERT_EQ(sequential.size(), averaged.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_NEAR(sequential[i], averaged[i], 1e-4);
  }
}

TEST(DataParallel, RejectsInvalidConfig) {
  DataParallelConfig cfg;
  cfg.n_procs = 0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
  cfg = DataParallelConfig{};
  cfg.bs1 = 0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
  cfg = DataParallelConfig{};
  cfg.lr1 = -1.0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
}

TEST(DataParallel, ModelBeforeFitThrows) {
  DataParallelConfig cfg;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  EXPECT_THROW(trainer.model(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Reduce kernels: the single-destination folds must reproduce the exact
// historical summation orders bit for bit — training numerics depend on it.

TEST(ReduceKernels, ChunkRangePartitionsExactly) {
  for (std::size_t len : {0u, 1u, 7u, 64u, 1001u}) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 8u}) {
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < n; ++c) {
        const auto [begin, sz] = kernels::chunk_range(len, n, c);
        EXPECT_EQ(begin, expect_begin);
        expect_begin = begin + sz;
        covered += sz;
      }
      EXPECT_EQ(covered, len);
    }
  }
}

TEST(ReduceKernels, LinearFoldMatchesLeftToRightOrderBitwise) {
  Rng rng(11);
  for (std::size_t n : {2u, 3u, 4u, 5u, 7u, 8u, 11u}) {
    const std::size_t len = 1037;
    std::vector<std::vector<float>> bufs(n, std::vector<float>(len));
    std::vector<const float*> srcs;
    for (auto& b : bufs) {
      for (auto& v : b) v = static_cast<float>(rng.normal());
      srcs.push_back(b.data());
    }
    const float inv = 1.0f / static_cast<float>(n);
    std::vector<float> got(len);
    kernels::reduce_avg_linear_to(got.data(), srcs.data(), n, 0, len, inv);
    for (std::size_t i = 0; i < len; ++i) {
      float acc = bufs[0][i];
      for (std::size_t r = 1; r < n; ++r) acc += bufs[r][i];
      EXPECT_EQ(got[i], acc * inv);
    }
  }
}

TEST(ReduceKernels, TreeFoldMatchesStrideDoublingOrderBitwise) {
  Rng rng(12);
  for (std::size_t n : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 13u}) {
    const std::size_t len = 701;
    std::vector<std::vector<float>> bufs(n, std::vector<float>(len));
    std::vector<const float*> srcs;
    for (auto& b : bufs) {
      for (auto& v : b) v = static_cast<float>(rng.normal());
      srcs.push_back(b.data());
    }
    const float inv = 1.0f / static_cast<float>(n);
    std::vector<float> got(len);
    kernels::reduce_avg_tree_to(got.data(), srcs.data(), n, 0, len, inv);
    // The legacy in-place tree: combine partner buffers at doubling strides.
    std::vector<std::vector<float>> acc = bufs;
    for (std::size_t stride = 1; stride < n; stride *= 2) {
      for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
        for (std::size_t e = 0; e < len; ++e) acc[i][e] += acc[i + stride][e];
      }
    }
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(got[i], acc[0][i] * inv);
    }
  }
}

TEST(ReduceKernels, OffsetWindowLeavesRestUntouched) {
  const std::size_t len = 256;
  std::vector<float> a(len, 1.0f), b(len, 3.0f), dst(len, -7.0f);
  const float* srcs[] = {a.data(), b.data()};
  kernels::reduce_avg_linear_to(dst.data(), srcs, 2, 64, 32, 0.5f);
  for (std::size_t i = 0; i < len; ++i) {
    EXPECT_EQ(dst[i], (i >= 64 && i < 96) ? 2.0f : -7.0f);
  }
}

TEST(ReduceKernels, RejectsBadSourceCounts) {
  std::vector<float> a(4, 1.0f), dst(4);
  const float* srcs[] = {a.data()};
  EXPECT_THROW(
      kernels::reduce_avg_linear_to(dst.data(), srcs, 0, 0, 4, 1.0f),
      std::invalid_argument);
  EXPECT_THROW(kernels::reduce_avg_tree_to(dst.data(), srcs,
                                           kernels::kMaxSources + 1, 0, 4,
                                           1.0f),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ThreadTeam barrier: release/acquire visibility and reusability.

TEST(ThreadTeam, BarrierSeparatesPhasesWithVisibility) {
  const std::size_t n = 4;
  ThreadTeam team(n);
  std::vector<int> slots(n, 0);
  for (int round = 1; round <= 50; ++round) {
    team.run([&](std::size_t rank) {
      slots[rank] = round;
      team.barrier(rank);
      // Every rank's pre-barrier write must be visible to every rank.
      for (std::size_t r = 0; r < n; ++r) EXPECT_EQ(slots[r], round);
      team.barrier(rank);
    });
  }
}

TEST(ThreadTeam, BarrierIsNoOpForSingleRank) {
  ThreadTeam team(1);
  team.barrier(0);  // must not hang or throw
  team.run([&](std::size_t rank) { team.barrier(rank); });
}

// ---------------------------------------------------------------------------
// GradientComm: the bucketed shared-store reduction against first
// principles, and its executor-count invariance.

std::vector<std::vector<nn::ParamRef>> as_param_refs(
    std::vector<std::vector<std::vector<float>>>& grads) {
  std::vector<std::vector<nn::ParamRef>> params(grads.size());
  for (std::size_t r = 0; r < grads.size(); ++r) {
    for (auto& block : grads[r]) {
      params[r].push_back(nn::ParamRef{&block, &block});
    }
  }
  return params;
}

std::vector<std::vector<std::vector<float>>> random_grads(
    std::size_t n_replicas, const std::vector<std::size_t>& block_lens,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::vector<float>>> grads(n_replicas);
  for (auto& replica : grads) {
    for (std::size_t len : block_lens) {
      replica.emplace_back(len);
      for (auto& v : replica.back()) v = static_cast<float>(rng.normal());
    }
  }
  return grads;
}

void run_comm(GradientComm& comm, ThreadTeam& team, std::size_t n_replicas) {
  comm.begin_step();
  for (std::size_t r = 0; r < n_replicas; ++r) {
    comm.on_blocks_ready(r, 0, comm.n_blocks());
  }
  team.run([&](std::size_t rank) { comm.reduce_rank(rank, team, ""); });
}

TEST(GradientComm, SharedStoreMatchesFlatFoldBitwise) {
  // Mixed block sizes: tiny biases (fusion path) and large weights
  // (zero-copy path), spilling across several buckets.
  const std::vector<std::size_t> lens = {3456, 64, 4096, 64, 448, 7};
  auto grads = random_grads(4, lens, 21);
  auto params = as_param_refs(grads);

  GradientComm comm;
  CommConfig cfg;
  cfg.bucket_bytes = 8 * 1024;  // force multiple buckets
  comm.configure(params, cfg);
  EXPECT_GT(comm.n_buckets(), 1u);

  ThreadTeam team(4);
  run_comm(comm, team, 4);

  auto shared = comm.shared_grad_params(params[0]);
  ASSERT_EQ(shared.size(), lens.size());
  for (std::size_t b = 0; b < lens.size(); ++b) {
    for (std::size_t i = 0; i < lens[b]; ++i) {
      float acc = grads[0][b][i];
      for (std::size_t r = 1; r < 4; ++r) acc += grads[r][b][i];
      EXPECT_EQ((*shared[b].grads)[i], acc * 0.25f) << "block " << b;
    }
    // Values still point at the replica's own weights.
    EXPECT_EQ(shared[b].values, params[0][b].values);
  }
}

TEST(GradientComm, ExecutorCountDoesNotChangeBits) {
  // Chunk ownership is fixed by replica count, not by who executes the
  // chunks: a single-executor reduction (as the perf bench runs it) must
  // produce byte-identical results to the full-team reduction.
  const std::vector<std::size_t> lens = {2048, 31, 9000, 5};
  for (auto strategy : {AllreduceStrategy::kFlat, AllreduceStrategy::kTree,
                        AllreduceStrategy::kRing}) {
    auto grads_a = random_grads(4, lens, 33);
    auto grads_b = grads_a;
    auto params_a = as_param_refs(grads_a);
    auto params_b = as_param_refs(grads_b);

    CommConfig cfg;
    cfg.strategy = strategy;
    GradientComm comm_a;
    comm_a.configure(params_a, cfg);
    ThreadTeam team4(4);
    run_comm(comm_a, team4, 4);

    GradientComm comm_b;
    comm_b.configure(params_b, cfg);
    ThreadTeam team1(1);
    comm_b.begin_step();
    for (std::size_t r = 0; r < 4; ++r) {
      comm_b.on_blocks_ready(r, 0, comm_b.n_blocks());
    }
    comm_b.reduce_rank(0, team1, "");

    auto out_a = comm_a.shared_grad_params(params_a[0]);
    auto out_b = comm_b.shared_grad_params(params_b[0]);
    for (std::size_t b = 0; b < lens.size(); ++b) {
      EXPECT_EQ(0, std::memcmp(out_a[b].grads->data(), out_b[b].grads->data(),
                               lens[b] * sizeof(float)))
          << "strategy " << static_cast<int>(strategy) << " block " << b;
    }
  }
}

TEST(GradientComm, RingAgreesWithFlatToTolerance) {
  const std::vector<std::size_t> lens = {4096, 64, 1000};
  auto grads_flat = random_grads(4, lens, 55);
  auto grads_ring = grads_flat;
  auto params_flat = as_param_refs(grads_flat);
  auto params_ring = as_param_refs(grads_ring);

  CommConfig cfg;
  GradientComm comm_flat;
  comm_flat.configure(params_flat, cfg);
  cfg.strategy = AllreduceStrategy::kRing;
  GradientComm comm_ring;
  comm_ring.configure(params_ring, cfg);

  ThreadTeam team(4);
  run_comm(comm_flat, team, 4);
  run_comm(comm_ring, team, 4);

  auto out_flat = comm_flat.shared_grad_params(params_flat[0]);
  auto out_ring = comm_ring.shared_grad_params(params_ring[0]);
  for (std::size_t b = 0; b < lens.size(); ++b) {
    for (std::size_t i = 0; i < lens[b]; ++i) {
      EXPECT_NEAR((*out_flat[b].grads)[i], (*out_ring[b].grads)[i], 1e-5);
    }
  }
}

TEST(GradientComm, RejectsMismatchedReplicas) {
  auto grads = random_grads(2, {16, 4}, 9);
  auto params = as_param_refs(grads);
  params[1].pop_back();
  GradientComm comm;
  EXPECT_THROW(comm.configure(params, CommConfig{}), std::invalid_argument);
  params[1].push_back(params[0][0]);  // wrong shape for block 1
  EXPECT_THROW(comm.configure(params, CommConfig{}), std::invalid_argument);
  EXPECT_THROW(comm.configure({}, CommConfig{}), std::invalid_argument);
  CommConfig zero;
  zero.bucket_bytes = 0;
  auto ok = as_param_refs(grads);
  EXPECT_THROW(comm.configure(ok, zero), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GraphNet grad-ready hook: backward must announce every block exactly once.

TEST(GraphNetHook, BackwardAnnouncesEveryBlockOnce) {
  Rng rng(5);
  nn::GraphNet net(dp_net_spec(), rng);
  const std::size_t n_blocks = net.params().size();
  std::vector<int> seen(n_blocks, 0);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  net.set_grad_ready_hook([&](std::size_t begin, std::size_t end) {
    ranges.emplace_back(begin, end);
    for (std::size_t b = begin; b < end; ++b) seen[b]++;
  });

  const auto ds = dp_dataset(64);
  std::vector<std::size_t> order(32);
  for (std::size_t i = 0; i < 32; ++i) order[i] = i;
  nn::Tensor x;
  std::vector<int> y;
  nn::batch_from(ds, order, 0, 32, x, y);
  const nn::Tensor& logits = net.forward(x);
  net.zero_grad();
  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, y, dl);
  net.backward(dl);

  for (std::size_t b = 0; b < n_blocks; ++b) EXPECT_EQ(seen[b], 1);
  // Output layer first: ranges walk toward block 0.
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i].second, ranges[i - 1].first);
  }

  // Unhooking stops the announcements.
  net.set_grad_ready_hook(nullptr);
  net.zero_grad();
  ranges.clear();
  net.backward(dl);
  EXPECT_TRUE(ranges.empty());
}

// ---------------------------------------------------------------------------
// End-to-end lockstep and determinism across the strategy/overlap matrix.

std::vector<float> fit_and_flatten_weights(AllreduceStrategy strategy,
                                           bool overlap, std::size_t n_procs,
                                           std::size_t bucket_kb = 1024) {
  const auto ds = dp_dataset(400);
  Rng split_rng(8);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = n_procs;
  cfg.lr1 = 0.005;
  cfg.bs1 = 16;
  cfg.epochs = 3;
  cfg.allreduce = strategy;
  cfg.overlap_comm = overlap;
  cfg.bucket_kb = bucket_kb;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  trainer.fit(splits.train, splits.valid);
  EXPECT_EQ(trainer.max_replica_divergence(), 0.0f);

  std::vector<float> flat;
  for (const auto& block : trainer.model().params()) {
    flat.insert(flat.end(), block.values->begin(), block.values->end());
  }
  return flat;
}

class LockstepMatrix
    : public ::testing::TestWithParam<std::tuple<AllreduceStrategy, bool>> {};

TEST_P(LockstepMatrix, MultiEpochFitKeepsExactLockstep) {
  const auto [strategy, overlap] = GetParam();
  // The EXPECT inside checks divergence == 0.0f bitwise.
  const auto weights = fit_and_flatten_weights(strategy, overlap, 4);
  EXPECT_FALSE(weights.empty());
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndOverlap, LockstepMatrix,
    ::testing::Combine(::testing::Values(AllreduceStrategy::kFlat,
                                         AllreduceStrategy::kTree,
                                         AllreduceStrategy::kRing),
                       ::testing::Bool()));

TEST(DataParallelDiff, OverlapDoesNotChangeWeights) {
  // Overlap changes *when* buckets reduce, never the summation order, so
  // the trained weights must be bit-identical with it on or off.
  const auto with = fit_and_flatten_weights(AllreduceStrategy::kFlat, true, 4);
  const auto without =
      fit_and_flatten_weights(AllreduceStrategy::kFlat, false, 4);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i], without[i]) << "at " << i;
  }
}

TEST(DataParallelDiff, RepeatedFitsAreBitIdenticalAcrossSchedules) {
  // Thread interleavings differ run to run; the weights must not.
  const auto a = fit_and_flatten_weights(AllreduceStrategy::kRing, true, 4);
  const auto b = fit_and_flatten_weights(AllreduceStrategy::kRing, true, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
}

TEST(DataParallelDiff, BucketSizeDoesNotChangeWeights) {
  // Bucket boundaries group the work but never reorder a block's sum.
  const auto big = fit_and_flatten_weights(AllreduceStrategy::kFlat, true, 4);
  const auto tiny =
      fit_and_flatten_weights(AllreduceStrategy::kFlat, true, 4, 1);
  ASSERT_EQ(big.size(), tiny.size());
  for (std::size_t i = 0; i < big.size(); ++i) {
    EXPECT_EQ(big[i], tiny[i]) << "at " << i;
  }
}

TEST(DataParallelDiff, RingTracksFlatToTolerance) {
  const auto flat = fit_and_flatten_weights(AllreduceStrategy::kFlat, true, 4);
  const auto ring = fit_and_flatten_weights(AllreduceStrategy::kRing, true, 4);
  ASSERT_EQ(flat.size(), ring.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(flat[i], ring[i], 5e-3) << "at " << i;
  }
}

}  // namespace
}  // namespace agebo::dp
