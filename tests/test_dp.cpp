// Unit tests for src/dp: allreduce correctness, thread team semantics, and
// the data-parallel trainer's core invariants (lockstep replicas, gradient
// averaging equivalence, linear scaling rule).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "data/synthetic.hpp"
#include "dp/allreduce.hpp"
#include "dp/data_parallel.hpp"
#include "dp/thread_team.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace agebo::dp {
namespace {

TEST(Allreduce, FlatAveragesAllBuffers) {
  std::vector<std::vector<float>> bufs = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<std::vector<float>*> ptrs = {&bufs[0], &bufs[1], &bufs[2]};
  allreduce_average(ptrs, AllreduceStrategy::kFlat);
  for (const auto& b : bufs) {
    EXPECT_FLOAT_EQ(b[0], 3.0f);
    EXPECT_FLOAT_EQ(b[1], 4.0f);
  }
}

class AllreduceParam
    : public ::testing::TestWithParam<std::tuple<AllreduceStrategy, int>> {};

TEST_P(AllreduceParam, MatchesSequentialMean) {
  const auto [strategy, n] = GetParam();
  Rng rng(42 + n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(257));
  std::vector<double> expected(257, 0.0);
  for (auto& b : bufs) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<float>(rng.normal());
      expected[i] += b[i];
    }
  }
  for (auto& e : expected) e /= n;
  std::vector<std::vector<float>*> ptrs;
  for (auto& b : bufs) ptrs.push_back(&b);
  allreduce_average(ptrs, strategy);
  for (const auto& b : bufs) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(b[i], expected[i], 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSizes, AllreduceParam,
    ::testing::Combine(::testing::Values(AllreduceStrategy::kFlat,
                                         AllreduceStrategy::kTree),
                       ::testing::Values(1, 2, 3, 4, 5, 8)));

TEST(Allreduce, RejectsMismatchedSizes) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {1};
  std::vector<std::vector<float>*> ptrs = {&a, &b};
  EXPECT_THROW(allreduce_average(ptrs), std::invalid_argument);
}

TEST(Allreduce, RejectsEmptyAndNull) {
  std::vector<std::vector<float>*> none;
  EXPECT_THROW(allreduce_average(none), std::invalid_argument);
  std::vector<float> a = {1};
  std::vector<std::vector<float>*> with_null = {&a, nullptr};
  EXPECT_THROW(allreduce_average(with_null), std::invalid_argument);
}

TEST(ThreadTeam, RunsEveryRankExactlyOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(4);
  team.run([&](std::size_t rank) { hits[rank]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, CollectiveIsReusable) {
  ThreadTeam team(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    team.run([&](std::size_t) { counter++; });
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadTeam, PropagatesWorkerException) {
  ThreadTeam team(3);
  EXPECT_THROW(team.run([](std::size_t rank) {
                 if (rank == 2) throw std::runtime_error("rank 2 failed");
               }),
               std::runtime_error);
  // Team remains usable after an exception.
  std::atomic<int> counter{0};
  team.run([&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadTeam, SingleRankRunsInline) {
  ThreadTeam team(1);
  int hits = 0;
  team.run([&](std::size_t rank) {
    EXPECT_EQ(rank, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadTeam, RejectsZeroSize) {
  EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
}

TEST(LinearScaling, FollowsEquationTwo) {
  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.01;
  cfg.bs1 = 256;
  const auto scaled = linear_scaling(cfg);
  EXPECT_DOUBLE_EQ(scaled.lr_n, 0.04);
  EXPECT_EQ(scaled.bs_n, 1024u);
}

data::Dataset dp_dataset(std::size_t rows = 800) {
  data::SyntheticSpec spec;
  spec.n_rows = rows;
  spec.n_features = 10;
  spec.n_classes = 3;
  spec.n_informative = 6;
  spec.class_sep = 2.5;
  spec.seed = 31;
  return data::make_classification(spec);
}

nn::GraphSpec dp_net_spec() {
  nn::GraphSpec spec;
  spec.input_dim = 10;
  spec.output_dim = 3;
  nn::NodeSpec n1;
  n1.units = 12;
  n1.act = nn::Activation::kRelu;
  nn::NodeSpec n2;
  n2.units = 8;
  n2.act = nn::Activation::kTanh;
  n2.skips = {0};
  spec.nodes = {n1, n2};
  return spec;
}

TEST(DataParallel, ReplicasStayInLockstep) {
  const auto ds = dp_dataset();
  Rng split_rng(1);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 3;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.global_steps, 0u);
  // Identical averaged gradients + identical Adam state => bitwise lockstep.
  EXPECT_EQ(trainer.max_replica_divergence(), 0.0f);
}

TEST(DataParallel, LockstepHoldsForTreeAllreduce) {
  const auto ds = dp_dataset(400);
  Rng split_rng(2);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 3;  // non-power-of-two exercises the ragged tree
  cfg.lr1 = 0.005;
  cfg.bs1 = 16;
  cfg.epochs = 2;
  cfg.allreduce = AllreduceStrategy::kTree;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  trainer.fit(splits.train, splits.valid);
  EXPECT_EQ(trainer.max_replica_divergence(), 0.0f);
}

TEST(DataParallel, LearnsWithMultipleProcs) {
  const auto ds = dp_dataset(1200);
  Rng split_rng(3);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 2;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 10;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.best_valid_accuracy, 0.80);
}

TEST(DataParallel, SingleProcMatchesAccuracyBand) {
  // n=1 should behave like plain training: same data, same recipe.
  const auto ds = dp_dataset(1200);
  Rng split_rng(4);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 1;
  cfg.lr1 = 0.005;
  cfg.bs1 = 32;
  cfg.epochs = 10;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_GT(result.best_valid_accuracy, 0.80);
  EXPECT_DOUBLE_EQ(result.epochs.front().learning_rate, 0.005);
}

TEST(DataParallel, WarmupRampsTowardScaledLr) {
  const auto ds = dp_dataset(600);
  Rng split_rng(5);
  auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  DataParallelConfig cfg;
  cfg.n_procs = 4;
  cfg.lr1 = 0.002;
  cfg.bs1 = 16;
  cfg.epochs = 7;
  cfg.warmup_epochs = 5;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  const auto result = trainer.fit(splits.train, splits.valid);
  EXPECT_NEAR(result.epochs[0].learning_rate, 0.002, 1e-12);
  // Epoch 5 reaches the scaled rate n * lr1 = 0.008.
  EXPECT_NEAR(result.epochs[5].learning_rate, 0.008, 1e-12);
}

TEST(DataParallel, GradAveragingMatchesSingleLargeBatch) {
  // One data-parallel step with n shards of local batch b must produce the
  // same gradient as one sequential step over the union batch of n*b rows
  // (identical weights, fp tolerance).
  const std::size_t n = 2;
  const auto ds = dp_dataset(64);

  // Build two identical nets.
  Rng rng_a(77);
  Rng rng_b(77);
  nn::GraphNet net_a(dp_net_spec(), rng_a);
  nn::GraphNet net_b(dp_net_spec(), rng_b);

  // Union batch: rows 0..31; shard 0 = 0..15, shard 1 = 16..31.
  std::vector<std::size_t> order(32);
  for (std::size_t i = 0; i < 32; ++i) order[i] = i;
  nn::Tensor x_union;
  std::vector<int> y_union;
  nn::batch_from(ds, order, 0, 32, x_union, y_union);

  // Sequential: full batch through net_a.
  const nn::Tensor& logits = net_a.forward(x_union);
  net_a.zero_grad();
  nn::Tensor dl;
  nn::softmax_cross_entropy(logits, y_union, dl);
  net_a.backward(dl);

  // Data-parallel: per-shard grads through net_b, averaged.
  std::vector<std::vector<float>> shard_grads;
  for (std::size_t r = 0; r < n; ++r) {
    nn::Tensor x;
    std::vector<int> y;
    nn::batch_from(ds, order, r * 16, (r + 1) * 16, x, y);
    const nn::Tensor& lg = net_b.forward(x);
    net_b.zero_grad();
    nn::Tensor d;
    nn::softmax_cross_entropy(lg, y, d);
    net_b.backward(d);
    // Flatten this replica's grads.
    std::vector<float> flat;
    for (auto& block : net_b.params()) {
      flat.insert(flat.end(), block.grads->begin(), block.grads->end());
    }
    shard_grads.push_back(std::move(flat));
  }
  std::vector<float> averaged(shard_grads[0].size());
  for (std::size_t i = 0; i < averaged.size(); ++i) {
    averaged[i] = 0.5f * (shard_grads[0][i] + shard_grads[1][i]);
  }

  std::vector<float> sequential;
  for (auto& block : net_a.params()) {
    sequential.insert(sequential.end(), block.grads->begin(),
                      block.grads->end());
  }
  ASSERT_EQ(sequential.size(), averaged.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_NEAR(sequential[i], averaged[i], 1e-4);
  }
}

TEST(DataParallel, RejectsInvalidConfig) {
  DataParallelConfig cfg;
  cfg.n_procs = 0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
  cfg = DataParallelConfig{};
  cfg.bs1 = 0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
  cfg = DataParallelConfig{};
  cfg.lr1 = -1.0;
  EXPECT_THROW(DataParallelTrainer(dp_net_spec(), cfg), std::invalid_argument);
}

TEST(DataParallel, ModelBeforeFitThrows) {
  DataParallelConfig cfg;
  DataParallelTrainer trainer(dp_net_spec(), cfg);
  EXPECT_THROW(trainer.model(), std::logic_error);
}

}  // namespace
}  // namespace agebo::dp
