// Structural validator for exported Chrome traces (DESIGN.md §10).
//
//   trace_validate trace.json [--min-lanes N] [--min-events N]
//
// Checks the invariants the exporter promises:
//  - the file parses and has the {"traceEvents": [...]} shape;
//  - every "X" event references a lane (tid) that carries a thread_name
//    metadata record, with ts >= 0 and dur >= 0;
//  - spans on one lane are properly nested: a pair of spans is either
//    disjoint or one contains the other — partial overlap means the lane
//    double-booked a worker;
//  - counter tracks ("C" events) have monotone non-decreasing timestamps;
//  - every "dp.allreduce.bucket" span sits inside a "dp.step" span on the
//    same lane — the bucketed allreduce is part of the step collective, so
//    a bucket span escaping its step means the trainer's span accounting
//    broke;
//  - serving lanes (DESIGN.md §12–13): on a lane carrying "serve.batch"
//    spans, every engine-infer span ("serve.infer" or the int8 engine's
//    "serve.quantized.infer") is contained in one (the batcher worker only
//    runs the engine inside a batch), and every "serve.batch" contains at
//    least one infer span (a batch that never touched the engine means the
//    coalescing loop dropped requests);
//  - campaign-service lanes (DESIGN.md §14): a "svc.campaign.<name>" lane
//    carries only zero-duration "svc.eval" completion marks, emitted in
//    non-decreasing executor-time order — anything else means the registry
//    recorded evaluations out of routing order or leaked foreign spans
//    onto a campaign's lane.
//
// Exits 0 when every invariant holds, 1 with a diagnostic otherwise. The
// obs ctest suite runs it against a freshly simulated campaign.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using agebo::obs::json::Value;

struct Span {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
};

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "trace_validate: FAIL: %s\n", what.c_str());
  std::exit(1);
}

double require_number(const Value& event, const char* key) {
  const Value* v = event.find(key);
  if (v == nullptr || v->type != Value::Type::kNumber) {
    fail(std::string("event missing numeric \"") + key + "\"");
  }
  return v->number;
}

std::string require_string(const Value& event, const char* key) {
  const Value* v = event.find(key);
  if (v == nullptr || v->type != Value::Type::kString) {
    fail(std::string("event missing string \"") + key + "\"");
  }
  return v->str;
}

/// Spans on one lane must form a forest: sorted by (start, longest-first),
/// each span either starts after every open ancestor has closed, or closes
/// no later than its innermost open ancestor.
void check_lane_nesting(const std::string& lane, std::vector<Span> spans) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  // Tolerance for the exporter's 15-significant-digit serialization: at
  // hour-scale timestamps (~1e10 us) the last printed digit is 1e-5 us,
  // and ts + dur can differ from an adjacent span's ts by a few of those.
  const double eps = 0.05;
  std::vector<double> open_ends;
  for (const Span& s : spans) {
    while (!open_ends.empty() && open_ends.back() <= s.ts + eps) {
      open_ends.pop_back();
    }
    const double end = s.ts + s.dur;
    if (!open_ends.empty() && end > open_ends.back() + eps) {
      std::ostringstream msg;
      msg.precision(12);
      msg << "lane \"" << lane << "\": span \"" << s.name << "\" [" << s.ts
          << ", " << end << ") partially overlaps an open span ending at "
          << open_ends.back();
      fail(msg.str());
    }
    open_ends.push_back(end);
  }
}

/// Every per-bucket allreduce span must be contained in a dp.step span on
/// its own lane (same serialization tolerance as the nesting check).
void check_bucket_containment(const std::string& lane,
                              const std::vector<Span>& spans) {
  const double eps = 0.05;
  std::vector<const Span*> steps;
  for (const Span& s : spans) {
    if (s.name == "dp.step") steps.push_back(&s);
  }
  for (const Span& s : spans) {
    if (s.name != "dp.allreduce.bucket") continue;
    const double end = s.ts + s.dur;
    bool contained = false;
    for (const Span* step : steps) {
      if (s.ts + eps >= step->ts && end <= step->ts + step->dur + eps) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      std::ostringstream msg;
      msg.precision(12);
      msg << "lane \"" << lane << "\": dp.allreduce.bucket span [" << s.ts
          << ", " << end << ") is not contained in any dp.step span";
      fail(msg.str());
    }
  }
}

/// Serving invariants on one lane (no-op on lanes without serve.batch
/// spans): every engine-infer span ⊂ serve.batch, and every serve.batch is
/// non-empty. Both engine modes count as infer spans.
void check_serve_batching(const std::string& lane,
                          const std::vector<Span>& spans) {
  const double eps = 0.05;
  const auto is_infer = [](const Span& s) {
    return s.name == "serve.infer" || s.name == "serve.quantized.infer";
  };
  std::vector<const Span*> batches;
  for (const Span& s : spans) {
    if (s.name == "serve.batch") batches.push_back(&s);
  }
  if (batches.empty()) return;
  std::vector<std::size_t> infers_in(batches.size(), 0);
  for (const Span& s : spans) {
    if (!is_infer(s)) continue;
    const double end = s.ts + s.dur;
    bool contained = false;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (s.ts + eps >= batches[b]->ts &&
          end <= batches[b]->ts + batches[b]->dur + eps) {
        ++infers_in[b];
        contained = true;
        break;
      }
    }
    if (!contained) {
      std::ostringstream msg;
      msg.precision(12);
      msg << "lane \"" << lane << "\": " << s.name << " span [" << s.ts
          << ", " << end << ") is not contained in any serve.batch span";
      fail(msg.str());
    }
  }
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (infers_in[b] == 0) {
      std::ostringstream msg;
      msg.precision(12);
      msg << "lane \"" << lane << "\": serve.batch span at " << batches[b]->ts
          << " contains no engine infer span";
      fail(msg.str());
    }
  }
}

/// Campaign-service invariants (no-op on non-"svc.campaign.*" lanes):
/// only zero-duration svc.eval marks, non-decreasing ts in file order
/// (`spans` arrives in file order here — the nesting check sorts a copy).
void check_svc_lane(const std::string& lane, const std::vector<Span>& spans) {
  if (lane.rfind("svc.campaign.", 0) != 0) return;
  double prev_ts = -1.0;
  for (const Span& s : spans) {
    if (s.name != "svc.eval") {
      fail("lane \"" + lane + "\": unexpected span \"" + s.name +
           "\" on a campaign lane (only svc.eval marks allowed)");
    }
    if (s.dur != 0.0) {
      fail("lane \"" + lane + "\": svc.eval mark has nonzero duration");
    }
    if (s.ts < prev_ts) {
      std::ostringstream msg;
      msg.precision(12);
      msg << "lane \"" << lane << "\": svc.eval mark at ts " << s.ts
          << " recorded after one at ts " << prev_ts
          << " (completion routing out of order)";
      fail(msg.str());
    }
    prev_ts = s.ts;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t min_lanes = 1;
  std::size_t min_events = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-lanes") == 0 && i + 1 < argc) {
      min_lanes = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: trace_validate FILE.json [--min-lanes N] "
                   "[--min-events N]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_validate FILE.json\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();

  Value root;
  try {
    root = agebo::obs::json::parse(buf.str());
  } catch (const std::exception& e) {
    fail(e.what());
  }
  if (root.type != Value::Type::kObject) fail("top level is not an object");
  const Value* events = root.find("traceEvents");
  if (events == nullptr || events->type != Value::Type::kArray) {
    fail("missing traceEvents array");
  }

  std::map<int, std::string> lane_names;                 // tid -> thread_name
  std::map<int, std::vector<Span>> lanes;                // tid -> X spans
  std::map<std::string, std::vector<double>> counters;   // track -> ts
  for (const Value& e : events->array) {
    if (e.type != Value::Type::kObject) fail("event is not an object");
    const std::string ph = require_string(e, "ph");
    if (ph == "M") {
      if (require_string(e, "name") != "thread_name") continue;
      const int tid = static_cast<int>(require_number(e, "tid"));
      const Value* name_args = e.find("args");
      if (name_args == nullptr || name_args->find("name") == nullptr) {
        fail("thread_name metadata without args.name");
      }
      lane_names[tid] = name_args->find("name")->str;
    } else if (ph == "X") {
      Span s;
      s.name = require_string(e, "name");
      s.ts = require_number(e, "ts");
      s.dur = require_number(e, "dur");
      if (s.ts < 0.0) fail("span \"" + s.name + "\" has negative ts");
      if (s.dur < 0.0) fail("span \"" + s.name + "\" has negative dur");
      lanes[static_cast<int>(require_number(e, "tid"))].push_back(s);
    } else if (ph == "C") {
      counters[require_string(e, "name")].push_back(require_number(e, "ts"));
    } else {
      fail("unexpected event phase \"" + ph + "\"");
    }
  }

  std::size_t n_spans = 0;
  for (auto& [tid, spans] : lanes) {
    const auto it = lane_names.find(tid);
    if (it == lane_names.end()) {
      fail("tid " + std::to_string(tid) + " has spans but no thread_name");
    }
    n_spans += spans.size();
    check_bucket_containment(it->second, spans);
    check_serve_batching(it->second, spans);
    check_svc_lane(it->second, spans);
    check_lane_nesting(it->second, std::move(spans));
  }
  std::size_t n_samples = 0;
  for (const auto& [track, ts] : counters) {
    n_samples += ts.size();
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (ts[i] < ts[i - 1]) {
        fail("counter track \"" + track + "\" has non-monotone timestamps");
      }
    }
  }

  if (lanes.size() < min_lanes) {
    fail("expected at least " + std::to_string(min_lanes) + " lanes, found " +
         std::to_string(lanes.size()));
  }
  if (n_spans < min_events) {
    fail("expected at least " + std::to_string(min_events) +
         " spans, found " + std::to_string(n_spans));
  }

  std::printf(
      "trace_validate: OK: %zu lanes, %zu spans, %zu counter tracks "
      "(%zu samples)\n",
      lanes.size(), n_spans, counters.size(), n_samples);
  return 0;
}
