// Serve a frozen model artifact (DESIGN.md §12–13): load it without the
// search/training stack, run batched inference over a dataset, and exercise
// the dynamic micro-batcher under concurrent single-row clients.
//
//   agebo_serve --model model.txt (--data FILE [--arff] | --synthetic ROWS)
//               [--batch N] [--max-delay-ms F] [--clients N] [--requests N]
//               [--int8] [--calib-rows N] [--save-quant F.txt]
//               [--check-accuracy-delta PT]
//               [--trace F.json] [--metrics F.csv]
//
// The dataset goes through the same 42/25/33 split and train-split
// standardization as agebo_train, so a model saved by
//   agebo_train --synthetic 4096 --save model.txt
// serves its own test split here with the same accuracy it reported.
//
// --int8 serves through the quantized engine: if the artifact already
// carries a v3 quant section it is used as-is, otherwise the model is
// calibrated on up to --calib-rows train-split rows (default 256) and
// quantized on the fly. --save-quant writes the calibrated v3 artifact so
// later runs skip calibration. --check-accuracy-delta PT recomputes the
// fp32 test accuracy alongside and exits 1 if the int8 accuracy drops by
// more than PT percentage points — the serving-quality gate ctest runs.
//
// Phase 1 reports batched-path accuracy and throughput on the test split;
// phase 2 runs --clients threads of blocking single-row predicts through
// the MicroBatcher and reports coalescing stats plus latency quantiles
// (serve.latency / serve.queue_wait / serve.batch_size come from the
// metrics registry; --metrics dumps them all).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/args.hpp"
#include "common/predictor.hpp"
#include "data/arff.hpp"
#include "data/csv.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "ml/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"

namespace {

/// Top-1 accuracy of `engine` over the whole split, batched.
double split_accuracy(const agebo::serve::InferenceEngine& engine,
                      const agebo::data::Dataset& split, std::size_t batch) {
  std::vector<float> probs(batch * engine.output_dim());
  std::vector<int> preds;
  preds.reserve(split.n_rows);
  for (std::size_t begin = 0; begin < split.n_rows; begin += batch) {
    const std::size_t n = std::min(batch, split.n_rows - begin);
    engine.predict_batch(split.row(begin), n, probs.data());
    for (std::size_t i = 0; i < n; ++i) {
      const float* p = probs.data() + i * engine.output_dim();
      preds.push_back(static_cast<int>(
          std::distance(p, std::max_element(p, p + engine.output_dim()))));
    }
  }
  return agebo::ml::confusion_matrix(split.y, preds, split.n_classes)
      .accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  common::ArgParser args(
      "usage: agebo_serve --model FILE "
      "(--data FILE [--arff] | --synthetic ROWS) "
      "[--batch N] [--max-delay-ms F] [--clients N] [--requests N] "
      "[--int8] [--calib-rows N] [--save-quant F.txt] "
      "[--check-accuracy-delta PT] [--trace F.json] [--metrics F.csv]\n");
  for (const char* opt : {"model", "data", "synthetic", "batch",
                          "max-delay-ms", "clients", "requests", "trace",
                          "metrics", "calib-rows", "save-quant",
                          "check-accuracy-delta"}) {
    args.add_option(opt);
  }
  args.add_flag("arff");
  args.add_flag("int8");
  if (!args.parse(argc, argv)) return 2;
  if (!args.has("model") || (!args.has("data") && !args.has("synthetic"))) {
    args.print_usage();
    return 2;
  }

  try {
    auto artifact = nn::load_artifact_file(args.get("model", ""));

    // Same pipeline as agebo_train: load, split 42/25/33, standardize.
    const auto dataset = [&]() -> data::Dataset {
      if (args.has("data")) {
        return args.flag("arff") ? data::read_arff_file(args.get("data", ""))
                                 : data::read_csv_file(args.get("data", ""));
      }
      data::SyntheticSpec sspec;
      sspec.n_rows = std::max<std::size_t>(64, args.get_size("synthetic", 64));
      sspec.n_classes = 4;
      sspec.class_sep = 1.6;
      return data::make_classification(sspec);
    }();
    Rng split_rng(7);
    auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
    data::standardize(splits);
    const data::Dataset& test = splits.test;
    if (test.n_features != artifact.spec.input_dim) {
      throw std::runtime_error(
          "dataset has " + std::to_string(test.n_features) +
          " features but the model expects " +
          std::to_string(artifact.spec.input_dim));
    }

    // --int8: reuse a shipped quant section, or calibrate on the train
    // split and quantize here.
    const bool int8 = args.flag("int8");
    if (int8 && !artifact.has_quant()) {
      const std::size_t calib_rows = std::min<std::size_t>(
          splits.train.n_rows,
          std::max<std::size_t>(1, args.get_size("calib-rows", 256)));
      artifact = serve::quantize_artifact(artifact, splits.train.row(0),
                                          calib_rows);
      std::printf("calibrated on %zu train rows (%zu quantized ops)\n",
                  calib_rows, artifact.quant.size());
    }
    if (int8 && args.has("save-quant")) {
      const std::string qpath = args.get("save-quant", "");
      nn::save_artifact_file(artifact, qpath);
      std::printf("quantized artifact written to %s\n", qpath.c_str());
    }

    serve::InferenceEngine engine(
        artifact, int8 ? serve::EngineMode::kInt8 : serve::EngineMode::kFp32);
    std::printf("model: %zu features -> %zu classes, %zu parameters (%s)\n",
                engine.input_dim(), engine.output_dim(), engine.num_params(),
                int8 ? "int8" : "fp32");
    for (const auto& [key, value] : artifact.metadata) {
      std::printf("  meta %s = %s\n", key.c_str(), value.c_str());
    }

    // --- Phase 1: batched inference over the whole test split. ---
    const std::size_t batch = std::max<std::size_t>(1, args.get_size("batch", 256));
    std::vector<float> probs(batch * engine.output_dim());
    std::vector<int> preds;
    preds.reserve(test.n_rows);
    const double t0 = obs::trace_now_seconds();
    for (std::size_t begin = 0; begin < test.n_rows; begin += batch) {
      const std::size_t n = std::min(batch, test.n_rows - begin);
      engine.predict_batch(test.row(begin), n, probs.data());
      for (std::size_t i = 0; i < n; ++i) {
        const float* p = probs.data() + i * engine.output_dim();
        preds.push_back(static_cast<int>(std::distance(
            p, std::max_element(p, p + engine.output_dim()))));
      }
    }
    const double batch_seconds = obs::trace_now_seconds() - t0;
    const auto cm = ml::confusion_matrix(test.y, preds, test.n_classes);
    std::printf(
        "batched: %zu rows in %.3fs (%.0f rows/s, batch=%zu)  "
        "accuracy %.4f  macro-F1 %.4f\n",
        test.n_rows, batch_seconds,
        batch_seconds > 0.0 ? static_cast<double>(test.n_rows) / batch_seconds
                            : 0.0,
        batch, cm.accuracy(), cm.macro_f1());

    // --- Accuracy-delta gate: int8 must stay within PT points of fp32. ---
    if (args.has("check-accuracy-delta")) {
      if (!int8) {
        throw std::runtime_error(
            "--check-accuracy-delta requires --int8 (it compares the int8 "
            "engine against the fp32 baseline)");
      }
      const double budget_pt = args.get_double("check-accuracy-delta", 0.5);
      serve::InferenceEngine fp32_engine(artifact, serve::EngineMode::kFp32);
      const double fp32_acc = split_accuracy(fp32_engine, test, batch);
      const double int8_acc = cm.accuracy();
      const double delta_pt = (fp32_acc - int8_acc) * 100.0;
      std::printf(
          "accuracy delta: fp32 %.4f, int8 %.4f, drop %.3f pt "
          "(budget %.3f pt)\n",
          fp32_acc, int8_acc, delta_pt, budget_pt);
      if (delta_pt > budget_pt) {
        std::fprintf(stderr,
                     "FAIL: int8 accuracy dropped %.3f pt vs fp32 "
                     "(budget %.3f pt)\n",
                     delta_pt, budget_pt);
        return 1;
      }
    }

    // --- Phase 2: concurrent single-row clients through the batcher. ---
    const std::size_t clients = std::max<std::size_t>(1, args.get_size("clients", 4));
    const std::size_t requests =
        std::min<std::size_t>(test.n_rows, args.get_size("requests", 512));
    if (requests > 0) {
      serve::MicroBatcherConfig bcfg;
      bcfg.max_batch = batch;
      bcfg.max_delay_ms = args.get_double("max-delay-ms", 2.0);
      serve::MicroBatcher batcher(engine, bcfg);

      const double s0 = obs::trace_now_seconds();
      std::vector<std::thread> workers;
      for (std::size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          std::vector<float> out(engine.output_dim());
          for (std::size_t r = c; r < requests; r += clients) {
            batcher.predict_row(test.row(r), out.data());
          }
        });
      }
      for (auto& w : workers) w.join();
      batcher.stop();
      const double serve_seconds = obs::trace_now_seconds() - s0;

      const auto snap = obs::Registry::global().snapshot();
      const auto* batches = snap.find("serve.batches");
      const auto* latency = snap.find("serve.latency");
      const auto* qwait = snap.find("serve.queue_wait");
      std::printf(
          "micro-batched: %zu requests from %zu clients in %.3fs "
          "(%.0f req/s, %zu batches, mean batch %.1f)\n",
          requests, clients, serve_seconds,
          serve_seconds > 0.0 ? static_cast<double>(requests) / serve_seconds
                              : 0.0,
          batches != nullptr ? static_cast<std::size_t>(batches->value) : 0,
          batches != nullptr && batches->value > 0.0
              ? static_cast<double>(requests) / batches->value
              : 0.0);
      if (latency != nullptr && qwait != nullptr) {
        std::printf(
            "latency p50 %.3fms p99 %.3fms  queue-wait p50 %.3fms p99 %.3fms\n",
            latency->hist.quantile(0.5) * 1e3,
            latency->hist.quantile(0.99) * 1e3,
            qwait->hist.quantile(0.5) * 1e3, qwait->hist.quantile(0.99) * 1e3);
      }
    }

    if (args.has("metrics")) {
      const std::string path = args.get("metrics", "");
      std::ofstream mf(path);
      if (!mf) throw std::runtime_error("cannot write " + path);
      mf << obs::Registry::global().snapshot().to_csv();
      std::printf("metrics written to %s\n", path.c_str());
    }
    if (args.has("trace")) {
      const std::string path = args.get("trace", "");
      if (!obs::write_chrome_trace(path)) {
        throw std::runtime_error("cannot write " + path);
      }
      std::printf("trace written to %s (%zu events)\n", path.c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
