// Compare two benchmark JSON files and exit nonzero when any matching
// (kernel, m, k, n) entry regressed by more than --tol (default 10%) in
// blocked GFLOP/s. Accepts both harness schemas — agebo-bench-kernels-v1
// (bench/bench_kernels_json: GEMM shapes, blocked_gflops = absolute rate),
// agebo-bench-allreduce-v1 (bench/bench_allreduce_json: reduction sizes
// mapped onto the same field names, blocked_gflops = effective GB/s), and
// agebo-bench-infer-v1 (bench/bench_infer_json: serving batch sizes,
// blocked_gflops = batched predictions/s, speedup = batched vs per-row).
// CI gates kernel changes with:
//
//   bench_kernels_json --out new.json
//   bench_diff baseline.json new.json          # exit 1 on >10% regression
//
// The parser is deliberately minimal: it understands exactly the flat
// one-record-per-line format the harness emits, so the repo needs no JSON
// dependency.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

struct Entry {
  double blocked_gflops = 0.0;
  double speedup = 0.0;
};

using Key = std::tuple<std::string, long, long, long>;  // kernel, m, k, n

// Extract the value following `"key": ` in a record line.
bool field(const std::string& line, const std::string& key, std::string& out) {
  const std::string tag = "\"" + key + "\":";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + tag.size();
  while (start < line.size() && (line[start] == ' ' || line[start] == '"')) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '"' &&
         line[end] != '}') {
    ++end;
  }
  out = line.substr(start, end - start);
  return !out.empty();
}

bool load(const std::string& path, std::map<Key, Entry>& entries) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_diff: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  bool saw_schema = false;
  while (std::getline(is, line)) {
    if (line.find("agebo-bench-kernels-v1") != std::string::npos ||
        line.find("agebo-bench-allreduce-v1") != std::string::npos ||
        line.find("agebo-bench-infer-v1") != std::string::npos) {
      saw_schema = true;
    }
    std::string kernel, m, k, n, gflops, speedup;
    if (!field(line, "kernel", kernel)) continue;
    if (!field(line, "m", m) || !field(line, "k", k) || !field(line, "n", n) ||
        !field(line, "blocked_gflops", gflops)) {
      std::cerr << "bench_diff: malformed record in " << path << ": " << line
                << "\n";
      return false;
    }
    Entry e;
    e.blocked_gflops = std::strtod(gflops.c_str(), nullptr);
    if (field(line, "speedup", speedup)) {
      e.speedup = std::strtod(speedup.c_str(), nullptr);
    }
    entries[{kernel, std::strtol(m.c_str(), nullptr, 10),
             std::strtol(k.c_str(), nullptr, 10),
             std::strtol(n.c_str(), nullptr, 10)}] = e;
  }
  if (!saw_schema) {
    std::cerr << "bench_diff: " << path
              << " is not an agebo-bench-kernels-v1 / "
                 "agebo-bench-allreduce-v1 / agebo-bench-infer-v1 file\n";
    return false;
  }
  if (entries.empty()) {
    std::cerr << "bench_diff: no records in " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_diff [--tol FRACTION] OLD.json NEW.json\n";
    return 2;
  }

  std::map<Key, Entry> before, after;
  if (!load(paths[0], before) || !load(paths[1], after)) return 2;

  int regressions = 0;
  int compared = 0;
  for (const auto& [key, old_e] : before) {
    const auto it = after.find(key);
    if (it == after.end()) {
      std::cerr << "bench_diff: shape missing from " << paths[1] << ": "
                << std::get<0>(key) << " m=" << std::get<1>(key)
                << " k=" << std::get<2>(key) << " n=" << std::get<3>(key)
                << "\n";
      ++regressions;  // a vanished shape counts as a regression
      continue;
    }
    ++compared;
    const double old_gf = old_e.blocked_gflops;
    const double new_gf = it->second.blocked_gflops;
    const double drop = old_gf > 0.0 ? (old_gf - new_gf) / old_gf : 0.0;
    if (drop > tol) {
      std::cerr << "REGRESSION " << std::get<0>(key) << " m=" << std::get<1>(key)
                << " k=" << std::get<2>(key) << " n=" << std::get<3>(key)
                << ": " << old_gf << " -> " << new_gf << " GFLOP/s ("
                << drop * 100.0 << "% drop, tolerance " << tol * 100.0
                << "%)\n";
      ++regressions;
    }
  }
  std::cout << "bench_diff: compared " << compared << " shapes, "
            << regressions << " regression(s), tolerance " << tol * 100.0
            << "%\n";
  return regressions == 0 ? 0 : 1;
}
