// Compare two benchmark JSON files and exit nonzero when any matching
// (kernel, m, k, n) entry regressed by more than --tol (default 10%) in
// the blocked rate. Accepts every harness schema — agebo-bench-kernels-v1
// (bench/bench_kernels_json: GEMM shapes, blocked_gflops = absolute
// GFLOP/s), agebo-bench-allreduce-v1 (bench/bench_allreduce_json:
// reduction sizes mapped onto the same field names, blocked_gflops =
// effective GB/s), and agebo-bench-infer-v1 / -v2 (bench/bench_infer_json:
// serving batch sizes, blocked_gflops = batched predictions/s; v2 adds
// "<arch>-int8" rows where the rate is the int8 engine and speedup is
// int8 vs fp32), and agebo-bench-search-v1 (bench/bench_search_json:
// manager-side BO scaling, blocked_gflops = ask+tell evaluations/s and
// speedup = sharded vs centralized at the same worker count).
// Regression messages report the metric in the schema's
// own units so a failing CI log reads directly. CI gates kernel changes
// with:
//
//   bench_kernels_json --out new.json
//   bench_diff baseline.json new.json          # exit 1 on >10% regression
//
// The parser is deliberately minimal: it understands exactly the flat
// one-record-per-line format the harness emits, so the repo needs no JSON
// dependency.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

struct Entry {
  double blocked_gflops = 0.0;
  double speedup = 0.0;
};

using Key = std::tuple<std::string, long, long, long>;  // kernel, m, k, n

// Extract the value following `"key": ` in a record line.
bool field(const std::string& line, const std::string& key, std::string& out) {
  const std::string tag = "\"" + key + "\":";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + tag.size();
  while (start < line.size() && (line[start] == ' ' || line[start] == '"')) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '"' &&
         line[end] != '}') {
    ++end;
  }
  out = line.substr(start, end - start);
  return !out.empty();
}

// Known schema tags and the unit of their blocked-rate metric.
struct SchemaInfo {
  const char* tag;
  const char* unit;
};
constexpr SchemaInfo kSchemas[] = {
    {"agebo-bench-kernels-v1", "GFLOP/s"},
    {"agebo-bench-allreduce-v1", "GB/s"},
    {"agebo-bench-infer-v1", "pred/s"},
    {"agebo-bench-infer-v2", "pred/s"},
    {"agebo-bench-search-v1", "evals/s"},
};

bool load(const std::string& path, std::map<Key, Entry>& entries,
          std::string& unit) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_diff: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  bool saw_schema = false;
  while (std::getline(is, line)) {
    for (const auto& s : kSchemas) {
      if (line.find(s.tag) != std::string::npos) {
        saw_schema = true;
        unit = s.unit;
      }
    }
    std::string kernel, m, k, n, gflops, speedup;
    if (!field(line, "kernel", kernel)) continue;
    if (!field(line, "m", m) || !field(line, "k", k) || !field(line, "n", n) ||
        !field(line, "blocked_gflops", gflops)) {
      std::cerr << "bench_diff: malformed record in " << path << ": " << line
                << "\n";
      return false;
    }
    Entry e;
    e.blocked_gflops = std::strtod(gflops.c_str(), nullptr);
    if (field(line, "speedup", speedup)) {
      e.speedup = std::strtod(speedup.c_str(), nullptr);
    }
    entries[{kernel, std::strtol(m.c_str(), nullptr, 10),
             std::strtol(k.c_str(), nullptr, 10),
             std::strtol(n.c_str(), nullptr, 10)}] = e;
  }
  if (!saw_schema) {
    std::cerr << "bench_diff: " << path << " has no recognized schema (";
    bool first = true;
    for (const auto& s : kSchemas) {
      if (!first) std::cerr << " / ";
      std::cerr << s.tag;
      first = false;
    }
    std::cerr << ")\n";
    return false;
  }
  if (entries.empty()) {
    std::cerr << "bench_diff: no records in " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_diff [--tol FRACTION] OLD.json NEW.json\n";
    return 2;
  }

  std::map<Key, Entry> before, after;
  std::string unit_before, unit_after;
  if (!load(paths[0], before, unit_before) ||
      !load(paths[1], after, unit_after)) {
    return 2;
  }
  if (unit_before != unit_after) {
    std::cerr << "bench_diff: schema mismatch between files (" << paths[0]
              << " measures " << unit_before << ", " << paths[1] << " measures "
              << unit_after << ")\n";
    return 2;
  }
  const std::string& unit = unit_before;

  int regressions = 0;
  int compared = 0;
  for (const auto& [key, old_e] : before) {
    const auto it = after.find(key);
    if (it == after.end()) {
      std::cerr << "bench_diff: shape missing from " << paths[1] << ": "
                << std::get<0>(key) << " m=" << std::get<1>(key)
                << " k=" << std::get<2>(key) << " n=" << std::get<3>(key)
                << "\n";
      ++regressions;  // a vanished shape counts as a regression
      continue;
    }
    ++compared;
    const double old_gf = old_e.blocked_gflops;
    const double new_gf = it->second.blocked_gflops;
    const double drop = old_gf > 0.0 ? (old_gf - new_gf) / old_gf : 0.0;
    if (drop > tol) {
      std::cerr << "REGRESSION " << std::get<0>(key) << " m=" << std::get<1>(key)
                << " k=" << std::get<2>(key) << " n=" << std::get<3>(key)
                << ": " << old_gf << " -> " << new_gf << " " << unit << " ("
                << drop * 100.0 << "% drop, tolerance " << tol * 100.0
                << "%)\n";
      ++regressions;
    }
  }
  std::cout << "bench_diff: compared " << compared << " shapes, "
            << regressions << " regression(s), tolerance " << tol * 100.0
            << "%\n";
  return regressions == 0 ? 0 : 1;
}
