// Train / evaluate / persist a tabular model from CSV or ARFF data — the
// "bring your own dataset" entry point:
//
//   agebo_train --data my.csv [--arff] [--epochs 20] [--procs 2]
//               [--bs 128] [--lr 0.01] [--save model.txt]
//   agebo_train --data my.csv --load model.txt        (evaluate only)
//   agebo_train --synthetic 8000 --procs 4            (generated dataset)
//
// Gradient communication (DESIGN.md §11): --allreduce flat|tree|ring picks
// the reduction strategy, --bucket-kb N sizes the fusion buckets, and
// --no-overlap disables the backward/allreduce overlap. After a multi-
// replica run the tool prints the effective allreduce bandwidth.
//
// Splits 42/25/33 (the paper's proportions), standardizes on the training
// split, trains with data-parallel training under the linear scaling rule,
// and reports validation/test accuracy, balanced accuracy, and macro-F1.
//
// Observability (DESIGN.md §10): --trace FILE.json writes a Chrome trace
// (per-replica step lanes, allreduce spans), --metrics FILE.csv dumps the
// metrics registry, --report-every N prints a progress line every N epochs.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include <algorithm>

#include "common/args.hpp"
#include "data/arff.hpp"
#include "data/csv.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "ml/metrics.hpp"
#include "nas/search_space.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "obs/obs.hpp"

namespace {

void report(const char* split, agebo::nn::GraphNet& net,
            const agebo::data::Dataset& ds) {
  using namespace agebo;
  std::vector<int> preds;
  preds.reserve(ds.n_rows);
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;
  nn::Tensor x;
  std::vector<int> y;
  for (std::size_t begin = 0; begin < ds.n_rows; begin += 4096) {
    const std::size_t end = std::min(begin + 4096, ds.n_rows);
    nn::batch_from(ds, order, begin, end, x, y);
    const auto batch_preds = nn::predict_classes(net.forward(x));
    preds.insert(preds.end(), batch_preds.begin(), batch_preds.end());
  }
  const auto cm = ml::confusion_matrix(ds.y, preds, ds.n_classes);
  std::printf("%-6s accuracy %.4f  balanced %.4f  macro-F1 %.4f\n", split,
              cm.accuracy(), cm.balanced_accuracy(), cm.macro_f1());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  common::ArgParser args(
      "usage: agebo_train (--data FILE [--arff] | --synthetic ROWS) "
      "[--epochs N] [--procs N] [--bs N] [--lr F] "
      "[--allreduce flat|tree|ring] [--bucket-kb N] [--no-overlap] "
      "[--elastic] [--crash-prob F] [--hang-prob F] [--slow-prob F] "
      "[--fault-seed N] [--min-replicas N] [--heartbeat F] "
      "[--save F] [--load F] "
      "[--trace F.json] [--metrics F.csv] [--report-every N]\n");
  for (const char* opt :
       {"data", "synthetic", "epochs", "procs", "bs", "lr", "allreduce",
        "bucket-kb", "crash-prob", "hang-prob", "slow-prob", "fault-seed",
        "min-replicas", "heartbeat", "save", "load", "trace", "metrics",
        "report-every"}) {
    args.add_option(opt);
  }
  args.add_flag("elastic");
  args.add_flag("arff");
  args.add_flag("no-overlap");
  if (!args.parse(argc, argv)) return 2;
  const bool arff = args.flag("arff");
  const bool no_overlap = args.flag("no-overlap");
  if (!args.has("data") && !args.has("synthetic")) {
    args.print_usage();
    return 2;
  }

  try {
    const auto dataset = [&]() -> data::Dataset {
      if (args.has("data")) {
        return arff ? data::read_arff_file(args.get("data", ""))
                    : data::read_csv_file(args.get("data", ""));
      }
      data::SyntheticSpec sspec;
      sspec.n_rows = std::max<std::size_t>(64, args.get_size("synthetic", 64));
      sspec.n_classes = 4;
      sspec.class_sep = 1.6;
      return data::make_classification(sspec);
    }();
    std::printf("loaded %zu rows, %zu features, %zu classes\n", dataset.n_rows,
                dataset.n_features, dataset.n_classes);
    Rng split_rng(7);
    auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
    data::standardize(splits);

    if (args.has("load")) {
      auto net = nn::load_graphnet_file(args.get("load", ""));
      report("valid", *net, splits.valid);
      report("test", *net, splits.test);
      return 0;
    }

    // A solid default architecture: three dense nodes with one skip.
    nn::GraphSpec spec;
    spec.input_dim = dataset.n_features;
    spec.output_dim = dataset.n_classes;
    for (std::size_t units : {96u, 64u, 48u}) {
      nn::NodeSpec node;
      node.units = units;
      node.act = nn::Activation::kRelu;
      spec.nodes.push_back(node);
    }
    spec.nodes[2].skips = {0};
    spec.output_skips = {2};

    dp::DataParallelConfig cfg;
    cfg.epochs = args.get_size("epochs", 20);
    cfg.n_procs = args.get_size("procs", 1);
    cfg.bs1 = args.get_size("bs", 128);
    cfg.lr1 = args.get_double("lr", 0.01);
    if (args.has("allreduce")) {
      const std::string s = args.get("allreduce", "");
      if (s == "flat") {
        cfg.allreduce = dp::AllreduceStrategy::kFlat;
      } else if (s == "tree") {
        cfg.allreduce = dp::AllreduceStrategy::kTree;
      } else if (s == "ring") {
        cfg.allreduce = dp::AllreduceStrategy::kRing;
      } else {
        std::fprintf(stderr, "bad --allreduce %s (flat|tree|ring)\n", s.c_str());
        return 2;
      }
    }
    if (args.has("bucket-kb")) {
      cfg.bucket_kb = std::max<std::size_t>(1, args.get_size("bucket-kb", 1));
    }
    cfg.overlap_comm = !no_overlap;

    // Elastic training (DESIGN.md §16): --elastic arms the membership
    // layer; the probability flags inject replica-scoped faults at
    // allreduce entry (CI's seeded fault matrix drives these).
    if (args.flag("elastic") || args.has("crash-prob") ||
        args.has("hang-prob") || args.has("slow-prob")) {
      cfg.elastic.enabled = true;
      cfg.elastic.faults.crash_prob = args.get_double("crash-prob", 0.0);
      cfg.elastic.faults.hang_prob = args.get_double("hang-prob", 0.0);
      cfg.elastic.faults.slow_prob = args.get_double("slow-prob", 0.0);
      cfg.elastic.faults.seed = args.get_size("fault-seed", 0);
      cfg.elastic.min_replicas =
          std::max<std::size_t>(1, args.get_size("min-replicas", 1));
      cfg.elastic.heartbeat_seconds = args.get_double("heartbeat", 1.0);
    }

    const auto report_every = args.get_size("report-every", 0);
    if (report_every > 0) {
      cfg.on_epoch = [report_every](std::size_t epoch,
                                    const nn::EpochStats& stats) {
        if ((epoch + 1) % report_every == 0) {
          std::printf("[epoch %3zu] loss=%.4f valid=%.4f lr=%.5f\n", epoch + 1,
                      stats.train_loss, stats.valid_accuracy,
                      stats.learning_rate);
        }
      };
    }

    const auto scaled = dp::linear_scaling(cfg);
    std::printf("training: %zu epochs, n=%zu, lr_n=%.4f, bs_n=%zu\n",
                cfg.epochs, cfg.n_procs, scaled.lr_n, scaled.bs_n);

    auto& reg = obs::Registry::global();
    const double flops0 =
        static_cast<double>(reg.counter("kernels.flops").total());

    dp::DataParallelTrainer trainer(spec, cfg);
    const auto result = trainer.fit(splits.train, splits.valid);

    const double flops =
        static_cast<double>(reg.counter("kernels.flops").total()) - flops0;
    const double gflops = result.wall_seconds > 0.0
                              ? flops / result.wall_seconds * 1e-9
                              : 0.0;
    reg.gauge("kernels.achieved_gflops").set(gflops);
    std::printf("trained in %.1fs (%.0f samples/s, %.2f GFLOP/s), "
                "best valid %.4f\n",
                result.wall_seconds, result.samples_per_second, gflops,
                result.best_valid_accuracy);
    if (cfg.n_procs > 1 && result.allreduce_seconds > 0.0) {
      std::printf("allreduce: %.1f MiB reduced in %.3fs "
                  "(effective %.2f GB/s)\n",
                  static_cast<double>(result.allreduce_bytes) / (1024.0 * 1024.0),
                  result.allreduce_seconds,
                  static_cast<double>(result.allreduce_bytes) /
                      result.allreduce_seconds * 1e-9);
    }
    for (const auto& ev : result.elastic_events) {
      std::printf("elastic: lost %zu rank(s) at global step %zu "
                  "(epoch %zu), world %zu -> %zu\n",
                  ev.lost.size(), ev.global_step, ev.epoch, ev.old_world,
                  ev.new_world);
    }
    if (cfg.elastic.enabled) {
      std::printf("elastic: finished at world size %zu (replica divergence "
                  "%g)\n",
                  result.final_world,
                  static_cast<double>(trainer.max_replica_divergence()));
    }
    report("valid", trainer.model(), splits.valid);
    report("test", trainer.model(), splits.test);

    if (args.has("save")) {
      const std::string path = args.get("save", "");
      // Freeze with provenance metadata: the serving tool surfaces these.
      auto artifact = nn::freeze_graphnet(
          trainer.model(),
          {{"tool", "agebo_train"},
           {"dataset", dataset.name.empty() ? "synthetic" : dataset.name},
           {"epochs", std::to_string(cfg.epochs)},
           {"valid_accuracy", std::to_string(result.best_valid_accuracy)}});
      nn::save_artifact_file(artifact, path);
      std::printf("model written to %s\n", path.c_str());
    }

    if (args.has("metrics")) {
      const std::string path = args.get("metrics", "");
      std::ofstream mf(path);
      if (!mf) throw std::runtime_error("cannot write " + path);
      mf << reg.snapshot().to_csv();
      std::printf("metrics written to %s\n", path.c_str());
    }
    if (args.has("trace")) {
      const std::string path = args.get("trace", "");
      if (!obs::write_chrome_trace(path)) {
        throw std::runtime_error("cannot write " + path);
      }
      std::printf("trace written to %s (%zu events)\n", path.c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
