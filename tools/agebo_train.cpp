// Train / evaluate / persist a tabular model from CSV or ARFF data — the
// "bring your own dataset" entry point:
//
//   agebo_train --data my.csv [--arff] [--epochs 20] [--procs 2]
//               [--bs 128] [--lr 0.01] [--save model.txt]
//   agebo_train --data my.csv --load model.txt        (evaluate only)
//   agebo_train --synthetic 8000 --procs 4            (generated dataset)
//
// Gradient communication (DESIGN.md §11): --allreduce flat|tree|ring picks
// the reduction strategy, --bucket-kb N sizes the fusion buckets, and
// --no-overlap disables the backward/allreduce overlap. After a multi-
// replica run the tool prints the effective allreduce bandwidth.
//
// Splits 42/25/33 (the paper's proportions), standardizes on the training
// split, trains with data-parallel training under the linear scaling rule,
// and reports validation/test accuracy, balanced accuracy, and macro-F1.
//
// Observability (DESIGN.md §10): --trace FILE.json writes a Chrome trace
// (per-replica step lanes, allreduce spans), --metrics FILE.csv dumps the
// metrics registry, --report-every N prints a progress line every N epochs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include <algorithm>

#include "data/arff.hpp"
#include "data/csv.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "ml/metrics.hpp"
#include "nas/search_space.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "obs/obs.hpp"

namespace {

void report(const char* split, agebo::nn::GraphNet& net,
            const agebo::data::Dataset& ds) {
  using namespace agebo;
  std::vector<int> preds;
  preds.reserve(ds.n_rows);
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;
  nn::Tensor x;
  std::vector<int> y;
  for (std::size_t begin = 0; begin < ds.n_rows; begin += 4096) {
    const std::size_t end = std::min(begin + 4096, ds.n_rows);
    nn::batch_from(ds, order, begin, end, x, y);
    const auto batch_preds = nn::predict_classes(net.forward(x));
    preds.insert(preds.end(), batch_preds.begin(), batch_preds.end());
  }
  const auto cm = ml::confusion_matrix(ds.y, preds, ds.n_classes);
  std::printf("%-6s accuracy %.4f  balanced %.4f  macro-F1 %.4f\n", split,
              cm.accuracy(), cm.balanced_accuracy(), cm.macro_f1());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  std::map<std::string, std::string> args;
  bool arff = false;
  bool no_overlap = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--arff") == 0) {
      arff = true;
    } else if (std::strcmp(argv[i], "--no-overlap") == 0) {
      no_overlap = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      const std::string key = argv[i] + 2;
      args[key] = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (!args.count("data") && !args.count("synthetic")) {
    std::fprintf(stderr,
                 "usage: agebo_train (--data FILE [--arff] | --synthetic ROWS) "
                 "[--epochs N] [--procs N] [--bs N] [--lr F] "
                 "[--allreduce flat|tree|ring] [--bucket-kb N] [--no-overlap] "
                 "[--save F] [--load F] "
                 "[--trace F.json] [--metrics F.csv] [--report-every N]\n");
    return 2;
  }

  try {
    const auto dataset = [&]() -> data::Dataset {
      if (args.count("data")) {
        return arff ? data::read_arff_file(args["data"])
                    : data::read_csv_file(args["data"]);
      }
      data::SyntheticSpec sspec;
      sspec.n_rows = static_cast<std::size_t>(
          std::max(64L, std::atol(args["synthetic"].c_str())));
      sspec.n_classes = 4;
      sspec.class_sep = 1.6;
      return data::make_classification(sspec);
    }();
    std::printf("loaded %zu rows, %zu features, %zu classes\n", dataset.n_rows,
                dataset.n_features, dataset.n_classes);
    Rng split_rng(7);
    auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
    data::standardize(splits);

    if (args.count("load")) {
      auto net = nn::load_graphnet_file(args["load"]);
      report("valid", *net, splits.valid);
      report("test", *net, splits.test);
      return 0;
    }

    // A solid default architecture: three dense nodes with one skip.
    nn::GraphSpec spec;
    spec.input_dim = dataset.n_features;
    spec.output_dim = dataset.n_classes;
    for (std::size_t units : {96u, 64u, 48u}) {
      nn::NodeSpec node;
      node.units = units;
      node.act = nn::Activation::kRelu;
      spec.nodes.push_back(node);
    }
    spec.nodes[2].skips = {0};
    spec.output_skips = {2};

    dp::DataParallelConfig cfg;
    cfg.epochs = args.count("epochs")
                     ? static_cast<std::size_t>(std::atoi(args["epochs"].c_str()))
                     : 20;
    cfg.n_procs = args.count("procs")
                      ? static_cast<std::size_t>(std::atoi(args["procs"].c_str()))
                      : 1;
    cfg.bs1 = args.count("bs")
                  ? static_cast<std::size_t>(std::atoi(args["bs"].c_str()))
                  : 128;
    cfg.lr1 = args.count("lr") ? std::atof(args["lr"].c_str()) : 0.01;
    if (args.count("allreduce")) {
      const std::string& s = args["allreduce"];
      if (s == "flat") {
        cfg.allreduce = dp::AllreduceStrategy::kFlat;
      } else if (s == "tree") {
        cfg.allreduce = dp::AllreduceStrategy::kTree;
      } else if (s == "ring") {
        cfg.allreduce = dp::AllreduceStrategy::kRing;
      } else {
        std::fprintf(stderr, "bad --allreduce %s (flat|tree|ring)\n", s.c_str());
        return 2;
      }
    }
    if (args.count("bucket-kb")) {
      cfg.bucket_kb = static_cast<std::size_t>(
          std::max(1L, std::atol(args["bucket-kb"].c_str())));
    }
    cfg.overlap_comm = !no_overlap;

    const auto report_every = static_cast<std::size_t>(
        std::atoi(args.count("report-every") ? args["report-every"].c_str()
                                             : "0"));
    if (report_every > 0) {
      cfg.on_epoch = [report_every](std::size_t epoch,
                                    const nn::EpochStats& stats) {
        if ((epoch + 1) % report_every == 0) {
          std::printf("[epoch %3zu] loss=%.4f valid=%.4f lr=%.5f\n", epoch + 1,
                      stats.train_loss, stats.valid_accuracy,
                      stats.learning_rate);
        }
      };
    }

    const auto scaled = dp::linear_scaling(cfg);
    std::printf("training: %zu epochs, n=%zu, lr_n=%.4f, bs_n=%zu\n",
                cfg.epochs, cfg.n_procs, scaled.lr_n, scaled.bs_n);

    auto& reg = obs::Registry::global();
    const double flops0 =
        static_cast<double>(reg.counter("kernels.flops").total());

    dp::DataParallelTrainer trainer(spec, cfg);
    const auto result = trainer.fit(splits.train, splits.valid);

    const double flops =
        static_cast<double>(reg.counter("kernels.flops").total()) - flops0;
    const double gflops = result.wall_seconds > 0.0
                              ? flops / result.wall_seconds * 1e-9
                              : 0.0;
    reg.gauge("kernels.achieved_gflops").set(gflops);
    std::printf("trained in %.1fs (%.0f samples/s, %.2f GFLOP/s), "
                "best valid %.4f\n",
                result.wall_seconds, result.samples_per_second, gflops,
                result.best_valid_accuracy);
    if (cfg.n_procs > 1 && result.allreduce_seconds > 0.0) {
      std::printf("allreduce: %.1f MiB reduced in %.3fs "
                  "(effective %.2f GB/s)\n",
                  static_cast<double>(result.allreduce_bytes) / (1024.0 * 1024.0),
                  result.allreduce_seconds,
                  static_cast<double>(result.allreduce_bytes) /
                      result.allreduce_seconds * 1e-9);
    }
    report("valid", trainer.model(), splits.valid);
    report("test", trainer.model(), splits.test);

    if (args.count("save")) {
      nn::save_graphnet_file(trainer.model(), args["save"]);
      std::printf("model written to %s\n", args["save"].c_str());
    }

    if (args.count("metrics")) {
      std::ofstream mf(args["metrics"]);
      if (!mf) throw std::runtime_error("cannot write " + args["metrics"]);
      mf << reg.snapshot().to_csv();
      std::printf("metrics written to %s\n", args["metrics"].c_str());
    }
    if (args.count("trace")) {
      if (!obs::write_chrome_trace(args["trace"])) {
        throw std::runtime_error("cannot write " + args["trace"]);
      }
      std::printf("trace written to %s (%zu events)\n", args["trace"].c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
