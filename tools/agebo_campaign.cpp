// Command-line campaign runner: run any search variant on any of the four
// benchmark datasets against the simulated cluster, print a summary, and
// optionally export the evaluation history as CSV (loadable later for warm
// starts via core::load_history).
//
//   agebo_campaign --dataset covertype --variant agebo --minutes 180
//                  --workers 128 --seed 1 [--kappa 0.001] [--out hist.csv]
//                  [--warm-start prev.csv]
//
// Variants: age-1 age-2 age-4 age-8, agebo, agebo-8-lr, agebo-8-lr-bs,
//           rs-1 (random search), agebo-multinode.
//
// Fault-tolerance flags (DESIGN.md "Fault model and JobSpec API"):
//   --crash P --hang P --slow P   injected fault probabilities per attempt
//   --timeout S                   per-evaluation kill deadline, seconds
//   --retries R                   resubmissions before a job is failed
//   --straggler K                 kill attempts past K x median train time
//
// Observability (DESIGN.md §10):
//   --trace FILE.json             Chrome trace of the campaign (worker
//                                 lanes + in-flight / best-objective tracks)
//   --metrics FILE.csv            metrics registry snapshot at exit
//   --report-every N              one-line progress report every N evals
//
// Gradient communication (DESIGN.md §11): --allreduce flat|tree|ring,
// --bucket-kb N, and --no-overlap feed the surrogate's analytic step-time
// model, scaling simulated training times relative to the calibration
// default (ring + overlap). Omit them all and Table-I times are unchanged.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/args.hpp"
#include "core/analysis.hpp"
#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "obs/obs.hpp"
#include "svc/registry.hpp"

namespace {

constexpr const char* kUsage =
    "usage: agebo_campaign [--dataset covertype|airlines|albert|"
    "dionis] [--variant VARIANT] [--minutes M] [--workers W] "
    "[--seed S] [--kappa K] [--out FILE.csv] "
    "[--warm-start FILE.csv] [--crash P] [--hang P] [--slow P] "
    "[--timeout S] [--retries R] [--straggler K] "
    "[--allreduce flat|tree|ring] [--bucket-kb N] [--no-overlap] "
    "[--trace FILE.json] [--metrics FILE.csv] [--report-every N] "
    "[--checkpoint FILE] [--checkpoint-every S] [--resume FILE] "
    "[--stop-after S] [--bo-shards N] [--bo-gossip-every N] "
    "[--elastic-crash P] [--elastic-seed S] [--elastic-min-replicas N]\n"
    "variants: age-1 age-2 age-4 age-8 agebo agebo-8-lr "
    "agebo-8-lr-bs rs-1 agebo-multinode agebo-dN\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  common::ArgParser args(kUsage);
  for (const char* opt :
       {"dataset", "variant", "minutes", "workers", "seed", "kappa", "out",
        "warm-start", "crash", "hang", "slow", "timeout", "retries",
        "straggler", "allreduce", "bucket-kb", "trace", "metrics",
        "report-every", "checkpoint", "checkpoint-every", "resume",
        "stop-after", "bo-shards", "bo-gossip-every", "elastic-crash",
        "elastic-seed", "elastic-min-replicas"}) {
    args.add_option(opt);
  }
  args.add_flag("no-overlap");
  if (!args.parse(argc, argv)) return 2;
  const bool no_overlap = args.flag("no-overlap");

  const std::string dataset = args.get("dataset", "covertype");
  std::string variant = args.get("variant", "agebo");
  const double minutes = args.get_double("minutes", 180.0);
  const std::size_t workers = args.get_size("workers", 128);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double kappa = args.get_double("kappa", 0.001);

  // Decentralized BO (DESIGN.md §15): --bo-shards N shards the optimizer.
  // Because the durable path reconstructs a SearchConfig from the variant
  // name alone on resume, sharding is folded into the variant: --variant
  // agebo --bo-shards 4 is exactly --variant agebo-d4.
  const std::size_t bo_shards = args.get_size("bo-shards", 0);
  if (bo_shards > 0) {
    if (variant != "agebo") {
      std::fprintf(stderr, "--bo-shards requires --variant agebo\n");
      return 2;
    }
    variant = "agebo-d" + std::to_string(bo_shards);
  }

  core::SearchConfig cfg;
  try {
    cfg = core::config_by_name(variant, seed, kappa);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "unknown --variant %s\n", variant.c_str());
    args.print_usage();
    return 2;
  }
  if (args.has("bo-gossip-every")) {
    if (cfg.bo_shards == 0) {
      std::fprintf(stderr, "--bo-gossip-every requires a sharded variant\n");
      return 2;
    }
    cfg.bo_gossip_every = args.get_size("bo-gossip-every", 8);
  }
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.eval_timeout_seconds = args.get_double("timeout", 0.0);
  cfg.eval_max_retries = args.get_size("retries", 0);

  // Elastic-training simulation: replica crashes inside evaluations shrink
  // the training world (degraded results) instead of failing the job.
  eval::ElasticSimConfig elastic;
  elastic.crash_prob = args.get_double("elastic-crash", 0.0);
  elastic.enabled = elastic.crash_prob > 0.0;
  elastic.seed = args.get_u64("elastic-seed", seed * 1481 + 7);
  elastic.min_replicas = args.get_size("elastic-min-replicas", 1);

  exec::FaultConfig faults;
  faults.crash_prob = args.get_double("crash", 0.0);
  faults.hang_prob = args.get_double("hang", 0.0);
  faults.slow_prob = args.get_double("slow", 0.0);
  faults.seed = seed * 977 + 13;
  exec::RetryPolicy policy;
  policy.straggler_factor = args.get_double("straggler", 0.0);
  // Backoff in cluster terms: a minute before the first resubmission.
  policy.backoff_base_seconds = 60.0;
  policy.backoff_max_seconds = 600.0;

  // Durable mode (DESIGN.md §14): any checkpoint/resume/stop flag routes
  // the run through a single-campaign CampaignRegistry so the whole search
  // — population, surrogate tell log, in-flight simulator state — can be
  // written to disk and continued by a later invocation.
  const bool durable = args.has("checkpoint") || args.has("resume") ||
                       args.has("checkpoint-every") || args.has("stop-after");
  if (durable) {
    // --bo-gossip-every cannot ride along: the durable path rebuilds the
    // config from the stored variant name alone on resume, and a non-default
    // gossip cadence is not part of "agebo-dN".
    for (const char* unsupported :
         {"warm-start", "allreduce", "bucket-kb", "report-every",
          "bo-gossip-every"}) {
      if (args.has(unsupported)) {
        std::fprintf(stderr,
                     "--%s is not supported together with "
                     "--checkpoint/--resume\n",
                     unsupported);
        return 2;
      }
    }
    if (no_overlap) {
      std::fprintf(stderr,
                   "--no-overlap is not supported together with "
                   "--checkpoint/--resume\n");
      return 2;
    }
    try {
      svc::SvcConfig svc_cfg;
      svc_cfg.workers = workers;
      svc_cfg.job_overhead_seconds = 90.0;
      svc_cfg.policy = policy;
      svc_cfg.faults = faults;
      svc_cfg.checkpoint_path = args.get("checkpoint", "");
      svc_cfg.checkpoint_every_seconds = args.get_double("checkpoint-every", 0.0);

      nas::SearchSpace space;
      svc::CampaignRegistry registry(svc_cfg, space);
      if (args.has("resume")) {
        registry.load_checkpoint(args.get("resume", ""));
        std::printf("resumed from %s at t=%.1fs\n",
                    args.get("resume", "").c_str(), registry.now());
      } else {
        svc::CampaignSpec spec;
        spec.name = "campaign";
        spec.tenant = "default";
        spec.kind = svc::CampaignKind::kAgebo;
        spec.dataset = dataset;
        spec.variant = variant;
        spec.wall_time_seconds = minutes * 60.0;
        spec.seed = seed;
        spec.kappa = kappa;
        spec.timeout_seconds = cfg.eval_timeout_seconds;
        spec.max_retries = cfg.eval_max_retries;
        if (elastic.enabled) {
          spec.elastic_crash = elastic.crash_prob;
          spec.elastic_seed = elastic.seed;
          spec.elastic_min_replicas = elastic.min_replicas;
        }
        registry.add_campaign(spec);
      }

      const bool completed = registry.run(args.get_double("stop-after", 0.0));
      const svc::Campaign& campaign = registry.campaign(0);
      const auto result = campaign.result();
      const auto stats = core::run_stats(result);
      std::printf("%s at t=%.1fs: evals=%zu best=%.4f\n",
                  completed ? "completed" : "stopped", registry.now(),
                  stats.n_evaluations, stats.best_accuracy);
      std::printf("node utilization:   %.1f%%\n",
                  100.0 * registry.executor().utilization().fraction());
      if (args.has("out")) {
        core::save_history_file(result, args.get("out", ""));
        std::printf("history written to %s\n", args.get("out", "").c_str());
      }
      if (args.has("metrics")) {
        const std::string path = args.get("metrics", "");
        std::ofstream mf(path);
        if (!mf) throw std::runtime_error("cannot write " + path);
        mf << obs::Registry::global().snapshot().to_csv();
      }
      if (args.has("trace")) {
        const std::string path = args.get("trace", "");
        if (!obs::write_chrome_trace(path)) {
          throw std::runtime_error("cannot write " + path);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  nas::SearchSpace space;
  try {
    if (args.has("warm-start")) {
      cfg.warm_start = core::load_history_file(args.get("warm-start", ""), space);
      std::printf("warm start: %zu prior evaluations loaded\n",
                  cfg.warm_start.size());
    }

    eval::SurrogateEvaluator evaluator(space, eval::profile_by_name(dataset));
    if (args.has("allreduce") || args.has("bucket-kb") || no_overlap) {
      dp::AllreduceCommSpec comm;
      comm.strategy = dp::AllreduceStrategy::kRing;
      comm.overlap = !no_overlap;
      const std::string strat = args.get("allreduce", "ring");
      if (strat == "flat") {
        comm.strategy = dp::AllreduceStrategy::kFlat;
      } else if (strat == "tree") {
        comm.strategy = dp::AllreduceStrategy::kTree;
      } else if (strat != "ring") {
        std::fprintf(stderr, "bad --allreduce %s (flat|tree|ring)\n",
                     strat.c_str());
        args.print_usage();
        return 2;
      }
      comm.bucket_bytes =
          std::max<std::size_t>(1, args.get_size("bucket-kb", 1024)) * 1024;
      evaluator.set_comm_spec(comm);
    }
    if (elastic.enabled) evaluator.set_elastic(elastic);
    exec::SimulatedExecutor executor(workers, 90.0, policy, faults);

    const auto report_every = args.get_size("report-every", 0);
    std::size_t n_done = 0, n_failed_so_far = 0;
    double best_so_far = 0.0;
    if (report_every > 0) {
      cfg.on_result = [&](const core::EvalRecord& rec) {
        ++n_done;
        if (rec.failed) ++n_failed_so_far;
        if (rec.objective > best_so_far) best_so_far = rec.objective;
        if (n_done % report_every == 0) {
          const double mins = executor.now() / 60.0;
          const double rate = mins > 0.0 ? static_cast<double>(n_done) / mins : 0.0;
          std::printf(
              "[t=%7.1fm] evals=%-5zu (%5.1f/min) best=%.4f util=%5.1f%% "
              "failed=%4.1f%%\n",
              mins, n_done, rate, best_so_far,
              100.0 * executor.utilization().fraction(),
              100.0 * static_cast<double>(n_failed_so_far) /
                  static_cast<double>(n_done));
        }
      };
    }

    core::AgeboSearch search(space, evaluator, executor, cfg);
    const auto result = search.run();
    const auto stats = core::run_stats(result);

    std::size_t n_failed = 0, n_retried = 0;
    for (const auto& rec : result.history) {
      if (rec.failed) ++n_failed;
      if (rec.attempts > 1) ++n_retried;
    }

    std::printf("dataset=%s variant=%s workers=%zu minutes=%.0f seed=%llu\n",
                dataset.c_str(), variant.c_str(), workers, minutes,
                static_cast<unsigned long long>(seed));
    std::printf("evaluations:        %zu\n", stats.n_evaluations);
    std::printf("mean train minutes: %.2f +/- %.2f\n",
                stats.mean_train_minutes, stats.sd_train_minutes);
    std::printf("best accuracy:      %.4f\n", stats.best_accuracy);
    std::printf("node utilization:   %.1f%%\n",
                100.0 * result.utilization.fraction());
    if (n_failed > 0 || n_retried > 0) {
      std::printf("failed jobs:        %zu (%zu retried)\n", n_failed,
                  n_retried);
    }
    if (!result.history.empty()) {
      const auto& best = result.best();
      std::printf("best config:        bs1=%.0f lr1=%.6f n=%.0f\n",
                  best.config.hparams.at(0), best.config.hparams.at(1),
                  best.config.hparams.at(2));
      std::printf("best architecture:\n%s",
                  space.describe(best.config.genome).c_str());
    }

    if (args.has("out")) {
      core::save_history_file(result, args.get("out", ""));
      std::printf("history written to %s\n", args.get("out", "").c_str());
    }

    obs::Registry::global().gauge("exec.utilization")
        .set(result.utilization.fraction());
    if (args.has("metrics")) {
      const std::string path = args.get("metrics", "");
      std::ofstream mf(path);
      if (!mf) throw std::runtime_error("cannot write " + path);
      mf << obs::Registry::global().snapshot().to_csv();
      std::printf("metrics written to %s\n", path.c_str());
    }
    if (args.has("trace")) {
      const std::string path = args.get("trace", "");
      if (!obs::write_chrome_trace(path)) {
        throw std::runtime_error("cannot write " + path);
      }
      std::printf("trace written to %s (%zu events)\n", path.c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
