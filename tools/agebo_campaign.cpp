// Command-line campaign runner: run any search variant on any of the four
// benchmark datasets against the simulated cluster, print a summary, and
// optionally export the evaluation history as CSV (loadable later for warm
// starts via core::load_history).
//
//   agebo_campaign --dataset covertype --variant agebo --minutes 180
//                  --workers 128 --seed 1 [--kappa 0.001] [--out hist.csv]
//                  [--warm-start prev.csv]
//
// Variants: age-1 age-2 age-4 age-8, agebo, agebo-8-lr, agebo-8-lr-bs,
//           rs-1 (random search), agebo-multinode.
//
// Fault-tolerance flags (DESIGN.md "Fault model and JobSpec API"):
//   --crash P --hang P --slow P   injected fault probabilities per attempt
//   --timeout S                   per-evaluation kill deadline, seconds
//   --retries R                   resubmissions before a job is failed
//   --straggler K                 kill attempts past K x median train time
//
// Observability (DESIGN.md §10):
//   --trace FILE.json             Chrome trace of the campaign (worker
//                                 lanes + in-flight / best-objective tracks)
//   --metrics FILE.csv            metrics registry snapshot at exit
//   --report-every N              one-line progress report every N evals
//
// Gradient communication (DESIGN.md §11): --allreduce flat|tree|ring,
// --bucket-kb N, and --no-overlap feed the surrogate's analytic step-time
// model, scaling simulated training times relative to the calibration
// default (ring + overlap). Omit them all and Table-I times are unchanged.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "core/analysis.hpp"
#include "core/history_io.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"
#include "obs/obs.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: agebo_campaign [--dataset covertype|airlines|albert|"
               "dionis] [--variant VARIANT] [--minutes M] [--workers W] "
               "[--seed S] [--kappa K] [--out FILE.csv] "
               "[--warm-start FILE.csv] [--crash P] [--hang P] [--slow P] "
               "[--timeout S] [--retries R] [--straggler K] "
               "[--allreduce flat|tree|ring] [--bucket-kb N] [--no-overlap] "
               "[--trace FILE.json] [--metrics FILE.csv] [--report-every N]\n"
               "variants: age-1 age-2 age-4 age-8 agebo agebo-8-lr "
               "agebo-8-lr-bs rs-1 agebo-multinode\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  std::map<std::string, std::string> args;
  bool no_overlap = false;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--no-overlap") == 0) {
      no_overlap = true;
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      usage();
      return 2;
    }
    args[argv[i] + 2] = argv[i + 1];
    i += 2;
  }
  auto get = [&](const std::string& key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  const std::string dataset = get("dataset", "covertype");
  const std::string variant = get("variant", "agebo");
  const double minutes = std::atof(get("minutes", "180").c_str());
  const auto workers =
      static_cast<std::size_t>(std::atoi(get("workers", "128").c_str()));
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(get("seed", "1").c_str()));
  const double kappa = std::atof(get("kappa", "0.001").c_str());

  core::SearchConfig cfg;
  if (variant == "agebo") {
    cfg = core::agebo_config(seed, kappa);
  } else if (variant == "agebo-8-lr") {
    cfg = core::agebo_8_lr_config(seed);
  } else if (variant == "agebo-8-lr-bs") {
    cfg = core::agebo_8_lr_bs_config(seed);
  } else if (variant == "agebo-multinode") {
    cfg = core::agebo_multinode_config(seed);
  } else if (variant.rfind("age-", 0) == 0) {
    cfg = core::age_config(static_cast<std::size_t>(std::atoi(variant.c_str() + 4)), seed);
  } else if (variant.rfind("rs-", 0) == 0) {
    cfg = core::random_search_config(
        static_cast<std::size_t>(std::atoi(variant.c_str() + 3)), seed);
  } else {
    usage();
    return 2;
  }
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.eval_timeout_seconds = std::atof(get("timeout", "0").c_str());
  cfg.eval_max_retries =
      static_cast<std::size_t>(std::atoi(get("retries", "0").c_str()));

  exec::FaultConfig faults;
  faults.crash_prob = std::atof(get("crash", "0").c_str());
  faults.hang_prob = std::atof(get("hang", "0").c_str());
  faults.slow_prob = std::atof(get("slow", "0").c_str());
  faults.seed = seed * 977 + 13;
  exec::RetryPolicy policy;
  policy.straggler_factor = std::atof(get("straggler", "0").c_str());
  // Backoff in cluster terms: a minute before the first resubmission.
  policy.backoff_base_seconds = 60.0;
  policy.backoff_max_seconds = 600.0;

  nas::SearchSpace space;
  try {
    if (args.count("warm-start")) {
      cfg.warm_start = core::load_history_file(args["warm-start"], space);
      std::printf("warm start: %zu prior evaluations loaded\n",
                  cfg.warm_start.size());
    }

    eval::SurrogateEvaluator evaluator(space, eval::profile_by_name(dataset));
    if (args.count("allreduce") || args.count("bucket-kb") || no_overlap) {
      dp::AllreduceCommSpec comm;
      comm.strategy = dp::AllreduceStrategy::kRing;
      comm.overlap = !no_overlap;
      const std::string strat = get("allreduce", "ring");
      if (strat == "flat") {
        comm.strategy = dp::AllreduceStrategy::kFlat;
      } else if (strat == "tree") {
        comm.strategy = dp::AllreduceStrategy::kTree;
      } else if (strat != "ring") {
        usage();
        return 2;
      }
      comm.bucket_bytes =
          static_cast<std::size_t>(
              std::max(1L, std::atol(get("bucket-kb", "1024").c_str()))) *
          1024;
      evaluator.set_comm_spec(comm);
    }
    exec::SimulatedExecutor executor(workers, 90.0, policy, faults);

    const auto report_every = static_cast<std::size_t>(
        std::atoi(get("report-every", "0").c_str()));
    std::size_t n_done = 0, n_failed_so_far = 0;
    double best_so_far = 0.0;
    if (report_every > 0) {
      cfg.on_result = [&](const core::EvalRecord& rec) {
        ++n_done;
        if (rec.failed) ++n_failed_so_far;
        if (rec.objective > best_so_far) best_so_far = rec.objective;
        if (n_done % report_every == 0) {
          const double mins = executor.now() / 60.0;
          const double rate = mins > 0.0 ? static_cast<double>(n_done) / mins : 0.0;
          std::printf(
              "[t=%7.1fm] evals=%-5zu (%5.1f/min) best=%.4f util=%5.1f%% "
              "failed=%4.1f%%\n",
              mins, n_done, rate, best_so_far,
              100.0 * executor.utilization().fraction(),
              100.0 * static_cast<double>(n_failed_so_far) /
                  static_cast<double>(n_done));
        }
      };
    }

    core::AgeboSearch search(space, evaluator, executor, cfg);
    const auto result = search.run();
    const auto stats = core::run_stats(result);

    std::size_t n_failed = 0, n_retried = 0;
    for (const auto& rec : result.history) {
      if (rec.failed) ++n_failed;
      if (rec.attempts > 1) ++n_retried;
    }

    std::printf("dataset=%s variant=%s workers=%zu minutes=%.0f seed=%llu\n",
                dataset.c_str(), variant.c_str(), workers, minutes,
                static_cast<unsigned long long>(seed));
    std::printf("evaluations:        %zu\n", stats.n_evaluations);
    std::printf("mean train minutes: %.2f +/- %.2f\n",
                stats.mean_train_minutes, stats.sd_train_minutes);
    std::printf("best accuracy:      %.4f\n", stats.best_accuracy);
    std::printf("node utilization:   %.1f%%\n",
                100.0 * result.utilization.fraction());
    if (n_failed > 0 || n_retried > 0) {
      std::printf("failed jobs:        %zu (%zu retried)\n", n_failed,
                  n_retried);
    }
    if (!result.history.empty()) {
      const auto& best = result.best();
      std::printf("best config:        bs1=%.0f lr1=%.6f n=%.0f\n",
                  best.config.hparams.at(0), best.config.hparams.at(1),
                  best.config.hparams.at(2));
      std::printf("best architecture:\n%s",
                  space.describe(best.config.genome).c_str());
    }

    if (args.count("out")) {
      core::save_history_file(result, args["out"]);
      std::printf("history written to %s\n", args["out"].c_str());
    }

    obs::Registry::global().gauge("exec.utilization")
        .set(result.utilization.fraction());
    if (args.count("metrics")) {
      std::ofstream mf(args["metrics"]);
      if (!mf) throw std::runtime_error("cannot write " + args["metrics"]);
      mf << obs::Registry::global().snapshot().to_csv();
      std::printf("metrics written to %s\n", args["metrics"].c_str());
    }
    if (args.count("trace")) {
      if (!obs::write_chrome_trace(args["trace"])) {
        throw std::runtime_error("cannot write " + args["trace"]);
      }
      std::printf("trace written to %s (%zu events)\n", args["trace"].c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
