// Multi-tenant campaign service runner (DESIGN.md §14): load a manifest
// declaring tenants and campaigns, run them all concurrently on ONE shared
// simulated cluster under fair-share admission, print per-campaign
// summaries and the per-tenant utilization report, and optionally
// checkpoint/resume the whole service.
//
//   agebo_svc --manifest svc.txt [--workers W] [--overhead S]
//             [--checkpoint FILE] [--checkpoint-every S] [--resume FILE]
//             [--stop-after S] [--out FILE.csv]
//             [--trace FILE.json] [--metrics FILE.csv]
//
// --stop-after kills the service at S executor-seconds (writing a final
// checkpoint when --checkpoint is set) — with --resume pointing at that
// checkpoint, a second invocation continues the run and, on the simulated
// executor, finishes bit-identically to an uninterrupted one. --out writes
// one CSV row per campaign (name, tenant, evals, best at full precision),
// which the svc ctest chain compares byte-for-byte across kill+resume.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/args.hpp"
#include "nas/search_space.hpp"
#include "obs/obs.hpp"
#include "svc/manifest.hpp"
#include "svc/registry.hpp"

namespace {

constexpr const char* kUsage =
    "usage: agebo_svc --manifest FILE [--workers W] [--overhead S] "
    "[--checkpoint FILE] [--checkpoint-every S] [--resume FILE] "
    "[--stop-after S] [--out FILE.csv] [--trace FILE.json] "
    "[--metrics FILE.csv]\n"
    "manifest lines: tenant <name> [priority=P] [max-in-flight=N] "
    "[node-hours=H]\n"
    "                campaign <name> tenant=T [kind=agebo|sha] "
    "[dataset=D] [variant=V] [minutes=M] [seed=S] [kappa=K] "
    "[bracket=B] [eta=E] [rungs=R]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace agebo;

  common::ArgParser args(kUsage);
  for (const char* opt : {"manifest", "workers", "overhead", "checkpoint",
                          "checkpoint-every", "resume", "stop-after", "out",
                          "trace", "metrics"}) {
    args.add_option(opt);
  }
  if (!args.parse(argc, argv)) return 2;

  if (!args.has("manifest")) {
    std::fprintf(stderr, "agebo_svc: --manifest is required\n");
    args.print_usage();
    return 2;
  }

  try {
    const svc::Manifest manifest = svc::load_manifest(args.get("manifest", ""));

    svc::SvcConfig cfg;
    cfg.workers = args.get_size("workers", 32);
    cfg.job_overhead_seconds = args.get_double("overhead", 90.0);
    cfg.checkpoint_path = args.get("checkpoint", "");
    cfg.checkpoint_every_seconds = args.get_double("checkpoint-every", 0.0);
    // Shared-cluster retry posture mirrors agebo_campaign's defaults.
    cfg.policy.backoff_base_seconds = 60.0;
    cfg.policy.backoff_max_seconds = 600.0;

    nas::SearchSpace space;
    svc::CampaignRegistry registry(cfg, space);

    if (args.has("resume")) {
      // The checkpoint carries the tenants and campaigns; the manifest is
      // still parsed above so a drifted manifest/checkpoint pair fails
      // loudly on the manifest side too.
      registry.load_checkpoint(args.get("resume", ""));
      std::printf("resumed %zu campaigns from %s at t=%.1fs\n",
                  registry.n_campaigns(), args.get("resume", "").c_str(),
                  registry.now());
    } else {
      for (const auto& t : manifest.tenants) registry.set_tenant(t);
      for (const auto& c : manifest.campaigns) registry.add_campaign(c);
    }

    const double stop_after = args.get_double("stop-after", 0.0);
    const bool completed = registry.run(stop_after);

    std::printf("service %s at t=%.1fs (%zu campaigns)\n",
                completed ? "completed" : "stopped", registry.now(),
                registry.n_campaigns());
    for (std::size_t i = 0; i < registry.n_campaigns(); ++i) {
      const svc::Campaign& c = registry.campaign(i);
      double best = 0.0;
      for (const auto& rec : c.history()) {
        if (!rec.failed && rec.objective > best) best = rec.objective;
      }
      std::printf("campaign %-16s tenant=%-10s kind=%-5s evals=%-5zu "
                  "best=%.4f%s\n",
                  c.spec().name.c_str(), c.spec().tenant.c_str(),
                  c.spec().kind == svc::CampaignKind::kAgebo ? "agebo" : "sha",
                  c.history().size(), best,
                  registry.campaign_done(i) ? "" : " (in progress)");
    }
    std::printf("tenant utilization:\n");
    for (const auto& u : registry.tenant_usage()) {
      std::printf(
          "  tenant %-10s priority=%-4.1f consumed=%.1f node-seconds"
          "%s in-flight=%zu queued=%zu\n",
          u.name.c_str(), u.priority, u.consumed_node_seconds,
          u.node_seconds_budget > 0.0
              ? (" (budget " + std::to_string(u.node_seconds_budget) + ")")
                    .c_str()
              : "",
          u.in_flight, u.queued);
    }

    if (args.has("out")) {
      const std::string path = args.get("out", "");
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot write " + path);
      os.precision(17);
      os << "campaign,tenant,evals,best\n";
      for (std::size_t i = 0; i < registry.n_campaigns(); ++i) {
        const svc::Campaign& c = registry.campaign(i);
        double best = 0.0;
        for (const auto& rec : c.history()) {
          if (!rec.failed && rec.objective > best) best = rec.objective;
        }
        os << c.spec().name << ',' << c.spec().tenant << ','
           << c.history().size() << ',' << best << '\n';
      }
      std::printf("summary written to %s\n", path.c_str());
    }

    if (args.has("metrics")) {
      const std::string path = args.get("metrics", "");
      std::ofstream mf(path);
      if (!mf) throw std::runtime_error("cannot write " + path);
      mf << obs::Registry::global().snapshot().to_csv();
      std::printf("metrics written to %s\n", path.c_str());
    }
    if (args.has("trace")) {
      const std::string path = args.get("trace", "");
      if (!obs::write_chrome_trace(path)) {
        throw std::runtime_error("cannot write " + path);
      }
      std::printf("trace written to %s (%zu events)\n", path.c_str(),
                  obs::trace_event_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
