// Shared driver code for the table/figure benches: run one simulated search
// campaign (the paper's 129-node / 3-hour Theta configuration) against the
// calibrated surrogate, and print trajectories in a gnuplot-friendly form.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"

namespace agebo::benchutil {

/// One agebo-bench-search-v1 record: manager-side BO throughput at one
/// simulated scale. The flat field names follow the bench_diff convention
/// (kernel/m/k/n key, blocked_gflops = the gated rate): m = simulated
/// workers, k = shards (0 = centralized), n = gossip cadence, and
/// blocked_gflops = ask+tell evaluations/s. Extra fields (best_objective)
/// are informational; bench_diff ignores them.
struct SearchBenchRow {
  std::string kernel;        ///< "bo-central" or "bo-sharded"
  std::size_t workers = 0;   ///< m
  std::size_t shards = 0;    ///< k (0 = centralized)
  std::size_t gossip = 0;    ///< n (gossip_every; 0 for centralized)
  double evals_per_second = 0.0;
  double speedup = 1.0;      ///< vs centralized at the same worker count
  double best_objective = 0.0;
};

/// Emit rows in the one-record-per-line JSON dialect every bench harness
/// shares (tools/bench_diff.cpp parses exactly this).
inline void write_search_bench_json(std::ostream& os,
                                    const std::vector<SearchBenchRow>& rows) {
  os << "{\n  \"schema\": \"agebo-bench-search-v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SearchBenchRow& r = rows[i];
    os << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.workers
       << ", \"k\": " << r.shards << ", \"n\": " << r.gossip
       << ", \"blocked_gflops\": " << r.evals_per_second
       << ", \"speedup\": " << r.speedup
       << ", \"best_objective\": " << r.best_objective << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

struct CampaignSpec {
  std::string dataset = "covertype";
  std::size_t n_workers = 128;  ///< the paper's 128 worker nodes
  double wall_minutes = 180.0;  ///< the paper's 3-hour budget
  /// Per-evaluation launch cost (Balsam + mpirun + model build); yields the
  /// paper's ~94% node utilization.
  double job_overhead_seconds = 90.0;
};

struct CampaignOutput {
  core::SearchResult result;
  std::string variant;
};

/// Run one search variant in simulation. The SearchConfig's wall time is
/// overridden by spec.wall_minutes.
inline CampaignOutput run_campaign(const nas::SearchSpace& space,
                                   core::SearchConfig cfg,
                                   const CampaignSpec& spec) {
  eval::SurrogateEvaluator evaluator(space,
                                     eval::profile_by_name(spec.dataset));
  exec::SimulatedExecutor executor(spec.n_workers, spec.job_overhead_seconds);
  cfg.wall_time_seconds = spec.wall_minutes * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  CampaignOutput out;
  out.variant = core::variant_name(cfg);
  out.result = search.run();
  return out;
}

/// Print a best-so-far trajectory as "minutes accuracy" pairs.
inline void print_trajectory(const std::string& label,
                             const core::SearchResult& result,
                             std::size_t max_points = 24) {
  const auto series = core::best_so_far(result);
  std::printf("# trajectory %s (%zu improvements, %zu evaluations)\n",
              label.c_str(), series.size(), result.history.size());
  const std::size_t stride =
      series.size() > max_points ? series.size() / max_points : 1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i % stride != 0 && i + 1 != series.size()) continue;
    std::printf("%s  %7.1f  %.4f\n", label.c_str(),
                series[i].time_seconds / 60.0, series[i].value);
  }
}

/// Print a cumulative-count series as "minutes count" pairs.
inline void print_count_series(const std::string& label,
                               const std::vector<core::TimeSeriesPoint>& series,
                               std::size_t max_points = 16) {
  const std::size_t stride =
      series.size() > max_points ? series.size() / max_points : 1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i % stride != 0 && i + 1 != series.size()) continue;
    std::printf("%s  %7.1f  %5.0f\n", label.c_str(),
                series[i].time_seconds / 60.0, series[i].value);
  }
}

}  // namespace agebo::benchutil
