// Shared driver code for the table/figure benches: run one simulated search
// campaign (the paper's 129-node / 3-hour Theta configuration) against the
// calibrated surrogate, and print trajectories in a gnuplot-friendly form.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "eval/surrogate.hpp"
#include "exec/sim_executor.hpp"
#include "nas/search_space.hpp"

namespace agebo::benchutil {

struct CampaignSpec {
  std::string dataset = "covertype";
  std::size_t n_workers = 128;  ///< the paper's 128 worker nodes
  double wall_minutes = 180.0;  ///< the paper's 3-hour budget
  /// Per-evaluation launch cost (Balsam + mpirun + model build); yields the
  /// paper's ~94% node utilization.
  double job_overhead_seconds = 90.0;
};

struct CampaignOutput {
  core::SearchResult result;
  std::string variant;
};

/// Run one search variant in simulation. The SearchConfig's wall time is
/// overridden by spec.wall_minutes.
inline CampaignOutput run_campaign(const nas::SearchSpace& space,
                                   core::SearchConfig cfg,
                                   const CampaignSpec& spec) {
  eval::SurrogateEvaluator evaluator(space,
                                     eval::profile_by_name(spec.dataset));
  exec::SimulatedExecutor executor(spec.n_workers, spec.job_overhead_seconds);
  cfg.wall_time_seconds = spec.wall_minutes * 60.0;
  core::AgeboSearch search(space, evaluator, executor, cfg);
  CampaignOutput out;
  out.variant = core::variant_name(cfg);
  out.result = search.run();
  return out;
}

/// Print a best-so-far trajectory as "minutes accuracy" pairs.
inline void print_trajectory(const std::string& label,
                             const core::SearchResult& result,
                             std::size_t max_points = 24) {
  const auto series = core::best_so_far(result);
  std::printf("# trajectory %s (%zu improvements, %zu evaluations)\n",
              label.c_str(), series.size(), result.history.size());
  const std::size_t stride =
      series.size() > max_points ? series.size() / max_points : 1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i % stride != 0 && i + 1 != series.size()) continue;
    std::printf("%s  %7.1f  %.4f\n", label.c_str(),
                series[i].time_seconds / 60.0, series[i].value);
  }
}

/// Print a cumulative-count series as "minutes count" pairs.
inline void print_count_series(const std::string& label,
                               const std::vector<core::TimeSeriesPoint>& series,
                               std::size_t max_points = 16) {
  const std::size_t stride =
      series.size() > max_points ? series.size() / max_points : 1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i % stride != 0 && i + 1 != series.size()) continue;
    std::printf("%s  %7.1f  %5.0f\n", label.c_str(),
                series[i].time_seconds / 60.0, series[i].value);
  }
}

}  // namespace agebo::benchutil
