// Ablations for the design choices called out in DESIGN.md §6:
//   1. Allreduce strategy (flat vs tree): identical convergence, different
//      reduction structure.
//   2. Constant-liar lie value (mean vs min vs max): batch diversity and
//      final search quality.
//   3. Surrogate forest size vs ask() latency: the BO-overhead trade-off the
//      paper motivates ("failure to generate quickly hurts utilization").
//   4. Aging vs elitist (remove-worst) population replacement in AgE.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "bo/optimizer.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "nas/arch_metrics.hpp"
#include "nn/graph_net.hpp"

namespace {

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace agebo;

  std::printf("=== Ablation 1: allreduce strategy (flat vs tree) ===\n");
  {
    auto spec = data::covertype_spec(0.003, 7);
    const auto dataset = data::make_classification(spec);
    Rng split_rng(3);
    auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
    data::standardize(splits);

    nn::GraphSpec gspec;
    gspec.input_dim = dataset.n_features;
    gspec.output_dim = dataset.n_classes;
    for (std::size_t i = 0; i < 3; ++i) {
      nn::NodeSpec node;
      node.units = 48;
      node.act = nn::Activation::kRelu;
      gspec.nodes.push_back(node);
    }
    for (auto strategy : {dp::AllreduceStrategy::kFlat, dp::AllreduceStrategy::kTree}) {
      dp::DataParallelConfig cfg;
      cfg.n_procs = 4;
      cfg.lr1 = 0.004;
      cfg.bs1 = 64;
      cfg.epochs = 5;
      cfg.allreduce = strategy;
      dp::DataParallelTrainer trainer(gspec, cfg);
      const auto result = trainer.fit(splits.train, splits.valid);
      std::printf("  %s: best valid %.4f, %.2fs wall, replica divergence %g\n",
                  strategy == dp::AllreduceStrategy::kFlat ? "flat" : "tree",
                  result.best_valid_accuracy, result.wall_seconds,
                  trainer.max_replica_divergence());
    }
  }

  std::printf("\n=== Ablation 2: constant-liar lie value ===\n");
  {
    nas::SearchSpace space;
    benchutil::CampaignSpec cspec;
    cspec.wall_minutes = 60.0;
    const char* names[] = {"CL-mean (paper)", "CL-min", "CL-max"};
    const bo::LiarStrategy liars[] = {bo::LiarStrategy::kMean,
                                      bo::LiarStrategy::kMin,
                                      bo::LiarStrategy::kMax};
    for (int i = 0; i < 3; ++i) {
      auto cfg = core::agebo_config(55);
      cfg.bo.liar = liars[i];
      const auto out = benchutil::run_campaign(space, cfg, cspec);
      std::printf("  %-16s best %.4f after %zu evaluations\n", names[i],
                  out.result.best_objective, out.result.history.size());
    }
  }

  std::printf("\n=== Ablation 2b: acquisition function (UCB vs EI) ===\n");
  {
    nas::SearchSpace space;
    benchutil::CampaignSpec cspec;
    cspec.wall_minutes = 60.0;
    const char* names[] = {"UCB kappa=0.001 (paper)", "Expected improvement"};
    const bo::Acquisition acqs[] = {bo::Acquisition::kUcb,
                                    bo::Acquisition::kExpectedImprovement};
    for (int i = 0; i < 2; ++i) {
      auto cfg = core::agebo_config(56);
      cfg.bo.acquisition = acqs[i];
      const auto out = benchutil::run_campaign(space, cfg, cspec);
      std::printf("  %-24s best %.4f after %zu evaluations\n", names[i],
                  out.result.best_objective, out.result.history.size());
    }
  }

  std::printf("\n=== Ablation 2c: random search vs aging evolution ===\n");
  {
    nas::SearchSpace space;
    benchutil::CampaignSpec cspec;
    cspec.wall_minutes = 120.0;
    const auto rs = benchutil::run_campaign(
        space, core::random_search_config(4, 57), cspec);
    const auto age = benchutil::run_campaign(space, core::age_config(4, 57), cspec);
    std::printf("  %-16s best %.4f after %zu evaluations\n", "random search",
                rs.result.best_objective, rs.result.history.size());
    std::printf("  %-16s best %.4f after %zu evaluations\n", "aging evolution",
                age.result.best_objective, age.result.history.size());
  }

  std::printf("\n=== Ablation 3: surrogate size vs ask() latency ===\n");
  {
    auto space = bo::ParamSpace::paper_space();
    Rng rng(5);
    for (std::size_t trees : {10u, 25u, 50u, 100u}) {
      bo::BoConfig cfg;
      cfg.n_trees = trees;
      bo::AskTellOptimizer opt(space, cfg);
      // Seed with 200 observations.
      std::vector<bo::Point> pts;
      std::vector<double> ys;
      for (int i = 0; i < 200; ++i) {
        pts.push_back(space.sample(rng));
        ys.push_back(rng.uniform(0.8, 0.93));
      }
      opt.tell(pts, ys);
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t batch = 16;
      (void)opt.ask(batch);
      const double dt = seconds(t0);
      std::printf("  %3zu trees: ask(%zu) took %.1f ms (%.2f ms/config)\n",
                  trees, batch, 1e3 * dt, 1e3 * dt / batch);
    }
  }

  std::printf("\n=== Ablation 4: aging vs elitist replacement (AgE-4, "
              "Covertype) ===\n");
  {
    nas::SearchSpace space;
    benchutil::CampaignSpec cspec;
    cspec.wall_minutes = 90.0;
    for (auto policy : {core::Replacement::kAging, core::Replacement::kWorst}) {
      auto cfg = core::age_config(4, 66);
      cfg.replacement = policy;
      const auto out = benchutil::run_campaign(space, cfg, cspec);

      // Diversity of the *trailing* 100 evaluations — an aging population's
      // churn keeps this higher than elitist retention does.
      std::vector<nas::Genome> tail;
      const auto& h = out.result.history;
      for (std::size_t i = h.size() >= 100 ? h.size() - 100 : 0; i < h.size();
           ++i) {
        tail.push_back(h[i].config.genome);
      }
      const auto div = nas::population_diversity(tail);
      std::printf("  %-8s best %.4f after %zu evaluations; tail diversity: "
                  "%zu unique, mean hamming %.1f\n",
                  policy == core::Replacement::kAging ? "aging" : "elitist",
                  out.result.best_objective, out.result.history.size(),
                  div.n_unique, div.mean_hamming);
    }
  }
  return 0;
}
