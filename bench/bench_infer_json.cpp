// Perf-regression harness for the serving path (DESIGN.md §12–13): builds
// representative search-space architectures (covertype-shaped: 54 features
// in, 7 classes out), freezes each into a model artifact, and times three
// deployment paths — the naive per-row baseline (one GraphNet::forward +
// softmax per request row), the fp32 InferenceEngine's batched
// predict_batch, and the calibrated int8 engine — at serving batch sizes.
// Emits machine-readable BENCH_infer.json.
//
// All paths end at class probabilities written to the same caller buffer.
// The fp32 engine replays the identical kernel entry points the network
// uses, so its gap vs naive is purely the batching win; the int8 rows then
// measure the quantized kernels against the already-batched fp32 engine,
// so their speedup is purely the int8 arithmetic win.
//
// The JSON uses the agebo-bench-infer-v2 schema, mapped onto the record
// fields tools/bench_diff already parses. fp32 rows (kernel = architecture
// name): naive_gflops = per-row predictions/s, blocked_gflops = batched
// predictions/s, speedup = batched vs per-row. int8 rows (kernel =
// architecture name + "-int8"): naive_gflops = fp32 batched predictions/s,
// blocked_gflops = int8 batched predictions/s, speedup = int8 vs fp32.
// m = batch size, k = parameter count, n = n_classes throughout.
//
// With --check it exits nonzero unless (a) fp32 engine logits are bitwise
// identical to GraphNet::forward on every architecture, (b) int8 logits
// are run-to-run deterministic, (c) the fp32 batched path is >= 3x the
// per-row baseline at every batch >= 64 on the gated architectures, and
// (d) the int8 engine is >= 2x the fp32 engine at every batch >= 64 on the
// gated architectures — the PR acceptance criteria, enforced by
// `ctest -L perf`. Non-gated rows are still emitted and drift-tracked via
// bench_diff.
//
// Usage: bench_infer_json [--out FILE] [--check] [--quick] [--reps K]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"
#include "serve/engine.hpp"

namespace {

using namespace agebo;

// Representative architectures from the NAS search space: a plain dense
// chain, a skip-heavy net (projection path), and an identity-node net
// (pass-through path). All covertype-shaped.
struct Arch {
  const char* name;
  bool gated;  // under the hard batch-64 gates (>= 3x fp32, >= 2x int8)
  nn::GraphSpec spec;
};

nn::NodeSpec dense_node(std::size_t units, std::vector<std::size_t> skips = {}) {
  nn::NodeSpec n;
  n.units = units;
  n.act = nn::Activation::kRelu;
  n.skips = std::move(skips);
  return n;
}

nn::NodeSpec identity_node() {
  nn::NodeSpec n;
  n.is_identity = true;
  return n;
}

std::vector<Arch> make_archs() {
  std::vector<Arch> archs;
  {
    Arch a{"chain-3x96", true, {}};
    a.spec.input_dim = 54;
    a.spec.output_dim = 7;
    a.spec.nodes = {dense_node(96), dense_node(96), dense_node(96)};
    archs.push_back(std::move(a));
  }
  {
    Arch a{"wide-2x256", true, {}};
    a.spec.input_dim = 54;
    a.spec.output_dim = 7;
    a.spec.nodes = {dense_node(256), dense_node(256)};
    archs.push_back(std::move(a));
  }
  {
    // Projection-heavy: half its MACs are skip projections, and the
    // elementwise combine stages cost the same in both modes, so its int8
    // headroom sits right at ~2x — emitted and drift-tracked, but not
    // under the hard gate (a 2.0x measurement against a 2.0x threshold
    // would flake on timer noise).
    Arch a{"skips-4x160", false, {}};
    a.spec.input_dim = 54;
    a.spec.output_dim = 7;
    a.spec.nodes = {dense_node(160), dense_node(160, {0}),
                    dense_node(128, {0, 1}), dense_node(96, {1})};
    a.spec.output_skips = {2, 3};
    archs.push_back(std::move(a));
  }
  {
    Arch a{"identity-mix", false, {}};
    a.spec.input_dim = 54;
    a.spec.output_dim = 7;
    a.spec.nodes = {dense_node(64), identity_node(), dense_node(64, {0}),
                    identity_node()};
    a.spec.output_skips = {1};
    archs.push_back(std::move(a));
  }
  return archs;
}

// Min-of-k wall times (same estimator as bench_kernels_json): two untimed
// warmups, per-rep iteration count calibrated to ~4 ms, best rep kept.
double measure_ns(const std::function<void()>& fn, int reps) {
  fn();
  fn();
  const auto c0 = std::chrono::steady_clock::now();
  fn();
  const auto c1 = std::chrono::steady_clock::now();
  const double once_ns =
      std::max(1.0, std::chrono::duration<double, std::nano>(c1 - c0).count());
  const std::size_t iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(4e6 / once_ns));

  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

struct Row {
  std::string arch;  // fp32 row: arch name; int8 row: name + "-int8"
  std::size_t batch;
  std::size_t params;
  std::size_t classes;
  bool gated;
  bool is_int8;
  double naive_ns;    // fp32 row: per-row path; int8 row: fp32 batched path
  double batched_ns;  // fp32 row: fp32 engine; int8 row: int8 engine
  double naive_pps;   // predictions/s of the baseline above
  double batched_pps;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_infer.json";
  bool check = false;
  bool quick = false;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quick") {
      quick = true;
      reps = 5;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{1, 16, 64, 256, 1024};

  Rng rng(7);
  bool bitwise_ok = true;
  bool deterministic_ok = true;
  std::vector<Row> rows;
  for (Arch& arch : make_archs()) {
    nn::GraphNet net(arch.spec, rng);
    const nn::ModelArtifact artifact = nn::freeze_graphnet(net);
    serve::InferenceEngine engine(artifact);
    const std::size_t d = arch.spec.input_dim;
    const std::size_t c = arch.spec.output_dim;

    const std::size_t max_batch = *std::max_element(batches.begin(), batches.end());
    std::vector<float> data(max_batch * d);
    for (auto& v : data) v = static_cast<float>(rng.normal());

    // Calibrate on the benchmark's own input distribution (the accuracy
    // gate lives in agebo_serve --check-accuracy-delta, on real datasets;
    // here the int8 rows only measure throughput).
    const std::size_t calib = std::min<std::size_t>(256, max_batch);
    serve::InferenceEngine int8_engine(
        serve::quantize_artifact(artifact, data.data(), calib),
        serve::EngineMode::kInt8);

    // Bitwise-identity sanity check: fp32 engine logits vs
    // GraphNet::forward on the largest batch. A serving path that drifts
    // from the trained network would make every reported rate meaningless.
    {
      nn::Tensor x(max_batch, d);
      std::memcpy(x.v.data(), data.data(), data.size() * sizeof(float));
      const nn::Tensor& ref = net.forward(x);
      std::vector<float> got(max_batch * c);
      engine.predict_logits(data.data(), max_batch, got.data());
      if (std::memcmp(ref.v.data(), got.data(), got.size() * sizeof(float)) !=
          0) {
        std::cerr << "BITWISE MISMATCH: " << arch.name
                  << ": engine logits differ from GraphNet::forward\n";
        bitwise_ok = false;
      }
      // Int8 determinism: two runs of the quantized engine must produce
      // identical bits (the kernels are run-to-run deterministic by
      // construction — fixed packing, fixed reduction order).
      std::vector<float> q1(max_batch * c);
      std::vector<float> q2(max_batch * c);
      int8_engine.predict_logits(data.data(), max_batch, q1.data());
      int8_engine.predict_logits(data.data(), max_batch, q2.data());
      if (std::memcmp(q1.data(), q2.data(), q1.size() * sizeof(float)) != 0) {
        std::cerr << "NONDETERMINISM: " << arch.name
                  << ": int8 engine logits differ between runs\n";
        deterministic_ok = false;
      }
    }

    for (std::size_t batch : batches) {
      std::vector<float> out(batch * c);
      // Naive deployment baseline: one forward + softmax per request row.
      nn::Tensor x1(1, d);
      nn::Tensor p1;
      const auto naive = [&] {
        for (std::size_t i = 0; i < batch; ++i) {
          std::memcpy(x1.v.data(), data.data() + i * d, d * sizeof(float));
          nn::softmax(net.forward(x1), p1);
          std::memcpy(out.data() + i * c, p1.v.data(), c * sizeof(float));
        }
      };
      const auto batched = [&] {
        engine.predict_batch(data.data(), batch, out.data());
      };
      const auto batched_int8 = [&] {
        int8_engine.predict_batch(data.data(), batch, out.data());
      };

      const double naive_ns = measure_ns(naive, reps);
      const double batched_ns = measure_ns(batched, reps);
      const double int8_ns = measure_ns(batched_int8, reps);
      Row row{arch.name,
              batch,
              engine.num_params(),
              c,
              arch.gated,
              false,
              naive_ns,
              batched_ns,
              static_cast<double>(batch) / naive_ns * 1e9,
              static_cast<double>(batch) / batched_ns * 1e9,
              naive_ns / batched_ns};
      Row qrow{std::string(arch.name) + "-int8",
               batch,
               engine.num_params(),
               c,
               arch.gated,
               true,
               batched_ns,
               int8_ns,
               row.batched_pps,
               static_cast<double>(batch) / int8_ns * 1e9,
               batched_ns / int8_ns};
      std::printf(
          "%-13s batch=%-5zu per-row %9.0f pred/s  fp32 %9.0f pred/s "
          "(%5.2fx)  int8 %9.0f pred/s (%5.2fx vs fp32)\n",
          arch.name, batch, row.naive_pps, row.batched_pps, row.speedup,
          qrow.batched_pps, qrow.speedup);
      rows.push_back(std::move(row));
      rows.push_back(std::move(qrow));
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  os << "{\n  \"schema\": \"agebo-bench-infer-v2\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"kernel\": \"" << r.arch << "\", \"m\": " << r.batch
       << ", \"k\": " << r.params << ", \"n\": " << r.classes
       << ", \"naive_ns\": " << r.naive_ns
       << ", \"blocked_ns\": " << r.batched_ns
       << ", \"naive_gflops\": " << r.naive_pps
       << ", \"blocked_gflops\": " << r.batched_pps
       << ", \"speedup\": " << r.speedup << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    bool ok = bitwise_ok && deterministic_ok;
    for (const Row& r : rows) {
      if (!r.gated || r.batch < 64) continue;
      if (!r.is_int8 && r.speedup < 3.0) {
        std::cerr << "PERF REGRESSION: " << r.arch << " batch=" << r.batch
                  << " batched path under 3x vs per-row baseline (speedup "
                  << r.speedup << ")\n";
        ok = false;
      }
      if (r.is_int8 && r.speedup < 2.0) {
        std::cerr << "PERF REGRESSION: " << r.arch << " batch=" << r.batch
                  << " int8 engine under 2x vs fp32 engine (speedup "
                  << r.speedup << ")\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "check passed: fp32 engine bitwise-identical to GraphNet, "
                 "int8 deterministic, >= 3x per-row and >= 2x fp32 at "
                 "batch >= 64\n";
  }
  return 0;
}
