// Extension experiment (paper future-work item 2): multinode data-parallel
// training inside NAS. Evaluations with n > 8 processes gang-schedule
// ceil(n/8) simulated worker nodes.
//
// Two questions:
//  1. Static sweep: what happens to AgE accuracy/time as n grows past the
//     single-node limit (16/32/64 processes) under the plain linear scaling
//     rule? Expected: training time keeps shrinking but accuracy collapses
//     (the scaling-limit cliff), and wide gangs reduce the number of
//     concurrent evaluations.
//  2. Joint search: given the choice of n in {1..64}, does AgEBO-multinode
//     ever pick n > 8? Expected: no for these datasets — which is exactly
//     why the paper leaves multinode scaling to "advanced and sophisticated
//     layer-wise learning rate and adaptive batch size" methods.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;  // covertype, 128 workers, 180 min

  std::printf("=== Extension: multinode data-parallel training in NAS ===\n\n");
  std::printf("--- static AgE-n sweep past the single-node limit ---\n");
  TextTable table({"variant", "nodes/eval", "evaluations", "train time (min)",
                   "best valid acc"});
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    auto cfg = core::age_config(n, 1100 + n);
    const std::size_t width = (n + 7) / 8;
    cfg.width_fn = [width](const eval::ModelConfig&) { return width; };
    const auto out = benchutil::run_campaign(space, cfg, spec);
    const auto stats = core::run_stats(out.result);
    table.add_row({out.variant, std::to_string(width),
                   std::to_string(stats.n_evaluations),
                   TextTable::fmt(stats.mean_train_minutes, 2),
                   TextTable::fmt(stats.best_accuracy, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("--- AgEBO with n in {1..64} (joint search decides) ---\n");
  for (const std::string dataset : {"covertype", "dionis"}) {
    benchutil::CampaignSpec dspec;
    dspec.dataset = dataset;
    const auto out = benchutil::run_campaign(
        space, core::agebo_multinode_config(1200), dspec);
    const auto top = core::top_k(out.result, 5);
    std::printf("%s: best %.4f from %zu evaluations; top-5 n choices:",
                dataset.c_str(), out.result.best_objective,
                out.result.history.size());
    for (std::size_t idx : top) {
      std::printf(" %g", out.result.history[idx].config.hparams[2]);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: accuracy collapses for n >= 16 under plain linear "
              "scaling; the joint search avoids n > 8\n");
  return 0;
}
