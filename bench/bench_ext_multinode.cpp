// Extension experiment (paper future-work item 2): multinode data-parallel
// training inside NAS. Evaluations with n > 8 processes gang-schedule
// ceil(n/8) simulated worker nodes.
//
// Two questions:
//  1. Static sweep: what happens to AgE accuracy/time as n grows past the
//     single-node limit (16/32/64 processes) under the plain linear scaling
//     rule? Expected: training time keeps shrinking but accuracy collapses
//     (the scaling-limit cliff), and wide gangs reduce the number of
//     concurrent evaluations.
//  2. Joint search: given the choice of n in {1..64}, does AgEBO-multinode
//     ever pick n > 8? Expected: no for these datasets — which is exactly
//     why the paper leaves multinode scaling to "advanced and sophisticated
//     layer-wise learning rate and adaptive batch size" methods. The joint
//     searches run on the decentralized sharded-BO manager (DESIGN.md §15),
//     since wide gangs are exactly the regime where one optimizer per
//     worker group — not one global one — keeps the managers off the
//     critical path.
//
// Emits agebo-bench-search-v1 rows (the BENCH_search.json schema: m =
// processes per evaluation for the static sweep / simulated workers for
// the joint searches, k = BO shards, blocked_gflops = full-fidelity
// evaluations/s) so the sweep lands in the same bench_diff-able dialect as
// the gated scaling bench instead of ad-hoc stdout.
//
// Usage: bench_ext_multinode [--out FILE] [--minutes M]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace agebo;

  std::string out_path;
  double minutes = 180.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--minutes" && i + 1 < argc) {
      minutes = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "usage: bench_ext_multinode [--out FILE] [--minutes M]\n");
      return 2;
    }
  }

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;  // covertype, 128 workers
  spec.wall_minutes = minutes;
  const double wall_seconds = spec.wall_minutes * 60.0;
  std::vector<benchutil::SearchBenchRow> rows;

  std::printf("=== Extension: multinode data-parallel training in NAS ===\n\n");
  std::printf("--- static AgE-n sweep past the single-node limit ---\n");
  TextTable table({"variant", "nodes/eval", "evaluations", "train time (min)",
                   "best valid acc"});
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    auto cfg = core::age_config(n, 1100 + n);
    const std::size_t width = (n + 7) / 8;
    cfg.width_fn = [width](const eval::ModelConfig&) { return width; };
    const auto out = benchutil::run_campaign(space, cfg, spec);
    const auto stats = core::run_stats(out.result);
    table.add_row({out.variant, std::to_string(width),
                   std::to_string(stats.n_evaluations),
                   TextTable::fmt(stats.mean_train_minutes, 2),
                   TextTable::fmt(stats.best_accuracy, 3)});
    benchutil::SearchBenchRow r;
    r.kernel = "multinode-age-static";
    r.workers = n;  // m = processes per evaluation
    r.evals_per_second =
        static_cast<double>(out.result.history.size()) / wall_seconds;
    r.best_objective = stats.best_accuracy;
    rows.push_back(r);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("--- AgEBO with n in {1..64} (joint search decides; "
              "sharded-BO manager) ---\n");
  for (const std::string dataset : {"covertype", "dionis"}) {
    benchutil::CampaignSpec dspec;
    dspec.dataset = dataset;
    dspec.wall_minutes = minutes;
    core::SearchConfig cfg = core::agebo_multinode_config(1200);
    cfg.bo_shards = 8;  // the decentralized manager (DESIGN.md §15)
    const auto out = benchutil::run_campaign(space, cfg, dspec);
    const auto top = core::top_k(out.result, 5);
    std::printf("%s: best %.4f from %zu evaluations; top-5 n choices:",
                dataset.c_str(), out.result.best_objective,
                out.result.history.size());
    for (std::size_t idx : top) {
      std::printf(" %g", out.result.history[idx].config.hparams[2]);
    }
    std::printf("\n");
    benchutil::SearchBenchRow r;
    r.kernel = "multinode-joint-" + dataset;
    r.workers = dspec.n_workers;
    r.shards = cfg.bo_shards;
    r.gossip = cfg.bo_gossip_every;
    r.evals_per_second =
        static_cast<double>(out.result.history.size()) / wall_seconds;
    r.best_objective = out.result.best_objective;
    rows.push_back(r);
  }
  std::printf("\nexpected: accuracy collapses for n >= 16 under plain linear "
              "scaling; the joint search avoids n > 8\n");

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    benchutil::write_search_bench_json(os, rows);
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  } else {
    benchutil::write_search_bench_json(std::cout, rows);
  }
  return 0;
}
