// Fig 4: search trajectories of AgEBO variants and AgE-8 on Covertype.
//
// Variants: AgE-8 (no tuning), AgEBO-8-LR (learning rate tuned, bs=256,
// n=8), AgEBO-8-LR-BS (lr and bs tuned, n=8), AgEBO (all three tuned).
// Expected: AgEBO >= AgEBO-8-LR-BS >= AgEBO-8-LR > AgE-8 in final accuracy,
// with AgEBO possibly behind during the first ~30 minutes (initial rank
// exploration inflates early evaluation times).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;

  std::printf("=== Fig 4: AgEBO variants vs AgE-8 on Covertype ===\n");
  std::printf("# columns: variant  minutes  best-so-far valid acc\n");

  struct Row {
    std::string label;
    core::SearchConfig cfg;
  };
  std::vector<Row> rows;
  rows.push_back({"AgE-8", core::age_config(8, 208)});
  rows.push_back({"AgEBO-8-LR", core::agebo_8_lr_config(209)});
  rows.push_back({"AgEBO-8-LR-BS", core::agebo_8_lr_bs_config(210)});
  rows.push_back({"AgEBO", core::agebo_config(211)});

  for (auto& row : rows) {
    const auto out = benchutil::run_campaign(space, row.cfg, spec);
    benchutil::print_trajectory(row.label, out.result);
    std::printf("%s final best: %.4f (%zu evaluations)\n\n", row.label.c_str(),
                out.result.best_objective, out.result.history.size());
  }
  std::printf("expected: AgEBO >= AgEBO-8-LR-BS >= AgEBO-8-LR > AgE-8\n");
  return 0;
}
