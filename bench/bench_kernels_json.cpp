// Perf-regression harness for the blocked kernel layer: sweeps the
// paper's dense-layer GEMM shapes (batch x features x units drawn from the
// Covertype / Airlines / Albert / Dionis search space), times naive vs
// blocked with warmup + median-of-k, and emits machine-readable
// BENCH_kernels.json. With --check it exits nonzero if the blocked path is
// slower than the naive reference on any non-trivial shape, which is what
// the `ctest -L perf` smoke test asserts; tools/bench_diff compares two
// JSON files across commits.
//
// Usage: bench_kernels_json [--out FILE] [--check] [--quick]
//                           [--threads N] [--reps K]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/kernels/pool.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace agebo;
using nn::Tensor;

struct Shape {
  std::size_t m, k, n;
  const char* note;
};

// Layer GEMMs seen while training the search space on the paper's four
// datasets: input layer (batch x features -> units), hidden (units ->
// units), readout (units -> classes), plus the acceptance-criterion
// shapes at and above 512x128x128.
const Shape kShapes[] = {
    {256, 54, 96, "covertype input layer"},
    {256, 96, 96, "hidden layer"},
    {256, 96, 7, "covertype readout"},
    {1024, 78, 96, "albert input, large batch"},
    {256, 60, 355, "dionis readout"},
    {512, 128, 128, "acceptance shape"},
    {1024, 128, 128, "acceptance shape, large batch"},
    {512, 256, 256, "wide hidden"},
};

const Shape kQuickShapes[] = {
    {256, 96, 96, "hidden layer"},
    {512, 128, 128, "acceptance shape"},
};

struct Measurement {
  double ns_per_call = 0.0;
  double gflops = 0.0;
};

// Median-of-k wall times; every rep runs enough iterations to dwarf clock
// granularity, and two untimed warmup calls fault in pages and warm the
// caches so the first rep is not an outlier.
Measurement measure(const std::function<void()>& fn, double flops_per_call,
                    int reps) {
  fn();
  fn();
  // Calibrate the per-rep iteration count to ~2 ms.
  const auto c0 = std::chrono::steady_clock::now();
  fn();
  const auto c1 = std::chrono::steady_clock::now();
  const double once_ns =
      std::max(1.0, std::chrono::duration<double, std::nano>(c1 - c0).count());
  const std::size_t iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(2e6 / once_ns));

  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  Measurement out;
  out.ns_per_call = samples[samples.size() / 2];
  out.gflops = flops_per_call / out.ns_per_call;  // flops/ns == GFLOP/s
  return out;
}

struct Row {
  std::string kernel;
  Shape shape{};
  Measurement naive, blocked;
  double speedup = 0.0;
};

void fill_random(Tensor& t, Rng& rng) {
  for (auto& v : t.v) v = static_cast<float>(rng.normal());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool check = false;
  bool quick = false;
  std::size_t threads = 1;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quick") {
      quick = true;
      reps = 5;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  // Default 1: the regression gate compares single-threaded kernel quality;
  // threading wins are reported separately by --threads N runs.
  agebo::nn::kernels::set_max_threads(threads);

  const Shape* shapes = quick ? kQuickShapes : kShapes;
  const std::size_t n_shapes =
      quick ? std::size(kQuickShapes) : std::size(kShapes);

  std::vector<Row> rows;
  Rng rng(7);
  for (std::size_t s = 0; s < n_shapes; ++s) {
    const Shape& sh = shapes[s];
    const double flops = 2.0 * sh.m * sh.k * sh.n;

    Tensor a(sh.m, sh.k), b(sh.k, sh.n), bt(sh.n, sh.k), at(sh.k, sh.m);
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(bt, rng);
    fill_random(at, rng);
    Tensor out;

    struct Variant {
      const char* name;
      std::function<void()> naive;
      std::function<void()> blocked;
    };
    const Variant variants[] = {
        {"matmul", [&] { nn::matmul_naive(a, b, out); },
         [&] { nn::matmul(a, b, out); }},
        {"matmul_bt", [&] { nn::matmul_bt_naive(a, bt, out); },
         [&] { nn::matmul_bt(a, bt, out); }},
        {"matmul_at", [&] { nn::matmul_at_naive(at, b, out); },
         [&] { nn::matmul_at(at, b, out); }},
    };
    for (const auto& v : variants) {
      Row row;
      row.kernel = v.name;
      row.shape = sh;
      row.naive = measure(v.naive, flops, reps);
      row.blocked = measure(v.blocked, flops, reps);
      row.speedup = row.naive.ns_per_call / row.blocked.ns_per_call;
      std::printf("%-10s m=%4zu k=%4zu n=%4zu  naive %8.2f GF/s  blocked %8.2f GF/s  speedup %5.2fx\n",
                  row.kernel.c_str(), sh.m, sh.k, sh.n, row.naive.gflops,
                  row.blocked.gflops, row.speedup);
      rows.push_back(std::move(row));
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  os << "{\n  \"schema\": \"agebo-bench-kernels-v1\",\n  \"threads\": "
     << threads << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.shape.m
       << ", \"k\": " << r.shape.k << ", \"n\": " << r.shape.n
       << ", \"naive_ns\": " << r.naive.ns_per_call
       << ", \"blocked_ns\": " << r.blocked.ns_per_call
       << ", \"naive_gflops\": " << r.naive.gflops
       << ", \"blocked_gflops\": " << r.blocked.gflops
       << ", \"speedup\": " << r.speedup << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    // Gate: the blocked path must never lose to the naive reference on
    // any shape with real arithmetic (tiny shapes are timer noise).
    bool ok = true;
    for (const Row& r : rows) {
      if (r.shape.m * r.shape.k * r.shape.n < 1'000'000) continue;
      if (r.speedup < 1.0) {
        std::cerr << "PERF REGRESSION: " << r.kernel << " m=" << r.shape.m
                  << " k=" << r.shape.k << " n=" << r.shape.n
                  << " blocked is slower than naive (speedup " << r.speedup
                  << ")\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "check passed: blocked >= naive on all gated shapes\n";
  }
  return 0;
}
