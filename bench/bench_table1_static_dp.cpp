// Table I: impact of static data-parallel training on AgE (Covertype).
//
// Paper reference (Theta, 128 workers, 3 h):
//   |                         | AgE-1 | AgE-2 | AgE-4 | AgE-8 |
//   | Number of architectures |   632 |  1764 |  2421 |  4221 |
//   | Training time (min.)    | 26.54 |  8.97 |  5.38 |  3.19 |
//   | Validation accuracy     | 0.918 | 0.925 | 0.925 | 0.902 |
//
// Expected shape: #architectures increasing in n, training time decreasing
// in n, accuracy peaking at n in {2,4} and dropping at n=8 (linear-scaling
// limit exceeded).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;  // covertype, 128 workers, 180 min

  TextTable table({"variant", "architectures", "train time (min)",
                   "train time sd", "best valid acc"});

  std::printf("=== Table I: AgE with static data-parallel training "
              "(Covertype, simulated Theta campaign) ===\n");
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto out =
        benchutil::run_campaign(space, core::age_config(n, /*seed=*/100 + n), spec);
    const auto stats = core::run_stats(out.result);
    table.add_row({out.variant, std::to_string(stats.n_evaluations),
                   TextTable::fmt(stats.mean_train_minutes, 2),
                   TextTable::fmt(stats.sd_train_minutes, 2),
                   TextTable::fmt(stats.best_accuracy, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: archs 632/1764/2421/4221, time 26.54/8.97/5.38/3.19,"
              " acc 0.918/0.925/0.925/0.902\n");
  return 0;
}
