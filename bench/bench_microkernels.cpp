// google-benchmark microkernels for the hot paths: tensor matmul, gradient
// allreduce, decision-tree fits (the BO surrogate's cost), surrogate
// evaluation, and one full forward/backward of a search-space network.
#include <benchmark/benchmark.h>

#include "bo/optimizer.hpp"
#include "data/synthetic.hpp"
#include "dp/allreduce.hpp"
#include "eval/surrogate.hpp"
#include "ml/forest.hpp"
#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"
#include "nn/loss.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace agebo;

// Every timing benchmark warms up and reports the median of several
// repetitions (not a single-shot measurement) so the perf-regression gate
// built on these numbers is not flaky.
constexpr double kWarmUpSeconds = 0.05;
constexpr int kRepetitions = 5;

#define AGEBO_BENCH_STABLE(fn) \
  BENCHMARK(fn)                \
      ->MinWarmUpTime(kWarmUpSeconds) \
      ->Repetitions(kRepetitions)     \
      ->ReportAggregatesOnly(true)

#define AGEBO_BENCH_STABLE_ARGS(fn, ...) \
  BENCHMARK(fn)                          \
      ->MinWarmUpTime(kWarmUpSeconds)    \
      ->Repetitions(kRepetitions)        \
      ->ReportAggregatesOnly(true)       \
      __VA_ARGS__

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n);
  nn::Tensor b(n, n);
  for (auto& v : a.v) v = static_cast<float>(rng.normal());
  for (auto& v : b.v) v = static_cast<float>(rng.normal());
  nn::Tensor out;
  for (auto _ : state) {
    nn::matmul(a, b, out);
    benchmark::DoNotOptimize(out.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
AGEBO_BENCH_STABLE_ARGS(BM_MatmulBlocked, ->Arg(64)->Arg(128)->Arg(256));

void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n);
  nn::Tensor b(n, n);
  for (auto& v : a.v) v = static_cast<float>(rng.normal());
  for (auto& v : b.v) v = static_cast<float>(rng.normal());
  nn::Tensor out;
  for (auto _ : state) {
    nn::matmul_naive(a, b, out);
    benchmark::DoNotOptimize(out.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
AGEBO_BENCH_STABLE_ARGS(BM_MatmulNaive, ->Arg(64)->Arg(128)->Arg(256));

// The paper's dense-layer shapes (batch x in-features x units): Covertype
// input, a hidden layer, the Dionis readout, and the 512x128x128
// acceptance shape. Args are {m, k, n}.
void BM_MatmulLayerShapes(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  nn::Tensor a(m, k);
  nn::Tensor b(k, n);
  for (auto& v : a.v) v = static_cast<float>(rng.normal());
  for (auto& v : b.v) v = static_cast<float>(rng.normal());
  nn::Tensor out;
  for (auto _ : state) {
    nn::matmul(a, b, out);
    benchmark::DoNotOptimize(out.v.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
AGEBO_BENCH_STABLE_ARGS(BM_MatmulLayerShapes,
                        ->Args({256, 54, 96})
                        ->Args({256, 96, 96})
                        ->Args({256, 60, 355})
                        ->Args({512, 128, 128}));

void BM_AllreduceFlat(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> grads(ranks, std::vector<float>(1 << 16, 1.0f));
  for (auto _ : state) {
    std::vector<std::vector<float>*> bufs;
    for (auto& g : grads) bufs.push_back(&g);
    dp::allreduce_average(bufs, dp::AllreduceStrategy::kFlat);
    benchmark::DoNotOptimize(grads[0].data());
  }
}
AGEBO_BENCH_STABLE_ARGS(BM_AllreduceFlat, ->Arg(2)->Arg(4)->Arg(8));

void BM_AllreduceTree(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> grads(ranks, std::vector<float>(1 << 16, 1.0f));
  for (auto _ : state) {
    std::vector<std::vector<float>*> bufs;
    for (auto& g : grads) bufs.push_back(&g);
    dp::allreduce_average(bufs, dp::AllreduceStrategy::kTree);
    benchmark::DoNotOptimize(grads[0].data());
  }
}
AGEBO_BENCH_STABLE_ARGS(BM_AllreduceTree, ->Arg(2)->Arg(4)->Arg(8));

void BM_TreeFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> x(rows * 3);
  std::vector<double> y(rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  for (auto& v : y) v = rng.uniform(0.8, 0.93);
  for (auto _ : state) {
    ml::DecisionTree tree;
    ml::TreeConfig cfg;
    cfg.max_depth = 12;
    cfg.n_thresholds = 16;
    Rng tree_rng = rng.split();
    tree.fit_regression(x.data(), rows, 3, y, cfg, tree_rng);
    benchmark::DoNotOptimize(tree.n_nodes());
  }
}
AGEBO_BENCH_STABLE_ARGS(BM_TreeFit, ->Arg(256)->Arg(512)->Arg(2048));

void BM_SurrogateEvaluate(benchmark::State& state) {
  nas::SearchSpace space;
  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  Rng rng(3);
  eval::ModelConfig config;
  config.genome = space.random(rng);
  config.hparams = eval::default_hparams(4);
  for (auto _ : state) {
    auto out = evaluator.evaluate(config);
    benchmark::DoNotOptimize(out.objective);
  }
}
AGEBO_BENCH_STABLE(BM_SurrogateEvaluate);

void BM_BoAsk(benchmark::State& state) {
  auto space = bo::ParamSpace::paper_space();
  Rng rng(4);
  bo::BoConfig cfg;
  bo::AskTellOptimizer opt(space, cfg);
  std::vector<bo::Point> pts;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(space.sample(rng));
    ys.push_back(rng.uniform(0.8, 0.93));
  }
  opt.tell(pts, ys);
  for (auto _ : state) {
    auto batch = opt.ask(4);
    benchmark::DoNotOptimize(batch.data());
  }
}
AGEBO_BENCH_STABLE(BM_BoAsk);

void BM_GraphNetStep(benchmark::State& state) {
  nas::SearchSpace space;
  Rng rng(5);
  const auto genome = space.random(rng);
  const auto spec = space.to_graph_spec(genome, 54, 7);
  Rng net_rng(6);
  nn::GraphNet net(spec, net_rng);

  nn::Tensor x(256, 54);
  std::vector<int> y(256);
  for (auto& v : x.v) v = static_cast<float>(rng.normal());
  for (auto& label : y) label = static_cast<int>(rng.index(7));
  nn::Tensor dlogits;
  for (auto _ : state) {
    const nn::Tensor& logits = net.forward(x);
    net.zero_grad();
    const double loss = nn::softmax_cross_entropy(logits, y, dlogits);
    net.backward(dlogits);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
AGEBO_BENCH_STABLE(BM_GraphNetStep);

}  // namespace

BENCHMARK_MAIN();
