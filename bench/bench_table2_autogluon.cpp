// Table II: test accuracy and inference time of AgEBO's single neural
// network versus the AutoGluon-like stacking ensemble on the four datasets.
//
// Paper reference:
//   dataset    AgEBO acc / inf(s)   AutoGluon acc / inf(s)
//   Airlines   0.652 / 3.1          0.641 / 1124.9
//   Albert     0.661 / 2.7          0.688 /  409.3
//   Covertype  0.963 / 4.3          0.961 /  906.6
//   Dionis     0.915 / 3.2          0.907 / 1900.5
//
// This bench runs the REAL pipeline on down-scaled synthetic versions of
// the datasets: a short live AgEBO search with true data-parallel training
// picks a network, which is retrained and timed on the test split; the
// AutoEnsemble baseline is tuned, stacked, and timed on the same split.
// Absolute accuracies differ from the paper (synthetic data, small scale);
// the expected shape is accuracy parity plus an inference-time gap of >= 2
// orders of magnitude in favor of the single network.
#include <chrono>
#include <cstdio>

#include "baselines/auto_ensemble.hpp"
#include "common/table.hpp"
#include "core/search.hpp"
#include "core/variants.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "eval/training_eval.hpp"
#include "exec/live_executor.hpp"
#include "nas/search_space.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace {

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace agebo;

  std::printf("=== Table II: AgEBO single network vs AutoGluon-like "
              "ensemble (real training, scaled-down synthetic data) ===\n");

  TextTable table({"dataset", "AgEBO test acc", "AgEBO inf (s)",
                   "ensemble test acc", "ensemble inf (s)", "inf ratio"});

  nas::SearchSpace space;
  for (auto spec : data::paper_dataset_specs(/*scale=*/0.008, /*seed=*/4242)) {
    const auto dataset = data::make_classification(spec);
    Rng split_rng(11);
    auto splits = data::split(dataset, data::SplitFractions{}, split_rng);
    data::standardize(splits);

    // --- AgEBO: short live search with true training, then final model. ---
    eval::TrainingEvalConfig ec;
    ec.epochs = 4;
    eval::TrainingEvaluator evaluator(splits.train, splits.valid, ec);
    exec::LiveExecutor executor(4);
    core::SearchConfig cfg = core::agebo_config(21);
    cfg.population_size = 8;
    cfg.sample_size = 3;
    cfg.wall_time_seconds = 15.0;
    cfg.hp_space = bo::ParamSpace{}
                       .add_categorical("batch_size", {64, 128, 256})
                       .add_real("learning_rate", 0.001, 0.1, true)
                       .add_categorical("n_processes", {1, 2});
    core::AgeboSearch search(space, evaluator, executor, cfg);
    const auto result = search.run();

    eval::TrainingEvalConfig final_ec;
    final_ec.epochs = 12;
    eval::TrainingEvaluator final_eval(splits.train, splits.valid, final_ec);
    auto net = final_eval.train_model(result.best().config);

    // Single-network test accuracy and per-dataset inference time.
    const double t0 = now_seconds();
    const double nn_test_acc = nn::evaluate_accuracy(*net, splits.test);
    const double nn_inf = now_seconds() - t0;

    // --- AutoGluon-like stacked ensemble. ---
    baselines::AutoEnsembleConfig ac;
    ac.forest_trees = 50;
    ac.boosting_rounds = dataset.n_classes > 20 ? 6 : 30;
    ac.n_folds = 5;
    ac.tuning_trials = 2;
    baselines::AutoEnsemble ensemble(ac);
    ensemble.fit(splits.train, splits.valid);
    const double ens_test_acc = ensemble.accuracy(splits.test);
    const double ens_inf = ensemble.inference_seconds(splits.test);

    table.add_row({spec.name, TextTable::fmt(nn_test_acc, 3),
                   TextTable::fmt(nn_inf, 4), TextTable::fmt(ens_test_acc, 3),
                   TextTable::fmt(ens_inf, 2),
                   TextTable::fmt(ens_inf / std::max(nn_inf, 1e-9), 0)});
    std::printf("[%s] search evaluated %zu architectures, best valid %.3f\n",
                spec.name.c_str(), result.history.size(),
                result.best_objective);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape: comparable accuracy, inference ratio of "
              "roughly one to two orders of magnitude in favor of the single "
              "network (paper: 130x-590x with AutoGluon's much larger "
              "ensembles; this scaled-down 20-model ensemble yields ~15-80x, "
              "growing with ensemble size by construction)\n");
  return 0;
}
