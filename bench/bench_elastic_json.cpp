// Elastic-training harness (DESIGN.md §16): measures what a mid-training
// replica crash costs. For each allreduce strategy it runs, at n = 4
// replicas on a synthetic covertype-shaped task:
//
//  - clean:    elastic machinery armed, no faults injected — the price of
//              carrying the membership/heartbeat layer at all;
//  - degraded: one injected crash (seed searched so exactly one replica
//              dies inside a fixed step window), forcing an abort +
//              reconfiguration + Eq. 2 rescale down to n = 3;
//  - shrunken: a fresh 3-replica run, the throughput floor the degraded
//              run converges to after the reconfiguration.
//
// Reported per strategy: wall seconds and samples/second for all three
// runs, plus the degraded run's overhead ratio (degraded wall / clean
// wall — bounded below by 1 only on an idle box, so it is report-only).
//
// The JSON uses the agebo-bench-elastic-v1 schema on the field names
// tools/bench_diff parses: kernel = strategy, m = training rows, k = n,
// naive_ns = clean wall ns, blocked_ns = degraded wall ns,
// speedup = clean/degraded.
//
// With --check the gate is FUNCTIONAL, not timing (wall times of full
// fits are too noisy to hard-gate): every degraded run must record
// exactly one elastic event, finish at world size 3 with zero replica
// divergence, and produce a usable model (final accuracy within 0.25 of
// the clean run's). `ctest -L perf` runs it as a smoke test.
//
// Usage: bench_elastic_json [--out FILE] [--check] [--quick]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "dp/data_parallel.hpp"
#include "exec/fault_injector.hpp"
#include "nn/graph_net.hpp"

namespace {

using namespace agebo;

data::Dataset bench_dataset(std::size_t rows) {
  data::SyntheticSpec spec;
  spec.n_rows = rows;
  spec.n_features = 16;
  spec.n_classes = 4;
  spec.n_informative = 10;
  spec.class_sep = 1.5;
  spec.seed = 31;
  return data::make_classification(spec);
}

nn::GraphSpec bench_net_spec() {
  nn::GraphSpec spec;
  spec.input_dim = 16;
  spec.output_dim = 4;
  nn::NodeSpec n1;
  n1.units = 48;
  n1.act = nn::Activation::kRelu;
  nn::NodeSpec n2;
  n2.units = 32;
  n2.act = nn::Activation::kRelu;
  n2.skips = {0};
  spec.nodes = {n1, n2};
  return spec;
}

// Same stateless replay the elastic tests use: find a fault seed whose
// replica-draw stream kills exactly one of `world` replicas at a step
// attempt inside [min_step, max_step) and nothing else over the horizon.
std::uint64_t find_single_crash_seed(double prob, std::size_t world,
                                     std::uint64_t min_step,
                                     std::uint64_t max_step,
                                     std::uint64_t horizon) {
  for (std::uint64_t seed = 1; seed < 20000; ++seed) {
    exec::FaultConfig fc;
    fc.crash_prob = prob;
    fc.seed = seed;
    const exec::FaultInjector injector(fc);
    std::size_t count = 0;
    std::uint64_t at = 0;
    for (std::uint64_t t = 0; t < horizon && count < 2; ++t) {
      for (std::size_t r = 0; r < world; ++r) {
        if (injector.draw_replica(0, r, t) != exec::FaultKind::kNone) {
          ++count;
          at = t;
        }
      }
    }
    if (count == 1 && at >= min_step && at < max_step) return seed;
  }
  return 0;
}

struct Row {
  const char* kernel;
  std::size_t rows;
  std::size_t replicas;
  double clean_s;
  double degraded_s;
  double shrunken_s;
  double clean_sps;
  double degraded_sps;
  double overhead;
  // --check inputs.
  std::size_t events;
  std::size_t final_world;
  float divergence;
  double clean_acc;
  double degraded_acc;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_elastic.json";
  bool check = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const std::size_t rows = quick ? 1200 : 4000;
  const std::size_t epochs = quick ? 3 : 6;
  constexpr std::size_t kWorld = 4;

  const auto ds = bench_dataset(rows);
  Rng split_rng(1);
  const auto splits = data::split(ds, data::SplitFractions{}, split_rng);

  dp::DataParallelConfig base;
  base.n_procs = kWorld;
  base.lr1 = 0.005;
  base.bs1 = 16;
  base.epochs = epochs;
  base.seed = 9;
  base.elastic.enabled = true;

  // Kill a replica a few steps into the run. The horizon must cover every
  // attempt the fit can make AFTER the shrink too: at world n-1 each
  // survivor's shard grows, so steps per epoch rise by n/(n-1).
  const std::size_t spe =
      splits.train.n_rows / kWorld / base.bs1;  // steps per epoch at n
  const std::size_t spe_shrunk =
      splits.train.n_rows / (kWorld - 1) / base.bs1;
  const std::uint64_t seed = find_single_crash_seed(
      0.002, kWorld, /*min_step=*/2, /*max_step=*/spe,
      /*horizon=*/epochs * (spe_shrunk + 1) + 16);
  if (seed == 0) {
    std::cerr << "no single-crash fault seed found\n";
    return 2;
  }

  struct Strategy {
    const char* name;
    dp::AllreduceStrategy strategy;
  };
  const Strategy strategies[] = {
      {"flat", dp::AllreduceStrategy::kFlat},
      {"tree", dp::AllreduceStrategy::kTree},
      {"ring", dp::AllreduceStrategy::kRing},
  };

  std::vector<Row> rows_out;
  for (const Strategy& st : strategies) {
    dp::DataParallelConfig clean_cfg = base;
    clean_cfg.allreduce = st.strategy;
    dp::DataParallelTrainer clean(bench_net_spec(), clean_cfg);
    const auto clean_result = clean.fit(splits.train, splits.valid);

    dp::DataParallelConfig degraded_cfg = clean_cfg;
    degraded_cfg.elastic.faults.crash_prob = 0.002;
    degraded_cfg.elastic.faults.seed = seed;
    dp::DataParallelTrainer degraded(bench_net_spec(), degraded_cfg);
    const auto degraded_result = degraded.fit(splits.train, splits.valid);

    dp::DataParallelConfig shrunken_cfg = clean_cfg;
    shrunken_cfg.n_procs = kWorld - 1;
    dp::DataParallelTrainer shrunken(bench_net_spec(), shrunken_cfg);
    const auto shrunken_result = shrunken.fit(splits.train, splits.valid);

    Row row{st.name,
            splits.train.n_rows,
            kWorld,
            clean_result.wall_seconds,
            degraded_result.wall_seconds,
            shrunken_result.wall_seconds,
            clean_result.samples_per_second,
            degraded_result.samples_per_second,
            degraded_result.wall_seconds /
                std::max(1e-9, clean_result.wall_seconds),
            degraded_result.elastic_events.size(),
            degraded_result.final_world,
            degraded.max_replica_divergence(),
            clean_result.final_valid_accuracy,
            degraded_result.final_valid_accuracy};
    std::printf(
        "%-5s n=%zu  clean %6.3fs (%7.0f samp/s)  degraded %6.3fs "
        "(%7.0f samp/s, world %zu->%zu)  fresh n-1 %6.3fs  overhead %.2fx\n",
        row.kernel, kWorld, row.clean_s, row.clean_sps, row.degraded_s,
        row.degraded_sps, kWorld, row.final_world, row.shrunken_s,
        row.overhead);
    rows_out.push_back(row);
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  os << "{\n  \"schema\": \"agebo-bench-elastic-v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows_out.size(); ++i) {
    const Row& r = rows_out[i];
    os << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.rows
       << ", \"k\": " << r.replicas << ", \"n\": " << 1
       << ", \"naive_ns\": " << r.clean_s * 1e9
       << ", \"blocked_ns\": " << r.degraded_s * 1e9
       << ", \"naive_gflops\": " << r.clean_sps
       << ", \"blocked_gflops\": " << r.degraded_sps
       << ", \"speedup\": " << r.clean_s / std::max(1e-9, r.degraded_s) << "}"
       << (i + 1 < rows_out.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    bool ok = true;
    for (const Row& r : rows_out) {
      if (r.events != 1) {
        std::cerr << "ELASTIC GATE: " << r.kernel << " recorded " << r.events
                  << " elastic events, expected exactly 1\n";
        ok = false;
      }
      if (r.final_world != kWorld - 1) {
        std::cerr << "ELASTIC GATE: " << r.kernel << " finished at world "
                  << r.final_world << ", expected " << (kWorld - 1) << "\n";
        ok = false;
      }
      if (r.divergence != 0.0f) {
        std::cerr << "ELASTIC GATE: " << r.kernel
                  << " survivors diverged (max |dw| = " << r.divergence
                  << ")\n";
        ok = false;
      }
      if (r.degraded_acc < r.clean_acc - 0.25) {
        std::cerr << "ELASTIC GATE: " << r.kernel
                  << " degraded accuracy collapsed (" << r.degraded_acc
                  << " vs clean " << r.clean_acc << ")\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "check passed: every degraded run reconfigured once, held "
                 "lockstep, and kept a usable model\n";
  }
  return 0;
}
