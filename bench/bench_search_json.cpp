// Perf-regression harness for the decentralized-BO manager path
// (DESIGN.md §15): simulates the manager-side ask/tell pump of a
// 1k/4k/10k-worker campaign and times how fast the hyperparameter
// optimizer can turn completed evaluations into new submissions —
// the rate that bounds node utilization once the cluster outgrows the
// paper's 128 workers.
//
// Two pumps are measured at every scale, with the SAME scaled-down
// BoConfig (this box is single-core, so the win gated here is
// algorithmic, not thread parallelism):
//
//  - bo-central: today's manager — one AskTellOptimizer, constant-liar
//    batches, a full forest refit whenever the tell log changed;
//  - bo-sharded: the ShardedBo layer with workers/64 shards — per-shard
//    optimizers fed through lock-free MPSC queues, incremental
//    refit (a refit_trees rotation on the sliding window), qUCB
//    batching (one surrogate refresh per ask), and the seeded gossip
//    exchange between shards.
//
// Completions are synthetic (a deterministic objective function), so the
// measurement isolates optimizer cost: each pump event pops one finished
// point, tells it back, and asks for one replacement — the steady state
// of an asynchronous manager at full load.
//
// The JSON uses the agebo-bench-search-v1 schema (bench_diff-compatible):
//   kernel = bo-central | bo-sharded, m = simulated workers, k = shards
//   (0 = centralized), n = gossip cadence, blocked_gflops = ask+tell
//   evaluations/s, speedup = sharded vs centralized at the same m.
//
// With --check it exits nonzero unless, at 4096 simulated workers, the
// sharded pump sustains >= 10x the centralized ask+tell throughput AND
// real (simulated-cluster) sharded campaigns end within 0.02 mean accuracy
// of the centralized ones over the same seed set — the PR's acceptance
// criteria, enforced by `ctest -L perf`.
//
// Usage: bench_search_json [--out FILE] [--check] [--quick] [--events K]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bo/optimizer.hpp"
#include "bo/sharded_optimizer.hpp"
#include "common/rng.hpp"

namespace {

using namespace agebo;

constexpr std::size_t kWorkerScales[] = {1024, 4096, 10240};
constexpr std::size_t kGatedWorkers = 4096;
constexpr std::size_t kWorkersPerShard = 64;
constexpr double kSpeedupGate = 10.0;
constexpr double kObjectiveNoise = 0.02;

/// One BoConfig for BOTH pumps, scaled down from the paper defaults so a
/// full sweep stays inside the perf-suite budget. Modes are set per pump.
bo::BoConfig bench_bo_config() {
  bo::BoConfig cfg;
  cfg.kappa = 1.96;  // exploration keeps the candidate pool from collapsing
  cfg.n_initial_random = 8;
  cfg.n_candidates = 64;
  cfg.n_trees = 24;
  cfg.tree_depth = 8;
  cfg.max_fit_points = 512;
  cfg.refit_trees = 1;
  cfg.seed = 23;
  return cfg;
}

/// Deterministic synthetic objective in [0, 1]: cheap, smooth-ish, and a
/// function of the point alone so both pumps observe the same landscape.
double synthetic_objective(const bo::Point& p) {
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    s += std::sin(0.37 * static_cast<double>(i + 1) * p[i]);
  }
  return 0.5 + 0.5 * std::sin(s);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Steady-state centralized pump: warm the optimizer with `warmup` random
/// observations (one batched tell, like a manager catching up), then time
/// `events` tell(1)+ask(1) round trips.
double run_centralized(std::size_t warmup, std::size_t events) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::BoConfig cfg = bench_bo_config();
  cfg.refit = bo::RefitMode::kFull;
  cfg.batch = bo::BatchMode::kConstantLiar;
  bo::AskTellOptimizer opt(space, cfg);

  Rng rng(99);
  std::vector<bo::Point> points;
  std::vector<double> objectives;
  points.reserve(warmup);
  for (std::size_t i = 0; i < warmup; ++i) {
    points.push_back(space.sample(rng));
    objectives.push_back(synthetic_objective(points.back()));
  }
  opt.tell(points, objectives);
  bo::Point pending = opt.ask(1).at(0);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e) {
    opt.tell({pending}, {synthetic_objective(pending)});
    pending = opt.ask(1).at(0);
  }
  return static_cast<double>(events) / seconds_since(t0);
}

/// Steady-state sharded pump: same warmup volume spread round-robin over
/// the shards, then `events` enqueue_tell+ask(shard, 1) round trips, also
/// round-robin — each worker group completing and resubmitting in turn.
double run_sharded(std::size_t warmup, std::size_t events, std::size_t shards,
                   std::size_t gossip_every) {
  bo::ParamSpace space = bo::ParamSpace::paper_space();
  bo::ShardedBoConfig cfg;
  cfg.shards = shards;
  cfg.gossip_every = gossip_every;
  cfg.bo = bench_bo_config();
  cfg.bo.refit = bo::RefitMode::kIncremental;
  cfg.bo.batch = bo::BatchMode::kQUcb;
  bo::ShardedBo sharded(space, cfg);

  Rng rng(99);
  for (std::size_t i = 0; i < warmup; ++i) {
    bo::Point p = space.sample(rng);
    const double y = synthetic_objective(p);
    sharded.enqueue_tell(i % shards, std::move(p), y);
  }
  std::vector<bo::Point> pending(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    pending[s] = sharded.ask(s, 1).at(0);  // drains the shard's warmup
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e) {
    const std::size_t s = e % shards;
    sharded.enqueue_tell(s, pending[s], synthetic_objective(pending[s]));
    pending[s] = sharded.ask(s, 1).at(0);
  }
  return static_cast<double>(events) / seconds_since(t0);
}

/// Full simulated campaign (the real executor + surrogate evaluator), for
/// the search-quality side of the gate: sharding must not cost accuracy.
double campaign_best(std::size_t bo_shards, std::uint64_t seed,
                     double minutes) {
  nas::SearchSpace space;
  core::SearchConfig cfg = core::agebo_config(seed);
  cfg.bo_shards = bo_shards;
  benchutil::CampaignSpec spec;
  spec.n_workers = 64;
  spec.wall_minutes = minutes;
  return benchutil::run_campaign(space, cfg, spec).result.best_objective;
}

/// Mean best objective over the gate's seed set. A single seed is
/// noise-dominated (the centralized campaign's own seed-to-seed spread is
/// ~0.05 at this scale), so the parity gate compares seed-set means.
constexpr std::uint64_t kQualitySeeds[] = {7, 11, 13, 17};

double mean_campaign_best(std::size_t bo_shards, double minutes) {
  double sum = 0.0;
  for (const std::uint64_t seed : kQualitySeeds) {
    sum += campaign_best(bo_shards, seed, minutes);
  }
  return sum / static_cast<double>(std::size(kQualitySeeds));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  bool quick = false;
  std::size_t events = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--events" && i + 1 < argc) {
      events = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_search_json [--out FILE] [--check] [--quick] "
                   "[--events K]\n");
      return 2;
    }
  }
  // Enough round trips that the cheap (sharded) pump is timed over a few
  // hundred milliseconds — shorter runs make the gated ratio jitter.
  if (events == 0) events = quick ? 720 : 2880;

  std::vector<benchutil::SearchBenchRow> rows;
  bool gate_ok = true;

  for (const std::size_t workers : kWorkerScales) {
    const std::size_t shards = workers / kWorkersPerShard;
    // Warmup = one completed evaluation per worker: the history a manager
    // has already absorbed when the campaign reaches steady state.
    const std::size_t warmup = workers;
    const double central = run_centralized(warmup, events);
    const double sharded =
        run_sharded(warmup, events, shards, /*gossip_every=*/4);
    const double speedup = sharded / central;

    benchutil::SearchBenchRow rc;
    rc.kernel = "bo-central";
    rc.workers = workers;
    rc.evals_per_second = central;
    rows.push_back(rc);
    benchutil::SearchBenchRow rs;
    rs.kernel = "bo-sharded";
    rs.workers = workers;
    rs.shards = shards;
    rs.gossip = 4;
    rs.evals_per_second = sharded;
    rs.speedup = speedup;
    rows.push_back(rs);

    std::printf(
        "workers=%5zu shards=%3zu central=%9.1f evals/s sharded=%9.1f "
        "evals/s speedup=%6.2fx\n",
        workers, shards, central, sharded, speedup);
    if (check && workers == kGatedWorkers && speedup < kSpeedupGate) {
      std::fprintf(stderr,
                   "GATE FAILED: sharded/centralized throughput at %zu "
                   "workers is %.2fx, gate is %.1fx\n",
                   workers, speedup, kSpeedupGate);
      gate_ok = false;
    }
  }

  // Search-quality side of the gate: sharded campaigns on the real
  // simulated cluster must land within noise of the centralized ones over
  // the same seed set. The means also ride along in the JSON for
  // eyeballing.
  {
    const double minutes = quick ? 45.0 : 90.0;
    const double best_central = mean_campaign_best(0, minutes);
    const double best_sharded = mean_campaign_best(8, minutes);
    std::printf(
        "campaign mean best over %zu seeds: central=%.4f sharded(8)=%.4f "
        "delta=%.4f\n",
        std::size(kQualitySeeds), best_central, best_sharded,
        std::fabs(best_central - best_sharded));
    for (auto& r : rows) {
      r.best_objective =
          r.kernel == "bo-central" ? best_central : best_sharded;
    }
    if (check &&
        std::fabs(best_central - best_sharded) > kObjectiveNoise) {
      std::fprintf(stderr,
                   "GATE FAILED: sharded campaign best %.4f vs centralized "
                   "%.4f (allowed delta %.3f)\n",
                   best_sharded, best_central, kObjectiveNoise);
      gate_ok = false;
    }
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    benchutil::write_search_bench_json(os, rows);
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  } else {
    benchutil::write_search_bench_json(std::cout, rows);
  }
  return gate_ok ? 0 : 1;
}
