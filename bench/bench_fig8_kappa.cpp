// Fig 8: exploration/exploitation in AgEBO — number of unique
// high-performing architectures over time for kappa in {0.001, 1.96, 19.6}
// on Covertype and Dionis.
//
// Expected shape: kappa=0.001 (strong exploitation) accumulates one to two
// orders of magnitude more high performers and reaches the other variants'
// final counts 2-3x faster.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  const double kappas[] = {0.001, 1.96, 19.6};

  std::printf("=== Fig 8: AgEBO kappa ablation ===\n");
  for (const std::string dataset : {"covertype", "dionis"}) {
    benchutil::CampaignSpec spec;
    spec.dataset = dataset;

    std::vector<benchutil::CampaignOutput> runs;
    for (double kappa : kappas) {
      runs.push_back(benchutil::run_campaign(
          space, core::agebo_config(801, kappa), spec));
    }
    std::vector<const core::SearchResult*> results;
    for (const auto& r : runs) results.push_back(&r.result);
    const double threshold = core::high_performer_threshold(results);

    std::printf("\n--- %s (threshold %.4f) ---\n", dataset.c_str(), threshold);
    std::printf("# columns: label  minutes  cumulative unique count\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      char label[48];
      std::snprintf(label, sizeof(label), "kappa=%g", kappas[i]);
      const auto series =
          core::unique_high_performers(runs[i].result, threshold);
      benchutil::print_count_series(label, series, 10);
      std::printf("%s total: %zu\n", label, series.size());
    }
  }
  std::printf("\nexpected: kappa=0.001 total >> kappa=1.96 >= kappa=19.6\n");
  return 0;
}
