// Perf-regression harness for the gradient allreduce layer (DESIGN.md
// §11): sweeps representative MLP gradient layouts spanning the search
// space's parameter counts (~8k to ~1M params, covertype shapes: 54
// features in, 7 classes out) and replica counts n in {2, 4, 8}, times the
// seed's serial per-block accumulate-then-broadcast allreduce against the
// bucketed shared-store reduction (GradientComm), and emits
// machine-readable BENCH_allreduce.json.
//
// The fused path runs with a single executor (ThreadTeam of 1), which by
// the chunk-ownership contract produces byte-identical results to the
// trainer's rank-parallel execution — so this measures the memory-traffic
// win of the shared reduced store (n + 1 streams per element vs the
// reference's ~5n) in isolation, without thread-scheduling noise.
//
// The JSON uses the agebo-bench-allreduce-v1 schema, which maps onto the
// same record fields tools/bench_diff already parses:
//   kernel = strategy (flat | tree | ring), m = gradient parameter count,
//   k = replica count, n = 1, blocked_gflops = fused-path effective GB/s,
//   naive_gflops = reference GB/s, speedup = reference_ns / fused_ns.
//
// With --check it exits nonzero unless the fused path beats the reference
// by >= 2x on every strategy at k >= 4 replicas on the gated layouts — the
// PR's acceptance criterion, enforced by `ctest -L perf`. Non-gated
// layouts are still emitted and regression-tracked via bench_diff.
//
// Usage: bench_allreduce_json [--out FILE] [--check] [--quick] [--reps K]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dp/gradient_comm.hpp"
#include "dp/thread_team.hpp"
#include "nn/dense.hpp"

namespace {

using namespace agebo;

// Representative nets from the NAS search space, covertype-shaped (54
// features, 7 classes). Each produces the per-layer weight + bias gradient
// blocks the trainer actually reduces: a mix of sub-4KiB bias blocks
// (fusion-buffer path) and large weight blocks (zero-copy path).
struct Layout {
  const char* name;
  std::vector<std::size_t> dims;
  // Shapes under the hard >= 2x gate. The other two are reported and
  // regression-tracked through bench_diff, but their wins sit too close to
  // the line to hard-gate on a noisy box: mlp-8k's fused time is partly
  // per-call overhead, and mlp-401k's ~800 KiB weight block lets the serial
  // reference keep its accumulator L2-resident across its passes (measured
  // ~1.8x there, ~2.6-3.4x on the gated shapes).
  bool gated;
};

const Layout kLayouts[] = {
    {"mlp-8k", {54, 64, 64, 7}, false},           // ~8.1k params
    {"mlp-56k", {54, 256, 160, 7}, true},         // ~56k params
    {"mlp-401k", {54, 448, 448, 384, 7}, false},  // ~401k params
    {"mlp-1m", {54, 1024, 960, 7}, true},         // ~1.05M params
};
const std::size_t kQuickLayouts[] = {1, 3};  // the gated pair
const std::size_t kReplicaCounts[] = {2, 4, 8};

// Per-replica gradient blocks for a layout: weight then bias per layer.
std::vector<std::vector<float>> make_blocks(const Layout& layout, Rng& rng) {
  std::vector<std::vector<float>> blocks;
  for (std::size_t l = 0; l + 1 < layout.dims.size(); ++l) {
    blocks.emplace_back(layout.dims[l] * layout.dims[l + 1]);
    blocks.emplace_back(layout.dims[l + 1]);
  }
  for (auto& b : blocks) {
    for (auto& v : b) v = static_cast<float>(rng.normal());
  }
  return blocks;
}

// The seed's serial per-block allreduce, kept verbatim as the timing
// reference: shape checks, then one accumulate pass per source into the
// rank-0 buffer, a scale pass, and one vector assignment per destination —
// ~5n memory ops per element versus the shared-store path's n + 1.
void legacy_flat_allreduce(std::vector<std::vector<float>*>& buffers) {
  if (buffers.empty()) throw std::invalid_argument("allreduce: no buffers");
  for (const auto* b : buffers) {
    if (b == nullptr) throw std::invalid_argument("allreduce: null buffer");
    if (b->size() != buffers[0]->size()) {
      throw std::invalid_argument("allreduce: size mismatch");
    }
  }
  const std::size_t n = buffers.size();
  if (n == 1) return;
  auto& acc = *buffers[0];
  const std::size_t len = acc.size();
  for (std::size_t r = 1; r < n; ++r) {
    const auto& src = *buffers[r];
    for (std::size_t i = 0; i < len; ++i) acc[i] += src[i];
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < len; ++i) acc[i] *= inv;
  for (std::size_t r = 1; r < n; ++r) *buffers[r] = *buffers[0];
}

// Min-of-k wall times: two untimed warmups, per-rep iteration count
// calibrated to ~4 ms, best rep kept. Both paths are pure streaming code,
// so interference (the ctest harness, the hypervisor) can only inflate a
// sample — the minimum is the stable estimator on a shared box, where the
// median still wobbles enough to flap a 2x gate.
double measure_ns(const std::function<void()>& fn, int reps) {
  fn();
  fn();
  const auto c0 = std::chrono::steady_clock::now();
  fn();
  const auto c1 = std::chrono::steady_clock::now();
  const double once_ns =
      std::max(1.0, std::chrono::duration<double, std::nano>(c1 - c0).count());
  const std::size_t iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(4e6 / once_ns));

  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

struct Row {
  const char* kernel;
  std::size_t elems;
  std::size_t replicas;
  bool gated;
  double ref_ns;
  double fused_ns;
  double ref_gbps;
  double fused_gbps;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_allreduce.json";
  bool check = false;
  bool quick = false;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quick") {
      quick = true;
      reps = 5;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::vector<const Layout*> layouts;
  if (quick) {
    for (std::size_t i : kQuickLayouts) layouts.push_back(&kLayouts[i]);
  } else {
    for (const Layout& l : kLayouts) layouts.push_back(&l);
  }

  struct Strategy {
    const char* name;
    dp::AllreduceStrategy strategy;
  };
  const Strategy strategies[] = {
      {"flat", dp::AllreduceStrategy::kFlat},
      {"tree", dp::AllreduceStrategy::kTree},
      {"ring", dp::AllreduceStrategy::kRing},
  };

  std::vector<Row> rows;
  Rng rng(7);
  dp::ThreadTeam team1(1);
  for (const Layout* layout : layouts) {
    for (std::size_t n : kReplicaCounts) {
      // Per-replica gradient blocks, as the trainer lays them out.
      std::vector<std::vector<std::vector<float>>> grads;
      for (std::size_t r = 0; r < n; ++r) {
        grads.push_back(make_blocks(*layout, rng));
      }
      const std::size_t n_blocks = grads[0].size();
      std::size_t elems = 0;
      for (const auto& b : grads[0]) elems += b.size();

      std::vector<std::vector<nn::ParamRef>> params(n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t b = 0; b < n_blocks; ++b) {
          params[r].push_back(nn::ParamRef{&grads[r][b], &grads[r][b]});
        }
      }

      // The reference reuses one pointer vector across blocks, exactly as
      // the seed trainer's reduce phase did.
      std::vector<std::vector<float>*> bufs(n);
      const auto reference = [&] {
        for (std::size_t b = 0; b < n_blocks; ++b) {
          for (std::size_t r = 0; r < n; ++r) bufs[r] = &grads[r][b];
          legacy_flat_allreduce(bufs);
        }
      };

      // An allreduce reads and rewrites every replica's gradient once:
      // 2 * n * bytes is the logical payload both paths must move, so the
      // rates are directly comparable.
      const double payload =
          2.0 * static_cast<double>(n) * static_cast<double>(elems) * 4.0;

      const double ref_ns = measure_ns(reference, reps);
      for (const Strategy& st : strategies) {
        dp::GradientComm comm;
        dp::CommConfig cfg;
        cfg.strategy = st.strategy;
        comm.configure(params, cfg);
        const auto fused = [&] {
          comm.begin_step();
          for (std::size_t r = 0; r < n; ++r) {
            comm.on_blocks_ready(r, 0, n_blocks);
          }
          comm.reduce_rank(0, team1, "bench");
        };
        const double fused_ns = measure_ns(fused, reps);
        Row row{st.name,
                elems,
                n,
                layout->gated,
                ref_ns,
                fused_ns,
                payload / ref_ns,  // bytes/ns == GB/s
                payload / fused_ns,
                ref_ns / fused_ns};
        std::printf(
            "%-8s %-5s params=%8zu n=%zu  reference %7.2f GB/s"
            "  fused %7.2f GB/s  speedup %5.2fx\n",
            layout->name, row.kernel, elems, n, row.ref_gbps, row.fused_gbps,
            row.speedup);
        rows.push_back(row);
      }
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  os << "{\n  \"schema\": \"agebo-bench-allreduce-v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.elems
       << ", \"k\": " << r.replicas << ", \"n\": " << 1
       << ", \"naive_ns\": " << r.ref_ns << ", \"blocked_ns\": " << r.fused_ns
       << ", \"naive_gflops\": " << r.ref_gbps
       << ", \"blocked_gflops\": " << r.fused_gbps
       << ", \"speedup\": " << r.speedup << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    // Acceptance gate: >= 2x over the serial reference wherever the PR
    // promises it (4+ replicas, the gated representative layouts).
    bool ok = true;
    for (const Row& r : rows) {
      if (r.replicas < 4 || !r.gated) continue;
      if (r.speedup < 2.0) {
        std::cerr << "PERF REGRESSION: " << r.kernel << " params=" << r.elems
                  << " n=" << r.replicas
                  << " fused path under 2x vs serial reference (speedup "
                  << r.speedup << ")\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "check passed: fused allreduce >= 2x reference on all gated "
                 "shapes\n";
  }
  return 0;
}
