// Related-work comparison (Sec V): AgEBO vs a BOHB-style joint-space
// successive-halving search on the same simulated cluster.
//
// The paper's argument: successive halving is a *blocking* approach — every
// rung is a synchronization barrier, so stragglers idle the machine and
// node utilization collapses at scale, while AgEBO's asynchronous
// manager-worker loop keeps ~94% of the workers busy.
//
// Expected: comparable or lower best accuracy for SHA, and a large
// utilization gap in AgEBO's favor.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sha_search.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;  // covertype, 128 workers, 180 min

  const auto agebo = benchutil::run_campaign(space, core::agebo_config(1301), spec);

  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(spec.n_workers, spec.job_overhead_seconds);
  core::ShaJointConfig sha_cfg;
  sha_cfg.bracket_size = 128;
  sha_cfg.eta = 3;
  sha_cfg.rungs = 3;
  sha_cfg.wall_time_seconds = spec.wall_minutes * 60.0;
  sha_cfg.seed = 1302;
  core::ShaJointSearch sha(space, evaluator, executor, sha_cfg);
  const auto sha_result = sha.run();

  std::printf("=== Related work: AgEBO vs BOHB-style successive halving "
              "(Covertype, 128 workers, 180 min) ===\n");
  std::printf("%-18s %-14s %-16s %-12s\n", "method", "best acc",
              "full-fid evals", "utilization");
  std::printf("%-18s %-14.4f %-16zu %-12.0f%%\n", "AgEBO",
              agebo.result.best_objective, agebo.result.history.size(),
              100.0 * agebo.result.utilization.fraction());
  std::printf("%-18s %-14.4f %-16zu %-12.0f%%\n", "SHA (BOHB-style)",
              sha_result.best_objective, sha_result.history.size(),
              100.0 * sha_result.utilization.fraction());
  std::printf("\nexpected: AgEBO's asynchronous loop sustains much higher "
              "node utilization than the rung-barrier SHA\n");
  return 0;
}
