// Related-work comparison (Sec V): AgEBO vs a BOHB-style joint-space
// successive-halving search on the same simulated cluster — now with the
// decentralized sharded-BO manager (DESIGN.md §15) as a third contender.
//
// The paper's argument: successive halving is a *blocking* approach — every
// rung is a synchronization barrier, so stragglers idle the machine and
// node utilization collapses at scale, while AgEBO's asynchronous
// manager-worker loop keeps ~94% of the workers busy. The sharded manager
// keeps that loop asynchronous past the point where a single optimizer
// would itself become the barrier.
//
// Emits agebo-bench-search-v1 rows (the BENCH_search.json schema —
// kernel/m/k/n key, blocked_gflops = full-fidelity evaluations/s sustained
// over the campaign) so the comparison lands in the same bench_diff-able
// dialect as the gated scaling bench instead of ad-hoc stdout.
//
// Usage: bench_related_bohb [--out FILE] [--minutes M]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sha_search.hpp"

int main(int argc, char** argv) {
  using namespace agebo;

  std::string out_path;
  double minutes = 180.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--minutes" && i + 1 < argc) {
      minutes = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "usage: bench_related_bohb [--out FILE] [--minutes M]\n");
      return 2;
    }
  }

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;  // covertype, 128 workers
  spec.wall_minutes = minutes;
  const double wall_seconds = spec.wall_minutes * 60.0;
  const std::size_t shards = 8;

  const auto agebo =
      benchutil::run_campaign(space, core::agebo_config(1301), spec);

  core::SearchConfig dcfg = core::agebo_config(1301);
  dcfg.bo_shards = shards;  // the decentralized manager (DESIGN.md §15)
  const auto agebo_d = benchutil::run_campaign(space, dcfg, spec);

  eval::SurrogateEvaluator evaluator(space, eval::covertype_profile());
  exec::SimulatedExecutor executor(spec.n_workers, spec.job_overhead_seconds);
  core::ShaJointConfig sha_cfg;
  sha_cfg.bracket_size = 128;
  sha_cfg.eta = 3;
  sha_cfg.rungs = 3;
  sha_cfg.wall_time_seconds = wall_seconds;
  sha_cfg.seed = 1302;
  core::ShaJointSearch sha(space, evaluator, executor, sha_cfg);
  const auto sha_result = sha.run();

  std::printf("=== Related work: AgEBO vs BOHB-style successive halving "
              "(Covertype, %zu workers, %.0f min) ===\n",
              spec.n_workers, spec.wall_minutes);
  std::printf("%-18s %-14s %-16s %-12s\n", "method", "best acc",
              "full-fid evals", "utilization");
  std::printf("%-18s %-14.4f %-16zu %-12.0f%%\n", "AgEBO",
              agebo.result.best_objective, agebo.result.history.size(),
              100.0 * agebo.result.utilization.fraction());
  std::printf("%-18s %-14.4f %-16zu %-12.0f%%\n", agebo_d.variant.c_str(),
              agebo_d.result.best_objective, agebo_d.result.history.size(),
              100.0 * agebo_d.result.utilization.fraction());
  std::printf("%-18s %-14.4f %-16zu %-12.0f%%\n", "SHA (BOHB-style)",
              sha_result.best_objective, sha_result.history.size(),
              100.0 * sha_result.utilization.fraction());
  std::printf("\nexpected: the asynchronous loops sustain much higher node "
              "utilization than the rung-barrier SHA, and sharding the "
              "manager does not cost search quality\n");

  std::vector<benchutil::SearchBenchRow> rows;
  {
    benchutil::SearchBenchRow r;
    r.kernel = "campaign-agebo";
    r.workers = spec.n_workers;
    r.evals_per_second =
        static_cast<double>(agebo.result.history.size()) / wall_seconds;
    r.best_objective = agebo.result.best_objective;
    rows.push_back(r);
  }
  {
    benchutil::SearchBenchRow r;
    r.kernel = "campaign-agebo-sharded";
    r.workers = spec.n_workers;
    r.shards = shards;
    r.gossip = dcfg.bo_gossip_every;
    r.evals_per_second =
        static_cast<double>(agebo_d.result.history.size()) / wall_seconds;
    r.speedup = static_cast<double>(agebo_d.result.history.size()) /
                static_cast<double>(agebo.result.history.size());
    r.best_objective = agebo_d.result.best_objective;
    rows.push_back(r);
  }
  {
    benchutil::SearchBenchRow r;
    r.kernel = "campaign-sha-bohb";
    r.workers = spec.n_workers;
    r.evals_per_second =
        static_cast<double>(sha_result.history.size()) / wall_seconds;
    r.speedup = static_cast<double>(sha_result.history.size()) /
                static_cast<double>(agebo.result.history.size());
    r.best_objective = sha_result.best_objective;
    rows.push_back(r);
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    benchutil::write_search_bench_json(os, rows);
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  } else {
    benchutil::write_search_bench_json(std::cout, rows);
  }
  return 0;
}
