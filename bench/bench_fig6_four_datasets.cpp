// Fig 6: search trajectories of AgE-1 and AgEBO on the four datasets, with
// the Auto-PyTorch-like restricted-space reference as a horizontal line.
// Also reports node utilization (the paper observes ~94% for both methods).
//
// Expected shape per dataset: AgEBO exceeds AgE-1's *final* best accuracy
// within a fraction of the wall time (paper: 14/36/20/11 minutes vs
// 121/147/164/163) and also beats the Auto-PyTorch-like line.
#include <cstdio>

#include "baselines/auto_pytorch_like.hpp"
#include "bench_util.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;

  std::printf("=== Fig 6: AgE-1 vs AgEBO vs Auto-PyTorch-like on four "
              "datasets ===\n");

  for (const auto& profile : eval::paper_profiles()) {
    benchutil::CampaignSpec spec;
    spec.dataset = profile.name;

    const auto age1 =
        benchutil::run_campaign(space, core::age_config(1, 601), spec);
    const auto agebo =
        benchutil::run_campaign(space, core::agebo_config(602), spec);

    eval::SurrogateEvaluator evaluator(space, profile);
    const double autopt =
        baselines::surrogate_reference(space, evaluator, 2000, 603);

    std::printf("\n--- %s ---\n", profile.name.c_str());
    std::printf("# columns: variant  minutes  best-so-far valid acc\n");
    benchutil::print_trajectory("AgE-1", age1.result, 12);
    benchutil::print_trajectory("AgEBO", agebo.result, 12);
    std::printf("Auto-PyTorch-like reference line: %.4f\n", autopt);

    const double age1_final = age1.result.best_objective;
    const double t_beat = core::time_to_accuracy(agebo.result, age1_final);
    std::printf("AgE-1 final best: %.4f;  AgEBO final best: %.4f\n",
                age1_final, agebo.result.best_objective);
    if (t_beat >= 0.0) {
      std::printf("AgEBO matches AgE-1's final best after %.0f min "
                  "(AgE-1 needed the full run)\n",
                  t_beat / 60.0);
    }
    std::printf("node utilization: AgE-1 %.0f%%, AgEBO %.0f%%\n",
                100.0 * age1.result.utilization.fraction(),
                100.0 * agebo.result.utilization.fraction());
  }
  return 0;
}
