// Fig 5: number of unique high-performing models obtained by AgEBO and
// AgE-n variants on Covertype over time. The threshold is computed the way
// the paper does: the minimum across variants of each run's 0.99 accuracy
// quantile (~0.90 in the paper).
//
// Expected shape: AgEBO accumulates 1-2 orders of magnitude more unique
// high performers and reaches AgE-4/AgE-8's final count in about half the
// time.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;

  std::printf("=== Fig 5: unique high-performing architectures over time "
              "(Covertype) ===\n");

  std::vector<benchutil::CampaignOutput> runs;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    runs.push_back(benchutil::run_campaign(space, core::age_config(n, 300 + n), spec));
  }
  runs.push_back(benchutil::run_campaign(space, core::agebo_config(310), spec));

  std::vector<const core::SearchResult*> results;
  for (const auto& r : runs) results.push_back(&r.result);
  const double threshold = core::high_performer_threshold(results);
  std::printf("threshold (min of per-variant 0.99 quantiles): %.4f\n", threshold);
  std::printf("# columns: variant  minutes  cumulative unique count\n");

  for (const auto& r : runs) {
    const auto series = core::unique_high_performers(r.result, threshold);
    benchutil::print_count_series(r.variant, series);
    const double rate = 100.0 * static_cast<double>(series.size()) /
                        static_cast<double>(r.result.history.size());
    std::printf("%s total: %zu of %zu evaluations (%.1f%% hit rate)\n\n",
                r.variant.c_str(), series.size(), r.result.history.size(),
                rate);
  }
  std::printf("expected: AgEBO's hit rate (high performers per evaluation) "
              "far exceeds every AgE-n variant's, and AgE-8 collapses; "
              "absolute counts depend on evaluation throughput (AgEBO's "
              "tuned n=1 evaluations are slower on Covertype) — see "
              "EXPERIMENTS.md\n");
  return 0;
}
