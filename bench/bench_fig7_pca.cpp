// Fig 7: PCA projection of the top-1% configurations per dataset. The paper
// one-hot encodes the 37 architecture decisions (H_a) and normalizes the 3
// data-parallel hyperparameters (H_m) of each dataset's top-1%
// configurations, projects them to 2-D, and reports >80% conserved variance
// with per-dataset clusters.
//
// We reproduce the pipeline: pooled PCA over all four datasets' top-1%
// configurations, then report (a) conserved variance of the 2-D projection
// and (b) cluster separation (between-dataset centroid distance vs mean
// within-dataset spread) for both H_a and H_m views.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/pca.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;

  // Collect top-1% configurations per dataset.
  struct DatasetTop {
    std::string name;
    std::vector<std::vector<double>> arch_onehot;
    std::vector<std::vector<double>> hp_feat;
  };
  std::vector<DatasetTop> tops;

  for (const auto& profile : eval::paper_profiles()) {
    benchutil::CampaignSpec spec;
    spec.dataset = profile.name;
    const auto out =
        benchutil::run_campaign(space, core::agebo_config(901), spec);
    const std::size_t k =
        std::max<std::size_t>(10, out.result.history.size() / 100);
    const auto top = core::top_k(out.result, k);
    DatasetTop dt;
    dt.name = profile.name;
    const auto hp_space = bo::ParamSpace::paper_space();
    for (std::size_t idx : top) {
      const auto& rec = out.result.history[idx];
      // The paper projects the 37 raw architecture decisions; normalize
      // each decision by its arity so all dims share scale.
      std::vector<double> arch(rec.config.genome.size());
      for (std::size_t d = 0; d < arch.size(); ++d) {
        arch[d] = static_cast<double>(rec.config.genome[d]) /
                  static_cast<double>(space.arity(d) - 1);
      }
      dt.arch_onehot.push_back(std::move(arch));
      dt.hp_feat.push_back(hp_space.to_features(rec.config.hparams));
    }
    tops.push_back(std::move(dt));
  }

  auto analyze = [&](const char* label,
                     const std::vector<std::vector<double>> DatasetTop::*field) {
    // Pool rows, remember dataset of each.
    std::size_t total = 0;
    for (const auto& dt : tops) total += (dt.*field).size();
    const std::size_t dim = (tops[0].*field)[0].size();
    Matrix data(total, dim);
    std::vector<std::size_t> owner(total);
    std::size_t r = 0;
    for (std::size_t d = 0; d < tops.size(); ++d) {
      for (const auto& row : (tops[d].*field)) {
        for (std::size_t c = 0; c < dim; ++c) data(r, c) = row[c];
        owner[r] = d;
        ++r;
      }
    }
    const auto result = pca(data, 2);
    std::printf("\n%s: %zu configs, %zu dims -> 2; conserved variance %.1f%%\n",
                label, total, dim, 100.0 * result.conserved_variance());

    // Per-dataset centroids and spreads in the projected plane.
    std::vector<double> cx(tops.size(), 0.0), cy(tops.size(), 0.0);
    std::vector<std::size_t> cnt(tops.size(), 0);
    for (std::size_t i = 0; i < total; ++i) {
      cx[owner[i]] += result.projected(i, 0);
      cy[owner[i]] += result.projected(i, 1);
      cnt[owner[i]]++;
    }
    for (std::size_t d = 0; d < tops.size(); ++d) {
      cx[d] /= static_cast<double>(cnt[d]);
      cy[d] /= static_cast<double>(cnt[d]);
    }
    double spread = 0.0;
    for (std::size_t i = 0; i < total; ++i) {
      const double dx = result.projected(i, 0) - cx[owner[i]];
      const double dy = result.projected(i, 1) - cy[owner[i]];
      spread += std::sqrt(dx * dx + dy * dy);
    }
    spread /= static_cast<double>(total);
    double centroid_dist = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < tops.size(); ++a) {
      for (std::size_t b = a + 1; b < tops.size(); ++b) {
        const double dx = cx[a] - cx[b];
        const double dy = cy[a] - cy[b];
        centroid_dist += std::sqrt(dx * dx + dy * dy);
        ++pairs;
      }
    }
    centroid_dist /= static_cast<double>(pairs);
    for (std::size_t d = 0; d < tops.size(); ++d) {
      std::printf("  %-10s centroid (%+.2f, %+.2f), n=%zu\n",
                  tops[d].name.c_str(), cx[d], cy[d], cnt[d]);
    }
    std::printf("  mean between-dataset centroid distance %.3f vs mean "
                "within-dataset spread %.3f (ratio %.2f)\n",
                centroid_dist, spread, centroid_dist / spread);
  };

  std::printf("=== Fig 7: PCA of top-1%% configurations ===\n");
  analyze("H_a (37 architecture decisions)", &DatasetTop::arch_onehot);
  analyze("H_m (3 data-parallel hyperparameters)", &DatasetTop::hp_feat);
  std::printf("\nexpected: per-dataset clusters (ratio > 1) in both views\n");
  return 0;
}
