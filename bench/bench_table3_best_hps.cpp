// Table III: data-parallel training hyperparameters of the top-5 models
// found by AgEBO on each dataset.
//
// Paper reference (bs1 / lr1 / n clusters): Airlines 64-128 / ~0.0015 / 2;
// Albert 64-128 / ~0.0023 / 2-4; Covertype 256 / ~0.0014 / 1;
// Dionis 256 / ~0.0012 / 4. Expected shape: per-dataset distinct optima,
// consistent within each dataset's top 5.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/hp_analysis.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;

  std::printf("=== Table III: top-5 AgEBO hyperparameters per dataset ===\n");
  TextTable table({"dataset", "batch size", "learning rate", "no. of processes",
                   "validation accuracy"});
  std::vector<std::pair<std::string, core::TopKSummary>> summaries;

  for (const auto& profile : eval::paper_profiles()) {
    benchutil::CampaignSpec spec;
    spec.dataset = profile.name;
    const auto out =
        benchutil::run_campaign(space, core::agebo_config(701), spec);
    summaries.emplace_back(profile.name, core::summarize_top_k(out.result, 5));
    const auto top = core::top_k(out.result, 5);
    for (std::size_t idx : top) {
      const auto& rec = out.result.history[idx];
      table.add_row({profile.name, TextTable::fmt(rec.config.hparams[0], 0),
                     TextTable::fmt(rec.config.hparams[1], 6),
                     TextTable::fmt(rec.config.hparams[2], 0),
                     TextTable::fmt(rec.objective, 6)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("cluster summary (modal bs / lr geometric mean / modal n of "
              "the top 5):\n");
  for (const auto& [name, summary] : summaries) {
    std::printf("  %-10s bs=%g lr~%.5f n=%g\n", name.c_str(),
                summary.modal_values[0], summary.lr_geo_mean,
                summary.modal_values[2]);
  }
  std::printf("\npaper clusters: airlines(64-128, ~0.0015, 2) "
              "albert(64-128, ~0.0023, 2) covertype(256, ~0.0014, 1) "
              "dionis(256, ~0.0012, 4)\n");
  return 0;
}
