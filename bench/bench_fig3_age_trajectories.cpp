// Fig 3: search trajectories of AgE with different numbers of processes for
// data-parallel training on Covertype. Best-so-far validation accuracy over
// search wall time (180 min, 128 workers).
//
// Expected shape: AgE-2 and AgE-4 climb fastest and reach the highest
// accuracy; AgE-1 climbs slowly (few, long evaluations); AgE-8 climbs fast
// but plateaus at a lower accuracy.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace agebo;

  nas::SearchSpace space;
  benchutil::CampaignSpec spec;

  std::printf("=== Fig 3: AgE-n search trajectories on Covertype ===\n");
  std::printf("# columns: variant  minutes  best-so-far valid acc\n");
  double final_acc[4];
  int i = 0;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto out =
        benchutil::run_campaign(space, core::age_config(n, 100 + n), spec);
    benchutil::print_trajectory(out.variant, out.result);
    final_acc[i++] = out.result.best_objective;
  }
  std::printf("\nfinal best accuracies: AgE-1=%.4f AgE-2=%.4f AgE-4=%.4f "
              "AgE-8=%.4f\n",
              final_acc[0], final_acc[1], final_acc[2], final_acc[3]);
  std::printf("expected ordering: AgE-2 ~ AgE-4 > AgE-1 > AgE-8\n");
  return 0;
}
