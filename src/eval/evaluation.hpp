// Evaluation contract between the search algorithms (src/core) and the two
// evaluation backends: real data-parallel training (training_eval) and the
// calibrated analytic response surface (surrogate). See DESIGN.md §2 for
// why both exist.
#pragma once

#include <cstddef>

#include "bo/param_space.hpp"
#include "dp/data_parallel.hpp"
#include "exec/executor.hpp"
#include "nas/search_space.hpp"

namespace agebo::eval {

/// One candidate: an architecture genome h_a plus the data-parallel
/// training hyperparameters h_m = (bs1, lr1, n) in ParamSpace::paper_space()
/// dimension order.
struct ModelConfig {
  nas::Genome genome;
  bo::Point hparams;
};

/// Decode h_m into a DataParallelConfig (Eq. 2 is applied inside the
/// trainer). `hparams` must be in paper_space() order: bs1, lr1, n.
dp::DataParallelConfig to_dp_config(const bo::Point& hparams,
                                    std::size_t epochs = 20,
                                    std::uint64_t seed = 7);

/// The paper's fixed AgE defaults: bs1=256, lr1=0.01, n given.
bo::Point default_hparams(std::size_t n_procs);

/// One evaluation request: what to evaluate plus how. Replaces the old
/// evaluate(config) / evaluate_at(config, fidelity) pair with a single
/// carrier that per-job policy can extend without another virtual.
struct EvalRequest {
  ModelConfig config;
  /// Fraction (0, 1] of the full training budget (successive halving; the
  /// BOHB-style comparator). 1 = full fidelity.
  double fidelity = 1.0;
  /// Wall-time cap in seconds for this evaluation; 0 = none. Backends that
  /// honour it report failed=true when training would run past it (the
  /// surrogate models this as a scheduler kill).
  double deadline_seconds = 0.0;
};

/// Backend-agnostic evaluator. Implementations must be safe to call from
/// multiple worker threads concurrently (const access to shared state).
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual exec::EvalOutput evaluate(const EvalRequest& request) = 0;
};

}  // namespace agebo::eval
