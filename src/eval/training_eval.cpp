#include "eval/training_eval.hpp"

#include <algorithm>
#include <stdexcept>

#include "dp/data_parallel.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace agebo::eval {

TrainingEvaluator::TrainingEvaluator(const data::Dataset& train,
                                     const data::Dataset& valid,
                                     TrainingEvalConfig cfg)
    : train_(&train), valid_(&valid), cfg_(cfg) {
  if (train.n_rows == 0 || valid.n_rows == 0) {
    throw std::invalid_argument("TrainingEvaluator: empty split");
  }
  if (train.n_features != valid.n_features ||
      train.n_classes != valid.n_classes) {
    throw std::invalid_argument("TrainingEvaluator: split shape mismatch");
  }
}

exec::EvalOutput TrainingEvaluator::evaluate(const EvalRequest& request) {
  if (!(request.fidelity > 0.0) || request.fidelity > 1.0) {
    throw std::invalid_argument("evaluate: fidelity must be in (0, 1]");
  }
  // Fidelity scales the epoch budget; at least one epoch always runs.
  const auto epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(cfg_.epochs) * request.fidelity + 0.5));
  obs::Registry::global().counter("eval.evaluations").inc();
  OBS_SPAN("eval.train", {{"epochs", std::to_string(epochs)}});
  exec::EvalOutput out;
  train_model(request.config, &out, epochs);
  return out;
}

std::unique_ptr<nn::GraphNet> TrainingEvaluator::train_model(
    const ModelConfig& config, exec::EvalOutput* out) const {
  return train_model(config, out, cfg_.epochs);
}

std::unique_ptr<nn::GraphNet> TrainingEvaluator::train_model(
    const ModelConfig& config, exec::EvalOutput* out,
    std::size_t epochs) const {
  const auto spec =
      space_.to_graph_spec(config.genome, train_->n_features, train_->n_classes);
  auto dp_cfg = to_dp_config(config.hparams, epochs, cfg_.seed);
  dp_cfg.elastic = cfg_.elastic;

  dp::DataParallelTrainer trainer(spec, dp_cfg);
  const auto result = trainer.fit(*train_, *valid_);
  if (out != nullptr) {
    out->objective = result.best_valid_accuracy;
    out->train_seconds = result.wall_seconds;
    out->final_world = result.final_world;
    out->degraded = !result.elastic_events.empty();
  }

  // Move the trained replica-0 network out by copy-constructing a fresh
  // GraphNet and copying parameters.
  Rng rng(cfg_.seed);
  auto net = std::make_unique<nn::GraphNet>(spec, rng);
  auto dst = net->params();
  auto src = trainer.model().params();
  for (std::size_t b = 0; b < dst.size(); ++b) {
    *dst[b].values = *src[b].values;
  }
  return net;
}

}  // namespace agebo::eval
