#include "eval/evaluation.hpp"

#include <stdexcept>

namespace agebo::eval {

dp::DataParallelConfig to_dp_config(const bo::Point& hparams,
                                    std::size_t epochs, std::uint64_t seed) {
  if (hparams.size() != 3) {
    throw std::invalid_argument("to_dp_config: expected (bs1, lr1, n)");
  }
  dp::DataParallelConfig cfg;
  cfg.bs1 = static_cast<std::size_t>(hparams[0]);
  cfg.lr1 = hparams[1];
  cfg.n_procs = static_cast<std::size_t>(hparams[2]);
  cfg.epochs = epochs;
  cfg.seed = seed;
  if (cfg.bs1 == 0 || cfg.n_procs == 0 || cfg.lr1 <= 0.0) {
    throw std::invalid_argument("to_dp_config: invalid hyperparameters");
  }
  return cfg;
}

bo::Point default_hparams(std::size_t n_procs) {
  return {256.0, 0.01, static_cast<double>(n_procs)};
}

}  // namespace agebo::eval
