// Evaluator that really trains the architecture with data-parallel training
// on a tabular dataset — the paper's evaluation path, used by examples,
// integration tests, and the Table II accuracy/inference measurements.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "dp/data_parallel.hpp"
#include "eval/evaluation.hpp"

namespace agebo::eval {

struct TrainingEvalConfig {
  std::size_t epochs = 20;
  std::uint64_t seed = 7;
  /// Passed through to every DataParallelTrainer this evaluator builds.
  /// With elastic.enabled, replica faults during an evaluation shrink the
  /// world instead of failing the job; the output records the degraded
  /// final world size (EvalOutput::degraded / final_world).
  dp::ElasticConfig elastic;
};

class TrainingEvaluator final : public Evaluator {
 public:
  /// Keeps references; `train` and `valid` must outlive the evaluator.
  TrainingEvaluator(const data::Dataset& train, const data::Dataset& valid,
                    TrainingEvalConfig cfg = {});

  /// Trains a fresh network from request.config.genome with the
  /// data-parallel settings in config.hparams; returns the best validation
  /// accuracy over the run and the measured wall time. Fidelity < 1 scales
  /// the epoch budget (floor 1); deadline_seconds is ignored — real
  /// training cannot be preempted mid-run, the executor's JobSpec timeout
  /// covers it. Thread-safe: all shared state is read-only.
  exec::EvalOutput evaluate(const EvalRequest& request) override;

  /// Full-fidelity convenience wrapper.
  exec::EvalOutput evaluate(const ModelConfig& config) {
    return evaluate(EvalRequest{config});
  }

  /// Train and hand back the fitted network (for final-model evaluation).
  std::unique_ptr<nn::GraphNet> train_model(const ModelConfig& config,
                                            exec::EvalOutput* out = nullptr) const;

  const nas::SearchSpace& space() const { return space_; }

 private:
  std::unique_ptr<nn::GraphNet> train_model(const ModelConfig& config,
                                            exec::EvalOutput* out,
                                            std::size_t epochs) const;

  const data::Dataset* train_;
  const data::Dataset* valid_;
  TrainingEvalConfig cfg_;
  nas::SearchSpace space_;
};

}  // namespace agebo::eval
