// Calibrated analytic performance model used for paper-scale experiments
// (the NAS-bench role). Maps (architecture genome, data-parallel
// hyperparameters) -> (validation accuracy, training time) for each of the
// four benchmark datasets without burning node-hours.
//
// Accuracy model (all terms in accuracy units):
//   acc = max_acc
//       - arch_range * (1 - quality(genome))               architecture
//       - lr_quad * d^2 - lr_cliff * max(0, |d| - lr_tol)^2  d = log10(lr_eff/opt_lr_eff)
//       - bs_quad * e^2 - bs_cliff * max(0, |e| - bs_tol)^2  e = log2(bs_eff/opt_bs_eff)
//       - n_cliff * log2(n / scaling_limit)^2   (only when n > scaling_limit)
//       + n_bonus * log2(min(n, scaling_limit))
//       + noise
// with lr_eff = n*lr1 and bs_eff = n*bs1 (Eq. 2). The plateau-plus-cliff
// form reflects the linear-scaling-rule physics the paper reports: accuracy
// is flat near the optimum and collapses past the dataset's scaling limit
// (Table I: AgE-8 loses accuracy on Covertype while AgE-2/4 do not).
// n_bonus encodes the mild preference for parallelism up to the limit that
// makes Table III's per-dataset optima (Covertype n=1, Airlines/Albert n=2,
// Dionis n=4) unique rather than time-only ties.
//
// quality() is a seeded per-dataset response over the 37 decisions:
// per-decision contribution tables plus pairwise interactions, squashed to
// [0,1] — smooth enough for mutation hill-climbing, rugged enough that
// search is non-trivial.
//
// Time model (calibrated to Table I: 26.54 / 8.97 / 5.38 / 3.19 minutes on
// Covertype for n = 1/2/4/8 under the linear scaling rule):
//   t = base_minutes * arch_cost / (speedup(n) * (bs1/256)^0.35)
// where speedup interpolates the measured lookup {1:1.00, 2:2.96, 4:4.93,
// 8:8.32} (superlinear at n=2 because the global batch doubles as well).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dp/perf_model.hpp"
#include "eval/evaluation.hpp"
#include "nas/search_space.hpp"

namespace agebo::eval {

struct DatasetProfile {
  std::string name;
  double max_acc;        ///< ceiling at perfect arch + tuned hyperparameters
  /// Architecture gap = min(arch_gap_cap, arch_gap_scale * exp(-z /
  /// arch_tau)), where z is the genome's standardized landscape score. The
  /// exponential tail keeps the top of the landscape spread out: search
  /// keeps finding small improvements for thousands of evaluations (Fig 3's
  /// still-rising trajectories) instead of saturating at max_acc. The cap
  /// bounds how badly a random fully connected net can do on tabular data —
  /// without it, early random-architecture evaluations would swamp the BO's
  /// view of the hyperparameters (Fig 3's dots all sit within ~0.1 of the
  /// best on the real datasets).
  double arch_gap_scale;
  double arch_tau;
  double arch_gap_cap;

  double opt_lr_eff;     ///< optimal effective learning rate (n * lr1)
  double lr_quad;        ///< gentle quadratic pull toward opt_lr_eff
  double lr_tol;         ///< plateau half-width, decades
  double lr_cliff;       ///< penalty coefficient past the plateau

  double opt_bs_eff;     ///< optimal effective batch (n * bs1)
  double bs_quad;
  double bs_tol;         ///< plateau half-width, doublings
  double bs_cliff;

  std::size_t scaling_limit;  ///< largest n with no parallelism penalty
  double n_cliff;        ///< quadratic penalty past the limit (per log2^2)
  double n_bonus;        ///< benefit per doubling up to the limit

  /// Training-stability mixture: a run either converges ("stable", reaching
  /// its potential minus a small |N(0, stable_sd)|) or underperforms by
  /// |N(mu_u, 0.4 mu_u)| with mu_u = unstable_base + unstable_coeff *
  /// sqrt(hp gap). The stability probability decays with hyperparameter
  /// mismatch: p = p_floor + p_range * exp(-hp gap / p_gap_scale).
  /// This is the mechanism behind Fig 5/8: with tuned hyperparameters
  /// ~20% of evaluations train to potential, with default ones only a few
  /// percent do — so AgEBO accumulates high performers at 5-10x the rate of
  /// AgE-n while the best-so-far ceilings stay close (Table I).
  double p_floor;
  double p_range;
  double p_gap_scale;
  double stable_sd;
  double unstable_base;
  double unstable_coeff;

  double noise_sd;       ///< residual symmetric evaluation noise
  double base_minutes;   ///< mean train time at n=1, bs1=256, 20 epochs
  double time_noise_sd;  ///< lognormal sigma on the time

  std::uint64_t seed;    ///< seeds the quality tables
};

/// Calibrated profiles for the paper's four datasets, in paper order
/// {covertype, airlines, albert, dionis}.
DatasetProfile covertype_profile();
DatasetProfile airlines_profile();
DatasetProfile albert_profile();
DatasetProfile dionis_profile();
std::vector<DatasetProfile> paper_profiles();
DatasetProfile profile_by_name(const std::string& name);

/// Interpolated parallel speedup lookup calibrated to Table I.
double dp_speedup(double n_procs);

/// Simulated elastic-training faults for campaign-scale tests (DESIGN.md
/// §16): replica crashes drawn statelessly per (config, epoch, rank) from
/// `seed`, so re-evaluating a config — including after a checkpoint resume
/// — reproduces the same degradation exactly.
struct ElasticSimConfig {
  bool enabled = false;
  /// Per-replica per-epoch crash probability.
  double crash_prob = 0.0;
  std::uint64_t seed = 0;
  /// The world never shrinks below max(1, min_replicas); ranks at the
  /// floor are not subject to injection (mirrors the dp-layer contract
  /// that a fit below the floor is a failure, which campaign tests avoid).
  std::size_t min_replicas = 1;
};

class SurrogateEvaluator final : public Evaluator {
 public:
  SurrogateEvaluator(const nas::SearchSpace& space, DatasetProfile profile);

  /// Deterministic per-config: the noise stream is seeded from a hash of
  /// the config, so re-evaluating the same point reproduces the result.
  ///
  /// Partial-budget training (request.fidelity < 1, successive halving):
  /// accuracy follows a learning-curve model acc(f) = acc(1) - lc_gap *
  /// (1-f)^1.4, time scales linearly with f, and low fidelity adds ranking
  /// noise — reproducing the "poor relative ranking between small and
  /// extensive budget" issue the paper cites for multi-fidelity methods.
  ///
  /// A positive request.deadline_seconds models a scheduler kill: when the
  /// simulated training time would run past it, the result is failed=true /
  /// timed_out=true with train_seconds capped at the deadline.
  exec::EvalOutput evaluate(const EvalRequest& request) override;

  /// Full-fidelity convenience wrapper.
  exec::EvalOutput evaluate(const ModelConfig& config) {
    return evaluate(EvalRequest{config});
  }

  /// Architecture quality in [0,1]; exposed for calibration and tests.
  double quality(const nas::Genome& g) const;

  /// Standardized landscape score (z) of a genome; quality and the
  /// accuracy's architecture term are both monotone in it.
  double score_z(const nas::Genome& g) const;

  /// Noise-free accuracy for a config (tests / calibration).
  double mean_accuracy(const ModelConfig& config) const;
  /// Noise-free training time in seconds.
  double mean_train_seconds(const ModelConfig& config) const;

  const DatasetProfile& profile() const { return profile_; }

  /// Model a non-default gradient-communication configuration: simulated
  /// training times are scaled by the ratio of the analytic step time
  /// under `spec` (dp::predict_step_seconds) to the step time under the
  /// calibration default (ring strategy, 1 MiB buckets, overlap on) — the
  /// configuration the Table-I times correspond to. Unset, or set to the
  /// default, the factor is exactly 1 and calibrated times are unchanged.
  void set_comm_spec(const dp::AllreduceCommSpec& spec) {
    comm_spec_ = spec;
    has_comm_spec_ = true;
  }

  /// Enable simulated replica crashes: evaluations whose world shrinks
  /// report degraded=true / final_world < n, with the training time
  /// blended across the per-epoch world sizes (epochs after a loss run at
  /// the shrunken world's speedup) and the accuracy moved to the Eq. 2
  /// operating point of the final world size. Deterministic per config.
  void set_elastic(const ElasticSimConfig& cfg) { elastic_ = cfg; }
  const ElasticSimConfig& elastic() const { return elastic_; }

 private:
  exec::EvalOutput evaluate_full(const ModelConfig& config);
  void apply_elastic(const ModelConfig& config, exec::EvalOutput& out);
  double hparam_gap(double bs1, double lr1, double n) const;
  double arch_cost_factor(const nas::Genome& g) const;

  const nas::SearchSpace* space_;
  DatasetProfile profile_;
  // Per-decision contribution tables: main_[i][v].
  std::vector<std::vector<double>> main_;
  // Pairwise interactions: (a, b, table[v_a * arity(b) + v_b]).
  struct Interaction {
    std::size_t a;
    std::size_t b;
    std::vector<double> table;
  };
  std::vector<Interaction> interactions_;
  double score_scale_ = 1.0;
  bool has_comm_spec_ = false;
  dp::AllreduceCommSpec comm_spec_;
  dp::PerfModelParams comm_model_;
  ElasticSimConfig elastic_;
};

}  // namespace agebo::eval
