#include "eval/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/registry.hpp"

namespace agebo::eval {

namespace {

constexpr double kMinutes = 60.0;

/// FNV-1a over the config so noise is a deterministic function of the
/// evaluated point (plus the profile seed).
std::uint64_t config_hash(const ModelConfig& cfg, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (int g : cfg.genome) mix(static_cast<std::uint64_t>(g) + 0x9e37);
  for (double p : cfg.hparams) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(p));
    std::memcpy(&bits, &p, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

double dp_speedup(double n_procs) {
  if (n_procs < 1.0) throw std::invalid_argument("dp_speedup: n < 1");
  // Piecewise-linear in (log2 n, log2 speedup) through the Table I anchors.
  static constexpr double kLogN[] = {0.0, 1.0, 2.0, 3.0};
  static constexpr double kLogS[] = {0.0, 1.566, 2.302, 3.056};
  const double x = std::log2(n_procs);
  if (x >= kLogN[3]) return std::exp2(kLogS[3] + 0.75 * (x - kLogN[3]));
  std::size_t i = 0;
  while (i + 2 < 4 && x > kLogN[i + 1]) ++i;
  const double t = (x - kLogN[i]) / (kLogN[i + 1] - kLogN[i]);
  return std::exp2(kLogS[i] + t * (kLogS[i + 1] - kLogS[i]));
}

DatasetProfile covertype_profile() {
  DatasetProfile p;
  p.name = "covertype";
  p.max_acc = 0.942;
  p.arch_gap_scale = 0.80;
  p.arch_tau = 0.87;
  p.arch_gap_cap = 0.08;
  p.opt_lr_eff = 0.0014;
  p.lr_quad = 0.003;
  p.lr_tol = 1.5;
  p.lr_cliff = 0.22;
  p.opt_bs_eff = 256;
  p.bs_quad = 0.0012;
  p.bs_tol = 2.0;
  p.bs_cliff = 0.002;
  p.scaling_limit = 1;
  p.n_cliff = 0.0015;
  p.n_bonus = 0.0;
  p.p_floor = 0.03;
  p.p_range = 0.28;
  p.p_gap_scale = 0.0010;
  p.stable_sd = 0.0025;
  p.unstable_base = 0.02;
  p.unstable_coeff = 0.3;
  p.noise_sd = 0.002;
  p.base_minutes = 26.5;
  p.time_noise_sd = 0.10;
  p.seed = 0xC0FE;
  return p;
}

DatasetProfile airlines_profile() {
  DatasetProfile p;
  p.name = "airlines";
  p.max_acc = 0.6495;
  p.arch_gap_scale = 0.60;
  p.arch_tau = 0.87;
  p.arch_gap_cap = 0.02;
  p.opt_lr_eff = 0.003;
  p.lr_quad = 0.0006;
  p.lr_tol = 1.3;
  p.lr_cliff = 0.10;
  p.opt_bs_eff = 128;
  p.bs_quad = 0.0004;
  p.bs_tol = 2.0;
  p.bs_cliff = 0.003;
  p.scaling_limit = 2;
  p.n_cliff = 0.0015;
  p.n_bonus = 0.0008;
  p.p_floor = 0.03;
  p.p_range = 0.28;
  p.p_gap_scale = 0.0010;
  p.stable_sd = 0.0015;
  p.unstable_base = 0.007;
  p.unstable_coeff = 0.1;
  p.noise_sd = 0.002;
  p.base_minutes = 14.0;
  p.time_noise_sd = 0.10;
  p.seed = 0xA1B;
  return p;
}

DatasetProfile albert_profile() {
  DatasetProfile p;
  p.name = "albert";
  p.max_acc = 0.6635;
  p.arch_gap_scale = 0.55;
  p.arch_tau = 0.87;
  p.arch_gap_cap = 0.045;
  p.opt_lr_eff = 0.0044;
  p.lr_quad = 0.0006;
  p.lr_tol = 1.3;
  p.lr_cliff = 0.12;
  p.opt_bs_eff = 128;
  p.bs_quad = 0.0004;
  p.bs_tol = 2.0;
  p.bs_cliff = 0.003;
  p.scaling_limit = 2;
  p.n_cliff = 0.0015;
  p.n_bonus = 0.0008;
  p.p_floor = 0.03;
  p.p_range = 0.28;
  p.p_gap_scale = 0.0010;
  p.stable_sd = 0.0018;
  p.unstable_base = 0.008;
  p.unstable_coeff = 0.12;
  p.noise_sd = 0.002;
  p.base_minutes = 18.0;
  p.time_noise_sd = 0.10;
  p.seed = 0xA7BE;
  return p;
}

DatasetProfile dionis_profile() {
  DatasetProfile p;
  p.name = "dionis";
  p.max_acc = 0.905;
  p.arch_gap_scale = 3.00;
  p.arch_tau = 0.70;
  p.arch_gap_cap = 0.15;
  p.opt_lr_eff = 0.0048;
  p.lr_quad = 0.0008;
  p.lr_tol = 1.3;
  p.lr_cliff = 0.20;
  p.opt_bs_eff = 1024;
  p.bs_quad = 0.0005;
  p.bs_tol = 2.0;
  p.bs_cliff = 0.004;
  p.scaling_limit = 4;
  p.n_cliff = 0.002;
  p.n_bonus = 0.0012;
  p.p_floor = 0.03;
  p.p_range = 0.28;
  p.p_gap_scale = 0.0010;
  p.stable_sd = 0.003;
  p.unstable_base = 0.025;
  p.unstable_coeff = 0.4;
  p.noise_sd = 0.002;
  p.base_minutes = 24.0;
  p.time_noise_sd = 0.10;
  p.seed = 0xD105;
  return p;
}

std::vector<DatasetProfile> paper_profiles() {
  return {covertype_profile(), airlines_profile(), albert_profile(),
          dionis_profile()};
}

DatasetProfile profile_by_name(const std::string& name) {
  for (auto& p : paper_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("profile_by_name: unknown dataset " + name);
}

SurrogateEvaluator::SurrogateEvaluator(const nas::SearchSpace& space,
                                       DatasetProfile profile)
    : space_(&space), profile_(std::move(profile)) {
  Rng rng(profile_.seed * 0x9E3779B97F4A7C15ULL + 1);
  const std::size_t n = space.n_decisions();

  double var_sum = 0.0;
  main_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t arity = space.arity(i);
    // Variable-node op decisions (arity > 2) matter more than skip nodes.
    const double w = arity > 2 ? 1.0 : 0.35;
    main_[i].resize(arity);
    double mean = 0.0;
    for (std::size_t v = 0; v < arity; ++v) {
      double c = rng.normal(0.0, w);
      if (arity > 2 && v == 0) c -= 0.5 * w;  // identity op: mild capacity loss
      if (arity == 2 && v == 1) c += 0.15;    // skips mildly help on average
      main_[i][v] = c;
      mean += c;
    }
    mean /= static_cast<double>(arity);
    double var = 0.0;
    for (double& c : main_[i]) {
      c -= mean;  // center so the table contributes zero-mean score
      var += c * c;
    }
    var_sum += var / static_cast<double>(arity);
  }

  // Pairwise interactions make the landscape non-separable so greedy
  // per-decision optimization cannot trivially solve it. Their share of the
  // total score variance (~50%) is what keeps thousands of evaluations from
  // saturating the landscape, matching the paper's still-rising Fig 3
  // trajectories at 180 minutes.
  const std::size_t n_pairs = std::min<std::size_t>(40, n * (n - 1) / 2);
  for (std::size_t pidx = 0; pidx < n_pairs; ++pidx) {
    Interaction inter;
    inter.a = rng.index(n);
    do {
      inter.b = rng.index(n);
    } while (inter.b == inter.a);
    const std::size_t cells = space.arity(inter.a) * space.arity(inter.b);
    inter.table.resize(cells);
    double mean = 0.0;
    for (double& c : inter.table) {
      c = rng.normal(0.0, 0.55);
      mean += c;
    }
    mean /= static_cast<double>(cells);
    double var = 0.0;
    for (double& c : inter.table) {
      c -= mean;
      var += c * c;
    }
    var_sum += var / static_cast<double>(cells);
    interactions_.push_back(std::move(inter));
  }
  score_scale_ = std::sqrt(std::max(var_sum, 1e-12));
}

double SurrogateEvaluator::score_z(const nas::Genome& g) const {
  space_->validate(g);
  double s = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    s += main_[i][static_cast<std::size_t>(g[i])];
  }
  for (const auto& inter : interactions_) {
    const auto va = static_cast<std::size_t>(g[inter.a]);
    const auto vb = static_cast<std::size_t>(g[inter.b]);
    s += inter.table[va * space_->arity(inter.b) + vb];
  }
  return s / score_scale_;
}

double SurrogateEvaluator::quality(const nas::Genome& g) const {
  // Logistic squash of the standardized score: random genomes spread over
  // (0,1), top genomes approach 1.
  return 1.0 / (1.0 + std::exp(-1.2 * score_z(g)));
}

double SurrogateEvaluator::hparam_gap(double bs1, double lr1, double n) const {
  const DatasetProfile& p = profile_;
  const double lr_eff = n * lr1;
  const double bs_eff = n * bs1;

  const double d = std::log10(lr_eff / p.opt_lr_eff);
  double gap = p.lr_quad * d * d;
  const double d_excess = std::max(0.0, std::abs(d) - p.lr_tol);
  gap += p.lr_cliff * d_excess * d_excess;

  const double e = std::log2(bs_eff / p.opt_bs_eff);
  gap += p.bs_quad * e * e;
  const double e_excess = std::max(0.0, std::abs(e) - p.bs_tol);
  gap += p.bs_cliff * e_excess * e_excess;

  const auto limit = static_cast<double>(p.scaling_limit);
  if (n > limit) {
    const double excess = std::log2(n / limit);
    gap += p.n_cliff * excess * excess;
  }
  gap -= p.n_bonus * std::log2(std::min(n, limit));
  return gap;
}

double SurrogateEvaluator::arch_cost_factor(const nas::Genome& g) const {
  // Cost proxy: total dense units relative to the space's expected total,
  // including the skip-connection projection layers.
  const auto spec = space_->to_graph_spec(g, 54, 7);
  double units = 0.0;
  std::size_t n_skip_slots = space_->n_decisions() - space_->n_variable_nodes();
  for (const auto& node : spec.nodes) {
    if (!node.is_identity) units += static_cast<double>(node.units);
    units += 8.0 * static_cast<double>(node.skips.size());  // projections
  }
  const double expected =
      static_cast<double>(space_->n_variable_nodes()) * 56.0 * (30.0 / 31.0) +
      0.5 * 8.0 * static_cast<double>(n_skip_slots);
  return 0.25 + 0.75 * units / expected;
}

double SurrogateEvaluator::mean_accuracy(const ModelConfig& config) const {
  if (config.hparams.size() != 3) {
    throw std::invalid_argument("SurrogateEvaluator: hparams must be (bs1,lr1,n)");
  }
  const double z = score_z(config.genome);
  const double arch_gap = std::min(
      profile_.arch_gap_cap,
      profile_.arch_gap_scale * std::exp(-z / profile_.arch_tau));
  const double gap = hparam_gap(config.hparams[0], config.hparams[1],
                                config.hparams[2]);
  return profile_.max_acc - arch_gap - gap;
}

double SurrogateEvaluator::mean_train_seconds(const ModelConfig& config) const {
  const double n = config.hparams[2];
  const double bs1 = config.hparams[0];
  const double cost = arch_cost_factor(config.genome);
  double minutes = profile_.base_minutes * cost /
                   (dp_speedup(n) * std::pow(bs1 / 256.0, 0.35));
  if (has_comm_spec_) {
    // Scale by the analytic step-time ratio of the requested communication
    // configuration over the calibration default (ring + 1 MiB buckets +
    // overlap, which the Table-I times correspond to). A representative
    // search-space parameter count keeps the factor architecture-agnostic.
    constexpr std::size_t kRepresentativeParams = 50'000;
    const auto np = static_cast<std::size_t>(n);
    const auto lb = static_cast<std::size_t>(bs1);
    dp::AllreduceCommSpec defaults;
    defaults.strategy = dp::AllreduceStrategy::kRing;
    defaults.overlap = true;
    minutes *= dp::predict_step_seconds(comm_model_, comm_spec_, np, lb,
                                        kRepresentativeParams) /
               dp::predict_step_seconds(comm_model_, defaults, np, lb,
                                        kRepresentativeParams);
  }
  return minutes * kMinutes;
}

exec::EvalOutput SurrogateEvaluator::evaluate(const EvalRequest& request) {
  if (!(request.fidelity > 0.0) || request.fidelity > 1.0) {
    throw std::invalid_argument("evaluate: fidelity must be in (0, 1]");
  }
  obs::Registry::global().counter("eval.evaluations").inc();
  exec::EvalOutput out = evaluate_full(request.config);
  if (request.fidelity < 1.0) {
    // Learning-curve shortfall plus fidelity-dependent ranking noise,
    // seeded from (config, fidelity) so repeats are reproducible.
    Rng noise(config_hash(request.config, profile_.seed) ^
              static_cast<std::uint64_t>(request.fidelity * 1e9));
    const double lc_gap = 0.06 * std::pow(1.0 - request.fidelity, 1.4);
    const double rank_noise =
        noise.normal(0.0, 2.0 * profile_.noise_sd * (1.0 - request.fidelity));
    out.objective = std::clamp(out.objective - lc_gap + rank_noise, 0.0, 1.0);
    out.train_seconds *= request.fidelity;
  }
  if (request.deadline_seconds > 0.0 &&
      out.train_seconds > request.deadline_seconds) {
    // The scheduler would have killed this run at the deadline.
    out.failed = true;
    out.timed_out = true;
    out.objective = 0.0;
    out.train_seconds = request.deadline_seconds;
  }
  return out;
}

exec::EvalOutput SurrogateEvaluator::evaluate_full(const ModelConfig& config) {
  Rng noise(config_hash(config, profile_.seed));
  exec::EvalOutput out;
  // Training-stability mixture (see DatasetProfile): the run either
  // converges to its potential or underperforms substantially, with the
  // stability probability decaying in the hyperparameter mismatch.
  const double hp_gap = std::max(
      0.0, hparam_gap(config.hparams[0], config.hparams[1], config.hparams[2]));
  const double p_stable =
      profile_.p_floor + profile_.p_range * std::exp(-hp_gap / profile_.p_gap_scale);
  double shortfall;
  if (noise.bernoulli(p_stable)) {
    shortfall = std::abs(noise.normal(0.0, profile_.stable_sd));
  } else {
    const double mu_u =
        profile_.unstable_base + profile_.unstable_coeff * std::sqrt(hp_gap);
    shortfall = std::abs(noise.normal(mu_u, 0.4 * mu_u));
  }
  const double acc = mean_accuracy(config) - shortfall +
                     noise.normal(0.0, profile_.noise_sd);
  out.objective = std::clamp(acc, 0.0, 1.0);
  out.train_seconds = mean_train_seconds(config) *
                      std::exp(noise.normal(0.0, profile_.time_noise_sd));
  const auto n0 = static_cast<std::size_t>(config.hparams[2]);
  out.final_world = std::max<std::size_t>(1, n0);
  if (elastic_.enabled && elastic_.crash_prob > 0.0) {
    apply_elastic(config, out);
  }
  return out;
}

void SurrogateEvaluator::apply_elastic(const ModelConfig& config,
                                       exec::EvalOutput& out) {
  // Per-epoch replica-crash draws, seeded from (config, elastic seed) only:
  // a resumed campaign re-evaluating nothing still replays any in-flight
  // evaluation identically, which the kill+resume tests rely on.
  Rng draws(config_hash(config, elastic_.seed ^ 0x656c6173746963ULL));
  const double n0 = config.hparams[2];
  const std::size_t floor = std::max<std::size_t>(1, elastic_.min_replicas);
  std::size_t n_live = out.final_world;
  // Epoch budget of the simulated run; matches the default training recipe.
  constexpr std::size_t kSimEpochs = 20;
  double time_factor = 0.0;
  const double s0 = dp_speedup(std::max(1.0, n0));
  for (std::size_t epoch = 0; epoch < kSimEpochs; ++epoch) {
    // Ranks above the floor are eligible to crash this epoch.
    std::size_t losses = 0;
    for (std::size_t r = floor; r < n_live; ++r) {
      if (draws.bernoulli(elastic_.crash_prob)) ++losses;
    }
    n_live -= losses;
    // This epoch trains at the (possibly shrunken) world's speedup; the
    // reconfigured run keeps Eq. 2 scaling at the new world size.
    time_factor += s0 / dp_speedup(static_cast<double>(n_live));
  }
  time_factor /= static_cast<double>(kSimEpochs);
  out.train_seconds *= time_factor;
  if (n_live < out.final_world) {
    out.degraded = true;
    // The surviving epochs ran at the Eq. 2 operating point of the final
    // world size; move the accuracy to that point (the noise draw is kept).
    const double gap0 =
        hparam_gap(config.hparams[0], config.hparams[1], n0);
    const double gap_f = hparam_gap(config.hparams[0], config.hparams[1],
                                    static_cast<double>(n_live));
    out.objective = std::clamp(out.objective + gap0 - gap_f, 0.0, 1.0);
    out.final_world = n_live;
  }
}

}  // namespace agebo::eval
