#include "svc/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/state_io.hpp"
#include "exec/live_executor.hpp"
#include "exec/sim_executor.hpp"
#include "obs/span.hpp"
#include "svc/checkpoint.hpp"

namespace agebo::svc {

namespace {

const char* kind_token(CampaignKind kind) {
  return kind == CampaignKind::kAgebo ? "agebo" : "sha";
}

CampaignKind kind_from_token(const std::string& token,
                             const std::string& what) {
  if (token == "agebo") return CampaignKind::kAgebo;
  if (token == "sha") return CampaignKind::kSha;
  core::state::fail(what, "bad campaign kind \"" + token + "\"");
}

}  // namespace

CampaignRegistry::CampaignRegistry(SvcConfig cfg, const nas::SearchSpace& space)
    : cfg_(std::move(cfg)), space_(&space) {
  if (cfg_.workers == 0) {
    throw std::invalid_argument("SvcConfig: zero workers");
  }
  if (cfg_.checkpoint_every_seconds > 0.0 && cfg_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "SvcConfig: checkpoint interval without checkpoint_path");
  }
  if (cfg_.live) {
    executor_ = std::make_unique<exec::LiveExecutor>(cfg_.workers, cfg_.policy,
                                                     cfg_.faults);
  } else {
    executor_ = std::make_unique<exec::SimulatedExecutor>(
        cfg_.workers, cfg_.job_overhead_seconds, cfg_.policy, cfg_.faults);
  }
  auto& reg = obs::Registry::global();
  m_admitted_ = reg.counter("svc.admitted");
  m_completed_ = reg.counter("svc.completed");
  m_checkpoints_ = reg.counter("svc.checkpoints");
  m_active_ = reg.gauge("svc.campaigns_active");
}

double CampaignRegistry::now() const { return executor_->now(); }

void CampaignRegistry::set_tenant(TenantSpec spec) {
  if (started_) throw std::logic_error("set_tenant after the service started");
  if (spec.name.empty()) throw std::invalid_argument("TenantSpec: empty name");
  if (spec.priority <= 0.0) {
    throw std::invalid_argument("TenantSpec: non-positive priority");
  }
  auto it = tenants_.find(spec.name);
  if (it == tenants_.end()) {
    Tenant t;
    t.spec = spec;
    t.busy = obs::Registry::global().dcounter(exec::tenant_busy_metric(spec.name));
    t.busy_baseline = t.busy.total();
    tenant_order_.push_back(spec.name);
    tenants_.emplace(spec.name, std::move(t));
  } else {
    it->second.spec = std::move(spec);
  }
}

CampaignRegistry::Tenant& CampaignRegistry::tenant_of(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TenantSpec spec;
    spec.name = name;
    set_tenant(spec);
    it = tenants_.find(name);
  }
  return it->second;
}

std::size_t CampaignRegistry::add_campaign(CampaignSpec spec) {
  if (started_) throw std::logic_error("add_campaign after the service started");
  if (by_name_.count(spec.name) > 0) {
    throw std::invalid_argument("duplicate campaign name \"" + spec.name + "\"");
  }
  tenant_of(spec.tenant);  // materialize the tenant
  CampaignRt rt;
  rt.campaign = std::make_unique<Campaign>(spec, *space_);
  const std::size_t index = campaigns_.size();
  by_name_.emplace(spec.name, index);
  campaigns_.push_back(std::move(rt));
  return index;
}

Campaign* CampaignRegistry::find(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : campaigns_[it->second].campaign.get();
}

double CampaignRegistry::tenant_consumed(const Tenant& t) const {
  return t.consumed_offset + (t.busy.total() - t.busy_baseline);
}

bool CampaignRegistry::tenant_admissible(const Tenant& t) const {
  if (t.spec.max_in_flight > 0 && t.in_flight >= t.spec.max_in_flight) {
    return false;
  }
  if (t.spec.node_seconds_budget > 0.0 &&
      tenant_consumed(t) >= t.spec.node_seconds_budget) {
    return false;
  }
  return true;
}

std::size_t CampaignRegistry::width_in_flight() const {
  return width_in_flight_;
}

void CampaignRegistry::start_pending_campaigns() {
  if (started_) return;
  started_ = true;
  std::size_t n_init = cfg_.initial_per_campaign;
  if (n_init == 0) {
    n_init = std::max<std::size_t>(
        1, cfg_.workers / std::max<std::size_t>(1, campaigns_.size()));
  }
  std::size_t active = 0;
  for (auto& rt : campaigns_) {
    if (rt.done) continue;  // restored-as-done campaigns stay done
    if (!rt.campaign->started()) {
      rt.start_time = executor_->now();
      for (const auto& t : rt.campaign->start(n_init)) {
        rt.queue.push_back(t.ticket);
      }
    }
    ++active;
  }
  m_active_.set(static_cast<double>(active));
}

void CampaignRegistry::submit_ticket(std::size_t ci, std::uint64_t ticket_id) {
  CampaignRt& rt = campaigns_[ci];
  const core::EvalTicket& t = rt.campaign->outstanding().at(ticket_id);
  eval::SurrogateEvaluator* evaluator = &rt.campaign->evaluator();
  const eval::ModelConfig config = t.config;
  const double fidelity = t.fidelity;
  exec::JobSpec spec;
  spec.width = t.width;
  spec.timeout_seconds = t.timeout_seconds;
  spec.max_retries = t.max_retries;
  spec.tag = t.tag.empty() ? "svc." + rt.campaign->spec().name : t.tag;
  spec.tenant = rt.campaign->spec().tenant;
  const std::uint64_t job = executor_->submit(
      [evaluator, config, fidelity] {
        return evaluator->evaluate(eval::EvalRequest{config, fidelity});
      },
      spec);
  rt.jobs.emplace(job, ticket_id);
  job_owner_.emplace(job, ci);
  m_admitted_.inc();
}

void CampaignRegistry::admit() {
  for (;;) {
    // Min-pass admissible tenant with queued work; ties resolve to the
    // earliest-registered tenant, so admission order is deterministic.
    Tenant* best = nullptr;
    std::size_t best_ci = 0;
    for (const auto& name : tenant_order_) {
      Tenant& t = tenants_.at(name);
      if (!tenant_admissible(t)) continue;
      std::size_t ci = campaigns_.size();
      for (std::size_t i = 0; i < campaigns_.size(); ++i) {
        if (campaigns_[i].done) continue;
        if (campaigns_[i].campaign->spec().tenant != name) continue;
        if (campaigns_[i].queue.empty()) continue;
        ci = i;
        break;
      }
      if (ci == campaigns_.size()) continue;
      if (best == nullptr || t.pass < best->pass) {
        best = &t;
        best_ci = ci;
      }
    }
    if (best == nullptr) break;

    CampaignRt& rt = campaigns_[best_ci];
    const std::uint64_t ticket_id = rt.queue.front();
    const core::EvalTicket& t = rt.campaign->outstanding().at(ticket_id);
    // Cap total admitted gang width at the cluster size: the executor
    // never queues internally, so fair-share is decided here.
    if (width_in_flight_ + t.width > cfg_.workers) break;
    const std::size_t width = t.width;
    rt.queue.pop_front();
    submit_ticket(best_ci, ticket_id);
    width_in_flight_ += width;
    best->in_flight += 1;
    // Stride scheduling: advancing pass by admitted width over priority
    // makes long-run admitted node-time proportional to priority.
    best->pass += static_cast<double>(width) / best->spec.priority;
  }
}

void CampaignRegistry::mark_done(std::size_t ci) {
  CampaignRt& rt = campaigns_[ci];
  if (rt.done) return;
  rt.done = true;
  std::size_t active = 0;
  for (const auto& c : campaigns_) {
    if (!c.done) ++active;
  }
  m_active_.set(static_cast<double>(active));
}

void CampaignRegistry::route(const std::vector<exec::Finished>& finished) {
  // Group completions per campaign, preserving executor delivery order.
  std::vector<std::vector<core::EvalDone>> per_campaign(campaigns_.size());
  for (const auto& f : finished) {
    const auto owner = job_owner_.find(f.id);
    if (owner == job_owner_.end()) {
      throw std::logic_error("svc: completion for unknown job " +
                             std::to_string(f.id));
    }
    const std::size_t ci = owner->second;
    job_owner_.erase(owner);
    CampaignRt& rt = campaigns_[ci];
    const auto jt = rt.jobs.find(f.id);
    const std::uint64_t ticket_id = jt->second;
    rt.jobs.erase(jt);

    const core::EvalTicket& t = rt.campaign->outstanding().at(ticket_id);
    width_in_flight_ -= t.width;
    Tenant& tenant = tenants_.at(rt.campaign->spec().tenant);
    tenant.in_flight -= 1;

    core::EvalDone d;
    d.ticket = ticket_id;
    d.finish_time = f.finish_time - rt.start_time;
    d.objective = f.output.objective;
    d.train_seconds = f.output.train_seconds;
    d.failed = f.output.failed;
    d.timed_out = f.output.timed_out;
    d.attempts = f.attempts;
    d.degraded = f.output.degraded;
    d.final_world = f.output.final_world;
    per_campaign[ci].push_back(d);
    m_completed_.inc();

    // Zero-duration completion mark on the campaign's trace lane (marks,
    // not spans: concurrent evaluations of one campaign overlap, which
    // would violate the lane-nesting invariant trace_validate enforces).
    obs::record_span("svc.eval", "svc.campaign." + rt.campaign->spec().name,
                     f.finish_time, 0.0,
                     {{"ticket", std::to_string(ticket_id)},
                      {"objective", std::to_string(f.output.objective)},
                      {"failed", f.output.failed ? "1" : "0"}});
  }

  for (std::size_t ci = 0; ci < campaigns_.size(); ++ci) {
    if (per_campaign[ci].empty()) continue;
    CampaignRt& rt = campaigns_[ci];
    const double now_rel = executor_->now() - rt.start_time;
    for (const auto& t : rt.campaign->step(per_campaign[ci], now_rel)) {
      rt.queue.push_back(t.ticket);
    }
    // Best-objective staircase per campaign, in executor time.
    for (const auto& d : per_campaign[ci]) {
      const double objective = d.failed ? 0.0 : d.objective;
      if (objective > rt.best && d.finish_time <= rt.campaign->wall_time_seconds()) {
        rt.best = objective;
        obs::record_counter_sample("svc." + rt.campaign->spec().name + ".best",
                                   d.finish_time + rt.start_time, rt.best);
      }
    }
    if (rt.campaign->started() && rt.queue.empty() &&
        rt.campaign->outstanding().empty() && rt.jobs.empty()) {
      mark_done(ci);
    }
  }
}

void CampaignRegistry::maybe_checkpoint() {
  if (cfg_.checkpoint_every_seconds <= 0.0 || cfg_.checkpoint_path.empty()) {
    return;
  }
  if (now() - last_checkpoint_time_ >= cfg_.checkpoint_every_seconds) {
    save_checkpoint(cfg_.checkpoint_path);
    last_checkpoint_time_ = now();
  }
}

bool CampaignRegistry::step() {
  start_pending_campaigns();
  admit();

  bool any_open = false;
  for (const auto& rt : campaigns_) {
    if (!rt.done) any_open = true;
  }
  if (!any_open) return false;

  const auto finished = executor_->get_finished(/*block=*/true);
  if (finished.empty()) {
    // Nothing in flight and nothing admissible: remaining queues are
    // starved by exhausted quotas (or an empty cluster) forever. Terminate
    // those campaigns cleanly rather than spinning.
    for (std::size_t ci = 0; ci < campaigns_.size(); ++ci) {
      if (!campaigns_[ci].done) mark_done(ci);
    }
    return false;
  }
  route(finished);
  maybe_checkpoint();

  for (const auto& rt : campaigns_) {
    if (!rt.done) return true;
  }
  return false;
}

bool CampaignRegistry::run(double stop_after_seconds) {
  start_pending_campaigns();
  for (;;) {
    if (stop_after_seconds > 0.0 && now() >= stop_after_seconds) {
      if (!cfg_.checkpoint_path.empty()) save_checkpoint(cfg_.checkpoint_path);
      return false;
    }
    if (!step()) break;
  }
  // Shutdown checkpoint: a completed service leaves a resumable record.
  if (!cfg_.checkpoint_path.empty()) save_checkpoint(cfg_.checkpoint_path);
  return true;
}

std::vector<TenantUsage> CampaignRegistry::tenant_usage() const {
  std::vector<TenantUsage> out;
  out.reserve(tenant_order_.size());
  for (const auto& name : tenant_order_) {
    const Tenant& t = tenants_.at(name);
    TenantUsage u;
    u.name = name;
    u.priority = t.spec.priority;
    u.consumed_node_seconds = tenant_consumed(t);
    u.node_seconds_budget = t.spec.node_seconds_budget;
    u.in_flight = t.in_flight;
    for (const auto& rt : campaigns_) {
      if (rt.campaign->spec().tenant == name) u.queued += rt.queue.size();
    }
    out.push_back(std::move(u));
  }
  return out;
}

void CampaignRegistry::save_checkpoint(const std::string& path) const {
  std::ostringstream os;
  os.precision(17);
  os << kCheckpointMagic << " v" << kCheckpointVersion << '\n';
  os << "workers " << cfg_.workers << " live " << (cfg_.live ? 1 : 0) << '\n';
  os << "clock " << executor_->now() << '\n';

  std::ostringstream exec_blob;
  const bool have_exec = executor_->save_state(exec_blob);
  os << "executor-state " << (have_exec ? 1 : 0) << '\n';
  if (have_exec) os << exec_blob.str();

  os << "tenants " << tenant_order_.size() << '\n';
  for (const auto& name : tenant_order_) {
    const Tenant& t = tenants_.at(name);
    os << "tenant " << name << ' ' << t.spec.priority << ' '
       << t.spec.max_in_flight << ' ' << t.spec.node_seconds_budget << ' '
       << t.pass << ' ' << tenant_consumed(t) << '\n';
  }

  os << "campaigns " << campaigns_.size() << '\n';
  for (const auto& rt : campaigns_) {
    const CampaignSpec& spec = rt.campaign->spec();
    os << "campaign " << spec.name << ' ' << spec.tenant << ' '
       << kind_token(spec.kind) << ' ' << spec.dataset << ' ' << spec.variant
       << ' ' << spec.wall_time_seconds << ' ' << spec.seed << ' ' << spec.kappa
       << ' ' << spec.timeout_seconds << ' ' << spec.max_retries << ' '
       << spec.sha_bracket << ' ' << spec.sha_eta << ' ' << spec.sha_rungs
       << '\n';
    // Written only when enabled so checkpoints from non-elastic services
    // stay byte-identical to earlier releases (golden-fixture compat).
    if (spec.elastic_crash > 0.0) {
      os << "elastic " << spec.elastic_crash << ' ' << spec.elastic_seed << ' '
         << spec.elastic_min_replicas << '\n';
    }
    os << "start-time " << rt.start_time << " done " << (rt.done ? 1 : 0)
       << " best " << rt.best << '\n';
    os << "queue " << rt.queue.size();
    for (const std::uint64_t id : rt.queue) os << ' ' << id;
    os << '\n';
    // Ordered dump of the job map so the file is deterministic.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> jobs(rt.jobs.begin(),
                                                              rt.jobs.end());
    std::sort(jobs.begin(), jobs.end());
    os << "jobs " << jobs.size() << '\n';
    for (const auto& [job, ticket] : jobs) {
      os << "job " << job << ' ' << ticket << '\n';
    }
    os << "state\n";
    rt.campaign->save_state(os);
  }

  atomic_write_file(path, with_checksum(os.str()));
  m_checkpoints_.inc();
}

void CampaignRegistry::load_checkpoint(const std::string& path) {
  const std::string what = "svc checkpoint";
  if (started_ || !campaigns_.empty() || !tenants_.empty()) {
    throw std::logic_error(
        "load_checkpoint: registry already has tenants or campaigns");
  }
  const std::string payload = verify_checksum(read_file(path), what);
  std::istringstream is(payload);

  std::string magic, version;
  std::string want_version = std::to_string(kCheckpointVersion);
  want_version.insert(want_version.begin(), 'v');
  if (!(is >> magic >> version) || magic != kCheckpointMagic ||
      version != want_version) {
    core::state::fail(what, "bad magic/version line");
  }
  std::size_t workers = 0;
  core::state::expect_key(is, "workers", what);
  if (!(is >> workers)) core::state::fail(what, "truncated workers");
  const bool live = core::state::read_flag(is, "live", what);
  if (workers != cfg_.workers || live != cfg_.live) {
    core::state::fail(what,
                      "checkpoint was written by a differently-configured "
                      "service (workers/live mismatch)");
  }
  core::state::expect_key(is, "clock", what);
  double clock = 0.0;
  if (!(is >> clock)) core::state::fail(what, "truncated clock");

  const bool have_exec = core::state::read_flag(is, "executor-state", what);
  bool exec_restored = false;
  if (have_exec) {
    is >> std::ws;
    exec_restored = executor_->load_state(is);
  }

  const std::size_t n_tenants = core::state::read_count(is, "tenants", what);
  for (std::size_t i = 0; i < n_tenants; ++i) {
    core::state::expect_key(is, "tenant", what);
    TenantSpec spec;
    double pass = 0.0, consumed = 0.0;
    if (!(is >> spec.name >> spec.priority >> spec.max_in_flight >>
          spec.node_seconds_budget >> pass >> consumed)) {
      core::state::fail(what, "truncated tenant");
    }
    set_tenant(spec);
    Tenant& t = tenants_.at(spec.name);
    t.pass = pass;
    t.consumed_offset = consumed;
    t.busy_baseline = t.busy.total();  // future consumption is the delta
  }

  const std::size_t n_campaigns = core::state::read_count(is, "campaigns", what);
  for (std::size_t i = 0; i < n_campaigns; ++i) {
    core::state::expect_key(is, "campaign", what);
    CampaignSpec spec;
    std::string kind;
    if (!(is >> spec.name >> spec.tenant >> kind >> spec.dataset >>
          spec.variant >> spec.wall_time_seconds >> spec.seed >> spec.kappa >>
          spec.timeout_seconds >> spec.max_retries >> spec.sha_bracket >>
          spec.sha_eta >> spec.sha_rungs)) {
      core::state::fail(what, "truncated campaign spec");
    }
    spec.kind = kind_from_token(kind, what);
    // Optional elastic line (absent in pre-elastic checkpoints).
    is >> std::ws;
    if (is.peek() == 'e') {
      core::state::expect_key(is, "elastic", what);
      if (!(is >> spec.elastic_crash >> spec.elastic_seed >>
            spec.elastic_min_replicas)) {
        core::state::fail(what, "truncated elastic spec");
      }
    }
    const std::size_t ci = add_campaign(spec);
    CampaignRt& rt = campaigns_[ci];
    core::state::expect_key(is, "start-time", what);
    if (!(is >> rt.start_time)) core::state::fail(what, "truncated start-time");
    rt.done = core::state::read_flag(is, "done", what);
    core::state::expect_key(is, "best", what);
    if (!(is >> rt.best)) core::state::fail(what, "truncated best");

    const std::size_t n_queue = core::state::read_count(is, "queue", what);
    for (std::size_t q = 0; q < n_queue; ++q) {
      std::uint64_t id = 0;
      if (!(is >> id)) core::state::fail(what, "truncated queue");
      rt.queue.push_back(id);
    }
    const std::size_t n_jobs = core::state::read_count(is, "jobs", what);
    for (std::size_t j = 0; j < n_jobs; ++j) {
      core::state::expect_key(is, "job", what);
      std::uint64_t job = 0, ticket = 0;
      if (!(is >> job >> ticket)) core::state::fail(what, "truncated job");
      rt.jobs.emplace(job, ticket);
      job_owner_.emplace(job, ci);
    }
    core::state::expect_key(is, "state", what);
    is >> std::ws;
    rt.campaign->load_state(is);
  }

  if (!exec_restored) {
    // The executor could not snapshot (live pool) or the snapshot was
    // rejected: in-flight work is lost. Fall back to resubmitting every
    // outstanding ticket — each campaign's queue becomes its full
    // outstanding set, in ticket order.
    for (auto& rt : campaigns_) {
      rt.jobs.clear();
      rt.queue.clear();
      for (const auto& [id, t] : rt.campaign->outstanding()) {
        (void)t;
        rt.queue.push_back(id);
      }
    }
    job_owner_.clear();
  }

  // Rebuild in-flight accounting from the restored job maps.
  width_in_flight_ = 0;
  for (auto& [name, t] : tenants_) {
    (void)name;
    t.in_flight = 0;
  }
  for (const auto& rt : campaigns_) {
    Tenant& t = tenants_.at(rt.campaign->spec().tenant);
    for (const auto& [job, ticket] : rt.jobs) {
      (void)job;
      width_in_flight_ += rt.campaign->outstanding().at(ticket).width;
      t.in_flight += 1;
    }
  }

  started_ = true;  // campaigns resume mid-flight; no fresh start() calls
  last_checkpoint_time_ = now();
  std::size_t active = 0;
  for (const auto& rt : campaigns_) {
    if (!rt.done) ++active;
  }
  m_active_.set(static_cast<double>(active));
}

}  // namespace agebo::svc
