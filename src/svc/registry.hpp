// Multi-tenant campaign service (DESIGN.md §14).
//
// A CampaignRegistry owns ONE shared executor (simulated or live) and any
// number of concurrent campaigns, each belonging to a tenant. Campaigns
// never talk to the executor: their pumped searchers emit EvalTickets into
// per-campaign queues, and the registry admits queued tickets through a
// stride (fair-share) scheduler —
//
//   - each tenant carries a `pass`; admitting one ticket advances it by
//     width / priority, so long-run admitted node-time converges to the
//     priority ratio (a 3:1 priority split yields a ~3:1 busy split);
//   - per-tenant quotas bound admission: max_in_flight caps concurrently
//     running evaluations, node_seconds_budget caps total consumed
//     worker-seconds (read from the exec.tenant.* accounting counters);
//   - total admitted gang width never exceeds the executor's worker
//     count, so fairness is decided here, not by executor-internal
//     queueing.
//
// Durability: save_checkpoint() serializes the whole service — executor
// snapshot, tenant scheduler state, every campaign's spec + search state +
// queue + job map — into one checksummed file (svc/checkpoint framing),
// atomically. load_checkpoint() rebuilds the service from that file; with
// a snapshot-capable executor (the simulator) a resumed run reproduces the
// uninterrupted run bit-for-bit, and with a live executor the outstanding
// tickets are resubmitted instead.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/executor.hpp"
#include "exec/fault_injector.hpp"
#include "nas/search_space.hpp"
#include "obs/registry.hpp"
#include "svc/campaign.hpp"

namespace agebo::svc {

/// Accounting principal: campaigns belong to tenants, tenants get a
/// fair-share weight and optional quotas.
struct TenantSpec {
  std::string name;
  /// Stride-scheduler weight; a priority-3 tenant is admitted ~3x the
  /// node-time of a priority-1 tenant under contention.
  double priority = 1.0;
  /// Max concurrently running evaluations (0 = unlimited).
  std::size_t max_in_flight = 0;
  /// Total worker-seconds this tenant may consume (0 = unlimited). When
  /// exhausted the tenant's queues stop being admitted; its campaigns are
  /// terminated once nothing of theirs remains in flight.
  double node_seconds_budget = 0.0;
};

struct SvcConfig {
  /// Shared cluster size (simulated workers or live pool threads).
  std::size_t workers = 32;
  /// Simulator per-job launch overhead, seconds (ignored when live).
  double job_overhead_seconds = 0.0;
  exec::RetryPolicy policy;
  exec::FaultConfig faults;
  /// LiveExecutor instead of SimulatedExecutor (no exact-resume snapshot).
  bool live = false;
  /// First-wave tickets per campaign (0 = workers / #campaigns, min 1).
  std::size_t initial_per_campaign = 0;
  /// Write a checkpoint every this many executor seconds (0 = only on
  /// explicit save/stop). Requires checkpoint_path.
  double checkpoint_every_seconds = 0.0;
  std::string checkpoint_path;
};

/// One row of the per-tenant utilization report.
struct TenantUsage {
  std::string name;
  double priority = 1.0;
  /// Worker-seconds consumed (exec.tenant.<name>.busy_seconds delta, plus
  /// any consumption carried over through a checkpoint).
  double consumed_node_seconds = 0.0;
  double node_seconds_budget = 0.0;  ///< 0 = unlimited
  std::size_t in_flight = 0;         ///< running evaluations
  std::size_t queued = 0;            ///< tickets awaiting admission
};

class CampaignRegistry {
 public:
  CampaignRegistry(SvcConfig cfg, const nas::SearchSpace& space);

  /// Register (or replace, before run) a tenant. Campaigns referencing an
  /// unregistered tenant get a default-priority tenant created on add.
  void set_tenant(TenantSpec spec);

  /// Add a campaign; name must be unique. Returns its index.
  std::size_t add_campaign(CampaignSpec spec);

  /// Pump everything to completion. `stop_after_seconds` > 0 stops early
  /// once executor time reaches it (checkpointing if configured) — the
  /// kill point of the crash/resume tests. Returns true when every
  /// campaign completed, false when stopped early.
  bool run(double stop_after_seconds = 0.0);

  /// One scheduler iteration: admit, pump the executor once, route
  /// completions, collect follow-up tickets. Returns false when every
  /// campaign is complete.
  bool step();

  double now() const;
  exec::Executor& executor() { return *executor_; }
  const nas::SearchSpace& space() const { return *space_; }

  std::size_t n_campaigns() const { return campaigns_.size(); }
  Campaign& campaign(std::size_t i) { return *campaigns_[i].campaign; }
  const Campaign& campaign(std::size_t i) const { return *campaigns_[i].campaign; }
  bool campaign_done(std::size_t i) const { return campaigns_[i].done; }
  Campaign* find(const std::string& name);

  std::vector<TenantUsage> tenant_usage() const;

  /// Serialize the whole service state to `path` (atomic, checksummed).
  void save_checkpoint(const std::string& path) const;
  /// Rebuild tenants, campaigns, scheduler and executor state from a file
  /// written by save_checkpoint. Must be called on a freshly constructed
  /// registry (same SvcConfig); throws std::runtime_error on corruption or
  /// config mismatch.
  void load_checkpoint(const std::string& path);

 private:
  struct Tenant {
    TenantSpec spec;
    double pass = 0.0;  ///< stride-scheduler virtual time
    /// Consumption carried over from before a checkpoint load.
    double consumed_offset = 0.0;
    /// exec.tenant.* counter reading at registration/load — consumption
    /// by this service instance is the delta from here.
    double busy_baseline = 0.0;
    obs::DCounter busy;
    std::size_t in_flight = 0;  ///< running evaluations (not width)
  };

  struct CampaignRt {
    std::unique_ptr<Campaign> campaign;
    std::deque<std::uint64_t> queue;  ///< ticket ids awaiting admission
    /// Executor job id → campaign ticket id for in-flight evaluations.
    std::unordered_map<std::uint64_t, std::uint64_t> jobs;
    /// Executor time at which the campaign started (its t=0).
    double start_time = 0.0;
    bool done = false;
    /// Best objective so far — drives the svc.<name>.best counter track.
    double best = 0.0;
  };

  Tenant& tenant_of(const std::string& name);
  double tenant_consumed(const Tenant& t) const;
  bool tenant_admissible(const Tenant& t) const;
  /// Admit queued tickets (stride order) until capacity or quotas stop us.
  void admit();
  /// Submit one ticket of campaign `ci` to the executor.
  void submit_ticket(std::size_t ci, std::uint64_t ticket_id);
  /// Route one batch of executor completions back to their campaigns.
  void route(const std::vector<exec::Finished>& finished);
  void start_pending_campaigns();
  void mark_done(std::size_t ci);
  /// Gang width currently admitted (running) across all campaigns.
  std::size_t width_in_flight() const;
  void maybe_checkpoint();

  SvcConfig cfg_;
  const nas::SearchSpace* space_;
  std::unique_ptr<exec::Executor> executor_;
  std::vector<std::string> tenant_order_;  ///< registration order
  std::map<std::string, Tenant> tenants_;
  std::vector<CampaignRt> campaigns_;
  std::map<std::string, std::size_t> by_name_;
  /// Executor job id → owning campaign index (completion routing).
  std::unordered_map<std::uint64_t, std::size_t> job_owner_;
  std::size_t width_in_flight_ = 0;
  double last_checkpoint_time_ = 0.0;
  bool started_ = false;

  obs::Counter m_admitted_;
  obs::Counter m_completed_;
  obs::Counter m_checkpoints_;
  obs::Gauge m_active_;
};

}  // namespace agebo::svc
