// One tenant-owned search campaign inside the service (DESIGN.md §14).
//
// A Campaign owns its dataset evaluator and a pumped searcher (AgEBO or
// SHA) but NOT an executor — the CampaignRegistry schedules every
// campaign's tickets onto one shared executor through admission control.
// The campaign exposes a kind-agnostic pump facade plus checkpoint
// save/load that delegates to the searcher's state dialect.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/search.hpp"
#include "core/sha_search.hpp"
#include "eval/surrogate.hpp"
#include "nas/search_space.hpp"

namespace agebo::svc {

enum class CampaignKind { kAgebo, kSha };

/// Declarative campaign description — what the manifest file and the
/// checkpoint store. A spec plus the shared search space fully determines
/// a fresh Campaign (SearchConfig itself carries std::function members and
/// cannot be serialized; `variant`/`kind` + knobs rebuild it via
/// core::config_by_name).
struct CampaignSpec {
  std::string name;    ///< unique; no whitespace (used in lanes/checkpoints)
  std::string tenant;  ///< accounting principal (TenantSpec::name)
  CampaignKind kind = CampaignKind::kAgebo;
  std::string dataset = "covertype";  ///< eval::profile_by_name
  std::string variant = "agebo";      ///< core::config_by_name (kAgebo only)
  double wall_time_seconds = 180.0 * 60.0;
  std::uint64_t seed = 1;
  double kappa = 0.001;
  /// Per-evaluation kill deadline and resubmission cap (kAgebo only —
  /// SHA controls evaluation cost through rung fidelity). 0 = disabled.
  double timeout_seconds = 0.0;
  std::size_t max_retries = 0;
  /// Successive-halving knobs (kSha only).
  std::size_t sha_bracket = 27;
  std::size_t sha_eta = 3;
  std::size_t sha_rungs = 3;
  /// Elastic-training simulation (eval::ElasticSimConfig): per-replica
  /// per-epoch crash probability > 0 turns it on. Persisted in the service
  /// checkpoint so a resumed degraded campaign replays identically.
  double elastic_crash = 0.0;
  std::uint64_t elastic_seed = 0;
  std::size_t elastic_min_replicas = 1;
};

class Campaign {
 public:
  /// Builds the evaluator and the (not yet started) pumped searcher.
  /// Throws std::invalid_argument on a bad spec (unknown dataset/variant,
  /// whitespace in names).
  Campaign(CampaignSpec spec, const nas::SearchSpace& space);

  const CampaignSpec& spec() const { return spec_; }
  eval::SurrogateEvaluator& evaluator() { return evaluator_; }

  // Pump facade (see core/search.hpp). Times are campaign-relative.
  std::vector<core::EvalTicket> start(std::size_t n_init);
  std::vector<core::EvalTicket> step(const std::vector<core::EvalDone>& done,
                                     double now);
  bool started() const;
  /// Tickets issued but not completed (queued in the registry or running).
  const std::map<std::uint64_t, core::EvalTicket>& outstanding() const;
  const std::vector<core::EvalRecord>& history() const;
  core::SearchResult result() const;
  double wall_time_seconds() const { return spec_.wall_time_seconds; }

  /// Checkpoint blob delegation (searcher dialect, core/state_io).
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  CampaignSpec spec_;
  eval::SurrogateEvaluator evaluator_;
  // Exactly one is engaged, per spec_.kind.
  std::optional<core::AgeboSearch> agebo_;
  std::optional<core::ShaJointSearch> sha_;
};

}  // namespace agebo::svc
