#include "svc/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::svc {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string checksum_hex(const std::string& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(bytes)));
  return buf;
}

std::string with_checksum(const std::string& payload) {
  return payload + "checksum " + checksum_hex(payload) + "\n";
}

std::string verify_checksum(const std::string& text, const std::string& what) {
  const auto pos = text.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    throw std::runtime_error(what +
                             ": missing checksum line (truncated checkpoint?)");
  }
  const std::string payload = text.substr(0, pos + 1);
  std::istringstream tail(text.substr(pos + 1));
  std::string key, recorded;
  if (!(tail >> key >> recorded) || key != "checksum") {
    throw std::runtime_error(what + ": malformed checksum line");
  }
  if (recorded != checksum_hex(payload)) {
    throw std::runtime_error(
        what + ": checksum mismatch — checkpoint corrupted or truncated");
  }
  return payload;
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("checkpoint: cannot open " + tmp);
    os << contents;
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " + path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace agebo::svc
