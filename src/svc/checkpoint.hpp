// Durable campaign-service checkpoints (DESIGN.md §14).
//
// File framing mirrors src/nn/serialize: a text payload starting with a
// magic + version line (`agebo-svc-ckpt v1`) and ending with a trailing
// `checksum <fnv1a64-hex>` line over every byte before it, so truncation
// and corruption are detected at load instead of producing a silently
// wrong resume. Files are written atomically (tmp file in the same
// directory + rename) so a crash mid-write leaves the previous checkpoint
// intact — the property the crash-mid-campaign test relies on.
//
// The payload itself is assembled by CampaignRegistry::save_checkpoint
// from the shared line-oriented state dialect (core/state_io): an executor
// snapshot blob, per-tenant scheduler state, and one state blob per
// campaign (AgeboSearch/ShaJointSearch::save_state). This header carries
// only the framing + file plumbing, shared with tests.
#pragma once

#include <cstdint>
#include <string>

namespace agebo::svc {

inline constexpr const char* kCheckpointMagic = "agebo-svc-ckpt";
inline constexpr int kCheckpointVersion = 1;

/// FNV-1a 64-bit over `bytes` (same hash as the nn artifact framing).
std::uint64_t fnv1a64(const std::string& bytes);

/// 16-hex-digit form of fnv1a64 — what the checksum line records.
std::string checksum_hex(const std::string& bytes);

/// payload + "checksum <hex>\n".
std::string with_checksum(const std::string& payload);

/// Splits off and verifies the trailing checksum line; returns the
/// payload. Throws std::runtime_error on a missing or mismatched checksum
/// (truncated or corrupted checkpoint).
std::string verify_checksum(const std::string& text, const std::string& what);

/// Write `contents` to `path` atomically: tmp file in the same directory,
/// flushed, then renamed over the target. Throws std::runtime_error on any
/// I/O failure (the tmp file is removed on error).
void atomic_write_file(const std::string& path, const std::string& contents);

/// Slurp a file; throws std::runtime_error when unreadable.
std::string read_file(const std::string& path);

}  // namespace agebo::svc
