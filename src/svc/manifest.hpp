// Service manifest: a line-oriented description of the tenants and
// campaigns an agebo_svc process should run (DESIGN.md §14).
//
//   # comments and blank lines are skipped
//   tenant <name> [priority=P] [max-in-flight=N] [node-hours=H]
//   campaign <name> tenant=T [kind=agebo|sha] [dataset=D] [variant=V]
//            [minutes=M] [seed=S] [kappa=K] [timeout=SEC] [retries=N]
//            [bracket=B] [eta=E] [rungs=R]
//
// Parsing is strict: unknown directives, unknown keys, malformed values
// and duplicate names all throw std::runtime_error naming the line number
// — a typo'd manifest must not silently run a default campaign.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "svc/registry.hpp"

namespace agebo::svc {

struct Manifest {
  std::vector<TenantSpec> tenants;
  std::vector<CampaignSpec> campaigns;
};

/// Parse a manifest from a stream. `what` names the source in errors
/// (usually the file path).
Manifest parse_manifest(std::istream& is, const std::string& what);

/// Read and parse a manifest file. Throws std::runtime_error on a missing
/// file or any parse error.
Manifest load_manifest(const std::string& path);

}  // namespace agebo::svc
