#include "svc/manifest.hpp"

#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace agebo::svc {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t line,
                       const std::string& detail) {
  throw std::runtime_error(what + ":" + std::to_string(line) + ": " + detail);
}

/// Splits "key=value"; throws when there is no '=' or the key is empty.
std::pair<std::string, std::string> split_kv(const std::string& token,
                                             const std::string& what,
                                             std::size_t line) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    fail(what, line, "expected key=value, got \"" + token + "\"");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

double parse_double(const std::string& value, const std::string& key,
                    const std::string& what, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail(what, line, "bad numeric value for " + key + ": \"" + value + "\"");
  }
}

std::uint64_t parse_uint(const std::string& value, const std::string& key,
                         const std::string& what, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size() || value[0] == '-') {
      throw std::invalid_argument(value);
    }
    return v;
  } catch (const std::exception&) {
    fail(what, line, "bad integer value for " + key + ": \"" + value + "\"");
  }
}

}  // namespace

Manifest parse_manifest(std::istream& is, const std::string& what) {
  Manifest m;
  std::set<std::string> tenant_names;
  std::set<std::string> campaign_names;
  std::string raw;
  std::size_t line = 0;
  while (std::getline(is, raw)) {
    ++line;
    std::istringstream ls(raw);
    std::string directive;
    if (!(ls >> directive) || directive[0] == '#') continue;

    if (directive == "tenant") {
      TenantSpec t;
      if (!(ls >> t.name)) fail(what, line, "tenant needs a name");
      if (!tenant_names.insert(t.name).second) {
        fail(what, line, "duplicate tenant \"" + t.name + "\"");
      }
      std::string token;
      while (ls >> token) {
        const auto [key, value] = split_kv(token, what, line);
        if (key == "priority") {
          t.priority = parse_double(value, key, what, line);
          if (t.priority <= 0.0) fail(what, line, "priority must be positive");
        } else if (key == "max-in-flight") {
          t.max_in_flight = parse_uint(value, key, what, line);
        } else if (key == "node-hours") {
          t.node_seconds_budget = parse_double(value, key, what, line) * 3600.0;
          if (t.node_seconds_budget < 0.0) {
            fail(what, line, "node-hours must be non-negative");
          }
        } else {
          fail(what, line, "unknown tenant key \"" + key + "\"");
        }
      }
      m.tenants.push_back(std::move(t));
    } else if (directive == "campaign") {
      CampaignSpec c;
      if (!(ls >> c.name)) fail(what, line, "campaign needs a name");
      if (!campaign_names.insert(c.name).second) {
        fail(what, line, "duplicate campaign \"" + c.name + "\"");
      }
      c.tenant.clear();  // required key below
      std::string token;
      while (ls >> token) {
        const auto [key, value] = split_kv(token, what, line);
        if (key == "tenant") {
          c.tenant = value;
        } else if (key == "kind") {
          if (value == "agebo") {
            c.kind = CampaignKind::kAgebo;
          } else if (value == "sha") {
            c.kind = CampaignKind::kSha;
          } else {
            fail(what, line, "kind must be agebo or sha, got \"" + value + "\"");
          }
        } else if (key == "dataset") {
          c.dataset = value;
        } else if (key == "variant") {
          c.variant = value;
        } else if (key == "minutes") {
          c.wall_time_seconds = parse_double(value, key, what, line) * 60.0;
          if (c.wall_time_seconds <= 0.0) {
            fail(what, line, "minutes must be positive");
          }
        } else if (key == "seed") {
          c.seed = parse_uint(value, key, what, line);
        } else if (key == "kappa") {
          c.kappa = parse_double(value, key, what, line);
        } else if (key == "timeout") {
          c.timeout_seconds = parse_double(value, key, what, line);
          if (c.timeout_seconds < 0.0) {
            fail(what, line, "timeout must be non-negative");
          }
        } else if (key == "retries") {
          c.max_retries = parse_uint(value, key, what, line);
        } else if (key == "bracket") {
          c.sha_bracket = parse_uint(value, key, what, line);
          if (c.sha_bracket == 0) fail(what, line, "bracket must be positive");
        } else if (key == "eta") {
          c.sha_eta = parse_uint(value, key, what, line);
          if (c.sha_eta < 2) fail(what, line, "eta must be at least 2");
        } else if (key == "rungs") {
          c.sha_rungs = parse_uint(value, key, what, line);
          if (c.sha_rungs == 0) fail(what, line, "rungs must be positive");
        } else if (key == "elastic-crash") {
          c.elastic_crash = parse_double(value, key, what, line);
          if (c.elastic_crash < 0.0 || c.elastic_crash >= 1.0) {
            fail(what, line, "elastic-crash must be in [0, 1)");
          }
        } else if (key == "elastic-seed") {
          c.elastic_seed = parse_uint(value, key, what, line);
        } else if (key == "elastic-min-replicas") {
          c.elastic_min_replicas = parse_uint(value, key, what, line);
          if (c.elastic_min_replicas == 0) {
            fail(what, line, "elastic-min-replicas must be positive");
          }
        } else {
          fail(what, line, "unknown campaign key \"" + key + "\"");
        }
      }
      if (c.tenant.empty()) {
        fail(what, line, "campaign \"" + c.name + "\" needs tenant=<name>");
      }
      m.campaigns.push_back(std::move(c));
    } else {
      fail(what, line, "unknown directive \"" + directive + "\"");
    }
  }
  if (m.campaigns.empty()) {
    throw std::runtime_error(what + ": manifest declares no campaigns");
  }
  for (const auto& c : m.campaigns) {
    if (tenant_names.count(c.tenant) == 0) {
      throw std::runtime_error(what + ": campaign \"" + c.name +
                               "\" references undeclared tenant \"" + c.tenant +
                               "\"");
    }
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("manifest: cannot open " + path);
  return parse_manifest(is, path);
}

}  // namespace agebo::svc
