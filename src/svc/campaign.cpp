#include "svc/campaign.hpp"

#include <stdexcept>

#include "core/variants.hpp"

namespace agebo::svc {

namespace {

void require_token_name(const std::string& name, const char* field) {
  if (name.empty()) {
    throw std::invalid_argument(std::string("CampaignSpec: empty ") + field);
  }
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',') {
      throw std::invalid_argument(std::string("CampaignSpec: ") + field +
                                  " \"" + name +
                                  "\" must not contain whitespace or commas");
    }
  }
}

}  // namespace

Campaign::Campaign(CampaignSpec spec, const nas::SearchSpace& space)
    : spec_(std::move(spec)),
      evaluator_(space, eval::profile_by_name(spec_.dataset)) {
  require_token_name(spec_.name, "name");
  require_token_name(spec_.tenant, "tenant");
  if (spec_.wall_time_seconds <= 0.0) {
    throw std::invalid_argument("CampaignSpec: non-positive wall time");
  }
  if (spec_.elastic_crash < 0.0 || spec_.elastic_crash >= 1.0) {
    throw std::invalid_argument("CampaignSpec: elastic_crash outside [0, 1)");
  }
  if (spec_.elastic_crash > 0.0) {
    eval::ElasticSimConfig elastic;
    elastic.enabled = true;
    elastic.crash_prob = spec_.elastic_crash;
    elastic.seed = spec_.elastic_seed;
    elastic.min_replicas = spec_.elastic_min_replicas;
    evaluator_.set_elastic(elastic);
  }
  if (spec_.kind == CampaignKind::kAgebo) {
    core::SearchConfig cfg =
        core::config_by_name(spec_.variant, spec_.seed, spec_.kappa);
    cfg.wall_time_seconds = spec_.wall_time_seconds;
    cfg.eval_timeout_seconds = spec_.timeout_seconds;
    cfg.eval_max_retries = spec_.max_retries;
    agebo_.emplace(space, std::move(cfg));
  } else {
    core::ShaJointConfig cfg;
    cfg.bracket_size = spec_.sha_bracket;
    cfg.eta = spec_.sha_eta;
    cfg.rungs = spec_.sha_rungs;
    cfg.wall_time_seconds = spec_.wall_time_seconds;
    cfg.seed = spec_.seed;
    sha_.emplace(space, std::move(cfg));
  }
}

std::vector<core::EvalTicket> Campaign::start(std::size_t n_init) {
  // SHA brackets size themselves; n_init only shapes the AgEBO first wave.
  if (agebo_) return agebo_->start(n_init);
  return sha_->start();
}

std::vector<core::EvalTicket> Campaign::step(
    const std::vector<core::EvalDone>& done, double now) {
  if (agebo_) return agebo_->step(done, now);
  return sha_->step(done, now);
}

bool Campaign::started() const {
  return agebo_ ? agebo_->started() : sha_->started();
}

const std::map<std::uint64_t, core::EvalTicket>& Campaign::outstanding() const {
  return agebo_ ? agebo_->outstanding() : sha_->outstanding();
}

const std::vector<core::EvalRecord>& Campaign::history() const {
  return agebo_ ? agebo_->history() : sha_->history();
}

core::SearchResult Campaign::result() const {
  return agebo_ ? agebo_->result() : sha_->result();
}

void Campaign::save_state(std::ostream& os) const {
  if (agebo_) {
    agebo_->save_state(os);
  } else {
    sha_->save_state(os);
  }
}

void Campaign::load_state(std::istream& is) {
  if (agebo_) {
    agebo_->load_state(is);
  } else {
    sha_->load_state(is);
  }
}

}  // namespace agebo::svc
