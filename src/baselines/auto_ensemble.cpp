#include "baselines/auto_ensemble.hpp"

#include <chrono>
#include <stdexcept>

#include "ml/boosting.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"

namespace agebo::baselines {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Fit a model on train, return validation accuracy.
template <typename Model>
double holdout_score(Model& model, const data::Dataset& train,
                     const data::Dataset& valid) {
  model.fit(train);
  return model.accuracy(valid);
}

}  // namespace

AutoEnsemble::AutoEnsemble(AutoEnsembleConfig cfg) : cfg_(cfg) {}

AutoEnsembleReport AutoEnsemble::fit(const data::Dataset& train,
                                     const data::Dataset& valid) {
  const auto t0 = Clock::now();
  Rng rng(cfg_.seed);

  // --- Per-family hyperparameter tuning on the validation split. ---
  // Random forest: tune max_depth.
  ml::ForestConfig best_rf = ml::random_forest_defaults(cfg_.forest_trees);
  {
    double best = -1.0;
    const std::size_t depths[] = {12, 18, 24};
    for (std::size_t t = 0; t < cfg_.tuning_trials && t < 3; ++t) {
      auto fc = ml::random_forest_defaults(cfg_.forest_trees / 2);
      fc.tree.max_depth = depths[t];
      fc.seed = rng.split()();
      ml::RandomForestClassifier model(fc);
      const double acc = holdout_score(model, train, valid);
      if (acc > best) {
        best = acc;
        best_rf = fc;
        best_rf.n_trees = cfg_.forest_trees;
      }
    }
  }

  // Gradient boosting: tune learning rate.
  ml::BoostingConfig best_gb;
  best_gb.n_rounds = cfg_.boosting_rounds;
  {
    double best = -1.0;
    const double lrs[] = {0.05, 0.1, 0.2};
    for (std::size_t t = 0; t < cfg_.tuning_trials && t < 3; ++t) {
      ml::BoostingConfig bc;
      bc.n_rounds = cfg_.boosting_rounds / 2;
      bc.learning_rate = lrs[t];
      bc.seed = rng.split()();
      ml::GradientBoostingClassifier model(bc);
      const double acc = holdout_score(model, train, valid);
      if (acc > best) {
        best = acc;
        best_gb = bc;
        best_gb.n_rounds = cfg_.boosting_rounds;
      }
    }
  }

  // kNN: tune k.
  ml::KnnConfig best_knn;
  {
    double best = -1.0;
    const std::size_t ks[] = {5, 15, 31};
    for (std::size_t t = 0; t < cfg_.tuning_trials && t < 3; ++t) {
      ml::KnnConfig kc;
      kc.k = ks[t];
      kc.seed = rng.split()();
      ml::KnnClassifier model(kc);
      const double acc = holdout_score(model, train, valid);
      if (acc > best) {
        best = acc;
        best_knn = kc;
      }
    }
  }

  ml::ForestConfig et_cfg = ml::extra_trees_defaults(cfg_.forest_trees);
  et_cfg.seed = rng.split()();

  // --- Stacked fit on the training split. ---
  std::vector<ml::ClassifierFactory> factories;
  factories.push_back([best_rf] {
    return std::make_unique<ml::ClassifierAdapter<ml::RandomForestClassifier>>(
        ml::RandomForestClassifier(best_rf), "random_forest");
  });
  factories.push_back([et_cfg] {
    return std::make_unique<ml::ClassifierAdapter<ml::RandomForestClassifier>>(
        ml::RandomForestClassifier(et_cfg), "extra_trees");
  });
  factories.push_back([best_gb] {
    return std::make_unique<ml::ClassifierAdapter<ml::GradientBoostingClassifier>>(
        ml::GradientBoostingClassifier(best_gb), "gradient_boosting");
  });
  factories.push_back([best_knn] {
    return std::make_unique<ml::ClassifierAdapter<ml::KnnClassifier>>(
        ml::KnnClassifier(best_knn), "knn");
  });

  ml::StackingConfig stack_cfg;
  stack_cfg.n_folds = cfg_.n_folds;
  stack_cfg.seed = cfg_.seed;
  stack_ = std::make_unique<ml::StackingEnsemble>(std::move(factories), stack_cfg);
  stack_->fit(train);

  AutoEnsembleReport report;
  report.fit_seconds = seconds_since(t0);
  report.valid_accuracy = stack_->accuracy(valid);
  report.base_models = stack_->base_names();
  report.total_models = stack_->n_models();
  return report;
}

std::vector<double> AutoEnsemble::predict_proba_row(const float* row) const {
  return ensemble().predict_proba_row(row);
}

std::vector<int> AutoEnsemble::predict(const data::Dataset& ds) const {
  return ensemble().predict(ds);
}

double AutoEnsemble::accuracy(const data::Dataset& ds) const {
  return ensemble().accuracy(ds);
}

double AutoEnsemble::inference_seconds(const data::Dataset& ds) const {
  if (!stack_) throw std::logic_error("AutoEnsemble: not fitted");
  const auto t0 = Clock::now();
  double sink = 0.0;
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const auto proba = stack_->predict_proba_row(ds.row(i));
    sink += proba[0];
  }
  // Keep the loop from being optimized out.
  if (sink == -1.0) throw std::logic_error("unreachable");
  return seconds_since(t0);
}

const ml::StackingEnsemble& AutoEnsemble::ensemble() const {
  if (!stack_) throw std::logic_error("AutoEnsemble: not fitted");
  return *stack_;
}

}  // namespace agebo::baselines
