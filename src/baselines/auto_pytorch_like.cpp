#include "baselines/auto_pytorch_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/trainer.hpp"

namespace agebo::baselines {

nas::Genome sample_restricted_genome(const nas::SearchSpace& space, Rng& rng,
                                     int max_op) {
  nas::Genome g(space.n_decisions());
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (space.arity(i) == 2) {
      g[i] = 0;  // no skip connections
    } else {
      const auto cap = std::min<std::size_t>(space.arity(i),
                                             static_cast<std::size_t>(max_op) + 1);
      g[i] = static_cast<int>(rng.index(cap));
    }
  }
  return g;
}

double surrogate_reference(const nas::SearchSpace& space,
                           const eval::SurrogateEvaluator& evaluator,
                           std::size_t n_samples, std::uint64_t seed) {
  // Auto-PyTorch's BOHB is a model-guided search, not random sampling, so
  // the reference point is a mutation hill-climb confined to the restricted
  // subspace: 10% of the budget seeds with random restricted genomes, the
  // rest mutates the incumbent (restricted decisions only) and keeps
  // improvements.
  Rng rng(seed);
  const auto hparams = eval::default_hparams(1);
  auto score = [&](const nas::Genome& g) {
    return evaluator.mean_accuracy(eval::ModelConfig{g, hparams});
  };

  nas::Genome incumbent = sample_restricted_genome(space, rng);
  double best = score(incumbent);
  const std::size_t n_random = std::max<std::size_t>(1, n_samples / 10);
  for (std::size_t i = 1; i < n_random; ++i) {
    auto g = sample_restricted_genome(space, rng);
    const double acc = score(g);
    if (acc > best) {
      best = acc;
      incumbent = std::move(g);
    }
  }
  for (std::size_t i = n_random; i < n_samples; ++i) {
    nas::Genome child = incumbent;
    // Mutate one op decision within the restricted op range.
    std::size_t attempts = 0;
    std::size_t idx = rng.index(child.size());
    while (space.arity(idx) == 2 && attempts++ < 16) idx = rng.index(child.size());
    if (space.arity(idx) > 2) {
      child[idx] = static_cast<int>(rng.index(21));
    }
    const double acc = score(child);
    if (acc > best) {
      best = acc;
      incumbent = std::move(child);
    }
  }
  return best;
}

SuccessiveHalvingMlp::SuccessiveHalvingMlp(ShaConfig cfg) : cfg_(cfg) {
  if (cfg_.eta < 2) throw std::invalid_argument("ShaConfig: eta < 2");
  if (cfg_.rungs == 0) throw std::invalid_argument("ShaConfig: zero rungs");
}

nn::GraphSpec SuccessiveHalvingMlp::make_spec(const Candidate& c,
                                              std::size_t input_dim,
                                              std::size_t n_classes) const {
  nn::GraphSpec spec;
  spec.input_dim = input_dim;
  spec.output_dim = n_classes;
  std::size_t width = c.width;
  for (std::size_t layer = 0; layer < c.depth; ++layer) {
    nn::NodeSpec node;
    node.units = std::max<std::size_t>(8, width);
    node.act = nn::Activation::kRelu;
    spec.nodes.push_back(node);
    width /= 2;  // funnel shape
  }
  return spec;
}

ShaReport SuccessiveHalvingMlp::fit(const data::Dataset& train,
                                    const data::Dataset& valid) {
  Rng rng(cfg_.seed);
  std::vector<Candidate> candidates;
  candidates.reserve(cfg_.n_configs);
  for (std::size_t i = 0; i < cfg_.n_configs; ++i) {
    Candidate c;
    c.depth = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const std::size_t widths[] = {32, 64, 128};
    c.width = widths[rng.index(3)];
    c.lr = rng.log_uniform(1e-4, 1e-1);
    candidates.push_back(c);
  }

  ShaReport report;
  std::size_t epochs = cfg_.min_epochs;
  double best_score = -1.0;
  Candidate best_candidate{};

  for (std::size_t rung = 0; rung < cfg_.rungs && !candidates.empty(); ++rung) {
    for (auto& c : candidates) {
      const auto spec = make_spec(c, train.n_features, train.n_classes);
      Rng net_rng(cfg_.seed + rung * 1000 + 17);
      nn::GraphNet net(spec, net_rng);
      nn::TrainConfig tc;
      tc.epochs = epochs;
      tc.batch_size = cfg_.batch_size;
      tc.lr = c.lr;
      tc.seed = cfg_.seed + rung;
      const auto result = nn::train(net, train, valid, tc);
      c.score = result.best_valid_accuracy;
      ++report.total_trainings;
      report.total_epochs += epochs;
      if (c.score > best_score) {
        best_score = c.score;
        best_candidate = c;
      }
    }
    // Promote the top 1/eta to the next rung.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });
    const std::size_t keep = std::max<std::size_t>(1, candidates.size() / cfg_.eta);
    candidates.resize(rung + 1 < cfg_.rungs ? keep : 0);
    epochs *= cfg_.eta;
  }

  // Retrain the winner at the final fidelity and keep the model.
  const auto spec = make_spec(best_candidate, train.n_features, train.n_classes);
  Rng net_rng(cfg_.seed + 777);
  best_ = std::make_unique<nn::GraphNet>(spec, net_rng);
  nn::TrainConfig tc;
  tc.epochs = epochs / cfg_.eta;  // the last rung's fidelity
  tc.batch_size = cfg_.batch_size;
  tc.lr = best_candidate.lr;
  tc.seed = cfg_.seed + 99;
  const auto result = nn::train(*best_, train, valid, tc);
  report.best_valid_accuracy = std::max(best_score, result.best_valid_accuracy);
  return report;
}

nn::GraphNet& SuccessiveHalvingMlp::best_model() {
  if (!best_) throw std::logic_error("SuccessiveHalvingMlp: fit first");
  return *best_;
}

}  // namespace agebo::baselines
