// Auto-PyTorch-like baseline (Fig 6). The paper compares against LCBench
// numbers and explains Auto-PyTorch's gap by (a) a restricted architecture
// space with fewer trainable parameters and fewer layers and (b) relying on
// ensembling rather than a single strong network.
//
// Two faithful stand-ins are provided:
//  - surrogate_reference(): the best accuracy reachable inside the
//    *restricted subspace* of the same response surface (skip connections
//    disabled, layer width capped), by random sampling with a fixed budget.
//    This produces the horizontal reference line of Fig 6.
//  - SuccessiveHalvingMlp: a real BOHB-style multi-fidelity search over
//    funnel MLPs on actual data (epochs as the fidelity, eta=3 halving),
//    used by examples/tests on real gradients.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "eval/surrogate.hpp"
#include "nas/search_space.hpp"
#include "nn/graph_net.hpp"

namespace agebo::baselines {

/// Sample a genome restricted the Auto-PyTorch way: no skip connections and
/// dense ops capped at `max_op` (default 20 = widths up to 64 units in the
/// paper's op table).
nas::Genome sample_restricted_genome(const nas::SearchSpace& space, Rng& rng,
                                     int max_op = 20);

/// Best noise-free accuracy over `n_samples` restricted genomes with the
/// default single-process hyperparameters — the Fig 6 reference line.
double surrogate_reference(const nas::SearchSpace& space,
                           const eval::SurrogateEvaluator& evaluator,
                           std::size_t n_samples, std::uint64_t seed = 97);

struct ShaConfig {
  std::size_t n_configs = 27;   ///< rung-0 population
  std::size_t eta = 3;          ///< halving factor
  std::size_t min_epochs = 2;   ///< rung-0 fidelity
  std::size_t rungs = 3;        ///< total rungs (epochs *= eta per rung)
  std::size_t batch_size = 128;
  std::uint64_t seed = 41;
};

struct ShaReport {
  double best_valid_accuracy = 0.0;
  std::size_t total_trainings = 0;
  std::size_t total_epochs = 0;
};

/// Successive-halving HPO over funnel-shaped MLPs (depth 1-4, widths
/// shrinking by half per layer, tuned lr) trained with real gradients.
class SuccessiveHalvingMlp {
 public:
  explicit SuccessiveHalvingMlp(ShaConfig cfg = {});

  ShaReport fit(const data::Dataset& train, const data::Dataset& valid);

  /// Best network found (valid after fit()).
  nn::GraphNet& best_model();

 private:
  struct Candidate {
    std::size_t depth;
    std::size_t width;
    double lr;
    double score = 0.0;
  };
  nn::GraphSpec make_spec(const Candidate& c, std::size_t input_dim,
                          std::size_t n_classes) const;

  ShaConfig cfg_;
  std::unique_ptr<nn::GraphNet> best_;
};

}  // namespace agebo::baselines
