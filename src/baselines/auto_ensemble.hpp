// AutoGluon-like tabular AutoML baseline (Table II): a multi-layer stacking
// ensemble over random forest, extra-trees, gradient boosting, and kNN base
// learners, each lightly hyperparameter-tuned on the validation split and
// k-fold bagged. Reproduces the structure behind AutoGluon's accuracy and
// its two-orders-of-magnitude inference-time disadvantage versus a single
// neural network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "ml/stacking.hpp"

namespace agebo::baselines {

struct AutoEnsembleConfig {
  /// Candidate configurations tried per model family during tuning.
  std::size_t tuning_trials = 3;
  std::size_t n_folds = 5;
  /// Scale knobs for fast tests: forest sizes and boosting rounds.
  std::size_t forest_trees = 60;
  std::size_t boosting_rounds = 40;
  std::uint64_t seed = 29;
};

struct AutoEnsembleReport {
  double valid_accuracy = 0.0;
  double fit_seconds = 0.0;
  std::vector<std::string> base_models;
  std::size_t total_models = 0;
};

class AutoEnsemble final : public ml::RowwisePredictor {
 public:
  explicit AutoEnsemble(AutoEnsembleConfig cfg = {});

  /// Tune base families on (train, valid), then fit the stacked ensemble
  /// on train (k-fold OOF for the meta-learner).
  AutoEnsembleReport fit(const data::Dataset& train, const data::Dataset& valid);

  /// Predictor contract (throws std::logic_error before fit).
  std::size_t input_dim() const override { return ensemble().input_dim(); }
  std::size_t output_dim() const override { return ensemble().output_dim(); }
  std::vector<double> predict_proba_row(const float* row) const override;

  /// Fitted-state guards over the shared dataset helpers.
  std::vector<int> predict(const data::Dataset& ds) const;
  double accuracy(const data::Dataset& ds) const;

  /// Wall seconds to predict every row of `ds` (Table II inference time).
  double inference_seconds(const data::Dataset& ds) const;

  const ml::StackingEnsemble& ensemble() const;

 private:
  AutoEnsembleConfig cfg_;
  std::unique_ptr<ml::StackingEnsemble> stack_;
};

}  // namespace agebo::baselines
