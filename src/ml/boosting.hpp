// Gradient-boosted trees for multiclass classification (the LightGBM /
// CatBoost role inside the AutoGluon-like baseline). Standard softmax
// boosting: each round fits one regression tree per class to the negative
// gradient (one-hot minus predicted probability), with shrinkage.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace agebo::ml {

struct BoostingConfig {
  std::size_t n_rounds = 50;
  double learning_rate = 0.1;
  TreeConfig tree;
  /// Row subsample fraction per round (stochastic gradient boosting).
  double subsample = 0.8;
  std::uint64_t seed = 3;

  BoostingConfig() {
    tree.max_depth = 6;
    tree.min_samples_leaf = 8;
    tree.n_thresholds = 16;
  }
};

class GradientBoostingClassifier final : public RowwisePredictor {
 public:
  explicit GradientBoostingClassifier(BoostingConfig cfg = {});

  void fit(const data::Dataset& ds);

  std::size_t input_dim() const override { return n_features_; }
  std::size_t output_dim() const override { return n_classes_; }
  std::vector<double> predict_proba_row(const float* row) const override;

  std::size_t n_rounds_fitted() const { return trees_.size(); }

 private:
  void scores_for_row(const float* row, std::vector<double>& scores) const;

  BoostingConfig cfg_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<double> base_score_;                 // log-prior per class
  std::vector<std::vector<DecisionTree>> trees_;   // [round][class]
};

}  // namespace agebo::ml
