// Multi-layer stacking ensemble in the AutoGluon style: every base learner
// is k-fold bagged (all fold models are kept and averaged at inference) and
// a meta-learner is trained on out-of-fold probability features. This is the
// structure responsible for AutoGluon's inference cost in Table II — a
// prediction must run every fold model of every base learner plus the meta
// model.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"
#include "ml/ensemble_selection.hpp"
#include "ml/linear.hpp"

namespace agebo::ml {

/// Type-erased stacking base learner: a trainable, named Predictor. The
/// ensemble consumes members strictly through this interface — every fold
/// model is addressed as a RowwisePredictor, never as its concrete type.
class BaseClassifier : public RowwisePredictor {
 public:
  virtual void fit(const data::Dataset& ds) = 0;
  virtual std::string name() const = 0;
};

/// Adapter over any RowwisePredictor model with fit(Dataset).
template <typename Model>
class ClassifierAdapter final : public BaseClassifier {
 public:
  ClassifierAdapter(Model model, std::string name)
      : model_(std::move(model)), name_(std::move(name)) {}

  void fit(const data::Dataset& ds) override { model_.fit(ds); }
  std::size_t input_dim() const override { return model_.input_dim(); }
  std::size_t output_dim() const override { return model_.output_dim(); }
  std::vector<double> predict_proba_row(const float* row) const override {
    return model_.predict_proba_row(row);
  }
  std::string name() const override { return name_; }

 private:
  Model model_;
  std::string name_;
};

/// Factory producing a fresh unfitted base learner; stacking needs one
/// instance per fold plus one trained on all data.
using ClassifierFactory = std::function<std::unique_ptr<BaseClassifier>()>;

/// Final combiner over the out-of-fold base probabilities: a logistic
/// meta-learner, or greedy weighted ensemble selection (Caruana) — the
/// combiner AutoGluon uses.
enum class MetaLearner { kLogistic, kGreedyWeights };

struct StackingConfig {
  std::size_t n_folds = 5;
  MetaLearner meta_learner = MetaLearner::kLogistic;
  LogisticConfig meta;
  EnsembleSelectionConfig selection;
  std::uint64_t seed = 13;
};

class StackingEnsemble final : public RowwisePredictor {
 public:
  StackingEnsemble(std::vector<ClassifierFactory> factories, StackingConfig cfg);

  void fit(const data::Dataset& ds);

  std::size_t input_dim() const override { return n_features_; }
  std::size_t output_dim() const override { return n_classes_; }
  std::vector<double> predict_proba_row(const float* row) const override;

  /// Total fitted models across all base learners and folds (meta excluded).
  std::size_t n_models() const;
  const std::vector<std::string>& base_names() const { return names_; }

  /// Per-base weights when meta_learner == kGreedyWeights (empty otherwise).
  const std::vector<double>& base_weights() const { return weights_; }

 private:
  /// Averaged fold-model probabilities for one base learner.
  std::vector<double> base_proba(std::size_t base, const float* row) const;

  std::vector<ClassifierFactory> factories_;
  StackingConfig cfg_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<std::string> names_;
  // fold_models_[base][fold]
  std::vector<std::vector<std::unique_ptr<BaseClassifier>>> fold_models_;
  LogisticRegression meta_;
  std::vector<double> weights_;  // greedy-selection combiner
};

}  // namespace agebo::ml
