// Greedy weighted ensemble selection (Caruana et al.) — the strategy
// AutoGluon uses as its final combiner: starting from an empty ensemble,
// repeatedly add (with replacement) the base model whose inclusion most
// improves validation accuracy of the weighted probability average. Models
// can be selected multiple times, which realizes fractional weights.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/predictor.hpp"
#include "data/dataset.hpp"

namespace agebo::ml {

/// Validation predictions of one candidate model: row-major
/// n_rows x n_classes probabilities.
struct CandidatePredictions {
  std::vector<double> proba;
  std::size_t n_rows = 0;
  std::size_t n_classes = 0;
};

struct EnsembleSelectionConfig {
  /// Greedy rounds (= total selections, counting repeats).
  std::size_t rounds = 20;
  /// Stop early when a round cannot improve accuracy.
  bool allow_no_improvement_stop = true;
};

struct EnsembleSelectionResult {
  /// Normalized weight per candidate (sums to 1 over selected ones).
  std::vector<double> weights;
  /// Selection counts per candidate.
  std::vector<std::size_t> counts;
  double validation_accuracy = 0.0;
  std::size_t rounds_used = 0;
};

/// Select weights over `candidates` maximizing accuracy against `labels`.
/// All candidates must share n_rows == labels.size() and n_classes.
EnsembleSelectionResult select_ensemble(
    const std::vector<CandidatePredictions>& candidates,
    const std::vector<int>& labels, const EnsembleSelectionConfig& cfg = {});

/// Weighted probability average for one row across candidates.
std::vector<double> blend_row(const std::vector<CandidatePredictions>& candidates,
                              const std::vector<double>& weights,
                              std::size_t row);

/// Materialize a fitted model's validation predictions through the unified
/// Predictor interface — how selection consumes members without knowing
/// their concrete type.
CandidatePredictions candidate_from(const Predictor& model,
                                    const data::Dataset& ds);

}  // namespace agebo::ml
