#include "ml/stacking.hpp"

#include <algorithm>
#include <stdexcept>

namespace agebo::ml {

StackingEnsemble::StackingEnsemble(std::vector<ClassifierFactory> factories,
                                   StackingConfig cfg)
    : factories_(std::move(factories)), cfg_(cfg), meta_(cfg_.meta) {
  if (factories_.empty()) throw std::invalid_argument("StackingEnsemble: no bases");
  if (cfg_.n_folds < 2) throw std::invalid_argument("StackingEnsemble: n_folds < 2");
}

void StackingEnsemble::fit(const data::Dataset& ds) {
  if (ds.n_rows < cfg_.n_folds) {
    throw std::invalid_argument("StackingEnsemble: fewer rows than folds");
  }
  n_features_ = ds.n_features;
  n_classes_ = ds.n_classes;
  names_.clear();
  fold_models_.clear();

  // Fold assignment.
  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::size_t> fold_of(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    fold_of[order[i]] = i % cfg_.n_folds;
  }
  std::vector<std::vector<std::size_t>> train_rows(cfg_.n_folds);
  std::vector<std::vector<std::size_t>> holdout_rows(cfg_.n_folds);
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    for (std::size_t f = 0; f < cfg_.n_folds; ++f) {
      (fold_of[i] == f ? holdout_rows[f] : train_rows[f]).push_back(i);
    }
  }

  // Out-of-fold probability features for the meta-learner.
  const std::size_t n_bases = factories_.size();
  data::Dataset meta_ds;
  meta_ds.n_rows = ds.n_rows;
  meta_ds.n_features = n_bases * n_classes_;
  meta_ds.n_classes = n_classes_;
  meta_ds.name = ds.name + "-meta";
  meta_ds.x.assign(meta_ds.n_rows * meta_ds.n_features, 0.0f);
  meta_ds.y = ds.y;

  for (std::size_t b = 0; b < n_bases; ++b) {
    std::vector<std::unique_ptr<BaseClassifier>> folds;
    folds.reserve(cfg_.n_folds);
    for (std::size_t f = 0; f < cfg_.n_folds; ++f) {
      auto model = factories_[b]();
      const auto fold_train = ds.subset(train_rows[f]);
      model->fit(fold_train);
      for (std::size_t r : holdout_rows[f]) {
        const auto proba = model->predict_proba_row(ds.row(r));
        float* dst = meta_ds.x.data() + r * meta_ds.n_features + b * n_classes_;
        for (std::size_t c = 0; c < n_classes_; ++c) {
          dst[c] = static_cast<float>(proba[c]);
        }
      }
      folds.push_back(std::move(model));
    }
    names_.push_back(folds.front()->name());
    fold_models_.push_back(std::move(folds));
  }

  if (cfg_.meta_learner == MetaLearner::kLogistic) {
    weights_.clear();
    meta_ = LogisticRegression(cfg_.meta);
    meta_.fit(meta_ds);
  } else {
    // Greedy weighted ensemble selection over the OOF base probabilities.
    std::vector<CandidatePredictions> candidates(n_bases);
    for (std::size_t b = 0; b < n_bases; ++b) {
      candidates[b].n_rows = ds.n_rows;
      candidates[b].n_classes = n_classes_;
      candidates[b].proba.resize(ds.n_rows * n_classes_);
      for (std::size_t r = 0; r < ds.n_rows; ++r) {
        const float* src =
            meta_ds.x.data() + r * meta_ds.n_features + b * n_classes_;
        for (std::size_t c = 0; c < n_classes_; ++c) {
          candidates[b].proba[r * n_classes_ + c] = src[c];
        }
      }
    }
    const auto selection = select_ensemble(candidates, ds.y, cfg_.selection);
    weights_ = selection.weights;
  }
}

std::vector<double> StackingEnsemble::base_proba(std::size_t base,
                                                 const float* row) const {
  std::vector<double> avg(n_classes_, 0.0);
  for (const auto& model : fold_models_[base]) {
    const auto proba = model->predict_proba_row(row);
    for (std::size_t c = 0; c < n_classes_; ++c) avg[c] += proba[c];
  }
  for (double& p : avg) p /= static_cast<double>(fold_models_[base].size());
  return avg;
}

std::vector<double> StackingEnsemble::predict_proba_row(const float* row) const {
  if (fold_models_.empty()) throw std::logic_error("StackingEnsemble: not fitted");
  if (cfg_.meta_learner == MetaLearner::kGreedyWeights) {
    std::vector<double> blend(n_classes_, 0.0);
    for (std::size_t b = 0; b < fold_models_.size(); ++b) {
      if (weights_[b] == 0.0) continue;
      const auto proba = base_proba(b, row);
      for (std::size_t c = 0; c < n_classes_; ++c) {
        blend[c] += weights_[b] * proba[c];
      }
    }
    return blend;
  }
  std::vector<float> meta_row(fold_models_.size() * n_classes_);
  for (std::size_t b = 0; b < fold_models_.size(); ++b) {
    const auto proba = base_proba(b, row);
    for (std::size_t c = 0; c < n_classes_; ++c) {
      meta_row[b * n_classes_ + c] = static_cast<float>(proba[c]);
    }
  }
  return meta_.predict_proba_row(meta_row.data());
}

std::size_t StackingEnsemble::n_models() const {
  std::size_t n = 0;
  for (const auto& folds : fold_models_) n += folds.size();
  return n;
}

}  // namespace agebo::ml
