#include "ml/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::ml {

GradientBoostingClassifier::GradientBoostingClassifier(BoostingConfig cfg)
    : cfg_(std::move(cfg)) {}

void GradientBoostingClassifier::fit(const data::Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("GradientBoosting: empty");
  n_features_ = ds.n_features;
  n_classes_ = ds.n_classes;
  trees_.clear();

  // Base score: class log-priors.
  const auto counts = data::class_counts(ds);
  base_score_.assign(n_classes_, 0.0);
  for (std::size_t c = 0; c < n_classes_; ++c) {
    const double p = std::max(1e-9, static_cast<double>(counts[c]) /
                                        static_cast<double>(ds.n_rows));
    base_score_[c] = std::log(p);
  }

  // Running raw scores per sample.
  std::vector<double> scores(ds.n_rows * n_classes_);
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    for (std::size_t c = 0; c < n_classes_; ++c) {
      scores[i * n_classes_ + c] = base_score_[c];
    }
  }

  Rng rng(cfg_.seed);
  std::vector<double> residual(ds.n_rows);
  std::vector<double> probs(n_classes_);

  for (std::size_t round = 0; round < cfg_.n_rounds; ++round) {
    // Row subsample for this round.
    std::vector<std::size_t> rows;
    if (cfg_.subsample < 1.0) {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(cfg_.subsample * static_cast<double>(ds.n_rows)));
      rows = rng.sample_without_replacement(ds.n_rows, k);
    } else {
      rows.resize(ds.n_rows);
      for (std::size_t i = 0; i < ds.n_rows; ++i) rows[i] = i;
    }

    std::vector<DecisionTree> round_trees(n_classes_);
    for (std::size_t c = 0; c < n_classes_; ++c) {
      // Residual = one_hot - softmax(scores), computed lazily per row.
      for (std::size_t i = 0; i < ds.n_rows; ++i) {
        const double* s = scores.data() + i * n_classes_;
        double mx = s[0];
        for (std::size_t k = 1; k < n_classes_; ++k) mx = std::max(mx, s[k]);
        double z = 0.0;
        for (std::size_t k = 0; k < n_classes_; ++k) z += std::exp(s[k] - mx);
        const double p = std::exp(s[c] - mx) / z;
        residual[i] = (static_cast<std::size_t>(ds.y[i]) == c ? 1.0 : 0.0) - p;
      }
      Rng tree_rng = rng.split();
      round_trees[c].fit_regression(ds.x.data(), ds.n_rows, ds.n_features,
                                    residual, cfg_.tree, tree_rng, &rows);
    }
    // Update scores with shrinkage.
    for (std::size_t i = 0; i < ds.n_rows; ++i) {
      const float* row = ds.row(i);
      for (std::size_t c = 0; c < n_classes_; ++c) {
        scores[i * n_classes_ + c] +=
            cfg_.learning_rate * round_trees[c].predict_value(row);
      }
    }
    trees_.push_back(std::move(round_trees));
    (void)probs;
  }
}

void GradientBoostingClassifier::scores_for_row(const float* row,
                                                std::vector<double>& scores) const {
  scores = base_score_;
  for (const auto& round : trees_) {
    for (std::size_t c = 0; c < n_classes_; ++c) {
      scores[c] += cfg_.learning_rate * round[c].predict_value(row);
    }
  }
}

std::vector<double> GradientBoostingClassifier::predict_proba_row(const float* row) const {
  if (trees_.empty() && base_score_.empty()) {
    throw std::logic_error("GradientBoosting: not fitted");
  }
  std::vector<double> scores;
  scores_for_row(row, scores);
  double mx = scores[0];
  for (double s : scores) mx = std::max(mx, s);
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

}  // namespace agebo::ml
