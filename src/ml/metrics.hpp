// Classification metrics beyond plain accuracy: confusion matrix, balanced
// accuracy, macro-F1, and log-loss. Tabular benchmarks (Covertype's class
// imbalance, Dionis's 355 classes) need more than top-1 accuracy to judge a
// model; these match the standard definitions.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo::ml {

/// counts(i, j) = number of samples with true class i predicted as j.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t n_classes);

  void add(int truth, int prediction);

  std::size_t n_classes() const { return n_; }
  std::size_t count(std::size_t truth, std::size_t prediction) const;
  std::size_t total() const { return total_; }

  double accuracy() const;
  /// Mean per-class recall — robust to class imbalance.
  double balanced_accuracy() const;
  /// Unweighted mean of per-class F1 scores (classes with no support and
  /// no predictions contribute F1 = 0 only if predicted; else skipped).
  double macro_f1() const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // n x n
};

/// Build a confusion matrix from label vectors.
ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions,
                                 std::size_t n_classes);

/// Mean negative log-likelihood of the true class; probabilities are
/// clipped to [1e-15, 1]. `proba` is row-major n x n_classes.
double log_loss(const std::vector<int>& truth,
                const std::vector<double>& proba, std::size_t n_classes);

}  // namespace agebo::ml
