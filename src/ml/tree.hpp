// CART decision trees. One implementation serves three consumers:
//  - classification trees inside RandomForest/ExtraTrees (gini impurity),
//  - regression trees inside GradientBoosting (MSE criterion),
//  - regression trees inside the BO random-forest surrogate.
//
// Split search scans candidate thresholds per feature; for efficiency with
// large node sizes the candidates are subsampled quantiles rather than all
// midpoints, which is the standard histogram-style approximation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace agebo::ml {

struct TreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Features examined per split; 0 = all features.
  std::size_t max_features = 0;
  /// Candidate thresholds per feature; 0 = all midpoints (exact CART).
  std::size_t n_thresholds = 32;
  /// ExtraTrees mode: one uniformly random threshold per feature.
  bool random_thresholds = false;
};

/// Flat-array binary tree. Internal node: feature/threshold/left/right.
/// Leaf: left == -1, payload in `leaf_value` (regression) or
/// `leaf_distribution` (classification probabilities).
class DecisionTree {
 public:
  /// Fit a regression tree on rows of x (row-major, n x d) against y.
  void fit_regression(const float* x, std::size_t n, std::size_t d,
                      const std::vector<double>& y, const TreeConfig& cfg,
                      Rng& rng, const std::vector<std::size_t>* row_subset = nullptr);

  /// Fit a classification tree; y holds class ids < n_classes.
  void fit_classification(const float* x, std::size_t n, std::size_t d,
                          const std::vector<int>& y, std::size_t n_classes,
                          const TreeConfig& cfg, Rng& rng,
                          const std::vector<std::size_t>* row_subset = nullptr);

  double predict_value(const float* row) const;
  /// Class distribution at the reached leaf (classification trees only).
  const std::vector<double>& predict_distribution(const float* row) const;

  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t depth() const;
  bool is_classification() const { return n_classes_ > 0; }

 private:
  struct Node {
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;   // -1 => leaf
    int right = -1;
    double leaf_value = 0.0;
    int dist_index = -1;  // into distributions_ for classification leaves
  };

  struct BuildContext;
  int build(BuildContext& ctx, std::vector<std::size_t>& rows, std::size_t depth);
  const Node& descend(const float* row) const;

  std::vector<Node> nodes_;
  std::vector<std::vector<double>> distributions_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;  // 0 for regression
};

}  // namespace agebo::ml
