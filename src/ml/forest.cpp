#include "ml/forest.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::ml {

ForestConfig random_forest_defaults(std::size_t n_trees) {
  ForestConfig cfg;
  cfg.n_trees = n_trees;
  cfg.bootstrap = true;
  cfg.tree.max_depth = 24;
  cfg.tree.min_samples_leaf = 1;
  cfg.tree.n_thresholds = 24;
  return cfg;
}

ForestConfig extra_trees_defaults(std::size_t n_trees) {
  ForestConfig cfg;
  cfg.n_trees = n_trees;
  cfg.bootstrap = false;
  cfg.tree.max_depth = 24;
  cfg.tree.random_thresholds = true;
  return cfg;
}

namespace {

std::vector<std::size_t> bootstrap_rows(std::size_t n, Rng& rng) {
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = rng.index(n);
  return rows;
}

std::size_t default_max_features(std::size_t d, bool classification) {
  // sqrt(d) for classification, d/3 for regression (standard defaults).
  if (classification) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));
  }
  return std::max<std::size_t>(1, d / 3);
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestConfig cfg)
    : cfg_(std::move(cfg)) {}

void RandomForestClassifier::fit(const data::Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("RandomForestClassifier: empty");
  n_classes_ = ds.n_classes;
  n_features_ = ds.n_features;
  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = default_max_features(ds.n_features, true);
  }
  trees_.assign(cfg_.n_trees, DecisionTree{});
  Rng rng(cfg_.seed);
  for (auto& tree : trees_) {
    Rng tree_rng = rng.split();
    if (cfg_.bootstrap) {
      auto rows = bootstrap_rows(ds.n_rows, tree_rng);
      tree.fit_classification(ds.x.data(), ds.n_rows, ds.n_features, ds.y,
                              n_classes_, tree_cfg, tree_rng, &rows);
    } else {
      tree.fit_classification(ds.x.data(), ds.n_rows, ds.n_features, ds.y,
                              n_classes_, tree_cfg, tree_rng);
    }
  }
}

std::vector<double> RandomForestClassifier::predict_proba_row(const float* row) const {
  if (trees_.empty()) throw std::logic_error("RandomForestClassifier: not fitted");
  std::vector<double> proba(n_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto& dist = tree.predict_distribution(row);
    for (std::size_t c = 0; c < n_classes_; ++c) proba[c] += dist[c];
  }
  for (double& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

RandomForestRegressor::RandomForestRegressor(ForestConfig cfg)
    : cfg_(std::move(cfg)) {}

void RandomForestRegressor::fit(const std::vector<float>& x, std::size_t n,
                                std::size_t d, const std::vector<double>& y) {
  if (x.size() != n * d) throw std::invalid_argument("RandomForestRegressor: x size");
  n_features_ = d;
  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = default_max_features(d, false);
  }
  trees_.assign(cfg_.n_trees, DecisionTree{});
  Rng rng(cfg_.seed);
  for (auto& tree : trees_) {
    Rng tree_rng = rng.split();
    if (cfg_.bootstrap) {
      auto rows = bootstrap_rows(n, tree_rng);
      tree.fit_regression(x.data(), n, d, y, tree_cfg, tree_rng, &rows);
    } else {
      tree.fit_regression(x.data(), n, d, y, tree_cfg, tree_rng);
    }
  }
}

void RandomForestRegressor::refit_tree(std::size_t tree_index,
                                       const std::vector<float>& x,
                                       std::size_t n, std::size_t d,
                                       const std::vector<double>& y,
                                       std::uint64_t salt) {
  if (x.size() != n * d) throw std::invalid_argument("RandomForestRegressor: x size");
  if (tree_index >= cfg_.n_trees) {
    throw std::invalid_argument("RandomForestRegressor: tree index");
  }
  if (trees_.empty()) trees_.assign(cfg_.n_trees, DecisionTree{});
  n_features_ = d;
  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = default_max_features(d, false);
  }
  // Per-tree stream independent of any shared rng: splitmix64-style mixing
  // of (seed, index, salt) so the same triple always rebuilds the same tree.
  std::uint64_t z = cfg_.seed + 0x9e3779b97f4a7c15ULL * (tree_index + 1) +
                    0xbf58476d1ce4e5b9ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  Rng tree_rng(z ^ (z >> 31));
  if (cfg_.bootstrap) {
    auto rows = bootstrap_rows(n, tree_rng);
    trees_[tree_index].fit_regression(x.data(), n, d, y, tree_cfg, tree_rng,
                                      &rows);
  } else {
    trees_[tree_index].fit_regression(x.data(), n, d, y, tree_cfg, tree_rng);
  }
}

double RandomForestRegressor::predict_row(const float* row) const {
  double mean = 0.0;
  double stddev = 0.0;
  predict_with_uncertainty(row, mean, stddev);
  return mean;
}

void RandomForestRegressor::predict_with_uncertainty(const float* row,
                                                     double& mean,
                                                     double& stddev) const {
  if (trees_.empty()) throw std::logic_error("RandomForestRegressor: not fitted");
  double sum = 0.0;
  double sumsq = 0.0;
  for (const auto& tree : trees_) {
    const double v = tree.predict_value(row);
    sum += v;
    sumsq += v * v;
  }
  const double n = static_cast<double>(trees_.size());
  mean = sum / n;
  const double var = std::max(0.0, sumsq / n - mean * mean);
  stddev = std::sqrt(var);
}

}  // namespace agebo::ml
