// Brute-force k-nearest-neighbours classifier (one of AutoGluon's base
// learners). Deliberately exact: its O(n_ref · d) per-query cost is part of
// what Table II measures — stacked ensembles containing kNN pay heavily at
// inference time.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"

namespace agebo::ml {

struct KnnConfig {
  std::size_t k = 15;
  /// Cap on stored reference rows (random subsample); 0 = keep all.
  std::size_t max_reference_rows = 0;
  std::uint64_t seed = 5;
};

class KnnClassifier final : public RowwisePredictor {
 public:
  explicit KnnClassifier(KnnConfig cfg = {});

  void fit(const data::Dataset& ds);

  std::size_t input_dim() const override { return ref_.n_features; }
  std::size_t output_dim() const override { return ref_.n_classes; }
  /// Distance-weighted vote probabilities; size n_classes.
  std::vector<double> predict_proba_row(const float* row) const override;

  std::size_t n_reference_rows() const { return ref_.n_rows; }

 private:
  KnnConfig cfg_;
  data::Dataset ref_;
};

}  // namespace agebo::ml
