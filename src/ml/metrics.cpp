#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t n_classes)
    : n_(n_classes), counts_(n_classes * n_classes, 0) {
  if (n_classes < 2) throw std::invalid_argument("ConfusionMatrix: < 2 classes");
}

void ConfusionMatrix::add(int truth, int prediction) {
  if (truth < 0 || prediction < 0 || static_cast<std::size_t>(truth) >= n_ ||
      static_cast<std::size_t>(prediction) >= n_) {
    throw std::invalid_argument("ConfusionMatrix::add: label out of range");
  }
  counts_[static_cast<std::size_t>(truth) * n_ +
          static_cast<std::size_t>(prediction)]++;
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t prediction) const {
  if (truth >= n_ || prediction >= n_) {
    throw std::out_of_range("ConfusionMatrix::count");
  }
  return counts_[truth * n_ + prediction];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < n_; ++i) diag += counts_[i * n_ + i];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::balanced_accuracy() const {
  double recall_sum = 0.0;
  std::size_t supported = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t support = 0;
    for (std::size_t j = 0; j < n_; ++j) support += counts_[i * n_ + j];
    if (support == 0) continue;
    recall_sum += static_cast<double>(counts_[i * n_ + i]) /
                  static_cast<double>(support);
    ++supported;
  }
  return supported > 0 ? recall_sum / static_cast<double>(supported) : 0.0;
}

double ConfusionMatrix::macro_f1() const {
  double f1_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t support = 0;    // row sum: true class i
    std::size_t predicted = 0;  // column sum: predicted class i
    for (std::size_t j = 0; j < n_; ++j) {
      support += counts_[i * n_ + j];
      predicted += counts_[j * n_ + i];
    }
    if (support == 0 && predicted == 0) continue;  // class absent entirely
    const double tp = static_cast<double>(counts_[i * n_ + i]);
    const double precision =
        predicted > 0 ? tp / static_cast<double>(predicted) : 0.0;
    const double recall = support > 0 ? tp / static_cast<double>(support) : 0.0;
    const double f1 = (precision + recall) > 0.0
                          ? 2.0 * precision * recall / (precision + recall)
                          : 0.0;
    f1_sum += f1;
    ++counted;
  }
  return counted > 0 ? f1_sum / static_cast<double>(counted) : 0.0;
}

ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions,
                                 std::size_t n_classes) {
  if (truth.size() != predictions.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  ConfusionMatrix cm(n_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    cm.add(truth[i], predictions[i]);
  }
  return cm;
}

double log_loss(const std::vector<int>& truth,
                const std::vector<double>& proba, std::size_t n_classes) {
  if (truth.empty() || proba.size() != truth.size() * n_classes) {
    throw std::invalid_argument("log_loss: shape mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto label = static_cast<std::size_t>(truth[i]);
    if (label >= n_classes) throw std::invalid_argument("log_loss: bad label");
    const double p = std::clamp(proba[i * n_classes + label], 1e-15, 1.0);
    sum -= std::log(p);
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace agebo::ml
