#include "ml/classifier.hpp"

#include <algorithm>
#include <iterator>

namespace agebo::ml {

void RowwisePredictor::predict_batch(const float* rows, std::size_t n,
                                     float* out) const {
  const std::size_t in = input_dim();
  const std::size_t width = output_dim();
  for (std::size_t i = 0; i < n; ++i) {
    const auto proba = predict_proba_row(rows + i * in);
    for (std::size_t c = 0; c < width; ++c) {
      out[i * width + c] = static_cast<float>(proba[c]);
    }
  }
}

std::vector<int> RowwisePredictor::predict(const data::Dataset& ds) const {
  std::vector<int> out(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const auto proba = predict_proba_row(ds.row(i));
    out[i] = static_cast<int>(std::distance(
        proba.begin(), std::max_element(proba.begin(), proba.end())));
  }
  return out;
}

double RowwisePredictor::accuracy(const data::Dataset& ds) const {
  const auto preds = predict(ds);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    if (preds[i] == ds.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.n_rows);
}

}  // namespace agebo::ml
