#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace agebo::ml {

struct DecisionTree::BuildContext {
  const float* x;
  std::size_t d;
  const std::vector<double>* yr;       // regression targets
  const std::vector<int>* yc;          // classification labels
  std::size_t n_classes;
  const TreeConfig* cfg;
  Rng* rng;
  DecisionTree* tree;
};

namespace {

/// Criterion accumulators. For regression: sum/sumsq. For classification:
/// class histogram. Impurity = variance*n (SSE) or gini*n respectively so
/// that split gain is additive.
struct Accum {
  // regression
  double sum = 0.0;
  double sumsq = 0.0;
  // classification
  std::vector<double> hist;
  double n = 0.0;

  void init_classes(std::size_t k) { hist.assign(k, 0.0); }

  void add_reg(double y) {
    sum += y;
    sumsq += y * y;
    n += 1.0;
  }
  void remove_reg(double y) {
    sum -= y;
    sumsq -= y * y;
    n -= 1.0;
  }
  void add_cls(int c) {
    hist[static_cast<std::size_t>(c)] += 1.0;
    n += 1.0;
  }
  void remove_cls(int c) {
    hist[static_cast<std::size_t>(c)] -= 1.0;
    n -= 1.0;
  }

  double impurity_reg() const {
    if (n <= 0.0) return 0.0;
    return sumsq - sum * sum / n;  // SSE
  }
  double impurity_cls() const {
    if (n <= 0.0) return 0.0;
    double sq = 0.0;
    for (double h : hist) sq += h * h;
    return n - sq / n;  // n * gini
  }
};

}  // namespace

int DecisionTree::build(BuildContext& ctx, std::vector<std::size_t>& rows,
                        std::size_t depth) {
  const bool classify = ctx.yc != nullptr;
  const TreeConfig& cfg = *ctx.cfg;

  Accum total;
  if (classify) total.init_classes(ctx.n_classes);
  for (std::size_t r : rows) {
    if (classify) {
      total.add_cls((*ctx.yc)[r]);
    } else {
      total.add_reg((*ctx.yr)[r]);
    }
  }
  const double node_impurity = classify ? total.impurity_cls() : total.impurity_reg();

  auto make_leaf = [&]() -> int {
    Node leaf;
    if (classify) {
      std::vector<double> dist(ctx.n_classes, 0.0);
      for (std::size_t c = 0; c < ctx.n_classes; ++c) {
        dist[c] = total.hist[c] / total.n;
      }
      leaf.dist_index = static_cast<int>(distributions_.size());
      distributions_.push_back(std::move(dist));
      // Leaf value doubles as the majority class for convenience.
      leaf.leaf_value = static_cast<double>(
          std::distance(total.hist.begin(),
                        std::max_element(total.hist.begin(), total.hist.end())));
    } else {
      leaf.leaf_value = total.sum / total.n;
    }
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (rows.size() < cfg.min_samples_split || depth >= cfg.max_depth ||
      node_impurity <= 1e-12) {
    return make_leaf();
  }

  // Choose candidate features.
  std::size_t n_feat = cfg.max_features == 0
                           ? ctx.d
                           : std::min(cfg.max_features, ctx.d);
  std::vector<std::size_t> features =
      n_feat == ctx.d ? std::vector<std::size_t>{}
                      : ctx.rng->sample_without_replacement(ctx.d, n_feat);
  if (features.empty()) {
    features.resize(ctx.d);
    for (std::size_t f = 0; f < ctx.d; ++f) features[f] = f;
  }

  double best_gain = 1e-10;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<float> values(rows.size());
  for (std::size_t f : features) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      values[i] = ctx.x[rows[i] * ctx.d + f];
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    if (!(hi > lo)) continue;

    std::vector<float> thresholds;
    if (cfg.random_thresholds) {
      thresholds.push_back(
          static_cast<float>(ctx.rng->uniform(lo, hi)));
    } else if (cfg.n_thresholds > 0 && rows.size() > cfg.n_thresholds) {
      // Quantile candidates over a sorted copy.
      std::vector<float> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      thresholds.reserve(cfg.n_thresholds);
      for (std::size_t t = 1; t <= cfg.n_thresholds; ++t) {
        const std::size_t idx =
            t * sorted.size() / (cfg.n_thresholds + 1);
        const float thr = sorted[std::min(idx, sorted.size() - 1)];
        if (thresholds.empty() || thr != thresholds.back()) {
          thresholds.push_back(thr);
        }
      }
    } else {
      std::vector<float> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      thresholds.reserve(sorted.size());
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        thresholds.push_back(0.5f * (sorted[i] + sorted[i + 1]));
      }
    }

    for (float thr : thresholds) {
      Accum left;
      Accum right = total;
      if (classify) left.init_classes(ctx.n_classes);
      // Single scan partition statistics.
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (values[i] <= thr) {
          if (classify) {
            left.add_cls((*ctx.yc)[rows[i]]);
            right.remove_cls((*ctx.yc)[rows[i]]);
          } else {
            left.add_reg((*ctx.yr)[rows[i]]);
            right.remove_reg((*ctx.yr)[rows[i]]);
          }
        }
      }
      if (left.n < static_cast<double>(cfg.min_samples_leaf) ||
          right.n < static_cast<double>(cfg.min_samples_leaf)) {
        continue;
      }
      const double child_impurity =
          classify ? left.impurity_cls() + right.impurity_cls()
                   : left.impurity_reg() + right.impurity_reg();
      const double gain = node_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (ctx.x[r * ctx.d + static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();
  rows.clear();
  rows.shrink_to_fit();

  // Reserve this node's slot before recursing so children land after it.
  nodes_.emplace_back();
  const int me = static_cast<int>(nodes_.size() - 1);
  const int left = build(ctx, left_rows, depth + 1);
  const int right = build(ctx, right_rows, depth + 1);
  nodes_[static_cast<std::size_t>(me)].feature = best_feature;
  nodes_[static_cast<std::size_t>(me)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(me)].left = left;
  nodes_[static_cast<std::size_t>(me)].right = right;
  return me;
}

void DecisionTree::fit_regression(const float* x, std::size_t n, std::size_t d,
                                  const std::vector<double>& y,
                                  const TreeConfig& cfg, Rng& rng,
                                  const std::vector<std::size_t>* row_subset) {
  if (y.size() != n) throw std::invalid_argument("fit_regression: size");
  if (n == 0) throw std::invalid_argument("fit_regression: empty");
  nodes_.clear();
  distributions_.clear();
  n_features_ = d;
  n_classes_ = 0;
  BuildContext ctx{x, d, &y, nullptr, 0, &cfg, &rng, this};
  std::vector<std::size_t> rows;
  if (row_subset != nullptr) {
    rows = *row_subset;
  } else {
    rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  }
  build(ctx, rows, 0);
}

void DecisionTree::fit_classification(const float* x, std::size_t n,
                                      std::size_t d, const std::vector<int>& y,
                                      std::size_t n_classes,
                                      const TreeConfig& cfg, Rng& rng,
                                      const std::vector<std::size_t>* row_subset) {
  if (y.size() != n) throw std::invalid_argument("fit_classification: size");
  if (n == 0 || n_classes < 2) {
    throw std::invalid_argument("fit_classification: bad input");
  }
  nodes_.clear();
  distributions_.clear();
  n_features_ = d;
  n_classes_ = n_classes;
  BuildContext ctx{x, d, nullptr, &y, n_classes, &cfg, &rng, this};
  std::vector<std::size_t> rows;
  if (row_subset != nullptr) {
    rows = *row_subset;
  } else {
    rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  }
  build(ctx, rows, 0);
}

const DecisionTree::Node& DecisionTree::descend(const float* row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t i = 0;
  while (nodes_[i].left >= 0) {
    const auto& node = nodes_[i];
    i = static_cast<std::size_t>(
        row[node.feature] <= node.threshold ? node.left : node.right);
  }
  return nodes_[i];
}

double DecisionTree::predict_value(const float* row) const {
  return descend(row).leaf_value;
}

const std::vector<double>& DecisionTree::predict_distribution(const float* row) const {
  const Node& leaf = descend(row);
  if (leaf.dist_index < 0) {
    throw std::logic_error("predict_distribution on a regression tree");
  }
  return distributions_[static_cast<std::size_t>(leaf.dist_index)];
}

std::size_t DecisionTree::depth() const {
  // Depth via iterative traversal of the flat layout.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[i].left >= 0) {
      stack.push_back({static_cast<std::size_t>(nodes_[i].left), d + 1});
      stack.push_back({static_cast<std::size_t>(nodes_[i].right), d + 1});
    }
  }
  return best;
}

}  // namespace agebo::ml
