#include "ml/ensemble_selection.hpp"

#include <algorithm>
#include <stdexcept>

namespace agebo::ml {

namespace {

double blended_accuracy(const std::vector<CandidatePredictions>& candidates,
                        const std::vector<std::size_t>& counts,
                        std::size_t total, const std::vector<int>& labels) {
  const std::size_t n_rows = labels.size();
  const std::size_t n_classes = candidates[0].n_classes;
  std::size_t correct = 0;
  std::vector<double> blend(n_classes);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::fill(blend.begin(), blend.end(), 0.0);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] == 0) continue;
      const double w = static_cast<double>(counts[c]) / static_cast<double>(total);
      const double* row = candidates[c].proba.data() + r * n_classes;
      for (std::size_t k = 0; k < n_classes; ++k) blend[k] += w * row[k];
    }
    const auto best = std::distance(
        blend.begin(), std::max_element(blend.begin(), blend.end()));
    if (static_cast<int>(best) == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n_rows);
}

}  // namespace

EnsembleSelectionResult select_ensemble(
    const std::vector<CandidatePredictions>& candidates,
    const std::vector<int>& labels, const EnsembleSelectionConfig& cfg) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_ensemble: no candidates");
  }
  const std::size_t n_rows = labels.size();
  const std::size_t n_classes = candidates[0].n_classes;
  for (const auto& c : candidates) {
    if (c.n_rows != n_rows || c.n_classes != n_classes ||
        c.proba.size() != n_rows * n_classes) {
      throw std::invalid_argument("select_ensemble: candidate shape mismatch");
    }
  }
  if (cfg.rounds == 0) throw std::invalid_argument("select_ensemble: zero rounds");

  EnsembleSelectionResult result;
  result.counts.assign(candidates.size(), 0);
  std::size_t total = 0;
  double best_acc = -1.0;

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    std::size_t best_candidate = candidates.size();
    double round_best = best_acc;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      ++result.counts[c];
      const double acc = blended_accuracy(candidates, result.counts, total + 1,
                                          labels);
      --result.counts[c];
      if (acc > round_best) {
        round_best = acc;
        best_candidate = c;
      }
    }
    if (best_candidate == candidates.size()) {
      if (cfg.allow_no_improvement_stop) break;
      // Re-add the current best blend's strongest member to keep going.
      best_candidate = static_cast<std::size_t>(std::distance(
          result.counts.begin(),
          std::max_element(result.counts.begin(), result.counts.end())));
    }
    ++result.counts[best_candidate];
    ++total;
    best_acc = blended_accuracy(candidates, result.counts, total, labels);
    ++result.rounds_used;
  }

  result.weights.assign(candidates.size(), 0.0);
  if (total > 0) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      result.weights[c] =
          static_cast<double>(result.counts[c]) / static_cast<double>(total);
    }
  }
  result.validation_accuracy = std::max(best_acc, 0.0);
  return result;
}

std::vector<double> blend_row(const std::vector<CandidatePredictions>& candidates,
                              const std::vector<double>& weights,
                              std::size_t row) {
  if (candidates.empty() || weights.size() != candidates.size()) {
    throw std::invalid_argument("blend_row: shape mismatch");
  }
  const std::size_t n_classes = candidates[0].n_classes;
  std::vector<double> blend(n_classes, 0.0);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (weights[c] == 0.0) continue;
    const double* r = candidates[c].proba.data() + row * n_classes;
    for (std::size_t k = 0; k < n_classes; ++k) blend[k] += weights[c] * r[k];
  }
  return blend;
}

CandidatePredictions candidate_from(const Predictor& model,
                                    const data::Dataset& ds) {
  if (ds.n_features != model.input_dim()) {
    throw std::invalid_argument("candidate_from: feature dim mismatch");
  }
  CandidatePredictions cand;
  cand.n_rows = ds.n_rows;
  cand.n_classes = model.output_dim();
  std::vector<float> probs(ds.n_rows * cand.n_classes);
  model.predict_batch(ds.x.data(), ds.n_rows, probs.data());
  cand.proba.assign(probs.begin(), probs.end());
  return cand;
}

}  // namespace agebo::ml
