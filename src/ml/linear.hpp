// Multinomial logistic regression trained with minibatch SGD. Serves as the
// stacking ensemble's meta-learner — the final combiner over base-model
// probability features.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"

namespace agebo::ml {

struct LogisticConfig {
  double lr = 0.1;
  std::size_t epochs = 30;
  std::size_t batch_size = 256;
  double l2 = 1e-4;
  std::uint64_t seed = 11;
};

class LogisticRegression final : public RowwisePredictor {
 public:
  explicit LogisticRegression(LogisticConfig cfg = {});

  void fit(const data::Dataset& ds);

  std::size_t input_dim() const override { return n_features_; }
  std::size_t output_dim() const override { return n_classes_; }
  std::vector<double> predict_proba_row(const float* row) const override;

 private:
  LogisticConfig cfg_;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<double> w_;  // n_classes x n_features
  std::vector<double> b_;  // n_classes
};

}  // namespace agebo::ml
