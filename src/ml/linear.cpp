#include "ml/linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::ml {

LogisticRegression::LogisticRegression(LogisticConfig cfg) : cfg_(std::move(cfg)) {}

void LogisticRegression::fit(const data::Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("LogisticRegression: empty");
  n_features_ = ds.n_features;
  n_classes_ = ds.n_classes;
  w_.assign(n_classes_ * n_features_, 0.0);
  b_.assign(n_classes_, 0.0);

  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;

  std::vector<double> probs(n_classes_);
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < ds.n_rows; start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, ds.n_rows);
      const double scale = cfg_.lr / static_cast<double>(end - start);
      // Accumulate the gradient over the minibatch, then apply once.
      std::vector<double> gw(w_.size(), 0.0);
      std::vector<double> gb(b_.size(), 0.0);
      for (std::size_t idx = start; idx < end; ++idx) {
        const std::size_t i = order[idx];
        const float* row = ds.row(i);
        double mx = -1e300;
        for (std::size_t c = 0; c < n_classes_; ++c) {
          double s = b_[c];
          const double* wc = w_.data() + c * n_features_;
          for (std::size_t f = 0; f < n_features_; ++f) s += wc[f] * row[f];
          probs[c] = s;
          mx = std::max(mx, s);
        }
        double z = 0.0;
        for (double& p : probs) {
          p = std::exp(p - mx);
          z += p;
        }
        for (double& p : probs) p /= z;
        for (std::size_t c = 0; c < n_classes_; ++c) {
          const double grad =
              probs[c] - (static_cast<std::size_t>(ds.y[i]) == c ? 1.0 : 0.0);
          double* gwc = gw.data() + c * n_features_;
          for (std::size_t f = 0; f < n_features_; ++f) gwc[f] += grad * row[f];
          gb[c] += grad;
        }
      }
      for (std::size_t j = 0; j < w_.size(); ++j) {
        w_[j] -= scale * (gw[j] + cfg_.l2 * w_[j]);
      }
      for (std::size_t c = 0; c < n_classes_; ++c) b_[c] -= scale * gb[c];
    }
  }
}

std::vector<double> LogisticRegression::predict_proba_row(const float* row) const {
  if (w_.empty()) throw std::logic_error("LogisticRegression: not fitted");
  std::vector<double> probs(n_classes_);
  double mx = -1e300;
  for (std::size_t c = 0; c < n_classes_; ++c) {
    double s = b_[c];
    const double* wc = w_.data() + c * n_features_;
    for (std::size_t f = 0; f < n_features_; ++f) s += wc[f] * row[f];
    probs[c] = s;
    mx = std::max(mx, s);
  }
  double z = 0.0;
  for (double& p : probs) {
    p = std::exp(p - mx);
    z += p;
  }
  for (double& p : probs) p /= z;
  return probs;
}

}  // namespace agebo::ml
