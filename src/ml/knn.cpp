#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::ml {

KnnClassifier::KnnClassifier(KnnConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.k == 0) throw std::invalid_argument("KnnClassifier: k == 0");
}

void KnnClassifier::fit(const data::Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("KnnClassifier: empty");
  if (cfg_.max_reference_rows > 0 && ds.n_rows > cfg_.max_reference_rows) {
    Rng rng(cfg_.seed);
    auto rows = rng.sample_without_replacement(ds.n_rows, cfg_.max_reference_rows);
    ref_ = ds.subset(rows);
  } else {
    ref_ = ds;
  }
}

std::vector<double> KnnClassifier::predict_proba_row(const float* row) const {
  if (ref_.n_rows == 0) throw std::logic_error("KnnClassifier: not fitted");
  const std::size_t k = std::min(cfg_.k, ref_.n_rows);

  // Max-heap of the k smallest distances as (distance, label) pairs.
  std::vector<std::pair<float, int>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < ref_.n_rows; ++i) {
    const float* r = ref_.row(i);
    float dist = 0.0f;
    for (std::size_t f = 0; f < ref_.n_features; ++f) {
      const float diff = row[f] - r[f];
      dist += diff * diff;
    }
    if (heap.size() < k) {
      heap.emplace_back(dist, ref_.y[i]);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, ref_.y[i]};
      std::push_heap(heap.begin(), heap.end());
    }
  }

  std::vector<double> proba(ref_.n_classes, 0.0);
  double total = 0.0;
  for (const auto& [dist, label] : heap) {
    const double w = 1.0 / (1.0 + std::sqrt(static_cast<double>(dist)));
    proba[static_cast<std::size_t>(label)] += w;
    total += w;
  }
  for (double& p : proba) p /= total;
  return proba;
}

}  // namespace agebo::ml
