// Shared classifier base for src/ml: adapts row-at-a-time probability
// models onto the repo-wide Predictor contract (common/predictor.hpp) and
// hosts the dataset-level predict/accuracy helpers every model used to
// duplicate. A concrete model only implements predict_proba_row (its
// natural primitive) plus the two dimension accessors; batching, argmax,
// and accuracy come from here.
#pragma once

#include <cstddef>
#include <vector>

#include "common/predictor.hpp"
#include "data/dataset.hpp"

namespace agebo::ml {

class RowwisePredictor : public Predictor {
 public:
  /// Class probabilities for one feature row; size output_dim(). This is
  /// the model's native primitive — everything else derives from it.
  virtual std::vector<double> predict_proba_row(const float* row) const = 0;

  /// Predictor contract: per-row probabilities, cast to float32.
  void predict_batch(const float* rows, std::size_t n,
                     float* out) const override;

  /// Argmax class per dataset row (full double precision, no float cast).
  std::vector<int> predict(const data::Dataset& ds) const;
  /// Fraction of dataset rows whose argmax class matches the label.
  double accuracy(const data::Dataset& ds) const;
};

}  // namespace agebo::ml
