// Random forests and extremely randomized trees (ExtraTrees).
//
// The regressor additionally exposes per-tree predictions: the BO module
// uses the across-tree mean and standard deviation as the surrogate's
// mu/sigma in the UCB acquisition function (Sec III-C), exactly like
// scikit-optimize's RandomForest base estimator.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace agebo::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree;
  /// Bootstrap-resample rows per tree (false for ExtraTrees).
  bool bootstrap = true;
  std::uint64_t seed = 1;
};

/// Convenience presets.
ForestConfig random_forest_defaults(std::size_t n_trees = 100);
ForestConfig extra_trees_defaults(std::size_t n_trees = 100);

class RandomForestClassifier final : public RowwisePredictor {
 public:
  explicit RandomForestClassifier(ForestConfig cfg = random_forest_defaults());

  void fit(const data::Dataset& ds);

  std::size_t input_dim() const override { return n_features_; }
  std::size_t output_dim() const override { return n_classes_; }
  /// Soft-vote probabilities for one row; size n_classes.
  std::vector<double> predict_proba_row(const float* row) const override;

  std::size_t n_trees() const { return trees_.size(); }
  std::size_t n_classes() const { return n_classes_; }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
  std::size_t n_features_ = 0;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestConfig cfg = random_forest_defaults());

  /// x: row-major n x d feature matrix.
  void fit(const std::vector<float>& x, std::size_t n, std::size_t d,
           const std::vector<double>& y);

  /// Refit ONE tree on (possibly newer) data, leaving the other trees as
  /// fitted — the incremental-surrogate hot path of the decentralized BO
  /// layer (DESIGN.md §15): a shard refreshes a few trees per ask() on its
  /// latest tell window instead of rebuilding the whole forest. The tree's
  /// randomness derives from (cfg.seed, tree_index, salt) only, so a
  /// checkpointed (window, salt) pair rebuilds the identical tree on
  /// restore. Sizes trees on first use; tree_index must be < n_trees.
  void refit_tree(std::size_t tree_index, const std::vector<float>& x,
                  std::size_t n, std::size_t d, const std::vector<double>& y,
                  std::uint64_t salt);

  double predict_row(const float* row) const;
  /// Mean and across-tree standard deviation for one row.
  void predict_with_uncertainty(const float* row, double& mean,
                                double& stddev) const;

  std::size_t n_trees() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace agebo::ml
