// A persistent team of worker threads executing the same callable with
// their rank, SPMD-style (the thread analogue of an MPI communicator).
// run() is a collective: it returns after every rank finished. Creating
// threads once per trainer instead of once per step keeps step overhead
// negligible for the small models in the search space.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agebo::dp {

class ThreadTeam {
 public:
  explicit ThreadTeam(std::size_t size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  std::size_t size() const { return size_; }

  /// Execute fn(rank) on every rank concurrently; rank 0 runs on the
  /// calling thread. Rethrows the first worker exception after the
  /// collective completes.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t rank);

  std::size_t size_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace agebo::dp
