// A persistent team of worker threads executing the same callable with
// their rank, SPMD-style (the thread analogue of an MPI communicator).
// run() is a collective: it returns after every rank finished. Creating
// threads once per trainer instead of once per step keeps step overhead
// negligible for the small models in the search space.
//
// barrier(rank) is an in-collective synchronization point (the MPI_Barrier
// analogue) built as a lightweight sense-reversing barrier: one atomic
// arrival counter plus a global sense flag, with per-rank sense state on
// its own cache line. The bucketed allreduce (gradient_comm) uses it to
// separate the chunk-reduction phase from the consume phase without
// paying for a full run()/condvar round trip.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agebo::dp {

class ThreadTeam {
 public:
  explicit ThreadTeam(std::size_t size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  std::size_t size() const { return size_; }

  /// Execute fn(rank) on every rank concurrently; rank 0 runs on the
  /// calling thread. Rethrows the first worker exception after the
  /// collective completes.
  void run(const std::function<void(std::size_t)>& fn);

  /// Block until every rank of the current run() collective has called
  /// barrier(rank). Writes made by any rank before the barrier are visible
  /// to every rank after it (release/acquire on the sense flag). Must be
  /// called by ALL ranks the same number of times, from inside run(), and
  /// every rank must reach it — code between collectives must not throw
  /// past a barrier another rank is still heading for.
  void barrier(std::size_t rank);

 private:
  void worker_loop(std::size_t rank);

  std::size_t size_;
  std::vector<std::thread> threads_;

  // Sense-reversing barrier state. Each rank's private sense sits on its
  // own cache line so flipping it never bounces a shared line.
  struct alignas(64) RankSense {
    bool sense = false;
  };
  std::vector<RankSense> rank_sense_;
  std::atomic<int> barrier_arrived_{0};
  std::atomic<bool> barrier_sense_{false};

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Abortable counting barrier for the elastic step collective
/// (DESIGN.md §16). Unlike ThreadTeam::barrier, the expected arrival
/// count is armed per step by the coordinator — it tracks the current
/// membership, which can be smaller than the team since dead ranks never
/// arrive — and waiting ranks poll a caller-supplied abort probe, so a
/// rank that dies mid-step releases the survivors to discard the step
/// instead of deadlocking them.
class ElasticBarrier {
 public:
  /// Arm for one step: `expected` ranks will arrive. Coordinator-only,
  /// between collectives (ThreadTeam::run publishes the plain stores).
  void reset(std::size_t expected);

  /// Arrive, then wait until all expected ranks arrived (returns true) or
  /// `abort_poll` returns true (returns false: the step must be
  /// discarded). Writes made by any rank before its arrival are visible
  /// to every rank that observes true (release/acquire).
  bool arrive_and_wait(const std::function<bool()>& abort_poll);

 private:
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> released_{false};
  std::size_t expected_ = 0;
};

}  // namespace agebo::dp
