// Analytic step-time model for synchronous data-parallel training:
//
//   t_step = t_compute(local_batch, params) / n_effective
//          + t_allreduce(params, n)
//          + t_overhead
//
// with t_allreduce following the latency-bandwidth (alpha-beta) model of a
// tree reduction: ceil(log2 n) * (alpha + bytes / beta). This is the model
// behind the calibrated Table I speedup lookup in eval::dp_speedup; the
// fit_throughput() helper calibrates its constants against measured step
// times from the real DataParallelTrainer (bench_ablations / tests compare
// the model's scaling predictions with reality).
#pragma once

#include <cstddef>

#include "dp/allreduce.hpp"

namespace agebo::dp {

struct PerfModelParams {
  /// Seconds per (sample x parameter) of forward+backward compute.
  double compute_per_sample_param = 2.0e-9;
  /// Allreduce latency per tree level (seconds).
  double allreduce_alpha = 5.0e-6;
  /// Allreduce bandwidth (bytes per second).
  double allreduce_beta = 8.0e9;
  /// Fixed per-step overhead (batching, scheduling).
  double step_overhead = 2.0e-5;
};

/// How gradients are averaged: strategy, fusion-bucket size, and whether
/// the reduction overlaps backward. Mirrors DataParallelConfig/CommConfig;
/// the historical 4-argument predict_* entry points keep modeling the
/// original tree reduction so calibrated fits stay stable.
struct AllreduceCommSpec {
  AllreduceStrategy strategy = AllreduceStrategy::kFlat;
  std::size_t bucket_bytes = 1u << 20;
  bool overlap = false;
};

/// Alpha-beta cost of one allreduce of n_params float32 gradients:
///   kFlat: (n-1) sequential transfers,      (n-1) * (alpha + B/beta)
///   kTree: ceil(log2 n) levels,             levels * (alpha + B/beta)
///   kRing: 2(n-1) pipelined chunk steps,    2(n-1)*alpha*nb + 2(n-1)/n * B/beta
/// with nb = number of fusion buckets (per-bucket latency is paid once per
/// bucket; the bandwidth term moves each byte twice minus the 1/n the
/// owner already holds — the classic bandwidth-optimal ring bound).
double predict_allreduce_seconds(const PerfModelParams& model,
                                 const AllreduceCommSpec& comm,
                                 std::size_t n_procs, std::size_t n_params);

/// Predicted wall seconds for one synchronous data-parallel step.
double predict_step_seconds(const PerfModelParams& model, std::size_t n_procs,
                            std::size_t local_batch, std::size_t n_params);

/// Step time under an explicit communication spec. With overlap on, the
/// reduction hides behind the backward half of compute except for the last
/// bucket (which only becomes ready when backward finishes):
///   exposed = max(t_comm - compute/2, t_comm / nb)
double predict_step_seconds(const PerfModelParams& model,
                            const AllreduceCommSpec& comm, std::size_t n_procs,
                            std::size_t local_batch, std::size_t n_params);

/// Predicted wall seconds for a full training run.
double predict_training_seconds(const PerfModelParams& model,
                                std::size_t n_procs, std::size_t local_batch,
                                std::size_t n_params, std::size_t train_rows,
                                std::size_t epochs);

/// Predicted speedup of n processes over 1 under the linear scaling rule
/// (local batch fixed, global batch grows with n).
double predict_speedup(const PerfModelParams& model, std::size_t n_procs,
                       std::size_t local_batch, std::size_t n_params,
                       std::size_t train_rows);

/// Calibrate compute_per_sample_param from one measured step time at n=1.
PerfModelParams fit_compute_rate(PerfModelParams model, double measured_step_seconds,
                                 std::size_t local_batch, std::size_t n_params);

}  // namespace agebo::dp
