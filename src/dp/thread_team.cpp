#include "dp/thread_team.hpp"

#include <stdexcept>

namespace agebo::dp {

ThreadTeam::ThreadTeam(std::size_t size) : size_(size) {
  if (size == 0) throw std::invalid_argument("ThreadTeam: zero size");
  threads_.reserve(size - 1);
  for (std::size_t rank = 1; rank < size; ++rank) {
    threads_.emplace_back([this, rank] { worker_loop(rank); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadTeam::run(const std::function<void(std::size_t)>& fn) {
  if (size_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = size_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  // Rank 0 participates on the calling thread.
  std::exception_ptr local_error;
  try {
    fn(0);
  } catch (...) {
    local_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (local_error) std::rethrow_exception(local_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::worker_loop(std::size_t rank) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(rank);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --pending_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace agebo::dp
