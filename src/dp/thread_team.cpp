#include "dp/thread_team.hpp"

#include <stdexcept>

namespace agebo::dp {

ThreadTeam::ThreadTeam(std::size_t size) : size_(size), rank_sense_(size) {
  if (size == 0) throw std::invalid_argument("ThreadTeam: zero size");
  threads_.reserve(size - 1);
  for (std::size_t rank = 1; rank < size; ++rank) {
    threads_.emplace_back([this, rank] { worker_loop(rank); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadTeam::run(const std::function<void(std::size_t)>& fn) {
  if (size_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = size_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  // Rank 0 participates on the calling thread.
  std::exception_ptr local_error;
  try {
    fn(0);
  } catch (...) {
    local_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (local_error) std::rethrow_exception(local_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::barrier(std::size_t rank) {
  if (size_ == 1) return;
  if (rank >= size_) throw std::invalid_argument("ThreadTeam::barrier: bad rank");
  const bool my_sense = !rank_sense_[rank].sense;
  rank_sense_[rank].sense = my_sense;
  if (barrier_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<int>(size_)) {
    // Last arrival: reset the counter for the next episode, then release
    // everyone. The counter must be reset before the sense flips — waiters
    // freed by the flip may immediately enter the next barrier.
    barrier_arrived_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(my_sense, std::memory_order_release);
  } else {
    // yield(), not a busy spin: replica counts can exceed hardware threads
    // (they share cores with each other and with the ctest harness).
    while (barrier_sense_.load(std::memory_order_acquire) != my_sense) {
      std::this_thread::yield();
    }
  }
}

void ThreadTeam::worker_loop(std::size_t rank) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(rank);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ElasticBarrier::reset(std::size_t expected) {
  expected_ = expected;
  arrived_.store(0, std::memory_order_relaxed);
  released_.store(false, std::memory_order_relaxed);
}

bool ElasticBarrier::arrive_and_wait(const std::function<bool()>& abort_poll) {
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == expected_) {
    released_.store(true, std::memory_order_release);
    return true;
  }
  // An aborted step can never release: the abort exists precisely because
  // an expected rank will not arrive, so the two exits are exclusive.
  while (!released_.load(std::memory_order_acquire)) {
    if (abort_poll && abort_poll()) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace agebo::dp
