#include "dp/membership.hpp"

#include <chrono>
#include <stdexcept>

namespace agebo::dp {

void MembershipView::reset(std::size_t world) {
  if (world == 0) throw std::invalid_argument("MembershipView: world == 0");
  alive_.assign(world, 1);
  alive_count_ = world;
  epoch_.store(0, std::memory_order_release);
  rebuild_slots();
}

std::vector<std::size_t> MembershipView::survivors() const {
  std::vector<std::size_t> out;
  out.reserve(alive_count_);
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) out.push_back(r);
  }
  return out;
}

void MembershipView::remove(const std::vector<std::size_t>& ranks) {
  bool changed = false;
  for (const std::size_t r : ranks) {
    if (r >= alive_.size() || !alive_[r]) continue;
    alive_[r] = 0;
    --alive_count_;
    changed = true;
  }
  if (!changed) return;
  rebuild_slots();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void MembershipView::rebuild_slots() {
  slot_.assign(alive_.size(), 0);
  std::size_t next = 0;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) slot_[r] = next++;
  }
}

void FailureDetector::configure(std::size_t world, double heartbeat_seconds,
                                ClockFn clock) {
  if (world == 0) throw std::invalid_argument("FailureDetector: world == 0");
  if (heartbeat_seconds <= 0.0) {
    throw std::invalid_argument("FailureDetector: heartbeat <= 0");
  }
  world_ = world;
  heartbeat_ = heartbeat_seconds;
  clock_ = std::move(clock);
  beats_ = std::make_unique<std::atomic<double>[]>(world);
  suspect_ = std::make_unique<std::atomic<bool>[]>(world);
  const double t = now();
  for (std::size_t r = 0; r < world; ++r) {
    beats_[r].store(t, std::memory_order_relaxed);
    suspect_[r].store(false, std::memory_order_relaxed);
  }
  abort_.store(false, std::memory_order_release);
}

double FailureDetector::now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FailureDetector::arm(const MembershipView& view) {
  const double t = now();
  for (std::size_t r = 0; r < world_; ++r) {
    if (view.alive(r)) beats_[r].store(t, std::memory_order_relaxed);
  }
  abort_.store(false, std::memory_order_release);
}

void FailureDetector::beat(std::size_t rank) {
  beats_[rank].store(now(), std::memory_order_relaxed);
}

void FailureDetector::mark_dead(std::size_t rank) {
  suspect_[rank].store(true, std::memory_order_relaxed);
  abort_.store(true, std::memory_order_release);
}

bool FailureDetector::poll(const MembershipView& view) {
  if (abort_.load(std::memory_order_acquire)) return true;
  const double t = now();
  bool expired = false;
  for (std::size_t r = 0; r < world_; ++r) {
    if (!view.alive(r)) continue;
    if (t - beats_[r].load(std::memory_order_relaxed) > heartbeat_) {
      suspect_[r].store(true, std::memory_order_relaxed);
      expired = true;
    }
  }
  if (expired) abort_.store(true, std::memory_order_release);
  return abort_.load(std::memory_order_acquire);
}

std::vector<std::size_t> FailureDetector::take_suspects(
    const MembershipView& view) {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < world_; ++r) {
    if (suspect_[r].load(std::memory_order_relaxed) && view.alive(r)) {
      out.push_back(r);
    }
    suspect_[r].store(false, std::memory_order_relaxed);
  }
  abort_.store(false, std::memory_order_release);
  return out;
}

}  // namespace agebo::dp
