// Elastic membership + failure detection for data-parallel training
// (DESIGN.md §16).
//
// The paper's Horovod substrate assumes every rank survives the whole
// evaluation; at campaign scale a lost rank is routine, so the trainer's
// step collective runs over a MembershipView — the set of global replica
// ranks still alive, stamped with a monotonically increasing epoch that
// bumps on every reconfiguration — and a FailureDetector fed from two
// sides:
//
//  - comm-level fault injection: a replica whose injected fault is kCrash
//    announces its own death at allreduce entry via mark_dead(), which
//    latches the suspect and raises the collective abort flag immediately
//    (deterministic even with several victims in one step);
//  - heartbeat deadlines: every live rank beats while it computes and
//    while it waits; a rank that stops beating (injected kHang, or a real
//    wedged thread) is latched by poll() once its deadline expires. The
//    clock is injectable so unit tests drive expiry under a virtual clock
//    instead of sleeping.
//
// Both feeds end in the same place: the abort flag releases every rank
// spinning in a bucket wait or at the elastic step barrier, the in-flight
// step is discarded collective-wide (no rank runs its optimizer), and the
// coordinator settles — take_suspects(), MembershipView::remove(), rebuild
// the reduction schedule over the survivors, rescale lr_n/bs_n per Eq. 2,
// resume. See data_parallel.cpp for the settle protocol and the
// fresh-run-equivalence contract gated in ctest -L dp.
//
// Threading: beat()/mark_dead()/poll() are called concurrently from the
// replica threads of one step collective; arm(), remove(), survivors() and
// take_suspects() are coordinator-only, called between collectives
// (ThreadTeam::run provides the ordering for the non-atomic state).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace agebo::dp {

/// Which global replica ranks are alive, plus a monotonically increasing
/// membership epoch. Ranks keep their global ids for the whole fit; the
/// dense slot() mapping renumbers the survivors 0..alive_count()-1 so they
/// can index shards, schedules and chunk ownership exactly like the ranks
/// of a fresh alive_count()-replica run.
class MembershipView {
 public:
  /// Start a new fit: all of 0..world-1 alive, epoch 0.
  void reset(std::size_t world);

  std::size_t world() const { return alive_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  bool alive(std::size_t rank) const { return alive_[rank] != 0; }
  /// Dense index of a live rank among the survivors (rank order).
  /// Meaningless for dead ranks.
  std::size_t slot(std::size_t rank) const { return slot_[rank]; }
  /// Live global ranks in increasing order; survivors()[slot(r)] == r.
  std::vector<std::size_t> survivors() const;

  /// Remove `ranks` (coordinator-only, between collectives) and bump the
  /// epoch. Removing an already-dead rank is a no-op.
  void remove(const std::vector<std::size_t>& ranks);

 private:
  void rebuild_slots();

  std::vector<char> alive_;
  std::vector<std::size_t> slot_;
  std::atomic<std::uint64_t> epoch_{0};
  std::size_t alive_count_ = 0;
};

/// Latching failure detector for one step collective. A suspect is never
/// un-suspected: once latched (by mark_dead or a missed heartbeat
/// deadline) it stays latched until the coordinator consumes it with
/// take_suspects() at settle time.
class FailureDetector {
 public:
  /// Injectable time source in seconds; tests use a virtual clock, the
  /// default is the steady wall clock.
  using ClockFn = std::function<double()>;

  FailureDetector() = default;

  /// Size the per-rank state for `world` global ranks. `heartbeat_seconds`
  /// is the deadline: a live rank whose last beat is older than this is
  /// declared suspect by poll().
  void configure(std::size_t world, double heartbeat_seconds,
                 ClockFn clock = {});

  /// Stamp every live rank's last beat to now and clear the abort flag.
  /// Coordinator-only, before each step collective launches.
  void arm(const MembershipView& view);

  /// Heartbeat from a live rank's own thread.
  void beat(std::size_t rank);

  /// Comm-level crash announcement: latch `rank` as suspect and raise the
  /// collective abort. Called from the dying rank's own thread.
  void mark_dead(std::size_t rank);

  /// Check every live rank's heartbeat deadline, latching expired ranks as
  /// suspects. Returns true when the step collective must abort. Safe to
  /// call concurrently from every waiting rank (marks are idempotent
  /// latches).
  bool poll(const MembershipView& view);

  bool abort_requested() const {
    return abort_.load(std::memory_order_acquire);
  }

  /// Latched suspects that are still live in `view`, in increasing rank
  /// order; clears the latch and the abort flag. Coordinator-only, at
  /// settle time after the step collective joined.
  std::vector<std::size_t> take_suspects(const MembershipView& view);

  double heartbeat_seconds() const { return heartbeat_; }

 private:
  double now() const;

  double heartbeat_ = 1.0;
  ClockFn clock_;
  std::size_t world_ = 0;
  std::unique_ptr<std::atomic<double>[]> beats_;
  std::unique_ptr<std::atomic<bool>[]> suspect_;
  std::atomic<bool> abort_{false};
};

}  // namespace agebo::dp
