// Overlapped, bucketed, rank-parallel gradient allreduce (DESIGN.md §11).
//
// GradientComm replaces the trainer's serial per-block allreduce loop with
// three cooperating mechanisms:
//
//  1. Bucketing. Parameter blocks are packed, in params() order, into
//     fixed-size fusion buckets (~1 MiB by default). Small blocks — biases
//     and narrow projections — are copied into a per-bucket contiguous
//     fusion buffer so the reduction streams over long contiguous spans
//     instead of dozens of cache-line-sized ones; large blocks are read
//     zero-copy. One atomic readiness counter per bucket amortizes all
//     per-block coordination.
//
//  2. Shared reduced store + rank-parallel chunked reduction. Every block
//     has ONE shared averaged-gradient span; each rank reduces its owned
//     chunks of each block straight into that span with the single-
//     destination kernels (reduce_kernels.hpp), then all ranks meet at a
//     sense-reversing barrier (ThreadTeam::barrier). The replicas'
//     optimizers are pointed at the shared span (shared_grad_params), so
//     the reduce-then-broadcast of a classic allreduce collapses to just
//     the reduce: n + 1 memory streams per element instead of ~5n, and the
//     broadcast is free — it is the same bytes read n times. Backward
//     still writes each replica's own gradient buffers; only the optimizer
//     read side is shared.
//
//  3. Backward/comm overlap. GraphNet::backward fires a gradient-ready hook
//     as each layer's blocks are finalized (output layer first). The hook
//     packs fused blocks and bumps the owning bucket's readiness counter,
//     so reducers drain buckets in reverse params() order while earlier
//     layers are still computing their gradients.
//
// Determinism: chunk ownership and the per-chunk summation order are fixed
// by (strategy, replica count, element index) — never by thread schedule —
// so the shared span holds identical bits run to run; and since every
// replica's optimizer reads that single span, the replicas' weights stay in
// exact bitwise lockstep (max_replica_divergence() == 0.0f) by
// construction, for every strategy.
//
// Strategy note: kFlat sums sources in the historical linear order
// 0,1,...,n-1 and kTree in the historical pairwise-tree order, so both
// produce averages bit-identical to the legacy serial paths (training
// numerics unchanged). kRing rotates the summation start per chunk like a
// real ring reduce-scatter; it agrees with the others only to rounding
// tolerance.
//
// Contract: all ranks of the step collective must reach reduce_rank — the
// internal waits and barrier are collectives, so a rank that throws between
// backward and reduce_rank would deadlock the others (same rule as any MPI
// program; see ThreadTeam::barrier).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dp/allreduce.hpp"
#include "dp/membership.hpp"
#include "dp/thread_team.hpp"
#include "nn/dense.hpp"
#include "obs/registry.hpp"

namespace agebo::dp {

struct CommConfig {
  AllreduceStrategy strategy = AllreduceStrategy::kFlat;
  /// Fusion-bucket capacity. Blocks are never split: a block larger than
  /// this gets a bucket of its own.
  std::size_t bucket_bytes = 1u << 20;
  /// Reduce buckets while backward is still producing earlier layers'
  /// gradients (needs the GraphNet grad-ready hook wired up).
  bool overlap = true;
  /// Blocks below this size are copied into the bucket's fusion buffer;
  /// larger blocks are read in place (zero-copy).
  std::size_t fuse_below_bytes = 4096;
};

class GradientComm {
 public:
  /// Build the bucket plan and the shared reduced-gradient store for
  /// `params` ([replica][block], identical block shapes across replicas —
  /// validated). Call once per fit.
  void configure(const std::vector<std::vector<nn::ParamRef>>& params,
                 const CommConfig& cfg);

  /// The ParamRef set a replica's optimizer should consume: values from
  /// `replica_params`, gradients from the shared reduced store. Valid until
  /// the next configure().
  std::vector<nn::ParamRef> shared_grad_params(
      const std::vector<nn::ParamRef>& replica_params);

  /// Arm the readiness counters for a new step. Call from the coordinating
  /// thread before the step collective launches (ThreadTeam::run provides
  /// the ordering).
  void begin_step();

  /// Blocks [begin, end) of `replica` now hold their final gradients for
  /// this step. Packs fused blocks and publishes readiness. Called from
  /// the replica's own thread — the GraphNet hook in overlap mode, or once
  /// for the whole range after backward otherwise.
  void on_blocks_ready(std::size_t replica, std::size_t begin,
                       std::size_t end);

  /// Collective: reduce this rank's chunks of every bucket into the shared
  /// store (draining buckets in reverse params() order as they become
  /// ready), then synchronize. After it returns on every rank, the shared
  /// spans hold the averaged gradients and optimizers may step. Chunks are
  /// distributed round-robin over team.size() executors, so a team of any
  /// size (e.g. 1, in benchmarks) produces byte-identical results.
  /// `lane` names the obs lane for this rank's spans (may be empty).
  void reduce_rank(std::size_t rank, ThreadTeam& team,
                   const std::string& lane);

  // --- Elastic membership (DESIGN.md §16) ---------------------------------
  //
  // GradientComm owns the MembershipView and the FailureDetector for the
  // fit. The view lives in GLOBAL rank space (the original world size) and
  // persists across configure() calls; after a loss the trainer calls
  // configure() again with just the survivors' params, and the view's
  // slot() mapping renumbers them onto comm ranks 0..alive_count()-1.

  /// Arm elastic state for a fit over `world` global ranks. Call once
  /// before the first configure(). `clock` is the failure detector's time
  /// source (tests inject a virtual clock).
  void init_elastic(std::size_t world, double heartbeat_seconds,
                    FailureDetector::ClockFn clock = {});

  MembershipView& membership() { return view_; }
  const MembershipView& membership() const { return view_; }
  FailureDetector& detector() { return detector_; }

  /// Elastic begin_step(): arms the readiness counters, the elastic step
  /// barrier (expected = current alive count) and the failure detector's
  /// heartbeat deadlines. Coordinator-only.
  void begin_elastic_step();

  /// Abortable reduce_rank for the elastic collective. `slot` is this
  /// rank's dense comm rank under the current membership, `global_rank`
  /// its global id (for heartbeats). Bucket waits and the final barrier
  /// poll the failure detector; on abort every surviving rank returns
  /// false, the step is discarded collective-wide (no optimizer may step),
  /// and the coordinator settles the membership. Returns true when the
  /// shared spans hold the averaged gradients as usual.
  bool reduce_rank_elastic(std::size_t slot, std::size_t global_rank,
                           const std::string& lane);

  std::size_t n_buckets() const { return buckets_.size(); }
  std::size_t n_blocks() const { return blocks_.size(); }
  /// Gradient payload bytes averaged per step (one replica's worth).
  std::size_t bytes_per_step() const { return payload_bytes_; }
  /// Wall seconds rank 0 spent inside reduce_rank, summed over steps —
  /// bytes_per_step() * steps / this is the effective algorithm bandwidth.
  double reduce_seconds() const { return reduce_seconds_; }

 private:
  struct BlockInfo {
    std::size_t bucket = 0;
    std::size_t len = 0;        // elements
    bool fused = false;
    std::size_t fused_off = 0;  // element offset in the fusion buffer
  };
  /// One block's reduction: n per-replica source spans (zero-copy gradient
  /// views or slices of the packed fusion buffers) and the block's shared
  /// destination span.
  struct Segment {
    std::vector<const float*> srcs;  // [replica]
    float* dst = nullptr;
    std::size_t len = 0;
  };
  struct Bucket {
    std::vector<Segment> segments;
    std::size_t elems = 0;
    int ready_target = 0;  // n_ranks * blocks in this bucket
  };

  void reduce_chunk(const Segment& seg, std::size_t chunk) const;

  CommConfig cfg_;
  std::size_t n_ranks_ = 0;
  std::vector<BlockInfo> blocks_;
  std::vector<Bucket> buckets_;
  /// ready_[b] counts on_blocks_ready publications for bucket b (release
  /// increments; reducers acquire-load until ready_target).
  std::unique_ptr<std::atomic<int>[]> ready_;
  std::vector<std::vector<std::vector<float>>> fusion_;  // [bucket][replica]
  std::vector<std::vector<float*>> grad_ptrs_;           // [replica][block]
  std::vector<std::vector<float>> reduced_;              // [block] shared avg
  std::size_t payload_bytes_ = 0;
  double reduce_seconds_ = 0.0;

  MembershipView view_;
  FailureDetector detector_;
  ElasticBarrier elastic_barrier_;

  obs::Counter m_bytes_;
  obs::DCounter m_seconds_;
  obs::Gauge m_gbps_;
};

}  // namespace agebo::dp
