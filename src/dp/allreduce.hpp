// Gradient allreduce for synchronous data-parallel training (the Horovod
// role in the paper). Every participating buffer ends up holding the
// element-wise average of all buffers. Two strategies:
//  - kFlat: rank-0 accumulates everything then broadcasts (O(n) depth).
//  - kTree: pairwise binary reduction then broadcast down (O(log n) depth),
//    the shape used by real allreduce implementations.
// Both produce bit-identical results for power-of-two counts is NOT
// guaranteed (fp addition order differs); tests compare within tolerance
// and the trainer picks one strategy per run, so replicas stay lockstep.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo::dp {

enum class AllreduceStrategy { kFlat, kTree };

/// Average `buffers` element-wise; all buffers receive the result.
/// All buffers must be non-null and equally sized.
void allreduce_average(std::vector<std::vector<float>*>& buffers,
                       AllreduceStrategy strategy = AllreduceStrategy::kFlat);

}  // namespace agebo::dp
