// Gradient allreduce for synchronous data-parallel training (the Horovod
// role in the paper). Every participating buffer ends up holding the
// element-wise average of all buffers. Three strategies:
//  - kFlat: rank-0 accumulates everything then broadcasts (O(n) depth).
//  - kTree: pairwise binary reduction then broadcast down (O(log n) depth).
//  - kRing: chunked reduce-scatter + allgather — each of the n chunks is
//    reduced independently in rotated ring order, the shape real
//    bandwidth-optimal allreduce implementations use. In the trainer the
//    chunks are reduced *concurrently* by the replica threads themselves
//    (see gradient_comm.hpp); this serial entry point applies the same
//    chunking and summation order on one thread.
//
// Determinism: for a fixed (strategy, buffer count), the element-wise
// summation order is a pure function of the element index — it never
// depends on thread scheduling — and every buffer receives the same bits.
// Different strategies (and different counts) round differently, so
// cross-strategy comparisons need a tolerance; but any single strategy is
// bit-reproducible run to run, which is what keeps the trainer's replicas
// in exact bitwise lockstep (max_replica_divergence() == 0.0f).
//
// Elastic reconfiguration (DESIGN.md §16) leans on the "pure function of
// the buffer count" property: after replicas are lost, the survivors build
// a fresh schedule over the new count n', and from that step on every
// reduction rounds exactly like a fresh n'-replica run — the foundation of
// the bit-identical fresh-run equivalence gated in ctest -L dp.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo::dp {

enum class AllreduceStrategy { kFlat, kTree, kRing };

/// Throw std::invalid_argument unless all buffers are non-null and equally
/// sized. Call once per fit (or per buffer-set change); the per-step loops
/// use allreduce_average_unchecked and skip re-validation.
void allreduce_validate(const std::vector<std::vector<float>*>& buffers);

/// Average `buffers` element-wise; all buffers receive the result.
/// All buffers must be non-null and equally sized (validated on entry;
/// hot loops that validated up front should call the _unchecked form).
void allreduce_average(std::vector<std::vector<float>*>& buffers,
                       AllreduceStrategy strategy = AllreduceStrategy::kFlat);

/// Same, without re-validating the buffer set. Caller must have run
/// allreduce_validate on these buffers (the trainer does it once per fit).
void allreduce_average_unchecked(std::vector<std::vector<float>*>& buffers,
                                 AllreduceStrategy strategy);

}  // namespace agebo::dp
