#include "dp/data_parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "dp/gradient_comm.hpp"
#include "dp/thread_team.hpp"
#include "nn/kernels/pool.hpp"
#include "nn/loss.hpp"
#include "nn/schedule.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace agebo::dp {

namespace {

#ifdef AGEBO_OBS_DISABLED
constexpr bool kObsEnabled = false;
#else
constexpr bool kObsEnabled = true;
#endif

}  // namespace

LinearScaling linear_scaling(const DataParallelConfig& cfg) {
  return {static_cast<double>(cfg.n_procs) * cfg.lr1, cfg.n_procs * cfg.bs1};
}

struct DataParallelTrainer::Impl {
  nn::GraphSpec spec;
  std::vector<std::unique_ptr<nn::GraphNet>> replicas;
  std::vector<std::unique_ptr<nn::Adam>> optimizers;  // [slot]
  std::vector<std::vector<nn::ParamRef>> params;      // [replica][block]
  /// Live global ranks in slot order; all of 0..n-1 unless elastic
  /// reconfiguration removed some.
  std::vector<std::size_t> live_ranks;
  std::unique_ptr<ThreadTeam> team;
  GradientComm comm;
};

DataParallelTrainer::DataParallelTrainer(nn::GraphSpec spec,
                                         DataParallelConfig cfg)
    : impl_(std::make_unique<Impl>()), cfg_(cfg) {
  if (cfg_.n_procs == 0) throw std::invalid_argument("DataParallelTrainer: n_procs == 0");
  if (cfg_.bs1 == 0) throw std::invalid_argument("DataParallelTrainer: bs1 == 0");
  if (cfg_.lr1 <= 0.0) throw std::invalid_argument("DataParallelTrainer: lr1 <= 0");
  if (cfg_.start_epoch >= cfg_.epochs && cfg_.epochs > 0) {
    throw std::invalid_argument("DataParallelTrainer: start_epoch >= epochs");
  }
  spec.validate();
  impl_->spec = std::move(spec);
  impl_->team = std::make_unique<ThreadTeam>(cfg_.n_procs);
}

DataParallelTrainer::~DataParallelTrainer() = default;

nn::GraphNet& DataParallelTrainer::model() {
  if (impl_->replicas.empty()) {
    throw std::logic_error("DataParallelTrainer::model before fit");
  }
  const std::size_t rank =
      impl_->live_ranks.empty() ? 0 : impl_->live_ranks[0];
  return *impl_->replicas[rank];
}

float DataParallelTrainer::max_replica_divergence() const {
  const auto& live = impl_->live_ranks;
  if (live.size() < 2) return 0.0f;
  float worst = 0.0f;
  const auto& base = impl_->params[live[0]];
  for (std::size_t s = 1; s < live.size(); ++s) {
    for (std::size_t b = 0; b < base.size(); ++b) {
      const auto& v0 = *base[b].values;
      const auto& vr = *impl_->params[live[s]][b].values;
      for (std::size_t i = 0; i < v0.size(); ++i) {
        worst = std::max(worst, std::abs(v0[i] - vr[i]));
      }
    }
  }
  return worst;
}

DataParallelResult DataParallelTrainer::fit(const data::Dataset& train_set,
                                            const data::Dataset& valid_set) {
  const std::size_t n0 = cfg_.n_procs;
  const bool elastic = cfg_.elastic.enabled;
  // Validates the fault probabilities up front; draws are stateless.
  const exec::FaultInjector injector(cfg_.elastic.faults);

  // Fresh, *identical* replicas: same seed => same initialization, matching
  // Horovod's initial broadcast. All n0 replicas are built even under
  // elastic training — dead ranks simply stop participating.
  impl_->replicas.clear();
  impl_->optimizers.clear();
  impl_->params.clear();
  for (std::size_t r = 0; r < n0; ++r) {
    Rng init_rng(cfg_.seed * 0x100000001b3ULL + 17);
    impl_->replicas.push_back(
        std::make_unique<nn::GraphNet>(impl_->spec, init_rng));
    impl_->params.push_back(impl_->replicas.back()->params());
  }
  if (!cfg_.initial_weights.empty()) {
    if (cfg_.initial_weights.size() != impl_->params[0].size()) {
      throw std::invalid_argument(
          "DataParallelTrainer: initial_weights block-count mismatch");
    }
    for (std::size_t b = 0; b < cfg_.initial_weights.size(); ++b) {
      if (cfg_.initial_weights[b].size() != impl_->params[0][b].values->size()) {
        throw std::invalid_argument(
            "DataParallelTrainer: initial_weights block-size mismatch");
      }
    }
    for (std::size_t r = 0; r < n0; ++r) {
      for (std::size_t b = 0; b < cfg_.initial_weights.size(); ++b) {
        *impl_->params[r][b].values = cfg_.initial_weights[b];
      }
    }
  }

  if (elastic) {
    impl_->comm.init_elastic(n0, cfg_.elastic.heartbeat_seconds,
                             cfg_.elastic.clock);
  }

  // --- World state, rebuilt on every membership change -------------------
  //
  // The reconfiguration contract (DESIGN.md §16, gated in ctest -L dp):
  // after a loss, the survivors must continue bit-identically to a FRESH
  // run of the shrunken world started at (reconfiguration epoch, step)
  // from the same weights. So build_world reconstructs everything a fresh
  // fit would build — comm plan, fresh Adam state, re-sharded data, fresh
  // shuffle RNGs fast-forwarded by the epochs already consumed, Eq. 2
  // scaling / warmup / plateau for the new n — and only the weights carry
  // over (aborted steps never ran any optimizer, so every survivor holds
  // the exact post-step-(s-1) weights a fresh run would start from).
  std::vector<std::size_t> world;  // [slot] -> global rank
  std::size_t n = 0;
  LinearScaling scaled{cfg_.lr1, cfg_.bs1};
  std::vector<data::Dataset> shards;
  std::vector<Rng> shuffle_rngs;
  std::vector<std::vector<std::size_t>> orders;
  std::size_t steps_per_epoch = 1;
  nn::GradualWarmup warmup(cfg_.lr1, cfg_.lr1, cfg_.warmup_epochs);
  nn::ReduceLROnPlateau plateau(cfg_.plateau_patience, cfg_.plateau_factor);
  double post_warmup_lr = cfg_.lr1;

  CommConfig comm_cfg;
  comm_cfg.strategy = cfg_.allreduce;
  comm_cfg.bucket_bytes = std::max<std::size_t>(1, cfg_.bucket_kb) * 1024;
  comm_cfg.overlap = cfg_.overlap_comm;

  GradientComm* comm = &impl_->comm;
  auto build_world = [&](std::vector<std::size_t> ranks,
                         std::size_t catchup_shuffles) {
    world = std::move(ranks);
    n = world.size();
    impl_->live_ranks = world;
    scaled = LinearScaling{static_cast<double>(n) * cfg_.lr1, n * cfg_.bs1};

    if (n > 1) {
      std::vector<std::vector<nn::ParamRef>> world_params;
      world_params.reserve(n);
      for (const std::size_t g : world) world_params.push_back(impl_->params[g]);
      impl_->comm.configure(world_params, comm_cfg);
    }
    // Grad-ready hooks publish under the rank's comm SLOT, which only
    // equals its global rank while the world is full.
    for (std::size_t slot = 0; slot < n; ++slot) {
      const std::size_t g = world[slot];
      if (n > 1 && cfg_.overlap_comm) {
        impl_->replicas[g]->set_grad_ready_hook(
            [comm, slot](std::size_t begin, std::size_t end) {
              comm->on_blocks_ready(slot, begin, end);
            });
      } else {
        impl_->replicas[g]->set_grad_ready_hook(nullptr);
      }
    }

    // Fresh per-slot optimizers on the shared averaged-gradient spans (own
    // gradients when the world is a single replica). Adam moments restart
    // on reconfiguration — the price of the bit-exact fresh-run contract.
    impl_->optimizers.clear();
    for (std::size_t slot = 0; slot < n; ++slot) {
      const std::size_t g = world[slot];
      impl_->optimizers.push_back(std::make_unique<nn::Adam>(
          n > 1 ? impl_->comm.shared_grad_params(impl_->params[g])
                : impl_->params[g],
          nn::AdamConfig{scaled.lr_n, 0.9, 0.999, 1e-8}));
    }

    Rng shard_rng(cfg_.seed + 101);
    shards = data::shard(train_set, n, shard_rng);
    steps_per_epoch = shards[0].n_rows / cfg_.bs1;
    for (const auto& s : shards) {
      steps_per_epoch = std::min(steps_per_epoch, s.n_rows / cfg_.bs1);
    }
    if (steps_per_epoch == 0) steps_per_epoch = 1;  // tiny-shard fallback

    // Per-slot shuffle state, fast-forwarded exactly as a fresh run would
    // have consumed it: one shuffle per epoch top already passed.
    shuffle_rngs.clear();
    orders.assign(n, {});
    for (std::size_t slot = 0; slot < n; ++slot) {
      shuffle_rngs.emplace_back(cfg_.seed + 1000 + slot);
      orders[slot].resize(shards[slot].n_rows);
      for (std::size_t i = 0; i < shards[slot].n_rows; ++i) orders[slot][i] = i;
      for (std::size_t k = 0; k < catchup_shuffles; ++k) {
        shuffle_rngs[slot].shuffle(orders[slot]);
      }
    }

    warmup = nn::GradualWarmup(cfg_.lr1, scaled.lr_n, cfg_.warmup_epochs);
    plateau = nn::ReduceLROnPlateau(cfg_.plateau_patience, cfg_.plateau_factor);
    post_warmup_lr = scaled.lr_n;
  };

  {
    std::vector<std::size_t> all(n0);
    for (std::size_t r = 0; r < n0; ++r) all[r] = r;
    build_world(std::move(all), 0);
  }

  std::vector<nn::Tensor> xs(n0);
  std::vector<std::vector<int>> ys(n0);
  std::vector<nn::Tensor> dlogits(n0);
  std::vector<double> step_losses(n0, 0.0);

  DataParallelResult result;
  const auto t0 = std::chrono::steady_clock::now();

  auto& reg = obs::Registry::global();
  obs::Counter m_steps = reg.counter("dp.steps");
  obs::Gauge m_throughput = reg.gauge("dp.samples_per_sec");
  obs::Counter m_reconf = reg.counter("dp.elastic.reconfigurations");
  obs::Counter m_lost = reg.counter("dp.elastic.replicas_lost");
  obs::Counter m_aborted = reg.counter("dp.elastic.aborted_steps");
  obs::Gauge m_world = reg.gauge("dp.elastic.world");
  if (elastic) m_world.set(static_cast<double>(n0));

  // Lane names precomputed: the per-step span path should not allocate
  // fresh strings every step on every replica. Lanes are per GLOBAL rank;
  // the membership epoch rides along as a span arg so traces show which
  // incarnation a step belongs to.
  std::vector<std::string> lanes;
  for (std::size_t r = 0; r < n0; ++r) {
    lanes.push_back("dp.replica." + std::to_string(r));
  }
  std::string mepoch_str = "0";

  // Every step ATTEMPT (completed or discarded) advances the fault-draw
  // counter, so the injected fault sequence is a pure function of the
  // config — replays and resumed runs see identical faults.
  std::uint64_t fault_step = 0;
  bool stopped_early = false;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    OBS_SPAN("dp.epoch",
             {{"epoch", std::to_string(epoch)}, {"mepoch", mepoch_str}});
    for (std::size_t slot = 0; slot < n; ++slot) {
      shuffle_rngs[slot].shuffle(orders[slot]);
    }
    // Cursor epochs consume their shuffles (above) but train nothing —
    // this is what build_world's catch-up fast-forward reproduces.
    if (epoch < cfg_.start_epoch) continue;

    double lr = (epoch < cfg_.warmup_epochs && n > 1)
                    ? warmup.lr_for_epoch(epoch)
                    : post_warmup_lr;
    for (auto& opt : impl_->optimizers) opt->set_learning_rate(lr);

    double loss_sum = 0.0;
    std::size_t step = epoch == cfg_.start_epoch ? cfg_.start_step : 0;
    while (step < steps_per_epoch) {
      // One collective per step: forward/backward, in-collective bucketed
      // allreduce, and the optimizer update. Under elastic training the
      // collective is abortable: a lost rank discards the step on every
      // survivor before any optimizer runs.
      if (n > 1) {
        if (elastic) {
          impl_->comm.begin_elastic_step();
        } else {
          impl_->comm.begin_step();
        }
      } else if (elastic) {
        impl_->comm.detector().arm(impl_->comm.membership());
      }
      impl_->team->run([&](std::size_t g) {
        const MembershipView& view = impl_->comm.membership();
        if (elastic && !view.alive(g)) return;  // dead ranks sit out
        const std::size_t slot = elastic ? view.slot(g) : g;
        // With n replica workers live, the shared kernel pool must not fan
        // out underneath each of them: pin every rank to 1 kernel thread
        // (thread-local, so single-replica fits elsewhere still fan out).
        nn::kernels::ScopedThreadLimit kernel_serial(n > 1 ? 1 : 0);
        // Explicit record_span (not OBS_SPAN) because rank 0 runs on the
        // caller's thread: the span must land on the replica lane, not the
        // calling thread's lane.
        const double s0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
        if (elastic) impl_->comm.detector().beat(g);
        const std::size_t begin = step * cfg_.bs1;
        const std::size_t end = std::min(begin + cfg_.bs1, shards[slot].n_rows);
        nn::batch_from(shards[slot], orders[slot], begin, end, xs[g], ys[g]);
        const nn::Tensor& logits = impl_->replicas[g]->forward(xs[g]);
        impl_->replicas[g]->zero_grad();
        step_losses[g] = nn::softmax_cross_entropy(logits, ys[g], dlogits[g]);
        impl_->replicas[g]->backward(dlogits[g]);
        if (elastic) {
          FailureDetector& det = impl_->comm.detector();
          det.beat(g);
          switch (injector.draw_replica(cfg_.elastic.job_id, g, fault_step)) {
            case exec::FaultKind::kCrash:
              // Comm-level announcement: the dying rank latches itself and
              // raises the collective abort on its way out.
              det.mark_dead(g);
              return;
            case exec::FaultKind::kHang:
              // Wedged at allreduce entry: stop beating and wait for the
              // heartbeat deadline to reclaim the collective. Polling our
              // own deadline keeps a sole survivor from hanging forever.
              while (!det.poll(view)) {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
              }
              return;
            case exec::FaultKind::kSlow: {
              // Interference, not death: sleep in slices short enough to
              // keep beating under the deadline. No membership change.
              const double naptime =
                  0.25 * cfg_.elastic.heartbeat_seconds *
                  (injector.config().slow_factor - 1.0);
              const auto slice = std::chrono::duration<double>(
                  std::min(naptime, 0.25 * cfg_.elastic.heartbeat_seconds));
              const int slices = 4;
              for (int i = 0; i < slices; ++i) {
                std::this_thread::sleep_for(slice);
                det.beat(g);
              }
              break;
            }
            case exec::FaultKind::kNone:
              break;
          }
        }
        if (n > 1) {
          if (!cfg_.overlap_comm) {
            impl_->comm.on_blocks_ready(slot, 0, impl_->comm.n_blocks());
          }
          if (elastic) {
            if (!impl_->comm.reduce_rank_elastic(slot, g, lanes[g])) {
              return;  // step aborted: discard, no optimizer update
            }
          } else {
            impl_->comm.reduce_rank(g, *impl_->team, lanes[g]);
          }
        }
        impl_->optimizers[slot]->step();
        if (kObsEnabled) {
          obs::record_span("dp.step", lanes[g], s0,
                           obs::trace_now_seconds() - s0,
                           {{"mepoch", mepoch_str}});
        }
      });

      if (elastic && impl_->comm.detector().abort_requested()) {
        // Settle: the discarded attempt consumed a fault draw; remove the
        // latched suspects, rebuild the world over the survivors, rescale
        // per Eq. 2, and re-attempt this step (or end the epoch, when the
        // shrunken shards make it shorter than the cursor).
        ++fault_step;
        m_aborted.inc();
        MembershipView& view = impl_->comm.membership();
        const std::vector<std::size_t> lost =
            impl_->comm.detector().take_suspects(view);
        if (lost.empty()) continue;  // defensive: nothing actually died
        const std::size_t old_world = n;
        if (old_world > 1) {
          result.allreduce_seconds += impl_->comm.reduce_seconds();
        }
        view.remove(lost);
        const std::vector<std::size_t> survivors = view.survivors();
        if (survivors.size() < std::max<std::size_t>(1, cfg_.elastic.min_replicas)) {
          impl_->live_ranks = survivors;
          throw std::runtime_error(
              "elastic training: world collapsed below min_replicas (" +
              std::to_string(survivors.size()) + " < " +
              std::to_string(std::max<std::size_t>(1, cfg_.elastic.min_replicas)) +
              ")");
        }
        ElasticEvent ev;
        ev.membership_epoch = view.epoch();
        ev.global_step = result.global_steps;
        ev.epoch = epoch;
        ev.step = step;
        ev.lost = lost;
        ev.old_world = old_world;
        ev.new_world = survivors.size();
        result.elastic_events.push_back(std::move(ev));
        m_reconf.inc();
        m_lost.add(lost.size());
        m_world.set(static_cast<double>(survivors.size()));
        build_world(survivors, epoch + 1);
        mepoch_str = std::to_string(view.epoch());
        lr = (epoch < cfg_.warmup_epochs && n > 1) ? warmup.lr_for_epoch(epoch)
                                                   : post_warmup_lr;
        for (auto& opt : impl_->optimizers) opt->set_learning_rate(lr);
        continue;
      }

      for (const std::size_t g : world) loss_sum += step_losses[g];
      m_steps.inc();
      ++fault_step;
      ++result.global_steps;
      if (n > 1) result.allreduce_bytes += impl_->comm.bytes_per_step();
      ++step;
      if (cfg_.stop_after_steps > 0 &&
          result.global_steps >= cfg_.stop_after_steps) {
        stopped_early = true;
        break;
      }
    }
    if (stopped_early) break;

    const double valid_acc =
        nn::evaluate_accuracy(*impl_->replicas[world[0]], valid_set);
    if (epoch >= cfg_.warmup_epochs || n == 1) {
      post_warmup_lr = plateau.update(valid_acc, lr);
    }

    nn::EpochStats stats;
    stats.train_loss =
        loss_sum / static_cast<double>(std::max<std::size_t>(1, steps_per_epoch) * n);
    stats.valid_accuracy = valid_acc;
    stats.learning_rate = lr;
    result.epochs.push_back(stats);
    result.best_valid_accuracy = std::max(result.best_valid_accuracy, valid_acc);
    if (cfg_.on_epoch) cfg_.on_epoch(epoch, stats);
  }

  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (!result.epochs.empty()) {
    result.final_valid_accuracy = result.epochs.back().valid_accuracy;
  }
  const double samples = static_cast<double>(result.global_steps) *
                         static_cast<double>(cfg_.bs1 * n);
  result.samples_per_second =
      result.wall_seconds > 0.0 ? samples / result.wall_seconds : 0.0;
  m_throughput.set(result.samples_per_second);
  if (n > 1) {
    result.allreduce_seconds += impl_->comm.reduce_seconds();
  }
  result.final_world = n;
  return result;
}

}  // namespace agebo::dp
