#include "dp/data_parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "dp/gradient_comm.hpp"
#include "dp/thread_team.hpp"
#include "nn/kernels/pool.hpp"
#include "nn/loss.hpp"
#include "nn/schedule.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace agebo::dp {

namespace {

#ifdef AGEBO_OBS_DISABLED
constexpr bool kObsEnabled = false;
#else
constexpr bool kObsEnabled = true;
#endif

}  // namespace

LinearScaling linear_scaling(const DataParallelConfig& cfg) {
  return {static_cast<double>(cfg.n_procs) * cfg.lr1, cfg.n_procs * cfg.bs1};
}

struct DataParallelTrainer::Impl {
  nn::GraphSpec spec;
  std::vector<std::unique_ptr<nn::GraphNet>> replicas;
  std::vector<std::unique_ptr<nn::Adam>> optimizers;
  std::vector<std::vector<nn::ParamRef>> params;  // [replica][block]
  std::unique_ptr<ThreadTeam> team;
  GradientComm comm;
};

DataParallelTrainer::DataParallelTrainer(nn::GraphSpec spec,
                                         DataParallelConfig cfg)
    : impl_(std::make_unique<Impl>()), cfg_(cfg) {
  if (cfg_.n_procs == 0) throw std::invalid_argument("DataParallelTrainer: n_procs == 0");
  if (cfg_.bs1 == 0) throw std::invalid_argument("DataParallelTrainer: bs1 == 0");
  if (cfg_.lr1 <= 0.0) throw std::invalid_argument("DataParallelTrainer: lr1 <= 0");
  spec.validate();
  impl_->spec = std::move(spec);
  impl_->team = std::make_unique<ThreadTeam>(cfg_.n_procs);
}

DataParallelTrainer::~DataParallelTrainer() = default;

nn::GraphNet& DataParallelTrainer::model() {
  if (impl_->replicas.empty()) {
    throw std::logic_error("DataParallelTrainer::model before fit");
  }
  return *impl_->replicas[0];
}

float DataParallelTrainer::max_replica_divergence() const {
  if (impl_->replicas.size() < 2) return 0.0f;
  float worst = 0.0f;
  const auto& base = impl_->params[0];
  for (std::size_t r = 1; r < impl_->params.size(); ++r) {
    for (std::size_t b = 0; b < base.size(); ++b) {
      const auto& v0 = *base[b].values;
      const auto& vr = *impl_->params[r][b].values;
      for (std::size_t i = 0; i < v0.size(); ++i) {
        worst = std::max(worst, std::abs(v0[i] - vr[i]));
      }
    }
  }
  return worst;
}

DataParallelResult DataParallelTrainer::fit(const data::Dataset& train_set,
                                            const data::Dataset& valid_set) {
  const std::size_t n = cfg_.n_procs;
  const auto scaled = linear_scaling(cfg_);

  // Fresh, *identical* replicas: same seed => same initialization, matching
  // Horovod's initial broadcast.
  impl_->replicas.clear();
  impl_->optimizers.clear();
  impl_->params.clear();
  for (std::size_t r = 0; r < n; ++r) {
    Rng init_rng(cfg_.seed * 0x100000001b3ULL + 17);
    impl_->replicas.push_back(
        std::make_unique<nn::GraphNet>(impl_->spec, init_rng));
    impl_->params.push_back(impl_->replicas.back()->params());
  }

  // Bucketed, rank-parallel allreduce plan (gradient_comm.hpp). With
  // overlap on, each replica's backward publishes per-layer readiness
  // through the grad-ready hook so buckets reduce while earlier layers are
  // still in backprop; otherwise the whole range is published after
  // backward and only the rank-parallel reduction remains.
  if (n > 1) {
    CommConfig comm_cfg;
    comm_cfg.strategy = cfg_.allreduce;
    comm_cfg.bucket_bytes = std::max<std::size_t>(1, cfg_.bucket_kb) * 1024;
    comm_cfg.overlap = cfg_.overlap_comm;
    impl_->comm.configure(impl_->params, comm_cfg);
    GradientComm* comm = &impl_->comm;
    for (std::size_t r = 0; r < n; ++r) {
      if (cfg_.overlap_comm) {
        impl_->replicas[r]->set_grad_ready_hook(
            [comm, r](std::size_t begin, std::size_t end) {
              comm->on_blocks_ready(r, begin, end);
            });
      } else {
        impl_->replicas[r]->set_grad_ready_hook(nullptr);
      }
    }
  }

  // Each optimizer applies the one shared averaged gradient (the reduce
  // collective fills it) to its own replica's weights — identical bytes in,
  // identical updates out, so the replicas stay in exact bitwise lockstep.
  // Single-replica fits read the replica's own gradients directly.
  for (std::size_t r = 0; r < n; ++r) {
    impl_->optimizers.push_back(std::make_unique<nn::Adam>(
        n > 1 ? impl_->comm.shared_grad_params(impl_->params[r])
              : impl_->params[r],
        nn::AdamConfig{scaled.lr_n, 0.9, 0.999, 1e-8}));
  }

  Rng shard_rng(cfg_.seed + 101);
  auto shards = data::shard(train_set, n, shard_rng);

  std::size_t steps_per_epoch = shards[0].n_rows / cfg_.bs1;
  for (const auto& s : shards) {
    steps_per_epoch = std::min(steps_per_epoch, s.n_rows / cfg_.bs1);
  }
  if (steps_per_epoch == 0) steps_per_epoch = 1;  // tiny-shard fallback

  // Per-replica shuffle state (data order may differ; weights may not).
  std::vector<Rng> shuffle_rngs;
  std::vector<std::vector<std::size_t>> orders(n);
  for (std::size_t r = 0; r < n; ++r) {
    shuffle_rngs.emplace_back(cfg_.seed + 1000 + r);
    orders[r].resize(shards[r].n_rows);
    for (std::size_t i = 0; i < shards[r].n_rows; ++i) orders[r][i] = i;
  }

  nn::GradualWarmup warmup(cfg_.lr1, scaled.lr_n, cfg_.warmup_epochs);
  nn::ReduceLROnPlateau plateau(cfg_.plateau_patience, cfg_.plateau_factor);

  std::vector<nn::Tensor> xs(n);
  std::vector<std::vector<int>> ys(n);
  std::vector<nn::Tensor> dlogits(n);
  std::vector<double> step_losses(n, 0.0);

  DataParallelResult result;
  double post_warmup_lr = scaled.lr_n;
  const auto t0 = std::chrono::steady_clock::now();

  auto& reg = obs::Registry::global();
  obs::Counter m_steps = reg.counter("dp.steps");
  obs::Gauge m_throughput = reg.gauge("dp.samples_per_sec");
  // Lane names precomputed: the per-step span path should not allocate
  // fresh strings every step on every replica.
  std::vector<std::string> lanes;
  for (std::size_t r = 0; r < n; ++r) {
    lanes.push_back("dp.replica." + std::to_string(r));
  }

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    OBS_SPAN("dp.epoch", {{"epoch", std::to_string(epoch)}});
    const double lr = (epoch < cfg_.warmup_epochs && n > 1)
                          ? warmup.lr_for_epoch(epoch)
                          : post_warmup_lr;
    for (auto& opt : impl_->optimizers) opt->set_learning_rate(lr);

    for (std::size_t r = 0; r < n; ++r) shuffle_rngs[r].shuffle(orders[r]);

    double loss_sum = 0.0;
    for (std::size_t step = 0; step < steps_per_epoch; ++step) {
      // One collective per step: forward/backward, in-collective bucketed
      // allreduce (reduce_rank), and the optimizer update — no separate
      // serial reduce phase or second run() round trip.
      if (n > 1) impl_->comm.begin_step();
      impl_->team->run([&](std::size_t r) {
        // With n replica workers live, the shared kernel pool must not fan
        // out underneath each of them: pin every rank to 1 kernel thread
        // (thread-local, so single-replica fits elsewhere still fan out).
        nn::kernels::ScopedThreadLimit kernel_serial(n > 1 ? 1 : 0);
        // Explicit record_span (not OBS_SPAN) because rank 0 runs on the
        // caller's thread: the span must land on the replica lane, not the
        // calling thread's lane.
        const double s0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
        const std::size_t begin = step * cfg_.bs1;
        const std::size_t end = std::min(begin + cfg_.bs1, shards[r].n_rows);
        nn::batch_from(shards[r], orders[r], begin, end, xs[r], ys[r]);
        const nn::Tensor& logits = impl_->replicas[r]->forward(xs[r]);
        impl_->replicas[r]->zero_grad();
        step_losses[r] = nn::softmax_cross_entropy(logits, ys[r], dlogits[r]);
        impl_->replicas[r]->backward(dlogits[r]);
        if (n > 1) {
          if (!cfg_.overlap_comm) {
            impl_->comm.on_blocks_ready(r, 0, impl_->comm.n_blocks());
          }
          impl_->comm.reduce_rank(r, *impl_->team, lanes[r]);
        }
        impl_->optimizers[r]->step();
        if (kObsEnabled) {
          obs::record_span("dp.step", lanes[r], s0,
                           obs::trace_now_seconds() - s0);
        }
      });

      for (std::size_t r = 0; r < n; ++r) loss_sum += step_losses[r];
      m_steps.inc();
      ++result.global_steps;
    }

    const double valid_acc = nn::evaluate_accuracy(*impl_->replicas[0], valid_set);
    if (epoch >= cfg_.warmup_epochs || n == 1) {
      post_warmup_lr = plateau.update(valid_acc, lr);
    }

    nn::EpochStats stats;
    stats.train_loss = loss_sum / static_cast<double>(steps_per_epoch * n);
    stats.valid_accuracy = valid_acc;
    stats.learning_rate = lr;
    result.epochs.push_back(stats);
    result.best_valid_accuracy = std::max(result.best_valid_accuracy, valid_acc);
    if (cfg_.on_epoch) cfg_.on_epoch(epoch, stats);
  }

  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (!result.epochs.empty()) {
    result.final_valid_accuracy = result.epochs.back().valid_accuracy;
  }
  const double samples = static_cast<double>(result.global_steps) *
                         static_cast<double>(cfg_.bs1 * n);
  result.samples_per_second =
      result.wall_seconds > 0.0 ? samples / result.wall_seconds : 0.0;
  m_throughput.set(result.samples_per_second);
  if (n > 1) {
    result.allreduce_bytes = impl_->comm.bytes_per_step() * result.global_steps;
    result.allreduce_seconds = impl_->comm.reduce_seconds();
  }
  return result;
}

}  // namespace agebo::dp
