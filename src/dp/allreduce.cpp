#include "dp/allreduce.hpp"

#include <cstring>
#include <stdexcept>

#include "dp/reduce_kernels.hpp"

namespace agebo::dp {

namespace {

void reduce_all(std::vector<std::vector<float>*>& buffers,
                AllreduceStrategy strategy) {
  const std::size_t n = buffers.size();
  if (n == 1) return;
  const std::size_t len = buffers[0]->size();
  if (len == 0) return;

  const float* srcs[kernels::kMaxSources];
  for (std::size_t r = 0; r < n; ++r) srcs[r] = buffers[r]->data();
  const float inv_n = 1.0f / static_cast<float>(n);

  // Single-destination reduce into a reused scratch span, then one memcpy
  // per buffer: n + 1 streamed ops for the reduction and 2n for the
  // broadcast, versus ~5n for the historical accumulate-in-place loop.
  static thread_local std::vector<float> scratch;
  if (scratch.size() < len) scratch.resize(len);
  float* acc = scratch.data();

  switch (strategy) {
    case AllreduceStrategy::kFlat:
      // Linear left fold: the historical rank-0 accumulate order, bit for
      // bit.
      kernels::reduce_avg_linear_to(acc, srcs, n, 0, len, inv_n);
      break;
    case AllreduceStrategy::kTree:
      kernels::reduce_avg_tree_to(acc, srcs, n, 0, len, inv_n);
      break;
    case AllreduceStrategy::kRing: {
      // Reduce-scatter order: chunk c is summed starting from its ring
      // predecessor's contribution, exactly as rank c would accumulate it
      // in a real ring. Serial here; rank-parallel in gradient_comm.
      const float* rotated[kernels::kMaxSources];
      for (std::size_t c = 0; c < n; ++c) {
        const auto [begin, sz] = kernels::chunk_range(len, n, c);
        const std::size_t rot = (c + 1) % n;
        for (std::size_t j = 0; j < n; ++j) rotated[j] = srcs[(rot + j) % n];
        kernels::reduce_avg_linear_to(acc, rotated, n, begin, sz, inv_n);
      }
      break;
    }
    default:
      throw std::invalid_argument("allreduce: unknown strategy");
  }

  for (std::size_t r = 0; r < n; ++r) {
    std::memcpy(buffers[r]->data(), acc, len * sizeof(float));
  }
}

}  // namespace

void allreduce_validate(const std::vector<std::vector<float>*>& buffers) {
  if (buffers.empty()) throw std::invalid_argument("allreduce: no buffers");
  if (buffers.size() > kernels::kMaxSources) {
    throw std::invalid_argument("allreduce: too many buffers");
  }
  for (const auto* b : buffers) {
    if (b == nullptr) throw std::invalid_argument("allreduce: null buffer");
    if (b->size() != buffers[0]->size()) {
      throw std::invalid_argument("allreduce: size mismatch");
    }
  }
}

void allreduce_average(std::vector<std::vector<float>*>& buffers,
                       AllreduceStrategy strategy) {
  allreduce_validate(buffers);
  reduce_all(buffers, strategy);
}

void allreduce_average_unchecked(std::vector<std::vector<float>*>& buffers,
                                 AllreduceStrategy strategy) {
  reduce_all(buffers, strategy);
}

}  // namespace agebo::dp
