#include "dp/allreduce.hpp"

#include <stdexcept>

namespace agebo::dp {

namespace {

void check(const std::vector<std::vector<float>*>& buffers) {
  if (buffers.empty()) throw std::invalid_argument("allreduce: no buffers");
  for (const auto* b : buffers) {
    if (b == nullptr) throw std::invalid_argument("allreduce: null buffer");
    if (b->size() != buffers[0]->size()) {
      throw std::invalid_argument("allreduce: size mismatch");
    }
  }
}

void broadcast_from_zero(std::vector<std::vector<float>*>& buffers) {
  for (std::size_t r = 1; r < buffers.size(); ++r) *buffers[r] = *buffers[0];
}

}  // namespace

void allreduce_average(std::vector<std::vector<float>*>& buffers,
                       AllreduceStrategy strategy) {
  check(buffers);
  const std::size_t n = buffers.size();
  if (n == 1) return;
  const std::size_t len = buffers[0]->size();

  if (strategy == AllreduceStrategy::kFlat) {
    auto& acc = *buffers[0];
    for (std::size_t r = 1; r < n; ++r) {
      const auto& src = *buffers[r];
      for (std::size_t i = 0; i < len; ++i) acc[i] += src[i];
    }
    const float inv = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < len; ++i) acc[i] *= inv;
    broadcast_from_zero(buffers);
    return;
  }

  // Tree reduction: at stride s, buffer r absorbs buffer r+s.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    for (std::size_t r = 0; r + stride < n; r += 2 * stride) {
      auto& dst = *buffers[r];
      const auto& src = *buffers[r + stride];
      for (std::size_t i = 0; i < len; ++i) dst[i] += src[i];
    }
  }
  auto& acc = *buffers[0];
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < len; ++i) acc[i] *= inv;
  broadcast_from_zero(buffers);
}

}  // namespace agebo::dp
