#include "dp/reduce_kernels.hpp"

#include <cstring>
#include <stdexcept>

namespace agebo::dp::kernels {

namespace {

// Specialized source counts get a dedicated single-pass loop: every stream
// is a named __restrict pointer, so the compiler vectorizes the fold with
// no runtime alias checks. Counts above 8 fall back to a tiled
// accumulator (one destination write pass, sources still streamed once).
constexpr std::size_t kTile = 512;

void lin2(float* __restrict d, const float* __restrict a,
          const float* __restrict b, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) d[i] = (a[i] + b[i]) * inv;
}
void lin3(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) d[i] = ((a[i] + b[i]) + c[i]) * inv;
}
void lin4(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          const float* __restrict e, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = (((a[i] + b[i]) + c[i]) + e[i]) * inv;
  }
}
void lin5(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          const float* __restrict e, const float* __restrict f,
          std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = ((((a[i] + b[i]) + c[i]) + e[i]) + f[i]) * inv;
  }
}
void lin6(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          const float* __restrict e, const float* __restrict f,
          const float* __restrict g, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = (((((a[i] + b[i]) + c[i]) + e[i]) + f[i]) + g[i]) * inv;
  }
}
void lin7(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          const float* __restrict e, const float* __restrict f,
          const float* __restrict g, const float* __restrict h,
          std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = ((((((a[i] + b[i]) + c[i]) + e[i]) + f[i]) + g[i]) + h[i]) * inv;
  }
}
void lin8(float* __restrict d, const float* __restrict a,
          const float* __restrict b, const float* __restrict c,
          const float* __restrict e, const float* __restrict f,
          const float* __restrict g, const float* __restrict h,
          const float* __restrict k, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] =
        (((((((a[i] + b[i]) + c[i]) + e[i]) + f[i]) + g[i]) + h[i]) + k[i]) *
        inv;
  }
}

// Pairwise tree folds in the legacy stride-doubling combine order.
void tree4(float* __restrict d, const float* __restrict a,
           const float* __restrict b, const float* __restrict c,
           const float* __restrict e, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = ((a[i] + b[i]) + (c[i] + e[i])) * inv;
  }
}
void tree5(float* __restrict d, const float* __restrict a,
           const float* __restrict b, const float* __restrict c,
           const float* __restrict e, const float* __restrict f,
           std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = (((a[i] + b[i]) + (c[i] + e[i])) + f[i]) * inv;
  }
}
void tree6(float* __restrict d, const float* __restrict a,
           const float* __restrict b, const float* __restrict c,
           const float* __restrict e, const float* __restrict f,
           const float* __restrict g, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = (((a[i] + b[i]) + (c[i] + e[i])) + (f[i] + g[i])) * inv;
  }
}
void tree7(float* __restrict d, const float* __restrict a,
           const float* __restrict b, const float* __restrict c,
           const float* __restrict e, const float* __restrict f,
           const float* __restrict g, const float* __restrict h,
           std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] = (((a[i] + b[i]) + (c[i] + e[i])) + ((f[i] + g[i]) + h[i])) * inv;
  }
}
void tree8(float* __restrict d, const float* __restrict a,
           const float* __restrict b, const float* __restrict c,
           const float* __restrict e, const float* __restrict f,
           const float* __restrict g, const float* __restrict h,
           const float* __restrict k, std::size_t len, float inv) {
  for (std::size_t i = 0; i < len; ++i) {
    d[i] =
        (((a[i] + b[i]) + (c[i] + e[i])) + ((f[i] + g[i]) + (h[i] + k[i]))) *
        inv;
  }
}

// Generic linear fold for n > 8: accumulate into an L1-resident stack tile
// (sources still read once, destination written once).
void lin_tile(float* dst, const float* const* srcs, std::size_t n,
              std::size_t len, float inv) {
  for (std::size_t t = 0; t < len; t += kTile) {
    const std::size_t tl = std::min(kTile, len - t);
    float acc[kTile];
    const float* __restrict first = srcs[0] + t;
    for (std::size_t i = 0; i < tl; ++i) acc[i] = first[i];
    for (std::size_t j = 1; j < n; ++j) {
      const float* __restrict s = srcs[j] + t;
      for (std::size_t i = 0; i < tl; ++i) acc[i] += s[i];
    }
    float* __restrict out = dst + t;
    for (std::size_t i = 0; i < tl; ++i) out[i] = acc[i] * inv;
  }
}

// Generic tree fold: out = sum of srcs[i .. min(i+span, n)) combined in the
// legacy stride-doubling order — span is a power of two, and each level
// pairs a node with the node span/2 to its right when that subtree exists.
void tree_tile_sum(float* __restrict out, const float* const* srcs,
                   std::size_t n, std::size_t i, std::size_t span,
                   std::size_t off, std::size_t tl) {
  if (span == 1) {
    const float* __restrict s = srcs[i] + off;
    for (std::size_t e = 0; e < tl; ++e) out[e] = s[e];
    return;
  }
  tree_tile_sum(out, srcs, n, i, span / 2, off, tl);
  if (i + span / 2 < n) {
    float tmp[kTile];
    tree_tile_sum(tmp, srcs, n, i + span / 2, span / 2, off, tl);
    for (std::size_t e = 0; e < tl; ++e) out[e] += tmp[e];
  }
}

void tree_tile(float* dst, const float* const* srcs, std::size_t n,
               std::size_t len, float inv) {
  std::size_t span = 1;
  while (span < n) span *= 2;
  for (std::size_t t = 0; t < len; t += kTile) {
    const std::size_t tl = std::min(kTile, len - t);
    float acc[kTile];
    tree_tile_sum(acc, srcs, n, 0, span, t, tl);
    float* __restrict out = dst + t;
    for (std::size_t i = 0; i < tl; ++i) out[i] = acc[i] * inv;
  }
}

void check_args(std::size_t n) {
  if (n == 0 || n > kMaxSources) {
    throw std::invalid_argument("reduce_avg: bad source count");
  }
}

}  // namespace

void reduce_avg_linear_to(float* dst, const float* const* srcs, std::size_t n,
                          std::size_t off, std::size_t len, float inv_n) {
  check_args(n);
  if (len == 0) return;
  float* d = dst + off;
  const float *a = srcs[0] + off, *b = n > 1 ? srcs[1] + off : nullptr,
              *c = n > 2 ? srcs[2] + off : nullptr,
              *e = n > 3 ? srcs[3] + off : nullptr,
              *f = n > 4 ? srcs[4] + off : nullptr,
              *g = n > 5 ? srcs[5] + off : nullptr,
              *h = n > 6 ? srcs[6] + off : nullptr,
              *k = n > 7 ? srcs[7] + off : nullptr;
  switch (n) {
    case 1:
      if (d != a) std::memcpy(d, a, len * sizeof(float));
      return;
    case 2: lin2(d, a, b, len, inv_n); return;
    case 3: lin3(d, a, b, c, len, inv_n); return;
    case 4: lin4(d, a, b, c, e, len, inv_n); return;
    case 5: lin5(d, a, b, c, e, f, len, inv_n); return;
    case 6: lin6(d, a, b, c, e, f, g, len, inv_n); return;
    case 7: lin7(d, a, b, c, e, f, g, h, len, inv_n); return;
    case 8: lin8(d, a, b, c, e, f, g, h, k, len, inv_n); return;
    default: break;
  }
  const float* shifted[kMaxSources];
  for (std::size_t j = 0; j < n; ++j) shifted[j] = srcs[j] + off;
  lin_tile(d, shifted, n, len, inv_n);
}

void reduce_avg_tree_to(float* dst, const float* const* srcs, std::size_t n,
                        std::size_t off, std::size_t len, float inv_n) {
  check_args(n);
  if (len == 0) return;
  float* d = dst + off;
  const float *a = srcs[0] + off, *b = n > 1 ? srcs[1] + off : nullptr,
              *c = n > 2 ? srcs[2] + off : nullptr,
              *e = n > 3 ? srcs[3] + off : nullptr,
              *f = n > 4 ? srcs[4] + off : nullptr,
              *g = n > 5 ? srcs[5] + off : nullptr,
              *h = n > 6 ? srcs[6] + off : nullptr,
              *k = n > 7 ? srcs[7] + off : nullptr;
  switch (n) {
    case 1:
      if (d != a) std::memcpy(d, a, len * sizeof(float));
      return;
    // Trees of 2 and 3 combine in the same order as the linear fold.
    case 2: lin2(d, a, b, len, inv_n); return;
    case 3: lin3(d, a, b, c, len, inv_n); return;
    case 4: tree4(d, a, b, c, e, len, inv_n); return;
    case 5: tree5(d, a, b, c, e, f, len, inv_n); return;
    case 6: tree6(d, a, b, c, e, f, g, len, inv_n); return;
    case 7: tree7(d, a, b, c, e, f, g, h, len, inv_n); return;
    case 8: tree8(d, a, b, c, e, f, g, h, k, len, inv_n); return;
    default: break;
  }
  const float* shifted[kMaxSources];
  for (std::size_t j = 0; j < n; ++j) shifted[j] = srcs[j] + off;
  tree_tile(d, shifted, n, len, inv_n);
}

}  // namespace agebo::dp::kernels
