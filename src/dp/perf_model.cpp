#include "dp/perf_model.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::dp {

namespace {

double allreduce_seconds(const PerfModelParams& model, std::size_t n_procs,
                         std::size_t n_params) {
  if (n_procs <= 1) return 0.0;
  const double levels = std::ceil(std::log2(static_cast<double>(n_procs)));
  const double bytes = static_cast<double>(n_params) * 4.0;  // float32
  return levels * (model.allreduce_alpha + bytes / model.allreduce_beta);
}

}  // namespace

double predict_step_seconds(const PerfModelParams& model, std::size_t n_procs,
                            std::size_t local_batch, std::size_t n_params) {
  if (n_procs == 0 || local_batch == 0 || n_params == 0) {
    throw std::invalid_argument("predict_step_seconds: zero argument");
  }
  // Each replica computes its local batch concurrently, so per-step compute
  // is the single-replica cost of `local_batch` samples.
  const double compute = model.compute_per_sample_param *
                         static_cast<double>(local_batch) *
                         static_cast<double>(n_params);
  return compute + allreduce_seconds(model, n_procs, n_params) +
         model.step_overhead;
}

double predict_training_seconds(const PerfModelParams& model,
                                std::size_t n_procs, std::size_t local_batch,
                                std::size_t n_params, std::size_t train_rows,
                                std::size_t epochs) {
  if (train_rows == 0 || epochs == 0) {
    throw std::invalid_argument("predict_training_seconds: zero argument");
  }
  // Steps per epoch: shard rows / local batch (synchronous lockstep).
  const std::size_t shard_rows = train_rows / n_procs;
  const std::size_t steps = std::max<std::size_t>(1, shard_rows / local_batch);
  return static_cast<double>(steps * epochs) *
         predict_step_seconds(model, n_procs, local_batch, n_params);
}

double predict_speedup(const PerfModelParams& model, std::size_t n_procs,
                       std::size_t local_batch, std::size_t n_params,
                       std::size_t train_rows) {
  const double t1 = predict_training_seconds(model, 1, local_batch, n_params,
                                             train_rows, 1);
  const double tn = predict_training_seconds(model, n_procs, local_batch,
                                             n_params, train_rows, 1);
  return t1 / tn;
}

PerfModelParams fit_compute_rate(PerfModelParams model,
                                 double measured_step_seconds,
                                 std::size_t local_batch,
                                 std::size_t n_params) {
  if (measured_step_seconds <= model.step_overhead) {
    throw std::invalid_argument("fit_compute_rate: measurement below overhead");
  }
  model.compute_per_sample_param =
      (measured_step_seconds - model.step_overhead) /
      (static_cast<double>(local_batch) * static_cast<double>(n_params));
  return model;
}

}  // namespace agebo::dp
