#include "dp/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::dp {

namespace {

double allreduce_seconds(const PerfModelParams& model, std::size_t n_procs,
                         std::size_t n_params) {
  if (n_procs <= 1) return 0.0;
  const double levels = std::ceil(std::log2(static_cast<double>(n_procs)));
  const double bytes = static_cast<double>(n_params) * 4.0;  // float32
  return levels * (model.allreduce_alpha + bytes / model.allreduce_beta);
}

double n_buckets(const AllreduceCommSpec& comm, std::size_t n_params) {
  const double bytes = static_cast<double>(n_params) * 4.0;
  const double cap = static_cast<double>(
      comm.bucket_bytes > 0 ? comm.bucket_bytes : std::size_t{1} << 20);
  return std::max(1.0, std::ceil(bytes / cap));
}

}  // namespace

double predict_allreduce_seconds(const PerfModelParams& model,
                                 const AllreduceCommSpec& comm,
                                 std::size_t n_procs, std::size_t n_params) {
  if (n_procs <= 1) return 0.0;
  const double n = static_cast<double>(n_procs);
  const double bytes = static_cast<double>(n_params) * 4.0;
  switch (comm.strategy) {
    case AllreduceStrategy::kFlat:
      return (n - 1.0) * (model.allreduce_alpha + bytes / model.allreduce_beta);
    case AllreduceStrategy::kTree:
      return allreduce_seconds(model, n_procs, n_params);
    case AllreduceStrategy::kRing:
      return 2.0 * (n - 1.0) * model.allreduce_alpha *
                 n_buckets(comm, n_params) +
             2.0 * (n - 1.0) / n * bytes / model.allreduce_beta;
  }
  throw std::invalid_argument("predict_allreduce_seconds: unknown strategy");
}

double predict_step_seconds(const PerfModelParams& model, std::size_t n_procs,
                            std::size_t local_batch, std::size_t n_params) {
  if (n_procs == 0 || local_batch == 0 || n_params == 0) {
    throw std::invalid_argument("predict_step_seconds: zero argument");
  }
  // Each replica computes its local batch concurrently, so per-step compute
  // is the single-replica cost of `local_batch` samples.
  const double compute = model.compute_per_sample_param *
                         static_cast<double>(local_batch) *
                         static_cast<double>(n_params);
  return compute + allreduce_seconds(model, n_procs, n_params) +
         model.step_overhead;
}

double predict_step_seconds(const PerfModelParams& model,
                            const AllreduceCommSpec& comm, std::size_t n_procs,
                            std::size_t local_batch, std::size_t n_params) {
  if (n_procs == 0 || local_batch == 0 || n_params == 0) {
    throw std::invalid_argument("predict_step_seconds: zero argument");
  }
  const double compute = model.compute_per_sample_param *
                         static_cast<double>(local_batch) *
                         static_cast<double>(n_params);
  double comm_s = predict_allreduce_seconds(model, comm, n_procs, n_params);
  if (comm.overlap && comm_s > 0.0) {
    // Backward is roughly half the compute; all buckets but the last can
    // reduce under it. The last bucket is inherently exposed — it only
    // becomes ready when backward completes.
    const double tail = comm_s / n_buckets(comm, n_params);
    comm_s = std::max(comm_s - 0.5 * compute, tail);
  }
  return compute + comm_s + model.step_overhead;
}

double predict_training_seconds(const PerfModelParams& model,
                                std::size_t n_procs, std::size_t local_batch,
                                std::size_t n_params, std::size_t train_rows,
                                std::size_t epochs) {
  if (train_rows == 0 || epochs == 0) {
    throw std::invalid_argument("predict_training_seconds: zero argument");
  }
  // Steps per epoch: shard rows / local batch (synchronous lockstep).
  const std::size_t shard_rows = train_rows / n_procs;
  const std::size_t steps = std::max<std::size_t>(1, shard_rows / local_batch);
  return static_cast<double>(steps * epochs) *
         predict_step_seconds(model, n_procs, local_batch, n_params);
}

double predict_speedup(const PerfModelParams& model, std::size_t n_procs,
                       std::size_t local_batch, std::size_t n_params,
                       std::size_t train_rows) {
  const double t1 = predict_training_seconds(model, 1, local_batch, n_params,
                                             train_rows, 1);
  const double tn = predict_training_seconds(model, n_procs, local_batch,
                                             n_params, train_rows, 1);
  return t1 / tn;
}

PerfModelParams fit_compute_rate(PerfModelParams model,
                                 double measured_step_seconds,
                                 std::size_t local_batch,
                                 std::size_t n_params) {
  if (measured_step_seconds <= model.step_overhead) {
    throw std::invalid_argument("fit_compute_rate: measurement below overhead");
  }
  model.compute_per_sample_param =
      (measured_step_seconds - model.step_overhead) /
      (static_cast<double>(local_batch) * static_cast<double>(n_params));
  return model;
}

}  // namespace agebo::dp
