// Synchronous data-parallel training (Sec III-B): the training set is split
// into `n` mutually exclusive shards; `n` replicas of the same architecture
// each train on their own shard; per step the replica gradients are
// allreduce-averaged so every replica applies an identical update and the
// weights stay in lockstep — exactly the Horovod execution model, realized
// with threads instead of MPI ranks (see DESIGN.md §2).
//
// The linear scaling rule (Eq. 2) is applied here: effective learning rate
// n·lr1, effective global batch n·bs1 (each replica consumes a local batch
// of bs1). Gradual warmup ramps from lr1 to n·lr1 across the first 5 epochs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "dp/allreduce.hpp"
#include "nn/graph_net.hpp"
#include "nn/trainer.hpp"

namespace agebo::dp {

/// The three tunable hyperparameters of data-parallel training (H_m), plus
/// fixed training-recipe settings.
struct DataParallelConfig {
  std::size_t n_procs = 1;  ///< n — number of parallel processes
  double lr1 = 0.01;        ///< single-process learning rate
  std::size_t bs1 = 256;    ///< single-process (local) batch size
  std::size_t epochs = 20;
  std::size_t warmup_epochs = 5;
  std::size_t plateau_patience = 5;
  double plateau_factor = 0.5;
  AllreduceStrategy allreduce = AllreduceStrategy::kFlat;
  /// Fusion-bucket capacity for the bucketed allreduce (KiB). Gradient
  /// blocks are packed into buckets of this size so per-block coordination
  /// amortizes; see gradient_comm.hpp.
  std::size_t bucket_kb = 1024;
  /// Overlap gradient allreduce with backward: buckets whose layers have
  /// finished backprop reduce while earlier layers are still computing.
  bool overlap_comm = true;
  std::uint64_t seed = 7;
  /// Optional hook invoked after each epoch (index, stats) — tools use it
  /// for periodic progress reports without polling the result object.
  std::function<void(std::size_t, const nn::EpochStats&)> on_epoch;
};

/// Eq. 2: lr_n = n * lr1, bs_n = n * bs1.
struct LinearScaling {
  double lr_n;
  std::size_t bs_n;
};
LinearScaling linear_scaling(const DataParallelConfig& cfg);

struct DataParallelResult {
  std::vector<nn::EpochStats> epochs;
  double best_valid_accuracy = 0.0;
  double final_valid_accuracy = 0.0;
  double wall_seconds = 0.0;
  std::size_t global_steps = 0;
  double samples_per_second = 0.0;
  /// Gradient payload averaged across replicas over the whole fit (one
  /// replica's bytes per step x steps; 0 when n_procs == 1) and the wall
  /// time rank 0 spent in allreduce — bytes/seconds is the effective
  /// algorithm bandwidth the communication layer sustained.
  std::size_t allreduce_bytes = 0;
  double allreduce_seconds = 0.0;
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(nn::GraphSpec spec, DataParallelConfig cfg);
  ~DataParallelTrainer();

  DataParallelTrainer(const DataParallelTrainer&) = delete;
  DataParallelTrainer& operator=(const DataParallelTrainer&) = delete;

  /// Run the full training loop; replicas are freshly initialized each call.
  DataParallelResult fit(const data::Dataset& train_set,
                         const data::Dataset& valid_set);

  /// Replica 0's network (the synchronized model) after fit().
  nn::GraphNet& model();

  /// Max |w_r - w_0| across replicas — 0 means perfect lockstep. Exposed
  /// for tests asserting the allreduce keeps replicas synchronized.
  float max_replica_divergence() const;

  const DataParallelConfig& config() const { return cfg_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  DataParallelConfig cfg_;
};

}  // namespace agebo::dp
