// Synchronous data-parallel training (Sec III-B): the training set is split
// into `n` mutually exclusive shards; `n` replicas of the same architecture
// each train on their own shard; per step the replica gradients are
// allreduce-averaged so every replica applies an identical update and the
// weights stay in lockstep — exactly the Horovod execution model, realized
// with threads instead of MPI ranks (see DESIGN.md §2).
//
// The linear scaling rule (Eq. 2) is applied here: effective learning rate
// n·lr1, effective global batch n·bs1 (each replica consumes a local batch
// of bs1). Gradual warmup ramps from lr1 to n·lr1 across the first 5 epochs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "dp/allreduce.hpp"
#include "dp/membership.hpp"
#include "exec/fault_injector.hpp"
#include "nn/graph_net.hpp"
#include "nn/trainer.hpp"

namespace agebo::dp {

/// Elastic training knobs (DESIGN.md §16). With enabled == true the step
/// collective runs over GradientComm's MembershipView: a replica lost to an
/// injected crash/hang (or a missed heartbeat deadline) aborts the
/// in-flight step, the survivors rebuild the reduction schedule, rescale
/// lr_n/bs_n per Eq. 2 for the new world size, and resume — bit-identically
/// to a fresh run of the shrunken world started at the reconfiguration step
/// with the same weights (the gated contract in ctest -L dp).
struct ElasticConfig {
  bool enabled = false;
  /// Fail the fit (throw) when the surviving world would drop below this.
  std::size_t min_replicas = 1;
  /// Failure-detector deadline: a rank whose last heartbeat is older than
  /// this is declared lost. Must comfortably exceed the worst-case compute
  /// time of one training step (ranks beat at step entry and at allreduce
  /// entry, not during forward/backward).
  double heartbeat_seconds = 1.0;
  /// Replica-scoped fault injection, drawn stateless per (job_id, replica,
  /// step-attempt) at allreduce entry — see exec::FaultInjector.
  exec::FaultConfig faults;
  std::uint64_t job_id = 0;
  /// Failure-detector time source override; tests inject a virtual clock.
  /// Default ({}) is the steady wall clock.
  FailureDetector::ClockFn clock;
};

/// One membership reconfiguration, as recorded in
/// DataParallelResult::elastic_events.
struct ElasticEvent {
  std::uint64_t membership_epoch = 0;  ///< MembershipView epoch after removal
  std::size_t global_step = 0;         ///< completed steps before the event
  std::size_t epoch = 0;               ///< training epoch of the aborted step
  std::size_t step = 0;                ///< in-epoch index of the aborted step
  std::vector<std::size_t> lost;       ///< global ranks removed
  std::size_t old_world = 0;
  std::size_t new_world = 0;
};

/// The three tunable hyperparameters of data-parallel training (H_m), plus
/// fixed training-recipe settings.
struct DataParallelConfig {
  std::size_t n_procs = 1;  ///< n — number of parallel processes
  double lr1 = 0.01;        ///< single-process learning rate
  std::size_t bs1 = 256;    ///< single-process (local) batch size
  std::size_t epochs = 20;
  std::size_t warmup_epochs = 5;
  std::size_t plateau_patience = 5;
  double plateau_factor = 0.5;
  AllreduceStrategy allreduce = AllreduceStrategy::kFlat;
  /// Fusion-bucket capacity for the bucketed allreduce (KiB). Gradient
  /// blocks are packed into buckets of this size so per-block coordination
  /// amortizes; see gradient_comm.hpp.
  std::size_t bucket_kb = 1024;
  /// Overlap gradient allreduce with backward: buckets whose layers have
  /// finished backprop reduce while earlier layers are still computing.
  bool overlap_comm = true;
  std::uint64_t seed = 7;
  /// Optional hook invoked after each epoch (index, stats) — tools use it
  /// for periodic progress reports without polling the result object.
  std::function<void(std::size_t, const nn::EpochStats&)> on_epoch;

  /// Elastic membership + failure injection (DESIGN.md §16).
  ElasticConfig elastic;

  /// Training cursor: epochs before start_epoch consume their shuffles but
  /// train no steps and run no validation; epoch start_epoch begins at
  /// in-epoch step start_step. This is how the elastic equivalence tests
  /// start a fresh run "at (n-1, reconfiguration step)".
  std::size_t start_epoch = 0;
  std::size_t start_step = 0;
  /// Stop the fit right after this many completed global steps (0 = run to
  /// the configured epochs). Used to snapshot weights mid-run.
  std::size_t stop_after_steps = 0;
  /// Non-empty: overwrite every replica's initialized weights with these
  /// per-block values (block order and sizes must match the spec's
  /// params()). Combined with the cursor above, resumes training from an
  /// externally captured snapshot.
  std::vector<std::vector<float>> initial_weights;
};

/// Eq. 2: lr_n = n * lr1, bs_n = n * bs1.
struct LinearScaling {
  double lr_n;
  std::size_t bs_n;
};
LinearScaling linear_scaling(const DataParallelConfig& cfg);

struct DataParallelResult {
  std::vector<nn::EpochStats> epochs;
  double best_valid_accuracy = 0.0;
  double final_valid_accuracy = 0.0;
  double wall_seconds = 0.0;
  std::size_t global_steps = 0;
  double samples_per_second = 0.0;
  /// Gradient payload averaged across replicas over the whole fit (one
  /// replica's bytes per step x steps; 0 when n_procs == 1) and the wall
  /// time rank 0 spent in allreduce — bytes/seconds is the effective
  /// algorithm bandwidth the communication layer sustained.
  std::size_t allreduce_bytes = 0;
  double allreduce_seconds = 0.0;
  /// Replica count the fit finished with — equals n_procs unless elastic
  /// reconfiguration removed ranks along the way.
  std::size_t final_world = 0;
  /// One entry per membership reconfiguration, in order.
  std::vector<ElasticEvent> elastic_events;
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(nn::GraphSpec spec, DataParallelConfig cfg);
  ~DataParallelTrainer();

  DataParallelTrainer(const DataParallelTrainer&) = delete;
  DataParallelTrainer& operator=(const DataParallelTrainer&) = delete;

  /// Run the full training loop; replicas are freshly initialized each call.
  DataParallelResult fit(const data::Dataset& train_set,
                         const data::Dataset& valid_set);

  /// The synchronized model after fit(): replica 0's network, or — after an
  /// elastic reconfiguration removed rank 0 — the lowest surviving rank's.
  nn::GraphNet& model();

  /// Max |w_r - w_s| across LIVE replicas (dead ranks keep stale weights)
  /// — 0 means perfect lockstep. Exposed for tests asserting the allreduce
  /// keeps replicas synchronized.
  float max_replica_divergence() const;

  const DataParallelConfig& config() const { return cfg_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  DataParallelConfig cfg_;
};

}  // namespace agebo::dp
