// Multi-source averaging kernels for gradient allreduce (DESIGN.md §11).
//
// Each kernel streams `n` equally sized float source spans once and writes
// their element-wise average to a single destination span. That single-
// destination shape is the whole trick: the legacy flat allreduce re-reads
// and re-writes a rank-0 accumulator once per source and then copies it out
// once per destination (~5n memory ops per element), while these kernels
// touch n + 1 streams per element. Combined with the shared reduced-
// gradient store in gradient_comm.hpp — every replica's optimizer reads the
// one averaged copy, so no per-replica broadcast exists at all — that
// traffic cut, not thread parallelism, is what makes the bucketed path beat
// the serial baseline even on a single core.
//
// Determinism: the element-wise summation order is a pure function of
// (kernel, n, source order) — never of thread scheduling — so a fixed
// configuration produces identical bits run to run.
//
// The inner loops are plain autovectorized C++ on purpose: these kernels
// are bandwidth-bound, so wider vectors do not move the needle, and forcing
// AVX2/AVX-512 codegen through target attributes measured *slower* than the
// compiler's default vectorization on the development machine. (The GEMM
// microkernels keep their ISA dispatch — they are compute-bound; see
// DESIGN.md §9.)
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

namespace agebo::dp::kernels {

/// Guard for the stack-allocated pointer tables: the maximum source count
/// the kernels accept.
inline constexpr std::size_t kMaxSources = 256;

/// Contiguous chunk c of [0, len) split n ways, remainder spread over the
/// leading chunks; returns {begin, size}. The serial kRing allreduce and
/// the rank-parallel bucket engine share this split so their summation
/// orders line up.
inline std::pair<std::size_t, std::size_t> chunk_range(std::size_t len,
                                                       std::size_t n,
                                                       std::size_t c) {
  const std::size_t base = len / n;
  const std::size_t rem = len % n;
  return {c * base + std::min(c, rem), base + (c < rem ? 1 : 0)};
}

/// dst[off .. off+len) = average of srcs[0..n)[off .. off+len), summed in
/// *linear* order srcs[0] + srcs[1] + ... + srcs[n-1] (a left fold, the
/// legacy serial kFlat accumulation order bit for bit). Rotated orders —
/// the ring schedule — are expressed by passing a rotated pointer table.
/// dst must not overlap any source span.
void reduce_avg_linear_to(float* dst, const float* const* srcs, std::size_t n,
                          std::size_t off, std::size_t len, float inv_n);

/// Same contract, but sources are combined in the pairwise stride-doubling
/// order of the legacy kTree allreduce, so the result matches the serial
/// tree path bit for bit. dst must not overlap any source span.
void reduce_avg_tree_to(float* dst, const float* const* srcs, std::size_t n,
                        std::size_t off, std::size_t len, float inv_n);

}  // namespace agebo::dp::kernels
