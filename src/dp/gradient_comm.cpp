#include "dp/gradient_comm.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "dp/reduce_kernels.hpp"
#include "dp/thread_team.hpp"
#include "obs/span.hpp"

namespace agebo::dp {

namespace {

#ifdef AGEBO_OBS_DISABLED
constexpr bool kObsEnabled = false;
#else
constexpr bool kObsEnabled = true;
#endif

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void GradientComm::configure(
    const std::vector<std::vector<nn::ParamRef>>& params,
    const CommConfig& cfg) {
  if (params.empty()) throw std::invalid_argument("GradientComm: no replicas");
  if (params.size() > kernels::kMaxSources) {
    throw std::invalid_argument("GradientComm: too many replicas");
  }
  if (cfg.bucket_bytes == 0) {
    throw std::invalid_argument("GradientComm: zero bucket_bytes");
  }
  cfg_ = cfg;
  n_ranks_ = params.size();
  const std::size_t n_blocks = params[0].size();

  grad_ptrs_.assign(n_ranks_, {});
  for (std::size_t r = 0; r < n_ranks_; ++r) {
    if (params[r].size() != n_blocks) {
      throw std::invalid_argument("GradientComm: replica block-count mismatch");
    }
    grad_ptrs_[r].reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      auto* g = params[r][b].grads;
      if (g == nullptr || g->size() != params[0][b].grads->size()) {
        throw std::invalid_argument("GradientComm: replica block-shape mismatch");
      }
      grad_ptrs_[r].push_back(g->data());
    }
  }

  // Greedy bucket fill in params() order; blocks are never split. The
  // shared reduced span for every block is allocated here, once per fit.
  blocks_.assign(n_blocks, {});
  buckets_.clear();
  reduced_.assign(n_blocks, {});
  payload_bytes_ = 0;
  std::size_t fill = 0;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t len = params[0][b].grads->size();
    const std::size_t bytes = len * sizeof(float);
    payload_bytes_ += bytes;
    if (buckets_.empty() || (fill > 0 && fill + bytes > cfg_.bucket_bytes)) {
      buckets_.emplace_back();
      fill = 0;
    }
    fill += bytes;
    blocks_[b].bucket = buckets_.size() - 1;
    blocks_[b].len = len;
    blocks_[b].fused = bytes < cfg_.fuse_below_bytes;
    reduced_[b].assign(len, 0.0f);
  }

  // Lay out each bucket: per-replica fusion buffers for the small blocks
  // (packed in block order), then one reduction segment per block — fused
  // blocks read from the fusion buffers, large blocks read their gradients
  // zero-copy, and every segment writes the block's shared reduced span.
  fusion_.assign(buckets_.size(), {});
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    std::size_t fused_elems = 0;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      if (blocks_[b].bucket != bi) continue;
      if (blocks_[b].fused) {
        blocks_[b].fused_off = fused_elems;
        fused_elems += blocks_[b].len;
      }
    }
    if (fused_elems > 0) {
      fusion_[bi].assign(n_ranks_, std::vector<float>(fused_elems));
    }
    Bucket& bucket = buckets_[bi];
    for (std::size_t b = 0; b < n_blocks; ++b) {
      if (blocks_[b].bucket != bi) continue;
      bucket.ready_target += static_cast<int>(n_ranks_);
      bucket.elems += blocks_[b].len;
      Segment seg;
      seg.len = blocks_[b].len;
      seg.dst = reduced_[b].data();
      for (std::size_t r = 0; r < n_ranks_; ++r) {
        seg.srcs.push_back(blocks_[b].fused
                               ? fusion_[bi][r].data() + blocks_[b].fused_off
                               : grad_ptrs_[r][b]);
      }
      bucket.segments.push_back(std::move(seg));
    }
  }

  ready_ = std::make_unique<std::atomic<int>[]>(buckets_.size());
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    ready_[bi].store(0, std::memory_order_relaxed);
  }
  reduce_seconds_ = 0.0;

  auto& reg = obs::Registry::global();
  m_bytes_ = reg.counter("dp.allreduce_bytes");
  m_seconds_ = reg.dcounter("dp.allreduce_seconds");
  m_gbps_ = reg.gauge("dp.allreduce_gbps");
}

std::vector<nn::ParamRef> GradientComm::shared_grad_params(
    const std::vector<nn::ParamRef>& replica_params) {
  if (replica_params.size() != reduced_.size()) {
    throw std::invalid_argument(
        "GradientComm::shared_grad_params: block-count mismatch");
  }
  std::vector<nn::ParamRef> out;
  out.reserve(replica_params.size());
  for (std::size_t b = 0; b < replica_params.size(); ++b) {
    out.push_back(nn::ParamRef{replica_params[b].values, &reduced_[b]});
  }
  return out;
}

void GradientComm::begin_step() {
  // Plain stores are enough: ThreadTeam::run publishes them to the step
  // collective before any hook can fire.
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    ready_[bi].store(0, std::memory_order_relaxed);
  }
}

void GradientComm::on_blocks_ready(std::size_t replica, std::size_t begin,
                                   std::size_t end) {
  if (begin >= end) return;
  // Pack fused blocks into this replica's fusion buffers (their bytes are
  // L1-hot — backward finalized them moments ago), then publish per-bucket
  // readiness. Blocks are bucket-assigned monotonically, so the range
  // touches each bucket in one run — one release fetch_add per bucket, not
  // per block.
  std::size_t run_bucket = blocks_[begin].bucket;
  int run_count = 0;
  for (std::size_t b = begin; b < end; ++b) {
    const BlockInfo& blk = blocks_[b];
    if (blk.fused) {
      std::memcpy(fusion_[blk.bucket][replica].data() + blk.fused_off,
                  grad_ptrs_[replica][b], blk.len * sizeof(float));
    }
    if (blk.bucket != run_bucket) {
      ready_[run_bucket].fetch_add(run_count, std::memory_order_release);
      run_bucket = blk.bucket;
      run_count = 0;
    }
    ++run_count;
  }
  ready_[run_bucket].fetch_add(run_count, std::memory_order_release);
}

void GradientComm::reduce_chunk(const Segment& seg, std::size_t chunk) const {
  const auto [begin, sz] = kernels::chunk_range(seg.len, n_ranks_, chunk);
  if (sz == 0) return;
  const float inv_n = 1.0f / static_cast<float>(n_ranks_);
  const float* const* srcs = seg.srcs.data();
  switch (cfg_.strategy) {
    case AllreduceStrategy::kFlat:
      // Linear left fold: the historical accumulate order, bit-identical
      // to the serial kFlat path.
      kernels::reduce_avg_linear_to(seg.dst, srcs, n_ranks_, begin, sz, inv_n);
      return;
    case AllreduceStrategy::kTree:
      kernels::reduce_avg_tree_to(seg.dst, srcs, n_ranks_, begin, sz, inv_n);
      return;
    case AllreduceStrategy::kRing: {
      // Ring reduce-scatter order: the chunk's sum starts from the owning
      // rank's ring predecessor, as it would arriving around a real ring.
      const std::size_t rot = (chunk + 1) % n_ranks_;
      const float* rotated[kernels::kMaxSources];
      for (std::size_t j = 0; j < n_ranks_; ++j) {
        rotated[j] = srcs[(rot + j) % n_ranks_];
      }
      kernels::reduce_avg_linear_to(seg.dst, rotated, n_ranks_, begin, sz,
                                    inv_n);
      return;
    }
  }
}

void GradientComm::init_elastic(std::size_t world, double heartbeat_seconds,
                                FailureDetector::ClockFn clock) {
  view_.reset(world);
  detector_.configure(world, heartbeat_seconds, std::move(clock));
}

void GradientComm::begin_elastic_step() {
  begin_step();
  elastic_barrier_.reset(view_.alive_count());
  detector_.arm(view_);
}

bool GradientComm::reduce_rank_elastic(std::size_t slot,
                                       std::size_t global_rank,
                                       const std::string& lane) {
  const double t0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
  const double w0 = slot == 0 ? wall_seconds() : 0.0;

  // Same drain as reduce_rank, but every wait beats this rank's heart and
  // polls the failure detector: a rank whose contribution will never come
  // (crashed or hung mid-step) raises the abort instead of wedging the
  // survivors here forever.
  for (std::size_t bi = buckets_.size(); bi-- > 0;) {
    const Bucket& bucket = buckets_[bi];
    std::atomic<int>& rdy = ready_[bi];
    while (rdy.load(std::memory_order_acquire) != bucket.ready_target) {
      detector_.beat(global_rank);
      if (detector_.poll(view_)) return false;
      std::this_thread::yield();
    }
    const double b0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
    // Chunk ownership is over the CONFIGURED replica count (= the current
    // alive count), exactly as in a fresh run of that world size: slot s
    // owns chunk s, so the per-chunk summation order — and therefore the
    // reduced bits — match the fresh run's.
    for (const Segment& seg : bucket.segments) {
      for (std::size_t c = slot; c < n_ranks_; c += n_ranks_) {
        reduce_chunk(seg, c);
      }
    }
    if (kObsEnabled) {
      obs::record_span("dp.allreduce.bucket", lane, b0,
                       obs::trace_now_seconds() - b0,
                       {{"bucket", std::to_string(bi)},
                        {"elems", std::to_string(bucket.elems)}});
    }
  }

  const bool ok = elastic_barrier_.arrive_and_wait([this, global_rank] {
    detector_.beat(global_rank);
    return detector_.poll(view_);
  });
  if (!ok) return false;

  if (slot == 0) {
    const double dt = wall_seconds() - w0;
    reduce_seconds_ += dt;
    m_bytes_.add(payload_bytes_);
    m_seconds_.add(dt);
    if (dt > 0.0) {
      m_gbps_.set(static_cast<double>(payload_bytes_) / dt / 1e9);
    }
  }
  if (kObsEnabled) {
    obs::record_span("dp.allreduce", lane, t0, obs::trace_now_seconds() - t0);
  }
  return true;
}

void GradientComm::reduce_rank(std::size_t rank, ThreadTeam& team,
                               const std::string& lane) {
  const double t0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
  const double w0 = rank == 0 ? wall_seconds() : 0.0;
  const std::size_t executors = team.size();

  // Drain in reverse params() order — backward finalizes the output layer
  // first, so the highest-numbered bucket becomes ready first. Chunks are
  // fixed (one per replica, so the summation order never depends on the
  // executor count) and dealt round-robin over the executors.
  for (std::size_t bi = buckets_.size(); bi-- > 0;) {
    const Bucket& bucket = buckets_[bi];
    std::atomic<int>& rdy = ready_[bi];
    while (rdy.load(std::memory_order_acquire) != bucket.ready_target) {
      std::this_thread::yield();
    }
    const double b0 = kObsEnabled ? obs::trace_now_seconds() : 0.0;
    for (const Segment& seg : bucket.segments) {
      for (std::size_t c = rank; c < n_ranks_; c += executors) {
        reduce_chunk(seg, c);
      }
    }
    if (kObsEnabled) {
      obs::record_span("dp.allreduce.bucket", lane, b0,
                       obs::trace_now_seconds() - b0,
                       {{"bucket", std::to_string(bi)},
                        {"elems", std::to_string(bucket.elems)}});
    }
  }

  // Every rank reduced its disjoint chunks into the shared store; meet so
  // the averaged bytes are visible to every replica's optimizer. No unpack
  // and no broadcast: the optimizers read the shared spans directly.
  team.barrier(rank);

  if (rank == 0) {
    const double dt = wall_seconds() - w0;
    reduce_seconds_ += dt;
    m_bytes_.add(payload_bytes_);
    m_seconds_.add(dt);
    if (dt > 0.0) {
      m_gbps_.set(static_cast<double>(payload_bytes_) / dt / 1e9);
    }
  }
  if (kObsEnabled) {
    obs::record_span("dp.allreduce", lane, t0, obs::trace_now_seconds() - t0);
  }
}

}  // namespace agebo::dp
