#include "core/repeat.hpp"

#include <stdexcept>

#include "core/analysis.hpp"

namespace agebo::core {

RepeatOutcome run_repeated(const CampaignFn& campaign,
                           const std::vector<std::uint64_t>& seeds,
                           double target_accuracy) {
  if (seeds.empty()) throw std::invalid_argument("run_repeated: no seeds");
  RepeatOutcome out;
  for (std::uint64_t seed : seeds) {
    SearchResult result = campaign(seed);
    out.best_accuracy.add(result.best_objective);
    out.n_evaluations.add(static_cast<double>(result.history.size()));
    if (target_accuracy >= 0.0) {
      const double t = time_to_accuracy(result, target_accuracy);
      if (t >= 0.0) {
        out.time_to_target.add(t);
        ++out.reached_count;
      }
    }
    out.runs.push_back(std::move(result));
  }
  return out;
}

}  // namespace agebo::core
