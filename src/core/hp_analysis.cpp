#include "core/hp_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/analysis.hpp"

namespace agebo::core {

std::vector<MarginalBucket> hp_marginal(const SearchResult& result,
                                        std::size_t dim) {
  std::map<double, MarginalBucket> buckets;
  for (const auto& rec : result.history) {
    if (rec.config.hparams.size() <= dim) {
      throw std::invalid_argument("hp_marginal: dimension out of range");
    }
    double key = rec.config.hparams[dim];
    if (dim == 1) {
      // Learning rate: bucket by decade third (…, 1e-3, 2.2e-3, 4.6e-3, …).
      key = std::pow(10.0, std::round(std::log10(key) * 3.0) / 3.0);
    }
    auto& bucket = buckets[key];
    if (bucket.count == 0) {
      bucket.value = key;
      bucket.best_objective = rec.objective;
    }
    bucket.mean_objective += rec.objective;
    bucket.best_objective = std::max(bucket.best_objective, rec.objective);
    ++bucket.count;
  }
  std::vector<MarginalBucket> out;
  out.reserve(buckets.size());
  for (auto& [key, bucket] : buckets) {
    bucket.mean_objective /= static_cast<double>(bucket.count);
    out.push_back(bucket);
  }
  return out;
}

TopKSummary summarize_top_k(const SearchResult& result, std::size_t k) {
  const auto top = top_k(result, k);
  if (top.empty()) throw std::invalid_argument("summarize_top_k: empty history");

  const std::size_t dims = result.history[top[0]].config.hparams.size();
  TopKSummary summary;
  summary.k = top.size();
  summary.modal_values.resize(dims);

  for (std::size_t d = 0; d < dims; ++d) {
    std::map<double, std::size_t> counts;
    for (std::size_t idx : top) {
      counts[result.history[idx].config.hparams[d]]++;
    }
    auto best = counts.begin();
    for (auto it = counts.begin(); it != counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    summary.modal_values[d] = best->first;
  }

  if (dims > 1) {
    double log_sum = 0.0;
    for (std::size_t idx : top) {
      log_sum += std::log(result.history[idx].config.hparams[1]);
    }
    summary.lr_geo_mean = std::exp(log_sum / static_cast<double>(top.size()));
  }
  return summary;
}

}  // namespace agebo::core
