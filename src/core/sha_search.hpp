// BOHB-style joint-space searcher (related work, Sec V): samples
// (architecture, hyperparameter) configurations from the joint space and
// evaluates them with synchronous successive halving — rung r trains every
// surviving configuration at fidelity eta^(r - rungs + 1) of the full epoch
// budget and *waits for the whole rung* before promoting the top 1/eta.
//
// The paper's criticism is structural: the rung barrier is a blocking
// operation, so workers idle while stragglers finish, and utilization drops
// well below AgEBO's ~94% at scale. This implementation reproduces exactly
// that behaviour on the same Executor abstraction (bench_related_bohb).
#pragma once

#include <vector>

#include "bo/param_space.hpp"
#include "core/search.hpp"
#include "eval/evaluation.hpp"
#include "exec/executor.hpp"
#include "nas/search_space.hpp"

namespace agebo::core {

struct ShaJointConfig {
  /// Configurations sampled per bracket at rung 0.
  std::size_t bracket_size = 128;
  std::size_t eta = 3;
  std::size_t rungs = 3;
  double wall_time_seconds = 180.0 * 60.0;
  bo::ParamSpace hp_space;  ///< defaults to paper_space() when empty
  std::uint64_t seed = 1;
};

class ShaJointSearch {
 public:
  ShaJointSearch(const nas::SearchSpace& space, eval::Evaluator& evaluator,
                 exec::Executor& executor, ShaJointConfig cfg);

  /// Runs brackets until the wall-time budget is exhausted. Only
  /// full-fidelity evaluations enter the returned history (matching how
  /// BOHB reports incumbents); low-fidelity rungs count toward utilization.
  SearchResult run();

 private:
  const nas::SearchSpace* space_;
  eval::Evaluator* evaluator_;
  exec::Executor* executor_;
  ShaJointConfig cfg_;
  Rng rng_;
};

}  // namespace agebo::core
