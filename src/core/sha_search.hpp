// BOHB-style joint-space searcher (related work, Sec V): samples
// (architecture, hyperparameter) configurations from the joint space and
// evaluates them with synchronous successive halving — rung r trains every
// surviving configuration at fidelity eta^(r - rungs + 1) of the full epoch
// budget and *waits for the whole rung* before promoting the top 1/eta.
//
// The paper's criticism is structural: the rung barrier is a blocking
// operation, so workers idle while stragglers finish, and utilization drops
// well below AgEBO's ~94% at scale. This implementation reproduces exactly
// that behaviour on the same Executor abstraction (bench_related_bohb).
//
// Like AgeboSearch, the algorithm is a pumped state machine
// (start()/step() produce EvalTickets, consume EvalDones) so the campaign
// service can multiplex SHA campaigns onto a shared executor and
// checkpoint them; run() drives the pump against an owned executor.
#pragma once

#include <iosfwd>
#include <map>
#include <vector>

#include "bo/param_space.hpp"
#include "core/search.hpp"
#include "eval/evaluation.hpp"
#include "exec/executor.hpp"
#include "nas/search_space.hpp"

namespace agebo::core {

struct ShaJointConfig {
  /// Configurations sampled per bracket at rung 0.
  std::size_t bracket_size = 128;
  std::size_t eta = 3;
  std::size_t rungs = 3;
  double wall_time_seconds = 180.0 * 60.0;
  bo::ParamSpace hp_space;  ///< defaults to paper_space() when empty
  std::uint64_t seed = 1;
};

class ShaJointSearch {
 public:
  /// Pump mode: no executor — the caller drives via start()/step().
  ShaJointSearch(const nas::SearchSpace& space, ShaJointConfig cfg);

  /// Owning mode: run() pumps `executor` itself.
  ShaJointSearch(const nas::SearchSpace& space, eval::Evaluator& evaluator,
                 exec::Executor& executor, ShaJointConfig cfg);

  /// Runs brackets until the wall-time budget is exhausted. Only
  /// full-fidelity evaluations enter the returned history (matching how
  /// BOHB reports incumbents); low-fidelity rungs count toward utilization.
  SearchResult run();

  // --- Pump API (DESIGN.md §14) -------------------------------------
  // start() samples the first bracket and emits its rung-0 tickets.
  // step() records completions; while the rung barrier is open it returns
  // nothing, and once the last ticket of a rung lands it promotes the top
  // 1/eta and emits the next rung (or samples a fresh bracket after a
  // full-fidelity rung, budget permitting). complete() turns true when
  // the budget expires at a bracket/rung boundary.

  std::vector<EvalTicket> start();
  std::vector<EvalTicket> step(const std::vector<EvalDone>& done, double now);
  bool started() const { return started_; }
  bool complete() const { return complete_; }
  double wall_time_seconds() const { return cfg_.wall_time_seconds; }
  const std::map<std::uint64_t, EvalTicket>& outstanding() const {
    return outstanding_;
  }
  const std::vector<EvalRecord>& history() const { return history_; }
  /// History + best so far; utilization left for the executor's owner.
  SearchResult result() const;

  /// Checkpoint/restore in the shared line-oriented dialect; same contract
  /// as AgeboSearch::save_state/load_state.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  void sample_bracket();
  std::vector<EvalTicket> emit_rung();

  const nas::SearchSpace* space_;
  eval::Evaluator* evaluator_ = nullptr;   // owning mode only
  exec::Executor* executor_ = nullptr;     // owning mode only
  ShaJointConfig cfg_;
  Rng rng_;

  std::vector<eval::ModelConfig> survivors_;
  std::vector<double> scores_;
  std::size_t rung_ = 0;
  std::size_t collected_ = 0;
  std::map<std::uint64_t, EvalTicket> outstanding_;
  std::map<std::uint64_t, std::size_t> ticket_index_;  ///< ticket → survivor
  std::uint64_t next_ticket_ = 1;
  bool started_ = false;
  bool complete_ = false;
  std::vector<EvalRecord> history_;
};

}  // namespace agebo::core
