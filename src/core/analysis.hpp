// Trajectory analysis used by the figure benches:
//  - best-so-far accuracy over time (Fig 3, 4, 6),
//  - count of *unique* architectures above an accuracy threshold over time
//    (Fig 5, 8), with the threshold computed as the paper does: the minimum
//    across variants of each variant's 0.99 accuracy quantile,
//  - top-k configurations (Table III),
//  - statistics for Table I rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/search.hpp"

namespace agebo::core {

struct TimeSeriesPoint {
  double time_seconds = 0.0;
  double value = 0.0;
};

/// Best validation accuracy reached by each point in time.
std::vector<TimeSeriesPoint> best_so_far(const SearchResult& result);

/// Best accuracy at or before `t` (0 when no evaluation finished yet).
double best_at_time(const SearchResult& result, double t);

/// First time the trajectory reaches `target` accuracy; -1 when never.
double time_to_accuracy(const SearchResult& result, double target);

/// Cumulative count of unique architectures (by genome key) whose accuracy
/// exceeds `threshold`, in completion-time order.
std::vector<TimeSeriesPoint> unique_high_performers(const SearchResult& result,
                                                    double threshold);

/// The Fig 5/8 threshold: min over variants of each run's 0.99 quantile of
/// validation accuracy.
double high_performer_threshold(const std::vector<const SearchResult*>& runs,
                                double q = 0.99);

/// Indices of the top-k records by objective, descending.
std::vector<std::size_t> top_k(const SearchResult& result, std::size_t k);

struct RunStats {
  std::size_t n_evaluations = 0;
  double mean_train_minutes = 0.0;
  double sd_train_minutes = 0.0;
  double best_accuracy = 0.0;
};
RunStats run_stats(const SearchResult& result);

}  // namespace agebo::core
