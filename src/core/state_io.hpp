// Token-level helpers for the line-oriented checkpoint dialect shared by
// the pumped searchers (AgeboSearch/ShaJointSearch::save_state) and the
// campaign service (src/svc/checkpoint): space-separated tokens, doubles
// at max_digits10 so state round-trips bit-exactly, "-" as the empty
// string sentinel, and error messages that name the section being parsed.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "bo/param_space.hpp"
#include "common/rng.hpp"
#include "nas/search_space.hpp"

namespace agebo::core::state {

/// Throw std::runtime_error("<what>: <detail>").
[[noreturn]] void fail(const std::string& what, const std::string& detail);

/// Read one token and require it to equal `key` (section framing).
void expect_key(std::istream& is, const char* key, const std::string& what);

/// Read "<key> <count>".
std::size_t read_count(std::istream& is, const char* key,
                       const std::string& what);

/// Read "<key> <flag01>".
bool read_flag(std::istream& is, const char* key, const std::string& what);

/// Empty strings are written as "-" (tokens themselves never contain
/// whitespace: tags and campaign names are validated at creation).
std::string encode_token(const std::string& s);
std::string decode_token(const std::string& s);

/// "<n> v0 v1 ..." vectors.
void write_genome(std::ostream& os, const nas::Genome& genome);
nas::Genome read_genome(std::istream& is, const std::string& what);
void write_point(std::ostream& os, const bo::Point& point);
bo::Point read_point(std::istream& is, const std::string& what);

/// "rng s0 s1 s2 s3 cached_normal has_cached" — the full sampler position.
void write_rng(std::ostream& os, const Rng::State& st);
Rng::State read_rng(std::istream& is, const std::string& what);

}  // namespace agebo::core::state
