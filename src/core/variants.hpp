// Named search configurations from the paper's experiments:
//   AgE-n          — fixed (bs=256, lr=0.01, n) with linear scaling (Sec IV-A)
//   AgEBO          — BO over the full H_m (bs1, lr1, n)
//   AgEBO-8-LR     — n=8 and bs=256 fixed, lr tuned (Sec IV-B)
//   AgEBO-8-LR-BS  — n=8 fixed, lr and bs tuned
// Partial variants freeze dimensions by giving them single-value
// categorical domains, so one search implementation covers all rows.
#pragma once

#include <string>

#include "core/search.hpp"

namespace agebo::core {

/// P=100, S=10, 3-hour budget, default kappa 0.001 (Sec IV).
SearchConfig paper_defaults(std::uint64_t seed = 1);

SearchConfig age_config(std::size_t n_procs, std::uint64_t seed = 1);
SearchConfig agebo_config(std::uint64_t seed = 1, double kappa = 0.001);
SearchConfig agebo_8_lr_config(std::uint64_t seed = 1);
SearchConfig agebo_8_lr_bs_config(std::uint64_t seed = 1);

/// Pure random architecture search with fixed hyperparameters (baseline).
SearchConfig random_search_config(std::size_t n_procs, std::uint64_t seed = 1);

/// Multinode extension (the paper's future-work item 2): the number of
/// processes ranges over {1..64}; evaluations with n > procs_per_node span
/// ceil(n / procs_per_node) worker nodes (gang-scheduled in simulation).
SearchConfig agebo_multinode_config(std::uint64_t seed = 1,
                                    std::size_t procs_per_node = 8);

/// Human label for plots/tables, e.g. "AgE-4" or "AgEBO".
std::string variant_name(const SearchConfig& cfg);

/// CLI/manifest dispatch: "agebo", "agebo-8-lr", "agebo-8-lr-bs",
/// "agebo-multinode", "agebo-dN" (decentralized BO with N shards,
/// DESIGN.md §15), "age-N", "rs-N" → the matching config. Because a
/// variant name + seed + kappa fully determines a SearchConfig, it is what
/// the campaign-service checkpoint stores (SearchConfig itself carries
/// std::function members and cannot be serialized); resume rebuilds the
/// config here and then restores the search state into it. Throws
/// std::invalid_argument on an unknown name.
SearchConfig config_by_name(const std::string& variant, std::uint64_t seed = 1,
                            double kappa = 0.001);

}  // namespace agebo::core
