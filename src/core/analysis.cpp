#include "core/analysis.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/stats.hpp"

namespace agebo::core {

namespace {

/// History sorted by completion time (it normally already is, but the
/// analysis should not rely on executor ordering guarantees).
std::vector<const EvalRecord*> by_time(const SearchResult& result) {
  std::vector<const EvalRecord*> recs;
  recs.reserve(result.history.size());
  for (const auto& r : result.history) recs.push_back(&r);
  std::stable_sort(recs.begin(), recs.end(),
                   [](const EvalRecord* a, const EvalRecord* b) {
                     return a->finish_time < b->finish_time;
                   });
  return recs;
}

}  // namespace

std::vector<TimeSeriesPoint> best_so_far(const SearchResult& result) {
  std::vector<TimeSeriesPoint> out;
  double best = -std::numeric_limits<double>::infinity();
  for (const EvalRecord* r : by_time(result)) {
    if (r->objective > best) {
      best = r->objective;
      out.push_back({r->finish_time, best});
    }
  }
  return out;
}

double best_at_time(const SearchResult& result, double t) {
  double best = 0.0;
  for (const auto& r : result.history) {
    if (r.finish_time <= t && r.objective > best) best = r.objective;
  }
  return best;
}

double time_to_accuracy(const SearchResult& result, double target) {
  double earliest = -1.0;
  for (const auto& r : result.history) {
    if (r.objective >= target &&
        (earliest < 0.0 || r.finish_time < earliest)) {
      earliest = r.finish_time;
    }
  }
  return earliest;
}

std::vector<TimeSeriesPoint> unique_high_performers(const SearchResult& result,
                                                    double threshold) {
  std::vector<TimeSeriesPoint> out;
  std::unordered_set<std::string> seen;
  std::size_t count = 0;
  for (const EvalRecord* r : by_time(result)) {
    if (r->objective <= threshold) continue;
    const auto key = nas::SearchSpace::key(r->config.genome);
    if (seen.insert(key).second) {
      ++count;
      out.push_back({r->finish_time, static_cast<double>(count)});
    }
  }
  return out;
}

double high_performer_threshold(const std::vector<const SearchResult*>& runs,
                                double q) {
  double threshold = std::numeric_limits<double>::infinity();
  for (const SearchResult* run : runs) {
    std::vector<double> acc;
    acc.reserve(run->history.size());
    for (const auto& r : run->history) acc.push_back(r.objective);
    if (!acc.empty()) threshold = std::min(threshold, quantile(acc, q));
  }
  return threshold;
}

std::vector<std::size_t> top_k(const SearchResult& result, std::size_t k) {
  std::vector<double> objectives;
  objectives.reserve(result.history.size());
  for (const auto& r : result.history) objectives.push_back(r.objective);
  auto order = argsort_desc(objectives);
  if (order.size() > k) order.resize(k);
  return order;
}

RunStats run_stats(const SearchResult& result) {
  RunStats stats;
  stats.n_evaluations = result.history.size();
  RunningStats time_stats;
  for (const auto& r : result.history) {
    time_stats.add(r.train_seconds / 60.0);
    stats.best_accuracy = std::max(stats.best_accuracy, r.objective);
  }
  stats.mean_train_minutes = time_stats.count() ? time_stats.mean() : 0.0;
  stats.sd_train_minutes = time_stats.count() ? time_stats.stddev() : 0.0;
  return stats;
}

}  // namespace agebo::core
