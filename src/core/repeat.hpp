// Multi-seed repetition harness: run the same campaign across seeds and
// aggregate best accuracy / time-to-accuracy statistics. Table II's
// "0.652 +/- 0.002" style numbers come from exactly this kind of
// repetition; benches use it to report mean +/- sd instead of single draws.
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "core/search.hpp"

namespace agebo::core {

struct RepeatOutcome {
  std::vector<SearchResult> runs;
  RunningStats best_accuracy;
  RunningStats n_evaluations;
  /// Time to reach `target_accuracy` per run; runs that never reach it are
  /// excluded (reached_count tells how many did).
  RunningStats time_to_target;
  std::size_t reached_count = 0;
};

/// `factory(seed)` builds a fresh (evaluator, executor, config) and runs the
/// search — the caller owns the wiring; this harness owns aggregation.
using CampaignFn = std::function<SearchResult(std::uint64_t seed)>;

RepeatOutcome run_repeated(const CampaignFn& campaign,
                           const std::vector<std::uint64_t>& seeds,
                           double target_accuracy = -1.0);

}  // namespace agebo::core
