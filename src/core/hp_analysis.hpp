// Hyperparameter marginal analysis over a search history: per-dimension
// statistics of the top-k configurations (what Table III summarizes) and
// simple marginal response curves — which value of each hyperparameter did
// the well-performing evaluations use?
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/search.hpp"

namespace agebo::core {

struct MarginalBucket {
  double value = 0.0;          ///< hyperparameter value (bucket key)
  std::size_t count = 0;       ///< evaluations with this value
  double mean_objective = 0.0;
  double best_objective = 0.0;
};

/// Group history records by the value of hyperparameter dimension `dim`
/// (exact match for categoricals / integers; log10-decade buckets for the
/// learning rate, dim == 1). Buckets are sorted by value.
std::vector<MarginalBucket> hp_marginal(const SearchResult& result,
                                        std::size_t dim);

struct TopKSummary {
  /// Per-dimension value of the majority choice among the top-k records.
  std::vector<double> modal_values;
  /// Geometric mean of the learning rate among the top-k (dim 1).
  double lr_geo_mean = 0.0;
  std::size_t k = 0;
};

/// Summarize the hyperparameters of the top-k records (Table III style:
/// modal batch size, modal n, and the lr cluster center).
TopKSummary summarize_top_k(const SearchResult& result, std::size_t k);

}  // namespace agebo::core
