#include "core/sha_search.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "common/stats.hpp"

namespace agebo::core {

ShaJointSearch::ShaJointSearch(const nas::SearchSpace& space,
                               eval::Evaluator& evaluator,
                               exec::Executor& executor, ShaJointConfig cfg)
    : space_(&space),
      evaluator_(&evaluator),
      executor_(&executor),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed) {
  if (cfg_.eta < 2) throw std::invalid_argument("ShaJointConfig: eta < 2");
  if (cfg_.rungs == 0) throw std::invalid_argument("ShaJointConfig: zero rungs");
  if (cfg_.bracket_size == 0) {
    throw std::invalid_argument("ShaJointConfig: empty bracket");
  }
  if (cfg_.hp_space.size() == 0) cfg_.hp_space = bo::ParamSpace::paper_space();
}

SearchResult ShaJointSearch::run() {
  SearchResult result;

  while (executor_->now() < cfg_.wall_time_seconds) {
    // Sample a fresh bracket from the joint space H_a x H_m.
    std::vector<eval::ModelConfig> survivors;
    survivors.reserve(cfg_.bracket_size);
    for (std::size_t i = 0; i < cfg_.bracket_size; ++i) {
      eval::ModelConfig config;
      config.genome = space_->random(rng_);
      config.hparams = cfg_.hp_space.sample(rng_);
      survivors.push_back(std::move(config));
    }

    for (std::size_t rung = 0; rung < cfg_.rungs && !survivors.empty(); ++rung) {
      const double fidelity =
          std::pow(static_cast<double>(cfg_.eta),
                   static_cast<double>(rung) - static_cast<double>(cfg_.rungs) + 1.0);
      const bool full = rung + 1 == cfg_.rungs;

      // Submit the whole rung...
      std::unordered_map<std::uint64_t, std::size_t> job_to_config;
      eval::Evaluator* evaluator = evaluator_;
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        const auto config = survivors[i];
        exec::JobSpec spec;
        spec.tag = "sha-rung-" + std::to_string(rung);
        const std::uint64_t id = executor_->submit(
            [evaluator, config, fidelity] {
              return evaluator->evaluate(eval::EvalRequest{config, fidelity});
            },
            spec);
        job_to_config[id] = i;
      }

      // ... and BLOCK until every job in the rung finished (the barrier the
      // paper criticizes: stragglers idle the rest of the machine).
      std::vector<double> scores(survivors.size(), 0.0);
      std::size_t collected = 0;
      while (collected < survivors.size()) {
        const auto finished = executor_->get_finished(true);
        if (finished.empty()) break;  // executor drained unexpectedly
        for (const auto& f : finished) {
          const auto it = job_to_config.find(f.id);
          if (it == job_to_config.end()) continue;
          scores[it->second] = f.output.failed ? 0.0 : f.output.objective;
          ++collected;
          if (full && f.finish_time <= cfg_.wall_time_seconds) {
            EvalRecord rec;
            rec.index = result.history.size();
            rec.finish_time = f.finish_time;
            rec.objective = scores[it->second];
            rec.train_seconds = f.output.train_seconds;
            rec.failed = f.output.failed;
            rec.attempts = f.attempts;
            rec.config = survivors[it->second];
            result.history.push_back(rec);
          }
        }
      }
      if (full) break;

      // Promote the top 1/eta to the next rung.
      const auto order = argsort_desc(scores);
      const std::size_t keep =
          std::max<std::size_t>(1, survivors.size() / cfg_.eta);
      std::vector<eval::ModelConfig> next;
      next.reserve(keep);
      for (std::size_t i = 0; i < keep; ++i) {
        next.push_back(std::move(survivors[order[i]]));
      }
      survivors = std::move(next);

      if (executor_->now() >= cfg_.wall_time_seconds) break;
    }
  }

  result.utilization = executor_->utilization();
  if (!result.history.empty()) {
    result.best_index = 0;
    for (std::size_t i = 1; i < result.history.size(); ++i) {
      if (result.history[i].objective >
          result.history[result.best_index].objective) {
        result.best_index = i;
      }
    }
    result.best_objective = result.history[result.best_index].objective;
  }
  return result;
}

}  // namespace agebo::core
