#include "core/sha_search.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "common/stats.hpp"
#include "core/history_io.hpp"
#include "core/state_io.hpp"

namespace agebo::core {

ShaJointSearch::ShaJointSearch(const nas::SearchSpace& space,
                               ShaJointConfig cfg)
    : space_(&space), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.eta < 2) throw std::invalid_argument("ShaJointConfig: eta < 2");
  if (cfg_.rungs == 0) throw std::invalid_argument("ShaJointConfig: zero rungs");
  if (cfg_.bracket_size == 0) {
    throw std::invalid_argument("ShaJointConfig: empty bracket");
  }
  if (cfg_.hp_space.size() == 0) cfg_.hp_space = bo::ParamSpace::paper_space();
}

ShaJointSearch::ShaJointSearch(const nas::SearchSpace& space,
                               eval::Evaluator& evaluator,
                               exec::Executor& executor, ShaJointConfig cfg)
    : ShaJointSearch(space, std::move(cfg)) {
  evaluator_ = &evaluator;
  executor_ = &executor;
}

void ShaJointSearch::sample_bracket() {
  // Sample a fresh bracket from the joint space H_a x H_m.
  survivors_.clear();
  survivors_.reserve(cfg_.bracket_size);
  for (std::size_t i = 0; i < cfg_.bracket_size; ++i) {
    eval::ModelConfig config;
    config.genome = space_->random(rng_);
    config.hparams = cfg_.hp_space.sample(rng_);
    survivors_.push_back(std::move(config));
  }
  rung_ = 0;
}

std::vector<EvalTicket> ShaJointSearch::emit_rung() {
  const double fidelity = std::pow(
      static_cast<double>(cfg_.eta),
      static_cast<double>(rung_) - static_cast<double>(cfg_.rungs) + 1.0);
  scores_.assign(survivors_.size(), 0.0);
  collected_ = 0;
  std::vector<EvalTicket> out;
  out.reserve(survivors_.size());
  for (std::size_t i = 0; i < survivors_.size(); ++i) {
    EvalTicket t;
    t.ticket = next_ticket_++;
    t.config = survivors_[i];
    t.fidelity = fidelity;
    t.tag = "sha-rung-" + std::to_string(rung_);
    outstanding_.emplace(t.ticket, t);
    ticket_index_.emplace(t.ticket, i);
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<EvalTicket> ShaJointSearch::start() {
  if (started_) throw std::logic_error("ShaJointSearch::start: already started");
  started_ = true;
  if (cfg_.wall_time_seconds <= 0.0) {
    complete_ = true;
    return {};
  }
  sample_bracket();
  return emit_rung();
}

std::vector<EvalTicket> ShaJointSearch::step(const std::vector<EvalDone>& done,
                                             double now) {
  if (!started_) throw std::logic_error("ShaJointSearch::step before start");
  if (complete_) return {};
  const bool full = rung_ + 1 == cfg_.rungs;
  for (const auto& d : done) {
    const auto it = ticket_index_.find(d.ticket);
    if (it == ticket_index_.end()) {
      throw std::logic_error("ShaJointSearch::step: unknown ticket " +
                             std::to_string(d.ticket));
    }
    const std::size_t idx = it->second;
    ticket_index_.erase(it);
    outstanding_.erase(d.ticket);
    scores_[idx] = d.failed ? 0.0 : d.objective;
    ++collected_;
    if (full && d.finish_time <= cfg_.wall_time_seconds) {
      EvalRecord rec;
      rec.index = history_.size();
      rec.finish_time = d.finish_time;
      rec.objective = scores_[idx];
      rec.train_seconds = d.train_seconds;
      rec.failed = d.failed;
      rec.attempts = d.attempts;
      rec.degraded = d.degraded;
      rec.final_world = d.final_world;
      rec.config = survivors_[idx];
      history_.push_back(rec);
    }
  }
  // The rung barrier the paper criticizes: nothing new is emitted until
  // every job of the rung has landed.
  if (collected_ < survivors_.size()) return {};

  if (full) {
    // Bracket finished at full fidelity; budget permitting, start another.
    if (now >= cfg_.wall_time_seconds) {
      complete_ = true;
      return {};
    }
    sample_bracket();
    return emit_rung();
  }

  // Promote the top 1/eta to the next rung.
  const auto order = argsort_desc(scores_);
  const std::size_t keep = std::max<std::size_t>(1, survivors_.size() / cfg_.eta);
  std::vector<eval::ModelConfig> next;
  next.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    next.push_back(std::move(survivors_[order[i]]));
  }
  survivors_ = std::move(next);
  rung_ += 1;
  if (now >= cfg_.wall_time_seconds) {
    complete_ = true;
    return {};
  }
  return emit_rung();
}

SearchResult ShaJointSearch::result() const {
  SearchResult r;
  r.history = history_;
  finalize_result(r);
  return r;
}

SearchResult ShaJointSearch::run() {
  if (executor_ == nullptr || evaluator_ == nullptr) {
    throw std::logic_error("ShaJointSearch::run: constructed in pump mode");
  }
  std::unordered_map<std::uint64_t, std::uint64_t> job_to_ticket;
  auto submit_tickets = [&](const std::vector<EvalTicket>& tickets) {
    for (const auto& t : tickets) {
      eval::Evaluator* evaluator = evaluator_;
      exec::JobSpec spec;
      spec.tag = t.tag;
      const eval::ModelConfig config = t.config;
      const double fidelity = t.fidelity;
      const std::uint64_t id = executor_->submit(
          [evaluator, config, fidelity] {
            return evaluator->evaluate(eval::EvalRequest{config, fidelity});
          },
          spec);
      job_to_ticket[id] = t.ticket;
    }
  };

  submit_tickets(start());
  while (!complete_) {
    const auto finished = executor_->get_finished(true);
    if (finished.empty()) break;  // executor drained unexpectedly
    std::vector<EvalDone> done;
    done.reserve(finished.size());
    for (const auto& f : finished) {
      EvalDone d;
      d.ticket = job_to_ticket.at(f.id);
      job_to_ticket.erase(f.id);
      d.finish_time = f.finish_time;
      d.objective = f.output.objective;
      d.train_seconds = f.output.train_seconds;
      d.failed = f.output.failed;
      d.timed_out = f.output.timed_out;
      d.attempts = f.attempts;
      d.degraded = f.output.degraded;
      d.final_world = f.output.final_world;
      done.push_back(d);
    }
    submit_tickets(step(done, executor_->now()));
  }

  SearchResult res = result();
  res.utilization = executor_->utilization();
  return res;
}

namespace {
constexpr const char* kShaStateHeader = "sha-search v1";
}  // namespace

void ShaJointSearch::save_state(std::ostream& os) const {
  os.precision(17);
  os << kShaStateHeader << '\n';
  os << "fingerprint " << cfg_.bracket_size << ' ' << cfg_.eta << ' '
     << cfg_.rungs << ' ' << cfg_.hp_space.size() << ' '
     << cfg_.wall_time_seconds << '\n';
  state::write_rng(os, rng_.state());
  os << '\n';
  os << "next-ticket " << next_ticket_ << '\n';
  os << "started " << (started_ ? 1 : 0) << '\n';
  os << "complete " << (complete_ ? 1 : 0) << '\n';
  os << "rung " << rung_ << '\n';
  os << "collected " << collected_ << '\n';
  os << "survivors " << survivors_.size() << '\n';
  for (const auto& config : survivors_) {
    os << "config ";
    state::write_point(os, config.hparams);
    os << ' ';
    state::write_genome(os, config.genome);
    os << '\n';
  }
  os << "scores " << scores_.size();
  for (const double s : scores_) os << ' ' << s;
  os << '\n';
  os << "history " << history_.size() << '\n';
  for (const EvalRecord& rec : history_) {
    os << "row ";
    write_history_row(rec, os);
    os << '\n';
  }
  os << "outstanding " << outstanding_.size() << '\n';
  for (const auto& [id, t] : outstanding_) {
    os << "ticket " << id << ' ' << ticket_index_.at(id) << ' ' << t.fidelity
       << ' ' << state::encode_token(t.tag) << ' ';
    state::write_point(os, t.config.hparams);
    os << ' ';
    state::write_genome(os, t.config.genome);
    os << '\n';
  }
}

void ShaJointSearch::load_state(std::istream& is) {
  const std::string what = "ShaJointSearch::load_state";
  if (started_ || !history_.empty()) {
    throw std::logic_error(what + ": search already driven");
  }
  std::string line;
  if (!std::getline(is, line) || line != kShaStateHeader) {
    state::fail(what, "bad header");
  }
  state::expect_key(is, "fingerprint", what);
  std::size_t bracket = 0, eta = 0, rungs = 0, hp_dims = 0;
  double wall = 0.0;
  if (!(is >> bracket >> eta >> rungs >> hp_dims >> wall)) {
    state::fail(what, "truncated fingerprint");
  }
  if (bracket != cfg_.bracket_size || eta != cfg_.eta || rungs != cfg_.rungs ||
      hp_dims != cfg_.hp_space.size() || wall != cfg_.wall_time_seconds) {
    state::fail(what, "checkpoint was written by a differently-configured search");
  }
  rng_.set_state(state::read_rng(is, what));
  state::expect_key(is, "next-ticket", what);
  if (!(is >> next_ticket_)) state::fail(what, "truncated next-ticket");
  started_ = state::read_flag(is, "started", what);
  complete_ = state::read_flag(is, "complete", what);
  state::expect_key(is, "rung", what);
  if (!(is >> rung_)) state::fail(what, "truncated rung");
  state::expect_key(is, "collected", what);
  if (!(is >> collected_)) state::fail(what, "truncated collected");

  const std::size_t n_survivors = state::read_count(is, "survivors", what);
  survivors_.clear();
  for (std::size_t i = 0; i < n_survivors; ++i) {
    state::expect_key(is, "config", what);
    eval::ModelConfig config;
    config.hparams = state::read_point(is, what);
    config.genome = state::read_genome(is, what);
    space_->validate(config.genome);
    survivors_.push_back(std::move(config));
  }

  const std::size_t n_scores = state::read_count(is, "scores", what);
  scores_.assign(n_scores, 0.0);
  for (double& s : scores_) {
    if (!(is >> s)) state::fail(what, "truncated scores");
  }

  const std::size_t n_hist = state::read_count(is, "history", what);
  history_.clear();
  for (std::size_t i = 0; i < n_hist; ++i) {
    state::expect_key(is, "row", what);
    std::string row;
    if (!(is >> row)) state::fail(what, "truncated history row");
    history_.push_back(parse_history_row(
        row, *space_, history_row_format(row, "checkpoint"),
        "checkpoint row " + std::to_string(i)));
  }

  const std::size_t n_out = state::read_count(is, "outstanding", what);
  outstanding_.clear();
  ticket_index_.clear();
  for (std::size_t i = 0; i < n_out; ++i) {
    state::expect_key(is, "ticket", what);
    EvalTicket t;
    std::size_t idx = 0;
    std::string tag;
    if (!(is >> t.ticket >> idx >> t.fidelity >> tag)) {
      state::fail(what, "truncated ticket");
    }
    t.tag = state::decode_token(tag);
    t.config.hparams = state::read_point(is, what);
    t.config.genome = state::read_genome(is, what);
    ticket_index_.emplace(t.ticket, idx);
    const std::uint64_t id = t.ticket;
    outstanding_.emplace(id, std::move(t));
  }
}

}  // namespace agebo::core
