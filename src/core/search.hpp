// Algorithm 1 of the paper: aging evolution (AgE) over the architecture
// space, optionally joined with asynchronous Bayesian optimization (AgEBO)
// over the data-parallel-training hyperparameters.
//
// The search runs as the manager of a manager-worker system: it submits
// evaluations through a non-blocking Executor, collects finished results,
// ages the population, tells the BO optimizer, and generates |results| new
// (architecture, hyperparameter) pairs per iteration. AgE is the
// use_bo=false degenerate case with fixed hyperparameters (the black lines
// of Algorithm 1); AgEBO adds the blue lines. Partial variants
// (AgEBO-8-LR, AgEBO-8-LR-BS) are expressed by freezing dimensions of the
// hyperparameter space to single-value categoricals (see variants.hpp).
//
// Two driving modes (DESIGN.md §14):
//
//  - run(): the classic owning loop — the search holds an Executor and
//    pumps it to completion itself. Single-campaign CLIs use this.
//  - pump: start()/step() expose the same algorithm as a non-blocking
//    state machine producing EvalTickets and consuming EvalDones, so an
//    external scheduler (the campaign service's CampaignRegistry) can
//    multiplex many searches onto one shared executor and checkpoint the
//    whole search state (save_state/load_state) between steps. run() is
//    implemented on top of the pump, so both modes share one algorithm.
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bo/optimizer.hpp"
#include "bo/sharded_optimizer.hpp"
#include "eval/evaluation.hpp"
#include "exec/executor.hpp"
#include "nas/search_space.hpp"
#include "obs/registry.hpp"

namespace agebo::core {

/// One completed evaluation in completion order.
struct EvalRecord {
  std::size_t index = 0;
  double finish_time = 0.0;     ///< executor seconds
  double objective = 0.0;       ///< validation accuracy (0 when failed)
  double train_seconds = 0.0;
  /// True when every attempt crashed or was killed (retries exhausted).
  /// Failed records stay in the history — failure is information the BO
  /// surrogate should see — but are never aged into the population.
  bool failed = false;
  /// Executor attempts consumed (1 = no retries).
  std::size_t attempts = 1;
  /// True when the evaluation survived replica loss through elastic
  /// reconfiguration (DESIGN.md §16): still a success, but produced at a
  /// smaller world size than requested.
  bool degraded = false;
  /// Data-parallel world size the evaluation finished with (0 = unknown).
  std::size_t final_world = 0;
  eval::ModelConfig config;
};

/// One evaluation a pumped search wants scheduled. The driver owns the
/// executor: it turns tickets into submissions (at whatever time admission
/// control allows) and feeds the completions back as EvalDones. `ticket`
/// is a search-local id — never an executor job id — so a search can be
/// checkpointed and its outstanding work resubmitted by a later process.
struct EvalTicket {
  std::uint64_t ticket = 0;
  eval::ModelConfig config;
  /// Training-budget fraction (successive halving rungs); 1 = full.
  double fidelity = 1.0;
  /// JobSpec fields the search decides per evaluation.
  std::size_t width = 1;
  double timeout_seconds = 0.0;
  std::size_t max_retries = 0;
  std::string tag;
};

/// One completed evaluation handed back to a pumped search.
/// `finish_time` is in the search's own clock (seconds since its start) —
/// the driver translates executor time before delivery.
struct EvalDone {
  std::uint64_t ticket = 0;
  double finish_time = 0.0;
  double objective = 0.0;
  double train_seconds = 0.0;
  bool failed = false;
  bool timed_out = false;
  std::size_t attempts = 1;
  bool degraded = false;
  std::size_t final_world = 0;
};

/// Population replacement policy. The paper uses aging (drop the oldest
/// member, which is what regularizes the evolution); kWorst is the classic
/// elitist alternative ablated in bench_ablations.
enum class Replacement { kAging, kWorst };

struct SearchConfig {
  std::size_t population_size = 100;  ///< P
  std::size_t sample_size = 10;       ///< S
  Replacement replacement = Replacement::kAging;
  /// Search wall-time budget in executor seconds (virtual in simulation).
  double wall_time_seconds = 180.0 * 60.0;
  /// Number of initial submissions (W workers each get one; defaults to
  /// the executor's worker count when 0).
  std::size_t initial_submissions = 0;
  bool use_bo = false;
  bo::ParamSpace hp_space;            ///< sampled/tuned when use_bo
  bo::BoConfig bo;                    ///< kappa etc.
  bo::Point fixed_hparams;            ///< used when !use_bo
  /// Decentralized BO (DESIGN.md §15): shard the optimizer into bo_shards
  /// per-worker-group optimizers exchanging tells via gossip. 0 keeps the
  /// single centralized optimizer; 1 runs the sharded machinery in its
  /// degenerate mode, which reproduces the centralized trajectory
  /// bit-for-bit. At >= 2 shards the per-shard optimizers default to the
  /// incremental-refit + qUCB fast path (unless the BoConfig was
  /// explicitly overridden).
  std::size_t bo_shards = 0;
  /// Local tells between gossip merges (ShardedBoConfig::gossip_every).
  /// 4 is the empirical sweet spot on the simulated campaigns: frequent
  /// enough that no shard starves for global history, infrequent enough
  /// that shards keep distinct search trajectories.
  std::size_t bo_gossip_every = 4;
  /// Pure random search over H_a (children never mutate the population) —
  /// a sanity baseline for the ablation benches.
  bool random_search = false;
  /// Number of workers one evaluation occupies (gang width) as a function
  /// of its configuration; default 1 (the paper's single-node training).
  /// The multinode extension maps n > 8 processes to ceil(n/8) nodes.
  std::function<std::size_t(const eval::ModelConfig&)> width_fn;
  /// Per-evaluation kill deadline in executor seconds (JobSpec::timeout);
  /// 0 disables. Executor-level straggler policy applies regardless.
  double eval_timeout_seconds = 0.0;
  /// Resubmissions of a crashed/killed evaluation before it is recorded as
  /// failed (JobSpec::max_retries).
  std::size_t eval_max_retries = 0;
  /// Invoked on the manager thread for every completed evaluation, in
  /// completion order — progress streaming for CLIs and dashboards.
  std::function<void(const EvalRecord&)> on_result;
  /// Prior evaluations (e.g. loaded via core::load_history from an earlier
  /// run on a related dataset) used to seed the population and the BO
  /// surrogate before any new evaluation — transfer/warm-start search, the
  /// paper's future-work item (3). Records with hyperparameters outside
  /// hp_space seed only the population.
  std::vector<EvalRecord> warm_start;
  std::uint64_t seed = 1;
};

struct SearchResult {
  std::vector<EvalRecord> history;
  double best_objective = 0.0;
  std::size_t best_index = 0;  ///< into history
  exec::Utilization utilization;

  const EvalRecord& best() const { return history.at(best_index); }
};

/// Fill best_index/best_objective from result.history (utilization is the
/// caller's). Shared by both searchers and the campaign service.
void finalize_result(SearchResult& result);

class AgeboSearch {
 public:
  /// Pump mode: no executor — the caller drives via start()/step().
  AgeboSearch(const nas::SearchSpace& space, SearchConfig cfg);

  /// Owning mode: run() pumps `executor` itself.
  AgeboSearch(const nas::SearchSpace& space, eval::Evaluator& evaluator,
              exec::Executor& executor, SearchConfig cfg);

  /// Run until the wall-time budget is exhausted; returns the history.
  SearchResult run();

  // --- Pump API (DESIGN.md §14) -------------------------------------
  // start() applies the warm start and emits the initial `n_init`
  // tickets (cfg.initial_submissions when 0; one per worker is the
  // owning-mode default). step() ingests completions — completions past
  // the wall-time budget are dropped exactly as in run() — and returns
  // one child ticket per recorded completion, or nothing once the budget
  // is exhausted. Both consume the search rng in the same order as
  // run(), so a pumped search over the same completion sequence produces
  // the identical trajectory.

  std::vector<EvalTicket> start(std::size_t n_init);
  std::vector<EvalTicket> step(const std::vector<EvalDone>& done, double now);
  bool started() const { return started_; }
  /// True once `now` has passed the wall-time budget: no further tickets.
  bool budget_exhausted(double now) const {
    return now >= cfg_.wall_time_seconds;
  }
  double wall_time_seconds() const { return cfg_.wall_time_seconds; }
  /// Tickets issued but not yet delivered back (keyed by ticket id) — what
  /// a resumed service must resubmit when the executor could not snapshot.
  const std::map<std::uint64_t, EvalTicket>& outstanding() const {
    return outstanding_;
  }
  const std::vector<EvalRecord>& history() const { return history_; }
  /// History + best so far; utilization left default (the driver owns the
  /// executor and fills it in).
  SearchResult result() const;

  /// Serialize the complete mutable search state — rng, population,
  /// history, outstanding tickets, BO tell log — in the line-oriented
  /// checkpoint dialect (DESIGN.md §14). load_state restores into a
  /// freshly constructed search with the same space and config (a
  /// fingerprint line guards against mismatches) before start()/step()
  /// have been called. Throws std::runtime_error on malformed input.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  struct Member {
    nas::Genome genome;
    double objective;
  };

  eval::ModelConfig make_child(const std::vector<bo::Point>& next,
                               std::size_t i);
  EvalTicket make_ticket(eval::ModelConfig config);
  void apply_warm_start();
  void ingest(const EvalDone& done, const eval::ModelConfig& config,
              std::vector<bo::Point>& told_points,
              std::vector<double>& told_objectives);

  const nas::SearchSpace* space_;
  eval::Evaluator* evaluator_ = nullptr;   // owning mode only
  exec::Executor* executor_ = nullptr;     // owning mode only
  SearchConfig cfg_;
  Rng rng_;
  std::optional<bo::AskTellOptimizer> optimizer_;
  std::unique_ptr<bo::ShardedBo> sharded_;  // cfg.bo_shards > 0
  /// Shard that asked each outstanding ticket's hyperparameters — its
  /// completion is told back to the same shard (sharded mode only).
  std::map<std::uint64_t, std::size_t> ticket_shard_;
  std::deque<Member> population_;
  std::vector<EvalRecord> history_;
  std::map<std::uint64_t, EvalTicket> outstanding_;
  std::uint64_t next_ticket_ = 1;
  bool started_ = false;
  double best_so_far_ = 0.0;

  // Search-level metrics (DESIGN.md §10): evaluation counts, the running
  // best objective, and the cost of AgE mutations.
  obs::Counter m_evals_;
  obs::Counter m_evals_failed_;
  obs::Gauge m_best_;
  obs::Histogram m_mutate_hist_;
};

}  // namespace agebo::core
