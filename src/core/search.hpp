// Algorithm 1 of the paper: aging evolution (AgE) over the architecture
// space, optionally joined with asynchronous Bayesian optimization (AgEBO)
// over the data-parallel-training hyperparameters.
//
// The search runs as the manager of a manager-worker system: it submits
// evaluations through a non-blocking Executor, collects finished results,
// ages the population, tells the BO optimizer, and generates |results| new
// (architecture, hyperparameter) pairs per iteration. AgE is the
// use_bo=false degenerate case with fixed hyperparameters (the black lines
// of Algorithm 1); AgEBO adds the blue lines. Partial variants
// (AgEBO-8-LR, AgEBO-8-LR-BS) are expressed by freezing dimensions of the
// hyperparameter space to single-value categoricals (see variants.hpp).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "bo/optimizer.hpp"
#include "eval/evaluation.hpp"
#include "exec/executor.hpp"
#include "nas/search_space.hpp"
#include "obs/registry.hpp"

namespace agebo::core {

/// One completed evaluation in completion order.
struct EvalRecord {
  std::size_t index = 0;
  double finish_time = 0.0;     ///< executor seconds
  double objective = 0.0;       ///< validation accuracy (0 when failed)
  double train_seconds = 0.0;
  /// True when every attempt crashed or was killed (retries exhausted).
  /// Failed records stay in the history — failure is information the BO
  /// surrogate should see — but are never aged into the population.
  bool failed = false;
  /// Executor attempts consumed (1 = no retries).
  std::size_t attempts = 1;
  eval::ModelConfig config;
};

/// Population replacement policy. The paper uses aging (drop the oldest
/// member, which is what regularizes the evolution); kWorst is the classic
/// elitist alternative ablated in bench_ablations.
enum class Replacement { kAging, kWorst };

struct SearchConfig {
  std::size_t population_size = 100;  ///< P
  std::size_t sample_size = 10;       ///< S
  Replacement replacement = Replacement::kAging;
  /// Search wall-time budget in executor seconds (virtual in simulation).
  double wall_time_seconds = 180.0 * 60.0;
  /// Number of initial submissions (W workers each get one; defaults to
  /// the executor's worker count when 0).
  std::size_t initial_submissions = 0;
  bool use_bo = false;
  bo::ParamSpace hp_space;            ///< sampled/tuned when use_bo
  bo::BoConfig bo;                    ///< kappa etc.
  bo::Point fixed_hparams;            ///< used when !use_bo
  /// Pure random search over H_a (children never mutate the population) —
  /// a sanity baseline for the ablation benches.
  bool random_search = false;
  /// Number of workers one evaluation occupies (gang width) as a function
  /// of its configuration; default 1 (the paper's single-node training).
  /// The multinode extension maps n > 8 processes to ceil(n/8) nodes.
  std::function<std::size_t(const eval::ModelConfig&)> width_fn;
  /// Per-evaluation kill deadline in executor seconds (JobSpec::timeout);
  /// 0 disables. Executor-level straggler policy applies regardless.
  double eval_timeout_seconds = 0.0;
  /// Resubmissions of a crashed/killed evaluation before it is recorded as
  /// failed (JobSpec::max_retries).
  std::size_t eval_max_retries = 0;
  /// Invoked on the manager thread for every completed evaluation, in
  /// completion order — progress streaming for CLIs and dashboards.
  std::function<void(const EvalRecord&)> on_result;
  /// Prior evaluations (e.g. loaded via core::load_history from an earlier
  /// run on a related dataset) used to seed the population and the BO
  /// surrogate before any new evaluation — transfer/warm-start search, the
  /// paper's future-work item (3). Records with hyperparameters outside
  /// hp_space seed only the population.
  std::vector<EvalRecord> warm_start;
  std::uint64_t seed = 1;
};

struct SearchResult {
  std::vector<EvalRecord> history;
  double best_objective = 0.0;
  std::size_t best_index = 0;  ///< into history
  exec::Utilization utilization;

  const EvalRecord& best() const { return history.at(best_index); }
};

class AgeboSearch {
 public:
  AgeboSearch(const nas::SearchSpace& space, eval::Evaluator& evaluator,
              exec::Executor& executor, SearchConfig cfg);

  /// Run until the wall-time budget is exhausted; returns the history.
  SearchResult run();

 private:
  struct Member {
    nas::Genome genome;
    double objective;
  };

  eval::ModelConfig make_child(const std::vector<bo::Point>& next,
                               std::size_t i);
  void submit(eval::ModelConfig config);

  const nas::SearchSpace* space_;
  eval::Evaluator* evaluator_;
  exec::Executor* executor_;
  SearchConfig cfg_;
  Rng rng_;
  std::optional<bo::AskTellOptimizer> optimizer_;
  std::deque<Member> population_;
  std::vector<eval::ModelConfig> pending_;  // indexed by job id - 1

  // Search-level metrics (DESIGN.md §10): evaluation counts, the running
  // best objective, and the cost of AgE mutations.
  obs::Counter m_evals_;
  obs::Counter m_evals_failed_;
  obs::Gauge m_best_;
  obs::Histogram m_mutate_hist_;
};

}  // namespace agebo::core
