// Search-history persistence: export a campaign's evaluation stream to CSV
// (for plotting or post-hoc analysis, LCBench-style) and load it back —
// which also enables warm-starting a new search from a previous run
// (SearchConfig::warm_start), the paper's "reuse knowledge from previous
// experimental runs" future-work item.
//
// CSV columns: index, finish_time, objective, train_seconds, failed,
//              attempts, degraded, final_world, bs1, lr1, n,
//              genome ('-'-separated decisions).
// Two older column sets still load: the fault-era format without the
// elastic degraded/final_world columns (degraded=0, final_world=0
// assumed), and the pre-fault-layer format additionally without
// failed/attempts (failed=0, attempts=1 assumed).
//
// Loading is strict: a malformed or truncated row (short row, trailing
// cells, non-numeric field, bad genome token) raises std::runtime_error
// naming the offending line — the warm-start seam must not silently skip
// or half-parse records (DESIGN.md §14). The row-level helpers are shared
// with the campaign checkpoint format (src/svc/checkpoint).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/search.hpp"

namespace agebo::core {

void save_history(const SearchResult& result, std::ostream& os);
void save_history_file(const SearchResult& result, const std::string& path);

/// One CSV row (no trailing newline) in the current header's column order.
void write_history_row(const EvalRecord& rec, std::ostream& os);

/// The three column generations a history row can carry.
enum class HistoryFormat {
  kCurrent,  ///< failed/attempts + elastic degraded/final_world columns
  kFaultV2,  ///< failed/attempts, no elastic columns (pre-elastic releases)
  kLegacy,   ///< neither (pre-fault-layer releases)
};

/// Column generation of a data row, detected from its comma count (the
/// genome field never contains commas). Used by the checkpoint loader so
/// campaign checkpoints written by older releases keep resuming. Throws
/// std::runtime_error when the count matches no known generation.
HistoryFormat history_row_format(const std::string& line,
                                 const std::string& what);

/// Parses one data row of the given column generation; `what` names the
/// row in error messages (e.g. "line 3"). Genomes are validated against
/// `space`. Throws std::runtime_error on any malformed, truncated, or
/// trailing-cell row.
EvalRecord parse_history_row(const std::string& line,
                             const nas::SearchSpace& space,
                             HistoryFormat format, const std::string& what);

/// Loads evaluation records written by save_history. Genomes are validated
/// against `space`; throws std::runtime_error on malformed rows.
std::vector<EvalRecord> load_history(std::istream& is,
                                     const nas::SearchSpace& space);
std::vector<EvalRecord> load_history_file(const std::string& path,
                                          const nas::SearchSpace& space);

}  // namespace agebo::core
