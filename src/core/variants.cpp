#include "core/variants.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace agebo::core {

SearchConfig paper_defaults(std::uint64_t seed) {
  SearchConfig cfg;
  cfg.population_size = 100;
  cfg.sample_size = 10;
  cfg.wall_time_seconds = 180.0 * 60.0;
  cfg.bo.kappa = 0.001;
  cfg.seed = seed;
  return cfg;
}

SearchConfig age_config(std::size_t n_procs, std::uint64_t seed) {
  SearchConfig cfg = paper_defaults(seed);
  cfg.use_bo = false;
  cfg.fixed_hparams = eval::default_hparams(n_procs);
  return cfg;
}

SearchConfig agebo_config(std::uint64_t seed, double kappa) {
  SearchConfig cfg = paper_defaults(seed);
  cfg.use_bo = true;
  cfg.bo.kappa = kappa;
  cfg.hp_space = bo::ParamSpace::paper_space();
  return cfg;
}

SearchConfig agebo_8_lr_config(std::uint64_t seed) {
  SearchConfig cfg = paper_defaults(seed);
  cfg.use_bo = true;
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {256})
                     .add_real("learning_rate", 0.001, 0.1, /*log_scale=*/true)
                     .add_categorical("n_processes", {8});
  return cfg;
}

SearchConfig agebo_8_lr_bs_config(std::uint64_t seed) {
  SearchConfig cfg = paper_defaults(seed);
  cfg.use_bo = true;
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {32, 64, 128, 256, 512, 1024})
                     .add_real("learning_rate", 0.001, 0.1, /*log_scale=*/true)
                     .add_categorical("n_processes", {8});
  return cfg;
}

SearchConfig random_search_config(std::size_t n_procs, std::uint64_t seed) {
  SearchConfig cfg = age_config(n_procs, seed);
  cfg.random_search = true;
  return cfg;
}

SearchConfig agebo_multinode_config(std::uint64_t seed,
                                    std::size_t procs_per_node) {
  SearchConfig cfg = paper_defaults(seed);
  cfg.use_bo = true;
  cfg.hp_space = bo::ParamSpace{}
                     .add_categorical("batch_size", {32, 64, 128, 256, 512, 1024})
                     .add_real("learning_rate", 0.001, 0.1, /*log_scale=*/true)
                     .add_categorical("n_processes", {1, 2, 4, 8, 16, 32, 64});
  cfg.width_fn = [procs_per_node](const eval::ModelConfig& config) {
    const auto n = static_cast<std::size_t>(config.hparams.at(2));
    return (n + procs_per_node - 1) / procs_per_node;
  };
  return cfg;
}

SearchConfig config_by_name(const std::string& variant, std::uint64_t seed,
                            double kappa) {
  if (variant == "agebo") return agebo_config(seed, kappa);
  if (variant == "agebo-8-lr") return agebo_8_lr_config(seed);
  if (variant == "agebo-8-lr-bs") return agebo_8_lr_bs_config(seed);
  if (variant == "agebo-multinode") return agebo_multinode_config(seed);
  if (variant.rfind("agebo-d", 0) == 0) {
    const int n = std::atoi(variant.c_str() + 7);
    if (n > 0) {
      SearchConfig cfg = agebo_config(seed, kappa);
      cfg.bo_shards = static_cast<std::size_t>(n);
      return cfg;
    }
  }
  if (variant.rfind("age-", 0) == 0) {
    const int n = std::atoi(variant.c_str() + 4);
    if (n > 0) return age_config(static_cast<std::size_t>(n), seed);
  }
  if (variant.rfind("rs-", 0) == 0) {
    const int n = std::atoi(variant.c_str() + 3);
    if (n > 0) return random_search_config(static_cast<std::size_t>(n), seed);
  }
  throw std::invalid_argument("unknown search variant \"" + variant + "\"");
}

std::string variant_name(const SearchConfig& cfg) {
  if (cfg.random_search) {
    return "RS-" + std::to_string(static_cast<long>(cfg.fixed_hparams.at(2)));
  }
  if (!cfg.use_bo) {
    std::ostringstream os;
    os << "AgE-" << static_cast<long>(cfg.fixed_hparams.at(2));
    return os.str();
  }
  if (cfg.bo_shards > 0) {
    return "AgEBO-d" + std::to_string(cfg.bo_shards);
  }
  return "AgEBO";
}

}  // namespace agebo::core
