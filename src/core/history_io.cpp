#include "core/history_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::core {

namespace {

constexpr const char* kHeader =
    "index,finish_time,objective,train_seconds,failed,attempts,degraded,"
    "final_world,bs1,lr1,n,genome";
// Pre-elastic header (no degraded/final_world columns); still loadable so
// histories exported by earlier releases keep warm-starting searches.
constexpr const char* kFaultV2Header =
    "index,finish_time,objective,train_seconds,failed,attempts,bs1,lr1,n,genome";
// Pre-fault-layer header (additionally no failed/attempts columns).
constexpr const char* kLegacyHeader =
    "index,finish_time,objective,train_seconds,bs1,lr1,n,genome";

// Cells per data row of each generation (genomes contain no commas).
constexpr std::size_t kCurrentCells = 12;
constexpr std::size_t kFaultV2Cells = 10;
constexpr std::size_t kLegacyCells = 8;

std::string genome_field(const nas::Genome& g) {
  std::ostringstream os;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (i) os << '-';
    os << g[i];
  }
  return os.str();
}

nas::Genome parse_genome(const std::string& field, const std::string& what) {
  nas::Genome g;
  std::istringstream is(field);
  std::string token;
  while (std::getline(is, token, '-')) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(token, &used);
    } catch (const std::exception&) {
      throw std::runtime_error("load_history: " + what + ": bad genome token \"" +
                               token + "\"");
    }
    if (used != token.size()) {
      throw std::runtime_error("load_history: " + what + ": bad genome token \"" +
                               token + "\"");
    }
    g.push_back(value);
  }
  if (g.empty()) {
    throw std::runtime_error("load_history: " + what + ": empty genome field");
  }
  return g;
}

double parse_double(const std::string& cell, const std::string& what,
                    const char* field) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &used);
  } catch (const std::exception&) {
    throw std::runtime_error("load_history: " + what + ": non-numeric " + field +
                             " \"" + cell + "\"");
  }
  if (used != cell.size()) {
    throw std::runtime_error("load_history: " + what + ": non-numeric " + field +
                             " \"" + cell + "\"");
  }
  return value;
}

std::size_t parse_size(const std::string& cell, const std::string& what,
                       const char* field) {
  std::size_t used = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(cell, &used);
  } catch (const std::exception&) {
    throw std::runtime_error("load_history: " + what + ": non-numeric " + field +
                             " \"" + cell + "\"");
  }
  if (used != cell.size()) {
    throw std::runtime_error("load_history: " + what + ": non-numeric " + field +
                             " \"" + cell + "\"");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

void write_history_row(const EvalRecord& rec, std::ostream& os) {
  os << rec.index << ',' << rec.finish_time << ',' << rec.objective << ','
     << rec.train_seconds << ',' << (rec.failed ? 1 : 0) << ',' << rec.attempts
     << ',' << (rec.degraded ? 1 : 0) << ',' << rec.final_world << ',';
  if (rec.config.hparams.size() == 3) {
    os << rec.config.hparams[0] << ',' << rec.config.hparams[1] << ','
       << rec.config.hparams[2];
  } else {
    os << ",,";
  }
  os << ',' << genome_field(rec.config.genome);
}

void save_history(const SearchResult& result, std::ostream& os) {
  os << kHeader << '\n';
  // max_digits10 so doubles round-trip exactly.
  os.precision(17);
  for (const auto& rec : result.history) {
    write_history_row(rec, os);
    os << '\n';
  }
}

void save_history_file(const SearchResult& result, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_history_file: cannot open " + path);
  save_history(result, os);
}

HistoryFormat history_row_format(const std::string& line,
                                 const std::string& what) {
  const std::size_t cells =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1;
  switch (cells) {
    case kCurrentCells:
      return HistoryFormat::kCurrent;
    case kFaultV2Cells:
      return HistoryFormat::kFaultV2;
    case kLegacyCells:
      return HistoryFormat::kLegacy;
    default:
      throw std::runtime_error("load_history: " + what + ": row has " +
                               std::to_string(cells) +
                               " cells, matching no known format: " + line);
  }
}

EvalRecord parse_history_row(const std::string& line,
                             const nas::SearchSpace& space,
                             HistoryFormat format, const std::string& what) {
  std::istringstream ls(line);
  std::string cell;
  EvalRecord rec;
  auto next = [&](const char* field) -> std::string {
    if (!std::getline(ls, cell, ',')) {
      throw std::runtime_error("load_history: " + what +
                               ": truncated row (missing " + field + "): " +
                               line);
    }
    return cell;
  };
  rec.index = parse_size(next("index"), what, "index");
  rec.finish_time = parse_double(next("finish_time"), what, "finish_time");
  rec.objective = parse_double(next("objective"), what, "objective");
  rec.train_seconds =
      parse_double(next("train_seconds"), what, "train_seconds");
  if (format != HistoryFormat::kLegacy) {
    rec.failed = parse_size(next("failed"), what, "failed") != 0;
    rec.attempts = parse_size(next("attempts"), what, "attempts");
  }
  if (format == HistoryFormat::kCurrent) {
    rec.degraded = parse_size(next("degraded"), what, "degraded") != 0;
    rec.final_world = parse_size(next("final_world"), what, "final_world");
  }
  const std::string bs = next("bs1");
  const std::string lr = next("lr1");
  const std::string n = next("n");
  if (!bs.empty() || !lr.empty() || !n.empty()) {
    if (bs.empty() || lr.empty() || n.empty()) {
      throw std::runtime_error("load_history: " + what +
                               ": partial hyperparameter columns: " + line);
    }
    rec.config.hparams = {parse_double(bs, what, "bs1"),
                          parse_double(lr, what, "lr1"),
                          parse_double(n, what, "n")};
  }
  rec.config.genome = parse_genome(next("genome"), what);
  if (std::getline(ls, cell, ',')) {
    throw std::runtime_error("load_history: " + what +
                             ": trailing cells past the genome: " + line);
  }
  try {
    space.validate(rec.config.genome);
  } catch (const std::exception& e) {
    throw std::runtime_error("load_history: " + what + ": " + e.what());
  }
  return rec;
}

std::vector<EvalRecord> load_history(std::istream& is,
                                     const nas::SearchSpace& space) {
  std::string line;
  if (!std::getline(is, line) ||
      (line != kHeader && line != kFaultV2Header && line != kLegacyHeader)) {
    throw std::runtime_error("load_history: bad header");
  }
  const HistoryFormat format = line == kHeader ? HistoryFormat::kCurrent
                               : line == kFaultV2Header
                                   ? HistoryFormat::kFaultV2
                                   : HistoryFormat::kLegacy;
  std::vector<EvalRecord> out;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    out.push_back(parse_history_row(line, space, format,
                                    "line " + std::to_string(line_no)));
  }
  return out;
}

std::vector<EvalRecord> load_history_file(const std::string& path,
                                          const nas::SearchSpace& space) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_history_file: cannot open " + path);
  return load_history(is, space);
}

}  // namespace agebo::core
