#include "core/history_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::core {

namespace {

constexpr const char* kHeader =
    "index,finish_time,objective,train_seconds,failed,attempts,bs1,lr1,n,genome";
// Pre-fault-layer header (no failed/attempts columns); still loadable so
// histories exported by earlier releases keep warm-starting searches.
constexpr const char* kLegacyHeader =
    "index,finish_time,objective,train_seconds,bs1,lr1,n,genome";

std::string genome_field(const nas::Genome& g) {
  std::ostringstream os;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (i) os << '-';
    os << g[i];
  }
  return os.str();
}

nas::Genome parse_genome(const std::string& field) {
  nas::Genome g;
  std::istringstream is(field);
  std::string token;
  while (std::getline(is, token, '-')) {
    g.push_back(std::stoi(token));
  }
  return g;
}

}  // namespace

void save_history(const SearchResult& result, std::ostream& os) {
  os << kHeader << '\n';
  // max_digits10 so doubles round-trip exactly.
  os.precision(17);
  for (const auto& rec : result.history) {
    os << rec.index << ',' << rec.finish_time << ',' << rec.objective << ','
       << rec.train_seconds << ',' << (rec.failed ? 1 : 0) << ','
       << rec.attempts << ',';
    if (rec.config.hparams.size() == 3) {
      os << rec.config.hparams[0] << ',' << rec.config.hparams[1] << ','
         << rec.config.hparams[2];
    } else {
      os << ",,";
    }
    os << ',' << genome_field(rec.config.genome) << '\n';
  }
}

void save_history_file(const SearchResult& result, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_history_file: cannot open " + path);
  save_history(result, os);
}

std::vector<EvalRecord> load_history(std::istream& is,
                                     const nas::SearchSpace& space) {
  std::string line;
  if (!std::getline(is, line) || (line != kHeader && line != kLegacyHeader)) {
    throw std::runtime_error("load_history: bad header");
  }
  const bool legacy = line == kLegacyHeader;
  std::vector<EvalRecord> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    EvalRecord rec;
    auto next = [&]() -> std::string {
      if (!std::getline(ls, cell, ',')) {
        throw std::runtime_error("load_history: short row: " + line);
      }
      return cell;
    };
    rec.index = static_cast<std::size_t>(std::stoull(next()));
    rec.finish_time = std::stod(next());
    rec.objective = std::stod(next());
    rec.train_seconds = std::stod(next());
    if (!legacy) {
      rec.failed = std::stoi(next()) != 0;
      rec.attempts = static_cast<std::size_t>(std::stoull(next()));
    }
    const std::string bs = next();
    const std::string lr = next();
    const std::string n = next();
    if (!bs.empty()) {
      rec.config.hparams = {std::stod(bs), std::stod(lr), std::stod(n)};
    }
    rec.config.genome = parse_genome(next());
    space.validate(rec.config.genome);
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<EvalRecord> load_history_file(const std::string& path,
                                          const nas::SearchSpace& space) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_history_file: cannot open " + path);
  return load_history(is, space);
}

}  // namespace agebo::core
