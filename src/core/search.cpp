#include "core/search.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/span.hpp"

namespace agebo::core {

AgeboSearch::AgeboSearch(const nas::SearchSpace& space,
                         eval::Evaluator& evaluator, exec::Executor& executor,
                         SearchConfig cfg)
    : space_(&space),
      evaluator_(&evaluator),
      executor_(&executor),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed) {
  if (cfg_.population_size == 0 || cfg_.sample_size == 0) {
    throw std::invalid_argument("SearchConfig: P and S must be positive");
  }
  if (cfg_.sample_size > cfg_.population_size) {
    throw std::invalid_argument("SearchConfig: S > P");
  }
  if (cfg_.use_bo) {
    if (cfg_.hp_space.size() == 0) {
      throw std::invalid_argument("SearchConfig: use_bo without hp_space");
    }
    bo::BoConfig bo_cfg = cfg_.bo;
    bo_cfg.seed = cfg_.seed * 31 + 7;
    optimizer_.emplace(cfg_.hp_space, bo_cfg);
  } else if (cfg_.fixed_hparams.empty()) {
    throw std::invalid_argument("SearchConfig: fixed mode needs fixed_hparams");
  }
  auto& reg = obs::Registry::global();
  m_evals_ = reg.counter("search.evals");
  m_evals_failed_ = reg.counter("search.evals_failed");
  m_best_ = reg.gauge("search.best_objective");
  m_mutate_hist_ = reg.histogram("age.mutate_seconds");
}

void AgeboSearch::submit(eval::ModelConfig config) {
  eval::Evaluator* evaluator = evaluator_;
  exec::JobSpec spec;
  spec.width = cfg_.width_fn ? cfg_.width_fn(config) : 1;
  spec.timeout_seconds = cfg_.eval_timeout_seconds;
  spec.max_retries = cfg_.eval_max_retries;
  const std::uint64_t id = executor_->submit(
      [evaluator, config] {
        return evaluator->evaluate(eval::EvalRequest{config});
      },
      spec);
  if (pending_.size() < id) pending_.resize(id);
  pending_[id - 1] = std::move(config);
}

eval::ModelConfig AgeboSearch::make_child(const std::vector<bo::Point>& next,
                                          std::size_t i) {
  eval::ModelConfig child;
  if (cfg_.random_search) {
    child.genome = space_->random(rng_);
    child.hparams = cfg_.use_bo ? next[i] : cfg_.fixed_hparams;
    return child;
  }
  if (population_.size() >= cfg_.population_size) {
    // Lines 16-18: sample S members, pick the best, mutate one decision.
    const auto t0 = std::chrono::steady_clock::now();
    const auto idx =
        rng_.sample_without_replacement(population_.size(), cfg_.sample_size);
    std::size_t best = idx[0];
    for (std::size_t k : idx) {
      if (population_[k].objective > population_[best].objective) best = k;
    }
    child.genome = space_->mutate(population_[best].genome, rng_);
    m_mutate_hist_.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    // Line 20: random while the population is filling.
    child.genome = space_->random(rng_);
  }
  child.hparams = cfg_.use_bo ? next[i] : cfg_.fixed_hparams;
  return child;
}

SearchResult AgeboSearch::run() {
  obs::set_thread_lane("search.manager");
  SearchResult result;
  double best_so_far = 0.0;

  // Warm start: seed the population and BO surrogate with prior records.
  if (!cfg_.warm_start.empty()) {
    std::vector<bo::Point> prior_points;
    std::vector<double> prior_objectives;
    for (const auto& rec : cfg_.warm_start) {
      if (rec.failed) continue;  // failures carry no transferable signal
      space_->validate(rec.config.genome);
      population_.push_back(Member{rec.config.genome, rec.objective});
      while (population_.size() > cfg_.population_size) population_.pop_front();
      if (cfg_.use_bo && rec.config.hparams.size() == cfg_.hp_space.size()) {
        try {
          cfg_.hp_space.validate(rec.config.hparams);
          prior_points.push_back(rec.config.hparams);
          prior_objectives.push_back(rec.objective);
        } catch (const std::invalid_argument&) {
          // Outside this search's (possibly frozen) space: population only.
        }
      }
    }
    if (!prior_points.empty()) optimizer_->tell(prior_points, prior_objectives);
  }

  // Initialization (lines 3-7): W submissions. Without a warm start these
  // are random points; with a full warm-started population they are
  // mutations of its best members (make_child handles both).
  std::size_t n_init = cfg_.initial_submissions;
  if (n_init == 0) n_init = executor_->num_workers();
  std::vector<bo::Point> init_hp;
  if (cfg_.use_bo) init_hp = optimizer_->ask(n_init);
  for (std::size_t i = 0; i < n_init; ++i) {
    submit(make_child(init_hp, i));
  }

  // Main loop (lines 8-25).
  while (executor_->now() < cfg_.wall_time_seconds) {
    auto finished = executor_->get_finished(/*block=*/true);
    if (finished.empty()) break;  // nothing in flight: search exhausted

    std::vector<bo::Point> told_points;
    std::vector<double> told_objectives;
    std::size_t n_new = 0;
    for (const auto& f : finished) {
      if (f.finish_time > cfg_.wall_time_seconds) continue;  // past budget
      const eval::ModelConfig& config = pending_.at(f.id - 1);
      EvalRecord rec;
      rec.index = result.history.size();
      rec.finish_time = f.finish_time;
      rec.objective = f.output.failed ? 0.0 : f.output.objective;
      rec.train_seconds = f.output.train_seconds;
      rec.failed = f.output.failed;
      rec.attempts = f.attempts;
      rec.config = config;
      result.history.push_back(rec);
      m_evals_.inc();
      if (rec.failed) m_evals_failed_.inc();
      if (rec.objective > best_so_far) {
        best_so_far = rec.objective;
        m_best_.set(best_so_far);
        // Counter track in executor time: the population-best staircase
        // renders alongside the worker lanes in the Chrome trace.
        obs::record_counter_sample("search.best_objective", f.finish_time,
                                   best_so_far);
      }
      if (cfg_.on_result) cfg_.on_result(result.history.back());

      // Graceful degradation: an evaluation whose retries are exhausted is
      // recorded (failed=true) and told to the BO as objective 0 — the
      // penalty steers the surrogate away from e.g. timeout-prone
      // hyperparameters — but never enters the population, so evolution
      // keeps mutating genomes that actually trained.
      if (!rec.failed) {
        // Aging population: append, drop oldest beyond P (line 11). The
        // kWorst ablation drops the lowest-objective member instead.
        population_.push_back(Member{config.genome, rec.objective});
        while (population_.size() > cfg_.population_size) {
          if (cfg_.replacement == Replacement::kAging) {
            population_.pop_front();
          } else {
            auto worst = population_.begin();
            for (auto it = population_.begin(); it != population_.end(); ++it) {
              if (it->objective < worst->objective) worst = it;
            }
            population_.erase(worst);
          }
        }
      }

      told_points.push_back(config.hparams);
      told_objectives.push_back(rec.objective);
      ++n_new;
    }
    if (executor_->now() >= cfg_.wall_time_seconds) break;
    if (n_new == 0) continue;

    // Lines 12-13: tell/ask |results| hyperparameter configurations.
    std::vector<bo::Point> next;
    if (cfg_.use_bo) {
      optimizer_->tell(told_points, told_objectives);
      next = optimizer_->ask(n_new);
    }
    // Lines 14-23: generate and submit |results| children.
    for (std::size_t i = 0; i < n_new; ++i) submit(make_child(next, i));
    obs::record_counter_sample(
        "search.in_flight", executor_->now(),
        static_cast<double>(executor_->num_in_flight()));
  }

  result.utilization = executor_->utilization();
  if (!result.history.empty()) {
    result.best_index = 0;
    for (std::size_t i = 1; i < result.history.size(); ++i) {
      if (result.history[i].objective >
          result.history[result.best_index].objective) {
        result.best_index = i;
      }
    }
    result.best_objective = result.history[result.best_index].objective;
  }
  return result;
}

}  // namespace agebo::core
