#include "core/search.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "core/history_io.hpp"
#include "core/state_io.hpp"
#include "obs/span.hpp"

namespace agebo::core {

void finalize_result(SearchResult& result) {
  if (result.history.empty()) return;
  result.best_index = 0;
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    if (result.history[i].objective >
        result.history[result.best_index].objective) {
      result.best_index = i;
    }
  }
  result.best_objective = result.history[result.best_index].objective;
}

AgeboSearch::AgeboSearch(const nas::SearchSpace& space, SearchConfig cfg)
    : space_(&space), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.population_size == 0 || cfg_.sample_size == 0) {
    throw std::invalid_argument("SearchConfig: P and S must be positive");
  }
  if (cfg_.sample_size > cfg_.population_size) {
    throw std::invalid_argument("SearchConfig: S > P");
  }
  if (cfg_.use_bo) {
    if (cfg_.hp_space.size() == 0) {
      throw std::invalid_argument("SearchConfig: use_bo without hp_space");
    }
    bo::BoConfig bo_cfg = cfg_.bo;
    bo_cfg.seed = cfg_.seed * 31 + 7;
    if (cfg_.bo_shards > 0) {
      bo::ShardedBoConfig scfg;
      scfg.shards = cfg_.bo_shards;
      scfg.gossip_every = cfg_.bo_gossip_every;
      scfg.bo = bo_cfg;
      if (cfg_.bo_shards > 1) {
        // Decentralized fast path (DESIGN.md §15): at >= 2 shards the
        // legacy defaults (full refit, constant liar) are upgraded to the
        // incremental surrogate + qUCB batching — one cheap refit per
        // shard ask instead of one full-forest refit per picked point.
        // shards=1 keeps the legacy modes so its trajectory is bit-for-bit
        // the centralized one.
        if (scfg.bo.refit == bo::RefitMode::kFull) {
          scfg.bo.refit = bo::RefitMode::kIncremental;
        }
        if (scfg.bo.batch == bo::BatchMode::kConstantLiar) {
          scfg.bo.batch = bo::BatchMode::kQUcb;
        }
      }
      sharded_ = std::make_unique<bo::ShardedBo>(cfg_.hp_space, scfg);
    } else {
      optimizer_.emplace(cfg_.hp_space, bo_cfg);
    }
  } else if (cfg_.fixed_hparams.empty()) {
    throw std::invalid_argument("SearchConfig: fixed mode needs fixed_hparams");
  }
  auto& reg = obs::Registry::global();
  m_evals_ = reg.counter("search.evals");
  m_evals_failed_ = reg.counter("search.evals_failed");
  m_best_ = reg.gauge("search.best_objective");
  m_mutate_hist_ = reg.histogram("age.mutate_seconds");
}

AgeboSearch::AgeboSearch(const nas::SearchSpace& space,
                         eval::Evaluator& evaluator, exec::Executor& executor,
                         SearchConfig cfg)
    : AgeboSearch(space, std::move(cfg)) {
  evaluator_ = &evaluator;
  executor_ = &executor;
}

eval::ModelConfig AgeboSearch::make_child(const std::vector<bo::Point>& next,
                                          std::size_t i) {
  eval::ModelConfig child;
  if (cfg_.random_search) {
    child.genome = space_->random(rng_);
    child.hparams = cfg_.use_bo ? next[i] : cfg_.fixed_hparams;
    return child;
  }
  if (population_.size() >= cfg_.population_size) {
    // Lines 16-18: sample S members, pick the best, mutate one decision.
    const auto t0 = std::chrono::steady_clock::now();
    const auto idx =
        rng_.sample_without_replacement(population_.size(), cfg_.sample_size);
    std::size_t best = idx[0];
    for (std::size_t k : idx) {
      if (population_[k].objective > population_[best].objective) best = k;
    }
    child.genome = space_->mutate(population_[best].genome, rng_);
    m_mutate_hist_.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    // Line 20: random while the population is filling.
    child.genome = space_->random(rng_);
  }
  child.hparams = cfg_.use_bo ? next[i] : cfg_.fixed_hparams;
  return child;
}

EvalTicket AgeboSearch::make_ticket(eval::ModelConfig config) {
  EvalTicket t;
  t.ticket = next_ticket_++;
  t.width = cfg_.width_fn ? cfg_.width_fn(config) : 1;
  t.timeout_seconds = cfg_.eval_timeout_seconds;
  t.max_retries = cfg_.eval_max_retries;
  t.config = std::move(config);
  outstanding_.emplace(t.ticket, t);
  return t;
}

void AgeboSearch::apply_warm_start() {
  // Warm start: seed the population and BO surrogate with prior records.
  if (cfg_.warm_start.empty()) return;
  std::vector<bo::Point> prior_points;
  std::vector<double> prior_objectives;
  for (const auto& rec : cfg_.warm_start) {
    if (rec.failed) continue;  // failures carry no transferable signal
    space_->validate(rec.config.genome);
    population_.push_back(Member{rec.config.genome, rec.objective});
    while (population_.size() > cfg_.population_size) population_.pop_front();
    if (cfg_.use_bo && rec.config.hparams.size() == cfg_.hp_space.size()) {
      try {
        cfg_.hp_space.validate(rec.config.hparams);
        prior_points.push_back(rec.config.hparams);
        prior_objectives.push_back(rec.objective);
      } catch (const std::invalid_argument&) {
        // Outside this search's (possibly frozen) space: population only.
      }
    }
  }
  if (!prior_points.empty()) {
    if (sharded_) {
      // Warm-start tells land on shard 0 (one batched tell, exactly the
      // centralized call); at >= 2 shards gossip spreads them from there.
      for (std::size_t i = 0; i < prior_points.size(); ++i) {
        sharded_->enqueue_tell(0, prior_points[i], prior_objectives[i]);
      }
      sharded_->drain(0);
    } else {
      optimizer_->tell(prior_points, prior_objectives);
    }
  }
}

std::vector<EvalTicket> AgeboSearch::start(std::size_t n_init) {
  if (started_) throw std::logic_error("AgeboSearch::start: already started");
  started_ = true;
  apply_warm_start();

  // Initialization (lines 3-7): n_init submissions. Without a warm start
  // these are random points; with a full warm-started population they are
  // mutations of its best members (make_child handles both).
  if (n_init == 0) n_init = cfg_.initial_submissions;
  if (n_init == 0) {
    throw std::invalid_argument("AgeboSearch::start: zero initial submissions");
  }
  std::vector<bo::Point> init_hp;
  if (cfg_.use_bo) {
    if (sharded_) {
      // Initial submission i belongs to shard i % S: each shard asks its
      // own slice (ascending shard order, one ask per shard), then the
      // slices interleave back into submission order. At shards=1 this is
      // one ask(n_init) — the centralized call.
      const std::size_t S = sharded_->shards();
      std::vector<std::vector<bo::Point>> asked(S);
      for (std::size_t s = 0; s < S; ++s) {
        const std::size_t c = n_init / S + (s < n_init % S ? 1 : 0);
        if (c > 0) asked[s] = sharded_->ask(s, c);
      }
      std::vector<std::size_t> pos(S, 0);
      init_hp.reserve(n_init);
      for (std::size_t i = 0; i < n_init; ++i) {
        const std::size_t s = i % S;
        init_hp.push_back(std::move(asked[s][pos[s]++]));
      }
    } else {
      init_hp = optimizer_->ask(n_init);
    }
  }
  std::vector<EvalTicket> out;
  out.reserve(n_init);
  for (std::size_t i = 0; i < n_init; ++i) {
    EvalTicket t = make_ticket(make_child(init_hp, i));
    if (sharded_) ticket_shard_[t.ticket] = i % sharded_->shards();
    out.push_back(std::move(t));
  }
  return out;
}

void AgeboSearch::ingest(const EvalDone& done, const eval::ModelConfig& config,
                         std::vector<bo::Point>& told_points,
                         std::vector<double>& told_objectives) {
  EvalRecord rec;
  rec.index = history_.size();
  rec.finish_time = done.finish_time;
  rec.objective = done.failed ? 0.0 : done.objective;
  rec.train_seconds = done.train_seconds;
  rec.failed = done.failed;
  rec.attempts = done.attempts;
  rec.degraded = done.degraded;
  rec.final_world = done.final_world;
  rec.config = config;
  history_.push_back(rec);
  m_evals_.inc();
  if (rec.failed) m_evals_failed_.inc();
  if (rec.objective > best_so_far_) {
    best_so_far_ = rec.objective;
    m_best_.set(best_so_far_);
    // Counter track in executor time: the population-best staircase
    // renders alongside the worker lanes in the Chrome trace.
    obs::record_counter_sample("search.best_objective", done.finish_time,
                               best_so_far_);
  }
  if (cfg_.on_result) cfg_.on_result(history_.back());

  // Graceful degradation: an evaluation whose retries are exhausted is
  // recorded (failed=true) and told to the BO as objective 0 — the
  // penalty steers the surrogate away from e.g. timeout-prone
  // hyperparameters — but never enters the population, so evolution
  // keeps mutating genomes that actually trained.
  if (!rec.failed) {
    // Aging population: append, drop oldest beyond P (line 11). The
    // kWorst ablation drops the lowest-objective member instead.
    population_.push_back(Member{config.genome, rec.objective});
    while (population_.size() > cfg_.population_size) {
      if (cfg_.replacement == Replacement::kAging) {
        population_.pop_front();
      } else {
        auto worst = population_.begin();
        for (auto it = population_.begin(); it != population_.end(); ++it) {
          if (it->objective < worst->objective) worst = it;
        }
        population_.erase(worst);
      }
    }
  }

  told_points.push_back(config.hparams);
  told_objectives.push_back(rec.objective);
}

std::vector<EvalTicket> AgeboSearch::step(const std::vector<EvalDone>& done,
                                          double now) {
  if (!started_) throw std::logic_error("AgeboSearch::step before start");
  std::vector<bo::Point> told_points;
  std::vector<double> told_objectives;
  std::vector<std::size_t> done_shards;  // shard of each ingested done
  for (const auto& d : done) {
    auto it = outstanding_.find(d.ticket);
    if (it == outstanding_.end()) {
      throw std::logic_error("AgeboSearch::step: unknown ticket " +
                             std::to_string(d.ticket));
    }
    const eval::ModelConfig config = std::move(it->second.config);
    outstanding_.erase(it);
    std::size_t shard = 0;
    if (sharded_) {
      auto sit = ticket_shard_.find(d.ticket);
      if (sit == ticket_shard_.end()) {
        throw std::logic_error("AgeboSearch::step: ticket without shard " +
                               std::to_string(d.ticket));
      }
      shard = sit->second;
      ticket_shard_.erase(sit);
    }
    if (d.finish_time > cfg_.wall_time_seconds) continue;  // past budget
    ingest(d, config, told_points, told_objectives);
    if (sharded_) done_shards.push_back(shard);
  }
  if (now >= cfg_.wall_time_seconds) return {};
  const std::size_t n_new = told_objectives.size();
  if (n_new == 0) return {};

  // Lines 12-13: tell/ask |results| hyperparameter configurations.
  std::vector<bo::Point> next;
  if (cfg_.use_bo) {
    if (sharded_) {
      // Each completion is told back to the shard that asked it; the
      // tells go through the shards' lock-free queues (in delivery
      // order), then every shard with completions asks for exactly that
      // many replacements. Ask order is ascending by shard, replies
      // interleave back into delivery order. At shards=1 this is one
      // batched tell + one ask(n_new) — the centralized call sequence.
      for (std::size_t i = 0; i < n_new; ++i) {
        sharded_->enqueue_tell(done_shards[i], told_points[i],
                               told_objectives[i]);
      }
      const std::size_t S = sharded_->shards();
      std::vector<std::size_t> count(S, 0);
      for (const std::size_t s : done_shards) ++count[s];
      std::vector<std::vector<bo::Point>> asked(S);
      for (std::size_t s = 0; s < S; ++s) {
        if (count[s] > 0) asked[s] = sharded_->ask(s, count[s]);
      }
      std::vector<std::size_t> pos(S, 0);
      next.reserve(n_new);
      for (std::size_t i = 0; i < n_new; ++i) {
        const std::size_t s = done_shards[i];
        next.push_back(std::move(asked[s][pos[s]++]));
      }
    } else {
      optimizer_->tell(told_points, told_objectives);
      next = optimizer_->ask(n_new);
    }
  }
  // Lines 14-23: generate |results| children.
  std::vector<EvalTicket> out;
  out.reserve(n_new);
  for (std::size_t i = 0; i < n_new; ++i) {
    EvalTicket t = make_ticket(make_child(next, i));
    if (sharded_) ticket_shard_[t.ticket] = done_shards[i];
    out.push_back(std::move(t));
  }
  return out;
}

SearchResult AgeboSearch::result() const {
  SearchResult r;
  r.history = history_;
  finalize_result(r);
  return r;
}

SearchResult AgeboSearch::run() {
  if (executor_ == nullptr || evaluator_ == nullptr) {
    throw std::logic_error("AgeboSearch::run: constructed in pump mode");
  }
  obs::set_thread_lane("search.manager");

  // Owning mode is the pump driven by this executor: tickets become
  // submissions immediately, completions come back as EvalDones.
  std::unordered_map<std::uint64_t, std::uint64_t> job_to_ticket;
  auto submit_tickets = [&](const std::vector<EvalTicket>& tickets) {
    for (const auto& t : tickets) {
      eval::Evaluator* evaluator = evaluator_;
      exec::JobSpec spec;
      spec.width = t.width;
      spec.timeout_seconds = t.timeout_seconds;
      spec.max_retries = t.max_retries;
      spec.tag = t.tag;
      const eval::ModelConfig config = t.config;
      const double fidelity = t.fidelity;
      const std::uint64_t id = executor_->submit(
          [evaluator, config, fidelity] {
            return evaluator->evaluate(eval::EvalRequest{config, fidelity});
          },
          spec);
      job_to_ticket[id] = t.ticket;
    }
  };

  std::size_t n_init = cfg_.initial_submissions;
  if (n_init == 0) n_init = executor_->num_workers();
  submit_tickets(start(n_init));

  // Main loop (lines 8-25).
  while (executor_->now() < cfg_.wall_time_seconds) {
    auto finished = executor_->get_finished(/*block=*/true);
    if (finished.empty()) break;  // nothing in flight: search exhausted

    std::vector<EvalDone> done;
    done.reserve(finished.size());
    for (const auto& f : finished) {
      EvalDone d;
      d.ticket = job_to_ticket.at(f.id);
      job_to_ticket.erase(f.id);
      d.finish_time = f.finish_time;
      d.objective = f.output.objective;
      d.train_seconds = f.output.train_seconds;
      d.failed = f.output.failed;
      d.timed_out = f.output.timed_out;
      d.attempts = f.attempts;
      d.degraded = f.output.degraded;
      d.final_world = f.output.final_world;
      done.push_back(d);
    }
    const auto next = step(done, executor_->now());
    if (executor_->now() >= cfg_.wall_time_seconds) break;
    if (next.empty()) continue;
    submit_tickets(next);
    obs::record_counter_sample(
        "search.in_flight", executor_->now(),
        static_cast<double>(executor_->num_in_flight()));
  }

  SearchResult res = result();
  res.utilization = executor_->utilization();
  return res;
}

namespace {

constexpr const char* kSearchStateHeader = "agebo-search v1";

void write_ticket(std::ostream& os, const EvalTicket& t) {
  os << "ticket " << t.ticket << ' ' << t.fidelity << ' ' << t.width << ' '
     << t.timeout_seconds << ' ' << t.max_retries << ' '
     << state::encode_token(t.tag) << ' ';
  state::write_point(os, t.config.hparams);
  os << ' ';
  state::write_genome(os, t.config.genome);
  os << '\n';
}

EvalTicket read_ticket(std::istream& is, const std::string& what) {
  state::expect_key(is, "ticket", what);
  EvalTicket t;
  std::string tag;
  if (!(is >> t.ticket >> t.fidelity >> t.width >> t.timeout_seconds >>
        t.max_retries >> tag)) {
    state::fail(what, "truncated ticket");
  }
  t.tag = state::decode_token(tag);
  t.config.hparams = state::read_point(is, what);
  t.config.genome = state::read_genome(is, what);
  return t;
}

}  // namespace

void AgeboSearch::save_state(std::ostream& os) const {
  os.precision(17);
  os << kSearchStateHeader << '\n';
  os << "fingerprint " << cfg_.population_size << ' ' << cfg_.sample_size << ' '
     << (cfg_.use_bo ? 1 : 0) << ' '
     << (cfg_.replacement == Replacement::kAging ? 0 : 1) << ' '
     << (cfg_.random_search ? 1 : 0) << ' ' << cfg_.hp_space.size() << ' '
     << cfg_.wall_time_seconds << '\n';
  state::write_rng(os, rng_.state());
  os << '\n';
  os << "best " << best_so_far_ << '\n';
  os << "next-ticket " << next_ticket_ << '\n';
  os << "started " << (started_ ? 1 : 0) << '\n';
  os << "population " << population_.size() << '\n';
  for (const Member& m : population_) {
    os << "member " << m.objective << ' ';
    state::write_genome(os, m.genome);
    os << '\n';
  }
  os << "history " << history_.size() << '\n';
  for (const EvalRecord& rec : history_) {
    // The CSV row contains no spaces, so it reads back as one token.
    os << "row ";
    write_history_row(rec, os);
    os << '\n';
  }
  os << "outstanding " << outstanding_.size() << '\n';
  for (const auto& [id, t] : outstanding_) {
    (void)id;
    write_ticket(os, t);
  }
  os << "bo " << (optimizer_.has_value() ? 1 : 0) << '\n';
  if (optimizer_.has_value()) {
    state::write_rng(os, optimizer_->rng_state());
    os << '\n';
    const auto& points = optimizer_->tell_log_points();
    const auto& objectives = optimizer_->tell_log_objectives();
    os << "tells " << points.size() << '\n';
    for (std::size_t i = 0; i < points.size(); ++i) {
      os << "tell " << objectives[i] << ' ';
      state::write_point(os, points[i]);
      os << '\n';
    }
  }
  // Sharded-BO section: present exactly when the config is sharded, so
  // centralized checkpoints (including all pre-§15 files) keep their byte
  // layout and a sharded search never reads past a centralized blob when
  // the service embeds several blobs in one stream.
  if (sharded_) {
    os << "shards 1\n";
    sharded_->save_state(os);
    os << "ticket-shards " << ticket_shard_.size() << '\n';
    for (const auto& [id, shard] : ticket_shard_) {
      os << "ts " << id << ' ' << shard << '\n';
    }
  }
}

void AgeboSearch::load_state(std::istream& is) {
  const std::string what = "AgeboSearch::load_state";
  if (started_ || !history_.empty()) {
    throw std::logic_error(what + ": search already driven");
  }
  std::string line;
  if (!std::getline(is, line) || line != kSearchStateHeader) {
    state::fail(what, "bad header");
  }
  state::expect_key(is, "fingerprint", what);
  std::size_t pop = 0, sample = 0, hp_dims = 0;
  int use_bo = 0, replacement = 0, random_search = 0;
  double wall = 0.0;
  if (!(is >> pop >> sample >> use_bo >> replacement >> random_search >>
        hp_dims >> wall)) {
    state::fail(what, "truncated fingerprint");
  }
  if (pop != cfg_.population_size || sample != cfg_.sample_size ||
      (use_bo != 0) != cfg_.use_bo ||
      (replacement != 0) != (cfg_.replacement == Replacement::kWorst) ||
      (random_search != 0) != cfg_.random_search ||
      hp_dims != cfg_.hp_space.size() || wall != cfg_.wall_time_seconds) {
    state::fail(what, "checkpoint was written by a differently-configured search");
  }
  rng_.set_state(state::read_rng(is, what));
  state::expect_key(is, "best", what);
  if (!(is >> best_so_far_)) state::fail(what, "truncated best");
  state::expect_key(is, "next-ticket", what);
  if (!(is >> next_ticket_)) state::fail(what, "truncated next-ticket");
  started_ = state::read_flag(is, "started", what);

  const std::size_t n_pop = state::read_count(is, "population", what);
  population_.clear();
  for (std::size_t i = 0; i < n_pop; ++i) {
    state::expect_key(is, "member", what);
    Member m;
    if (!(is >> m.objective)) state::fail(what, "truncated member");
    m.genome = state::read_genome(is, what);
    space_->validate(m.genome);
    population_.push_back(std::move(m));
  }

  const std::size_t n_hist = state::read_count(is, "history", what);
  history_.clear();
  for (std::size_t i = 0; i < n_hist; ++i) {
    state::expect_key(is, "row", what);
    std::string row;
    if (!(is >> row)) state::fail(what, "truncated history row");
    history_.push_back(parse_history_row(
        row, *space_, history_row_format(row, "checkpoint"),
        "checkpoint row " + std::to_string(i)));
  }

  const std::size_t n_out = state::read_count(is, "outstanding", what);
  outstanding_.clear();
  for (std::size_t i = 0; i < n_out; ++i) {
    EvalTicket t = read_ticket(is, what);
    const std::uint64_t id = t.ticket;
    outstanding_.emplace(id, std::move(t));
  }

  const bool has_bo = state::read_flag(is, "bo", what);
  if (has_bo != optimizer_.has_value()) {
    state::fail(what, "BO flag mismatch with this search's config");
  }
  if (has_bo) {
    const Rng::State bo_rng = state::read_rng(is, what);
    const std::size_t n_tells = state::read_count(is, "tells", what);
    std::vector<bo::Point> points;
    std::vector<double> objectives;
    points.reserve(n_tells);
    objectives.reserve(n_tells);
    for (std::size_t i = 0; i < n_tells; ++i) {
      state::expect_key(is, "tell", what);
      double obj = 0.0;
      if (!(is >> obj)) state::fail(what, "truncated tell");
      objectives.push_back(obj);
      points.push_back(state::read_point(is, what));
    }
    optimizer_->restore(points, objectives, bo_rng);
  }
  if (sharded_) {
    if (!state::read_flag(is, "shards", what)) {
      state::fail(what, "missing sharded-BO section");
    }
    sharded_->load_state(is);
    const std::size_t n_ts = state::read_count(is, "ticket-shards", what);
    ticket_shard_.clear();
    for (std::size_t i = 0; i < n_ts; ++i) {
      state::expect_key(is, "ts", what);
      std::uint64_t id = 0;
      std::size_t shard = 0;
      if (!(is >> id >> shard)) state::fail(what, "truncated ticket shard");
      ticket_shard_.emplace(id, shard);
    }
    if (ticket_shard_.size() != outstanding_.size()) {
      state::fail(what, "ticket-shard map does not cover outstanding tickets");
    }
  }
  if (best_so_far_ > 0.0) m_best_.set(best_so_far_);
}

}  // namespace agebo::core
