#include "core/state_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace agebo::core::state {

void fail(const std::string& what, const std::string& detail) {
  throw std::runtime_error(what + ": " + detail);
}

void expect_key(std::istream& is, const char* key, const std::string& what) {
  std::string token;
  if (!(is >> token)) fail(what, std::string("truncated before \"") + key + "\"");
  if (token != key) {
    fail(what, "expected \"" + std::string(key) + "\", got \"" + token + "\"");
  }
}

std::size_t read_count(std::istream& is, const char* key,
                       const std::string& what) {
  expect_key(is, key, what);
  std::size_t n = 0;
  if (!(is >> n)) fail(what, std::string("bad count after \"") + key + "\"");
  return n;
}

bool read_flag(std::istream& is, const char* key, const std::string& what) {
  expect_key(is, key, what);
  int flag = 0;
  if (!(is >> flag) || (flag != 0 && flag != 1)) {
    fail(what, std::string("bad flag after \"") + key + "\"");
  }
  return flag != 0;
}

std::string encode_token(const std::string& s) { return s.empty() ? "-" : s; }
std::string decode_token(const std::string& s) { return s == "-" ? "" : s; }

void write_genome(std::ostream& os, const nas::Genome& genome) {
  os << genome.size();
  for (const int v : genome) os << ' ' << v;
}

nas::Genome read_genome(std::istream& is, const std::string& what) {
  std::size_t n = 0;
  if (!(is >> n)) fail(what, "bad genome length");
  nas::Genome g(n, 0);
  for (int& v : g) {
    if (!(is >> v)) fail(what, "truncated genome");
  }
  return g;
}

void write_point(std::ostream& os, const bo::Point& point) {
  os << point.size();
  for (const double v : point) os << ' ' << v;
}

bo::Point read_point(std::istream& is, const std::string& what) {
  std::size_t n = 0;
  if (!(is >> n)) fail(what, "bad point length");
  bo::Point p(n, 0.0);
  for (double& v : p) {
    if (!(is >> v)) fail(what, "truncated point");
  }
  return p;
}

void write_rng(std::ostream& os, const Rng::State& st) {
  os << "rng " << st.s[0] << ' ' << st.s[1] << ' ' << st.s[2] << ' ' << st.s[3]
     << ' ' << st.cached_normal << ' ' << (st.has_cached_normal ? 1 : 0);
}

Rng::State read_rng(std::istream& is, const std::string& what) {
  expect_key(is, "rng", what);
  Rng::State st;
  int has = 0;
  if (!(is >> st.s[0] >> st.s[1] >> st.s[2] >> st.s[3] >> st.cached_normal >>
        has)) {
    fail(what, "truncated rng state");
  }
  st.has_cached_normal = has != 0;
  return st;
}

}  // namespace agebo::core::state
