#include "bo/param_space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace agebo::bo {

ParamSpace& ParamSpace::add_real(std::string name, double lo, double hi,
                                 bool log_scale) {
  if (!(hi > lo)) throw std::invalid_argument("add_real: hi <= lo");
  if (log_scale && lo <= 0.0) {
    throw std::invalid_argument("add_real: log scale needs lo > 0");
  }
  dims_.emplace_back(RealDim{std::move(name), lo, hi, log_scale});
  return *this;
}

ParamSpace& ParamSpace::add_int(std::string name, long lo, long hi) {
  if (hi < lo) throw std::invalid_argument("add_int: hi < lo");
  dims_.emplace_back(IntDim{std::move(name), lo, hi});
  return *this;
}

ParamSpace& ParamSpace::add_categorical(std::string name,
                                        std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("add_categorical: empty");
  dims_.emplace_back(CatDim{std::move(name), std::move(values)});
  return *this;
}

const std::string& ParamSpace::name(std::size_t i) const {
  return std::visit([](const auto& d) -> const std::string& { return d.name; },
                    dims_.at(i));
}

Point ParamSpace::sample(Rng& rng) const {
  Point p(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    p[i] = std::visit(
        [&rng](const auto& d) -> double {
          using T = std::decay_t<decltype(d)>;
          if constexpr (std::is_same_v<T, RealDim>) {
            return d.log_scale ? rng.log_uniform(d.lo, d.hi)
                               : rng.uniform(d.lo, d.hi);
          } else if constexpr (std::is_same_v<T, IntDim>) {
            return static_cast<double>(rng.uniform_int(d.lo, d.hi));
          } else {
            return d.values[rng.index(d.values.size())];
          }
        },
        dims_[i]);
  }
  return p;
}

std::vector<double> ParamSpace::to_features(const Point& p) const {
  validate(p);
  std::vector<double> f(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    f[i] = std::visit(
        [&](const auto& d) -> double {
          using T = std::decay_t<decltype(d)>;
          if constexpr (std::is_same_v<T, RealDim>) {
            if (d.log_scale) {
              return (std::log(p[i]) - std::log(d.lo)) /
                     (std::log(d.hi) - std::log(d.lo));
            }
            return (p[i] - d.lo) / (d.hi - d.lo);
          } else if constexpr (std::is_same_v<T, IntDim>) {
            return d.lo == d.hi
                       ? 0.0
                       : (p[i] - static_cast<double>(d.lo)) /
                             static_cast<double>(d.hi - d.lo);
          } else {
            const auto it = std::find(d.values.begin(), d.values.end(), p[i]);
            return static_cast<double>(std::distance(d.values.begin(), it));
          }
        },
        dims_[i]);
  }
  return f;
}

void ParamSpace::validate(const Point& p) const {
  if (p.size() != dims_.size()) throw std::invalid_argument("Point: wrong length");
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const bool ok = std::visit(
        [&](const auto& d) -> bool {
          using T = std::decay_t<decltype(d)>;
          if constexpr (std::is_same_v<T, RealDim>) {
            return p[i] >= d.lo && p[i] <= d.hi;
          } else if constexpr (std::is_same_v<T, IntDim>) {
            return p[i] >= static_cast<double>(d.lo) &&
                   p[i] <= static_cast<double>(d.hi) &&
                   p[i] == std::floor(p[i]);
          } else {
            return std::find(d.values.begin(), d.values.end(), p[i]) !=
                   d.values.end();
          }
        },
        dims_[i]);
    if (!ok) {
      throw std::invalid_argument("Point: value out of range for dim " +
                                  name(i));
    }
  }
}

std::string ParamSpace::key(const Point& p) const {
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) os << '|';
    os << p[i];
  }
  return os.str();
}

ParamSpace ParamSpace::paper_space() {
  ParamSpace space;
  space.add_categorical("batch_size", {32, 64, 128, 256, 512, 1024});
  space.add_real("learning_rate", 0.001, 0.1, /*log_scale=*/true);
  space.add_categorical("n_processes", {1, 2, 4, 8});
  return space;
}

}  // namespace agebo::bo
