// Mixed-integer hyperparameter space H_m (Sec II): real dimensions with
// optional log-uniform sampling (the learning rate), integer ranges, and
// categorical value lists (batch size, number of processes).
//
// A Point stores the actual hyperparameter values; to_features() maps a
// point into the normalized representation the random-forest surrogate
// consumes (log-transform + [0,1] scaling for reals, label index for
// categoricals).
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"

namespace agebo::bo {

using Point = std::vector<double>;

struct RealDim {
  std::string name;
  double lo;
  double hi;
  bool log_scale = false;
};

struct IntDim {
  std::string name;
  long lo;
  long hi;
};

struct CatDim {
  std::string name;
  std::vector<double> values;
};

class ParamSpace {
 public:
  ParamSpace& add_real(std::string name, double lo, double hi,
                       bool log_scale = false);
  ParamSpace& add_int(std::string name, long lo, long hi);
  ParamSpace& add_categorical(std::string name, std::vector<double> values);

  std::size_t size() const { return dims_.size(); }
  const std::string& name(std::size_t i) const;

  Point sample(Rng& rng) const;

  /// Normalized feature vector for the surrogate (same length as size()).
  std::vector<double> to_features(const Point& p) const;

  /// Throws std::invalid_argument when p is outside the space.
  void validate(const Point& p) const;

  /// Stable key for duplicate detection.
  std::string key(const Point& p) const;

  /// The paper's H_m: bs1 in {32,...,1024}, lr1 log-uniform in
  /// (0.001, 0.1), n in {1,2,4,8} (Sec IV). Dimension order: bs1, lr1, n.
  static ParamSpace paper_space();

 private:
  using Dim = std::variant<RealDim, IntDim, CatDim>;
  std::vector<Dim> dims_;
};

}  // namespace agebo::bo
