// Lock-free multi-producer/single-consumer queue for tell ingestion
// (DESIGN.md §15). Producers (executor callbacks, peer shards) push
// completed evaluations concurrently; the shard's pump thread drains the
// whole backlog in one exchange.
//
// Implementation: a Treiber stack on the push side — push is a single
// compare_exchange loop on the head pointer, wait-free in the absence of
// contention and lock-free under it — and an exchange-and-reverse on the
// drain side, which restores FIFO order per producer (a producer's pushes
// appear in push order; interleaving across producers follows the CAS
// winners, exactly the delivery semantics of an asynchronous cluster).
// drain() is single-consumer by contract: only the shard pump may call it.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace agebo::bo {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  /// Destruction requires the queue to be drained (or explicitly
  /// discard()ed): tells still enqueued at shutdown are results the
  /// consumer never ingested — a lost-work bug, not a cleanup detail. The
  /// assert makes that shutdown race loud in debug/sanitizer builds; the
  /// release fallback still frees every node so nothing leaks.
  ~MpscQueue() {
    assert(head_.load(std::memory_order_acquire) == nullptr &&
           "MpscQueue destroyed with undrained entries; call drain() or "
           "discard() before shutdown");
    discard();
  }
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Thread-safe: any number of producers may push concurrently.
  void push(T value) {
    Node* node = new Node{std::move(value), nullptr};
    Node* expected = head_.load(std::memory_order_relaxed);
    do {
      node->next = expected;
    } while (!head_.compare_exchange_weak(expected, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    depth_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Single consumer only: detach the whole backlog and return it oldest
  /// first. Never blocks producers — they keep pushing onto the fresh head.
  std::vector<T> drain() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    std::vector<T> out;
    // The detached list is newest-first; reverse into FIFO order.
    for (Node* n = node; n != nullptr; n = n->next) out.emplace_back();
    std::size_t i = out.size();
    while (node != nullptr) {
      out[--i] = std::move(node->value);
      Node* next = node->next;
      delete node;
      node = next;
    }
    depth_.fetch_sub(out.size(), std::memory_order_relaxed);
    return out;
  }

  /// Racy size estimate for queue-depth gauges (never used for control
  /// flow): producers may be mid-push, so treat it as a telemetry hint.
  std::size_t approx_size() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Deliberately throw away the backlog (shutdown path after the consumer
  /// has stopped caring, e.g. an aborted campaign). Single-consumer, like
  /// drain(); returns the number of entries freed.
  std::size_t discard() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    std::size_t n = 0;
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
      ++n;
    }
    depth_.fetch_sub(n, std::memory_order_relaxed);
    return n;
  }

 private:
  struct Node {
    T value;
    Node* next;
  };
  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> depth_{0};
};

}  // namespace agebo::bo
