// Asynchronous Bayesian optimization with the scikit-optimize recipe the
// paper uses (Sec III-C): a random-forest surrogate M, the UCB acquisition
// function UCB(h) = mu(h) + kappa * sigma(h) (Eq. 3), and a multipoint
// constant-liar strategy for generating batches: after each selection, M is
// retrained with the selected point labeled with a "lie" (the mean of all
// observed objectives) so subsequent selections within the batch diversify.
//
// The optimizer MAXIMIZES the objective (validation accuracy).
#pragma once

#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bo/param_space.hpp"
#include "common/rng.hpp"
#include "ml/forest.hpp"

namespace agebo::bo {

/// The dummy value used by the constant-liar batch strategy. The paper uses
/// the mean of all observed objectives; min/max are the classic CL-min /
/// CL-max variants (ablated in bench_ablations).
enum class LiarStrategy { kMean, kMin, kMax };

/// Acquisition function. The paper uses UCB (Eq. 3); expected improvement
/// is provided as an alternative for the acquisition ablation.
enum class Acquisition { kUcb, kExpectedImprovement };

/// Surrogate refresh policy (DESIGN.md §15). kFull rebuilds the whole
/// forest whenever the tell log changed; kIncremental refreshes only
/// `refit_trees` trees per changed ask() on the sliding tell window, so
/// steady-state ask latency is O(new points), not O(history).
enum class RefitMode { kFull, kIncremental };

/// Batch diversification. kConstantLiar is the paper's recipe (one refit
/// per pick with the lie appended); kQUcb is the decentralized variant of
/// Egelé et al.: ONE fit per batch, then each pick samples its own kappa
/// from an exponential with mean `kappa` — diversity comes from the
/// varying exploration weight instead of k liar refits.
enum class BatchMode { kConstantLiar, kQUcb };

struct BoConfig {
  LiarStrategy liar = LiarStrategy::kMean;
  Acquisition acquisition = Acquisition::kUcb;
  /// EI exploration jitter (the classic xi parameter); UCB ignores it.
  double xi = 0.01;
  /// Exploration-exploitation trade-off; the paper's default is 0.001
  /// (strong exploitation), ablated against 1.96 and 19.6 in Fig 8.
  double kappa = 0.001;
  /// Random points produced before the surrogate takes over.
  std::size_t n_initial_random = 10;
  /// Candidate pool sampled per acquisition maximization.
  std::size_t n_candidates = 512;
  /// Surrogate forest size. Small trees keep ask() latency low — the paper
  /// stresses that slow generation would hurt node utilization.
  std::size_t n_trees = 25;
  std::size_t tree_depth = 12;
  /// Cap on observations per surrogate fit; when history exceeds this, a
  /// random subsample is used. Bounds ask() latency for long campaigns
  /// (thousands of tells) the same way practical BO services do.
  std::size_t max_fit_points = 512;
  std::uint64_t seed = 23;
  RefitMode refit = RefitMode::kFull;
  BatchMode batch = BatchMode::kConstantLiar;
  /// Trees refreshed per changed ask() under RefitMode::kIncremental.
  std::size_t refit_trees = 4;
  /// Skip the leading refit of ask() when the tell log is unchanged since
  /// the last liar-free full-data fit. Refits are deterministic functions
  /// of the data, so asks are bit-identical with the cache on or off; the
  /// flag exists so the equivalence is testable.
  bool refit_cache = true;
};

class AskTellOptimizer {
 public:
  AskTellOptimizer(ParamSpace space, BoConfig cfg = {});

  /// Record completed evaluations (objective = validation accuracy).
  void tell(const std::vector<Point>& points,
            const std::vector<double>& objectives);

  /// Generate `k` configurations to evaluate next (constant-liar batch).
  std::vector<Point> ask(std::size_t k);

  std::size_t n_observed() const { return y_.size(); }
  const ParamSpace& space() const { return space_; }
  double kappa() const { return cfg_.kappa; }

  // Durable-state seam (DESIGN.md §14). The optimizer's mutable state is
  // exactly the tell log plus the sampler position: the surrogate forest is
  // refit from the log on every ask(), so checkpointing the log and the rng
  // words — and restoring them into a same-seeded optimizer — reproduces
  // every subsequent ask() bit-for-bit.
  const std::vector<Point>& tell_log_points() const { return x_points_; }
  const std::vector<double>& tell_log_objectives() const { return y_; }
  Rng::State rng_state() const { return rng_.state(); }
  /// Restore a checkpointed tell log + rng position into a freshly
  /// constructed optimizer (same space and config). Throws
  /// std::invalid_argument on size mismatch or out-of-space points.
  void restore(const std::vector<Point>& points,
               const std::vector<double>& objectives, const Rng::State& rng);

  /// Snapshot of the incremental surrogate (RefitMode::kIncremental): each
  /// tree is fully described by the tell-window end it was fitted on plus
  /// its seed salt, so a checkpoint stores O(n_trees) integers instead of
  /// the forest and restore_incremental_state() rebuilds the identical
  /// trees from the restored tell log. `trees` is empty while the
  /// optimizer is still in the random phase (nothing fitted yet).
  struct IncrementalFitState {
    std::vector<std::pair<std::size_t, std::uint64_t>> trees;  ///< fit_end, salt
    std::size_t next_rotate = 0;
    std::uint64_t next_salt = 0;
    std::size_t fitted_tells = 0;
  };
  IncrementalFitState incremental_state() const;
  /// Rebuild the incremental surrogate after restore(); requires the same
  /// config and a tell log at least as long as every recorded fit_end.
  void restore_incremental_state(const IncrementalFitState& st);

 private:
  /// Fit the surrogate on current (+liar) data.
  void refit(const std::vector<std::vector<double>>& xs,
             const std::vector<double>& ys);
  /// Bring the batch-shared surrogate up to date with the tell log
  /// (kQUcb path): full rebuild or `refit_trees`-tree rotation on the
  /// sliding window of the last max_fit_points tells.
  void ensure_fit();
  /// One-fit-per-batch qUCB ask (BatchMode::kQUcb).
  std::vector<Point> ask_qucb(std::size_t k);
  /// UCB (Eq. 3) or EI score of a surrogate prediction.
  double acquisition_value(double mu, double sigma, double best_observed) const;
  /// Argmax of the acquisition over a fresh random candidate pool.
  Point acquire(double best_observed);

  ParamSpace space_;
  BoConfig cfg_;
  Rng rng_;
  std::vector<std::vector<double>> x_feat_;
  std::vector<Point> x_points_;
  std::vector<double> y_;
  std::unordered_set<std::string> seen_;
  ml::RandomForestRegressor surrogate_;

  /// Tell count captured by the surrogate when it holds a liar-free fit of
  /// the full (un-subsampled) log; kNoBaseFit when the surrogate carries
  /// liar rows, a random subsample, or nothing. ask() skips its leading
  /// refit on a match — the satellite fix for the redundant per-ask refit.
  static constexpr std::size_t kNoBaseFit = static_cast<std::size_t>(-1);
  std::size_t base_fit_tells_ = kNoBaseFit;

  /// Incremental-surrogate bookkeeping (kQUcb + ensure_fit()).
  std::vector<std::pair<std::size_t, std::uint64_t>> tree_fits_;
  std::size_t next_rotate_ = 0;
  std::uint64_t next_salt_ = 0;
  std::size_t fitted_tells_ = 0;
};

}  // namespace agebo::bo
