#include "bo/sharded_optimizer.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace agebo::bo {

namespace {

class ScopedLatency {
 public:
  explicit ScopedLatency(obs::Histogram h)
      : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    h_.observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0_)
                   .count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  obs::Histogram h_;
  std::chrono::steady_clock::time_point t0_;
};

[[noreturn]] void bad_state(const std::string& detail) {
  throw std::runtime_error("ShardedBo::load_state: " + detail);
}

void write_rng_state(std::ostream& os, const Rng::State& st) {
  os << st.s[0] << ' ' << st.s[1] << ' ' << st.s[2] << ' ' << st.s[3] << ' '
     << st.cached_normal << ' ' << (st.has_cached_normal ? 1 : 0);
}

Rng::State read_rng_state(std::istream& is) {
  Rng::State st;
  int has = 0;
  if (!(is >> st.s[0] >> st.s[1] >> st.s[2] >> st.s[3] >> st.cached_normal >>
        has)) {
    bad_state("truncated rng state");
  }
  st.has_cached_normal = has != 0;
  return st;
}

void write_item(std::ostream& os, const char* key, double objective,
                const Point& p) {
  os << key << ' ' << objective << ' ' << p.size();
  for (const double v : p) os << ' ' << v;
  os << '\n';
}

void read_item(std::istream& is, const char* key, double& objective,
               Point& point) {
  std::string k;
  std::size_t dims = 0;
  if (!(is >> k >> objective >> dims) || k != key) bad_state("truncated tell");
  point.assign(dims, 0.0);
  for (double& v : point) {
    if (!(is >> v)) bad_state("truncated tell point");
  }
}

}  // namespace

ShardedBo::ShardedBo(ParamSpace space, ShardedBoConfig cfg)
    : space_(std::move(space)), cfg_(cfg) {
  if (cfg_.shards == 0) throw std::invalid_argument("ShardedBo: zero shards");
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    BoConfig bo = cfg_.bo;
    bo.seed = cfg_.bo.seed + 1000003ULL * s;
    shards_.push_back(std::make_unique<Shard>(
        space_, bo, cfg_.bo.seed * 8191ULL + 101ULL + s));
    shards_.back()->consumed.assign(cfg_.shards, 0);
  }
  auto& reg = obs::Registry::global();
  m_ask_ = reg.histogram("bo.shard.ask_seconds");
  m_tell_ = reg.histogram("bo.shard.tell_seconds");
  m_merge_ = reg.histogram("bo.shard.merge_seconds");
  m_depth_ = reg.gauge("bo.shard.queue_depth");
}

ShardedBo::~ShardedBo() {
  for (auto& s : shards_) s->queue.discard();
}

void ShardedBo::enqueue_tell(std::size_t shard, Point point, double objective) {
  shards_.at(shard)->queue.push(TellItem{std::move(point), objective});
}

void ShardedBo::ingest(Shard& s) {
  m_depth_.set(static_cast<double>(s.queue.approx_size()));
  auto items = s.queue.drain();
  if (items.empty()) return;
  ScopedLatency lat(m_tell_);
  std::vector<Point> points;
  std::vector<double> objectives;
  points.reserve(items.size());
  objectives.reserve(items.size());
  for (auto& item : items) {
    points.push_back(item.point);
    objectives.push_back(item.objective);
  }
  // One batched tell, exactly like the centralized manager's per-step tell
  // — at shards=1 this reproduces its call sequence verbatim.
  s.opt.tell(points, objectives);
  for (auto& item : items) s.local_log.push_back(std::move(item));
  s.since_gossip += points.size();
}

void ShardedBo::gossip(std::size_t shard) {
  Shard& s = *shards_[shard];
  if (cfg_.gossip_every == 0 || shards_.size() < 2) return;
  if (s.since_gossip < cfg_.gossip_every) return;
  ScopedLatency lat(m_merge_);
  const std::size_t fanout =
      std::min(cfg_.gossip_fanout, shards_.size() - 1);
  for (std::size_t f = 0; f < fanout; ++f) {
    // Deterministic peer choice: the schedule is a pure function of the
    // gossip rng's seed and the shard's merge history.
    std::size_t peer = s.gossip_rng.index(shards_.size() - 1);
    if (peer >= shard) ++peer;  // skip self
    const Shard& p = *shards_[peer];
    const std::size_t from = s.consumed[peer];
    if (from >= p.local_log.size()) continue;
    std::vector<Point> points;
    std::vector<double> objectives;
    points.reserve(p.local_log.size() - from);
    for (std::size_t i = from; i < p.local_log.size(); ++i) {
      points.push_back(p.local_log[i].point);
      objectives.push_back(p.local_log[i].objective);
    }
    s.opt.tell(points, objectives);
    s.consumed[peer] = p.local_log.size();
  }
  s.since_gossip = 0;
}

std::vector<Point> ShardedBo::ask(std::size_t shard, std::size_t k) {
  Shard& s = *shards_.at(shard);
  ingest(s);
  gossip(shard);
  ScopedLatency lat(m_ask_);
  return s.opt.ask(k);
}

void ShardedBo::drain(std::size_t shard) {
  ingest(*shards_.at(shard));
  gossip(shard);
}

std::size_t ShardedBo::n_observed(std::size_t shard) const {
  return shards_.at(shard)->opt.n_observed();
}

std::size_t ShardedBo::n_local(std::size_t shard) const {
  return shards_.at(shard)->local_log.size();
}

const AskTellOptimizer& ShardedBo::optimizer(std::size_t shard) const {
  return shards_.at(shard)->opt;
}

void ShardedBo::save_state(std::ostream& os) const {
  for (const auto& s : shards_) {
    if (s->queue.approx_size() != 0) {
      throw std::logic_error(
          "ShardedBo::save_state: undrained tell queue (call drain first)");
    }
  }
  os.precision(17);
  os << "sharded-bo v1\n";
  os << "config " << shards_.size() << ' ' << cfg_.gossip_every << ' '
     << cfg_.gossip_fanout << '\n';
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    os << "shard " << i << '\n';
    os << "rng ";
    write_rng_state(os, s.opt.rng_state());
    os << '\n';
    const auto& points = s.opt.tell_log_points();
    const auto& objectives = s.opt.tell_log_objectives();
    os << "tells " << points.size() << '\n';
    for (std::size_t t = 0; t < points.size(); ++t) {
      write_item(os, "t", objectives[t], points[t]);
    }
    os << "local " << s.local_log.size() << '\n';
    for (const TellItem& item : s.local_log) {
      write_item(os, "l", item.objective, item.point);
    }
    os << "consumed " << s.consumed.size();
    for (const std::size_t c : s.consumed) os << ' ' << c;
    os << '\n';
    os << "since " << s.since_gossip << '\n';
    os << "grng ";
    write_rng_state(os, s.gossip_rng.state());
    os << '\n';
    const auto fit = s.opt.incremental_state();
    os << "fits " << fit.trees.size();
    for (const auto& [end, salt] : fit.trees) os << ' ' << end << ' ' << salt;
    os << ' ' << fit.next_rotate << ' ' << fit.next_salt << ' '
       << fit.fitted_tells << '\n';
  }
}

void ShardedBo::load_state(std::istream& is) {
  std::string key;
  if (!(is >> key) || key != "sharded-bo") bad_state("bad header");
  if (!(is >> key) || key != "v1") bad_state("unsupported version");
  std::size_t n_shards = 0, gossip_every = 0, fanout = 0;
  if (!(is >> key >> n_shards >> gossip_every >> fanout) || key != "config") {
    bad_state("missing config");
  }
  if (n_shards != shards_.size() || gossip_every != cfg_.gossip_every ||
      fanout != cfg_.gossip_fanout) {
    bad_state("checkpoint was written by a differently-configured ShardedBo");
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    std::size_t idx = 0;
    if (!(is >> key >> idx) || key != "shard" || idx != i) {
      bad_state("missing shard " + std::to_string(i));
    }
    if (!(is >> key) || key != "rng") bad_state("missing rng");
    const Rng::State rng = read_rng_state(is);
    std::size_t n_tells = 0;
    if (!(is >> key >> n_tells) || key != "tells") bad_state("missing tells");
    std::vector<Point> points(n_tells);
    std::vector<double> objectives(n_tells);
    for (std::size_t t = 0; t < n_tells; ++t) {
      read_item(is, "t", objectives[t], points[t]);
    }
    s.opt.restore(points, objectives, rng);
    std::size_t n_local = 0;
    if (!(is >> key >> n_local) || key != "local") bad_state("missing local");
    s.local_log.assign(n_local, {});
    for (TellItem& item : s.local_log) {
      read_item(is, "l", item.objective, item.point);
    }
    std::size_t n_consumed = 0;
    if (!(is >> key >> n_consumed) || key != "consumed" ||
        n_consumed != shards_.size()) {
      bad_state("missing consumed");
    }
    for (std::size_t& c : s.consumed) {
      if (!(is >> c)) bad_state("truncated consumed");
    }
    if (!(is >> key >> s.since_gossip) || key != "since") {
      bad_state("missing since");
    }
    if (!(is >> key) || key != "grng") bad_state("missing grng");
    s.gossip_rng.set_state(read_rng_state(is));
    std::size_t n_fits = 0;
    if (!(is >> key >> n_fits) || key != "fits") bad_state("missing fits");
    AskTellOptimizer::IncrementalFitState fit;
    fit.trees.assign(n_fits, {0, 0});
    for (auto& [end, salt] : fit.trees) {
      if (!(is >> end >> salt)) bad_state("truncated fits");
    }
    if (!(is >> fit.next_rotate >> fit.next_salt >> fit.fitted_tells)) {
      bad_state("truncated fit counters");
    }
    s.opt.restore_incremental_state(fit);
  }
}

}  // namespace agebo::bo
