// Decentralized asynchronous BO (DESIGN.md §15), after "Asynchronous
// Decentralized Bayesian Optimization for Large Scale Hyperparameter
// Optimization" (Egelé et al.): the single manager-side AskTellOptimizer is
// sharded into per-worker-group optimizers, each with
//
//  - its own lock-free MPSC history queue: completed evaluations are
//    pushed by any thread via enqueue_tell() and ingested by the shard's
//    next ask() without a mutex on the hot path;
//  - a seeded deterministic gossip schedule: after every `gossip_every`
//    local tells, the shard merges the not-yet-consumed suffix of
//    `gossip_fanout` peers' tell logs (per-peer prefix counters make the
//    merge a delta exchange, and a shard never rebroadcasts merged tells,
//    so the exchange cannot loop);
//  - local batch diversification: constant-liar or qUCB state never leaves
//    the shard, so one shard's ask() never blocks on another's.
//
// Threading contract: enqueue_tell() is safe from any thread; every other
// method (ask, save_state, load_state, accessors) must be driven by ONE
// pump thread. Under that contract the whole structure is deterministic:
// the same seed + the same enqueue/ask sequence reproduces the same
// decisions, which is what the shard-determinism and checkpoint tests gate.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <vector>

#include "bo/mpsc_queue.hpp"
#include "bo/optimizer.hpp"
#include "bo/param_space.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"

namespace agebo::bo {

struct ShardedBoConfig {
  std::size_t shards = 1;
  /// Local tells between gossip merges; 0 disables gossip (shards only
  /// ever learn their own workers' results).
  std::size_t gossip_every = 8;
  /// Peers whose tell-log deltas are merged per gossip round.
  std::size_t gossip_fanout = 2;
  /// Per-shard optimizer template. Shard 0 uses bo.seed verbatim — the
  /// shards=1 degenerate case is bit-for-bit the centralized optimizer —
  /// and shard s derives bo.seed + 1000003 * s.
  BoConfig bo;
};

class ShardedBo {
 public:
  ShardedBo(ParamSpace space, ShardedBoConfig cfg);
  /// Discards any still-queued tells: an abandoned search (aborted
  /// campaign, thrown-through error path) tears down without tripping
  /// MpscQueue's drained-at-destruction contract. Checkpointing still
  /// requires an explicit drain() — save_state throws on a non-empty queue.
  ~ShardedBo();

  std::size_t shards() const { return shards_.size(); }
  const ShardedBoConfig& config() const { return cfg_; }

  /// Thread-safe: record one completed evaluation for `shard` (the shard
  /// that asked the point). Ingested at the shard's next ask()/drain().
  void enqueue_tell(std::size_t shard, Point point, double objective);

  /// Pump thread: ingest the shard's queued tells, run the gossip schedule
  /// if due, and generate `k` points from the shard's own optimizer.
  std::vector<Point> ask(std::size_t shard, std::size_t k);

  /// Pump thread: ingest queued tells (and gossip if due) without asking —
  /// used before checkpointing so no tell is lost in a queue.
  void drain(std::size_t shard);

  std::size_t n_observed(std::size_t shard) const;
  /// Tells ingested from the shard's own queue (excludes gossip merges).
  std::size_t n_local(std::size_t shard) const;
  const AskTellOptimizer& optimizer(std::size_t shard) const;

  /// Line-oriented snapshot of every shard: optimizer tell log + rng,
  /// local-log contents, per-peer consumed prefixes, gossip rng, and the
  /// incremental-surrogate fit state. Queues must be drained first (throws
  /// std::logic_error otherwise — drain() is cheap and pump-owned).
  void save_state(std::ostream& os) const;
  /// Restore into a freshly constructed ShardedBo with the same space and
  /// config. Throws std::runtime_error on malformed or mismatched input.
  void load_state(std::istream& is);

 private:
  struct TellItem {
    Point point;
    double objective = 0.0;
  };

  struct Shard {
    AskTellOptimizer opt;
    MpscQueue<TellItem> queue;
    /// Own-queue tells in ingestion order; peers consume suffix deltas.
    std::vector<TellItem> local_log;
    /// local_log prefix of each peer already merged into this shard.
    std::vector<std::size_t> consumed;
    std::size_t since_gossip = 0;
    Rng gossip_rng;

    Shard(const ParamSpace& space, const BoConfig& bo, std::uint64_t grng_seed)
        : opt(space, bo), gossip_rng(grng_seed) {}
  };

  void ingest(Shard& s);
  void gossip(std::size_t shard);

  ParamSpace space_;
  ShardedBoConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // bo.shard.* instrumentation (DESIGN.md §15): ask/tell/merge latency
  // histograms plus the queue depth observed at each drain.
  obs::Histogram m_ask_;
  obs::Histogram m_tell_;
  obs::Histogram m_merge_;
  obs::Gauge m_depth_;
};

}  // namespace agebo::bo
