#include "bo/optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace agebo::bo {

namespace {

/// Observes the enclosing scope's duration into a latency histogram —
/// how ask/tell cost shows up in `obs` snapshots (p50/p99 per call).
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::Histogram h)
      : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    h_.observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0_)
                   .count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  obs::Histogram h_;
  std::chrono::steady_clock::time_point t0_;
};

ml::ForestConfig surrogate_config(const BoConfig& cfg) {
  ml::ForestConfig fc;
  fc.n_trees = cfg.n_trees;
  fc.bootstrap = true;
  fc.tree.max_depth = cfg.tree_depth;
  fc.tree.min_samples_leaf = 2;
  fc.tree.n_thresholds = 16;
  fc.tree.max_features = 0;  // all features: H_m is low-dimensional
  fc.seed = cfg.seed * 7919 + 1;
  return fc;
}

}  // namespace

AskTellOptimizer::AskTellOptimizer(ParamSpace space, BoConfig cfg)
    : space_(std::move(space)),
      cfg_(cfg),
      rng_(cfg.seed),
      surrogate_(surrogate_config(cfg)) {
  if (cfg_.kappa < 0.0) throw std::invalid_argument("BoConfig: kappa < 0");
  if (cfg_.n_candidates == 0) throw std::invalid_argument("BoConfig: no candidates");
}

void AskTellOptimizer::tell(const std::vector<Point>& points,
                            const std::vector<double>& objectives) {
  if (points.size() != objectives.size()) {
    throw std::invalid_argument("tell: size mismatch");
  }
  ScopedLatency lat(obs::Registry::global().histogram("bo.tell_seconds"));
  OBS_SPAN("bo.tell", {{"points", std::to_string(points.size())}});
  for (std::size_t i = 0; i < points.size(); ++i) {
    space_.validate(points[i]);
    x_points_.push_back(points[i]);
    x_feat_.push_back(space_.to_features(points[i]));
    y_.push_back(objectives[i]);
    seen_.insert(space_.key(points[i]));
  }
}

void AskTellOptimizer::restore(const std::vector<Point>& points,
                               const std::vector<double>& objectives,
                               const Rng::State& rng) {
  if (!x_points_.empty()) {
    throw std::invalid_argument("restore: optimizer already has observations");
  }
  tell(points, objectives);  // validates and rebuilds features + seen keys
  rng_.set_state(rng);
}

void AskTellOptimizer::refit(const std::vector<std::vector<double>>& xs,
                             const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  const std::size_t d = space_.size();
  std::vector<float> flat(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      flat[i * d + j] = static_cast<float>(xs[i][j]);
    }
  }
  surrogate_ = ml::RandomForestRegressor(surrogate_config(cfg_));
  surrogate_.fit(flat, n, d, ys);
}

namespace {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

double AskTellOptimizer::acquisition_value(double mu, double sigma,
                                           double best_observed) const {
  if (cfg_.acquisition == Acquisition::kUcb) {
    return mu + cfg_.kappa * sigma;  // Eq. 3 (maximization)
  }
  // Expected improvement over the incumbent (maximization form).
  if (sigma < 1e-12) return std::max(0.0, mu - best_observed - cfg_.xi);
  const double z = (mu - best_observed - cfg_.xi) / sigma;
  return (mu - best_observed - cfg_.xi) * normal_cdf(z) + sigma * normal_pdf(z);
}

Point AskTellOptimizer::acquire(double best_observed) {
  const std::size_t d = space_.size();
  Point best_point;
  double best_score = -1e300;
  std::vector<float> feat(d);
  for (std::size_t c = 0; c < cfg_.n_candidates; ++c) {
    Point p = space_.sample(rng_);
    // Skip configurations already evaluated; the paper samples among
    // *unevaluated* configurations.
    if (seen_.count(space_.key(p)) > 0) continue;
    const auto features = space_.to_features(p);
    for (std::size_t j = 0; j < d; ++j) feat[j] = static_cast<float>(features[j]);
    double mu = 0.0;
    double sigma = 0.0;
    surrogate_.predict_with_uncertainty(feat.data(), mu, sigma);
    const double score = acquisition_value(mu, sigma, best_observed);
    if (score > best_score) {
      best_score = score;
      best_point = std::move(p);
    }
  }
  if (best_point.empty()) best_point = space_.sample(rng_);  // all seen
  return best_point;
}

std::vector<Point> AskTellOptimizer::ask(std::size_t k) {
  ScopedLatency lat(obs::Registry::global().histogram("bo.ask_seconds"));
  OBS_SPAN("bo.ask", {{"k", std::to_string(k)}});
  std::vector<Point> out;
  out.reserve(k);

  if (y_.size() < cfg_.n_initial_random) {
    for (std::size_t i = 0; i < k; ++i) out.push_back(space_.sample(rng_));
    return out;
  }
  if (cfg_.batch == BatchMode::kQUcb) return ask_qucb(k);

  // Constant-liar batch (paper: lie with the mean of observed objectives).
  double lie = mean(y_);
  if (cfg_.liar == LiarStrategy::kMin) {
    lie = *std::min_element(y_.begin(), y_.end());
  } else if (cfg_.liar == LiarStrategy::kMax) {
    lie = *std::max_element(y_.begin(), y_.end());
  }
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  const bool subsampled = y_.size() > cfg_.max_fit_points;
  if (subsampled) {
    const auto keep =
        rng_.sample_without_replacement(y_.size(), cfg_.max_fit_points);
    xs.reserve(keep.size() + k);
    ys.reserve(keep.size() + k);
    for (std::size_t i : keep) {
      xs.push_back(x_feat_[i]);
      ys.push_back(y_[i]);
    }
  } else {
    xs = x_feat_;
    ys = y_;
  }
  const double best_observed = *std::max_element(y_.begin(), y_.end());
  for (std::size_t i = 0; i < k; ++i) {
    if (i == 0) {
      // The leading fit has no liar rows; when the tell log is unchanged
      // since the last such fit (and no subsample draw was involved), the
      // cached forest is bitwise the forest a refit would rebuild.
      const bool cache_hit =
          cfg_.refit_cache && !subsampled && base_fit_tells_ == y_.size();
      if (!cache_hit) {
        refit(xs, ys);
        base_fit_tells_ = subsampled ? kNoBaseFit : y_.size();
      }
    } else {
      refit(xs, ys);  // xs now carries liar rows: never cacheable
      base_fit_tells_ = kNoBaseFit;
    }
    Point p = acquire(best_observed);
    xs.push_back(space_.to_features(p));
    ys.push_back(lie);
    out.push_back(std::move(p));
  }
  return out;
}

void AskTellOptimizer::ensure_fit() {
  if (fitted_tells_ == y_.size() && !tree_fits_.empty()) return;
  const std::size_t n_all = y_.size();
  const std::size_t n = std::min(n_all, cfg_.max_fit_points);
  const std::size_t begin = n_all - n;
  const std::size_t d = space_.size();
  std::vector<float> flat(n * d);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      flat[i * d + j] = static_cast<float>(x_feat_[begin + i][j]);
    }
    ys[i] = y_[begin + i];
  }
  std::size_t refresh = cfg_.n_trees;
  if (cfg_.refit == RefitMode::kIncremental && !tree_fits_.empty()) {
    refresh = std::min(std::max<std::size_t>(1, cfg_.refit_trees), cfg_.n_trees);
  }
  if (tree_fits_.empty()) tree_fits_.assign(cfg_.n_trees, {0, 0});
  for (std::size_t j = 0; j < refresh; ++j) {
    const std::size_t t = (next_rotate_ + j) % cfg_.n_trees;
    surrogate_.refit_tree(t, flat, n, d, ys, next_salt_);
    tree_fits_[t] = {n_all, next_salt_};
  }
  next_rotate_ = (next_rotate_ + refresh) % cfg_.n_trees;
  ++next_salt_;
  fitted_tells_ = n_all;
}

std::vector<Point> AskTellOptimizer::ask_qucb(std::size_t k) {
  ensure_fit();
  const std::size_t d = space_.size();

  // One shared candidate pool, scored once: the batch costs one fit plus
  // one pool scoring instead of k of each under the constant liar.
  struct Cand {
    Point p;
    double mu;
    double sigma;
  };
  std::vector<Cand> pool;
  pool.reserve(cfg_.n_candidates);
  std::vector<float> feat(d);
  for (std::size_t c = 0; c < cfg_.n_candidates; ++c) {
    Point p = space_.sample(rng_);
    if (seen_.count(space_.key(p)) > 0) continue;
    const auto features = space_.to_features(p);
    for (std::size_t j = 0; j < d; ++j) feat[j] = static_cast<float>(features[j]);
    Cand cand;
    cand.mu = 0.0;
    cand.sigma = 0.0;
    surrogate_.predict_with_uncertainty(feat.data(), cand.mu, cand.sigma);
    cand.p = std::move(p);
    pool.push_back(std::move(cand));
  }

  std::vector<Point> out;
  out.reserve(k);
  std::vector<char> taken(pool.size(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    // kappa_i ~ Exp(mean = cfg.kappa): mostly exploitative picks with an
    // occasional long-tailed explorer, which is what diversifies the batch
    // without liar refits (Egelé et al.).
    const double u = 1.0 - rng_.uniform();  // (0, 1]
    const double kappa_i = -cfg_.kappa * std::log(u);
    std::size_t best = pool.size();
    double best_score = -1e300;
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (taken[c]) continue;
      const double score = pool[c].mu + kappa_i * pool[c].sigma;
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best == pool.size()) {
      out.push_back(space_.sample(rng_));  // pool exhausted (or all seen)
      continue;
    }
    taken[best] = 1;
    out.push_back(pool[best].p);
  }
  return out;
}

AskTellOptimizer::IncrementalFitState AskTellOptimizer::incremental_state()
    const {
  IncrementalFitState st;
  st.trees = tree_fits_;
  st.next_rotate = next_rotate_;
  st.next_salt = next_salt_;
  st.fitted_tells = fitted_tells_;
  return st;
}

void AskTellOptimizer::restore_incremental_state(
    const IncrementalFitState& st) {
  if (!st.trees.empty() && st.trees.size() != cfg_.n_trees) {
    throw std::invalid_argument(
        "restore_incremental_state: tree count mismatch");
  }
  tree_fits_ = st.trees;
  next_rotate_ = st.next_rotate;
  next_salt_ = st.next_salt;
  fitted_tells_ = st.fitted_tells;
  const std::size_t d = space_.size();
  for (std::size_t t = 0; t < tree_fits_.size(); ++t) {
    const auto [fit_end, salt] = tree_fits_[t];
    if (fit_end == 0) continue;
    if (fit_end > y_.size()) {
      throw std::invalid_argument(
          "restore_incremental_state: fit_end beyond tell log");
    }
    const std::size_t n = std::min(fit_end, cfg_.max_fit_points);
    const std::size_t begin = fit_end - n;
    std::vector<float> flat(n * d);
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        flat[i * d + j] = static_cast<float>(x_feat_[begin + i][j]);
      }
      ys[i] = y_[begin + i];
    }
    surrogate_.refit_tree(t, flat, n, d, ys, salt);
  }
}

}  // namespace agebo::bo
