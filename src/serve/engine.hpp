// Batched inference engine over a frozen model artifact (DESIGN.md §12–13).
//
// Replays the frozen graph through the blocked GEMM kernels with the same
// fused bias/activation epilogues the trainer uses — and through *exactly*
// the same kernel entry points in the same order, so engine logits are
// bitwise identical to GraphNet::forward on the source network (the export
// round-trip test asserts this on sampled search-space architectures).
//
// Execution modes, selected at load/freeze time:
//   kFp32 — the bitwise-faithful fp32 path above.
//   kInt8 — the quantized fast path (DESIGN.md §13): every GEMM in the
//     frozen graph — dense nodes, skip projections, and the readout — runs
//     through kernels::gemm_u8s8 (u8 activations x s8 weights -> s32,
//     fused dequant+bias+activation epilogue, weights pre-packed at build)
//     using the artifact's v3 quant section; identity nodes and the
//     elementwise combine-sum/ReLU/softmax stages stay in fp32, which
//     keeps the int8 mode exact w.r.t. its own quantization grid
//     (run-to-run deterministic and identical across dispatched ISAs)
//     while quantizing all the arithmetic that scales with layer width.
//     Requires artifact.has_quant().
//
// Inference-only by construction: no Rng, no gradient buffers, no cached
// inputs for backprop. Every per-call buffer (node outputs, pre-activation
// staging, combine scratch, logits, probabilities) is a persistent member
// reused across calls, so steady-state predict_batch performs zero
// allocations. `const` on the predict entry points is logical — the scratch
// is mutable — so concurrent calls on one engine must be serialized; the
// MicroBatcher (batcher.hpp) is the intended high-throughput front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/predictor.hpp"
#include "nn/kernels/gemm_s8.hpp"
#include "nn/quant.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"

namespace agebo::serve {

enum class EngineMode { kFp32, kInt8 };

class InferenceEngine final : public Predictor {
 public:
  /// Builds the frozen layer stack from `artifact`. Throws
  /// std::runtime_error when the parameter blocks do not match the
  /// architecture (count or shape), or when kInt8 is requested but the
  /// artifact has no (or an incomplete) v3 quant section.
  explicit InferenceEngine(nn::ModelArtifact artifact,
                           EngineMode mode = EngineMode::kFp32);

  EngineMode mode() const { return mode_; }

  std::size_t input_dim() const override { return artifact_.spec.input_dim; }
  std::size_t output_dim() const override { return artifact_.spec.output_dim; }

  /// Softmax class probabilities for n row-major rows into out
  /// (n x output_dim).
  void predict_batch(const float* rows, std::size_t n,
                     float* out) const override;

  /// Raw logits (pre-softmax), n x output_dim. In kFp32 mode these are
  /// bitwise identical to GraphNet::forward on the network the artifact
  /// was frozen from; in kInt8 mode they are the deterministic quantized
  /// approximation.
  void predict_logits(const float* rows, std::size_t n, float* out) const;

  /// Calibrate on `n` sample rows (fp32 forward recording each quantizable
  /// GEMM's input range) and return a copy of the artifact with a
  /// populated v3 quant section: symmetric per-output-column weight
  /// quantization, per-tensor affine activation scales. The result loads
  /// into an int8-mode engine. Must be called on a kFp32 engine with
  /// n >= 1.
  nn::ModelArtifact quantized_artifact(const float* rows, std::size_t n) const;

  const nn::GraphSpec& spec() const { return artifact_.spec; }
  const nn::ModelArtifact& artifact() const { return artifact_; }
  std::size_t num_params() const;

 private:
  /// One frozen dense op: weights (in x out) and optional bias.
  struct Linear {
    nn::Tensor w;
    std::vector<float> b;  // empty = no bias (skip projections)
  };
  /// The int8 image of a Linear, precomputed for kernels::gemm_u8s8:
  /// quantized weights plus the fused-epilogue vectors.
  struct QuantLinear {
    std::size_t rows = 0;
    std::size_t cols = 0;
    float inv_scale = 1.0f;  // 1 / input act scale
    std::int32_t zp = 0;
    std::vector<std::int8_t> wq;       // rows x cols
    std::vector<float> dq_scale;       // per column
    std::vector<std::int32_t> comp;    // per column
    /// B panels packed once at build for the dispatched int8 tier, so
    /// predict never re-packs the constant weights.
    nn::kernels::PackedWeightsS8 packed;
  };
  struct Edge {
    std::size_t src;
    std::optional<Linear> proj;  // nullopt = identity map (widths match)
    std::optional<QuantLinear> qproj;  // int8 image; kInt8 mode only
  };
  struct Combine {
    std::vector<Edge> edges;
    bool active() const { return !edges.empty(); }
  };

  void build_quantized();
  void combine_forward(const Combine& c, const nn::Tensor& base) const;
  void combine_forward_int8(const Combine& c, const nn::Tensor& base) const;
  void forward(const float* rows, std::size_t n) const;       // fills logits_
  void forward_int8(const float* rows, std::size_t n) const;  // fills logits_

  nn::ModelArtifact artifact_;  // kept for spec/metadata introspection
  EngineMode mode_ = EngineMode::kFp32;
  std::vector<std::size_t> dims_;
  std::vector<std::optional<Linear>> node_dense_;
  std::vector<Combine> node_combine_;
  Combine output_combine_;
  Linear output_dense_;
  std::vector<std::optional<QuantLinear>> node_quant_;
  std::optional<QuantLinear> output_quant_;

  // Reused inference scratch (see header comment on const semantics).
  mutable std::vector<nn::Tensor> outs_;
  mutable std::vector<nn::Tensor> pre_act_;
  mutable nn::Tensor combine_sum_;
  mutable nn::Tensor combine_buf_;
  mutable nn::Tensor logits_;
  mutable nn::Tensor probs_;
  // Calibration hook: when non-null, the fp32 forward records each
  // quantizable GEMM's input [min, max] here in quantizable-op order.
  mutable std::vector<std::pair<float, float>>* calib_ranges_ = nullptr;
};

/// Load an artifact file and build an engine for it.
InferenceEngine load_engine(const std::string& path,
                            EngineMode mode = EngineMode::kFp32);

/// Calibrate + quantize in one step: artifact in, v3 artifact out.
nn::ModelArtifact quantize_artifact(const nn::ModelArtifact& artifact,
                                    const float* rows, std::size_t n);

}  // namespace agebo::serve
