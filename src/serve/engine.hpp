// Batched inference engine over a frozen model artifact (DESIGN.md §12).
//
// Replays the frozen graph through the blocked GEMM kernels with the same
// fused bias/activation epilogues the trainer uses — and through *exactly*
// the same kernel entry points in the same order, so engine logits are
// bitwise identical to GraphNet::forward on the source network (the export
// round-trip test asserts this on sampled search-space architectures).
//
// Inference-only by construction: no Rng, no gradient buffers, no cached
// inputs for backprop. Every per-call buffer (node outputs, pre-activation
// staging, combine scratch, logits, probabilities) is a persistent member
// reused across calls, so steady-state predict_batch performs zero
// allocations. `const` on the predict entry points is logical — the scratch
// is mutable — so concurrent calls on one engine must be serialized; the
// MicroBatcher (batcher.hpp) is the intended high-throughput front end.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/predictor.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"

namespace agebo::serve {

class InferenceEngine final : public Predictor {
 public:
  /// Builds the frozen layer stack from `artifact`. Throws
  /// std::runtime_error when the parameter blocks do not match the
  /// architecture (count or shape).
  explicit InferenceEngine(nn::ModelArtifact artifact);

  std::size_t input_dim() const override { return artifact_.spec.input_dim; }
  std::size_t output_dim() const override { return artifact_.spec.output_dim; }

  /// Softmax class probabilities for n row-major rows into out
  /// (n x output_dim).
  void predict_batch(const float* rows, std::size_t n,
                     float* out) const override;

  /// Raw logits (pre-softmax), n x output_dim — bitwise identical to
  /// GraphNet::forward on the network the artifact was frozen from.
  void predict_logits(const float* rows, std::size_t n, float* out) const;

  const nn::GraphSpec& spec() const { return artifact_.spec; }
  const nn::ModelArtifact& artifact() const { return artifact_; }
  std::size_t num_params() const;

 private:
  /// One frozen dense op: weights (in x out) and optional bias.
  struct Linear {
    nn::Tensor w;
    std::vector<float> b;  // empty = no bias (skip projections)
  };
  struct Edge {
    std::size_t src;
    std::optional<Linear> proj;  // nullopt = identity map (widths match)
  };
  struct Combine {
    std::vector<Edge> edges;
    bool active() const { return !edges.empty(); }
  };

  void combine_forward(const Combine& c, const nn::Tensor& base) const;
  void forward(const float* rows, std::size_t n) const;  // fills logits_

  nn::ModelArtifact artifact_;  // kept for spec/metadata introspection
  std::vector<std::size_t> dims_;
  std::vector<std::optional<Linear>> node_dense_;
  std::vector<Combine> node_combine_;
  Combine output_combine_;
  Linear output_dense_;

  // Reused inference scratch (see header comment on const semantics).
  mutable std::vector<nn::Tensor> outs_;
  mutable std::vector<nn::Tensor> pre_act_;
  mutable nn::Tensor combine_sum_;
  mutable nn::Tensor combine_buf_;
  mutable nn::Tensor logits_;
  mutable nn::Tensor probs_;
};

/// Load an artifact file and build an engine for it.
InferenceEngine load_engine(const std::string& path);

}  // namespace agebo::serve
