#include "serve/batcher.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace agebo::serve {

namespace {

// Fine-grained latency buckets: 10 us floor so sub-millisecond queue waits
// and batch latencies still resolve into distinct buckets (the registry
// default floor of 100 us would flatten them).
const obs::HistogramSpec kLatencySpec{1e-5, 1.6, 40};

struct ServeMetrics {
  obs::Counter requests;
  obs::Counter batches;
  obs::Histogram batch_size;
  obs::Histogram queue_wait;
  obs::Histogram latency;
  static const ServeMetrics& get() {
    static const ServeMetrics m{
        obs::Registry::global().counter("serve.requests"),
        obs::Registry::global().counter("serve.batches"),
        obs::Registry::global().histogram("serve.batch_size",
                                          {1.0, 2.0, 16}),
        obs::Registry::global().histogram("serve.queue_wait", kLatencySpec),
        obs::Registry::global().histogram("serve.latency", kLatencySpec),
    };
    return m;
  }
};

}  // namespace

MicroBatcher::MicroBatcher(const InferenceEngine& engine,
                           MicroBatcherConfig config)
    : engine_(engine), config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch must be > 0");
  }
  batch_.reserve(config_.max_batch);
  rows_.reserve(config_.max_batch * engine_.input_dim());
  probs_.reserve(config_.max_batch * engine_.output_dim());
  worker_ = std::thread([this] { worker_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::predict_row(const float* row, float* probs_out) {
  Request req;
  req.row = row;
  req.out = probs_out;
  req.enqueue_s = obs::trace_now_seconds();
  std::condition_variable done_cv;
  req.cv = &done_cv;

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    throw std::runtime_error("MicroBatcher::predict_row: batcher stopped");
  }
  // Backpressure: block (rather than grow unboundedly) when the worker is
  // saturated. Stop() drains, so waiting here cannot deadlock shutdown.
  worker_cv_.wait(lock, [this] {
    return queue_.size() < config_.queue_capacity || stopping_;
  });
  if (stopping_) {
    throw std::runtime_error("MicroBatcher::predict_row: batcher stopped");
  }
  queue_.push_back(&req);
  worker_cv_.notify_all();
  done_cv.wait(lock, [&req] { return req.done; });

  const double latency = obs::trace_now_seconds() - req.enqueue_s;
  ServeMetrics::get().latency.observe(latency);
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void MicroBatcher::serve_batch(std::vector<Request*>& batch) {
  const std::size_t in = engine_.input_dim();
  const std::size_t out = engine_.output_dim();
  const double now = obs::trace_now_seconds();

  rows_.resize(batch.size() * in);
  probs_.resize(batch.size() * out);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(rows_.data() + i * in, batch[i]->row, in * sizeof(float));
    ServeMetrics::get().queue_wait.observe(now - batch[i]->enqueue_s);
  }
  {
    OBS_SPAN("serve.batch", {{"rows", std::to_string(batch.size())}});
    engine_.predict_batch(rows_.data(), batch.size(), probs_.data());
  }
  ServeMetrics::get().batches.inc();
  ServeMetrics::get().requests.add(batch.size());
  ServeMetrics::get().batch_size.observe(static_cast<double>(batch.size()));

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(batch[i]->out, probs_.data() + i * out, out * sizeof(float));
    batch[i]->done = true;
    batch[i]->cv->notify_all();
  }
}

void MicroBatcher::worker_loop() {
  obs::set_thread_lane("serve.batcher");
  const auto budget = std::chrono::duration<double, std::milli>(
      config_.max_delay_ms);

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    worker_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
    if (queue_.empty() && stopping_) break;

    // The oldest queued request anchors the deadline; keep coalescing
    // until the batch fills, the budget expires, or stop() drains us.
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (queue_.size() < config_.max_batch && !stopping_) {
      if (worker_cv_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }

    batch_.clear();
    while (!queue_.empty() && batch_.size() < config_.max_batch) {
      batch_.push_back(queue_.front());
      queue_.pop_front();
    }
    if (batch_.empty()) continue;
    // Space freed: unblock submitters waiting on backpressure.
    worker_cv_.notify_all();

    lock.unlock();
    serve_batch(batch_);
    lock.lock();
  }
}

}  // namespace agebo::serve
