#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "nn/activation.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/gemm_s8.hpp"
#include "nn/loss.hpp"
#include "obs/obs.hpp"

namespace agebo::serve {

namespace {

/// Pops the next parameter block from the artifact, checking the expected
/// element count so a spec/weights mismatch fails at load, not predict.
const std::vector<float>& take_block(const nn::ModelArtifact& artifact,
                                     std::size_t& at, std::size_t want,
                                     const char* what) {
  if (at >= artifact.blocks.size()) {
    throw std::runtime_error(
        std::string("InferenceEngine: artifact has too few parameter "
                    "blocks (missing ") +
        what + ")");
  }
  const auto& block = artifact.blocks[at];
  if (block.size() != want) {
    throw std::runtime_error(
        std::string("InferenceEngine: parameter block size mismatch for ") +
        what + ": got " + std::to_string(block.size()) + ", want " +
        std::to_string(want));
  }
  ++at;
  return block;
}

/// Append t's [min, max] to `out` when calibration is recording.
void record_minmax(std::vector<std::pair<float, float>>* out,
                   const nn::Tensor& t) {
  if (out == nullptr) return;
  float lo = 0.0f;
  float hi = 0.0f;
  if (!t.v.empty()) {
    const auto [mn, mx] = std::minmax_element(t.v.begin(), t.v.end());
    lo = *mn;
    hi = *mx;
  }
  out->emplace_back(lo, hi);
}

}  // namespace

InferenceEngine::InferenceEngine(nn::ModelArtifact artifact, EngineMode mode)
    : artifact_(std::move(artifact)), mode_(mode) {
  const nn::GraphSpec& spec = artifact_.spec;
  spec.validate();
  const std::size_t m = spec.nodes.size();

  dims_.resize(m + 1);
  dims_[0] = spec.input_dim;
  node_dense_.resize(m);
  node_combine_.resize(m);

  std::size_t at = 0;
  auto build_combine = [&](const std::vector<std::size_t>& skips,
                           std::size_t base_dim) {
    Combine c;
    for (std::size_t src : skips) {
      Edge edge{src, std::nullopt};
      if (dims_[src] != base_dim) {
        // Width-matching projection: bias-less, one W block in params()
        // order, stored as (src_dim x base_dim) just like DenseLayer.
        const auto& w = take_block(artifact_, at, dims_[src] * base_dim,
                                   "skip projection");
        edge.proj.emplace();
        edge.proj->w = nn::Tensor(dims_[src], base_dim);
        edge.proj->w.v = w;
      }
      c.edges.push_back(std::move(edge));
    }
    return c;
  };

  for (std::size_t k = 0; k < m; ++k) {
    const nn::NodeSpec& ns = spec.nodes[k];
    node_combine_[k] = build_combine(ns.skips, dims_[k]);
    if (ns.is_identity) {
      dims_[k + 1] = dims_[k];
    } else {
      auto& dense = node_dense_[k].emplace();
      dense.w = nn::Tensor(dims_[k], ns.units);
      dense.w.v = take_block(artifact_, at, dims_[k] * ns.units, "dense W");
      dense.b = take_block(artifact_, at, ns.units, "dense bias");
      dims_[k + 1] = ns.units;
    }
  }
  output_combine_ = build_combine(spec.output_skips, dims_[m]);
  output_dense_.w = nn::Tensor(dims_[m], spec.output_dim);
  output_dense_.w.v =
      take_block(artifact_, at, dims_[m] * spec.output_dim, "readout W");
  output_dense_.b = take_block(artifact_, at, spec.output_dim, "readout bias");
  if (at != artifact_.blocks.size()) {
    throw std::runtime_error(
        "InferenceEngine: artifact has " +
        std::to_string(artifact_.blocks.size()) + " parameter blocks, but " +
        "the architecture consumes only " + std::to_string(at));
  }

  outs_.resize(m + 1);
  pre_act_.resize(m);
  node_quant_.resize(m);
  if (mode_ == EngineMode::kInt8) build_quantized();
}

// Cross-checks the v3 quant section against the architecture and
// precomputes the gemm_u8s8 epilogue vectors (plus the pre-packed B
// panels). Quantizable-op order (index = ordinal): for each node, its
// skip-projection edges in edge order, then its dense op; then the output
// skip projections; then the readout.
void InferenceEngine::build_quantized() {
  if (!artifact_.has_quant()) {
    throw std::runtime_error(
        "InferenceEngine: int8 mode requested but the artifact has no quant "
        "section (calibrate with quantize_artifact first, or load a v3 "
        "artifact)");
  }
  const std::size_t m = artifact_.spec.nodes.size();
  auto find_layer = [&](std::size_t index) -> const nn::QuantLayer& {
    for (const auto& ql : artifact_.quant) {
      if (ql.index == index) return ql;
    }
    throw std::runtime_error(
        "InferenceEngine: quant section is missing quantizable op " +
        std::to_string(index));
  };
  auto build_one = [&](const nn::QuantLayer& ql, const Linear& dense,
                       std::size_t index) {
    if (ql.rows != dense.w.rows || ql.cols != dense.w.cols ||
        ql.wq.size() != ql.rows * ql.cols || ql.w_scales.size() != ql.cols) {
      throw std::runtime_error(
          "InferenceEngine: quant shape mismatch for op " +
          std::to_string(index) + ": got " + std::to_string(ql.rows) + "x" +
          std::to_string(ql.cols) + ", want " + std::to_string(dense.w.rows) +
          "x" + std::to_string(dense.w.cols));
    }
    QuantLinear q;
    q.rows = ql.rows;
    q.cols = ql.cols;
    q.inv_scale = 1.0f / ql.input.scale;
    q.zp = ql.input.zero_point;
    q.wq = ql.wq;
    q.dq_scale = nn::dequant_scales(ql);
    q.comp = nn::zero_point_compensation(ql);
    q.packed = nn::kernels::pack_weights_s8(q.wq.data(), q.cols, q.rows,
                                            q.cols);
    return q;
  };

  std::size_t index = 0;
  auto attach_edges = [&](Combine& c) {
    for (auto& edge : c.edges) {
      if (!edge.proj.has_value()) continue;
      edge.qproj = build_one(find_layer(index), *edge.proj, index);
      ++index;
    }
  };
  for (std::size_t k = 0; k < m; ++k) {
    attach_edges(node_combine_[k]);
    if (!node_dense_[k].has_value()) continue;
    node_quant_[k] = build_one(find_layer(index), *node_dense_[k], index);
    ++index;
  }
  attach_edges(output_combine_);
  output_quant_ = build_one(find_layer(index), output_dense_, index);
  ++index;
  if (artifact_.quant.size() != index) {
    throw std::runtime_error(
        "InferenceEngine: quant section has " +
        std::to_string(artifact_.quant.size()) + " layers but the " +
        "architecture has " + std::to_string(index) + " quantizable ops");
  }
}

std::size_t InferenceEngine::num_params() const {
  std::size_t n = 0;
  for (const auto& block : artifact_.blocks) n += block.size();
  return n;
}

void InferenceEngine::combine_forward(const Combine& c,
                                      const nn::Tensor& base) const {
  // Mirrors GraphNet::combine_forward: sum = base (+ projected skips),
  // then ReLU into the shared combine buffer. The projection GEMM
  // accumulates straight into the sum, exactly as DenseLayer::forward_add.
  combine_sum_ = base;  // capacity-reusing copy
  for (const auto& edge : c.edges) {
    const nn::Tensor& src = outs_[edge.src];
    if (edge.proj.has_value()) {
      record_minmax(calib_ranges_, src);  // projection = quantizable op
      const nn::Tensor& w = edge.proj->w;
      nn::kernels::gemm(src.rows, w.cols, w.rows, src.v.data(), w.rows,
                    w.v.data(), w.cols, combine_sum_.v.data(), w.cols,
                    /*accumulate=*/true);
    } else {
      nn::add_inplace(combine_sum_, src);
    }
  }
  nn::apply_activation(nn::Activation::kRelu, combine_sum_, combine_buf_);
}

// The quantized combine: each projection runs through the int8 kernel in
// dequant-accumulate mode, adding straight into the running sum exactly
// like the fp32 projection's accumulate GEMM; identity skips and the ReLU
// are elementwise fp32, same as the fp32 path.
void InferenceEngine::combine_forward_int8(const Combine& c,
                                           const nn::Tensor& base) const {
  combine_sum_ = base;  // capacity-reusing copy
  for (const auto& edge : c.edges) {
    const nn::Tensor& src = outs_[edge.src];
    if (edge.proj.has_value()) {
      const QuantLinear& q = *edge.qproj;
      nn::kernels::QuantEpilogue qep;
      qep.dq_scale = q.dq_scale.data();
      qep.comp = q.comp.data();
      qep.accumulate = true;
      nn::kernels::gemm_u8s8(src.rows, q.cols, q.rows, src.v.data(), q.rows,
                             q.inv_scale, q.zp, q.wq.data(), q.cols,
                             combine_sum_.v.data(), q.cols, qep, &q.packed);
    } else {
      nn::add_inplace(combine_sum_, src);
    }
  }
  nn::apply_activation(nn::Activation::kRelu, combine_sum_, combine_buf_);
}

void InferenceEngine::forward(const float* rows, std::size_t n) const {
  const nn::GraphSpec& spec = artifact_.spec;
  const std::size_t m = spec.nodes.size();
  nn::ensure_shape(outs_[0], n, spec.input_dim);
  std::memcpy(outs_[0].v.data(), rows, n * spec.input_dim * sizeof(float));

  for (std::size_t k = 0; k < m; ++k) {
    const nn::Tensor* node_input = &outs_[k];
    if (node_combine_[k].active()) {
      combine_forward(node_combine_[k], outs_[k]);
      node_input = &combine_buf_;
    }
    if (spec.nodes[k].is_identity) {
      outs_[k + 1] = *node_input;  // combine_buf_ is reused; must copy
    } else {
      record_minmax(calib_ranges_, *node_input);
      // Same fused GEMM the trainer uses: bias + activation epilogue with
      // the pre-activation staged alongside, so the arithmetic (and hence
      // every output bit) matches GraphNet::forward.
      const Linear& dense = *node_dense_[k];
      nn::ensure_shape(pre_act_[k], n, dense.w.cols);
      nn::ensure_shape(outs_[k + 1], n, dense.w.cols);
      nn::kernels::Epilogue ep;
      ep.bias = dense.b.data();
      ep.act = spec.nodes[k].act;
      ep.pre_act = pre_act_[k].v.data();
      nn::kernels::gemm(n, dense.w.cols, dense.w.rows, node_input->v.data(),
                    dense.w.rows, dense.w.v.data(), dense.w.cols,
                    outs_[k + 1].v.data(), dense.w.cols,
                    /*accumulate=*/false, &ep);
    }
  }

  const nn::Tensor* readout_input = &outs_[m];
  if (output_combine_.active()) {
    combine_forward(output_combine_, outs_[m]);
    readout_input = &combine_buf_;
  }
  record_minmax(calib_ranges_, *readout_input);
  nn::ensure_shape(logits_, n, spec.output_dim);
  nn::kernels::Epilogue ep;
  ep.bias = output_dense_.b.data();
  nn::kernels::gemm(n, output_dense_.w.cols, output_dense_.w.rows,
                readout_input->v.data(), output_dense_.w.rows,
                output_dense_.w.v.data(), output_dense_.w.cols,
                logits_.v.data(), output_dense_.w.cols,
                /*accumulate=*/false, &ep);
}

// The quantized replay of forward(): identical graph traversal and fp32
// interchange buffers, but every GEMM — dense nodes, skip projections, and
// the readout — runs through the int8 kernel: activations quantized while
// the A panel packs, s32 accumulation, fused dequant + bias + activation
// back to fp32. Only the elementwise stages (combine sum/ReLU, identity
// copies, softmax) stay on fp32 code.
void InferenceEngine::forward_int8(const float* rows, std::size_t n) const {
  const nn::GraphSpec& spec = artifact_.spec;
  const std::size_t m = spec.nodes.size();
  nn::ensure_shape(outs_[0], n, spec.input_dim);
  std::memcpy(outs_[0].v.data(), rows, n * spec.input_dim * sizeof(float));

  auto quant_gemm = [&](const QuantLinear& q, const Linear& dense,
                        nn::Activation act, const nn::Tensor& in,
                        nn::Tensor& out) {
    nn::ensure_shape(out, n, q.cols);
    nn::kernels::QuantEpilogue qep;
    qep.dq_scale = q.dq_scale.data();
    qep.comp = q.comp.data();
    qep.bias = dense.b.data();
    qep.act = act;
    nn::kernels::gemm_u8s8(n, q.cols, q.rows, in.v.data(), q.rows,
                           q.inv_scale, q.zp, q.wq.data(), q.cols,
                           out.v.data(), q.cols, qep, &q.packed);
  };

  for (std::size_t k = 0; k < m; ++k) {
    const nn::Tensor* node_input = &outs_[k];
    if (node_combine_[k].active()) {
      combine_forward_int8(node_combine_[k], outs_[k]);
      node_input = &combine_buf_;
    }
    if (spec.nodes[k].is_identity) {
      outs_[k + 1] = *node_input;  // combine_buf_ is reused; must copy
    } else {
      quant_gemm(*node_quant_[k], *node_dense_[k], spec.nodes[k].act,
                 *node_input, outs_[k + 1]);
    }
  }

  const nn::Tensor* readout_input = &outs_[m];
  if (output_combine_.active()) {
    combine_forward_int8(output_combine_, outs_[m]);
    readout_input = &combine_buf_;
  }
  quant_gemm(*output_quant_, output_dense_, nn::Activation::kIdentity,
             *readout_input, logits_);
}

nn::ModelArtifact InferenceEngine::quantized_artifact(const float* rows,
                                                      std::size_t n) const {
  if (mode_ != EngineMode::kFp32) {
    throw std::runtime_error(
        "quantized_artifact: calibration runs on a kFp32 engine");
  }
  if (n == 0 || rows == nullptr) {
    throw std::runtime_error(
        "quantized_artifact: need at least one calibration row");
  }
  std::vector<std::pair<float, float>> ranges;
  calib_ranges_ = &ranges;
  forward(rows, n);
  calib_ranges_ = nullptr;

  // Same traversal order as build_quantized / the calibration recording:
  // per node, projection edges then the dense op; output projections; the
  // readout.
  nn::ModelArtifact out = artifact_;
  out.quant.clear();
  std::size_t index = 0;
  auto push_layer = [&](const Linear& op) {
    nn::QuantLayer ql;
    ql.index = index;
    ql.input = nn::act_quant_from_range(ranges[index].first,
                                        ranges[index].second);
    nn::quantize_weights_per_col(op.w.v.data(), op.w.rows, op.w.cols, ql);
    out.quant.push_back(std::move(ql));
    ++index;
  };
  auto push_edges = [&](const Combine& c) {
    for (const auto& edge : c.edges) {
      if (edge.proj.has_value()) push_layer(*edge.proj);
    }
  };
  for (std::size_t k = 0; k < node_dense_.size(); ++k) {
    push_edges(node_combine_[k]);
    if (node_dense_[k].has_value()) push_layer(*node_dense_[k]);
  }
  push_edges(output_combine_);
  push_layer(output_dense_);
  return out;
}

void InferenceEngine::predict_logits(const float* rows, std::size_t n,
                                     float* out) const {
  if (n == 0) return;
  if (mode_ == EngineMode::kInt8) {
    OBS_SPAN("serve.quantized.infer", {{"rows", std::to_string(n)}});
    forward_int8(rows, n);
  } else {
    OBS_SPAN("serve.infer", {{"rows", std::to_string(n)}});
    forward(rows, n);
  }
  std::memcpy(out, logits_.v.data(), logits_.v.size() * sizeof(float));
}

void InferenceEngine::predict_batch(const float* rows, std::size_t n,
                                    float* out) const {
  if (n == 0) return;
  if (mode_ == EngineMode::kInt8) {
    OBS_SPAN("serve.quantized.infer", {{"rows", std::to_string(n)}});
    forward_int8(rows, n);
    nn::softmax(logits_, probs_);
    std::memcpy(out, probs_.v.data(), probs_.v.size() * sizeof(float));
    static const auto predictions =
        obs::Registry::global().counter("serve.quantized.predictions");
    predictions.add(n);
    return;
  }
  OBS_SPAN("serve.infer",
           {{"rows", std::to_string(n)}});
  forward(rows, n);
  nn::softmax(logits_, probs_);
  std::memcpy(out, probs_.v.data(), probs_.v.size() * sizeof(float));
  static const auto predictions =
      obs::Registry::global().counter("serve.predictions");
  predictions.add(n);
}

InferenceEngine load_engine(const std::string& path, EngineMode mode) {
  return InferenceEngine(nn::load_artifact_file(path), mode);
}

nn::ModelArtifact quantize_artifact(const nn::ModelArtifact& artifact,
                                    const float* rows, std::size_t n) {
  return InferenceEngine(artifact).quantized_artifact(rows, n);
}

}  // namespace agebo::serve
