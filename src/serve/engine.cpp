#include "serve/engine.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "nn/activation.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/loss.hpp"
#include "obs/obs.hpp"

namespace agebo::serve {

namespace {

/// Pops the next parameter block from the artifact, checking the expected
/// element count so a spec/weights mismatch fails at load, not predict.
const std::vector<float>& take_block(const nn::ModelArtifact& artifact,
                                     std::size_t& at, std::size_t want,
                                     const char* what) {
  if (at >= artifact.blocks.size()) {
    throw std::runtime_error(
        std::string("InferenceEngine: artifact has too few parameter "
                    "blocks (missing ") +
        what + ")");
  }
  const auto& block = artifact.blocks[at];
  if (block.size() != want) {
    throw std::runtime_error(
        std::string("InferenceEngine: parameter block size mismatch for ") +
        what + ": got " + std::to_string(block.size()) + ", want " +
        std::to_string(want));
  }
  ++at;
  return block;
}

}  // namespace

InferenceEngine::InferenceEngine(nn::ModelArtifact artifact)
    : artifact_(std::move(artifact)) {
  const nn::GraphSpec& spec = artifact_.spec;
  spec.validate();
  const std::size_t m = spec.nodes.size();

  dims_.resize(m + 1);
  dims_[0] = spec.input_dim;
  node_dense_.resize(m);
  node_combine_.resize(m);

  std::size_t at = 0;
  auto build_combine = [&](const std::vector<std::size_t>& skips,
                           std::size_t base_dim) {
    Combine c;
    for (std::size_t src : skips) {
      Edge edge{src, std::nullopt};
      if (dims_[src] != base_dim) {
        // Width-matching projection: bias-less, one W block in params()
        // order, stored as (src_dim x base_dim) just like DenseLayer.
        const auto& w = take_block(artifact_, at, dims_[src] * base_dim,
                                   "skip projection");
        edge.proj.emplace();
        edge.proj->w = nn::Tensor(dims_[src], base_dim);
        edge.proj->w.v = w;
      }
      c.edges.push_back(std::move(edge));
    }
    return c;
  };

  for (std::size_t k = 0; k < m; ++k) {
    const nn::NodeSpec& ns = spec.nodes[k];
    node_combine_[k] = build_combine(ns.skips, dims_[k]);
    if (ns.is_identity) {
      dims_[k + 1] = dims_[k];
    } else {
      auto& dense = node_dense_[k].emplace();
      dense.w = nn::Tensor(dims_[k], ns.units);
      dense.w.v = take_block(artifact_, at, dims_[k] * ns.units, "dense W");
      dense.b = take_block(artifact_, at, ns.units, "dense bias");
      dims_[k + 1] = ns.units;
    }
  }
  output_combine_ = build_combine(spec.output_skips, dims_[m]);
  output_dense_.w = nn::Tensor(dims_[m], spec.output_dim);
  output_dense_.w.v =
      take_block(artifact_, at, dims_[m] * spec.output_dim, "readout W");
  output_dense_.b = take_block(artifact_, at, spec.output_dim, "readout bias");
  if (at != artifact_.blocks.size()) {
    throw std::runtime_error(
        "InferenceEngine: artifact has " +
        std::to_string(artifact_.blocks.size()) + " parameter blocks, but " +
        "the architecture consumes only " + std::to_string(at));
  }

  outs_.resize(m + 1);
  pre_act_.resize(m);
}

std::size_t InferenceEngine::num_params() const {
  std::size_t n = 0;
  for (const auto& block : artifact_.blocks) n += block.size();
  return n;
}

void InferenceEngine::combine_forward(const Combine& c,
                                      const nn::Tensor& base) const {
  // Mirrors GraphNet::combine_forward: sum = base (+ projected skips),
  // then ReLU into the shared combine buffer. The projection GEMM
  // accumulates straight into the sum, exactly as DenseLayer::forward_add.
  combine_sum_ = base;  // capacity-reusing copy
  for (const auto& edge : c.edges) {
    const nn::Tensor& src = outs_[edge.src];
    if (edge.proj.has_value()) {
      const nn::Tensor& w = edge.proj->w;
      nn::kernels::gemm(src.rows, w.cols, w.rows, src.v.data(), w.rows,
                    w.v.data(), w.cols, combine_sum_.v.data(), w.cols,
                    /*accumulate=*/true);
    } else {
      nn::add_inplace(combine_sum_, src);
    }
  }
  nn::apply_activation(nn::Activation::kRelu, combine_sum_, combine_buf_);
}

void InferenceEngine::forward(const float* rows, std::size_t n) const {
  const nn::GraphSpec& spec = artifact_.spec;
  const std::size_t m = spec.nodes.size();
  nn::ensure_shape(outs_[0], n, spec.input_dim);
  std::memcpy(outs_[0].v.data(), rows, n * spec.input_dim * sizeof(float));

  for (std::size_t k = 0; k < m; ++k) {
    const nn::Tensor* node_input = &outs_[k];
    if (node_combine_[k].active()) {
      combine_forward(node_combine_[k], outs_[k]);
      node_input = &combine_buf_;
    }
    if (spec.nodes[k].is_identity) {
      outs_[k + 1] = *node_input;  // combine_buf_ is reused; must copy
    } else {
      // Same fused GEMM the trainer uses: bias + activation epilogue with
      // the pre-activation staged alongside, so the arithmetic (and hence
      // every output bit) matches GraphNet::forward.
      const Linear& dense = *node_dense_[k];
      nn::ensure_shape(pre_act_[k], n, dense.w.cols);
      nn::ensure_shape(outs_[k + 1], n, dense.w.cols);
      nn::kernels::Epilogue ep;
      ep.bias = dense.b.data();
      ep.act = spec.nodes[k].act;
      ep.pre_act = pre_act_[k].v.data();
      nn::kernels::gemm(n, dense.w.cols, dense.w.rows, node_input->v.data(),
                    dense.w.rows, dense.w.v.data(), dense.w.cols,
                    outs_[k + 1].v.data(), dense.w.cols,
                    /*accumulate=*/false, &ep);
    }
  }

  const nn::Tensor* readout_input = &outs_[m];
  if (output_combine_.active()) {
    combine_forward(output_combine_, outs_[m]);
    readout_input = &combine_buf_;
  }
  nn::ensure_shape(logits_, n, spec.output_dim);
  nn::kernels::Epilogue ep;
  ep.bias = output_dense_.b.data();
  nn::kernels::gemm(n, output_dense_.w.cols, output_dense_.w.rows,
                readout_input->v.data(), output_dense_.w.rows,
                output_dense_.w.v.data(), output_dense_.w.cols,
                logits_.v.data(), output_dense_.w.cols,
                /*accumulate=*/false, &ep);
}

void InferenceEngine::predict_logits(const float* rows, std::size_t n,
                                     float* out) const {
  if (n == 0) return;
  OBS_SPAN("serve.infer",
           {{"rows", std::to_string(n)}});
  forward(rows, n);
  std::memcpy(out, logits_.v.data(), logits_.v.size() * sizeof(float));
}

void InferenceEngine::predict_batch(const float* rows, std::size_t n,
                                    float* out) const {
  if (n == 0) return;
  OBS_SPAN("serve.infer",
           {{"rows", std::to_string(n)}});
  forward(rows, n);
  nn::softmax(logits_, probs_);
  std::memcpy(out, probs_.v.data(), probs_.v.size() * sizeof(float));
  static const auto predictions =
      obs::Registry::global().counter("serve.predictions");
  predictions.add(n);
}

InferenceEngine load_engine(const std::string& path) {
  return InferenceEngine(nn::load_artifact_file(path));
}

}  // namespace agebo::serve
