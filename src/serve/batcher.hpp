// Dynamic micro-batching front end for the inference engine (DESIGN.md §12).
//
// Callers submit single rows from any number of threads; a dedicated worker
// coalesces queued requests into one engine batch, bounded by a maximum
// batch size and a latency budget: the first request in an empty queue
// starts the clock, and the worker flushes as soon as the batch is full or
// the budget expires — so a lone request never waits longer than the budget
// and a burst is amortized into one blocked-GEMM pass. Because the batched
// kernels are bit-deterministic per row, a row's probabilities are bitwise
// identical whether it was served alone or coalesced with strangers.
//
// Observability: spans `serve.batch` (worker lane) around each engine call,
// histograms `serve.batch_size`, `serve.queue_wait` and `serve.latency`
// (seconds), counters `serve.requests` / `serve.batches`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace agebo::serve {

struct MicroBatcherConfig {
  /// Flush as soon as this many rows are queued.
  std::size_t max_batch = 256;
  /// Latency budget: a queued request is dispatched to the engine at most
  /// this long after it arrives, full batch or not.
  double max_delay_ms = 2.0;
  /// Backpressure bound: submissions block while this many rows are queued.
  std::size_t queue_capacity = 4096;
};

class MicroBatcher {
 public:
  /// Engine must outlive the batcher. Spawns the worker thread.
  MicroBatcher(const InferenceEngine& engine, MicroBatcherConfig config = {});
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Blocking single-row predict: enqueues the row, wakes the worker, and
  /// waits for its probabilities (size output_dim). Thread-safe. Throws
  /// std::runtime_error after stop().
  void predict_row(const float* row, float* probs_out);

  /// Drain the queue, serve what remains, and join the worker. Idempotent;
  /// also called by the destructor.
  void stop();

  std::size_t input_dim() const { return engine_.input_dim(); }
  std::size_t output_dim() const { return engine_.output_dim(); }

 private:
  struct Request {
    const float* row = nullptr;
    float* out = nullptr;
    double enqueue_s = 0.0;  // trace clock at submission (queue-wait metric)
    bool done = false;
    std::condition_variable* cv = nullptr;  // waiter's wakeup
  };

  void worker_loop();
  void serve_batch(std::vector<Request*>& batch);

  const InferenceEngine& engine_;
  const MicroBatcherConfig config_;

  std::mutex mu_;
  std::condition_variable worker_cv_;
  std::deque<Request*> queue_;
  bool stopping_ = false;

  // Worker-owned staging (reused across batches; no steady-state allocs).
  std::vector<Request*> batch_;
  std::vector<float> rows_;
  std::vector<float> probs_;

  std::thread worker_;
};

}  // namespace agebo::serve
